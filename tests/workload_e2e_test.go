package tests

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/sched"
	"repro/sched/gen"
	"repro/sched/service"
	"repro/sched/system"
	"repro/sched/workload"
)

// packFiles lists the committed scenario pack: the two STG instances and
// the two workflow-JSON instances under testdata/workloads.
var packFiles = []string{
	"diamond.stg",
	"sparse10.stg",
	"montage-small.json",
	"epigenomics-small.json",
}

// TestWorkloadPackSchedulesEndToEnd is the acceptance proof for the
// workload subsystem: every committed scenario-pack instance — STG and
// workflow JSON — imports through workload.LoadFile and schedules both
// through the library and over schedd's HTTP wire against a server-built
// named topology, with byte-identical schedule documents.
func TestWorkloadPackSchedulesEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Config{Workers: 2})
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		hs.Close()
	})
	client := service.NewClient("http://"+ln.Addr().String(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	bsa, err := sched.Lookup("bsa")
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range packFiles {
		t.Run(file, func(t *testing.T) {
			g, err := workload.LoadFile(filepath.Join("..", "testdata", "workloads", file), workload.Options{})
			if err != nil {
				t.Fatalf("import: %v", err)
			}
			if g.NumTasks() == 0 || g.NumEdges() == 0 {
				t.Fatalf("degenerate import: %d tasks, %d edges", g.NumTasks(), g.NumEdges())
			}

			// Library side: the imported graph on a NUMA-like hierarchical
			// fabric, scheduled by BSA.
			nw, err := gen.Topology(gen.TopoSpec{Kind: gen.Hierarchical, Procs: 8}, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatal(err)
			}
			p, err := sched.NewProblem(g, system.NewUniform(nw, g.NumTasks(), g.NumEdges()))
			if err != nil {
				t.Fatal(err)
			}
			direct, err := bsa.Schedule(ctx, p, sched.WithSeed(7), sched.WithWorkers(1))
			if err != nil {
				t.Fatalf("library schedule: %v", err)
			}
			want, err := direct.Schedule.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}

			// Wire side: same graph document, same topology by name.
			gdoc, err := g.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			res, err := client.Schedule(ctx, service.ScheduleRequest{
				Graph: gdoc,
				Topo:  &service.TopoSpecWire{Kind: "hierarchical", Procs: 8, Seed: 1},
				Seed:  7,
			})
			if err != nil {
				t.Fatalf("HTTP schedule: %v", err)
			}
			if got, want := compactJSON(t, res.Schedule), compactJSON(t, want); !bytes.Equal(got, want) {
				t.Errorf("HTTP schedule != library schedule\nhttp:    %s\nlibrary: %s", got, want)
			}
			if res.Makespan != direct.Makespan {
				t.Errorf("HTTP makespan %v != library %v", res.Makespan, direct.Makespan)
			}
		})
	}
}
