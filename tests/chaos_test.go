package tests

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	_ "repro/sched/register"
	"repro/sched/service"
)

// The chaos suite: a replica tier running under seeded, deterministic
// fault injection — dropped connections, synthesized 503s, reset
// bodies, injected latency on the wire; write failures in the store.
// The assertions are the tentpole invariants: no accepted job is lost,
// no schedule byte diverges from the single-node run, every error a
// client ultimately sees is a typed envelope, and circuit breakers
// bound the traffic a dead peer absorbs. Fixed seeds make the fault
// sequence reproducible run to run.

// chaosSeed is the suite's fixed base seed (also pinned in the Makefile
// chaos-test target). Changing it changes which requests fault, never
// whether the invariants hold.
const chaosSeed = 0xC0FFEE

// chaosNode is one in-process replica with its chaos-wrapped peer
// transport.
type chaosNode struct {
	srv    *service.Server
	client *service.Client
	addr   string
	chaos  *service.ChaosTransport
	stop   func()
}

// startChaosCluster boots n in-process replicas whose INTER-NODE
// traffic (forwards, replication, probes) runs through per-node
// ChaosTransports. configure, when non-nil, tweaks each node's Config.
func startChaosCluster(t *testing.T, n int, faulty bool, configure func(i int, cfg *service.Config)) []*chaosNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*chaosNode, n)
	for i := range nodes {
		ct := service.NewChaosTransport(nil, chaosSeed+int64(i))
		if faulty {
			ct.DropRate = 0.05
			ct.FiveXXRate = 0.05
			ct.LatencyRate = 0.25
			ct.Latency = 2 * time.Millisecond
		}
		cfg := service.Config{
			Workers:    2,
			Self:       addrs[i],
			HTTPClient: &http.Client{Transport: ct},
		}
		for j, a := range addrs {
			if j != i {
				cfg.Peers = append(cfg.Peers, a)
			}
		}
		if configure != nil {
			configure(i, &cfg)
		}
		srv := service.New(cfg)
		hs := &http.Server{Handler: srv}
		go hs.Serve(lns[i]) //nolint:errcheck
		stopped := false
		node := &chaosNode{
			srv:    srv,
			client: service.NewClient("http://"+addrs[i], nil),
			addr:   addrs[i],
			chaos:  ct,
		}
		node.stop = func() {
			if !stopped {
				stopped = true
				hs.Close()
			}
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Drain(ctx); err != nil {
				t.Errorf("drain %s: %v", node.addr, err)
			}
			node.stop()
		})
		nodes[i] = node
	}
	return nodes
}

// TestChaosClusterNoJobLost runs a 3-node tier with faults on every
// inter-node AND client hop: every accepted job must still reach done
// with the library's exact schedule bytes, and any error the retrying
// client surfaces must be a typed envelope.
func TestChaosClusterNoJobLost(t *testing.T) {
	nodes := startChaosCluster(t, 3, true, func(i int, cfg *service.Config) {
		cfg.Replicas = 2
		cfg.ProbeInterval = 50 * time.Millisecond
		cfg.ProbeTimeout = 250 * time.Millisecond
		cfg.ProbeMisses = 3
	})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// The client's own hop faults too — drops before the wire and resets
	// mid-body (the retry loop absorbs both; 5xx injection client-side
	// would be indistinguishable from real server 503s in the count).
	clientChaos := service.NewChaosTransport(nil, chaosSeed+99)
	clientChaos.DropRate = 0.05
	clientChaos.ResetRate = 0.05
	clientChaos.LatencyRate = 0.25
	clientChaos.Latency = 2 * time.Millisecond
	client := service.NewClient("http://"+nodes[0].addr, &http.Client{Transport: clientChaos}).
		WithRetry(service.RetryPolicy{
			MaxAttempts: 6,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			Seed:        chaosSeed,
		})

	_, _, gdoc, sdoc := paperDocs(t, t.TempDir())
	const n = 30
	type accepted struct {
		id   string
		seed int64
	}
	var all []accepted
	for i := 0; i < n; i++ {
		v, err := client.Submit(ctx, service.ScheduleRequest{
			Graph: gdoc, System: sdoc, Seed: int64(i % 7),
			IdempotencyKey: fmt.Sprintf("chaos-%d", i),
		})
		if err != nil {
			// The retry budget can be exhausted under sustained faults —
			// but what surfaces must be a typed envelope, never a raw
			// transport error.
			var apiErr *service.APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("submit %d surfaced an untyped error: %v", i, err)
			}
			continue
		}
		all = append(all, accepted{id: v.ID, seed: int64(i % 7)})
	}
	if len(all) < n/2 {
		t.Fatalf("only %d/%d submissions accepted; fault rates drowned the tier", len(all), n)
	}

	for _, a := range all {
		final, err := client.Wait(ctx, a.id, 10*time.Millisecond)
		if err != nil {
			var apiErr *service.APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("wait %s surfaced an untyped error: %v", a.id, err)
			}
			t.Fatalf("accepted job %s lost: %v", a.id, err)
		}
		if final.Status != service.JobDone || final.Result == nil {
			t.Fatalf("job %s = %q (%v), want done", a.id, final.Status, final.Error)
		}
		if got, want := compactJSON(t, final.Result.Schedule), compactJSON(t, paperScheduleRef(t, a.seed)); !bytes.Equal(got, want) {
			t.Errorf("job %s schedule diverged from the single-node bytes (seed %d)", a.id, a.seed)
		}
	}

	var injected int64
	for _, node := range nodes {
		injected += node.chaos.Injected()
	}
	injected += clientChaos.Injected()
	if injected == 0 {
		t.Error("chaos transports injected nothing; the suite tested fair weather")
	}
	t.Logf("%d/%d jobs done under %d injected faults", len(all), n, injected)
}

// TestChaosBreakerShedsLoad: hammering a dead peer's jobs must not
// hammer the dead peer — after BreakerThreshold forward failures the
// survivor's circuit opens and answers from its own state (a typed 502)
// without another connection attempt.
func TestChaosBreakerShedsLoad(t *testing.T) {
	nodes := startChaosCluster(t, 2, false, func(i int, cfg *service.Config) {
		cfg.BreakerThreshold = 5
		cfg.BreakerCooldown = time.Minute // no half-open probe mid-test
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	view, err := nodes[0].client.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	deadToken := ""
	for _, n := range view.Nodes {
		if n.Addr == nodes[1].addr {
			deadToken = n.Token
		}
	}
	if deadToken == "" {
		t.Fatalf("node 1 missing from cluster view: %+v", view.Nodes)
	}
	nodes[1].stop()

	// 60 lookups of a dead-owned reference through a plain client: every
	// one answers 502 upstream_unavailable, but only the first
	// BreakerThreshold are allowed to touch the network.
	const hammer = 60
	deadID := deadToken + ".j42"
	for i := 0; i < hammer; i++ {
		_, err := nodes[0].client.Job(ctx, deadID)
		var apiErr *service.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 502 || apiErr.Body.Code != service.CodeUpstreamUnavailable {
			t.Fatalf("lookup %d: got %v, want typed 502 %s", i, err, service.CodeUpstreamUnavailable)
		}
	}

	m, err := nodes[0].client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["breaker_open_total"] < 1 {
		t.Errorf("breaker_open_total = %d, want >= 1", m["breaker_open_total"])
	}
	if got := m["forward_errors_total"]; got > 5 {
		t.Errorf("forward_errors_total = %d: breaker let more than threshold attempts through", got)
	}
	if got := m["breaker_short_circuits_total"]; got < hammer-10 {
		t.Errorf("breaker_short_circuits_total = %d, want >= %d", got, hammer-10)
	}
}

// TestChaosStoreFaults: under seeded random write failures every
// submission either lands durably (and completes) or is refused with a
// typed 503 store_unavailable — acknowledged-then-lost never happens.
func TestChaosStoreFaults(t *testing.T) {
	fs := service.NewFaultyStore(service.NewMemStore(), chaosSeed)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Config{Workers: 2, Store: fs})
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		hs.Close()
	})
	client := service.NewClient("http://"+ln.Addr().String(), nil).WithRetry(service.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        chaosSeed,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	_, _, gdoc, sdoc := paperDocs(t, t.TempDir())
	fs.FailRate(0.3)
	const n = 20
	var accepted []string
	refused := 0
	for i := 0; i < n; i++ {
		v, err := client.Submit(ctx, service.ScheduleRequest{
			Graph: gdoc, System: sdoc, Seed: int64(i),
			IdempotencyKey: fmt.Sprintf("disk-%d", i),
		})
		if err != nil {
			var apiErr *service.APIError
			if !errors.As(err, &apiErr) || apiErr.StatusCode != 503 || apiErr.Body.Code != service.CodeStoreUnavailable {
				t.Fatalf("submit %d: got %v, want typed 503 %s", i, err, service.CodeStoreUnavailable)
			}
			refused++
			continue
		}
		accepted = append(accepted, v.ID)
	}
	fs.FailRate(0)
	if fs.Injected() == 0 {
		t.Fatal("no store faults injected; rate path untested")
	}

	// Every 202 is a durable promise: the job must complete.
	for _, id := range accepted {
		final, err := client.Wait(ctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("accepted job %s lost: %v", id, err)
		}
		if final.Status != service.JobDone {
			t.Fatalf("job %s = %q (%v), want done", id, final.Status, final.Error)
		}
	}
	t.Logf("%d accepted and completed, %d refused typed, %d faults injected", len(accepted), refused, fs.Injected())
}
