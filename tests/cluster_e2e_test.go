package tests

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/sched"
	"repro/sched/gen"
	_ "repro/sched/register"
	"repro/sched/service"
)

// Process-level proofs for the PR-7 subsystem: WAL durability across a
// SIGKILL and the three-replica tier losing a node mid-backlog. The
// in-process variants (httptest servers) live in sched/service; these
// run the real schedd binary, real sockets, real kill(2).

// paperScheduleRef runs the library directly and returns the schedule
// bytes schedd must serve for the paper example at the given seed.
func paperScheduleRef(t *testing.T, seed int64) []byte {
	t.Helper()
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	p, err := sched.NewProblem(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		t.Fatal(err)
	}
	res, err := bsa.Schedule(context.Background(), p, sched.WithSeed(seed), sched.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := res.Schedule.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestScheddWALRestart: submit a backlog against a WAL-backed schedd,
// SIGKILL it mid-work, reboot on the same data directory — every
// accepted job must reach done under its original ID with the exact
// schedule bytes the interrupted run would have produced.
func TestScheddWALRestart(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	dir := t.TempDir()
	schedd := buildCmd(t, dir, "schedd")
	_, _, gdoc, sdoc := paperDocs(t, dir)
	data := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	baseURL, cmd, _ := startSchedd(t, schedd, "-workers", "1", "-store", "wal", "-data", data)
	client := service.NewClient(baseURL, nil)

	const n = 6
	var ids []string
	for i := 0; i < n; i++ {
		v, err := client.Submit(ctx, service.ScheduleRequest{
			Graph: gdoc, System: sdoc, Seed: int64(i),
			IdempotencyKey: fmt.Sprintf("restart-%d", i),
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}

	// SIGKILL: no drain, no WAL compaction, no goodbye. Whatever reached
	// the log is all the next process gets.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck

	baseURL2, _, _ := startSchedd(t, schedd, "-workers", "1", "-store", "wal", "-data", data)
	client2 := service.NewClient(baseURL2, nil)
	for i, id := range ids {
		done, err := client2.Wait(ctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s after restart: %v", id, err)
		}
		if done.Status != service.JobDone {
			t.Fatalf("job %s after restart: %q (%v)", id, done.Status, done.Error)
		}
		if got, want := compactJSON(t, done.Result.Schedule), compactJSON(t, paperScheduleRef(t, int64(i))); !bytes.Equal(got, want) {
			t.Errorf("job %s schedule differs from the library's after restart", id)
		}
	}

	// The idempotency keys survived the reboot too: resubmitting returns
	// the finished originals instead of scheduling again.
	v, err := client2.Submit(ctx, service.ScheduleRequest{
		Graph: gdoc, System: sdoc, Seed: 0, IdempotencyKey: "restart-0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != ids[0] {
		t.Errorf("resubmitted key returned %q, want original %q", v.ID, ids[0])
	}
}

// freePorts reserves n distinct loopback ports by binding and releasing
// them. The tiny race against other processes is acceptable in tests.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.Addr().(*net.TCPAddr).Port
		ln.Close()
	}
	return ports
}

// TestScheddClusterKillOneOfThree: a three-replica tier with -replicas 2
// loses one node with work outstanding. Once the failure detector
// declares it dead, EVERY accepted job — the dead owner's included —
// must reach done through the survivors with schedule bytes identical
// to a single-node (library) run, with zero 502s. Restarting the victim
// on its WAL reconciles without duplicate execution: resubmitting its
// keys returns the original IDs.
func TestScheddClusterKillOneOfThree(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	dir := t.TempDir()
	schedd := buildCmd(t, dir, "schedd")
	_, _, gdoc, sdoc := paperDocs(t, dir)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	ports := freePorts(t, 3)
	addrs := make([]string, 3)
	dataDirs := make([]string, 3)
	for i, p := range ports {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", p)
		dataDirs[i] = t.TempDir()
	}
	start := func(i int) (*service.Client, *exec.Cmd) {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		// startSchedd prepends -addr 127.0.0.1:0; the later -addr here wins
		// (flag keeps the last value), so the replica binds the reserved
		// port its peers were configured to reach.
		baseURL, cmd, _ := startSchedd(t, schedd,
			"-addr", addrs[i],
			"-workers", "1",
			"-store", "wal", "-data", dataDirs[i],
			"-peers", strings.Join(peers, ","),
			"-replicas", "2",
			"-probe-interval", "100ms",
			"-probe-timeout", "250ms",
			"-probe-misses", "2",
		)
		return service.NewClient(baseURL, nil), cmd
	}
	cmds := make([]*exec.Cmd, 3)
	clients := make([]*service.Client, 3)
	for i := range addrs {
		clients[i], cmds[i] = start(i)
	}

	// Sanity before submitting: all three replicas see each other healthy,
	// so a later failure means a real death, not a wiring mistake.
	view, err := clients[0].Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	healthy := 0
	for _, n := range view.Nodes {
		if n.Healthy {
			healthy++
		}
	}
	if healthy != 3 {
		t.Fatalf("cluster not fully healthy at start: %+v", view.Nodes)
	}

	tokenOf := make(map[string]string) // token -> addr
	for _, n := range view.Nodes {
		tokenOf[n.Token] = n.Addr
	}

	// Backlog: 24 keyed jobs, all submitted through replica 0, hashed
	// across the ring. With -replicas 2 each accept streamed the job's
	// record to its owner's ring successor before the 202 came back.
	const n = 24
	type submitted struct {
		id   string
		seed int64
		key  string
	}
	var jobs []submitted
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("kill-%d", i)
		v, err := clients[0].Submit(ctx, service.ScheduleRequest{
			Graph: gdoc, System: sdoc, Seed: int64(i),
			IdempotencyKey: key,
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, submitted{id: v.ID, seed: int64(i), key: key})
	}

	// SIGKILL replica 2 with the backlog outstanding.
	deadAddr := addrs[2]
	deadToken := ""
	for tok, addr := range tokenOf {
		if addr == deadAddr {
			deadToken = tok
		}
	}
	if deadToken == "" {
		t.Fatalf("dead node %s not in cluster view %v", deadAddr, tokenOf)
	}
	if err := cmds[2].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmds[2].Wait() //nolint:errcheck

	// Wait for the survivors' failure detectors to declare it dead; from
	// then on routing sends the dead owner's references to its successor.
	waitState := func(addr, state string) {
		t.Helper()
		deadline := time.Now().Add(time.Minute)
		for {
			view, err := clients[0].Cluster(ctx)
			if err != nil {
				t.Fatalf("cluster view: %v", err)
			}
			for _, node := range view.Nodes {
				if node.Addr == addr && node.State == state {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never reached state %q", addr, state)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitState(deadAddr, "dead")

	// Every accepted job completes with the library's exact bytes — the
	// dead owner's jobs through replication and failover. The client has
	// no retry policy: a single 502 fails the test.
	deadOwned := 0
	for _, job := range jobs {
		token, _, _ := strings.Cut(job.id, ".")
		if token == deadToken {
			deadOwned++
		}
		done, err := clients[0].Wait(ctx, job.id, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s (owner %s, dead %s): %v", job.id, token, deadToken, err)
		}
		if done.Status != service.JobDone {
			t.Fatalf("job %s: %q (%v)", job.id, done.Status, done.Error)
		}
		if got, want := compactJSON(t, done.Result.Schedule), compactJSON(t, paperScheduleRef(t, job.seed)); !bytes.Equal(got, want) {
			t.Errorf("job %s schedule differs from the library's (seed %d)", job.id, job.seed)
		}
	}
	if deadOwned == 0 {
		t.Error("no jobs owned by the dead node; ring distribution looks broken")
	}
	t.Logf("killed %s: all %d jobs completed (%d dead-owned, served via failover)", deadToken, n, deadOwned)

	// The survivors' breakers and detector left their fingerprints.
	var failovers, adopted int64
	for i := 0; i < 2; i++ {
		m, err := clients[i].Metrics(ctx)
		if err != nil {
			t.Fatalf("metrics %d: %v", i, err)
		}
		failovers += m["failovers_total"]
		adopted += m["adopted_jobs_total"]
	}
	if failovers < 1 {
		t.Errorf("failovers_total = %d across survivors, want >= 1", failovers)
	}

	// Owner returns on the same WAL and address: replay plus
	// reconciliation must converge without duplicate execution —
	// resubmitting the dead node's keys yields the ORIGINAL job IDs.
	clients[2], cmds[2] = start(2)
	waitState(deadAddr, "alive")
	for _, job := range jobs {
		token, _, _ := strings.Cut(job.id, ".")
		if token != deadToken {
			continue
		}
		v, err := clients[2].Submit(ctx, service.ScheduleRequest{
			Graph: gdoc, System: sdoc, Seed: job.seed,
			IdempotencyKey: job.key,
		})
		if err != nil {
			t.Fatalf("resubmit %s after owner restart: %v", job.key, err)
		}
		if v.ID != job.id {
			t.Errorf("resubmitted key %s returned %q, want original %q (duplicate execution)", job.key, v.ID, job.id)
		}
	}

	// Graceful exit: all three drain clean.
	for i := 0; i < 3; i++ {
		if err := cmds[i].Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := cmds[i].Wait(); err != nil {
			t.Errorf("replica %d exited with %v after SIGTERM", i, err)
		}
	}
	_ = adopted // informational: adoption only fires when pending work was outstanding
}
