// Command extconsumer is an external consumer of repro's public API: it
// constructs a problem three ways (fluent builder, generators, JSON/DOT
// interchange), schedules it with every registered algorithm and inspects
// the read-only schedule view and typed traces — importing nothing from
// repro/internal/..., which an external module cannot do. Compiling this
// module is the test; running it exercises the surface end to end.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"

	"repro/sched"
	"repro/sched/gen"
	"repro/sched/graph"
	_ "repro/sched/register"
	"repro/sched/system"
)

func main() {
	// 1. Fluent builder with typed validation errors.
	b := graph.NewBuilder()
	a := b.AddTask("a", 10)
	c := b.AddTask("c", 20)
	b.AddEdge(a, c, 5)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	bad := graph.NewBuilder()
	x := bad.AddTask("x", 1)
	y := bad.AddTask("y", 1)
	bad.AddEdge(x, y, 1)
	bad.AddEdge(y, x, 1)
	if _, err := bad.Build(); err != nil {
		var cyc *graph.CycleError
		if !errors.As(err, &cyc) {
			log.Fatalf("want *graph.CycleError, got %T", err)
		}
	} else {
		log.Fatal("cycle not rejected")
	}

	// 2. Generators: a paper workload on a paper topology.
	rng := rand.New(rand.NewSource(7))
	g2, err := gen.Generate(gen.Spec{Kind: gen.GaussElim, Size: 40, Granularity: 1}, rng)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := gen.Topology(gen.TopoSpec{Kind: gen.Hypercube, Procs: 8}, nil)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := system.NewRandomMinNormalized(nw, g2.NumTasks(), g2.NumEdges(), 1, 10, rng)
	if err != nil {
		log.Fatal(err)
	}

	// 3. JSON + DOT interchange round-trips.
	var buf bytes.Buffer
	if err := g2.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	if _, err := graph.FromJSON(buf.Bytes()); err != nil {
		log.Fatal(err)
	}
	buf.Reset()
	if err := g2.WriteDOT(&buf, "gauss"); err != nil {
		log.Fatal(err)
	}
	if _, _, err := graph.FromDOT(buf.Bytes()); err != nil {
		log.Fatal(err)
	}
	buf.Reset()
	if err := sys.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	if _, err := system.SystemFromJSON(buf.Bytes()); err != nil {
		log.Fatal(err)
	}

	// 4. Schedule with every registered algorithm; read the view.
	p, err := sched.NewProblem(g2, sys)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range sched.List() {
		s, err := sched.Lookup(d.Name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Schedule(context.Background(), p, sched.WithSeed(42))
		if err != nil {
			log.Fatal(err)
		}
		view := res.Schedule
		if err := view.Verify(); err != nil {
			log.Fatalf("%s: %v", d.Name, err)
		}
		slot := view.Task(0)
		_ = view.Message(0).Hops
		st := view.Stats()
		if err := view.WriteGantt(io.Discard); err != nil {
			log.Fatal(err)
		}
		if tr, ok := res.BSA(); ok {
			fmt.Printf("%s: pivot=%s migrations=%d\n", d.Name, tr.PivotName, tr.Migrations)
		}
		fmt.Printf("%s: makespan=%.2f t0@P%d util=%.1f%%\n", d.Name, res.Makespan, slot.Proc+1, 100*st.AvgProcUtil)
	}

	// 5. The third-party scheduler path: decompose a schedule into its
	// public slots and reassemble it through AssembleSchedule — the
	// constructor an external algorithm uses to populate Result.Schedule.
	bsaRef, err := sched.Lookup("bsa")
	if err != nil {
		log.Fatal(err)
	}
	ref, err := bsaRef.Schedule(context.Background(), p, sched.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	assembled, err := sched.AssembleSchedule(p, ref.Schedule.Tasks(), ref.Schedule.Messages())
	if err != nil {
		log.Fatal(err)
	}
	if err := assembled.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled: makespan=%.2f\n", assembled.Length())

	// 6. Ask the simple problem too, via graph from step 1.
	uni := system.NewUniform(nw, g.NumTasks(), g.NumEdges())
	p2, err := sched.NewProblem(g, uni)
	if err != nil {
		log.Fatal(err)
	}
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		log.Fatal(err)
	}
	res, err := bsa.Schedule(context.Background(), p2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tiny: makespan=%.2f complete=%v\n", res.Makespan, res.Schedule.Complete())
}
