// A standalone consumer module: proves the public repro/sched surface is
// sufficient and importable from outside the repro module. Built by
// TestExternalConsumerBuilds; never part of the main build graph.
module extconsumer

go 1.24

require repro v0.0.0

replace repro => ../..
