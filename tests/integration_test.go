// Package tests holds cross-package integration tests: full pipelines from
// workload generation through scheduling, validation and simulated replay,
// plus qualitative checks of the paper's headline claims at small scale.
package tests

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cpop"
	"repro/internal/dls"
	"repro/internal/heft"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/sched"
	"repro/sched/gen"
	"repro/sched/graph"
	_ "repro/sched/register"
	"repro/sched/system"
)

// schedulers runs every implemented algorithm on one instance and returns
// the validated schedules keyed by name.
func schedulers(t *testing.T, g *graph.Graph, sys *system.System) map[string]*schedule.Schedule {
	t.Helper()
	out := map[string]*schedule.Schedule{}
	if res, err := core.Schedule(g, sys, core.Options{Seed: 1}); err != nil {
		t.Fatalf("BSA: %v", err)
	} else {
		out["BSA"] = res.Schedule
	}
	if res, err := dls.Schedule(g, sys, dls.Options{}); err != nil {
		t.Fatalf("DLS: %v", err)
	} else {
		out["DLS"] = res.Schedule
	}
	if res, err := heft.Schedule(g, sys); err != nil {
		t.Fatalf("HEFT: %v", err)
	} else {
		out["HEFT"] = res.Schedule
	}
	if res, err := cpop.Schedule(g, sys); err != nil {
		t.Fatalf("CPOP: %v", err)
	} else {
		out["CPOP"] = res.Schedule
	}
	for name, s := range out {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s produced an infeasible schedule: %v", name, err)
		}
		r, err := sim.Replay(s)
		if err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		if err := r.CheckAgainst(s); err != nil {
			t.Fatalf("%s replay check: %v", name, err)
		}
	}
	return out
}

func TestAllSchedulersAllFamilies(t *testing.T) {
	// Every scheduler must produce feasible, replayable schedules on every
	// workload family and a mix of topologies.
	rng := rand.New(rand.NewSource(2))
	topos := []func() (*system.Network, error){
		func() (*system.Network, error) { return system.Ring(8) },
		func() (*system.Network, error) { return system.Hypercube(3) },
		func() (*system.Network, error) { return system.FullyConnected(8) },
		func() (*system.Network, error) { return system.RandomConnected(8, 2, 5, rng) },
	}
	for _, kind := range []gen.Kind{gen.GaussElim, gen.LU, gen.Laplace, gen.MVA, gen.Random} {
		for ti, topo := range topos {
			g, err := gen.Generate(gen.Spec{Kind: kind, Size: 60, Granularity: 1}, rng)
			if err != nil {
				t.Fatal(err)
			}
			nw, err := topo()
			if err != nil {
				t.Fatal(err)
			}
			sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rng)
			if err != nil {
				t.Fatal(err)
			}
			res := schedulers(t, g, sys)
			for name, s := range res {
				if s.Length() <= 0 {
					t.Errorf("%v topo %d %s: zero-length schedule", kind, ti, name)
				}
			}
		}
	}
}

// TestSimReplayMatrix is the systematic replay net: every REGISTERED
// algorithm — not just the hardwired BSA/DLS pair of
// internal/sim/sim_test.go — must produce schedules the independent
// event-driven simulator can reproduce, on the paper's four evaluation
// topologies plus the mesh/torus/fat-tree/hierarchical families, with
// heterogeneity off and on. The simulated makespan may
// close reserved idle gaps but can never exceed the static schedule
// length the algorithm promised.
func TestSimReplayMatrix(t *testing.T) {
	topos := []struct {
		name string
		spec gen.TopoSpec
	}{
		{"ring", gen.TopoSpec{Kind: gen.Ring, Procs: 8}},
		{"hypercube", gen.TopoSpec{Kind: gen.Hypercube, Procs: 8}},
		{"clique", gen.TopoSpec{Kind: gen.Clique, Procs: 8}},
		{"random", gen.TopoSpec{Kind: gen.RandomTopo, Procs: 8}},
		{"mesh", gen.TopoSpec{Kind: gen.Mesh, Procs: 8}},
		{"torus", gen.TopoSpec{Kind: gen.Torus, Procs: 8}},
		{"fattree", gen.TopoSpec{Kind: gen.FatTree, Procs: 8}},
		{"hierarchical", gen.TopoSpec{Kind: gen.Hierarchical, Procs: 8}},
	}
	ctx := context.Background()
	for _, d := range sched.List() {
		for _, topo := range topos {
			for _, het := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s/het=%v", d.Name, topo.name, het)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(42))
					g, err := gen.Generate(gen.Spec{Kind: gen.Random, Size: 60, Granularity: 1}, rng)
					if err != nil {
						t.Fatal(err)
					}
					nw, err := gen.Topology(topo.spec, rng)
					if err != nil {
						t.Fatal(err)
					}
					var sys *system.System
					if het {
						sys, err = system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rng)
						if err != nil {
							t.Fatal(err)
						}
					} else {
						sys = system.NewUniform(nw, g.NumTasks(), g.NumEdges())
					}
					p, err := sched.NewProblem(g, sys)
					if err != nil {
						t.Fatal(err)
					}
					s, err := sched.Lookup(d.Name)
					if err != nil {
						t.Fatal(err)
					}
					res, err := s.Schedule(ctx, p, sched.WithSeed(7))
					if err != nil {
						t.Fatalf("schedule: %v", err)
					}
					if err := res.Schedule.Validate(); err != nil {
						t.Fatalf("infeasible schedule: %v", err)
					}
					replay, err := res.Schedule.Replay()
					if err != nil {
						t.Fatalf("replay: %v", err)
					}
					if replay.Length > res.Makespan {
						t.Errorf("simulated length %v exceeds static schedule length %v",
							replay.Length, res.Makespan)
					}
					if replay.Events <= 0 {
						t.Errorf("replay processed %d events", replay.Events)
					}
					// Rescheduled results obey the same replay contract:
					// doubling one task's execution factor and warm-start
					// reconverging must yield a feasible schedule whose
					// simulated length never exceeds its static length.
					if d.Name == "bsa" {
						tname := p.Graph.Tasks()[5].Name
						delta, err := sched.NewDeltaBuilder().SetExecFactor(tname, "P1", 2).Build()
						if err != nil {
							t.Fatal(err)
						}
						warm, err := sched.Reschedule(ctx, *res, delta, sched.WithSeed(7))
						if err != nil {
							t.Fatalf("reschedule: %v", err)
						}
						if err := warm.Schedule.Validate(); err != nil {
							t.Fatalf("infeasible rescheduled schedule: %v", err)
						}
						warmReplay, err := warm.Schedule.Replay()
						if err != nil {
							t.Fatalf("rescheduled replay: %v", err)
						}
						if warmReplay.Length > warm.Makespan {
							t.Errorf("rescheduled simulated length %v exceeds static length %v",
								warmReplay.Length, warm.Makespan)
						}
					}
				})
			}
		}
	}
}

func TestBSABeatsSerialOnParallelWorkload(t *testing.T) {
	// On a homogeneous clique with a wide graph and cheap communication,
	// BSA must comfortably beat single-processor serialization.
	rng := rand.New(rand.NewSource(5))
	g, err := gen.RandomLayered(120, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := system.FullyConnected(8)
	sys := system.NewUniform(nw, g.NumTasks(), g.NumEdges())
	res, err := core.Schedule(g, sys, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial := g.TotalExecCost()
	if sl := res.Schedule.Length(); sl > 0.7*serial {
		t.Errorf("BSA SL=%v vs serial %v: expected substantial parallel speedup", sl, serial)
	}
}

func TestBSAWinsAtFineGranularity(t *testing.T) {
	// The paper's headline regime: fine-grained workloads (communication
	// 10x computation) on a low-connectivity topology. BSA's clustering
	// and incremental message scheduling must beat DLS on average.
	rng := rand.New(rand.NewSource(11))
	var bsa, dlsSum float64
	for rep := 0; rep < 3; rep++ {
		g, err := gen.RandomLayered(80, 0.1, rng)
		if err != nil {
			t.Fatal(err)
		}
		nw, _ := system.Ring(16)
		sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rng)
		if err != nil {
			t.Fatal(err)
		}
		bres, err := core.Schedule(g, sys, core.Options{Seed: int64(rep)})
		if err != nil {
			t.Fatal(err)
		}
		dres, err := dls.Schedule(g, sys, dls.Options{})
		if err != nil {
			t.Fatal(err)
		}
		bsa += bres.Schedule.Length()
		dlsSum += dres.Schedule.Length()
	}
	if bsa >= dlsSum {
		t.Errorf("BSA (%v) should beat DLS (%v) on fine-grained ring workloads", bsa/3, dlsSum/3)
	}
}

func TestConnectivityHelpsEveryScheduler(t *testing.T) {
	// Paper observation: "both algorithms gave shorter schedule lengths
	// for higher processor connectivity". Clique SL <= ring SL for each
	// algorithm (same workload and factor seeds).
	rng := rand.New(rand.NewSource(23))
	g, err := gen.RandomLayered(100, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	lens := map[string]map[string]float64{}
	for _, tc := range []struct {
		name  string
		build func() (*system.Network, error)
	}{
		{"ring", func() (*system.Network, error) { return system.Ring(16) }},
		{"clique", func() (*system.Network, error) { return system.FullyConnected(16) }},
	} {
		nw, err := tc.build()
		if err != nil {
			t.Fatal(err)
		}
		sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		lens[tc.name] = map[string]float64{}
		for name, s := range schedulers(t, g, sys) {
			lens[tc.name][name] = s.Length()
		}
	}
	for _, algo := range []string{"BSA", "DLS"} {
		if lens["clique"][algo] > lens["ring"][algo]*1.05 {
			t.Errorf("%s: clique SL %v should not exceed ring SL %v", algo, lens["clique"][algo], lens["ring"][algo])
		}
	}
}

func TestHeterogeneityRangeDegradesSchedules(t *testing.T) {
	// Paper Figure 7 shape: wider heterogeneity ranges yield longer
	// schedules for both algorithms (min-normalized factors keep the
	// fastest-processor cost fixed, so wider = more variance above it).
	rng := rand.New(rand.NewSource(31))
	g, err := gen.RandomLayered(100, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := system.Hypercube(4)
	slAt := func(hi float64, algo string) float64 {
		sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, hi, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		switch algo {
		case "BSA":
			res, err := core.Schedule(g, sys, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return res.Schedule.Length()
		default:
			res, err := dls.Schedule(g, sys, dls.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return res.Schedule.Length()
		}
	}
	for _, algo := range []string{"BSA", "DLS"} {
		lo, hi := slAt(10, algo), slAt(200, algo)
		if hi <= lo {
			t.Errorf("%s: SL at range [1,200] (%v) should exceed SL at [1,10] (%v)", algo, hi, lo)
		}
	}
}

func TestGranularityMonotonicity(t *testing.T) {
	// Coarser granularity (cheaper communication) must never lengthen
	// schedules substantially; across a decade it must shorten them.
	nw, _ := system.Hypercube(3)
	slAt := func(gran float64) float64 {
		g, err := gen.RandomLayered(80, gran, rand.New(rand.NewSource(77)))
		if err != nil {
			t.Fatal(err)
		}
		sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Schedule(g, sys, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Schedule.Length()
	}
	fine, coarse := slAt(0.1), slAt(10)
	if coarse >= fine {
		t.Errorf("coarse-grained SL %v should be below fine-grained SL %v", coarse, fine)
	}
}
