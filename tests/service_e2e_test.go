package tests

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/sched/gen"
	"repro/sched/service"
)

// buildCmd compiles a command of this module into dir and returns the
// binary path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	build.Dir = ".." // repo root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build %s:\n%s\nerror: %v", name, out, err)
	}
	return bin
}

// startSchedd launches the daemon on a kernel-chosen port and returns
// its base URL plus the running process. The caller owns shutdown.
func startSchedd(t *testing.T, bin string, extraArgs ...string) (string, *exec.Cmd, *bytes.Buffer) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
	})

	// schedd announces its bound address as the first stdout line.
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "schedd: listening on "); ok {
				addrCh <- rest
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			t.Fatalf("schedd exited before announcing its address; stderr:\n%s", errBuf.String())
		}
		return "http://" + addr, cmd, &errBuf
	case <-time.After(30 * time.Second):
		t.Fatalf("schedd did not announce its address; stderr:\n%s", errBuf.String())
		return "", nil, nil
	}
}

// paperDocs writes the paper example's graph and full-system documents
// to dir and returns their paths plus the raw bytes.
func paperDocs(t *testing.T, dir string) (gpath, spath string, gdoc, sdoc []byte) {
	t.Helper()
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	var gbuf, sbuf bytes.Buffer
	if err := g.WriteJSON(&gbuf); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteJSON(&sbuf); err != nil {
		t.Fatal(err)
	}
	gpath = filepath.Join(dir, "paper-graph.json")
	spath = filepath.Join(dir, "paper-system.json")
	if err := os.WriteFile(gpath, gbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spath, sbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return gpath, spath, gbuf.Bytes(), sbuf.Bytes()
}

func compactJSON(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		t.Fatalf("compact: %v\ninput: %s", err, data)
	}
	return buf.Bytes()
}

// TestScheddEndToEnd is the extmodule-style proof for the service
// subsystem: it builds the real schedd and bsasched binaries, schedules
// the paper's worked example over HTTP through service.Client, and
// checks the wire schedule is byte-identical to what cmd/bsasched -json
// prints for the same problem. Then it submits async work and SIGTERMs
// the daemon mid-stream: schedd must finish every accepted job and exit
// zero.
func TestScheddEndToEnd(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	dir := t.TempDir()
	schedd := buildCmd(t, dir, "schedd")
	bsasched := buildCmd(t, dir, "bsasched")
	gpath, spath, gdoc, sdoc := paperDocs(t, dir)

	baseURL, cmd, errBuf := startSchedd(t, schedd, "-workers", "2")
	client := service.NewClient(baseURL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if err := client.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	algos, err := client.Algos(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(algos) < 5 {
		t.Fatalf("algos = %v, want the five built-ins", algos)
	}

	// The acceptance check: schedd's schedule for the paper example is
	// byte-identical to cmd/bsasched's for the same inputs and seed.
	res, err := client.Schedule(ctx, service.ScheduleRequest{
		Algo: "bsa", Graph: gdoc, System: sdoc, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := exec.Command(bsasched, "-graph", gpath, "-system", spath, "-algo", "bsa", "-seed", "1", "-json")
	refOut, err := ref.Output()
	if err != nil {
		t.Fatalf("bsasched -json: %v", err)
	}
	if got, want := compactJSON(t, res.Schedule), compactJSON(t, refOut); !bytes.Equal(got, want) {
		t.Errorf("HTTP schedule != bsasched -json schedule\nhttp:     %s\nbsasched: %s", got, want)
	}
	if res.Makespan <= 0 {
		t.Errorf("makespan = %v", res.Makespan)
	}

	// Async jobs across every algorithm, then SIGTERM with work pending.
	var ids []string
	for i, algo := range []string{"bsa", "bsa-full", "dls", "heft", "cpop"} {
		v, err := client.Submit(ctx, service.ScheduleRequest{
			Algo: algo, Graph: gdoc, System: sdoc, Seed: int64(i),
		})
		if err != nil {
			t.Fatalf("submit %s: %v", algo, err)
		}
		ids = append(ids, v.ID)
	}
	// Wait for the submitted jobs so their results are retrievable before
	// the daemon exits (its store dies with the process).
	for _, id := range ids {
		v, err := client.Wait(ctx, id, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if v.Status != service.JobDone {
			t.Fatalf("job %s: %q (%v)", id, v.Status, v.Error)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("schedd exited with %v after SIGTERM; stderr:\n%s", err, errBuf.String())
		}
	case <-time.After(time.Minute):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatalf("schedd did not drain within a minute of SIGTERM; stderr:\n%s", errBuf.String())
	}
}

// TestScheddDrainsQueuedJobsOnSigterm: SIGTERM with jobs still queued
// must not lose them — schedd keeps serving nothing new but finishes the
// backlog before exiting 0.
func TestScheddDrainsQueuedJobsOnSigterm(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	dir := t.TempDir()
	schedd := buildCmd(t, dir, "schedd")
	_, _, gdoc, sdoc := paperDocs(t, dir)

	baseURL, cmd, errBuf := startSchedd(t, schedd, "-workers", "1")
	client := service.NewClient(baseURL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Stack up a backlog on a single worker, then SIGTERM immediately:
	// the daemon must run all of it down before exiting.
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := client.Submit(ctx, service.ScheduleRequest{
			Graph: gdoc, System: sdoc, Seed: int64(i),
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("schedd exited with %v (backlog lost?); stderr:\n%s", err, errBuf.String())
	}
	if !cmd.ProcessState.Success() {
		t.Fatalf("schedd exit status %v", cmd.ProcessState)
	}
}
