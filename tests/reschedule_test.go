package tests

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/sched"
	"repro/sched/gen"
	"repro/sched/graph"
	_ "repro/sched/register"
	"repro/sched/system"
)

// removableProcDelta returns a single-processor-removal delta that keeps
// the network connected, plus the post-delta problem it produces. Among
// removable processors it drains the one hosting the fewest tasks in the
// previous schedule — the canonical quasi-dynamic scenario of taking the
// least-loaded node out of service.
func removableProcDelta(t *testing.T, p sched.Problem, prev *sched.Result) (sched.Delta, sched.Problem) {
	t.Helper()
	procs := p.System.Net.Procs()
	load := make([]int, len(procs))
	for tid := 0; tid < p.Graph.NumTasks(); tid++ {
		load[prev.Schedule.ProcOf(graph.TaskID(tid))]++
	}
	order := make([]int, len(procs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if load[a] != load[b] {
			return load[a] < load[b]
		}
		return a < b
	})
	for _, i := range order {
		d, err := sched.NewDeltaBuilder().RemoveProc(procs[i].Name).Build()
		if err != nil {
			t.Fatal(err)
		}
		if p2, err := d.Apply(p); err == nil {
			return d, p2
		}
	}
	t.Fatal("no single-processor removal keeps the network connected")
	return sched.Delta{}, sched.Problem{}
}

// TestRescheduleQualityMatrix is the warm-start quality property: across
// the four evaluation topologies with heterogeneity off and on, removing
// one processor and warm-start reconverging must stay within 10% of the
// sim-replayed makespan a cold run on the post-delta problem achieves —
// while evaluating strictly fewer migration candidates than the cold run.
func TestRescheduleQualityMatrix(t *testing.T) {
	topos := []struct {
		name string
		spec gen.TopoSpec
	}{
		{"ring", gen.TopoSpec{Kind: gen.Ring, Procs: 8}},
		{"hypercube", gen.TopoSpec{Kind: gen.Hypercube, Procs: 8}},
		{"clique", gen.TopoSpec{Kind: gen.Clique, Procs: 8}},
		{"random", gen.TopoSpec{Kind: gen.RandomTopo, Procs: 8}},
	}
	ctx := context.Background()
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range topos {
		for _, het := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/het=%v", topo.name, het), func(t *testing.T) {
				rng := rand.New(rand.NewSource(42))
				g, err := gen.Generate(gen.Spec{Kind: gen.Random, Size: 60, Granularity: 1}, rng)
				if err != nil {
					t.Fatal(err)
				}
				nw, err := gen.Topology(topo.spec, rng)
				if err != nil {
					t.Fatal(err)
				}
				var sys *system.System
				if het {
					sys, err = system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rng)
					if err != nil {
						t.Fatal(err)
					}
				} else {
					sys = system.NewUniform(nw, g.NumTasks(), g.NumEdges())
				}
				p, err := sched.NewProblem(g, sys)
				if err != nil {
					t.Fatal(err)
				}
				prev, err := bsa.Schedule(ctx, p, sched.WithSeed(7))
				if err != nil {
					t.Fatal(err)
				}
				delta, p2 := removableProcDelta(t, p, prev)

				warm, err := sched.Reschedule(ctx, *prev, delta, sched.WithSeed(7))
				if err != nil {
					t.Fatalf("reschedule: %v", err)
				}
				if err := warm.Schedule.Validate(); err != nil {
					t.Fatalf("warm schedule invalid: %v", err)
				}
				cold, err := bsa.Schedule(ctx, p2, sched.WithSeed(7))
				if err != nil {
					t.Fatalf("cold post-delta: %v", err)
				}

				warmReplay, err := warm.Schedule.Replay()
				if err != nil {
					t.Fatalf("warm replay: %v", err)
				}
				coldReplay, err := cold.Schedule.Replay()
				if err != nil {
					t.Fatalf("cold replay: %v", err)
				}
				if warmReplay.Length > coldReplay.Length*1.1 {
					t.Errorf("warm replayed makespan %v exceeds cold %v by more than 10%%",
						warmReplay.Length, coldReplay.Length)
				}
				warmEv := warm.Stats.Get("evaluations")
				coldEv := cold.Stats.Get("evaluations")
				if warmEv >= coldEv {
					t.Errorf("warm evaluations %v not strictly below cold %v", warmEv, coldEv)
				}
			})
		}
	}
}

// TestRescheduleEvaluationSavings is the headline speed claim: after a
// single-processor-removal delta on the n=500 fully-connected-16
// benchmark instance, warm-start reconvergence evaluates at least 5x
// fewer migration candidates than cold-starting on the post-delta
// problem.
func TestRescheduleEvaluationSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("n=500 instance; skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(42))
	g, err := gen.RandomLayered(500, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := system.FullyConnected(16)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sched.NewProblem(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		t.Fatal(err)
	}
	prev, err := bsa.Schedule(ctx, p, sched.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	delta, p2 := removableProcDelta(t, p, prev)

	warm, err := sched.Reschedule(ctx, *prev, delta, sched.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Schedule.Validate(); err != nil {
		t.Fatalf("warm schedule invalid: %v", err)
	}
	cold, err := bsa.Schedule(ctx, p2, sched.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	warmEv := warm.Stats.Get("evaluations")
	coldEv := cold.Stats.Get("evaluations")
	if warmEv <= 0 {
		t.Fatalf("warm run evaluated no candidates (stats: %v)", warm.Stats)
	}
	if coldEv < 5*warmEv {
		t.Errorf("warm start evaluated %v candidates, cold %v: want >= 5x savings (got %.1fx)",
			warmEv, coldEv, coldEv/warmEv)
	}
	t.Logf("evaluations: warm=%v cold=%v (%.1fx), dirty=%v, warm SL=%v cold SL=%v",
		warmEv, coldEv, coldEv/warmEv, warm.Stats.Get("dirty_tasks"), warm.Makespan, cold.Makespan)
}
