package tests

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExternalConsumerBuilds compiles (and runs) tests/extmodule, a
// standalone Go module that consumes only the public repro/sched surface
// through a module `replace`. An external module physically cannot import
// repro/internal/..., so this is the compile-only proof that the public
// problem model is sufficient: builders, generators, JSON/DOT
// interchange, scheduling and the read-only schedule view.
func TestExternalConsumerBuilds(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	dir, err := filepath.Abs("extmodule")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
		t.Fatalf("extmodule missing: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "extconsumer")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Dir = dir
	build.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("external consumer failed to build:\n%s\nerror: %v", out, err)
	}
	run := exec.Command(bin)
	if out, err := run.CombinedOutput(); err != nil {
		t.Fatalf("external consumer failed to run:\n%s\nerror: %v", out, err)
	}
}
