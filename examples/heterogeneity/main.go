// Heterogeneity sweeps the heterogeneity factor range — the paper's
// Figure 7 axis — on a fixed random workload and hypercube, showing how
// schedule length degrades as the processor pool becomes more uneven and
// how BSA exploits fast processors for critical tasks (pivot selection,
// read from the run's BSATrace).
//
//	go run ./examples/heterogeneity
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/sched"
	"repro/sched/gen"
	_ "repro/sched/register"
	"repro/sched/system"
)

func main() {
	rng := rand.New(rand.NewSource(13))
	g, err := gen.RandomLayered(150, 1.0, rng)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := system.Hypercube(4)
	if err != nil {
		log.Fatal(err)
	}
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		log.Fatal(err)
	}
	dls, err := sched.Lookup("dls")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d-task random graph (granularity 1.0) on a 16-processor hypercube\n\n", g.NumTasks())
	fmt.Printf("%14s %10s %10s %12s %10s\n", "het range", "BSA", "DLS", "BSA pivot", "migrations")

	ctx := context.Background()
	for _, hi := range []float64{1, 10, 50, 100, 200} {
		sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, hi, rand.New(rand.NewSource(17)))
		if err != nil {
			log.Fatal(err)
		}
		problem := sched.Problem{Graph: g, System: sys}
		bres, err := bsa.Schedule(ctx, problem)
		if err != nil {
			log.Fatal(err)
		}
		dres, err := dls.Schedule(ctx, problem)
		if err != nil {
			log.Fatal(err)
		}
		trace, ok := bres.BSA()
		if !ok {
			log.Fatal("bsa result carries no BSA trace")
		}
		fmt.Printf("   [1, %5.0f] %10.0f %10.0f %12s %10d\n",
			hi, bres.Makespan, dres.Makespan, trace.PivotName, trace.Migrations)
	}

	fmt.Println("\n[1,1] is a homogeneous system; widening the range increases the")
	fmt.Println("penalty of placing a task on the wrong processor, so schedule")
	fmt.Println("lengths grow while the fastest-processor costs stay nominal.")
}
