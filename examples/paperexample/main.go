// Paperexample reproduces the worked example of the BSA paper (Figure 1
// graph, Table 1 processors, 4-processor ring): serialization onto the
// pivot, bubble migration, and the final schedules of both BSA and DLS.
//
//	go run ./examples/paperexample
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dls"
	"repro/internal/paperexample"
	"repro/internal/taskgraph"
)

func main() {
	g := paperexample.Graph()
	sys := paperexample.System(g)

	// The three-way task partition the serialization is built on.
	exec := sys.ExecCostsOn(1, g.NominalExecCosts()) // P2 = the first pivot
	part := core.PartitionTasks(g, exec, nil, nil)
	names := func(ids []taskgraph.TaskID) []string {
		out := make([]string, len(ids))
		for i, id := range ids {
			out[i] = g.Task(id).Name
		}
		return out
	}
	fmt.Println("Task partition w.r.t. the pivot's actual execution costs:")
	fmt.Println("  CP (critical path):", names(part.CP))
	fmt.Println("  IB (in-branch):    ", names(part.IB))
	fmt.Println("  OB (out-branch):   ", names(part.OB))

	res, err := core.Schedule(g, sys, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBSA: pivot %s, serial order %v\n",
		sys.Net.Proc(res.InitialPivot).Name, names(res.Serial))
	fmt.Printf("%d migrations over %d sweeps (paper reports SL = 138):\n\n", res.Migrations, res.Sweeps)
	if err := res.Schedule.WriteGantt(os.Stdout); err != nil {
		log.Fatal(err)
	}

	dres, err := dls.Schedule(g, sys, dls.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDLS baseline on the same instance:")
	if err := dres.Schedule.WriteGantt(os.Stdout); err != nil {
		log.Fatal(err)
	}

	impr := 100 * (dres.Schedule.Length() - res.Schedule.Length()) / dres.Schedule.Length()
	fmt.Printf("\nBSA improves on DLS by %.1f%% on the worked example.\n", impr)
}
