// Paperexample reproduces the worked example of the BSA paper (Figure 1
// graph, Table 1 processors, 4-processor ring): serialization onto the
// pivot, bubble migration, and the final schedules of both BSA and DLS,
// all through the public sched API (the serialization partition and the
// serial order come from the run's BSATrace).
//
//	go run ./examples/paperexample
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/sched"
	"repro/sched/gen"
	"repro/sched/graph"
	_ "repro/sched/register"
)

func main() {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	problem, err := sched.NewProblem(g, sys)
	if err != nil {
		log.Fatal(err)
	}
	names := func(ids []graph.TaskID) []string {
		out := make([]string, len(ids))
		for i, id := range ids {
			out[i] = g.Task(id).Name
		}
		return out
	}

	bsa, err := sched.Lookup("bsa")
	if err != nil {
		log.Fatal(err)
	}
	res, err := bsa.Schedule(context.Background(), problem)
	if err != nil {
		log.Fatal(err)
	}
	trace, ok := res.BSA()
	if !ok {
		log.Fatal("bsa result carries no BSA trace")
	}

	// The three-way task partition the serialization is built on.
	fmt.Println("Task partition w.r.t. the pivot's actual execution costs:")
	fmt.Println("  CP (critical path):", names(trace.CP))
	fmt.Println("  IB (in-branch):    ", names(trace.IB))
	fmt.Println("  OB (out-branch):   ", names(trace.OB))

	fmt.Printf("\nBSA: pivot %s, serial order %v\n", trace.PivotName, names(trace.Serial))
	fmt.Printf("%d migrations over %d sweeps (paper reports SL = 138):\n\n",
		trace.Migrations, trace.Sweeps)
	if err := res.Schedule.WriteGantt(os.Stdout); err != nil {
		log.Fatal(err)
	}

	dls, err := sched.Lookup("dls")
	if err != nil {
		log.Fatal(err)
	}
	dres, err := dls.Schedule(context.Background(), problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDLS baseline on the same instance:")
	if err := dres.Schedule.WriteGantt(os.Stdout); err != nil {
		log.Fatal(err)
	}

	impr := 100 * (dres.Makespan - res.Makespan) / dres.Makespan
	fmt.Printf("\nBSA improves on DLS by %.1f%% on the worked example.\n", impr)
}
