// Topologies studies the effect of processor connectivity — the axis of
// the paper's Figures 3-6 panels — by scheduling the same random workload
// on a ring, a hypercube, a clique and a random topology, and reporting
// schedule length, link utilisation and route lengths for BSA and DLS via
// the sched registry.
//
//	go run ./examples/topologies
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/sched"
	"repro/sched/gen"
	_ "repro/sched/register"
	"repro/sched/system"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	g, err := gen.RandomLayered(120, 1.0, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: random graph, %d tasks, %d messages, granularity %.2f\n\n",
		g.NumTasks(), g.NumEdges(), g.Granularity())

	topos := []struct {
		name  string
		build func() (*system.Network, error)
	}{
		{"ring", func() (*system.Network, error) { return system.Ring(16) }},
		{"hypercube", func() (*system.Network, error) { return system.Hypercube(4) }},
		{"clique", func() (*system.Network, error) { return system.FullyConnected(16) }},
		{"random", func() (*system.Network, error) {
			return system.RandomConnected(16, 2, 8, rand.New(rand.NewSource(5)))
		}},
	}

	bsa, err := sched.Lookup("bsa")
	if err != nil {
		log.Fatal(err)
	}
	dls, err := sched.Lookup("dls")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Printf("%10s %6s | %9s %8s %8s | %9s %8s %8s\n",
		"topology", "links", "BSA SL", "links%", "maxHops", "DLS SL", "links%", "maxHops")
	for _, tp := range topos {
		nw, err := tp.build()
		if err != nil {
			log.Fatal(err)
		}
		sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rand.New(rand.NewSource(11)))
		if err != nil {
			log.Fatal(err)
		}
		problem := sched.Problem{Graph: g, System: sys}

		bres, err := bsa.Schedule(ctx, problem)
		if err != nil {
			log.Fatal(err)
		}
		dres, err := dls.Schedule(ctx, problem)
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range []*sched.Result{bres, dres} {
			if err := res.Schedule.Validate(); err != nil {
				log.Fatal(err)
			}
		}
		bst, dst := bres.Schedule.Stats(), dres.Schedule.Stats()
		fmt.Printf("%10s %6d | %9.0f %7.1f%% %8d | %9.0f %7.1f%% %8d\n",
			tp.name, nw.NumLinks(),
			bst.Length, 100*bst.AvgLinkUtil, bst.MaxRouteHops,
			dst.Length, 100*dst.AvgLinkUtil, dst.MaxRouteHops)
	}

	fmt.Println("\nHigher connectivity gives every scheduler shorter schedules;")
	fmt.Println("low-connectivity topologies stress contention-aware message mapping.")
}
