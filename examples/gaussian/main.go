// Gaussian schedules a Gaussian-elimination task graph — one of the
// paper's regular applications — onto a heterogeneous ring, comparing all
// four implemented schedulers across granularities through the sched
// registry. It shows how communication weight flips the ranking between
// clustering (BSA) and greedy spreading (DLS/HEFT/CPOP) strategies.
//
//	go run ./examples/gaussian
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/sched"
	"repro/sched/gen"
	_ "repro/sched/register"
	"repro/sched/system"
)

func main() {
	nw, err := system.Ring(8)
	if err != nil {
		log.Fatal(err)
	}
	algos := []string{"bsa", "dls", "heft", "cpop"}

	fmt.Println("Gaussian elimination (N=14, ~100 tasks) on a heterogeneous 8-ring")
	fmt.Printf("%12s", "granularity")
	for _, a := range algos {
		fmt.Printf(" %10s", a)
	}
	fmt.Println()

	ctx := context.Background()
	for _, gran := range []float64{0.1, 1.0, 10.0} {
		rng := rand.New(rand.NewSource(7))
		g, err := gen.Gaussian(14, gran, rng)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rng)
		if err != nil {
			log.Fatal(err)
		}
		problem, err := sched.NewProblem(g, sys)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%12.1f", gran)
		for _, name := range algos {
			s, err := sched.Lookup(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := s.Schedule(ctx, problem, sched.WithSeed(7))
			if err != nil {
				log.Fatal(err)
			}
			if err := res.Schedule.Validate(); err != nil {
				log.Fatalf("%s: infeasible schedule: %v", name, err)
			}
			fmt.Printf(" %10.0f", res.Makespan)
		}
		fmt.Println()
	}

	fmt.Println("\nFine granularity (0.1) makes communication 10x heavier than")
	fmt.Println("computation: BSA's contention-aware clustering shines there.")
}
