// Gaussian schedules a Gaussian-elimination task graph — one of the
// paper's regular applications — onto a heterogeneous ring, comparing all
// four implemented schedulers across granularities. It shows how
// communication weight flips the ranking between clustering (BSA) and
// greedy spreading (DLS/HEFT/CPOP) strategies.
//
//	go run ./examples/gaussian
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cpop"
	"repro/internal/dls"
	"repro/internal/generator"
	"repro/internal/heft"
	"repro/internal/hetero"
	"repro/internal/network"
	"repro/internal/schedule"
)

func main() {
	nw, err := network.Ring(8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Gaussian elimination (N=14, ~100 tasks) on a heterogeneous 8-ring")
	fmt.Printf("%12s %10s %10s %10s %10s\n", "granularity", "BSA", "DLS", "HEFT", "CPOP")

	for _, gran := range []float64{0.1, 1.0, 10.0} {
		rng := rand.New(rand.NewSource(7))
		g, err := generator.Gaussian(14, gran, rng)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := hetero.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rng)
		if err != nil {
			log.Fatal(err)
		}

		sl := map[string]float64{}
		sl["BSA"] = mustLen(func() (*schedule.Schedule, error) {
			r, err := core.Schedule(g, sys, core.Options{Seed: 7})
			return sched(r, err)
		})
		sl["DLS"] = mustLen(func() (*schedule.Schedule, error) {
			r, err := dls.Schedule(g, sys, dls.Options{})
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		})
		sl["HEFT"] = mustLen(func() (*schedule.Schedule, error) {
			r, err := heft.Schedule(g, sys)
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		})
		sl["CPOP"] = mustLen(func() (*schedule.Schedule, error) {
			r, err := cpop.Schedule(g, sys)
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		})
		fmt.Printf("%12.1f %10.0f %10.0f %10.0f %10.0f\n", gran, sl["BSA"], sl["DLS"], sl["HEFT"], sl["CPOP"])
	}

	fmt.Println("\nFine granularity (0.1) makes communication 10x heavier than")
	fmt.Println("computation: BSA's contention-aware clustering shines there.")
}

func sched(r *core.Result, err error) (*schedule.Schedule, error) {
	if err != nil {
		return nil, err
	}
	return r.Schedule, nil
}

// mustLen runs a scheduler, validates the schedule and returns its length.
func mustLen(f func() (*schedule.Schedule, error)) float64 {
	s, err := f()
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		log.Fatalf("infeasible schedule: %v", err)
	}
	return s.Length()
}
