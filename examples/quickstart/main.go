// Quickstart: build a small task graph, a heterogeneous 4-processor ring,
// schedule it with BSA and print the resulting Gantt chart.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/network"
	"repro/internal/taskgraph"
)

func main() {
	// 1. Describe the parallel program: a fork-join with four workers.
	b := taskgraph.NewBuilder()
	split := b.AddTask("split", 10)
	join := b.AddTask("join", 10)
	for i := 1; i <= 4; i++ {
		w := b.AddTask(fmt.Sprintf("work%d", i), 50)
		b.AddEdge(split, w, 5) // distribute chunks
		b.AddEdge(w, join, 5)  // collect results
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Describe the target system: a 4-processor ring where P3 is twice
	// as fast as the others for the worker tasks.
	nw, err := network.Ring(4)
	if err != nil {
		log.Fatal(err)
	}
	sys := hetero.NewUniform(nw, g.NumTasks(), g.NumEdges())
	for t := 2; t < g.NumTasks(); t++ { // worker tasks
		sys.Exec[t][2] = 0.5
	}

	// 3. Schedule with BSA: tasks and messages are mapped together, links
	// are treated as contended resources and no routing table is needed.
	res, err := core.Schedule(g, sys, core.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the result.
	s := res.Schedule
	if err := s.Validate(); err != nil {
		log.Fatalf("schedule is infeasible: %v", err)
	}
	fmt.Printf("BSA scheduled %d tasks in %d migrations; first pivot %s\n\n",
		g.NumTasks(), res.Migrations, nw.Proc(res.InitialPivot).Name)
	if err := s.WriteGantt(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := s.WriteGanttChart(os.Stdout, 72); err != nil {
		log.Fatal(err)
	}
}
