// Quickstart: build a small task graph, a heterogeneous 4-processor ring,
// schedule it with BSA through the public sched API and print the
// resulting Gantt chart.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/sched"
	"repro/sched/graph"
	_ "repro/sched/register"
	"repro/sched/system"
)

func main() {
	// 1. Describe the parallel program: a fork-join with four workers.
	b := graph.NewBuilder()
	split := b.AddTask("split", 10)
	join := b.AddTask("join", 10)
	for i := 1; i <= 4; i++ {
		w := b.AddTask(fmt.Sprintf("work%d", i), 50)
		b.AddEdge(split, w, 5) // distribute chunks
		b.AddEdge(w, join, 5)  // collect results
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Describe the target system: a 4-processor ring where P3 is twice
	// as fast as the others for the worker tasks.
	nw, err := system.Ring(4)
	if err != nil {
		log.Fatal(err)
	}
	sys := system.NewUniform(nw, g.NumTasks(), g.NumEdges())
	for t := 2; t < g.NumTasks(); t++ { // worker tasks
		sys.Exec[t][2] = 0.5
	}

	// 3. Schedule with BSA via the registry: tasks and messages are
	// mapped together, links are treated as contended resources and no
	// routing table is needed. Any other registered name ("dls", "heft",
	// "cpop", ...) works the same way.
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		log.Fatal(err)
	}
	problem, err := sched.NewProblem(g, sys)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bsa.Schedule(context.Background(), problem, sched.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the result.
	s := res.Schedule
	if err := s.Validate(); err != nil {
		log.Fatalf("schedule is infeasible: %v", err)
	}
	fmt.Printf("%s\nmakespan %.2f in %v\n\n", res.Summary, res.Makespan, res.Elapsed)
	if err := s.WriteGantt(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := s.WriteGanttChart(os.Stdout, 72); err != nil {
		log.Fatal(err)
	}
}
