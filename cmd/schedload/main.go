// Command schedload load-tests a schedd and publishes the service's
// perf trajectory: sustained jobs/sec and client-observed latency
// percentiles, written as the BENCH_schedd.json document that sits
// beside BENCH_core.json.
//
// Usage:
//
//	schedload [-server URL] [-rps N] [-duration d] [-mix sync=1,async=8,batch=1]
//	          [-batch N] [-conns N] [-compare] [-fail-on-5xx] [-out FILE]
//	          [-graph kind] [-workload FILE] [-n N] [-granularity g]
//	          [-topology kind] [-procs N] [-algo name] [-seed N]
//
// Without -server, schedload starts an in-process schedd on a loopback
// port and drives that — the self-contained mode CI uses. The workload
// is one generated problem (sched/gen families) submitted over and over
// with varying seeds; -workload replays a real imported instance
// (testdata/workloads, .stg or workflow .json) instead of a generated
// graph, so BENCH_schedd.json can be produced from real workloads.
//
// The default mode is an open loop: requests fire on the target-RPS
// schedule regardless of how fast responses come back, so a slow server
// shows up as queueing and latency rather than as a politely slowed
// client. Arrivals beyond the in-flight cap are counted as dropped, not
// silently skipped. The -mix weights spread arrivals across synchronous
// scheduling, asynchronous submits, and batches of -batch jobs.
//
// -compare switches to two closed-loop saturation phases — every job
// submitted one request at a time, then the same jobs in batches — and
// reports the batch amortization as "batch_speedup" (the acceptance
// floor for the batch endpoint is 2x). Jobs/sec is measured server-side
// in both modes: the jobs_completed counter delta over the phase wall
// time, backlog drain included, so acceptance alone cannot inflate it.
//
// Both loops honor the server's queue_full backpressure: a shed job (a
// 503 on /v1/jobs, or a rejected item inside a batch response) pauses
// that worker briefly instead of re-hammering the full queue, and is
// counted under "backpressure" in the report rather than as a 5xx.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/sched/gen"
	"repro/sched/graph"
	_ "repro/sched/register"
	"repro/sched/service"
	"repro/sched/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		os.Exit(1)
	}
}

// report is the BENCH_schedd.json document.
type report struct {
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	TargetRPS float64       `json:"target_rps,omitempty"`
	Conns     int           `json:"conns,omitempty"` // closed-loop workers (-compare mode)
	DurationS float64       `json:"duration_s"`
	Problem   problemInfo   `json:"problem"`
	Phases    []phaseResult `json:"phases"`
	// BatchSpeedup is batch jobs/sec over single-submission jobs/sec at
	// equal problem size (-compare mode).
	BatchSpeedup float64 `json:"batch_speedup,omitempty"`
}

type problemInfo struct {
	Graph    string `json:"graph"`
	Tasks    int    `json:"tasks"`
	Edges    int    `json:"edges"`
	Topology string `json:"topology"`
	Procs    int    `json:"procs"`
	Algo     string `json:"algo"`
	Batch    int    `json:"batch"`
}

type phaseResult struct {
	Name     string `json:"name"`
	Requests int64  `json:"requests"`
	Dropped  int64  `json:"dropped,omitempty"`
	// HTTPErrors counts non-2xx responses by class; "transport" counts
	// requests that never got a response.
	HTTPErrors map[string]int64 `json:"http_errors"`
	JobsPerSec float64          `json:"jobs_per_sec"`
	// LatencyMS are client-observed per-request latency percentiles: time
	// to the full response for sync, to acceptance for async and batch.
	LatencyMS map[string]float64 `json:"latency_ms"`
	// LatencyHist is a cumulative histogram: requests with latency <= the
	// bucket bound in milliseconds.
	LatencyHist map[string]int64 `json:"latency_hist_ms"`
}

func run() error {
	server := flag.String("server", "", "schedd base URL (empty starts an in-process schedd)")
	rps := flag.Float64("rps", 200, "open-loop target arrivals per second")
	duration := flag.Duration("duration", 10*time.Second, "send window per phase")
	mixFlag := flag.String("mix", "sync=1,async=8,batch=1", "arrival mix weights (open loop)")
	batchSize := flag.Int("batch", 16, "jobs per batch request")
	conns := flag.Int("conns", 8, "concurrent connections (-compare closed loop)")
	compare := flag.Bool("compare", false, "closed-loop single-vs-batch throughput comparison")
	failOn5xx := flag.Bool("fail-on-5xx", false, "exit nonzero if any 5xx was observed")
	out := flag.String("out", "", "write the report here instead of stdout")
	graphKind := flag.String("graph", "random", "generated graph family (sched/gen kinds)")
	workloadFile := flag.String("workload", "", "replay a workload instance (.stg or workflow .json) instead of generating -graph")
	nTasks := flag.Int("n", 40, "approximate task count")
	granularity := flag.Float64("granularity", 1.0, "mean-exec / mean-comm")
	topoKind := flag.String("topology", "ring", "generated network family")
	procs := flag.Int("procs", 8, "processor count")
	algo := flag.String("algo", "heft", "algorithm per job")
	seed := flag.Int64("seed", 1, "problem generation seed (job i adds i)")
	flag.Parse()

	tk, err := gen.TopoKindByName(*topoKind)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Graph
	graphLabel := *graphKind
	if *workloadFile != "" {
		g, err = workload.LoadFile(*workloadFile, workload.Options{Granularity: *granularity})
		graphLabel = "workload:" + filepath.Base(*workloadFile)
	} else {
		var kind gen.Kind
		kind, err = gen.KindByName(*graphKind)
		if err != nil {
			return err
		}
		g, err = gen.Generate(gen.Spec{Kind: kind, Size: *nTasks, Granularity: *granularity}, rng)
	}
	if err != nil {
		return err
	}
	nw, err := gen.Topology(gen.TopoSpec{Kind: tk, Procs: *procs}, rng)
	if err != nil {
		return err
	}
	graphDoc, err := g.MarshalJSON()
	if err != nil {
		return err
	}
	topoDoc, err := nw.MarshalJSON()
	if err != nil {
		return err
	}

	base := *server
	var shutdown func() error
	if base == "" {
		base, shutdown, err = startLocal()
		if err != nil {
			return err
		}
		// Closure, not `defer shutdown()`: compare mode swaps in a fresh
		// server (and shutdown func) between phases.
		defer func() {
			if shutdown != nil {
				shutdown() //nolint:errcheck // best-effort teardown
			}
		}()
	}
	client := service.NewClient(base, &http.Client{})
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("server %s not healthy: %w", base, err)
	}

	lg := &loadgen{
		client:    client,
		graphDoc:  graphDoc,
		topoDoc:   topoDoc,
		algo:      *algo,
		seedBase:  *seed,
		batchSize: *batchSize,
	}

	rep := report{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		DurationS: duration.Seconds(),
		Problem: problemInfo{
			Graph:    graphLabel,
			Tasks:    g.NumTasks(),
			Edges:    g.NumEdges(),
			Topology: *topoKind,
			Procs:    *procs,
			Algo:     *algo,
			Batch:    *batchSize,
		},
	}

	if *compare {
		rep.Conns = *conns
		single, err := lg.closedLoop(ctx, "single", *conns, *duration, lg.submitOne)
		if err != nil {
			return err
		}
		// Give the batch phase a fresh in-process server: the single phase
		// leaves tens of thousands of finished records live in the store,
		// and the batch phase would pay that heap's GC scan cost for work
		// it did not create. An external -server is measured as-is.
		if shutdown != nil {
			if err := shutdown(); err != nil {
				return err
			}
			base, shutdown, err = startLocal()
			if err != nil {
				return err
			}
			client = service.NewClient(base, &http.Client{})
			lg.client = client
			if err := client.Health(ctx); err != nil {
				return fmt.Errorf("server %s not healthy: %w", base, err)
			}
		}
		batch, err := lg.closedLoop(ctx, "batch", *conns, *duration, lg.submitBatch)
		if err != nil {
			return err
		}
		rep.Phases = []phaseResult{single, batch}
		if single.JobsPerSec > 0 {
			rep.BatchSpeedup = batch.JobsPerSec / single.JobsPerSec
		}
	} else {
		rep.TargetRPS = *rps
		pattern, err := parseMix(*mixFlag)
		if err != nil {
			return err
		}
		phase, err := lg.openLoop(ctx, "mixed", *rps, *duration, pattern)
		if err != nil {
			return err
		}
		rep.Phases = []phaseResult{phase}
	}

	data, err := json.MarshalIndent(&rep, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(data)
	}

	if *failOn5xx {
		for _, p := range rep.Phases {
			// queue_full backpressure is orderly load shedding, counted
			// separately; 5xx here means the server actually misbehaved.
			// Per-item batch failures are misconfiguration and fail too.
			if n := p.HTTPErrors["5xx"]; n > 0 {
				return fmt.Errorf("phase %s observed %d 5xx responses", p.Name, n)
			}
			if n := p.HTTPErrors["item_errors"]; n > 0 {
				return fmt.Errorf("phase %s observed %d failed batch items", p.Name, n)
			}
		}
	}
	return nil
}

// startLocal boots an in-process schedd on a loopback port.
func startLocal() (string, func() error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := service.New(service.Config{})
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck // reported through requests failing
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck // drain below is the real wait
		return srv.Drain(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// parseMix expands "sync=1,async=8,batch=1" into an arrival pattern the
// open loop cycles through.
func parseMix(s string) ([]string, error) {
	var pattern []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want name=weight)", part)
		}
		var weight int
		if _, err := fmt.Sscanf(weightStr, "%d", &weight); err != nil || weight < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", weightStr)
		}
		switch name {
		case "sync", "async", "batch":
		default:
			return nil, fmt.Errorf("unknown -mix op %q (want sync, async or batch)", name)
		}
		for i := 0; i < weight; i++ {
			pattern = append(pattern, name)
		}
	}
	if len(pattern) == 0 {
		return nil, fmt.Errorf("-mix selects no operations")
	}
	return pattern, nil
}

// loadgen issues the generated problem against one server and collects
// per-request samples.
type loadgen struct {
	client    *service.Client
	graphDoc  []byte
	topoDoc   []byte
	algo      string
	seedBase  int64
	batchSize int

	mu      sync.Mutex
	samples []time.Duration
	errs    map[string]int64
}

func (lg *loadgen) request(i int64) service.ScheduleRequest {
	return service.ScheduleRequest{
		Algo:     lg.algo,
		Graph:    lg.graphDoc,
		Topology: lg.topoDoc,
		Seed:     lg.seedBase + i,
	}
}

func (lg *loadgen) record(elapsed time.Duration, err error) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.samples = append(lg.samples, elapsed)
	if err == nil {
		return
	}
	if apiErr, ok := err.(*service.APIError); ok {
		lg.errs[fmt.Sprintf("%dxx", apiErr.StatusCode/100)]++
	} else {
		lg.errs["transport"]++
	}
}

func (lg *loadgen) reset() {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.samples = lg.samples[:0]
	lg.errs = make(map[string]int64)
}

// backpressureDelay is how long a worker pauses after the server sheds
// load with queue_full. Hammering a full queue makes the server burn CPU
// accepting-then-rejecting instead of scheduling, which deflates the
// completed-jobs/sec both phases are measured by; a well-behaved client
// backs off and lets the queue drain. The pause runs inside the op, so
// under saturation the latency histogram shows the induced pacing —
// that is the client-experienced truth, not a measurement bug.
const backpressureDelay = 2 * time.Millisecond

// retryAfterCap bounds how much of a server's Retry-After hint a worker
// honors. The hint's integer-seconds resolution is meant for polite
// external clients; a load generator sleeping full seconds per shed job
// would stop generating load, so it takes the hint but caps the pause.
const retryAfterCap = 100 * time.Millisecond

// noteBackpressure counts n shed jobs and pauses the calling worker —
// for the server's Retry-After hint when one arrived (capped), else the
// default delay.
func (lg *loadgen) noteBackpressure(n int64, retryAfter time.Duration) {
	delay := backpressureDelay
	if retryAfter > 0 {
		delay = retryAfter
		if delay > retryAfterCap {
			delay = retryAfterCap
		}
		lg.mu.Lock()
		lg.errs["retry_after_honored"]++
		lg.mu.Unlock()
	}
	lg.mu.Lock()
	lg.errs["backpressure"] += n
	lg.mu.Unlock()
	time.Sleep(delay)
}

func (lg *loadgen) submitOne(ctx context.Context, i int64) error {
	_, err := lg.client.Submit(ctx, lg.request(i))
	if apiErr, ok := err.(*service.APIError); ok && apiErr.Body.Code == service.CodeQueueFull {
		lg.noteBackpressure(1, apiErr.RetryAfter)
		return nil
	}
	return err
}

func (lg *loadgen) submitBatch(ctx context.Context, i int64) error {
	req := service.BatchRequest{Graph: lg.graphDoc, Topology: lg.topoDoc}
	for k := 0; k < lg.batchSize; k++ {
		req.Jobs = append(req.Jobs, service.ScheduleRequest{
			Algo: lg.algo,
			Seed: lg.seedBase + i*int64(lg.batchSize) + int64(k),
		})
	}
	resp, err := lg.client.SubmitBatch(ctx, req)
	if err != nil {
		return err
	}
	// The batch endpoint reports per-item outcomes: a full queue rejects
	// the overflowing items without failing the request. Shed items are
	// backpressure; anything else is a real per-item failure.
	var shed, failed int64
	for _, item := range resp.Jobs {
		switch {
		case item.Error == nil:
		case item.Error.Code == service.CodeQueueFull:
			shed++
		default:
			failed++
		}
	}
	if failed > 0 {
		lg.mu.Lock()
		lg.errs["item_errors"] += failed
		lg.mu.Unlock()
	}
	if shed > 0 {
		// Per-item rejections ride a 2xx envelope, so no Retry-After
		// header reaches the client; use the default pacing delay.
		lg.noteBackpressure(shed, 0)
	}
	return nil
}

func (lg *loadgen) scheduleSync(ctx context.Context, i int64) error {
	_, err := lg.client.Schedule(ctx, lg.request(i))
	return err
}

// openLoop fires arrivals on the target-RPS schedule for the window,
// then waits for the backlog to drain.
func (lg *loadgen) openLoop(ctx context.Context, name string, rps float64, window time.Duration, pattern []string) (phaseResult, error) {
	if rps <= 0 {
		return phaseResult{}, fmt.Errorf("-rps must be positive")
	}
	lg.reset()
	before, err := lg.client.Metrics(ctx)
	if err != nil {
		return phaseResult{}, err
	}
	// The in-flight cap bounds leaked goroutines when the server falls
	// hopelessly behind; arrivals beyond it are dropped and reported.
	sem := make(chan struct{}, 1024)
	var (
		wg       sync.WaitGroup
		requests int64
		dropped  int64
	)
	start := time.Now()
	for i := int64(0); ; i++ {
		at := start.Add(time.Duration(float64(i) / rps * float64(time.Second)))
		if at.Sub(start) >= window {
			break
		}
		time.Sleep(time.Until(at))
		select {
		case sem <- struct{}{}:
		default:
			dropped++
			continue
		}
		requests++
		op := pattern[i%int64(len(pattern))]
		wg.Add(1)
		go func(op string, i int64) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			var err error
			switch op {
			case "sync":
				err = lg.scheduleSync(ctx, i)
			case "async":
				err = lg.submitOne(ctx, i)
			case "batch":
				err = lg.submitBatch(ctx, i)
			}
			lg.record(time.Since(t0), err)
		}(op, i)
	}
	wg.Wait()
	if err := lg.drain(ctx); err != nil {
		return phaseResult{}, err
	}
	elapsed := time.Since(start)
	after, err := lg.client.Metrics(ctx)
	if err != nil {
		return phaseResult{}, err
	}
	res := lg.result(name, elapsed, before, after)
	res.Requests = requests
	res.Dropped = dropped
	return res, nil
}

// closedLoop saturates the server with conns workers issuing op
// back-to-back for the window, then waits for the backlog to drain.
func (lg *loadgen) closedLoop(ctx context.Context, name string, conns int, window time.Duration, op func(context.Context, int64) error) (phaseResult, error) {
	if conns < 1 {
		conns = 1
	}
	lg.reset()
	before, err := lg.client.Metrics(ctx)
	if err != nil {
		return phaseResult{}, err
	}
	var (
		wg       sync.WaitGroup
		requests atomic.Int64
	)
	start := time.Now()
	deadline := start.Add(window)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				i := requests.Add(1)
				t0 := time.Now()
				err := op(ctx, i)
				lg.record(time.Since(t0), err)
			}
		}()
	}
	wg.Wait()
	if err := lg.drain(ctx); err != nil {
		return phaseResult{}, err
	}
	elapsed := time.Since(start)
	after, err := lg.client.Metrics(ctx)
	if err != nil {
		return phaseResult{}, err
	}
	res := lg.result(name, elapsed, before, after)
	res.Requests = requests.Load()
	return res, nil
}

// drain polls the server until no accepted job is still in flight, so
// jobs/sec reflects completed work, not queue depth.
func (lg *loadgen) drain(ctx context.Context) error {
	deadline := time.Now().Add(2 * time.Minute)
	for {
		m, err := lg.client.Metrics(ctx)
		if err != nil {
			return err
		}
		if m["jobs_in_flight"] == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("backlog failed to drain: %d jobs still in flight", m["jobs_in_flight"])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

var histBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}

func (lg *loadgen) result(name string, elapsed time.Duration, before, after map[string]int64) phaseResult {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	res := phaseResult{
		Name:        name,
		HTTPErrors:  map[string]int64{"4xx": lg.errs["4xx"], "5xx": lg.errs["5xx"], "transport": lg.errs["transport"]},
		LatencyMS:   make(map[string]float64),
		LatencyHist: make(map[string]int64),
	}
	// Overlay the non-HTTP counters (backpressure sheds, per-item batch
	// failures) so the report shows dropped work instead of hiding it.
	for k, v := range lg.errs {
		res.HTTPErrors[k] = v
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.JobsPerSec = float64(after["jobs_completed"]-before["jobs_completed"]) / sec
	}
	if len(lg.samples) > 0 {
		sorted := append([]time.Duration(nil), lg.samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(sorted)-1))
			return float64(sorted[idx]) / float64(time.Millisecond)
		}
		res.LatencyMS["p50"] = pct(0.50)
		res.LatencyMS["p90"] = pct(0.90)
		res.LatencyMS["p99"] = pct(0.99)
		res.LatencyMS["max"] = float64(sorted[len(sorted)-1]) / float64(time.Millisecond)
		for _, b := range histBounds {
			key := fmt.Sprintf("le_%g", b)
			n := sort.Search(len(sorted), func(i int) bool {
				return float64(sorted[i])/float64(time.Millisecond) > b
			})
			res.LatencyHist[key] = int64(n)
		}
		res.LatencyHist["le_inf"] = int64(len(sorted))
	}
	return res
}
