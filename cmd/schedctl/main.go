// Command schedctl drives a running schedd from the command line through
// service.Client.
//
// Usage:
//
//	schedctl [-server URL] schedule -graph g.json (-topo t.json | -system s.json)
//	         [-algo name] [-het lo,hi] [-het-seed N] [-seed N] [-timeout d]
//	         [-async] [-json]
//	schedctl [-server URL] reschedule JOB_ID -delta d.json [-seed N]
//	         [-timeout d] [-async] [-poll d] [-json]
//	schedctl [-server URL] status JOB_ID [-json]
//	schedctl [-server URL] wait JOB_ID [-poll d] [-json]
//	schedctl [-server URL] watch JOB_ID [-json]
//	schedctl [-server URL] batch (-file b.json | -graph g.json (-topo t.json | -system s.json)
//	         [-algo name] [-count N] [-seed-base N]) [-key-prefix P] [-wait] [-json]
//	schedctl [-server URL] algos
//	schedctl [-server URL] health
//	schedctl [-server URL] cluster
//	schedctl [-server URL] metrics
//
// schedule submits the problem synchronously by default and prints the
// summary, makespan and stats; -json dumps the raw wire response instead
// (the schedule document inside it is byte-identical to what cmd/bsasched
// -json prints for the same problem). With -async it submits a job and
// prints its ID without waiting.
//
// reschedule applies a quasi-dynamic problem delta (sched's Delta
// interchange document: remove_procs, remove_links, exec_factors,
// comm_factors, add_tasks, add_edges) to a finished job's schedule and
// warm-starts BSA from it. By default it waits for the reconverged
// schedule; -async prints the new job's ID instead.
//
// watch follows a job's SSE event stream instead of polling, printing
// each status transition and exiting when the job is terminal.
//
// batch submits many jobs in one request: either a full BatchRequest
// document (-file), or -count copies of one problem with seeds
// seed-base, seed-base+1, ... (a parameter sweep). It prints the
// accepted job IDs; -wait then follows them all to completion.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/sched/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "schedctl:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: schedctl [-server URL] <schedule|batch|reschedule|status|wait|watch|algos|health|cluster|metrics> [args]")
}

func run() error {
	server := flag.String("server", "http://127.0.0.1:8080", "schedd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return usage()
	}
	client := service.NewClient(*server, nil)
	ctx := context.Background()

	switch args[0] {
	case "schedule":
		return schedule(ctx, client, args[1:])
	case "reschedule":
		return reschedule(ctx, client, args[1:])
	case "batch":
		return batch(ctx, client, args[1:])
	case "watch":
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "print the raw wire views")
		id, rest := peelJobID(args[1:])
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if id == "" && fs.NArg() == 1 {
			id = fs.Arg(0)
		} else if fs.NArg() != 0 {
			id = ""
		}
		if id == "" {
			return fmt.Errorf("watch needs exactly one JOB_ID")
		}
		var watchErr error
		v, err := client.Watch(ctx, id, func(v *service.JobView) {
			if v.Status.Terminal() {
				return // the terminal view prints in full below
			}
			if *asJSON {
				watchErr = dumpJSON(v)
			} else {
				fmt.Printf("%s: %s\n", v.ID, v.Status)
			}
		})
		if err != nil {
			return err
		}
		if watchErr != nil {
			return watchErr
		}
		return printJob(v, *asJSON)
	case "status", "wait":
		fs := flag.NewFlagSet(args[0], flag.ExitOnError)
		poll := fs.Duration("poll", 100*time.Millisecond, "poll interval (wait)")
		asJSON := fs.Bool("json", false, "print the raw wire response")
		id, rest := peelJobID(args[1:])
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if id == "" && fs.NArg() == 1 {
			id = fs.Arg(0)
		} else if fs.NArg() != 0 {
			id = ""
		}
		if id == "" {
			return fmt.Errorf("%s needs exactly one JOB_ID", args[0])
		}
		var (
			v   *service.JobView
			err error
		)
		if args[0] == "wait" {
			v, err = client.Wait(ctx, id, *poll)
		} else {
			v, err = client.Job(ctx, id)
		}
		if err != nil {
			return err
		}
		return printJob(v, *asJSON)
	case "algos":
		algos, err := client.Algos(ctx)
		if err != nil {
			return err
		}
		for _, a := range algos {
			name := a.Name
			if len(a.Aliases) > 0 {
				name += " (" + strings.Join(a.Aliases, ", ") + ")"
			}
			fmt.Printf("%-24s %s\n", name, a.Description)
		}
		return nil
	case "health":
		if err := client.Health(ctx); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	case "cluster":
		view, err := client.Cluster(ctx)
		if err != nil {
			return err
		}
		for _, n := range view.Nodes {
			mark, health := " ", "healthy"
			if n.Self {
				mark = "*"
			}
			if !n.Healthy {
				health = "unreachable"
			}
			fmt.Printf("%s %-10s %-24s %s\n", mark, n.Token, n.Addr, health)
		}
		return nil
	case "metrics":
		m, err := client.Metrics(ctx)
		if err != nil {
			return err
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-24s %d\n", k, m[k])
		}
		return nil
	default:
		return usage()
	}
}

// batch submits many jobs in one POST /v1/batch round trip.
func batch(ctx context.Context, client *service.Client, args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	filePath := fs.String("file", "", "full BatchRequest JSON document")
	graphPath := fs.String("graph", "", "task graph JSON file (sweep mode)")
	topoPath := fs.String("topo", "", "topology (bare network) JSON file")
	systemPath := fs.String("system", "", "full system JSON file")
	algo := fs.String("algo", "", "algorithm name (empty = server default)")
	count := fs.Int("count", 1, "number of sweep jobs")
	seedBase := fs.Int64("seed-base", 1, "first sweep seed (job i uses seed-base+i)")
	keyPrefix := fs.String("key-prefix", "", "idempotency key prefix (job i gets PREFIX-i)")
	wait := fs.Bool("wait", false, "follow every accepted job to completion")
	poll := fs.Duration("poll", 100*time.Millisecond, "poll interval while waiting")
	asJSON := fs.Bool("json", false, "print the raw wire response")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var req service.BatchRequest
	switch {
	case *filePath != "":
		data, err := os.ReadFile(*filePath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &req); err != nil {
			return fmt.Errorf("parse %s: %v", *filePath, err)
		}
	case *graphPath != "" && (*topoPath != "") != (*systemPath != ""):
		var err error
		if req.Graph, err = os.ReadFile(*graphPath); err != nil {
			return err
		}
		if *systemPath != "" {
			if req.System, err = os.ReadFile(*systemPath); err != nil {
				return err
			}
		} else if req.Topology, err = os.ReadFile(*topoPath); err != nil {
			return err
		}
		if *count < 1 {
			return fmt.Errorf("batch needs -count >= 1")
		}
		for i := 0; i < *count; i++ {
			job := service.ScheduleRequest{Algo: *algo, Seed: *seedBase + int64(i)}
			if *keyPrefix != "" {
				job.IdempotencyKey = fmt.Sprintf("%s-%d", *keyPrefix, i)
			}
			req.Jobs = append(req.Jobs, job)
		}
	default:
		return fmt.Errorf("batch needs -file, or -graph and exactly one of -topo / -system")
	}

	resp, err := client.SubmitBatch(ctx, req)
	if err != nil {
		return err
	}
	if *asJSON && !*wait {
		return dumpJSON(resp)
	}
	failed := 0
	for i, item := range resp.Jobs {
		if item.Error != nil {
			failed++
			fmt.Fprintf(os.Stderr, "schedctl: job %d rejected: %s\n", i, item.Error.Error())
			continue
		}
		if !*wait {
			fmt.Println(item.Job.ID)
		}
	}
	if *wait {
		for _, item := range resp.Jobs {
			if item.Job == nil {
				continue
			}
			v, err := client.Wait(ctx, item.Job.ID, *poll)
			if err != nil {
				return err
			}
			if err := printJob(v, *asJSON); err != nil {
				return err
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d jobs rejected", failed, len(resp.Jobs))
	}
	return nil
}

// peelJobID splits a leading non-flag token off the argument list so the
// documented "SUBCOMMAND JOB_ID -flag ..." order works: the standard flag
// package stops parsing at the first positional argument, so the JOB_ID
// must come off before Parse sees the flags. A trailing JOB_ID
// ("SUBCOMMAND -flag ... JOB_ID") still works via fs.Arg(0).
func peelJobID(args []string) (id string, rest []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}

func schedule(ctx context.Context, client *service.Client, args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	graphPath := fs.String("graph", "", "task graph JSON file (required)")
	topoPath := fs.String("topo", "", "topology (bare network) JSON file")
	systemPath := fs.String("system", "", "full system JSON file (network + factor matrices)")
	algo := fs.String("algo", "", "algorithm name (empty = server default)")
	het := fs.String("het", "", "random heterogeneity range lo,hi over -topo")
	hetSeed := fs.Int64("het-seed", 1, "heterogeneity factor seed")
	seed := fs.Int64("seed", 1, "scheduler tie-break seed")
	timeout := fs.Duration("timeout", 0, "per-request deadline (0 = none)")
	async := fs.Bool("async", false, "submit a job and print its ID instead of waiting")
	asJSON := fs.Bool("json", false, "print the raw wire response")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || (*topoPath == "") == (*systemPath == "") {
		return fmt.Errorf("schedule needs -graph and exactly one of -topo / -system")
	}

	req := service.ScheduleRequest{Algo: *algo, Seed: *seed, TimeoutMS: timeout.Milliseconds()}
	var err error
	if req.Graph, err = os.ReadFile(*graphPath); err != nil {
		return err
	}
	if *systemPath != "" {
		if req.System, err = os.ReadFile(*systemPath); err != nil {
			return err
		}
	} else {
		if req.Topology, err = os.ReadFile(*topoPath); err != nil {
			return err
		}
	}
	if *het != "" {
		var lo, hi float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(*het, " ", ""), "%f,%f", &lo, &hi); err != nil {
			return fmt.Errorf("bad -het %q (want lo,hi): %v", *het, err)
		}
		req.Het = &service.HetSpec{Lo: lo, Hi: hi, Seed: *hetSeed}
	}

	// Fire and forget, exactly as documented: the printed ID feeds the
	// status / wait subcommands.
	if *async {
		v, err := client.Submit(ctx, req)
		if err != nil {
			return err
		}
		if *asJSON {
			return dumpJSON(v)
		}
		fmt.Println(v.ID)
		return nil
	}
	res, err := client.Schedule(ctx, req)
	if err != nil {
		return err
	}
	return printResult(res, *asJSON)
}

func reschedule(ctx context.Context, client *service.Client, args []string) error {
	fs := flag.NewFlagSet("reschedule", flag.ExitOnError)
	deltaPath := fs.String("delta", "", "problem delta JSON file (required)")
	seed := fs.Int64("seed", 1, "reconvergence tie-break seed")
	timeout := fs.Duration("timeout", 0, "per-request deadline (0 = none)")
	async := fs.Bool("async", false, "submit the reschedule job and print its ID instead of waiting")
	poll := fs.Duration("poll", 100*time.Millisecond, "poll interval while waiting")
	asJSON := fs.Bool("json", false, "print the raw wire response")
	id, rest := peelJobID(args)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if id == "" && fs.NArg() == 1 {
		id = fs.Arg(0)
	} else if fs.NArg() != 0 {
		id = ""
	}
	if id == "" || *deltaPath == "" {
		return fmt.Errorf("reschedule needs exactly one JOB_ID and -delta")
	}
	delta, err := os.ReadFile(*deltaPath)
	if err != nil {
		return err
	}
	req := service.RescheduleRequest{Delta: delta, Seed: *seed, TimeoutMS: timeout.Milliseconds()}
	v, err := client.Reschedule(ctx, id, req)
	if err != nil {
		return err
	}
	if *async {
		if *asJSON {
			return dumpJSON(v)
		}
		fmt.Println(v.ID)
		return nil
	}
	done, err := client.Wait(ctx, v.ID, *poll)
	if err != nil {
		return err
	}
	return printJob(done, *asJSON)
}

func printJob(v *service.JobView, asJSON bool) error {
	if asJSON {
		return dumpJSON(v)
	}
	if v.Error != nil {
		return fmt.Errorf("job %s failed: %s", v.ID, v.Error.Error())
	}
	if v.Result == nil {
		fmt.Printf("%s: %s (%s)\n", v.ID, v.Status, v.Algo)
		return nil
	}
	fmt.Printf("%s: %s\n", v.ID, v.Status)
	return printResult(v.Result, false)
}

func printResult(res *service.ScheduleResponse, asJSON bool) error {
	if asJSON {
		return dumpJSON(res)
	}
	fmt.Println(res.Summary)
	fmt.Printf("makespan %.2f in %v\n", res.Makespan, time.Duration(res.ElapsedNS).Round(time.Microsecond))
	keys := make([]string, 0, len(res.Stats))
	for k := range res.Stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-16s %g\n", k, res.Stats[k])
	}
	return nil
}

func dumpJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
