// Command bsasched schedules a task graph (JSON) onto a processor network
// (JSON) with any algorithm in the sched registry and prints the resulting
// schedule, statistics and an ASCII Gantt chart. The schedule is checked by
// the feasibility validator and cross-checked by the event-driven replay
// simulator before being reported.
//
// Usage:
//
//	bsasched -graph g.json (-topo t.json | -system s.json) [-algo <name>]
//	         [-het lo,hi] [-seed N] [-chart] [-timeout d] [-json]
//	bsasched -list-algos
//
// The algorithm set is not hardcoded: -list-algos prints every registered
// algorithm (bsa, bsa-full, dls, heft, cpop, plus anything an embedding
// registers) and -algo accepts any of their names or aliases,
// case-insensitively.
//
// Without -het the system is homogeneous (all factors 1); with -het the
// factors are drawn uniformly from [lo,hi] and min-normalized per task so
// the fastest processor runs at the nominal cost. -system takes a full
// system document (network plus explicit factor matrices, the
// system.SystemFromJSON schema) instead of -topo.
//
// -json replaces the human-readable report with the schedule's JSON
// document — the same bytes repro/sched/service returns for the same
// problem, which the end-to-end tests compare against.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/sched"
	"repro/sched/graph"
	_ "repro/sched/register"
	"repro/sched/system"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bsasched:", err)
		os.Exit(1)
	}
}

func run() error {
	graphPath := flag.String("graph", "", "task graph JSON file (required)")
	topoPath := flag.String("topo", "", "topology JSON file")
	systemPath := flag.String("system", "", "full system JSON file (alternative to -topo)")
	algo := flag.String("algo", "bsa", "scheduling algorithm (see -list-algos)")
	listAlgos := flag.Bool("list-algos", false, "list the registered algorithms and exit")
	het := flag.String("het", "", "heterogeneity factor range lo,hi (default: homogeneous)")
	seed := flag.Int64("seed", 1, "random seed for heterogeneity factors and tie-breaks")
	chart := flag.Bool("chart", false, "also print a proportional ASCII Gantt chart")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
	jsonOut := flag.Bool("json", false, "print the schedule as JSON instead of the report")
	flag.Parse()

	if *listAlgos {
		fmt.Println("registered algorithms:")
		for _, d := range sched.List() {
			name := d.Name
			if len(d.Aliases) > 0 {
				name += " (" + strings.Join(d.Aliases, ", ") + ")"
			}
			fmt.Printf("  %-24s %s\n", name, d.Description)
		}
		return nil
	}

	if *graphPath == "" || (*topoPath == "") == (*systemPath == "") {
		flag.Usage()
		return fmt.Errorf("-graph and exactly one of -topo / -system are required")
	}
	scheduler, err := sched.Lookup(*algo)
	if err != nil {
		return err
	}
	gf, err := os.ReadFile(*graphPath)
	if err != nil {
		return err
	}
	g, err := graph.FromJSON(gf)
	if err != nil {
		return err
	}

	var sys *system.System
	if *systemPath != "" {
		if *het != "" {
			return fmt.Errorf("-het applies to -topo, not to a full -system document")
		}
		sf, err := os.ReadFile(*systemPath)
		if err != nil {
			return err
		}
		if sys, err = system.SystemFromJSON(sf); err != nil {
			return err
		}
	} else {
		tf, err := os.ReadFile(*topoPath)
		if err != nil {
			return err
		}
		nw, err := system.FromJSON(tf)
		if err != nil {
			return err
		}
		if *het == "" {
			sys = system.NewUniform(nw, g.NumTasks(), g.NumEdges())
		} else {
			var lo, hi float64
			if _, err := fmt.Sscanf(strings.ReplaceAll(*het, " ", ""), "%f,%f", &lo, &hi); err != nil {
				return fmt.Errorf("bad -het %q (want lo,hi): %v", *het, err)
			}
			sys, err = system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), lo, hi, rand.New(rand.NewSource(*seed)))
			if err != nil {
				return err
			}
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	problem, err := sched.NewProblem(g, sys)
	if err != nil {
		return err
	}
	res, err := scheduler.Schedule(ctx, problem, sched.WithSeed(*seed))
	if err != nil {
		return err
	}

	s := res.Schedule
	if err := s.Validate(); err != nil {
		return fmt.Errorf("schedule failed validation: %w", err)
	}
	replay, err := s.Replay()
	if err != nil {
		return fmt.Errorf("replay check failed: %w", err)
	}
	if *jsonOut {
		return s.WriteJSON(os.Stdout)
	}
	fmt.Println(res.Summary)

	if err := s.WriteGantt(os.Stdout); err != nil {
		return err
	}
	st := s.Stats()
	fmt.Println(st.String())
	fmt.Printf("replay: %d events, simulated length %.2f (schedule %.2f, %v)\n",
		replay.Events, replay.Length, res.Makespan, res.Elapsed.Round(time.Microsecond))
	if *chart {
		if err := s.WriteGanttChart(os.Stdout, 100); err != nil {
			return err
		}
	}
	return nil
}
