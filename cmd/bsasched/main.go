// Command bsasched schedules a task graph (JSON) onto a processor network
// (JSON) with one of the implemented algorithms and prints the resulting
// schedule, statistics and an ASCII Gantt chart. The schedule is checked by
// the feasibility validator and cross-checked by the event-driven replay
// simulator before being reported.
//
// Usage:
//
//	bsasched -graph g.json -topo t.json [-algo bsa|dls|heft|cpop]
//	         [-het lo,hi] [-seed N] [-chart] [-dot out.dot]
//
// Without -het the system is homogeneous (all factors 1); with -het the
// factors are drawn uniformly from [lo,hi] and min-normalized per task so
// the fastest processor runs at the nominal cost.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/cpop"
	"repro/internal/dls"
	"repro/internal/heft"
	"repro/internal/hetero"
	"repro/internal/network"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/taskgraph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bsasched:", err)
		os.Exit(1)
	}
}

func run() error {
	graphPath := flag.String("graph", "", "task graph JSON file (required)")
	topoPath := flag.String("topo", "", "topology JSON file (required)")
	algo := flag.String("algo", "bsa", "scheduler: bsa, dls, heft or cpop")
	het := flag.String("het", "", "heterogeneity factor range lo,hi (default: homogeneous)")
	seed := flag.Int64("seed", 1, "random seed for heterogeneity factors and tie-breaks")
	chart := flag.Bool("chart", false, "also print a proportional ASCII Gantt chart")
	flag.Parse()

	if *graphPath == "" || *topoPath == "" {
		flag.Usage()
		return fmt.Errorf("-graph and -topo are required")
	}
	gf, err := os.ReadFile(*graphPath)
	if err != nil {
		return err
	}
	g, err := taskgraph.FromJSON(gf)
	if err != nil {
		return err
	}
	tf, err := os.ReadFile(*topoPath)
	if err != nil {
		return err
	}
	nw, err := network.FromJSON(tf)
	if err != nil {
		return err
	}

	var sys *hetero.System
	if *het == "" {
		sys = hetero.NewUniform(nw, g.NumTasks(), g.NumEdges())
	} else {
		var lo, hi float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(*het, " ", ""), "%f,%f", &lo, &hi); err != nil {
			return fmt.Errorf("bad -het %q (want lo,hi): %v", *het, err)
		}
		sys, err = hetero.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), lo, hi, rand.New(rand.NewSource(*seed)))
		if err != nil {
			return err
		}
	}

	var s *schedule.Schedule
	switch strings.ToLower(*algo) {
	case "bsa":
		res, err := core.Schedule(g, sys, core.Options{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("BSA: pivot=%s, CP length %.2f, %d migrations in %d sweeps (%d reverted)\n",
			nw.Proc(res.InitialPivot).Name, res.PivotCPLength, res.Migrations, res.Sweeps, res.Reverted)
		s = res.Schedule
	case "dls":
		res, err := dls.Schedule(g, sys, dls.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("DLS: %d steps, %d (task,processor) evaluations\n", res.Steps, res.Evaluations)
		s = res.Schedule
	case "heft":
		res, err := heft.Schedule(g, sys)
		if err != nil {
			return err
		}
		s = res.Schedule
	case "cpop":
		res, err := cpop.Schedule(g, sys)
		if err != nil {
			return err
		}
		fmt.Printf("CPOP: critical path pinned to %s\n", nw.Proc(res.CPProc).Name)
		s = res.Schedule
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	if err := s.Validate(); err != nil {
		return fmt.Errorf("schedule failed validation: %w", err)
	}
	replay, err := sim.Replay(s)
	if err != nil {
		return fmt.Errorf("replay failed: %w", err)
	}
	if err := replay.CheckAgainst(s); err != nil {
		return fmt.Errorf("replay check failed: %w", err)
	}

	if err := s.WriteGantt(os.Stdout); err != nil {
		return err
	}
	st := s.ComputeStats()
	fmt.Println(st.String())
	fmt.Printf("replay: %d events, simulated length %.2f (schedule %.2f)\n", replay.Events, replay.Length, s.Length())
	if *chart {
		if err := s.WriteGanttChart(os.Stdout, 100); err != nil {
			return err
		}
	}
	return nil
}
