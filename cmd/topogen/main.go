// Command topogen generates processor network topologies and writes them
// through the public sched/system encoders.
//
// Usage:
//
//	topogen -kind ring|hypercube|clique|random|mesh|star|tree|line
//	        -procs 16 [-seed 1] [-format json|dot] [-o topo.json]
//
// The JSON and DOT outputs are both loadable back with system.FromJSON /
// system.FromDOT (and by bsasched's -topo flag for JSON).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/sched/gen"
	"repro/sched/system"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run() error {
	kindName := flag.String("kind", "ring", "topology: ring, hypercube, clique, random, mesh, star, tree or line")
	procs := flag.Int("procs", 16, "number of processors (power of two for hypercube, r*c for mesh)")
	rows := flag.Int("rows", 0, "rows for -kind mesh (0 = most square layout)")
	seed := flag.Int64("seed", 1, "random seed for -kind random")
	format := flag.String("format", "json", "output format: json or dot")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if *format != "json" && *format != "dot" {
		return fmt.Errorf("unknown -format %q (want json or dot)", *format)
	}
	kind, err := gen.TopoKindByName(*kindName)
	if err != nil {
		return err
	}
	nw, err := gen.Topology(gen.TopoSpec{Kind: kind, Procs: *procs, Rows: *rows},
		rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s topology: %d processors, %d links\n", kind, nw.NumProcs(), nw.NumLinks())

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeNetwork(nw, w, *format, kind.String())
}

func writeNetwork(nw *system.Network, w io.Writer, format, title string) error {
	switch format {
	case "json":
		return nw.WriteJSON(w)
	case "dot":
		return nw.WriteDOT(w, title)
	default:
		return fmt.Errorf("unknown -format %q (want json or dot)", format)
	}
}
