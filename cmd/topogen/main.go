// Command topogen generates processor network topologies and writes them as
// JSON (and optionally Graphviz DOT).
//
// Usage:
//
//	topogen -kind ring|hypercube|clique|random|mesh|star|tree|line
//	        -procs 16 [-seed 1] [-o topo.json] [-dot topo.dot]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/network"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run() error {
	kind := flag.String("kind", "ring", "topology: ring, hypercube, clique, random, mesh, star, tree or line")
	procs := flag.Int("procs", 16, "number of processors (power of two for hypercube, r*c for mesh)")
	rows := flag.Int("rows", 4, "rows for -kind mesh")
	seed := flag.Int64("seed", 1, "random seed for -kind random")
	out := flag.String("o", "", "output JSON file (default stdout)")
	dot := flag.String("dot", "", "also write Graphviz DOT to this file")
	flag.Parse()

	var (
		nw  *network.Network
		err error
	)
	switch *kind {
	case "ring":
		nw, err = network.Ring(*procs)
	case "hypercube":
		d := 0
		for 1<<d < *procs {
			d++
		}
		if 1<<d != *procs {
			return fmt.Errorf("hypercube needs a power-of-two processor count, got %d", *procs)
		}
		nw, err = network.Hypercube(d)
	case "clique":
		nw, err = network.FullyConnected(*procs)
	case "random":
		minDeg, maxDeg := 2, 8
		if *procs <= 2 {
			minDeg = 1
		}
		if maxDeg > *procs-1 {
			maxDeg = *procs - 1
		}
		nw, err = network.RandomConnected(*procs, minDeg, maxDeg, rand.New(rand.NewSource(*seed)))
	case "mesh":
		if *procs%*rows != 0 {
			return fmt.Errorf("mesh: procs %d not divisible by rows %d", *procs, *rows)
		}
		nw, err = network.Mesh2D(*rows, *procs / *rows)
	case "star":
		nw, err = network.Star(*procs)
	case "tree":
		nw, err = network.BinaryTree(*procs)
	case "line":
		nw, err = network.Line(*procs)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s topology: %d processors, %d links\n", *kind, nw.NumProcs(), nw.NumLinks())

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := nw.WriteJSON(w); err != nil {
		return err
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := nw.WriteDOT(f, *kind); err != nil {
			return err
		}
	}
	return nil
}
