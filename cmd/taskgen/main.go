// Command taskgen generates task graphs from the paper's workload suites
// and writes them through the public sched/graph encoders.
//
// Usage:
//
//	taskgen -kind gauss|lu|laplace|mva|random -size 200 [-gran 1.0]
//	        [-seed 1] [-format json|dot] [-o graph.json]
//
// The JSON and DOT outputs are both loadable back with graph.FromJSON /
// graph.FromDOT (and by bsasched's -graph flag for JSON).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/sched/gen"
	"repro/sched/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "taskgen:", err)
		os.Exit(1)
	}
}

func run() error {
	kindName := flag.String("kind", "random", "graph family: gauss, lu, laplace, mva or random")
	size := flag.Int("size", 100, "approximate number of tasks")
	gran := flag.Float64("gran", 1.0, "granularity (mean exec / mean comm): 0.1 fine, 10 coarse")
	seed := flag.Int64("seed", 1, "random seed")
	format := flag.String("format", "json", "output format: json or dot")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if *format != "json" && *format != "dot" {
		return fmt.Errorf("unknown -format %q (want json or dot)", *format)
	}
	kind, err := gen.KindByName(*kindName)
	if err != nil {
		return err
	}

	g, err := gen.Generate(gen.Spec{Kind: kind, Size: *size, Granularity: *gran}, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s graph: %d tasks, %d edges, granularity %.3f\n",
		kind, g.NumTasks(), g.NumEdges(), g.Granularity())

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeGraph(g, w, *format, kind.String())
}

func writeGraph(g *graph.Graph, w io.Writer, format, title string) error {
	switch format {
	case "json":
		return g.WriteJSON(w)
	case "dot":
		return g.WriteDOT(w, title)
	default:
		return fmt.Errorf("unknown -format %q (want json or dot)", format)
	}
}
