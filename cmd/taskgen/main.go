// Command taskgen generates task graphs from the paper's workload suites
// and writes them as JSON (and optionally Graphviz DOT).
//
// Usage:
//
//	taskgen -kind gauss|lu|laplace|mva|random -size 200 [-gran 1.0]
//	        [-seed 1] [-o graph.json] [-dot graph.dot]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/generator"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "taskgen:", err)
		os.Exit(1)
	}
}

func run() error {
	kindName := flag.String("kind", "random", "graph family: gauss, lu, laplace, mva or random")
	size := flag.Int("size", 100, "approximate number of tasks")
	gran := flag.Float64("gran", 1.0, "granularity (mean exec / mean comm): 0.1 fine, 10 coarse")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output JSON file (default stdout)")
	dot := flag.String("dot", "", "also write Graphviz DOT to this file")
	flag.Parse()

	var kind generator.Kind
	switch *kindName {
	case "gauss":
		kind = generator.GaussElim
	case "lu":
		kind = generator.LU
	case "laplace":
		kind = generator.Laplace
	case "mva":
		kind = generator.MVA
	case "random":
		kind = generator.Random
	default:
		return fmt.Errorf("unknown kind %q", *kindName)
	}

	g, err := generator.Generate(generator.Spec{Kind: kind, Size: *size, Granularity: *gran}, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s graph: %d tasks, %d edges, granularity %.3f\n",
		kind, g.NumTasks(), g.NumEdges(), g.Granularity())

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteJSON(w); err != nil {
		return err
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := g.WriteDOT(f, kind.String()); err != nil {
			return err
		}
	}
	return nil
}
