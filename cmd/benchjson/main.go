// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so CI can archive benchmark results
// (BENCH_*.json) and track the performance trajectory across commits.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkBSA . | go run ./cmd/benchjson -out BENCH_core.json
//
// The raw input is echoed to stdout, so piping through benchjson does not
// hide the benchmark log. When `-count` produces repeated lines for one
// benchmark, the fastest run wins (best-of-N: the minimum is the standard
// low-noise estimator for benchmark latencies, and the regression gate in
// cmd/benchcmp depends on stable numbers). For every benchmark pair named
// <base>/oracle/... and <base>/incremental/..., a speedup entry (oracle
// ns/op divided by incremental ns/op) is added under "speedups".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark line.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Package    string             `json:"pkg,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func main() {
	out := flag.String("out", "", "path of the JSON report to write (stdout JSON is suppressed when set)")
	verify := flag.String("verify", "", "verify that an existing report file is present and non-empty, then exit")
	flag.Parse()

	if *verify != "" {
		if err := verifyReport(*verify); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	rep := Report{}
	byName := make(map[string]int) // benchmark name -> index in rep.Benchmarks
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // keep the raw log visible
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Package = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		runs, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		b := Benchmark{Name: trimGOMAXPROCS(m[1]), Runs: runs, NsPerOp: ns}
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[fields[i+1]] = v
			}
		}
		if i, ok := byName[b.Name]; ok {
			if b.NsPerOp < rep.Benchmarks[i].NsPerOp {
				rep.Benchmarks[i] = b
			}
			continue
		}
		byName[b.Name] = len(rep.Benchmarks)
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		// A report without benchmarks means the bench run broke upstream;
		// fail loudly instead of archiving an empty trajectory point.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	rep.Speedups = speedups(rep.Benchmarks)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// verifyReport fails unless path holds a parseable report with at least
// one benchmark and one speedup entry — the guard CI runs before
// publishing the bench artifact, so a broken bench run can never archive
// a blank (or stale, deleted-up-front) trajectory point as if it were
// fresh.
func verifyReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("verify: report missing (bench run failed upstream?): %w", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("verify %s: unparseable report: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("verify %s: report has no benchmarks", path)
	}
	if len(rep.Speedups) == 0 {
		return fmt.Errorf("verify %s: report has no oracle/incremental speedups", path)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s ok (%d benchmarks, %d speedups)\n",
		path, len(rep.Benchmarks), len(rep.Speedups))
	return nil
}

// trimGOMAXPROCS drops the -N suffix go test appends to benchmark names.
func trimGOMAXPROCS(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// speedups pairs benchmarks whose name contains an exact "incremental" or
// "incremental-seq" path segment with their "/oracle/" counterpart and
// reports oracle/incremental time ratios, keyed by the incremental
// benchmark's full name.
func speedups(benches []Benchmark) map[string]float64 {
	byName := make(map[string]float64, len(benches))
	for _, b := range benches {
		byName[b.Name] = b.NsPerOp
	}
	out := make(map[string]float64)
	for name, inc := range byName {
		if inc <= 0 {
			continue
		}
		segs := strings.Split(name, "/")
		paired := false
		for i, seg := range segs {
			if seg == "incremental" || seg == "incremental-seq" || seg == "incremental-nocache" {
				segs[i] = "oracle"
				paired = true
				break
			}
		}
		if !paired {
			continue
		}
		if oracle, ok := byName[strings.Join(segs, "/")]; ok {
			out[name] = oracle / inc
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
