// Command schedd serves the repro scheduling library over HTTP: problems
// arrive as the public JSON interchange (graph + system or topology
// documents), run on a bounded worker pool with any registered algorithm,
// and come back as complete verified schedules. See repro/sched/service
// for the wire API.
//
// Usage:
//
//	schedd [-addr host:port] [-workers N] [-queue N] [-default-algo name]
//	       [-job-ttl d] [-max-body bytes] [-drain-timeout d]
//	       [-store mem|wal] [-data DIR]
//	       [-advertise host:port] [-peers host1:p1,host2:p2]
//	       [-replicas N] [-probe-interval d] [-probe-timeout d]
//	       [-probe-misses N]
//
// schedd announces the bound address on stdout ("schedd: listening on
// ADDR") — with -addr :0 the kernel picks the port, which is how the
// end-to-end tests run it. On SIGTERM or SIGINT it drains gracefully:
// the listener stops accepting, queued and running jobs finish, then the
// process exits 0. A second signal — or -drain-timeout expiring — aborts
// the drain and exits nonzero.
//
// -store wal -data DIR persists accepted jobs to an append-only log in
// DIR and replays it on boot, so a killed schedd finishes what it
// accepted. -peers lists the other replicas of a cluster; job ownership
// is consistent-hashed across all members and requests are forwarded to
// their owner transparently. -advertise is the address peers use to
// reach this replica (required with -peers unless -addr names a concrete
// host).
//
// -replicas N (cluster mode) makes every accepted job's persistence
// record stream to the owner's N-1 ring successors before the 202, so
// killing any single replica loses nothing: a background failure
// detector (-probe-interval, -probe-timeout, -probe-misses) marks the
// dead owner, its first live successor adopts and re-runs the pending
// jobs byte-identically, and when the owner returns the records
// reconcile back under idempotency keys and terminal-state precedence.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	_ "repro/sched/register"
	"repro/sched/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
	workers := flag.Int("workers", 0, "concurrent scheduling runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth (0 = default 512)")
	defaultAlgo := flag.String("default-algo", "bsa", "algorithm for requests that name none")
	jobTTL := flag.Duration("job-ttl", 15*time.Minute, "how long finished jobs stay retrievable")
	maxBody := flag.Int64("max-body", 8<<20, "request body size cap in bytes")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "max time to wait for queued jobs on shutdown")
	storeKind := flag.String("store", "mem", "job store: mem (process lifetime) or wal (disk, survives restarts)")
	dataDir := flag.String("data", "", "data directory for -store wal")
	advertise := flag.String("advertise", "", "address peers reach this replica at (cluster mode)")
	peers := flag.String("peers", "", "comma-separated advertised addresses of the other replicas")
	replicas := flag.Int("replicas", 1, "copies of each job's record across the cluster (1 = no replication)")
	probeInterval := flag.Duration("probe-interval", time.Second, "failure-detector probe period (cluster mode)")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe timeout")
	probeMisses := flag.Int("probe-misses", 3, "consecutive probe misses before a peer is declared dead")
	flag.Parse()

	// Bind before building the server: in cluster mode the advertised
	// self address may need the kernel-picked port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	cfg := service.Config{
		DefaultAlgo:   *defaultAlgo,
		Workers:       *workers,
		QueueDepth:    *queue,
		MaxBodyBytes:  *maxBody,
		JobTTL:        *jobTTL,
		Replicas:      *replicas,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		ProbeMisses:   *probeMisses,
	}

	switch *storeKind {
	case "mem":
		if *dataDir != "" {
			return fmt.Errorf("-data needs -store wal")
		}
	case "wal":
		if *dataDir == "" {
			return fmt.Errorf("-store wal needs -data DIR")
		}
		wal, err := service.OpenWAL(*dataDir)
		if err != nil {
			return err
		}
		cfg.Store = wal
	default:
		return fmt.Errorf("unknown -store %q (want mem or wal)", *storeKind)
	}

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	if *advertise != "" || len(peerList) > 0 {
		self := *advertise
		if self == "" {
			tcp, ok := ln.Addr().(*net.TCPAddr)
			if !ok || tcp.IP.IsUnspecified() {
				return fmt.Errorf("-peers needs -advertise when -addr does not name a concrete host")
			}
			self = tcp.String()
		}
		cfg.Self = self
		cfg.Peers = peerList
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	srv := service.New(cfg)
	expvar.Publish("schedd", srv.Vars())
	fmt.Printf("schedd: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	fmt.Println("schedd: draining...")

	// Stop accepting connections and finish in-flight handlers, then let
	// the pool run down the queued backlog. A completed Drain also closes
	// the store — the WAL's final compaction.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Drain(drainCtx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("schedd: drained, bye")
	return nil
}
