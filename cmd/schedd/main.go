// Command schedd serves the repro scheduling library over HTTP: problems
// arrive as the public JSON interchange (graph + system or topology
// documents), run on a bounded worker pool with any registered algorithm,
// and come back as complete verified schedules. See repro/sched/service
// for the wire API.
//
// Usage:
//
//	schedd [-addr host:port] [-workers N] [-queue N] [-default-algo name]
//	       [-job-ttl d] [-max-body bytes] [-drain-timeout d]
//
// schedd announces the bound address on stdout ("schedd: listening on
// ADDR") — with -addr :0 the kernel picks the port, which is how the
// end-to-end tests run it. On SIGTERM or SIGINT it drains gracefully:
// the listener stops accepting, queued and running jobs finish, then the
// process exits 0. A second signal — or -drain-timeout expiring — aborts
// the drain and exits nonzero.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "repro/sched/register"
	"repro/sched/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
	workers := flag.Int("workers", 0, "concurrent scheduling runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth (0 = default 512)")
	defaultAlgo := flag.String("default-algo", "bsa", "algorithm for requests that name none")
	jobTTL := flag.Duration("job-ttl", 15*time.Minute, "how long finished jobs stay retrievable")
	maxBody := flag.Int64("max-body", 8<<20, "request body size cap in bytes")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "max time to wait for queued jobs on shutdown")
	flag.Parse()

	srv := service.New(service.Config{
		DefaultAlgo:  *defaultAlgo,
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxBodyBytes: *maxBody,
		JobTTL:       *jobTTL,
	})
	expvar.Publish("schedd", srv.Vars())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("schedd: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	fmt.Println("schedd: draining...")

	// Stop accepting connections and finish in-flight handlers, then let
	// the pool run down the queued backlog.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Drain(drainCtx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("schedd: drained, bye")
	return nil
}
