// Command benchcmp diffs two BENCH_*.json reports written by cmd/benchjson
// and optionally fails on regressions, giving the repo a local trajectory
// diff (`make benchcmp OLD=a.json NEW=b.json`) and CI a regression gate.
//
// Two comparison modes:
//
//   - raw (default): compares ns/op per benchmark. Only meaningful when
//     both reports come from the same machine.
//   - -speedups: compares the oracle-relative speedup ratios benchjson
//     derives (incremental* ns/op normalized by the oracle engine's ns/op
//     on the same host and instance). Ratios cancel the host's absolute
//     speed, so a committed baseline from one machine can gate a CI run
//     on another: a drop in speedup means the incremental engine lost
//     ground against the oracle compiled from the same tree.
//
// Exit status is 1 if any compared entry regresses by more than
// -max-regress (raw mode: ns/op grew; speedups mode: ratio shrank), and 2
// on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// Benchmark mirrors cmd/benchjson's entry.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report mirrors cmd/benchjson's document.
type Report struct {
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Package    string             `json:"pkg,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups,omitempty"`
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.15, "relative regression that fails the comparison")
	filter := flag.String("filter", "", "regexp restricting which entries are compared (and gated)")
	speedups := flag.Bool("speedups", false, "compare oracle-relative speedup ratios instead of raw ns/op")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-max-regress 0.15] [-filter regex] [-speedups] OLD.json NEW.json")
		os.Exit(2)
	}
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fatal(err)
		}
	}
	oldRep, newRep := load(flag.Arg(0)), load(flag.Arg(1))

	var oldVals, newVals map[string]float64
	var unit string
	var regressed func(old, new float64) bool
	if *speedups {
		oldVals, newVals = oldRep.Speedups, newRep.Speedups
		unit = "x-vs-oracle"
		// A speedup ratio shrinking means the engine regressed.
		regressed = func(old, new float64) bool { return new < old*(1-*maxRegress) }
	} else {
		oldVals, newVals = nsPerOp(oldRep), nsPerOp(newRep)
		unit = "ns/op"
		regressed = func(old, new float64) bool { return new > old*(1+*maxRegress) }
	}

	// Partition the union of entry names: common entries are compared and
	// gated; entries present in only one report are listed explicitly so a
	// benchmark silently vanishing (or a baseline missing new rows) is
	// visible in the gate output instead of being skipped without a trace.
	var names, onlyOld, onlyNew []string
	for name := range newVals {
		if re != nil && !re.MatchString(name) {
			continue
		}
		if _, ok := oldVals[name]; ok {
			names = append(names, name)
		} else {
			onlyNew = append(onlyNew, name)
		}
	}
	for name := range oldVals {
		if re != nil && !re.MatchString(name) {
			continue
		}
		if _, ok := newVals[name]; !ok {
			onlyOld = append(onlyOld, name)
		}
	}
	sort.Strings(names)
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	for _, name := range onlyNew {
		fmt.Printf("%-60s %14s %14.2f          %s  only in %s\n", name, "-", newVals[name], unit, flag.Arg(1))
	}
	for _, name := range onlyOld {
		fmt.Printf("%-60s %14.2f %14s          %s  only in %s\n", name, oldVals[name], "-", unit, flag.Arg(0))
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("no common entries to compare (filter %q, speedups=%v)", *filter, *speedups))
	}

	failed := 0
	for _, name := range names {
		o, n := oldVals[name], newVals[name]
		delta := 0.0
		if o != 0 {
			delta = (n - o) / o * 100
		}
		mark := ""
		if regressed(o, n) {
			mark = "  REGRESSION"
			failed++
		}
		fmt.Printf("%-60s %14.2f %14.2f %+7.1f%% %s%s\n", name, o, n, delta, unit, mark)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d entr%s regressed beyond %.0f%%\n", failed, plural(failed), *maxRegress*100)
		os.Exit(1)
	}
}

func load(path string) Report {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return rep
}

func nsPerOp(rep Report) map[string]float64 {
	out := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		out[b.Name] = b.NsPerOp
	}
	return out
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(2)
}
