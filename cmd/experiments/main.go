// Command experiments regenerates the paper's evaluation figures (3-7) and
// the Table 1 worked example. Results are printed as aligned tables and
// ASCII plots and optionally written as CSV files.
//
// Usage:
//
//	experiments [-figure 3|4|5|6|7|0] [-full] [-procs 16] [-reps N]
//	            [-seed N] [-algos DLS,BSA,HEFT,CPOP] [-out dir] [-plot]
//	experiments -example        # the Table 1 / Figure 2 worked example
//	experiments -atlas [-readme README.md]   # results atlas: every topology
//	                            # family x algorithm x het, replay-validated
//
// -figure 0 (default) runs all five figures. Without -full a reduced size
// sweep runs in seconds; -full uses the paper's complete design (sizes
// 50..500, three granularities — takes minutes).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/sched"
	"repro/sched/gen"
	_ "repro/sched/register"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	figure := flag.Int("figure", 0, "figure to regenerate (3-7; 0 = all)")
	full := flag.Bool("full", false, "use the paper's full design (sizes 50..500; takes minutes)")
	procs := flag.Int("procs", 16, "processors per topology")
	reps := flag.Int("reps", 1, "independent repetitions per design point")
	seed := flag.Int64("seed", 1999, "master seed")
	algos := flag.String("algos", "DLS,BSA", "comma-separated algorithms (any registered name, e.g. bsa,dls,heft,cpop,bsa-full)")
	outDir := flag.String("out", "", "directory for CSV output (omit to skip)")
	plot := flag.Bool("plot", false, "print ASCII plots in addition to tables")
	example := flag.Bool("example", false, "run the Table 1 / Figure 2 worked example and exit")
	ablation := flag.Bool("ablation", false, "run the BSA design-choice ablation study and exit")
	atlas := flag.Bool("atlas", false, "regenerate the results atlas (every topology family x algorithm x het) and exit")
	readme := flag.String("readme", "", "with -atlas: README file whose atlas markers are rewritten in place")
	workers := flag.Int("workers", 0, "parallel scenario-cell workers (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "stream per-cell progress to stderr during figure runs")
	flag.Parse()

	// Ctrl-C cancels in-flight sweeps cleanly: the context is observed by
	// the experiment queue and inside every scheduler's migration loop.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *example {
		return runExample(ctx)
	}
	if *ablation {
		cfg := experiment.QuickConfig()
		cfg.Procs = *procs
		cfg.Reps = *reps
		cfg.Seed = *seed
		cfg.Context = ctx
		rows, err := experiment.RunAblation(cfg, experiment.DefaultAblationVariants())
		if err != nil {
			return err
		}
		fmt.Println("== BSA ablation study (random graphs, hypercube) ==")
		fmt.Printf("%18s %12s %10s %12s %8s\n", "variant", "mean SL", "vs base", "migrations", "sweeps")
		for _, r := range rows {
			fmt.Printf("%18s %12.0f %9.2fx %12.1f %8.1f\n", r.Variant, r.MeanSL, r.MeanVsBase, r.Migrations, r.Sweeps)
		}
		return nil
	}

	cfg := experiment.QuickConfig()
	if *full {
		cfg = experiment.PaperConfig()
	}
	cfg.Procs = *procs
	cfg.Reps = *reps
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Context = ctx
	if *progress {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	cfg.Algorithms = nil
	for _, a := range strings.Split(*algos, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		// Fail fast on unknown names (with the registry's name list)
		// instead of erroring mid-sweep from a worker.
		if _, err := sched.Lookup(a); err != nil {
			return err
		}
		cfg.Algorithms = append(cfg.Algorithms, experiment.Algorithm(strings.ToUpper(a)))
	}

	if *atlas {
		return runAtlas(cfg, *readme)
	}

	figures := []int{3, 4, 5, 6, 7}
	if *figure != 0 {
		figures = []int{*figure}
	}
	for _, f := range figures {
		start := time.Now()
		fig, err := experiment.Run(f, cfg)
		if err != nil {
			return err
		}
		if err := fig.WriteTable(os.Stdout); err != nil {
			return err
		}
		if *plot {
			if err := fig.WritePlot(os.Stdout, 64, 16); err != nil {
				return err
			}
		}
		fmt.Printf("\n(%s regenerated in %v)\n\n", fig.Name, time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*outDir, fig.Name+".csv")
			file, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := fig.WriteCSV(file); err != nil {
				file.Close()
				return err
			}
			if err := file.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	return nil
}

// runAtlas regenerates the results atlas — every topology family x
// algorithm x heterogeneity, replay-validated — prints it, and, when a
// README path is given, rewrites the file's atlas-marker region in place.
// The table depends only on the seeds, so a second run is byte-identical
// (CI asserts exactly that).
func runAtlas(cfg experiment.Config, readme string) error {
	a, err := experiment.RunAtlas(cfg)
	if err != nil {
		return err
	}
	table := a.Markdown()
	fmt.Print(table)
	if readme == "" {
		return nil
	}
	old, err := os.ReadFile(readme)
	if err != nil {
		return err
	}
	next, err := experiment.SpliceAtlas(old, table)
	if err != nil {
		return err
	}
	if bytes.Equal(next, old) {
		fmt.Fprintf(os.Stderr, "%s atlas already up to date\n", readme)
		return nil
	}
	if err := os.WriteFile(readme, next, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rewrote the atlas table in %s\n", readme)
	return nil
}

// runExample reproduces the paper's worked example: the Figure 1 graph on
// the Table 1 heterogeneous ring, scheduled by BSA and DLS.
func runExample(ctx context.Context) error {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	problem, err := sched.NewProblem(g, sys)
	if err != nil {
		return err
	}

	fmt.Println("== Table 1 / Figure 2 worked example ==")
	fmt.Println("Actual execution costs (Table 1):")
	fmt.Printf("%6s %6s %6s %6s %6s\n", "task", "P1", "P2", "P3", "P4")
	for i := 0; i < 9; i++ {
		fmt.Printf("%6s %6.0f %6.0f %6.0f %6.0f\n", fmt.Sprintf("T%d", i+1),
			gen.PaperExecTable[i][0], gen.PaperExecTable[i][1],
			gen.PaperExecTable[i][2], gen.PaperExecTable[i][3])
	}

	bsa, err := sched.Lookup("bsa")
	if err != nil {
		return err
	}
	res, err := bsa.Schedule(ctx, problem)
	if err != nil {
		return err
	}
	trace, ok := res.BSA()
	if !ok {
		return fmt.Errorf("bsa result carries no BSA trace")
	}
	fmt.Printf("\nBSA (paper reports SL = 138 for its original edge costs):\n")
	fmt.Printf("first pivot: %s (CP length %.0f); serial order:", trace.PivotName, trace.PivotCPLength)
	for _, t := range trace.Serial {
		fmt.Printf(" %s", g.Task(t).Name)
	}
	fmt.Println()
	if err := res.Schedule.WriteGantt(os.Stdout); err != nil {
		return err
	}

	dls, err := sched.Lookup("dls")
	if err != nil {
		return err
	}
	dres, err := dls.Schedule(ctx, problem)
	if err != nil {
		return err
	}
	fmt.Printf("\nDLS on the same instance:\n")
	return dres.Schedule.WriteGantt(os.Stdout)
}
