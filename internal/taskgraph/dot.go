package taskgraph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT writes the graph in Graphviz DOT format. Node labels show the
// task name and nominal execution cost; edge labels show the nominal
// communication cost.
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [shape=circle];\n")
	for _, t := range g.Tasks() {
		fmt.Fprintf(&b, "  t%d [label=\"%s\\n%g\"];\n", t.ID, t.Name, t.Cost)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  t%d -> t%d [label=\"%g\"];\n", e.From, e.To, e.Cost)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
