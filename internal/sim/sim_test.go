package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dls"
	"repro/internal/schedule"
	"repro/sched/gen"
	"repro/sched/graph"
	"repro/sched/system"
)

func TestReplayPaperExampleBSA(t *testing.T) {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	res, err := core.Schedule(g, sys, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replay(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckAgainst(res.Schedule); err != nil {
		t.Fatal(err)
	}
	if r.Length <= 0 || r.Length > res.Schedule.Length()+1e-9 {
		t.Errorf("replay length %v vs schedule %v", r.Length, res.Schedule.Length())
	}
	if r.Events == 0 {
		t.Error("no events processed")
	}
}

func TestReplayIncomplete(t *testing.T) {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	s := schedule.New(g, sys)
	if _, err := Replay(s); err == nil || !strings.Contains(err.Error(), "not placed") {
		t.Fatalf("err=%v", err)
	}
}

func TestReplayHandMadeSchedule(t *testing.T) {
	// Chain a->b with one hop; replay must reproduce exact compact times.
	b := graph.NewBuilder()
	a := b.AddTask("a", 10)
	c := b.AddTask("b", 20)
	b.AddEdge(a, c, 5)
	g, _ := b.Build()
	nw, _ := system.Line(2)
	sys := system.NewUniform(nw, 2, 1)
	s := schedule.New(g, sys)
	s.PlaceTask(0, 0, 0)
	s.PlaceMessage(0, []system.LinkID{0})
	s.PlaceTask(1, 1, 15)
	r, err := Replay(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.TaskFinish[0] != 10 || r.Arrival[0] != 15 || r.TaskStart[1] != 15 || r.TaskFinish[1] != 35 {
		t.Errorf("replay times: %+v", r)
	}
	if err := r.CheckAgainst(s); err != nil {
		t.Fatal(err)
	}
}

func TestReplayClosesGaps(t *testing.T) {
	// A schedule with an artificial idle gap: replay starts the task as
	// soon as its inputs are ready, finishing earlier than scheduled.
	b := graph.NewBuilder()
	b.AddTask("a", 10)
	g, _ := b.Build()
	nw, _ := system.Line(2)
	sys := system.NewUniform(nw, 1, 0)
	s := schedule.New(g, sys)
	s.PlaceTask(0, 0, 100) // gratuitous delay
	r, err := Replay(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.TaskStart[0] != 0 || r.TaskFinish[0] != 10 {
		t.Errorf("replay should close the gap: %+v", r)
	}
	if err := r.CheckAgainst(s); err != nil {
		t.Fatal(err)
	}
}

func randomConnectedDAG(rng *rand.Rand, n int, extraProb float64) *graph.Graph {
	b := graph.NewBuilder()
	ids := make([]graph.TaskID, n)
	seen := make(map[[2]graph.TaskID]bool)
	for i := 0; i < n; i++ {
		name := []byte{'T', byte('0' + i/100%10), byte('0' + i/10%10), byte('0' + i%10)}
		ids[i] = b.AddTask(string(name), 1+rng.Float64()*199)
	}
	add := func(u, v graph.TaskID) {
		k := [2]graph.TaskID{u, v}
		if !seen[k] {
			seen[k] = true
			b.AddEdge(u, v, rng.Float64()*100)
		}
	}
	for i := 1; i < n; i++ {
		add(ids[rng.Intn(i)], ids[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < extraProb {
				add(ids[i], ids[j])
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestReplayPropertyBothSchedulers is the cross-cutting integration
// property: for random instances, both schedulers' outputs replay without
// deadlock and never finish later than the static schedule claims.
func TestReplayPropertyBothSchedulers(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%25
		m := 2 + int(mRaw)%8
		g := randomConnectedDAG(rng, n, 0.15)
		nw, err := system.RandomConnected(m, 1, m, rng)
		if err != nil {
			return true
		}
		sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 25, rng)
		if err != nil {
			return false
		}
		bres, err := core.Schedule(g, sys, core.Options{Seed: seed})
		if err != nil {
			return false
		}
		dres, err := dls.Schedule(g, sys, dls.Options{})
		if err != nil {
			return false
		}
		for _, s := range []*schedule.Schedule{bres.Schedule, dres.Schedule} {
			r, err := Replay(s)
			if err != nil {
				return false
			}
			if r.CheckAgainst(s) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
