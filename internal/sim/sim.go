// Package sim is an event-driven execution simulator that independently
// verifies static schedules. It replays a complete schedule keeping only
// its *decisions* — the task-to-processor assignment, the message routes
// and the per-resource service orders — and recomputes all times from the
// event dynamics: a task starts when its processor is free (previous slot
// in service order done) and all incoming messages have arrived; a message
// hop starts when the previous hop has delivered (store-and-forward) and
// its link is free.
//
// Because the replay is as-soon-as-possible under the same orders, its
// makespan can never exceed the static schedule length: reserved idle gaps
// may close, but nothing can be forced later. A replay that deadlocks or
// finishes later exposes an inconsistency in the scheduler, which is what
// the tests use it for (the paper evaluates schedulers in simulation; this
// is the corresponding execution model).
package sim

import (
	"fmt"
	"math"

	"repro/internal/schedule"
	"repro/sched/graph"
	"repro/sched/system"
)

// Result holds the replayed execution times.
type Result struct {
	// TaskStart and TaskFinish are the simulated task times.
	TaskStart  []float64
	TaskFinish []float64
	// Arrival is the simulated arrival time of every message.
	Arrival []float64
	// Length is the simulated makespan.
	Length float64
	// Events is the number of simulation events processed.
	Events int
}

// node identifies an event node: tasks and individual message hops.
type node struct {
	task graph.TaskID // valid when hop < 0
	edge graph.EdgeID
	hop  int // -1 for task nodes
}

// Replay simulates the schedule and returns the recomputed times. It
// errors if the schedule is incomplete or its combined precedence/resource
// order deadlocks.
func Replay(s *schedule.Schedule) (*Result, error) {
	g := s.G
	n := g.NumTasks()
	for i := 0; i < n; i++ {
		if !s.Tasks[i].Placed {
			return nil, fmt.Errorf("sim: task %d not placed", i)
		}
	}

	// Node indexing: tasks 0..n-1, then hops in edge-major order.
	hopBase := make([]int, g.NumEdges()+1)
	total := n
	for e := 0; e < g.NumEdges(); e++ {
		hopBase[e] = total
		total += len(s.Msgs[e].Hops)
	}
	hopBase[g.NumEdges()] = total

	nodeOf := func(id int) node {
		if id < n {
			return node{task: graph.TaskID(id), hop: -1}
		}
		for e := 0; e < g.NumEdges(); e++ {
			if id < hopBase[e+1] {
				return node{edge: graph.EdgeID(e), hop: id - hopBase[e]}
			}
		}
		panic("sim: bad node id")
	}

	// Build dependency lists: deps[id] counts unmet dependencies; outs[id]
	// lists dependents.
	deps := make([]int, total)
	outs := make([][]int32, total)
	addDep := func(from, to int) {
		outs[from] = append(outs[from], int32(to))
		deps[to]++
	}

	// (1) Message chains: sender task -> hop0 -> hop1 -> ... and last
	// hop -> receiver (or sender -> receiver directly for local messages).
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(graph.EdgeID(e))
		hops := s.Msgs[e].Hops
		if len(hops) == 0 {
			addDep(int(edge.From), int(edge.To))
			continue
		}
		addDep(int(edge.From), hopBase[e])
		for h := 1; h < len(hops); h++ {
			addDep(hopBase[e]+h-1, hopBase[e]+h)
		}
		addDep(hopBase[e]+len(hops)-1, int(edge.To))
	}

	// (2) Processor service order: slots sorted by start time already.
	for p := 0; p < s.Sys.Net.NumProcs(); p++ {
		slots := s.ProcTimeline(procID(p)).Slots()
		for i := 1; i < len(slots); i++ {
			addDep(int(slots[i-1].Owner), int(slots[i].Owner))
		}
	}
	// (3) Link service order.
	linkNode := func(owner int64) int {
		e := schedule.MsgOwnerEdge(owner)
		hop := int(owner - (int64(e) << 20))
		return hopBase[e] + hop
	}
	for l := 0; l < s.Sys.Net.NumLinks(); l++ {
		slots := s.LinkTimeline(linkID(l)).Slots()
		for i := 1; i < len(slots); i++ {
			addDep(linkNode(slots[i-1].Owner), linkNode(slots[i].Owner))
		}
	}

	// Kahn-style event processing with time propagation.
	res := &Result{
		TaskStart:  make([]float64, n),
		TaskFinish: make([]float64, n),
		Arrival:    make([]float64, g.NumEdges()),
	}
	readyAt := make([]float64, total)
	queue := make([]int, 0, total)
	for id := 0; id < total; id++ {
		if deps[id] == 0 {
			queue = append(queue, id)
		}
	}
	processed := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		res.Events++

		nd := nodeOf(id)
		var finish float64
		if nd.hop < 0 {
			start := readyAt[id]
			dur := s.ExecDuration(nd.task, s.Tasks[nd.task].Proc)
			finish = start + dur
			res.TaskStart[nd.task] = start
			res.TaskFinish[nd.task] = finish
			res.Length = math.Max(res.Length, finish)
		} else {
			hop := s.Msgs[nd.edge].Hops[nd.hop]
			dur := s.HopDuration(nd.edge, hop.Link)
			finish = readyAt[id] + dur
			if nd.hop == len(s.Msgs[nd.edge].Hops)-1 {
				res.Arrival[nd.edge] = finish
			}
		}
		for _, dep := range outs[id] {
			if readyAt[dep] < finish {
				readyAt[dep] = finish
			}
			deps[dep]--
			if deps[dep] == 0 {
				queue = append(queue, int(dep))
			}
		}
	}
	if processed != total {
		return nil, fmt.Errorf("sim: deadlock — %d of %d events never became ready", total-processed, total)
	}
	// Local messages arrive when the sender finishes.
	for e := 0; e < g.NumEdges(); e++ {
		if len(s.Msgs[e].Hops) == 0 {
			res.Arrival[e] = res.TaskFinish[g.Edge(graph.EdgeID(e)).From]
		}
	}
	return res, nil
}

// CheckAgainst verifies the replay against the static schedule: simulated
// task finish times must never exceed the scheduled ones (the schedule is
// achievable) and every precedence must hold in simulated time. It returns
// the first violation.
func (r *Result) CheckAgainst(s *schedule.Schedule) error {
	const eps = 1e-6
	for i := range r.TaskFinish {
		if r.TaskFinish[i] > s.Tasks[i].End+eps {
			return fmt.Errorf("sim: task %d finishes at %v in replay, after scheduled %v", i, r.TaskFinish[i], s.Tasks[i].End)
		}
	}
	for _, e := range s.G.Edges() {
		if r.TaskStart[e.To]+eps < r.Arrival[e.ID] {
			return fmt.Errorf("sim: task %d starts before message %d arrives", e.To, e.ID)
		}
	}
	if r.Length > s.Length()+eps {
		return fmt.Errorf("sim: replay length %v exceeds schedule length %v", r.Length, s.Length())
	}
	return nil
}

func procID(i int) system.ProcID { return system.ProcID(i) }
func linkID(i int) system.LinkID { return system.LinkID(i) }
