package heft

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/sched/gen"
	"repro/sched/graph"
	"repro/sched/system"
)

func TestHEFTPaperExample(t *testing.T) {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	res, err := Schedule(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Complete() {
		t.Fatal("incomplete")
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("HEFT on paper example: SL=%.0f", res.Schedule.Length())
}

func TestUpwardRanksMonotone(t *testing.T) {
	// rank(pred) > rank(succ) along every edge for positive costs.
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	ranks := UpwardRanks(g, sys)
	for _, e := range g.Edges() {
		if ranks[e.From] <= ranks[e.To] {
			t.Errorf("rank(%d)=%v <= rank(%d)=%v", e.From, ranks[e.From], e.To, ranks[e.To])
		}
	}
}

func TestHEFTEmptyAndSingle(t *testing.T) {
	g, _ := graph.NewBuilder().Build()
	nw, _ := system.Ring(2)
	if res, err := Schedule(g, system.NewUniform(nw, 0, 0)); err != nil || res.Schedule.Length() != 0 {
		t.Fatalf("empty: %v", err)
	}
	b := graph.NewBuilder()
	b.AddTask("only", 10)
	g2, _ := b.Build()
	sys := system.NewUniform(nw, 1, 0)
	sys.Exec[0] = []float64{5, 1}
	res, err := Schedule(g2, sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.ProcOf(0) != 1 || res.Schedule.Length() != 10 {
		t.Errorf("HEFT should pick the fast processor: proc=%d SL=%v", res.Schedule.ProcOf(0), res.Schedule.Length())
	}
}

func TestHEFTInvalidSystem(t *testing.T) {
	g := gen.PaperExampleGraph()
	nw, _ := system.Ring(2)
	if _, err := Schedule(g, system.NewUniform(nw, 1, 0)); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func randomConnectedDAG(rng *rand.Rand, n int, extraProb float64) *graph.Graph {
	b := graph.NewBuilder()
	ids := make([]graph.TaskID, n)
	seen := make(map[[2]graph.TaskID]bool)
	for i := 0; i < n; i++ {
		name := []byte{'T', byte('0' + i/100%10), byte('0' + i/10%10), byte('0' + i%10)}
		ids[i] = b.AddTask(string(name), 1+rng.Float64()*199)
	}
	add := func(u, v graph.TaskID) {
		k := [2]graph.TaskID{u, v}
		if !seen[k] {
			seen[k] = true
			b.AddEdge(u, v, rng.Float64()*100)
		}
	}
	for i := 1; i < n; i++ {
		add(ids[rng.Intn(i)], ids[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < extraProb {
				add(ids[i], ids[j])
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestHEFTRandomInstancesValid(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%25
		m := 2 + int(mRaw)%8
		g := randomConnectedDAG(rng, n, 0.15)
		nw, err := system.RandomConnected(m, 1, m, rng)
		if err != nil {
			return true
		}
		sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 25, rng)
		if err != nil {
			return false
		}
		res, err := Schedule(g, sys)
		if err != nil {
			return false
		}
		return res.Schedule.Complete() && res.Schedule.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
