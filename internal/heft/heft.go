// Package heft implements a link contention-aware variant of the HEFT
// (Heterogeneous Earliest Finish Time) list scheduler of Topcuoglu, Hariri
// & Wu as an extension baseline beyond the paper's BSA/DLS comparison.
//
// Classic HEFT assumes a fully connected network and charges each remote
// message a fixed cost. To compare fairly against BSA and DLS on arbitrary
// topologies, this variant routes messages along shortest paths and
// schedules every hop on the link timelines with insertion-based
// earliest-fit, so link contention delays data arrival exactly as in the
// other schedulers of this repository.
package heft

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/schedule"
	"repro/sched/graph"
	"repro/sched/system"
)

// Result is the outcome of a HEFT run.
type Result struct {
	Schedule *schedule.Schedule
	// Ranks holds the upward rank of every task.
	Ranks []float64
}

// Schedule runs contention-aware HEFT on g over sys.
func Schedule(g *graph.Graph, sys *system.System) (*Result, error) {
	return ScheduleContext(context.Background(), g, sys)
}

// ScheduleContext is Schedule with cancellation: ctx is polled once per
// task placement, so a canceled or expired context aborts the run with
// ctx.Err() (wrapped; test with errors.Is).
func ScheduleContext(ctx context.Context, g *graph.Graph, sys *system.System) (*Result, error) {
	if err := sys.Validate(g.NumTasks(), g.NumEdges()); err != nil {
		return nil, fmt.Errorf("heft: %w", err)
	}
	n := g.NumTasks()
	res := &Result{Schedule: schedule.New(g, sys)}
	if n == 0 {
		return res, nil
	}
	s := res.Schedule
	rt := system.NewRoutingTable(sys.Net)
	res.Ranks = UpwardRanks(g, sys)

	// Tasks by non-increasing upward rank; this order is a linear extension
	// because rank(pred) > rank(succ) for positive costs.
	order := make([]graph.TaskID, n)
	for i := range order {
		order[i] = graph.TaskID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if res.Ranks[order[i]] != res.Ranks[order[j]] {
			return res.Ranks[order[i]] > res.Ranks[order[j]]
		}
		return order[i] < order[j]
	})

	m := sys.Net.NumProcs()
	var routeBuf []system.LinkID
	for placed, t := range order {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("heft: after %d of %d placements: %w", placed, n, err)
		}
		bestEFT := math.Inf(1)
		bestP := system.ProcID(0)
		for p := 0; p < m; p++ {
			eft := EvalEFT(s, rt, t, system.ProcID(p), &routeBuf)
			if eft < bestEFT {
				bestEFT, bestP = eft, system.ProcID(p)
			}
		}
		if err := commit(s, rt, t, bestP, &routeBuf); err != nil {
			return nil, fmt.Errorf("heft: %w", err)
		}
	}
	return res, nil
}

// UpwardRanks computes HEFT's upward rank: mean actual execution cost over
// processors plus the maximum over successors of mean communication cost
// (nominal times mean link factor) plus the successor's rank.
func UpwardRanks(g *graph.Graph, sys *system.System) []float64 {
	n := g.NumTasks()
	ranks := make([]float64, n)
	meanExec := make([]float64, n)
	m := sys.Net.NumProcs()
	for i := 0; i < n; i++ {
		var sum float64
		for p := 0; p < m; p++ {
			sum += sys.ExecCost(i, system.ProcID(p), g.Task(graph.TaskID(i)).Cost)
		}
		meanExec[i] = sum / float64(m)
	}
	meanComm := func(e graph.EdgeID) float64 {
		nl := sys.Net.NumLinks()
		if nl == 0 {
			return 0
		}
		var sum float64
		for l := 0; l < nl; l++ {
			sum += sys.CommCost(int(e), system.LinkID(l), g.Edge(e).Cost)
		}
		return sum / float64(nl)
	}
	order, err := graph.TopologicalOrder(g)
	if err != nil {
		panic(err) // graphs are validated at build time
	}
	for i := n - 1; i >= 0; i-- {
		t := order[i]
		var best float64
		for _, e := range g.Out(t) {
			v := g.Edge(e).To
			if cand := meanComm(e) + ranks[v]; cand > best {
				best = cand
			}
		}
		ranks[t] = meanExec[t] + best
	}
	return ranks
}

// EvalEFT computes the earliest finish time of t on p without mutating the
// schedule: messages tentatively routed on shortest paths with an overlay
// serializing this task's own transfers, task slot via insertion.
func EvalEFT(s *schedule.Schedule, rt *system.RoutingTable, t graph.TaskID, p system.ProcID, routeBuf *[]system.LinkID) float64 {
	drt := tentativeDRT(s, rt, t, p, routeBuf)
	dur := s.ExecDuration(t, p)
	return s.ProcTimeline(p).EarliestFit(drt, dur) + dur
}

func tentativeDRT(s *schedule.Schedule, rt *system.RoutingTable, t graph.TaskID, p system.ProcID, routeBuf *[]system.LinkID) float64 {
	g := s.G
	var ov map[system.LinkID][]schedule.Slot
	var drt float64
	for _, e := range g.In(t) {
		from := s.Tasks[g.Edge(e).From]
		ready := from.End
		if from.Proc != p {
			*routeBuf = rt.Route(from.Proc, p, (*routeBuf)[:0])
			for _, l := range *routeBuf {
				dur := s.HopDuration(e, l)
				start := s.LinkTimeline(l).EarliestFitWithExtra(ready, dur, ov[l])
				if ov == nil {
					ov = make(map[system.LinkID][]schedule.Slot, 4)
				}
				ov[l] = insertSlot(ov[l], schedule.Slot{Start: start, End: start + dur})
				ready = start + dur
			}
		}
		if ready > drt {
			drt = ready
		}
	}
	return drt
}

func commit(s *schedule.Schedule, rt *system.RoutingTable, t graph.TaskID, p system.ProcID, routeBuf *[]system.LinkID) error {
	g := s.G
	var drt float64
	for _, e := range g.In(t) {
		from := s.ProcOf(g.Edge(e).From)
		*routeBuf = rt.Route(from, p, (*routeBuf)[:0])
		arr, err := s.PlaceMessage(e, *routeBuf)
		if err != nil {
			return err
		}
		if arr > drt {
			drt = arr
		}
	}
	_, err := s.PlaceTaskEarliest(t, p, drt)
	return err
}

func insertSlot(slots []schedule.Slot, sl schedule.Slot) []schedule.Slot {
	idx := sort.Search(len(slots), func(i int) bool { return slots[i].Start >= sl.Start })
	slots = append(slots, schedule.Slot{})
	copy(slots[idx+1:], slots[idx:])
	slots[idx] = sl
	return slots
}
