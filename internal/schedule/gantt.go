package schedule

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteGantt renders the schedule as text in the style of the paper's
// Figure 2: one section per processor listing task slots in time order, and
// one per link listing message hops, e.g.
//
//	P1: [  0.0, 15.0) T3   [ 20.0, 53.0) T7
//	L12: [ 15.0, 25.0) T3->T8
func (s *Schedule) WriteGantt(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule length = %.2f, total comm = %.2f\n", s.Length(), s.TotalComm())
	for p := 0; p < s.Sys.Net.NumProcs(); p++ {
		fmt.Fprintf(&b, "%-4s:", s.Sys.Net.Proc(procID(p)).Name)
		for _, slot := range s.procTL[p].Slots() {
			fmt.Fprintf(&b, " [%7.2f,%7.2f) %s", slot.Start, slot.End, s.G.Task(taskID(int(slot.Owner))).Name)
		}
		b.WriteByte('\n')
	}
	for l := 0; l < s.Sys.Net.NumLinks(); l++ {
		if s.linkTL[l].Len() == 0 {
			continue
		}
		lk := s.Sys.Net.Link(linkID(l))
		fmt.Fprintf(&b, "L%d%d :", lk.A+1, lk.B+1)
		for _, slot := range s.linkTL[l].Slots() {
			e := s.G.Edge(MsgOwnerEdge(slot.Owner))
			fmt.Fprintf(&b, " [%7.2f,%7.2f) %s->%s", slot.Start, slot.End, s.G.Task(e.From).Name, s.G.Task(e.To).Name)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteGanttChart renders a proportional ASCII Gantt chart: one row per
// processor, time flowing right, width columns wide. Tasks are drawn with
// their name characters; idle time with '.'.
func (s *Schedule) WriteGanttChart(w io.Writer, width int) error {
	if width < 10 {
		width = 10
	}
	end := s.MaxFinish()
	if end <= 0 {
		end = 1
	}
	scale := float64(width) / end
	var b strings.Builder
	fmt.Fprintf(&b, "time 0 .. %.2f (each column = %.2f)\n", end, end/float64(width))
	for p := 0; p < s.Sys.Net.NumProcs(); p++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, slot := range s.procTL[p].Slots() {
			lo := int(slot.Start * scale)
			hi := int(slot.End * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			name := s.G.Task(taskID(int(slot.Owner))).Name
			for i := lo; i < hi && i < width; i++ {
				row[i] = name[(i-lo)%len(name)]
			}
		}
		fmt.Fprintf(&b, "%-4s |%s|\n", s.Sys.Net.Proc(procID(p)).Name, row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Assignment returns task names grouped by processor, in start-time order —
// convenient for compact logging in examples.
func (s *Schedule) Assignment() map[string][]string {
	out := make(map[string][]string, s.Sys.Net.NumProcs())
	for p := 0; p < s.Sys.Net.NumProcs(); p++ {
		slots := append([]Slot(nil), s.procTL[p].Slots()...)
		sort.Slice(slots, func(i, j int) bool { return slots[i].Start < slots[j].Start })
		var names []string
		for _, slot := range slots {
			names = append(names, s.G.Task(taskID(int(slot.Owner))).Name)
		}
		out[s.Sys.Net.Proc(procID(p)).Name] = names
	}
	return out
}
