package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimelineEarliestFitEmpty(t *testing.T) {
	var tl Timeline
	if got := tl.EarliestFit(5, 10); got != 5 {
		t.Errorf("EarliestFit=%v, want 5", got)
	}
	if got := tl.EarliestFit(-3, 10); got != 0 {
		t.Errorf("EarliestFit negative ready=%v, want 0", got)
	}
	if tl.End() != 0 || tl.Len() != 0 || tl.BusyTime() != 0 {
		t.Error("empty timeline aggregates wrong")
	}
}

func TestTimelineReserveAndGaps(t *testing.T) {
	var tl Timeline
	if err := tl.Reserve(10, 10, 1); err != nil {
		t.Fatal(err)
	}
	if err := tl.Reserve(30, 10, 2); err != nil {
		t.Fatal(err)
	}
	// Gap [0,10): fits a 10 at 0.
	if got := tl.EarliestFit(0, 10); got != 0 {
		t.Errorf("fit before first=%v, want 0", got)
	}
	// No gap fits a 12 (gaps are [0,10) and [20,30)); it must go at the end.
	if got := tl.EarliestFit(0, 12); got != 40 {
		t.Errorf("12 must go at 40: got %v", got)
	}
	if got := tl.EarliestFit(5, 12); got != 40 {
		t.Errorf("12 with ready=5 must go after everything: got %v, want 40", got)
	}
	if got := tl.EarliestFit(15, 5); got != 20 {
		t.Errorf("5 with ready=15 fits at 20: got %v", got)
	}
	if got := tl.EarliestFit(22, 5); got != 22 {
		t.Errorf("5 at ready=22 fits in gap: got %v", got)
	}
	if got := tl.EarliestFit(50, 1); got != 50 {
		t.Errorf("after all slots: got %v, want 50", got)
	}
	if tl.End() != 40 {
		t.Errorf("End=%v, want 40", tl.End())
	}
	if tl.BusyTime() != 20 {
		t.Errorf("BusyTime=%v, want 20", tl.BusyTime())
	}
}

func TestTimelineZeroDuration(t *testing.T) {
	var tl Timeline
	tl.Reserve(0, 10, 1)
	if got := tl.EarliestFit(5, 0); got != 10 {
		// A zero-duration transfer still cannot start inside a busy slot.
		t.Errorf("zero-duration fit=%v, want 10", got)
	}
	if err := tl.Reserve(10, 0, 2); err != nil {
		t.Errorf("zero-duration reserve at boundary: %v", err)
	}
}

func TestTimelineReserveOverlapErrors(t *testing.T) {
	var tl Timeline
	tl.Reserve(10, 10, 1)
	for _, c := range []struct{ start, dur float64 }{
		{5, 10}, {15, 2}, {19, 5}, {10, 10}, {0, 11},
	} {
		if err := tl.Reserve(c.start, c.dur, 9); err == nil {
			t.Errorf("Reserve(%v,%v) should overlap", c.start, c.dur)
		}
	}
	// Touching boundaries is fine.
	if err := tl.Reserve(0, 10, 2); err != nil {
		t.Errorf("touching before: %v", err)
	}
	if err := tl.Reserve(20, 10, 3); err != nil {
		t.Errorf("touching after: %v", err)
	}
	if err := tl.Reserve(0, -1, 4); err == nil {
		t.Error("negative duration should fail")
	}
	if err := tl.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineRemoveOwner(t *testing.T) {
	var tl Timeline
	tl.Reserve(0, 5, 7)
	tl.Reserve(10, 5, 8)
	tl.Reserve(20, 5, 7)
	if got := tl.RemoveOwner(7); got != 2 {
		t.Errorf("removed %d, want 2", got)
	}
	if tl.Len() != 1 || tl.Slots()[0].Owner != 8 {
		t.Errorf("remaining slots wrong: %+v", tl.Slots())
	}
	if got := tl.RemoveOwner(99); got != 0 {
		t.Errorf("removed %d for absent owner", got)
	}
}

func TestTimelineReserveEarliest(t *testing.T) {
	var tl Timeline
	tl.Reserve(10, 10, 1)
	start := tl.ReserveEarliest(0, 5, 2)
	if start != 0 {
		t.Errorf("start=%v, want 0", start)
	}
	start = tl.ReserveEarliest(0, 6, 3)
	if start != 20 { // gap [5,10) too small for 6
		t.Errorf("start=%v, want 20", start)
	}
	if err := tl.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestEarliestFitWithExtra(t *testing.T) {
	var tl Timeline
	tl.Reserve(10, 10, 1)
	extra := []Slot{{Start: 0, End: 5}, {Start: 25, End: 30}}
	if got := tl.EarliestFitWithExtra(0, 5, extra); got != 5 {
		t.Errorf("fit=%v, want 5 (gap between extra and real)", got)
	}
	if got := tl.EarliestFitWithExtra(0, 6, extra); got != 30 {
		t.Errorf("fit=%v, want 30", got)
	}
	if got := tl.EarliestFitWithExtra(0, 5, nil); got != 0 {
		t.Errorf("fit with nil extra=%v, want 0", got)
	}
}

func TestTimelineReset(t *testing.T) {
	var tl Timeline
	tl.Reserve(0, 5, 1)
	tl.Reset()
	if tl.Len() != 0 || tl.End() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestTimelinePropertyRandomOps(t *testing.T) {
	// Random mixes of ReserveEarliest and RemoveOwner keep the timeline
	// consistent, and EarliestFit always returns a feasible minimal start.
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var tl Timeline
		ops := 5 + int(opsRaw)%60
		for i := 0; i < ops; i++ {
			switch rng.Intn(3) {
			case 0, 1:
				ready := rng.Float64() * 100
				dur := rng.Float64() * 20
				start := tl.EarliestFit(ready, dur)
				if start < ready-1e-9 {
					return false
				}
				// Verify minimality: no feasible earlier start on a grid.
				tl.ReserveEarliest(ready, dur, int64(i))
			case 2:
				tl.RemoveOwner(int64(rng.Intn(ops)))
			}
			if tl.CheckConsistent() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEarliestFitMinimality(t *testing.T) {
	// Brute-force cross-check on small integer instances: EarliestFit's
	// result is the smallest integer-grid start that fits.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var tl Timeline
		n := rng.Intn(6)
		for i := 0; i < n; i++ {
			tl.ReserveEarliest(float64(rng.Intn(30)), float64(1+rng.Intn(8)), int64(i))
		}
		ready := float64(rng.Intn(30))
		dur := float64(1 + rng.Intn(8))
		got := tl.EarliestFit(ready, dur)
		fits := func(start float64) bool {
			if start < ready {
				return false
			}
			for _, s := range tl.Slots() {
				if start < s.End-1e-9 && s.Start < start+dur-1e-9 {
					return false
				}
			}
			return true
		}
		if !fits(got) {
			t.Fatalf("trial %d: EarliestFit(%v,%v)=%v does not fit in %+v", trial, ready, dur, got, tl.Slots())
		}
		for x := ready; x < got-0.5; x += 0.5 {
			if fits(x) {
				t.Fatalf("trial %d: EarliestFit=%v but %v also fits in %+v", trial, got, x, tl.Slots())
			}
		}
	}
}

func TestTimelineReserveExact(t *testing.T) {
	var tl Timeline
	if err := tl.Reserve(10, 10, 1); err != nil {
		t.Fatal(err)
	}
	// Exact bounds are preserved bitwise, including ends that start+dur
	// arithmetic would not reproduce.
	start, end := 0.1, 0.3
	if err := tl.ReserveExact(start, end, 2); err != nil {
		t.Fatal(err)
	}
	if tl.Slots()[0].Start != start || tl.Slots()[0].End != end {
		t.Fatalf("slot=%+v, want [%v,%v)", tl.Slots()[0], start, end)
	}
	if err := tl.ReserveExact(5, 15, 3); err == nil {
		t.Fatal("overlap with [10,20) must fail")
	}
	if err := tl.ReserveExact(9, 3, 4); err == nil {
		t.Fatal("negative-duration slot must fail")
	}
	if err := tl.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineFilterOwners(t *testing.T) {
	var tl Timeline
	for i := int64(0); i < 6; i++ {
		if err := tl.Reserve(float64(i*10), 5, i); err != nil {
			t.Fatal(err)
		}
	}
	var removed []int64
	n := tl.FilterOwners(func(owner int64) bool { return owner%2 == 0 }, func(owner int64) {
		removed = append(removed, owner)
	})
	if n != 3 || len(removed) != 3 || removed[0] != 1 || removed[1] != 3 || removed[2] != 5 {
		t.Fatalf("removed %v (n=%d), want [1 3 5]", removed, n)
	}
	if tl.Len() != 3 {
		t.Fatalf("kept %d slots, want 3", tl.Len())
	}
	if err := tl.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if got := tl.FilterOwners(func(int64) bool { return true }, nil); got != 0 {
		t.Fatalf("keep-all removed %d", got)
	}
}
