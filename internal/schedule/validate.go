package schedule

import (
	"fmt"

	"repro/sched/graph"
	"repro/sched/system"
)

// Validate checks that a complete schedule is feasible:
//
//  1. every task is placed exactly once, with duration equal to its actual
//     execution cost on its processor;
//  2. no two tasks overlap on a processor and no two hops overlap on a link
//     (link contention constraint);
//  3. every message's hop sequence is a contiguous path from its sender's
//     processor to its receiver's processor, hop durations equal actual
//     communication costs, hop k starts no earlier than hop k-1 ends
//     (store-and-forward) and the first hop starts no earlier than the
//     sender finishes;
//  4. intra-processor messages have no hops and arrive when the sender
//     finishes;
//  5. every task starts no earlier than each of its incoming messages
//     arrives (precedence + data ready time).
//
// It returns the first violation found, or nil.
func (s *Schedule) Validate() error {
	g, nw := s.G, s.Sys.Net

	for i := range s.Tasks {
		ts := &s.Tasks[i]
		if !ts.Placed {
			return fmt.Errorf("task %d not placed", i)
		}
		wantDur := s.Sys.ExecCost(i, ts.Proc, g.Task(taskID(i)).Cost)
		if !feq(ts.End-ts.Start, wantDur) {
			return fmt.Errorf("task %d duration %v != actual cost %v on P%d", i, ts.End-ts.Start, wantDur, ts.Proc+1)
		}
		if ts.Start < -timeEps {
			return fmt.Errorf("task %d starts before time 0: %v", i, ts.Start)
		}
	}

	for p := range s.procTL {
		if err := s.procTL[p].CheckConsistent(); err != nil {
			return fmt.Errorf("P%d: %w", p+1, err)
		}
	}
	for l := range s.linkTL {
		if err := s.linkTL[l].CheckConsistent(); err != nil {
			return fmt.Errorf("link %d: %w", l, err)
		}
	}

	// Cross-check task slots against processor timelines.
	placedOnTL := 0
	for p := range s.procTL {
		for _, slot := range s.procTL[p].Slots() {
			t := taskID(int(slot.Owner))
			ts := &s.Tasks[t]
			if ts.Proc != system.ProcID(p) || !feq(ts.Start, slot.Start) || !feq(ts.End, slot.End) {
				return fmt.Errorf("task %d timeline slot mismatch on P%d", t, p+1)
			}
			placedOnTL++
		}
	}
	if placedOnTL != g.NumTasks() {
		return fmt.Errorf("%d timeline slots for %d tasks", placedOnTL, g.NumTasks())
	}

	for ei := range s.Msgs {
		e := g.Edge(edgeID(ei))
		ms := &s.Msgs[ei]
		if !ms.Placed {
			return fmt.Errorf("message %d not placed", ei)
		}
		from, to := &s.Tasks[e.From], &s.Tasks[e.To]
		if from.Proc == to.Proc {
			if len(ms.Hops) != 0 {
				return fmt.Errorf("intra-processor message %d has %d hops", ei, len(ms.Hops))
			}
			if !feq(ms.Arrival, from.End) {
				return fmt.Errorf("intra-processor message %d arrival %v != sender finish %v", ei, ms.Arrival, from.End)
			}
		} else {
			if len(ms.Hops) == 0 {
				return fmt.Errorf("inter-processor message %d has no hops", ei)
			}
			p := from.Proc
			ready := from.End
			for hi, h := range ms.Hops {
				lk := nw.Link(h.Link)
				if h.From != p || !lk.Has(h.From) || lk.Other(h.From) != h.To {
					return fmt.Errorf("message %d hop %d is not contiguous", ei, hi)
				}
				if h.Start < ready-timeEps {
					return fmt.Errorf("message %d hop %d starts %v before ready %v", ei, hi, h.Start, ready)
				}
				wantDur := s.Sys.CommCost(ei, h.Link, e.Cost)
				if !feq(h.End-h.Start, wantDur) {
					return fmt.Errorf("message %d hop %d duration %v != actual cost %v", ei, hi, h.End-h.Start, wantDur)
				}
				ready = h.End
				p = h.To
			}
			if p != to.Proc {
				return fmt.Errorf("message %d route ends at P%d, receiver on P%d", ei, p+1, to.Proc+1)
			}
			if !feq(ms.Arrival, ready) {
				return fmt.Errorf("message %d arrival %v != last hop end %v", ei, ms.Arrival, ready)
			}
		}
		if to.Start < ms.Arrival-timeEps {
			return fmt.Errorf("task %d starts %v before message %d arrives %v", e.To, to.Start, ei, ms.Arrival)
		}
	}

	// Cross-check link slots against message hops.
	hopCount := 0
	for i := range s.Msgs {
		hopCount += len(s.Msgs[i].Hops)
	}
	slotCount := 0
	for l := range s.linkTL {
		slotCount += s.linkTL[l].Len()
	}
	if hopCount != slotCount {
		return fmt.Errorf("%d link slots for %d message hops", slotCount, hopCount)
	}
	return nil
}

func feq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= timeEps*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Tiny typed-index helpers; indices are dense so plain conversions suffice.
func taskID(i int) graph.TaskID { return graph.TaskID(i) }
func edgeID(i int) graph.EdgeID { return graph.EdgeID(i) }
