package schedule

import (
	"fmt"

	"repro/sched/graph"
	"repro/sched/system"
)

// FromSlots reconstructs a complete Schedule from explicit task and
// message slots: every slot is re-reserved on its processor or link
// timeline and the result must pass Validate. This is the adoption path
// behind sched.AssembleSchedule, letting schedulers that do not use this
// package's placement primitives still hand back a first-class schedule.
func FromSlots(g *graph.Graph, sys *system.System, tasks []TaskSlot, msgs []MsgSlot) (*Schedule, error) {
	if len(tasks) != g.NumTasks() {
		return nil, fmt.Errorf("schedule: %d task slots for %d tasks", len(tasks), g.NumTasks())
	}
	if len(msgs) != g.NumEdges() {
		return nil, fmt.Errorf("schedule: %d message slots for %d messages", len(msgs), g.NumEdges())
	}
	m := sys.Net.NumProcs()
	nl := sys.Net.NumLinks()
	s := New(g, sys)
	for i, ts := range tasks {
		if !ts.Placed {
			return nil, fmt.Errorf("schedule: task %d slot not placed", i)
		}
		if ts.Proc < 0 || int(ts.Proc) >= m {
			return nil, fmt.Errorf("schedule: task %d on unknown processor %d", i, ts.Proc)
		}
		if err := s.procTL[ts.Proc].ReserveExact(ts.Start, ts.End, taskOwner(graph.TaskID(i))); err != nil {
			return nil, fmt.Errorf("schedule: task %d on P%d: %w", i, ts.Proc+1, err)
		}
		s.Tasks[i] = ts
	}
	for i, ms := range msgs {
		if !ms.Placed {
			return nil, fmt.Errorf("schedule: message %d slot not placed", i)
		}
		hops := make([]Hop, len(ms.Hops))
		for h, hop := range ms.Hops {
			if hop.Link < 0 || int(hop.Link) >= nl {
				return nil, fmt.Errorf("schedule: message %d hop %d on unknown link %d", i, h, hop.Link)
			}
			if err := s.linkTL[hop.Link].ReserveExact(hop.Start, hop.End, MsgOwner(graph.EdgeID(i), h)); err != nil {
				return nil, fmt.Errorf("schedule: message %d hop %d: %w", i, h, err)
			}
			hops[h] = hop
		}
		s.Msgs[i] = MsgSlot{Hops: hops, Arrival: ms.Arrival, Placed: true}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("schedule: assembled schedule infeasible: %w", err)
	}
	return s, nil
}
