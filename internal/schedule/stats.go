package schedule

import (
	"fmt"

	"repro/sched/system"
)

func procID(i int) system.ProcID { return system.ProcID(i) }
func linkID(i int) system.LinkID { return system.LinkID(i) }

// Stats summarises a complete schedule.
type Stats struct {
	Length        float64 // makespan (the paper's schedule length, SL)
	TotalComm     float64 // total link occupancy time
	ProcBusy      float64 // summed task execution time
	AvgProcUtil   float64 // ProcBusy / (m * Length)
	AvgLinkUtil   float64 // TotalComm / (links * Length)
	UsedProcs     int     // processors executing at least one task
	UsedLinks     int     // links carrying at least one hop
	LocalMsgs     int     // messages with zero hops
	RemoteMsgs    int     // messages crossing at least one link
	MaxRouteHops  int     // longest message route
	MeanRouteHops float64 // mean hops over remote messages
}

// ComputeStats derives summary statistics from a complete schedule.
func (s *Schedule) ComputeStats() Stats {
	st := Stats{Length: s.Length(), TotalComm: s.TotalComm()}
	for p := range s.procTL {
		b := s.procTL[p].BusyTime()
		st.ProcBusy += b
		if s.procTL[p].Len() > 0 {
			st.UsedProcs++
		}
	}
	for l := range s.linkTL {
		if s.linkTL[l].Len() > 0 {
			st.UsedLinks++
		}
	}
	totalHops := 0
	for i := range s.Msgs {
		h := len(s.Msgs[i].Hops)
		if h == 0 {
			st.LocalMsgs++
			continue
		}
		st.RemoteMsgs++
		totalHops += h
		if h > st.MaxRouteHops {
			st.MaxRouteHops = h
		}
	}
	if st.RemoteMsgs > 0 {
		st.MeanRouteHops = float64(totalHops) / float64(st.RemoteMsgs)
	}
	if st.Length > 0 {
		m := float64(s.Sys.Net.NumProcs())
		st.AvgProcUtil = st.ProcBusy / (m * st.Length)
		if nl := float64(s.Sys.Net.NumLinks()); nl > 0 {
			st.AvgLinkUtil = st.TotalComm / (nl * st.Length)
		}
	}
	return st
}

// String renders the stats on one line.
func (st Stats) String() string {
	return fmt.Sprintf("SL=%.2f comm=%.2f procUtil=%.1f%% procs=%d links=%d local=%d remote=%d maxHops=%d",
		st.Length, st.TotalComm, 100*st.AvgProcUtil, st.UsedProcs, st.UsedLinks, st.LocalMsgs, st.RemoteMsgs, st.MaxRouteHops)
}
