package schedule

import (
	"bytes"
	"strings"
	"testing"

	"repro/sched/graph"
	"repro/sched/system"
)

// fixture: chain a->b->c on a 3-processor line with uniform factors.
func fixture(t *testing.T) (*graph.Graph, *system.System) {
	t.Helper()
	b := graph.NewBuilder()
	a := b.AddTask("a", 10)
	x := b.AddTask("b", 20)
	y := b.AddTask("c", 30)
	b.AddEdge(a, x, 5)
	b.AddEdge(x, y, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nw, err := system.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	return g, system.NewUniform(nw, g.NumTasks(), g.NumEdges())
}

func TestPlaceTaskAndMessageLocal(t *testing.T) {
	g, sys := fixture(t)
	s := New(g, sys)
	if err := s.PlaceTask(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Local message: same processor, no hops.
	arr, err := s.PlaceMessage(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if arr != 10 {
		t.Errorf("local arrival=%v, want 10 (sender finish)", arr)
	}
	if err := s.PlaceTask(1, 0, arr); err != nil {
		t.Fatal(err)
	}
	drt, vip := s.DRT(1)
	if drt != 10 || vip != 0 {
		t.Errorf("DRT=%v vip=%v, want 10, 0", drt, vip)
	}
}

func TestPlaceMessageMultiHop(t *testing.T) {
	g, sys := fixture(t)
	s := New(g, sys)
	s.PlaceTask(0, 0, 0) // a on P1, finishes at 10
	// Message a->b over two hops P1->P2->P3 (links 0 and 1).
	arr, err := s.PlaceMessage(0, []system.LinkID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if arr != 20 { // 10 + 5 + 5
		t.Errorf("arrival=%v, want 20", arr)
	}
	hops := s.Msgs[0].Hops
	if len(hops) != 2 || hops[0].From != 0 || hops[0].To != 1 || hops[1].To != 2 {
		t.Fatalf("hops=%+v", hops)
	}
	if hops[0].Start != 10 || hops[0].End != 15 || hops[1].Start != 15 || hops[1].End != 20 {
		t.Fatalf("hop times=%+v", hops)
	}
	if err := s.PlaceTask(1, 2, arr); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceMessageContention(t *testing.T) {
	g, sys := fixture(t)
	s := New(g, sys)
	s.PlaceTask(0, 0, 0)  // a finishes 10
	s.PlaceTask(1, 0, 10) // b on P1 too, finishes 30
	// Local a->b message.
	s.PlaceMessage(0, nil)
	// b->c over link 0: ready at 30.
	arr, err := s.PlaceMessage(1, []system.LinkID{0})
	if err != nil {
		t.Fatal(err)
	}
	if arr != 37 {
		t.Errorf("arrival=%v, want 37", arr)
	}
	// The link slot [30,37) now blocks other transfers; EarliestFit sees it.
	if got := s.LinkTimeline(0).EarliestFit(30, 5); got != 37 {
		t.Errorf("link fit=%v, want 37", got)
	}
}

func TestPlaceErrors(t *testing.T) {
	g, sys := fixture(t)
	s := New(g, sys)
	if err := s.PlaceTask(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceTask(0, 1, 0); err == nil {
		t.Error("double placement should fail")
	}
	if err := s.PlaceTask(1, 0, 5); err == nil {
		t.Error("overlapping placement should fail")
	}
	if _, err := s.PlaceMessage(1, nil); err == nil {
		t.Error("message with unplaced sender should fail")
	}
	// Route not touching sender's processor.
	if _, err := s.PlaceMessage(0, []system.LinkID{1}); err == nil {
		t.Error("disconnected route should fail")
	}
	// The failed placement must not leak reservations.
	if s.LinkTimeline(1).Len() != 0 {
		t.Error("failed PlaceMessage leaked link slots")
	}
	if _, err := s.PlaceMessage(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PlaceMessage(0, nil); err == nil {
		t.Error("double message placement should fail")
	}
}

func TestPlaceMessageRollbackMidRoute(t *testing.T) {
	g, sys := fixture(t)
	s := New(g, sys)
	s.PlaceTask(0, 0, 0)
	// Route [0, 0] walks P1->P2->P1; then link 1 (P2-P3)... construct an
	// invalid second hop: link 0 then link 0 is valid walk; use [1] after
	// arriving at P2 is valid; invalid is [0, 99]? Out of range handled by
	// Link() panic; instead use a route whose second hop does not touch the
	// current processor: [0 (P1->P2), 0... ] second use of link 0 touches
	// P2, fine. Use Line(3) link IDs: 0=(P1,P2), 1=(P2,P3). Route [1, ...]
	// fails immediately. Route [0, 1, 0] third hop: at P3, link 0 does not
	// touch P3 -> rollback of two reserved hops.
	if _, err := s.PlaceMessage(0, []system.LinkID{0, 1, 0}); err == nil {
		t.Fatal("expected mid-route failure")
	}
	if s.LinkTimeline(0).Len() != 0 || s.LinkTimeline(1).Len() != 0 {
		t.Error("mid-route failure leaked reservations")
	}
	if s.Msgs[0].Placed {
		t.Error("message marked placed after failure")
	}
}

func TestUnplace(t *testing.T) {
	g, sys := fixture(t)
	s := New(g, sys)
	s.PlaceTask(0, 0, 0)
	s.PlaceMessage(0, []system.LinkID{0})
	s.UnplaceMessage(0)
	if s.LinkTimeline(0).Len() != 0 || s.Msgs[0].Placed {
		t.Error("UnplaceMessage incomplete")
	}
	s.UnplaceMessage(0) // idempotent
	s.UnplaceTask(0)
	if s.ProcTimeline(0).Len() != 0 || s.Tasks[0].Placed {
		t.Error("UnplaceTask incomplete")
	}
	s.UnplaceTask(0) // idempotent
}

func TestScheduleLengthAndStats(t *testing.T) {
	g, sys := fixture(t)
	s := New(g, sys)
	s.PlaceTask(0, 0, 0)
	s.PlaceMessage(0, []system.LinkID{0})
	s.PlaceTask(1, 1, 15)
	s.PlaceMessage(1, []system.LinkID{1})
	s.PlaceTask(2, 2, 42)
	if !s.Complete() {
		t.Fatal("schedule should be complete")
	}
	if got := s.Length(); got != 72 {
		t.Errorf("Length=%v, want 72", got)
	}
	if got := s.TotalComm(); got != 12 {
		t.Errorf("TotalComm=%v, want 12", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := s.ComputeStats()
	if st.UsedProcs != 3 || st.UsedLinks != 2 || st.RemoteMsgs != 2 || st.LocalMsgs != 0 {
		t.Errorf("stats=%+v", st)
	}
	if st.MaxRouteHops != 1 || st.MeanRouteHops != 1 {
		t.Errorf("route stats=%+v", st)
	}
	if !strings.Contains(st.String(), "SL=72.00") {
		t.Errorf("String=%q", st.String())
	}
}

func TestHeterogeneousDurations(t *testing.T) {
	g, sys := fixture(t)
	sys.Exec[0][1] = 3 // task a is 3x slower on P2
	s := New(g, sys)
	s.PlaceTask(0, 1, 0)
	if s.Tasks[0].End != 30 {
		t.Errorf("end=%v, want 30", s.Tasks[0].End)
	}
	// Comm factor scales hop duration.
	sys2 := system.NewUniform(sys.Net, g.NumTasks(), g.NumEdges())
	sys2.Comm = [][]float64{{2, 1}, {1, 1}}
	s2 := New(g, sys2)
	s2.PlaceTask(0, 0, 0)
	arr, _ := s2.PlaceMessage(0, []system.LinkID{0})
	if arr != 20 { // 10 + 2*5
		t.Errorf("arrival=%v, want 20", arr)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	g, sys := fixture(t)
	build := func() *Schedule {
		s := New(g, sys)
		s.PlaceTask(0, 0, 0)
		s.PlaceMessage(0, []system.LinkID{0})
		s.PlaceTask(1, 1, 15)
		s.PlaceMessage(1, []system.LinkID{1})
		s.PlaceTask(2, 2, 42)
		return s
	}
	s := build()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	s = build()
	s.Tasks[2].Start = 40 // starts before message arrival 42
	s.Tasks[2].End = 70
	if err := s.Validate(); err == nil {
		t.Error("early start not caught")
	}

	s = build()
	s.Msgs[1].Arrival = 1 // inconsistent arrival
	if err := s.Validate(); err == nil {
		t.Error("bad arrival not caught")
	}

	s = build()
	s.Msgs[1].Hops[0].Start = 20 // before sender finish 35
	s.Msgs[1].Hops[0].End = 27
	if err := s.Validate(); err == nil {
		t.Error("hop before sender finish not caught")
	}

	s = New(g, sys)
	s.PlaceTask(0, 0, 0)
	if err := s.Validate(); err == nil {
		t.Error("incomplete schedule not caught")
	}
}

func TestClone(t *testing.T) {
	g, sys := fixture(t)
	s := New(g, sys)
	s.PlaceTask(0, 0, 0)
	s.PlaceMessage(0, []system.LinkID{0})
	c := s.Clone()
	c.UnplaceMessage(0)
	if !s.Msgs[0].Placed || s.LinkTimeline(0).Len() != 1 {
		t.Error("clone shares state with original")
	}
}

func TestReset(t *testing.T) {
	g, sys := fixture(t)
	s := New(g, sys)
	s.PlaceTask(0, 0, 0)
	s.PlaceMessage(0, []system.LinkID{0})
	s.Reset()
	if s.Tasks[0].Placed || s.Msgs[0].Placed || s.ProcTimeline(0).Len() != 0 || s.LinkTimeline(0).Len() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestGanttOutputs(t *testing.T) {
	g, sys := fixture(t)
	s := New(g, sys)
	s.PlaceTask(0, 0, 0)
	s.PlaceMessage(0, []system.LinkID{0})
	s.PlaceTask(1, 1, 15)
	s.PlaceMessage(1, []system.LinkID{1})
	s.PlaceTask(2, 2, 42)

	var buf bytes.Buffer
	if err := s.WriteGantt(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"schedule length = 72.00", "P1", "L12", "a->b", "b->c"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := s.WriteGanttChart(&buf, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "P3") {
		t.Errorf("chart missing P3:\n%s", buf.String())
	}
	asg := s.Assignment()
	if len(asg["P1"]) != 1 || asg["P1"][0] != "a" {
		t.Errorf("Assignment=%v", asg)
	}
}

func TestMsgOwnerRoundTrip(t *testing.T) {
	for _, e := range []graph.EdgeID{0, 1, 1000, 500000} {
		for _, hop := range []int{0, 1, 15} {
			if got := MsgOwnerEdge(MsgOwner(e, hop)); got != e {
				t.Fatalf("MsgOwnerEdge(MsgOwner(%d,%d))=%d", e, hop, got)
			}
		}
	}
}

func TestMaxFinish(t *testing.T) {
	g, sys := fixture(t)
	s := New(g, sys)
	s.PlaceTask(0, 0, 0)
	// A trailing message in flight extends MaxFinish beyond task end.
	s.PlaceMessage(0, []system.LinkID{0})
	if got := s.MaxFinish(); got != 15 {
		t.Errorf("MaxFinish=%v, want 15", got)
	}
}

func TestTaskOwnerToken(t *testing.T) {
	if TaskOwner(7) != 7 {
		t.Fatalf("TaskOwner(7)=%d", TaskOwner(7))
	}
}
