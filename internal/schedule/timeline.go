// Package schedule provides the schedule representation shared by all
// scheduling algorithms in this repository: per-processor and per-link
// timelines of exclusive slots, insertion-based earliest-fit search,
// task/message placement with store-and-forward multi-hop routing, a full
// feasibility validator, ASCII Gantt rendering and summary statistics.
package schedule

import (
	"fmt"
)

// Slot is an exclusive reservation [Start, End) on a resource, tagged with
// an opaque owner token (task ID for processors; packed edge/hop for
// links).
type Slot struct {
	Start float64
	End   float64
	Owner int64
}

// Timeline is an ordered set of non-overlapping slots on one resource. The
// zero value is an empty timeline.
type Timeline struct {
	slots []Slot // sorted by Start
}

// timeEps absorbs floating-point noise when comparing slot boundaries.
const timeEps = 1e-9

// TimeEps is timeEps for callers that replicate the fit arithmetic outside
// this package (the BSA engine's structure-of-arrays backend must produce
// bit-identical fits).
const TimeEps = timeEps

// searchEndAbove returns the index of the first slot whose End exceeds t.
// Hand-rolled binary search: this runs once per placement, fit and strip
// restore, where sort.Search's per-probe closure call is measurable.
func (tl *Timeline) searchEndAbove(t float64) int {
	lo, hi := 0, len(tl.slots)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tl.slots[mid].End > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// searchStartAtLeast returns the index of the first slot whose Start is
// >= t.
func (tl *Timeline) searchStartAtLeast(t float64) int {
	lo, hi := 0, len(tl.slots)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tl.slots[mid].Start >= t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// insertAt inserts s at index idx, shifting later slots right.
func (tl *Timeline) insertAt(idx int, s Slot) {
	tl.slots = append(tl.slots, Slot{})
	copy(tl.slots[idx+1:], tl.slots[idx:])
	tl.slots[idx] = s
}

// Len returns the number of reserved slots.
func (tl *Timeline) Len() int { return len(tl.slots) }

// Slots returns the reserved slots in start order. The slice must not be
// modified.
func (tl *Timeline) Slots() []Slot { return tl.slots }

// End returns the finish time of the last slot (0 when empty).
func (tl *Timeline) End() float64 {
	if len(tl.slots) == 0 {
		return 0
	}
	return tl.slots[len(tl.slots)-1].End
}

// Reset removes all slots, retaining capacity.
func (tl *Timeline) Reset() { tl.slots = tl.slots[:0] }

// EarliestFit returns the earliest start >= ready at which a slot of the
// given duration fits without overlapping existing reservations
// (insertion-based scheduling). A zero duration fits at max(ready, 0).
func (tl *Timeline) EarliestFit(ready, dur float64) float64 {
	if ready < 0 {
		ready = 0
	}
	start, _ := tl.earliestFit(ready, dur)
	return start
}

// earliestFit is EarliestFit plus the insertion index a reservation at the
// returned start would occupy, so ReserveEarliest needs no second search.
func (tl *Timeline) earliestFit(ready, dur float64) (float64, int) {
	start := ready
	// Slots are non-overlapping and start-sorted, so their end times are
	// monotone: binary-search past everything ending before the candidate
	// start instead of scanning it. Late placements — the common case in
	// suffix rebuilds, whose timelines already hold the whole prefix —
	// skip nearly the entire timeline.
	lo := tl.searchEndAbove(ready)
	for i := lo; i < len(tl.slots); i++ {
		s := tl.slots[i]
		if s.End <= start+timeEps {
			continue // slot entirely before the candidate start
		}
		if start+dur <= s.Start+timeEps {
			return start, i // fits in the gap before this slot
		}
		start = s.End
		if start < ready {
			start = ready
		}
	}
	return start, len(tl.slots)
}

// EarliestFitWithExtra behaves like EarliestFit but also avoids the given
// additional slots (not yet reserved). extra must be sorted by Start and
// non-overlapping with the timeline; BSA uses this to evaluate tentative
// message placements without mutating state.
func (tl *Timeline) EarliestFitWithExtra(ready, dur float64, extra []Slot) float64 {
	if ready < 0 {
		ready = 0
	}
	start := ready
	i := tl.searchEndAbove(ready)
	j := 0
	for i < len(tl.slots) || j < len(extra) {
		var s Slot
		if j >= len(extra) || (i < len(tl.slots) && tl.slots[i].Start <= extra[j].Start) {
			s = tl.slots[i]
			i++
		} else {
			s = extra[j]
			j++
		}
		if s.End <= start+timeEps {
			continue
		}
		if start+dur <= s.Start+timeEps {
			return start
		}
		start = s.End
		if start < ready {
			start = ready
		}
	}
	return start
}

// Reserve inserts the slot [start, start+dur) with the given owner,
// returning an error if it overlaps an existing reservation.
func (tl *Timeline) Reserve(start, dur float64, owner int64) error {
	if dur < 0 {
		return fmt.Errorf("schedule: negative duration %v", dur)
	}
	end := start + dur
	idx := tl.searchStartAtLeast(start)
	if idx > 0 && tl.slots[idx-1].End > start+timeEps {
		return fmt.Errorf("schedule: slot [%v,%v) overlaps [%v,%v)", start, end, tl.slots[idx-1].Start, tl.slots[idx-1].End)
	}
	if idx < len(tl.slots) && tl.slots[idx].Start < end-timeEps {
		return fmt.Errorf("schedule: slot [%v,%v) overlaps [%v,%v)", start, end, tl.slots[idx].Start, tl.slots[idx].End)
	}
	tl.insertAt(idx, Slot{Start: start, End: end, Owner: owner})
	return nil
}

// ReserveExact inserts the slot [start, end) with the given owner,
// preserving the exact end bound (Reserve would recompute it as start+dur,
// which need not be bitwise identical under floating point). The
// incremental BSA engine uses it to re-reserve placements that a lazily
// stripped timeline dropped but whose inputs turned out to be unchanged.
func (tl *Timeline) ReserveExact(start, end float64, owner int64) error {
	if end < start {
		return fmt.Errorf("schedule: negative duration slot [%v,%v)", start, end)
	}
	idx := tl.searchStartAtLeast(start)
	if idx > 0 && tl.slots[idx-1].End > start+timeEps {
		return fmt.Errorf("schedule: slot [%v,%v) overlaps [%v,%v)", start, end, tl.slots[idx-1].Start, tl.slots[idx-1].End)
	}
	if idx < len(tl.slots) && tl.slots[idx].Start < end-timeEps {
		return fmt.Errorf("schedule: slot [%v,%v) overlaps [%v,%v)", start, end, tl.slots[idx].Start, tl.slots[idx].End)
	}
	tl.insertAt(idx, Slot{Start: start, End: end, Owner: owner})
	return nil
}

// FilterOwners removes every slot whose owner fails keep, calling onRemove
// once per removed slot in start order, and reports how many were removed.
// It rewrites the timeline in a single pass.
func (tl *Timeline) FilterOwners(keep func(owner int64) bool, onRemove func(owner int64)) int {
	out := tl.slots[:0]
	removed := 0
	for _, s := range tl.slots {
		if keep(s.Owner) {
			out = append(out, s)
			continue
		}
		removed++
		if onRemove != nil {
			onRemove(s.Owner)
		}
	}
	tl.slots = out
	return removed
}

// ReserveEarliest reserves a slot of the given duration at the earliest
// feasible start >= ready and returns that start. The fit search already
// yields the insertion index, so — unlike EarliestFit followed by
// Reserve — no second search or overlap re-check runs.
func (tl *Timeline) ReserveEarliest(ready, dur float64, owner int64) float64 {
	if ready < 0 {
		ready = 0
	}
	if dur < 0 {
		panic(fmt.Sprintf("schedule: negative duration %v", dur))
	}
	start, idx := tl.earliestFit(ready, dur)
	tl.insertAt(idx, Slot{Start: start, End: start + dur, Owner: owner})
	return start
}

// AdoptSlots replaces the timeline's contents with the given slots, which
// must be start-sorted and non-overlapping. Engine backends that maintain
// slot state in their own layout use it to materialize a Timeline view for
// validation and rendering.
func (tl *Timeline) AdoptSlots(slots []Slot) {
	tl.slots = append(tl.slots[:0], slots...)
}

// RemoveOwner removes all slots with the given owner and reports how many
// were removed.
func (tl *Timeline) RemoveOwner(owner int64) int {
	out := tl.slots[:0]
	removed := 0
	for _, s := range tl.slots {
		if s.Owner == owner {
			removed++
			continue
		}
		out = append(out, s)
	}
	tl.slots = out
	return removed
}

// BusyTime returns the total reserved duration.
func (tl *Timeline) BusyTime() float64 {
	var b float64
	for _, s := range tl.slots {
		b += s.End - s.Start
	}
	return b
}

// CheckConsistent verifies internal invariants (ordering, non-overlap,
// non-negative durations); it is used by tests and the validator.
func (tl *Timeline) CheckConsistent() error {
	for i, s := range tl.slots {
		if s.End < s.Start-timeEps {
			return fmt.Errorf("schedule: slot %d has End %v < Start %v", i, s.End, s.Start)
		}
		if i > 0 && tl.slots[i-1].End > s.Start+timeEps {
			return fmt.Errorf("schedule: slots %d and %d overlap", i-1, i)
		}
		if i > 0 && tl.slots[i-1].Start > s.Start {
			return fmt.Errorf("schedule: slots out of order at %d", i)
		}
	}
	return nil
}
