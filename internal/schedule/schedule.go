package schedule

import (
	"fmt"
	"math"

	"repro/sched/graph"
	"repro/sched/system"
)

// TaskSlot records where and when a task executes.
type TaskSlot struct {
	Proc   system.ProcID
	Start  float64
	End    float64
	Placed bool
}

// Hop is one link traversal of a message: the message occupies Link for
// [Start, End) while moving From -> To.
type Hop struct {
	Link  system.LinkID
	From  system.ProcID
	To    system.ProcID
	Start float64
	End   float64
}

// MsgSlot records the placement of one message: its hop sequence (empty for
// an intra-processor message) and arrival time at the destination
// processor.
type MsgSlot struct {
	Hops    []Hop
	Arrival float64
	Placed  bool
}

// Schedule is a (possibly partial) mapping of tasks to processor time slots
// and messages to link time slots for one task graph on one heterogeneous
// system.
type Schedule struct {
	G   *graph.Graph
	Sys *system.System

	Tasks []TaskSlot
	Msgs  []MsgSlot

	procTL []Timeline
	linkTL []Timeline
}

// New returns an empty schedule for g on sys.
func New(g *graph.Graph, sys *system.System) *Schedule {
	return &Schedule{
		G:      g,
		Sys:    sys,
		Tasks:  make([]TaskSlot, g.NumTasks()),
		Msgs:   make([]MsgSlot, g.NumEdges()),
		procTL: make([]Timeline, sys.Net.NumProcs()),
		linkTL: make([]Timeline, sys.Net.NumLinks()),
	}
}

// Reset clears all placements, retaining allocations.
func (s *Schedule) Reset() {
	for i := range s.Tasks {
		s.Tasks[i] = TaskSlot{}
	}
	for i := range s.Msgs {
		s.Msgs[i].Hops = s.Msgs[i].Hops[:0]
		s.Msgs[i].Arrival = 0
		s.Msgs[i].Placed = false
	}
	for i := range s.procTL {
		s.procTL[i].Reset()
	}
	for i := range s.linkTL {
		s.linkTL[i].Reset()
	}
}

// ProcTimeline returns the timeline of processor p.
func (s *Schedule) ProcTimeline(p system.ProcID) *Timeline { return &s.procTL[p] }

// LinkTimeline returns the timeline of link l.
func (s *Schedule) LinkTimeline(l system.LinkID) *Timeline { return &s.linkTL[l] }

// Owner tokens: processor slots are owned by the task ID; link slots by the
// edge ID shifted to keep hop indices distinguishable.
func taskOwner(t graph.TaskID) int64 { return int64(t) }

// TaskOwner returns the processor-slot owner token of task t, for callers
// that manipulate timelines directly (the incremental BSA engine).
func TaskOwner(t graph.TaskID) int64 { return taskOwner(t) }

// MsgOwner returns the link-slot owner token for hop h of edge e.
func MsgOwner(e graph.EdgeID, hop int) int64 { return int64(e)<<20 | int64(hop) }

// MsgOwnerEdge recovers the edge ID from a link-slot owner token.
func MsgOwnerEdge(owner int64) graph.EdgeID { return graph.EdgeID(owner >> 20) }

// ExecDuration returns the actual execution duration of t on p.
func (s *Schedule) ExecDuration(t graph.TaskID, p system.ProcID) float64 {
	return s.Sys.ExecCost(int(t), p, s.G.Task(t).Cost)
}

// HopDuration returns the actual duration of edge e crossing link l.
func (s *Schedule) HopDuration(e graph.EdgeID, l system.LinkID) float64 {
	return s.Sys.CommCost(int(e), l, s.G.Edge(e).Cost)
}

// PlaceTask reserves [start, start+dur) for t on p, where dur is the actual
// execution cost. It fails if t is already placed or the slot overlaps.
func (s *Schedule) PlaceTask(t graph.TaskID, p system.ProcID, start float64) error {
	if s.Tasks[t].Placed {
		return fmt.Errorf("schedule: task %d already placed", t)
	}
	dur := s.ExecDuration(t, p)
	if err := s.procTL[p].Reserve(start, dur, taskOwner(t)); err != nil {
		return fmt.Errorf("schedule: task %d on P%d: %w", t, p+1, err)
	}
	s.Tasks[t] = TaskSlot{Proc: p, Start: start, End: start + dur, Placed: true}
	return nil
}

// PlaceTaskEarliest reserves t on p at the earliest insertion slot whose
// start is >= ready and returns the start time.
func (s *Schedule) PlaceTaskEarliest(t graph.TaskID, p system.ProcID, ready float64) (float64, error) {
	if s.Tasks[t].Placed {
		return 0, fmt.Errorf("schedule: task %d already placed", t)
	}
	dur := s.ExecDuration(t, p)
	start := s.procTL[p].ReserveEarliest(ready, dur, taskOwner(t))
	s.Tasks[t] = TaskSlot{Proc: p, Start: start, End: start + dur, Placed: true}
	return start, nil
}

// UnplaceTask removes t's processor reservation.
func (s *Schedule) UnplaceTask(t graph.TaskID) {
	if !s.Tasks[t].Placed {
		return
	}
	s.procTL[s.Tasks[t].Proc].RemoveOwner(taskOwner(t))
	s.Tasks[t] = TaskSlot{}
}

// PlaceMessage schedules edge e hop-by-hop along route (a contiguous link
// path from the placed sender's processor). Each hop takes the earliest
// insertion slot on its link no earlier than the previous hop's finish
// (store-and-forward); the first hop is ready at the sender's finish time.
// An empty route requires no link usage and arrival equals the sender's
// finish. The sender must already be placed.
func (s *Schedule) PlaceMessage(e graph.EdgeID, route []system.LinkID) (float64, error) {
	return s.placeMessage(e, route, true)
}

// PlaceMessageAppend is PlaceMessage with append-only link reservations:
// each hop starts no earlier than the last reservation already on its link
// (no back-filling of idle gaps). This models schedulers that allocate
// link bandwidth strictly in scheduling order, like classic DLS.
func (s *Schedule) PlaceMessageAppend(e graph.EdgeID, route []system.LinkID) (float64, error) {
	return s.placeMessage(e, route, false)
}

func (s *Schedule) placeMessage(e graph.EdgeID, route []system.LinkID, insertion bool) (float64, error) {
	if s.Msgs[e].Placed {
		return 0, fmt.Errorf("schedule: message %d already placed", e)
	}
	edge := s.G.Edge(e)
	from := &s.Tasks[edge.From]
	if !from.Placed {
		return 0, fmt.Errorf("schedule: message %d sender task %d not placed", e, edge.From)
	}
	ready := from.End
	p := from.Proc
	hops := s.Msgs[e].Hops[:0]
	for hi, l := range route {
		lk := s.Sys.Net.Link(l)
		if !lk.Has(p) {
			// Roll back hops reserved so far.
			for h := range hops {
				s.linkTL[hops[h].Link].RemoveOwner(MsgOwner(e, h))
			}
			return 0, fmt.Errorf("schedule: message %d route hop %d (link %d) does not touch P%d", e, hi, l, p+1)
		}
		dur := s.HopDuration(e, l)
		var start float64
		if insertion {
			start = s.linkTL[l].ReserveEarliest(ready, dur, MsgOwner(e, hi))
		} else {
			start = ready
			if end := s.linkTL[l].End(); end > start {
				start = end
			}
			if err := s.linkTL[l].Reserve(start, dur, MsgOwner(e, hi)); err != nil {
				panic(err) // cannot overlap: start >= end of last slot
			}
		}
		next := lk.Other(p)
		hops = append(hops, Hop{Link: l, From: p, To: next, Start: start, End: start + dur})
		ready = start + dur
		p = next
	}
	s.Msgs[e] = MsgSlot{Hops: hops, Arrival: ready, Placed: true}
	return ready, nil
}

// UnplaceMessage removes all link reservations of edge e.
func (s *Schedule) UnplaceMessage(e graph.EdgeID) {
	if !s.Msgs[e].Placed {
		return
	}
	for h, hop := range s.Msgs[e].Hops {
		s.linkTL[hop.Link].RemoveOwner(MsgOwner(e, h))
	}
	s.Msgs[e].Hops = s.Msgs[e].Hops[:0]
	s.Msgs[e].Arrival = 0
	s.Msgs[e].Placed = false
}

// Arrival returns the data arrival time of edge e at its destination's
// processor. For an intra-processor message this is the sender's finish
// time.
func (s *Schedule) Arrival(e graph.EdgeID) float64 { return s.Msgs[e].Arrival }

// DRT returns the data ready time of task t given all its incoming messages
// are placed, together with the VIP — the predecessor whose message arrives
// last (the paper's "very important predecessor"). A task with no
// predecessors has DRT 0 and VIP -1.
func (s *Schedule) DRT(t graph.TaskID) (float64, graph.TaskID) {
	var drt float64
	vip := graph.TaskID(-1)
	for _, e := range s.G.In(t) {
		a := s.Msgs[e].Arrival
		if a > drt || vip < 0 {
			drt = a
			vip = s.G.Edge(e).From
		}
	}
	return drt, vip
}

// Length returns the schedule length (makespan): the maximum task finish
// time over all placed tasks.
func (s *Schedule) Length() float64 {
	var sl float64
	for i := range s.Tasks {
		if s.Tasks[i].Placed && s.Tasks[i].End > sl {
			sl = s.Tasks[i].End
		}
	}
	return sl
}

// TotalComm returns the total time messages occupy links (the paper's
// "total communication costs").
func (s *Schedule) TotalComm() float64 {
	var c float64
	for i := range s.Msgs {
		for _, h := range s.Msgs[i].Hops {
			c += h.End - h.Start
		}
	}
	return c
}

// Complete reports whether every task (and hence every message) is placed.
func (s *Schedule) Complete() bool {
	for i := range s.Tasks {
		if !s.Tasks[i].Placed {
			return false
		}
	}
	return true
}

// ProcOf returns the processor of a placed task.
func (s *Schedule) ProcOf(t graph.TaskID) system.ProcID { return s.Tasks[t].Proc }

// Clone returns a deep copy of the schedule (sharing the immutable graph
// and system).
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{
		G:      s.G,
		Sys:    s.Sys,
		Tasks:  append([]TaskSlot(nil), s.Tasks...),
		Msgs:   make([]MsgSlot, len(s.Msgs)),
		procTL: make([]Timeline, len(s.procTL)),
		linkTL: make([]Timeline, len(s.linkTL)),
	}
	for i := range s.Msgs {
		c.Msgs[i] = MsgSlot{
			Hops:    append([]Hop(nil), s.Msgs[i].Hops...),
			Arrival: s.Msgs[i].Arrival,
			Placed:  s.Msgs[i].Placed,
		}
	}
	for i := range s.procTL {
		c.procTL[i].slots = append([]Slot(nil), s.procTL[i].slots...)
	}
	for i := range s.linkTL {
		c.linkTL[i].slots = append([]Slot(nil), s.linkTL[i].slots...)
	}
	return c
}

// MaxFinish returns the latest time anything (task or message hop) happens.
func (s *Schedule) MaxFinish() float64 {
	end := s.Length()
	for i := range s.linkTL {
		end = math.Max(end, s.linkTL[i].End())
	}
	return end
}
