package schedule

import (
	"encoding/json"
	"io"
)

// scheduleJSON is the stable export format used by WriteJSON: enough to
// render a Gantt chart or feed an external visualizer, keyed by task and
// processor names.
type scheduleJSON struct {
	Length    float64        `json:"length"`
	TotalComm float64        `json:"totalComm"`
	Tasks     []taskSlotJSON `json:"tasks"`
	Messages  []msgSlotJSON  `json:"messages"`
}

type taskSlotJSON struct {
	Task  string  `json:"task"`
	Proc  string  `json:"proc"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

type msgSlotJSON struct {
	From    string    `json:"from"`
	To      string    `json:"to"`
	Arrival float64   `json:"arrival"`
	Hops    []hopJSON `json:"hops,omitempty"`
}

type hopJSON struct {
	FromProc string  `json:"fromProc"`
	ToProc   string  `json:"toProc"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
}

// MarshalJSON exports a complete schedule in a stable, name-keyed format.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	j := scheduleJSON{
		Length:    s.Length(),
		TotalComm: s.TotalComm(),
		Tasks:     make([]taskSlotJSON, 0, len(s.Tasks)),
		Messages:  make([]msgSlotJSON, 0, len(s.Msgs)),
	}
	for i := range s.Tasks {
		ts := &s.Tasks[i]
		if !ts.Placed {
			continue
		}
		j.Tasks = append(j.Tasks, taskSlotJSON{
			Task:  s.G.Task(taskID(i)).Name,
			Proc:  s.Sys.Net.Proc(ts.Proc).Name,
			Start: ts.Start,
			End:   ts.End,
		})
	}
	for i := range s.Msgs {
		ms := &s.Msgs[i]
		if !ms.Placed {
			continue
		}
		e := s.G.Edge(edgeID(i))
		mj := msgSlotJSON{
			From:    s.G.Task(e.From).Name,
			To:      s.G.Task(e.To).Name,
			Arrival: ms.Arrival,
		}
		for _, h := range ms.Hops {
			mj.Hops = append(mj.Hops, hopJSON{
				FromProc: s.Sys.Net.Proc(h.From).Name,
				ToProc:   s.Sys.Net.Proc(h.To).Name,
				Start:    h.Start,
				End:      h.End,
			})
		}
		j.Messages = append(j.Messages, mj)
	}
	return json.Marshal(j)
}

// WriteJSON writes the schedule to w as indented JSON.
func (s *Schedule) WriteJSON(w io.Writer) error {
	data, err := s.MarshalJSON()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(json.RawMessage(data), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}
