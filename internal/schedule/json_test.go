package schedule

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/sched/system"
)

func TestScheduleJSONExport(t *testing.T) {
	g, sys := fixture(t)
	s := New(g, sys)
	s.PlaceTask(0, 0, 0)
	s.PlaceMessage(0, []system.LinkID{0})
	s.PlaceTask(1, 1, 15)
	s.PlaceMessage(1, []system.LinkID{1})
	s.PlaceTask(2, 2, 42)

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Length    float64 `json:"length"`
		TotalComm float64 `json:"totalComm"`
		Tasks     []struct {
			Task  string  `json:"task"`
			Proc  string  `json:"proc"`
			Start float64 `json:"start"`
			End   float64 `json:"end"`
		} `json:"tasks"`
		Messages []struct {
			From    string  `json:"from"`
			To      string  `json:"to"`
			Arrival float64 `json:"arrival"`
			Hops    []struct {
				FromProc string `json:"fromProc"`
				ToProc   string `json:"toProc"`
			} `json:"hops"`
		} `json:"messages"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Length != 72 || decoded.TotalComm != 12 {
		t.Errorf("length=%v comm=%v", decoded.Length, decoded.TotalComm)
	}
	if len(decoded.Tasks) != 3 || len(decoded.Messages) != 2 {
		t.Fatalf("tasks=%d messages=%d", len(decoded.Tasks), len(decoded.Messages))
	}
	if decoded.Tasks[0].Task != "a" || decoded.Tasks[0].Proc != "P1" {
		t.Errorf("first task slot %+v", decoded.Tasks[0])
	}
	if decoded.Messages[0].From != "a" || decoded.Messages[0].To != "b" || len(decoded.Messages[0].Hops) != 1 {
		t.Errorf("first message %+v", decoded.Messages[0])
	}
	if decoded.Messages[0].Hops[0].FromProc != "P1" || decoded.Messages[0].Hops[0].ToProc != "P2" {
		t.Errorf("hop %+v", decoded.Messages[0].Hops[0])
	}
}

func TestScheduleJSONPartial(t *testing.T) {
	g, sys := fixture(t)
	s := New(g, sys)
	s.PlaceTask(0, 0, 0)
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if tasks := decoded["tasks"].([]interface{}); len(tasks) != 1 {
		t.Errorf("partial export should list only placed tasks, got %d", len(tasks))
	}
}
