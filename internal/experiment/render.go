package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteTable renders the figure as aligned text tables, one per panel,
// with a relative-improvement column when exactly two algorithms ran
// (positive = the second algorithm produced shorter schedules).
func (f *Figure) WriteTable(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.Name, f.Caption)
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "\n-- %s --\n", p.Title)
		fmt.Fprintf(&b, "%12s", p.XLabel)
		for _, a := range p.Algos {
			fmt.Fprintf(&b, " %12s", string(a))
		}
		if len(p.Algos) == 2 {
			fmt.Fprintf(&b, " %12s", "improvement")
		}
		b.WriteByte('\n')
		for _, r := range p.Rows {
			fmt.Fprintf(&b, "%12g", r.X)
			for _, a := range p.Algos {
				fmt.Fprintf(&b, " %12.0f", r.Mean[a])
			}
			if len(p.Algos) == 2 {
				base, alt := r.Mean[p.Algos[0]], r.Mean[p.Algos[1]]
				if base > 0 {
					fmt.Fprintf(&b, " %11.1f%%", 100*(base-alt)/base)
				} else {
					fmt.Fprintf(&b, " %12s", "-")
				}
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the figure as CSV: panel, x, then one column per
// algorithm.
func (f *Figure) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("figure,panel,x")
	algos := f.algoUnion()
	for _, a := range algos {
		b.WriteByte(',')
		b.WriteString(string(a))
	}
	b.WriteByte('\n')
	for _, p := range f.Panels {
		for _, r := range p.Rows {
			fmt.Fprintf(&b, "%s,%s,%g", f.Name, csvEscape(p.Title), r.X)
			for _, a := range algos {
				if v, ok := r.Mean[a]; ok {
					fmt.Fprintf(&b, ",%.2f", v)
				} else {
					b.WriteByte(',')
				}
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func (f *Figure) algoUnion() []Algorithm {
	var out []Algorithm
	seen := map[Algorithm]bool{}
	for _, p := range f.Panels {
		for _, a := range p.Algos {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// WritePlot renders each panel as an ASCII scatter plot (the paper's line
// plots, one character series per algorithm).
func (f *Figure) WritePlot(w io.Writer, width, height int) error {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	var b strings.Builder
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "\n-- %s (y = schedule length) --\n", p.Title)
		var ymax float64
		for _, r := range p.Rows {
			for _, v := range r.Mean {
				ymax = math.Max(ymax, v)
			}
		}
		if ymax == 0 {
			ymax = 1
		}
		grid := make([][]byte, height)
		for i := range grid {
			grid[i] = []byte(strings.Repeat(" ", width))
		}
		marks := []byte{'D', 'B', 'H', 'C', '*', '+'}
		for ai, a := range p.Algos {
			for ri, r := range p.Rows {
				v, ok := r.Mean[a]
				if !ok {
					continue
				}
				x := 0
				if len(p.Rows) > 1 {
					x = ri * (width - 1) / (len(p.Rows) - 1)
				}
				y := height - 1 - int(v/ymax*float64(height-1))
				if y < 0 {
					y = 0
				}
				if y >= height {
					y = height - 1
				}
				grid[y][x] = marks[ai%len(marks)]
			}
		}
		fmt.Fprintf(&b, "%10.0f +%s\n", ymax, strings.Repeat("-", width))
		for i, row := range grid {
			label := "          "
			if i == height-1 {
				label = fmt.Sprintf("%10.0f", 0.0)
			}
			fmt.Fprintf(&b, "%s |%s\n", label, row)
		}
		fmt.Fprintf(&b, "%10s  %-8g%s%8g\n", p.XLabel, p.Rows[0].X, strings.Repeat(" ", max(0, width-16)), p.Rows[len(p.Rows)-1].X)
		legend := make([]string, 0, len(p.Algos))
		for ai, a := range p.Algos {
			legend = append(legend, fmt.Sprintf("%c=%s", marks[ai%len(marks)], a))
		}
		fmt.Fprintf(&b, "           legend: %s\n", strings.Join(legend, "  "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
