package experiment

import (
	"math/rand"

	"repro/sched"
	"repro/sched/gen"
	"repro/sched/system"
)

// AblationVariant is one BSA configuration under study, expressed as
// sched options applied on top of the defaults.
type AblationVariant struct {
	Name string
	Opts []sched.Option
}

// DefaultAblationVariants covers the design choices DESIGN.md §5 calls out.
func DefaultAblationVariants() []AblationVariant {
	return []AblationVariant{
		{"default", nil},
		{"single-sweep", []sched.Option{sched.WithMaxSweeps(1)}},
		{"no-guard", []sched.Option{sched.WithMigrationGuard(false)}},
		{"no-vip-follow", []sched.Option{sched.WithVIPFollow(false)}},
		{"no-route-pruning", []sched.Option{sched.WithRoutePruning(false)}},
		// The engine ablations must land on exactly 1.00x the default's
		// schedule lengths — a visible sanity check that the incremental
		// engine and its candidate cache change performance, not results.
		{"no-candidate-cache", []sched.Option{sched.WithCandidateCache(false)}},
		{"full-rebuild", []sched.Option{sched.WithFullRebuild(true)}},
	}
}

// AblationRow aggregates one variant across the workload set.
type AblationRow struct {
	Variant    string
	MeanSL     float64
	MeanVsBase float64 // mean SL ratio vs the first (default) variant
	Migrations float64 // mean committed migrations
	Sweeps     float64 // mean sweeps
}

// RunAblation evaluates the variants on a shared workload set: random
// graphs at the config's sizes and granularities on the hypercube (the
// paper's heterogeneity-experiment topology). The first variant is the
// baseline for the ratio column. The config's Context cancels the run
// between instances.
func RunAblation(cfg Config, variants []AblationVariant) ([]AblationRow, error) {
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		return nil, err
	}
	ctx := cfg.context()

	rows := make([]AblationRow, len(variants))
	sums := make([]float64, len(variants))
	migs := make([]float64, len(variants))
	sweeps := make([]float64, len(variants))
	count := 0

	for si, size := range cfg.Sizes {
		for gi, gran := range cfg.Grans {
			for rep := 0; rep < max1(cfg.Reps); rep++ {
				gseed := deriveSeed(cfg.Seed, 21, uint64(si), uint64(gi), uint64(rep))
				g, err := gen.Generate(gen.Spec{Kind: gen.Random, Size: size, Granularity: gran}, rand.New(rand.NewSource(gseed)))
				if err != nil {
					return nil, err
				}
				nw, err := Hypercube.Build(cfg.Procs, rand.New(rand.NewSource(1)))
				if err != nil {
					return nil, err
				}
				sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), cfg.HetLo, cfg.HetHi, rand.New(rand.NewSource(deriveSeed(cfg.Seed, 22, uint64(si), uint64(gi), uint64(rep)))))
				if err != nil {
					return nil, err
				}
				count++
				problem := sched.Problem{Graph: g, System: sys}
				for vi, v := range variants {
					res, err := bsa.Schedule(ctx, problem, v.Opts...)
					if err != nil {
						return nil, err
					}
					sums[vi] += res.Makespan
					migs[vi] += res.Stats.Get("migrations")
					sweeps[vi] += res.Stats.Get("sweeps")
				}
			}
		}
	}
	for vi, v := range variants {
		rows[vi] = AblationRow{
			Variant:    v.Name,
			MeanSL:     sums[vi] / float64(count),
			Migrations: migs[vi] / float64(count),
			Sweeps:     sweeps[vi] / float64(count),
		}
		if sums[0] > 0 {
			rows[vi].MeanVsBase = sums[vi] / sums[0]
		}
	}
	return rows, nil
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
