package experiment

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/sched"
)

// tinyConfig keeps test runs fast.
func tinyConfig() Config {
	cfg := QuickConfig()
	cfg.Sizes = []int{30, 60}
	cfg.Grans = []float64{1.0}
	cfg.Procs = 8
	cfg.Workers = 4
	return cfg
}

func TestTopologyBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, topo := range Topologies {
		nw, err := topo.Build(16, rng)
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		if nw.NumProcs() != 16 {
			t.Errorf("%v: m=%d", topo, nw.NumProcs())
		}
		if !nw.IsConnected() {
			t.Errorf("%v: not connected", topo)
		}
	}
	if _, err := Hypercube.Build(10, rng); err == nil {
		t.Error("hypercube with non-power-of-two should fail")
	}
	if _, err := Topology(99).Build(4, rng); err == nil {
		t.Error("unknown topology should fail")
	}
	if Topology(99).String() == "" {
		t.Error("unknown topology String should not be empty")
	}
	for topo, want := range map[Topology]string{Ring: "ring", Hypercube: "hypercube", Clique: "clique", RandomTopo: "random"} {
		if topo.String() != want {
			t.Errorf("%d.String()=%q", int(topo), topo.String())
		}
	}
}

func TestFigure3Tiny(t *testing.T) {
	fig, err := Figure3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 4 {
		t.Fatalf("panels=%d, want 4", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.Rows) != 2 {
			t.Fatalf("rows=%d, want 2", len(p.Rows))
		}
		for _, r := range p.Rows {
			for _, a := range p.Algos {
				if r.Mean[a] <= 0 {
					t.Errorf("%s x=%v: mean[%s]=%v", p.Title, r.X, a, r.Mean[a])
				}
			}
		}
	}
	// Schedule lengths must grow with graph size for every algorithm.
	for _, p := range fig.Panels {
		for _, a := range p.Algos {
			if p.Rows[1].Mean[a] <= p.Rows[0].Mean[a] {
				t.Errorf("%s: SL not increasing with size for %s", p.Title, a)
			}
		}
	}
}

func TestFigure4And6Tiny(t *testing.T) {
	cfg := tinyConfig()
	fig4, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig4.Name != "figure4" || len(fig4.Panels) != 4 {
		t.Fatalf("fig4=%+v", fig4.Name)
	}
	cfg.Grans = []float64{0.5, 5}
	fig6, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Granularity panel rows are the sorted granularities.
	for _, p := range fig6.Panels {
		if len(p.Rows) != 2 || p.Rows[0].X != 0.5 || p.Rows[1].X != 5 {
			t.Fatalf("gran rows=%+v", p.Rows)
		}
		// Coarser granularity means cheaper communication: SL must shrink.
		for _, a := range p.Algos {
			if p.Rows[1].Mean[a] >= p.Rows[0].Mean[a] {
				t.Errorf("%s: SL not decreasing with granularity for %s", p.Title, a)
			}
		}
	}
}

func TestFigure5Tiny(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{40}
	cfg.Grans = []float64{0.2, 2}
	fig, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Name != "figure5" {
		t.Fatal(fig.Name)
	}
	for _, p := range fig.Panels {
		if len(p.Rows) != 2 {
			t.Fatalf("rows=%d", len(p.Rows))
		}
	}
}

func TestFigure7Tiny(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{40}
	fig, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 1 || len(fig.Panels[0].Rows) != 4 {
		t.Fatalf("fig7 shape: %d panels", len(fig.Panels))
	}
	for _, r := range fig.Panels[0].Rows {
		if r.Mean[BSA] <= 0 || r.Mean[DLS] <= 0 {
			t.Errorf("x=%v: means %v", r.X, r.Mean)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{30}
	for _, fignum := range []int{3, 4, 5, 6, 7} {
		fig, err := Run(fignum, cfg)
		if err != nil {
			t.Fatalf("figure %d: %v", fignum, err)
		}
		if fig == nil || len(fig.Panels) == 0 {
			t.Fatalf("figure %d empty", fignum)
		}
	}
	if _, err := Run(99, cfg); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	// Results are folded in spec order, so figures must be bitwise
	// identical no matter how many workers stream the cells.
	cfg := tinyConfig()
	cfg.Sizes = []int{30}
	cfg.Workers = 1
	a, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	b, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range a.Panels {
		for ri := range a.Panels[pi].Rows {
			for _, algo := range a.Panels[pi].Algos {
				if a.Panels[pi].Rows[ri].Mean[algo] != b.Panels[pi].Rows[ri].Mean[algo] {
					t.Fatalf("workers=1 vs workers=8 diverge at panel %d row %d", pi, ri)
				}
			}
		}
	}
}

func TestProgressStreamsEveryCell(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{30}
	var mu sync.Mutex
	var calls, lastDone, total int
	cfg.Progress = func(done, tot int) {
		mu.Lock()
		calls++
		lastDone, total = done, tot
		mu.Unlock()
	}
	if _, err := Figure4(cfg); err != nil {
		t.Fatal(err)
	}
	// 1 size x 1 gran x 4 topologies x 2 algorithms = 8 cells.
	if calls != 8 || lastDone != 8 || total != 8 {
		t.Fatalf("progress calls=%d lastDone=%d total=%d, want 8/8/8", calls, lastDone, total)
	}
}

func TestOracleAlgorithmMatchesBSA(t *testing.T) {
	// The full-rebuild oracle engine must reproduce BSA's schedule
	// lengths exactly at figure scale.
	cfg := tinyConfig()
	cfg.Sizes = []int{30}
	cfg.Algorithms = []Algorithm{BSA, BSAOracle}
	fig, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig.Panels {
		for _, r := range p.Rows {
			if r.Mean[BSA] != r.Mean[BSAOracle] {
				t.Fatalf("%s x=%v: BSA=%v oracle=%v", p.Title, r.X, r.Mean[BSA], r.Mean[BSAOracle])
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{30}
	a, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range a.Panels {
		for ri := range a.Panels[pi].Rows {
			for _, algo := range a.Panels[pi].Algos {
				if a.Panels[pi].Rows[ri].Mean[algo] != b.Panels[pi].Rows[ri].Mean[algo] {
					t.Fatalf("non-deterministic result at panel %d row %d", pi, ri)
				}
			}
		}
	}
}

func TestRenderers(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{30}
	fig, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figure4", "ring", "hypercube", "clique", "random", "DLS", "BSA", "improvement"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+4 { // header + one row per panel
		t.Errorf("csv lines=%d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "figure,panel,x,DLS,BSA") {
		t.Errorf("csv header=%q", lines[0])
	}
	buf.Reset()
	if err := fig.WritePlot(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "legend: D=DLS  B=BSA") {
		t.Errorf("plot legend missing:\n%s", buf.String())
	}
}

// constScheduler is a registry stub whose schedules all have length 42.
type constScheduler struct{}

func (constScheduler) Name() string { return "const" }
func (constScheduler) Schedule(ctx context.Context, p sched.Problem, opts ...sched.Option) (*sched.Result, error) {
	return &sched.Result{Algorithm: "const", Makespan: 42}, nil
}

func TestRegisterCustomAlgorithm(t *testing.T) {
	// The figure harness has no scheduler table of its own: anything
	// registered in the sched registry is sweepable by label.
	sched.Register(sched.Descriptor{
		Name: "const",
		New:  func() sched.Scheduler { return constScheduler{} },
	})
	defer sched.Unregister("const")
	cfg := tinyConfig()
	cfg.Sizes = []int{30}
	cfg.Algorithms = []Algorithm{"CONST", BSA}
	fig, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig.Panels {
		for _, r := range p.Rows {
			if r.Mean["CONST"] != 42 {
				t.Fatalf("CONST mean=%v", r.Mean["CONST"])
			}
		}
	}
}

func TestUnregisteredAlgorithmFails(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{30}
	cfg.Algorithms = []Algorithm{"NOPE"}
	_, err := Figure4(cfg)
	if err == nil {
		t.Fatal("unregistered algorithm should fail")
	}
	var unknown *sched.UnknownAlgorithmError
	if !errors.As(err, &unknown) {
		t.Fatalf("err=%v, want *sched.UnknownAlgorithmError", err)
	}
}

func TestCanceledContextAbortsFigure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := tinyConfig()
	cfg.Sizes = []int{30}
	cfg.Context = ctx
	_, err := Figure4(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if _, err := RunAblation(cfg, DefaultAblationVariants()); !errors.Is(err, context.Canceled) {
		t.Fatalf("ablation err=%v, want context.Canceled", err)
	}
}

func TestDeriveSeedStability(t *testing.T) {
	a := deriveSeed(1, 2, 3)
	b := deriveSeed(1, 2, 3)
	c := deriveSeed(1, 3, 2)
	if a != b {
		t.Error("deriveSeed not deterministic")
	}
	if a == c {
		t.Error("deriveSeed ignores argument order")
	}
	if a < 0 {
		t.Error("deriveSeed must be non-negative")
	}
}
