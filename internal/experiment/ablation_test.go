package experiment

import (
	"testing"

	"repro/sched"
)

func TestRunAblation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{40}
	cfg.Grans = []float64{1.0}
	rows, err := RunAblation(cfg, DefaultAblationVariants())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows=%d", len(rows))
	}
	// The engine ablations must match the default engine exactly.
	for _, r := range rows {
		if (r.Variant == "full-rebuild" || r.Variant == "no-candidate-cache") && r.MeanVsBase != 1 {
			t.Errorf("%s engine ablation diverges from default: %+v", r.Variant, r)
		}
	}
	if rows[0].Variant != "default" || rows[0].MeanVsBase != 1 {
		t.Errorf("baseline row wrong: %+v", rows[0])
	}
	for _, r := range rows {
		if r.MeanSL <= 0 {
			t.Errorf("%s: non-positive SL", r.Variant)
		}
		if r.MeanVsBase <= 0 {
			t.Errorf("%s: bad ratio %v", r.Variant, r.MeanVsBase)
		}
	}
	// The single-sweep variant must do at most as many sweeps as default.
	var def, single AblationRow
	for _, r := range rows {
		switch r.Variant {
		case "default":
			def = r
		case "single-sweep":
			single = r
		}
	}
	if single.Sweeps > 1 {
		t.Errorf("single-sweep ran %v sweeps", single.Sweeps)
	}
	if def.Sweeps < single.Sweeps {
		t.Errorf("default sweeps %v < single %v", def.Sweeps, single.Sweeps)
	}
	// Iterated sweeps must not be worse than the single literal pass.
	if def.MeanSL > single.MeanSL*1.01 {
		t.Errorf("default SL %v worse than single-sweep %v", def.MeanSL, single.MeanSL)
	}
}

func TestRunAblationCustomVariant(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{30}
	cfg.Grans = []float64{1.0}
	rows, err := RunAblation(cfg, []AblationVariant{
		{"base", nil},
		{"strict-guard", []sched.Option{sched.WithGuardSlack(-1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].Variant != "strict-guard" {
		t.Fatalf("rows=%+v", rows)
	}
}
