package experiment

import (
	"strings"
	"testing"
)

func atlasConfig() Config {
	cfg := QuickConfig()
	cfg.Procs = 8
	cfg.Sizes = []int{40}
	cfg.Algorithms = []Algorithm{BSA, DLS}
	return cfg
}

// TestAtlasCoversEveryFamily proves the atlas reaches the whole TopoKind
// enum — including the mesh/torus/fat-tree/hierarchical families — with a
// replay-validated cell for every (algorithm, het) pair.
func TestAtlasCoversEveryFamily(t *testing.T) {
	a, err := RunAtlas(atlasConfig())
	if err != nil {
		t.Fatal(err)
	}
	families := AtlasFamilies()
	if len(a.Rows) != len(families) {
		t.Fatalf("atlas has %d rows, want %d (one per family)", len(a.Rows), len(families))
	}
	for i, r := range a.Rows {
		if r.Family != families[i] {
			t.Errorf("row %d is %s, want %s", i, r.Family, families[i])
		}
		if r.Procs != 8 || r.Links <= 0 {
			t.Errorf("%s: got %d procs, %d links", r.Family, r.Procs, r.Links)
		}
		if len(r.Cells) != len(a.Algos) {
			t.Fatalf("%s: %d cell pairs, want %d", r.Family, len(r.Cells), len(a.Algos))
		}
		for ai, pair := range r.Cells {
			for hi, c := range pair {
				if c.Makespan <= 0 {
					t.Errorf("%s/%s het=%d: makespan %v", r.Family, a.Algos[ai], hi, c.Makespan)
				}
				if c.Simulated > c.Makespan {
					t.Errorf("%s/%s het=%d: simulated %v exceeds static %v",
						r.Family, a.Algos[ai], hi, c.Simulated, c.Makespan)
				}
			}
		}
	}
}

// TestAtlasDeterministic pins the atlas contract `make atlas` relies on:
// two runs from the same config render byte-identical markdown.
func TestAtlasDeterministic(t *testing.T) {
	first, err := RunAtlas(atlasConfig())
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunAtlas(atlasConfig())
	if err != nil {
		t.Fatal(err)
	}
	if first.Markdown() != second.Markdown() {
		t.Errorf("atlas not deterministic:\n--- first ---\n%s\n--- second ---\n%s",
			first.Markdown(), second.Markdown())
	}
	for _, family := range AtlasFamilies() {
		if !strings.Contains(first.Markdown(), "| "+family.String()+" |") {
			t.Errorf("markdown lacks a row for %s", family)
		}
	}
}

// TestSpliceAtlas proves the README splice is marker-bounded and
// idempotent (the CI determinism smoke depends on both).
func TestSpliceAtlas(t *testing.T) {
	readme := []byte("# title\n\nintro\n\n<!-- atlas:begin -->\nstale table\n<!-- atlas:end -->\n\ntail\n")
	out, err := SpliceAtlas(readme, "| fresh |\n")
	if err != nil {
		t.Fatal(err)
	}
	want := "# title\n\nintro\n\n<!-- atlas:begin -->\n| fresh |\n<!-- atlas:end -->\n\ntail\n"
	if string(out) != want {
		t.Errorf("splice:\n%s\nwant:\n%s", out, want)
	}
	again, err := SpliceAtlas(out, "| fresh |\n")
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(out) {
		t.Errorf("splice not idempotent:\n%s\nvs\n%s", again, out)
	}
	if _, err := SpliceAtlas([]byte("no markers"), "x"); err == nil {
		t.Error("missing markers should error")
	}
	if _, err := SpliceAtlas([]byte("<!-- atlas:end --><!-- atlas:begin -->"), "x"); err == nil {
		t.Error("reversed markers should error")
	}
}
