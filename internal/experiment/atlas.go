package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/sched"
	"repro/sched/gen"
	"repro/sched/system"
)

// AtlasFamilies lists every topology family the atlas covers: the whole
// gen.TopoKind enum, in enum order, so a newly registered family shows
// up in the README table the next time `make atlas` runs.
func AtlasFamilies() []gen.TopoKind {
	var out []gen.TopoKind
	for _, name := range gen.TopoKindNames() {
		k, err := gen.TopoKindByName(name)
		if err != nil {
			panic(err) // unreachable: names come from the enum itself
		}
		out = append(out, k)
	}
	return out
}

// AtlasCell is one scheduled (family, algorithm, heterogeneity) point.
// Simulated is the event-driven replay's makespan; the run fails unless
// Simulated <= Makespan, so every number in the table is replay-validated.
type AtlasCell struct {
	Makespan  float64
	Simulated float64
}

// AtlasRow is one topology family's line in the atlas: the built network's
// dimensions plus one pair of cells (het off, het on) per algorithm, in
// Atlas.Algos order.
type AtlasRow struct {
	Family gen.TopoKind
	Procs  int
	Links  int
	Cells  [][2]AtlasCell
}

// Atlas is the one-command results table: one workload instance scheduled
// by every algorithm on every topology family, with heterogeneity off and
// on, every schedule validated and replay-checked. All randomness derives
// from Seed, so the rendered table is byte-for-byte reproducible.
type Atlas struct {
	Procs int
	Size  int
	Gran  float64
	Seed  int64
	HetLo float64
	HetHi float64
	Algos []Algorithm
	Rows  []AtlasRow
}

// RunAtlas schedules the atlas described by cfg: a random task graph
// (first entry of cfg.Sizes, granularity 1.0) on every topology family at
// cfg.Procs processors, with every cfg.Algorithms entry, heterogeneity
// off (uniform system) and on (min-normalized factors in
// [cfg.HetLo, cfg.HetHi]). Every schedule is validated and replayed by
// the event-driven simulator; a simulated makespan exceeding the static
// one fails the run. Cells are scheduled sequentially in table order —
// the atlas is small by design — so the result is deterministic in cfg.
func RunAtlas(cfg Config) (*Atlas, error) {
	ctx := cfg.context()
	size := 50
	if len(cfg.Sizes) > 0 {
		size = cfg.Sizes[0]
	}
	a := &Atlas{
		Procs: cfg.Procs,
		Size:  size,
		Gran:  1.0,
		Seed:  cfg.Seed,
		HetLo: cfg.HetLo,
		HetHi: cfg.HetHi,
		Algos: append([]Algorithm(nil), cfg.Algorithms...),
	}
	g, err := gen.Generate(gen.Spec{Kind: gen.Random, Size: size, Granularity: a.Gran},
		rand.New(rand.NewSource(deriveSeed(cfg.Seed, 11))))
	if err != nil {
		return nil, fmt.Errorf("experiment: atlas graph: %w", err)
	}
	for fi, family := range AtlasFamilies() {
		nw, err := gen.Topology(gen.TopoSpec{Kind: family, Procs: cfg.Procs},
			rand.New(rand.NewSource(deriveSeed(cfg.Seed, 12, uint64(fi)))))
		if err != nil {
			return nil, fmt.Errorf("experiment: atlas %s topology: %w", family, err)
		}
		row := AtlasRow{Family: family, Procs: nw.NumProcs(), Links: nw.NumLinks()}
		hetSys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(),
			cfg.HetLo, cfg.HetHi, rand.New(rand.NewSource(deriveSeed(cfg.Seed, 13, uint64(fi)))))
		if err != nil {
			return nil, fmt.Errorf("experiment: atlas %s factors: %w", family, err)
		}
		systems := [2]*system.System{system.NewUniform(nw, g.NumTasks(), g.NumEdges()), hetSys}
		for _, algo := range a.Algos {
			s, err := sched.Lookup(string(algo))
			if err != nil {
				return nil, fmt.Errorf("experiment: atlas: %w", err)
			}
			var pair [2]AtlasCell
			for hi, sys := range systems {
				p, err := sched.NewProblem(g, sys)
				if err != nil {
					return nil, fmt.Errorf("experiment: atlas %s: %w", family, err)
				}
				res, err := s.Schedule(ctx, p,
					sched.WithSeed(deriveSeed(cfg.Seed, 14)), sched.WithWorkers(1))
				if err != nil {
					return nil, fmt.Errorf("experiment: atlas %s on %s (het=%v): %w", algo, family, hi == 1, err)
				}
				if err := res.Schedule.Validate(); err != nil {
					return nil, fmt.Errorf("experiment: atlas %s on %s (het=%v): infeasible: %w", algo, family, hi == 1, err)
				}
				replay, err := res.Schedule.Replay()
				if err != nil {
					return nil, fmt.Errorf("experiment: atlas %s on %s (het=%v): replay: %w", algo, family, hi == 1, err)
				}
				if replay.Length > res.Makespan {
					return nil, fmt.Errorf("experiment: atlas %s on %s (het=%v): simulated length %g exceeds static %g",
						algo, family, hi == 1, replay.Length, res.Makespan)
				}
				pair[hi] = AtlasCell{Makespan: res.Makespan, Simulated: replay.Length}
			}
			row.Cells = append(row.Cells, pair)
		}
		a.Rows = append(a.Rows, row)
	}
	return a, nil
}

// Markdown renders the atlas as the README's results table: one row per
// topology family, one makespan column per (algorithm, heterogeneity)
// pair, plus a parameter caption. The output depends only on the atlas
// contents, so two runs from the same Config are byte-identical.
func (a *Atlas) Markdown() string {
	var b strings.Builder
	b.WriteString("| topology | links |")
	for _, algo := range a.Algos {
		fmt.Fprintf(&b, " %s | %s het |", algo, algo)
	}
	b.WriteString("\n|:---|---:|")
	for range a.Algos {
		b.WriteString("---:|---:|")
	}
	b.WriteByte('\n')
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "| %s | %d |", r.Family, r.Links)
		for _, pair := range r.Cells {
			fmt.Fprintf(&b, " %.1f | %.1f |", pair[0].Makespan, pair[1].Makespan)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nMakespans of one %d-task random graph (granularity %g, master seed %d) "+
		"on %d-processor networks; \"het\" draws min-normalized execution factors from [%g, %g]. "+
		"Every schedule is feasibility-validated and replayed by the event-driven simulator "+
		"(simulated length never exceeds the static makespan). Regenerate with `make atlas`.\n",
		a.Size, a.Gran, a.Seed, a.Procs, a.HetLo, a.HetHi)
	return b.String()
}

// Atlas README markers. SpliceAtlas replaces whatever sits between them.
const (
	atlasBegin = "<!-- atlas:begin -->"
	atlasEnd   = "<!-- atlas:end -->"
)

// SpliceAtlas returns readme with the region between the atlas markers
// replaced by table (a Markdown rendering). The markers themselves are
// kept, so the splice is idempotent: splicing the same table twice yields
// identical bytes — which is exactly what the CI determinism smoke
// asserts about `make atlas`.
func SpliceAtlas(readme []byte, table string) ([]byte, error) {
	s := string(readme)
	begin := strings.Index(s, atlasBegin)
	end := strings.Index(s, atlasEnd)
	if begin < 0 || end < 0 {
		return nil, fmt.Errorf("experiment: README is missing the %s / %s markers", atlasBegin, atlasEnd)
	}
	if end < begin {
		return nil, fmt.Errorf("experiment: README atlas markers are out of order")
	}
	var b strings.Builder
	b.WriteString(s[:begin+len(atlasBegin)])
	b.WriteString("\n")
	b.WriteString(table)
	b.WriteString(s[end:])
	return []byte(b.String()), nil
}
