package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/sched"
	"repro/sched/gen"
	"repro/sched/graph"
	"repro/sched/system"
)

// cellSpec describes one scenario cell — a single (instance, algorithm)
// scheduling run — without materializing it: the seeds to rebuild the
// instance deterministically plus the aggregation coordinates of the
// result. Specs are ~100 bytes, so a figure of thousands of cells costs
// nothing to enumerate; graphs and systems only ever exist inside the
// worker that schedules them.
type cellSpec struct {
	kind         gen.Kind
	size         int
	gran         float64
	topo         Topology
	procs        int
	hetLo, hetHi float64
	gseed        int64 // graph generator seed
	tseed        int64 // topology seed (random topologies)
	hseed        int64 // heterogeneity seed
	seed         int64 // scheduler seed
	algo         Algorithm
	panel, row   int
	idx          int // result slot
}

// cellResult is one streamed result.
type cellResult struct {
	idx int
	sl  float64
	err error
}

// shardedQueue distributes cell specs across per-worker shards plus one
// shared overflow channel. Cells are sharded by graph seed so cells
// sharing a graph usually land on the same worker, which lets the worker's
// single-entry caches reuse the materialized graph and system across
// topologies and algorithms. The producer never blocks on a busy shard —
// it spills to the overflow, which every worker also drains — so no worker
// idles while work exists, even when there are fewer distinct graphs than
// workers.
type shardedQueue struct {
	shards   []chan cellSpec
	overflow chan cellSpec
}

func newShardedQueue(n int) *shardedQueue {
	q := &shardedQueue{
		shards:   make([]chan cellSpec, n),
		overflow: make(chan cellSpec, 4*n),
	}
	for i := range q.shards {
		q.shards[i] = make(chan cellSpec, 16)
	}
	return q
}

// put prefers the cell's home shard for cache locality but spills to the
// shared overflow instead of blocking when the shard is full or its worker
// has fallen behind.
func (q *shardedQueue) put(sp cellSpec) {
	select {
	case q.shards[uint64(sp.gseed)%uint64(len(q.shards))] <- sp:
	default:
		q.overflow <- sp
	}
}

func (q *shardedQueue) closeAll() {
	for _, ch := range q.shards {
		close(ch)
	}
	close(q.overflow)
}

// drain consumes the worker's own shard and the shared overflow until both
// are closed and empty.
func (q *shardedQueue) drain(w int, run func(cellSpec)) {
	own, overflow := q.shards[w], q.overflow
	for own != nil || overflow != nil {
		select {
		case sp, ok := <-own:
			if !ok {
				own = nil
				continue
			}
			run(sp)
		case sp, ok := <-overflow:
			if !ok {
				overflow = nil
				continue
			}
			run(sp)
		}
	}
}

// cellWorker materializes and schedules cells, reusing the previous
// instance when consecutive cells share seeds (the common case thanks to
// gseed sharding and enumeration order).
type cellWorker struct {
	gKey struct {
		kind  gen.Kind
		size  int
		gran  float64
		gseed int64
	}
	g *graph.Graph

	nKey struct {
		topo  Topology
		procs int
		tseed int64
	}
	nw *system.Network

	sKey struct {
		hetLo, hetHi float64
		hseed        int64
	}
	sys *system.System
}

func (cw *cellWorker) run(ctx context.Context, sp cellSpec) cellResult {
	if err := ctx.Err(); err != nil {
		return cellResult{idx: sp.idx, err: err}
	}
	gKey := cw.gKey
	gKey.kind, gKey.size, gKey.gran, gKey.gseed = sp.kind, sp.size, sp.gran, sp.gseed
	if cw.g == nil || gKey != cw.gKey {
		g, err := gen.Generate(gen.Spec{Kind: sp.kind, Size: sp.size, Granularity: sp.gran}, rand.New(rand.NewSource(sp.gseed)))
		if err != nil {
			return cellResult{idx: sp.idx, err: err}
		}
		cw.gKey, cw.g = gKey, g
		cw.sys = nil // system dimensions follow the graph
	}
	nKey := cw.nKey
	nKey.topo, nKey.procs, nKey.tseed = sp.topo, sp.procs, sp.tseed
	if cw.nw == nil || nKey != cw.nKey {
		nw, err := sp.topo.Build(sp.procs, rand.New(rand.NewSource(sp.tseed)))
		if err != nil {
			return cellResult{idx: sp.idx, err: err}
		}
		cw.nKey, cw.nw = nKey, nw
		cw.sys = nil
	}
	sKey := cw.sKey
	sKey.hetLo, sKey.hetHi, sKey.hseed = sp.hetLo, sp.hetHi, sp.hseed
	if cw.sys == nil || sKey != cw.sKey {
		sys, err := system.NewRandomMinNormalized(cw.nw, cw.g.NumTasks(), cw.g.NumEdges(), sp.hetLo, sp.hetHi, rand.New(rand.NewSource(sp.hseed)))
		if err != nil {
			return cellResult{idx: sp.idx, err: err}
		}
		cw.sKey, cw.sys = sKey, sys
	}
	s, err := sched.Lookup(string(sp.algo))
	if err != nil {
		return cellResult{idx: sp.idx, err: err}
	}
	// Workers 1: the harness already saturates the machine with one
	// instance per queue worker, so per-engine candidate parallelism
	// would only oversubscribe it.
	res, err := s.Schedule(ctx, sched.Problem{Graph: cw.g, System: cw.sys},
		sched.WithSeed(sp.seed), sched.WithWorkers(1))
	if err != nil {
		return cellResult{idx: sp.idx, err: fmt.Errorf("experiment: %s on %d-task %v graph (%s, %d procs, seed %d): %w",
			sp.algo, sp.size, sp.kind, sp.topo, sp.procs, sp.seed, err)}
	}
	return cellResult{idx: sp.idx, sl: res.Makespan}
}

// runCells drives the specs through the sharded queue with the given
// worker count and returns the per-spec schedule lengths indexed by
// cellSpec.idx. Results stream back as they complete (reported through
// progress when non-nil), but the returned slice — and therefore every
// figure aggregate — is assembled in spec order, so figures are bitwise
// reproducible regardless of worker count or completion order.
//
// ctx is checked before every cell (and inside the schedulers' own
// loops): once it is done the remaining cells drain as immediate errors
// and the run returns ctx.Err(), so canceling a long sweep aborts
// cleanly without orphaning workers.
func runCells(ctx context.Context, specs []cellSpec, workers int, progress func(done, total int)) ([]float64, error) {
	if workers < 1 {
		workers = 1
	}
	q := newShardedQueue(workers)
	results := make(chan cellResult, workers*4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var cw cellWorker
			q.drain(w, func(sp cellSpec) {
				results <- cw.run(ctx, sp)
			})
		}(w)
	}
	go func() {
		for _, sp := range specs {
			q.put(sp)
		}
		q.closeAll()
	}()
	go func() {
		wg.Wait()
		close(results)
	}()
	sls := make([]float64, len(specs))
	var firstErr error
	done := 0
	for r := range results {
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		sls[r.idx] = r.sl
		done++
		if progress != nil {
			progress(done, len(specs))
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return sls, nil
}
