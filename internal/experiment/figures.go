package experiment

import (
	"fmt"
	"sort"

	"repro/sched/gen"
)

// Row is one x-position of one panel: the mean schedule length per
// algorithm at that x.
type Row struct {
	X    float64
	Mean map[Algorithm]float64
	N    int // instances aggregated
}

// Panel is one subplot of a figure (one topology in Figures 3-6).
type Panel struct {
	Title  string
	XLabel string
	Algos  []Algorithm
	Rows   []Row
}

// Figure is a complete reproduced figure.
type Figure struct {
	Name    string
	Caption string
	Panels  []Panel
}

// aggregate folds streamed per-cell schedule lengths into the figure's
// panel rows. It runs over the specs in enumeration order, so the means
// are bitwise reproducible for any worker count.
func aggregate(specs []cellSpec, sls []float64, fig *Figure) {
	sums := make([][]map[Algorithm]float64, len(fig.Panels))
	counts := make([][]map[Algorithm]int, len(fig.Panels))
	for p := range fig.Panels {
		sums[p] = make([]map[Algorithm]float64, len(fig.Panels[p].Rows))
		counts[p] = make([]map[Algorithm]int, len(fig.Panels[p].Rows))
		for r := range sums[p] {
			sums[p][r] = make(map[Algorithm]float64)
			counts[p][r] = make(map[Algorithm]int)
		}
	}
	for i, sp := range specs {
		sums[sp.panel][sp.row][sp.algo] += sls[i]
		counts[sp.panel][sp.row][sp.algo]++
	}
	for p := range fig.Panels {
		for r := range fig.Panels[p].Rows {
			row := &fig.Panels[p].Rows[r]
			row.Mean = make(map[Algorithm]float64, len(fig.Panels[p].Algos))
			for _, a := range fig.Panels[p].Algos {
				if c := counts[p][r][a]; c > 0 {
					row.Mean[a] = sums[p][r][a] / float64(c)
					row.N = c
				}
			}
		}
	}
}

// runAll streams the specs through the sharded worker queue and folds the
// results into the figure.
func runAll(specs []cellSpec, cfg Config, fig *Figure) error {
	sls, err := runCells(cfg.context(), specs, cfg.workers(), cfg.Progress)
	if err != nil {
		return err
	}
	aggregate(specs, sls, fig)
	return nil
}

// buildSpecs enumerates the cross product of the config for a
// size-or-granularity figure over the given suite kinds, calling place to
// map each (topoIdx, sizeIdx, granIdx) to a (panel, row). Cells sharing a
// graph are enumerated consecutively so worker caches can reuse the
// materialized instance.
func buildSpecs(cfg Config, kinds []gen.Kind, place func(topoIdx, sizeIdx, granIdx int) (panel, row int)) []cellSpec {
	var specs []cellSpec
	for ki, kind := range kinds {
		for si, size := range cfg.Sizes {
			for gi, gran := range cfg.Grans {
				for rep := 0; rep < cfg.Reps; rep++ {
					gseed := deriveSeed(cfg.Seed, 1, uint64(ki), uint64(si), uint64(gi), uint64(rep))
					for ti, topo := range Topologies {
						tseed := deriveSeed(cfg.Seed, 2, uint64(ti), uint64(rep))
						hseed := deriveSeed(cfg.Seed, 3, uint64(ki), uint64(si), uint64(gi), uint64(rep), uint64(ti))
						panel, row := place(ti, si, gi)
						for _, algo := range cfg.Algorithms {
							specs = append(specs, cellSpec{
								kind: kind, size: size, gran: gran,
								topo: topo, procs: cfg.Procs,
								hetLo: cfg.HetLo, hetHi: cfg.HetHi,
								gseed: gseed, tseed: tseed, hseed: hseed,
								seed: deriveSeed(cfg.Seed, 4, uint64(rep)),
								algo: algo, panel: panel, row: row,
								idx: len(specs),
							})
						}
					}
				}
			}
		}
	}
	return specs
}

func newPanels(cfg Config, xlabel string, xs []float64) []Panel {
	panels := make([]Panel, len(Topologies))
	for i, t := range Topologies {
		rows := make([]Row, len(xs))
		for j, x := range xs {
			rows[j] = Row{X: x}
		}
		panels[i] = Panel{
			Title:  fmt.Sprintf("%d-processor %s", cfg.Procs, t),
			XLabel: xlabel,
			Algos:  append([]Algorithm(nil), cfg.Algorithms...),
			Rows:   rows,
		}
	}
	return panels
}

func floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// sizeFigure runs a Figure 3/4 style experiment: average schedule length vs
// graph size, one panel per topology, averaged over granularities (and
// application kinds for the regular suite).
func sizeFigure(cfg Config, name, caption string, kinds []gen.Kind) (*Figure, error) {
	fig := &Figure{Name: name, Caption: caption, Panels: newPanels(cfg, "graph size", floats(cfg.Sizes))}
	specs := buildSpecs(cfg, kinds, func(ti, si, gi int) (int, int) { return ti, si })
	if err := runAll(specs, cfg, fig); err != nil {
		return nil, err
	}
	return fig, nil
}

// granFigure runs a Figure 5/6 style experiment: average schedule length vs
// granularity, one panel per topology, averaged over sizes (and kinds).
func granFigure(cfg Config, name, caption string, kinds []gen.Kind) (*Figure, error) {
	gs := append([]float64(nil), cfg.Grans...)
	sort.Float64s(gs)
	fig := &Figure{Name: name, Caption: caption, Panels: newPanels(cfg, "granularity", gs)}
	granRow := func(g float64) int {
		for i, x := range gs {
			if x == g {
				return i
			}
		}
		return 0
	}
	specs := buildSpecs(cfg, kinds, func(ti, si, gi int) (int, int) { return ti, granRow(cfg.Grans[gi]) })
	if err := runAll(specs, cfg, fig); err != nil {
		return nil, err
	}
	return fig, nil
}

// Figure3 reproduces Figure 3: regular graphs, schedule length vs size.
func Figure3(cfg Config) (*Figure, error) {
	return sizeFigure(cfg, "figure3",
		"Average schedule lengths for the regular graphs with different graph sizes using four network topologies",
		cfg.RegularKind)
}

// Figure4 reproduces Figure 4: random graphs, schedule length vs size.
func Figure4(cfg Config) (*Figure, error) {
	return sizeFigure(cfg, "figure4",
		"Average schedule lengths for the random graphs with different graph sizes using four network topologies",
		[]gen.Kind{gen.Random})
}

// Figure5 reproduces Figure 5: regular graphs, schedule length vs
// granularity.
func Figure5(cfg Config) (*Figure, error) {
	return granFigure(cfg, "figure5",
		"Average schedule lengths for the regular graphs with different granularities using four network topologies",
		cfg.RegularKind)
}

// Figure6 reproduces Figure 6: random graphs, schedule length vs
// granularity.
func Figure6(cfg Config) (*Figure, error) {
	return granFigure(cfg, "figure6",
		"Average schedule lengths for the random graphs with different granularities using four network topologies",
		[]gen.Kind{gen.Random})
}

// Figure7 reproduces Figure 7: the effect of the heterogeneity range on
// random 500-task graphs (granularity 1.0) on the hypercube.
func Figure7(cfg Config) (*Figure, error) {
	ranges := []float64{10, 50, 100, 200}
	size := 500
	if len(cfg.Sizes) > 0 {
		size = cfg.Sizes[len(cfg.Sizes)-1]
	}
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	fig := &Figure{
		Name:    "figure7",
		Caption: "Effect of heterogeneity (random graphs, granularity 1.0, hypercube)",
		Panels: []Panel{{
			Title:  fmt.Sprintf("%d-processor hypercube, %d-task random graphs", cfg.Procs, size),
			XLabel: "heterogeneity range",
			Algos:  append([]Algorithm(nil), cfg.Algorithms...),
			Rows:   make([]Row, len(ranges)),
		}},
	}
	var specs []cellSpec
	for ri, hi := range ranges {
		fig.Panels[0].Rows[ri] = Row{X: hi}
		for rep := 0; rep < reps; rep++ {
			gseed := deriveSeed(cfg.Seed, 7, uint64(ri), uint64(rep))
			hseed := deriveSeed(cfg.Seed, 8, uint64(ri), uint64(rep))
			for _, algo := range cfg.Algorithms {
				specs = append(specs, cellSpec{
					kind: gen.Random, size: size, gran: 1.0,
					topo: Hypercube, procs: cfg.Procs,
					hetLo: 1, hetHi: hi,
					gseed: gseed, tseed: 1, hseed: hseed,
					seed: deriveSeed(cfg.Seed, 9, uint64(rep)),
					algo: algo, panel: 0, row: ri,
					idx: len(specs),
				})
			}
		}
	}
	if err := runAll(specs, cfg, fig); err != nil {
		return nil, err
	}
	return fig, nil
}

// Run dispatches a figure by number (3-7).
func Run(figure int, cfg Config) (*Figure, error) {
	switch figure {
	case 3:
		return Figure3(cfg)
	case 4:
		return Figure4(cfg)
	case 5:
		return Figure5(cfg)
	case 6:
		return Figure6(cfg)
	case 7:
		return Figure7(cfg)
	default:
		return nil, fmt.Errorf("experiment: unknown figure %d (have 3-7)", figure)
	}
}
