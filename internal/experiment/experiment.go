// Package experiment regenerates the paper's evaluation: Figures 3-7 (plus
// the Table 1 worked example via sched/gen). It enumerates
// workload instances, schedules each with every algorithm under test in
// parallel worker goroutines, aggregates mean schedule lengths and renders
// the result as aligned text tables, CSV files and ASCII plots.
package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"

	"repro/sched/gen"
	"repro/sched/system"

	// Algorithms resolve through the sched registry; the blank import
	// installs every built-in adapter.
	_ "repro/sched/register"
)

// Topology identifies one of the paper's four 16-processor evaluation
// topologies (the processor count is configurable for quick runs).
type Topology int

const (
	Ring Topology = iota
	Hypercube
	Clique
	RandomTopo
)

// Topologies lists the paper's four evaluation topologies in figure order.
var Topologies = []Topology{Ring, Hypercube, Clique, RandomTopo}

// String returns the topology name as used in figure captions.
func (t Topology) String() string {
	switch t {
	case Ring:
		return "ring"
	case Hypercube:
		return "hypercube"
	case Clique:
		return "clique"
	case RandomTopo:
		return "random"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Build constructs the topology over m processors by delegating to the
// public generator (gen.Topology): hypercubes require m to be a power of
// two; random topologies draw from rng with the paper's degree range
// [2, 8] (clamped for small m).
func (t Topology) Build(m int, rng *rand.Rand) (*system.Network, error) {
	var kind gen.TopoKind
	switch t {
	case Ring:
		kind = gen.Ring
	case Hypercube:
		kind = gen.Hypercube
	case Clique:
		kind = gen.Clique
	case RandomTopo:
		kind = gen.RandomTopo
	default:
		return nil, fmt.Errorf("experiment: unknown topology %d", int(t))
	}
	nw, err := gen.Topology(gen.TopoSpec{Kind: kind, Procs: m}, rng)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	return nw, nil
}

// Algorithm labels a scheduler under test in figures and tables. Labels
// resolve case-insensitively against the repro/sched registry — any
// registered algorithm name or alias is a valid Algorithm, so the figure
// harness has no scheduler table of its own.
type Algorithm string

const (
	BSA Algorithm = "BSA"
	DLS Algorithm = "DLS"
	// BSAOracle is BSA on the legacy full-rebuild engine. It produces
	// byte-identical schedules to BSA and exists so figure-scale runs can
	// benchmark the incremental engine against its correctness oracle
	// (-algos BSA,BSA-FULL).
	BSAOracle Algorithm = "BSA-FULL"
	// HEFT and CPOP are contention-aware extension baselines beyond the
	// paper's comparison.
	HEFT Algorithm = "HEFT"
	CPOP Algorithm = "CPOP"
)

// DefaultAlgorithms is the paper's comparison pair.
var DefaultAlgorithms = []Algorithm{DLS, BSA}

// Config parameterizes a figure run. The zero value is not valid; start
// from PaperConfig or QuickConfig.
type Config struct {
	Procs       int       // processors per topology (paper: 16)
	Sizes       []int     // graph sizes (paper: 50..500 step 50)
	Grans       []float64 // granularities (paper: 0.1, 1, 10)
	HetLo       float64   // heterogeneity factor range low (paper: 1)
	HetHi       float64   // heterogeneity factor range high (paper: 50)
	Reps        int       // graphs per design point (>=1)
	Seed        int64     // master seed; all instance seeds derive from it
	Algorithms  []Algorithm
	Workers     int // parallel workers (0 = GOMAXPROCS)
	RegularKind []gen.Kind

	// Progress, when non-nil, is called after every completed scenario
	// cell with the running and total cell counts. Calls are serialized;
	// results stream in as workers finish, so it reports live progress
	// during long figure regenerations.
	Progress func(done, total int)

	// Context, when non-nil, cancels a figure or ablation run early:
	// workers stop scheduling cells as soon as it is done and the run
	// returns the context's error. Nil means context.Background().
	Context context.Context
}

// PaperConfig returns the paper's full experimental design.
func PaperConfig() Config {
	return Config{
		Procs:       16,
		Sizes:       []int{50, 100, 150, 200, 250, 300, 350, 400, 450, 500},
		Grans:       []float64{0.1, 1.0, 10.0},
		HetLo:       1,
		HetHi:       50,
		Reps:        1,
		Seed:        1999,
		Algorithms:  DefaultAlgorithms,
		RegularKind: gen.RegularKinds,
	}
}

// QuickConfig returns a reduced design for smoke runs and benchmarks.
func QuickConfig() Config {
	return Config{
		Procs:       16,
		Sizes:       []int{50, 150, 250},
		Grans:       []float64{0.1, 1.0, 10.0},
		HetLo:       1,
		HetHi:       50,
		Reps:        1,
		Seed:        1999,
		Algorithms:  DefaultAlgorithms,
		RegularKind: gen.RegularKinds,
	}
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) context() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// splitmix64 derives independent, reproducible seeds from the master seed
// and instance coordinates.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func deriveSeed(master int64, parts ...uint64) int64 {
	h := uint64(master)
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return int64(h & 0x7fffffffffffffff)
}
