package experiment

import (
	"repro/internal/cpop"
	"repro/internal/heft"
	"repro/internal/hetero"
	"repro/internal/taskgraph"
)

// The extension baselines register themselves so cmd/experiments can sweep
// them with -algos HEFT,CPOP alongside the paper's BSA/DLS pair.
func init() {
	Register(HEFT, func(g *taskgraph.Graph, sys *hetero.System, _ int64) (float64, error) {
		res, err := heft.Schedule(g, sys)
		if err != nil {
			return 0, err
		}
		return res.Schedule.Length(), nil
	})
	Register(CPOP, func(g *taskgraph.Graph, sys *hetero.System, _ int64) (float64, error) {
		res, err := cpop.Schedule(g, sys)
		if err != nil {
			return 0, err
		}
		return res.Schedule.Length(), nil
	})
}
