package dls

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/sched/gen"
	"repro/sched/graph"
	"repro/sched/system"
)

func TestDLSPaperExample(t *testing.T) {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	res, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Complete() {
		t.Fatal("incomplete schedule")
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if res.Steps != g.NumTasks() {
		t.Errorf("steps=%d, want %d", res.Steps, g.NumTasks())
	}
	t.Logf("DLS on paper example: SL=%.0f", res.Schedule.Length())
}

func TestDLSSingleProcessor(t *testing.T) {
	g := gen.PaperExampleGraph()
	nw, _ := system.Ring(1)
	sys := system.NewUniform(nw, g.NumTasks(), g.NumEdges())
	res, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Schedule.Length(), g.TotalExecCost(); got != want {
		t.Errorf("SL=%v, want serial %v", got, want)
	}
}

func TestDLSEmptyGraph(t *testing.T) {
	g, _ := graph.NewBuilder().Build()
	nw, _ := system.Ring(2)
	sys := system.NewUniform(nw, 0, 0)
	res, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Length() != 0 || res.Steps != 0 {
		t.Error("empty graph should schedule nothing")
	}
}

func TestDLSInvalidSystem(t *testing.T) {
	g := gen.PaperExampleGraph()
	nw, _ := system.Ring(4)
	if _, err := Schedule(g, system.NewUniform(nw, 1, 0), Options{}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestDLSPrefersFastProcessor(t *testing.T) {
	// A single task: DLS must pick the processor with the smallest actual
	// execution cost thanks to the Delta adjustment.
	b := graph.NewBuilder()
	b.AddTask("only", 100)
	g, _ := b.Build()
	nw, _ := system.Ring(4)
	sys := system.NewUniform(nw, 1, 0)
	sys.Exec[0] = []float64{2, 1, 0.25, 3}
	res, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.ProcOf(0) != 2 {
		t.Errorf("placed on P%d, want fastest P3", res.Schedule.ProcOf(0)+1)
	}
	if res.Schedule.Length() != 25 {
		t.Errorf("SL=%v, want 25", res.Schedule.Length())
	}
}

func TestDLSNoAdjustIgnoresSpeed(t *testing.T) {
	b := graph.NewBuilder()
	b.AddTask("only", 100)
	g, _ := b.Build()
	nw, _ := system.Ring(4)
	sys := system.NewUniform(nw, 1, 0)
	sys.Exec[0] = []float64{2, 1, 0.25, 3}
	res, err := Schedule(g, sys, Options{NoHeterogeneityAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without Delta all processors tie (DA=TF=0); the tie-break picks P1.
	if res.Schedule.ProcOf(0) != 0 {
		t.Errorf("placed on P%d, want tie-broken P1", res.Schedule.ProcOf(0)+1)
	}
}

func TestDLSRespectsContention(t *testing.T) {
	// Two heavy messages from P1 must serialize on the single ring link if
	// their receivers land on P2; the validator checks exactly that.
	b := graph.NewBuilder()
	src := b.AddTask("src", 10)
	l := b.AddTask("l", 10)
	r := b.AddTask("r", 10)
	b.AddEdge(src, l, 100)
	b.AddEdge(src, r, 100)
	g, _ := b.Build()
	nw, _ := system.Line(2)
	sys := system.NewUniform(nw, g.NumTasks(), g.NumEdges())
	res, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func randomConnectedDAG(rng *rand.Rand, n int, extraProb float64) *graph.Graph {
	b := graph.NewBuilder()
	ids := make([]graph.TaskID, n)
	seen := make(map[[2]graph.TaskID]bool)
	for i := 0; i < n; i++ {
		name := make([]byte, 0, 6)
		name = append(name, 'T')
		for v := i; ; v /= 10 {
			name = append(name, byte('0'+v%10))
			if v < 10 {
				break
			}
		}
		ids[i] = b.AddTask(string(name), 1+rng.Float64()*199)
	}
	addEdge := func(u, v graph.TaskID) {
		k := [2]graph.TaskID{u, v}
		if !seen[k] {
			seen[k] = true
			b.AddEdge(u, v, rng.Float64()*100)
		}
	}
	for i := 1; i < n; i++ {
		addEdge(ids[rng.Intn(i)], ids[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < extraProb {
				addEdge(ids[i], ids[j])
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestDLSRandomInstancesAreValid(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%30
		m := 2 + int(mRaw)%8
		g := randomConnectedDAG(rng, n, 0.15)
		nw, err := system.RandomConnected(m, 1, m, rng)
		if err != nil {
			return true
		}
		sys, err := system.NewRandom(nw, g.NumTasks(), g.NumEdges(), 1, 25, rng)
		if err != nil {
			return false
		}
		res, err := Schedule(g, sys, Options{})
		if err != nil {
			return false
		}
		return res.Schedule.Complete() && res.Schedule.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDLSDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomConnectedDAG(rng, 30, 0.1)
	nw, _ := system.Hypercube(3)
	sys, _ := system.NewRandom(nw, g.NumTasks(), g.NumEdges(), 1, 50, rng)
	a, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Schedule.Tasks {
		if a.Schedule.Tasks[i] != b.Schedule.Tasks[i] {
			t.Fatal("DLS not deterministic")
		}
	}
}
