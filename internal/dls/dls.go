// Package dls implements the Dynamic Level Scheduling algorithm of Sih &
// Lee (IEEE TPDS 1993), the baseline the BSA paper compares against: a
// greedy list scheduler for interconnection-constrained heterogeneous
// architectures that schedules messages over a precomputed shortest-path
// routing table while accounting for link contention.
//
// At every step DLS evaluates all (ready task, processor) pairs and
// schedules the pair with the largest dynamic level
//
//	DL(t,p) = SL*(t) - max(DA(t,p), TF(p)) + Delta(t,p)
//
// where SL*(t) is the static level (b-level over median execution costs,
// no communication), DA the earliest data arrival of t's messages at p
// under link contention, TF the time p becomes free, and
// Delta(t,p) = E_med(t) - E(t,p) the heterogeneity adjustment that rewards
// fast processors.
package dls

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/schedule"
	"repro/sched/graph"
	"repro/sched/system"
)

// Options control DLS. The zero value is the standard algorithm.
type Options struct {
	// NoHeterogeneityAdjust drops the Delta(t,p) term (ablation knob).
	NoHeterogeneityAdjust bool

	// InsertionLinks schedules message hops into link idle gaps
	// (insertion-based) instead of the default append-after-last-use
	// model. Sih & Lee's DLS reserves link time in arrival order without
	// back-filling; the insertion variant is a strictly stronger baseline
	// kept as an ablation knob.
	InsertionLinks bool
}

// Result is the outcome of a DLS run.
type Result struct {
	Schedule    *schedule.Schedule
	Steps       int // scheduling steps (== number of tasks)
	Evaluations int // (task, processor) pairs evaluated
}

// Schedule runs DLS on g over sys and returns a complete schedule.
func Schedule(g *graph.Graph, sys *system.System, opt Options) (*Result, error) {
	return ScheduleContext(context.Background(), g, sys, opt)
}

// ScheduleContext is Schedule with cancellation: ctx is polled once per
// scheduling step, so a canceled or expired context aborts the run
// between two task placements with ctx.Err() (wrapped; test with
// errors.Is).
func ScheduleContext(ctx context.Context, g *graph.Graph, sys *system.System, opt Options) (*Result, error) {
	if err := sys.Validate(g.NumTasks(), g.NumEdges()); err != nil {
		return nil, fmt.Errorf("dls: %w", err)
	}
	n := g.NumTasks()
	m := sys.Net.NumProcs()
	res := &Result{Schedule: schedule.New(g, sys)}
	if n == 0 {
		return res, nil
	}
	s := res.Schedule
	rt := system.NewRoutingTable(sys.Net)

	nominal := g.NominalExecCosts()
	medCost := sys.MedianExecFactorCost(nominal)
	sl := graph.StaticLevels(g, medCost)

	unplacedPreds := make([]int, n)
	ready := make([]graph.TaskID, 0, n)
	for i := 0; i < n; i++ {
		unplacedPreds[i] = g.InDegree(graph.TaskID(i))
		if unplacedPreds[i] == 0 {
			ready = append(ready, graph.TaskID(i))
		}
	}

	routeBuf := make([]system.LinkID, 0, 8)
	for scheduled := 0; scheduled < n; scheduled++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dls: after %d of %d steps: %w", scheduled, n, err)
		}
		res.Steps++
		bestDL := math.Inf(-1)
		bestT := graph.TaskID(-1)
		bestP := system.ProcID(-1)
		for _, t := range ready {
			for p := 0; p < m; p++ {
				res.Evaluations++
				pp := system.ProcID(p)
				da := dataArrival(s, rt, t, pp, &routeBuf, opt.InsertionLinks)
				tf := s.ProcTimeline(pp).End()
				dl := sl[t] - math.Max(da, tf)
				if !opt.NoHeterogeneityAdjust {
					dl += medCost[t] - sys.ExecCost(int(t), pp, nominal[t])
				}
				if dl > bestDL+1e-12 ||
					(dl > bestDL-1e-12 && (t < bestT || (t == bestT && pp < bestP))) {
					bestDL, bestT, bestP = dl, t, pp
				}
			}
		}

		// Commit: place messages for real, then the task append-only.
		var drt float64
		for _, e := range g.In(bestT) {
			from := s.ProcOf(g.Edge(e).From)
			routeBuf = rt.Route(from, bestP, routeBuf[:0])
			place := s.PlaceMessageAppend
			if opt.InsertionLinks {
				place = s.PlaceMessage
			}
			arr, err := place(e, routeBuf)
			if err != nil {
				return nil, fmt.Errorf("dls: message %d: %w", e, err)
			}
			if arr > drt {
				drt = arr
			}
		}
		start := math.Max(drt, s.ProcTimeline(bestP).End())
		if err := s.PlaceTask(bestT, bestP, start); err != nil {
			return nil, fmt.Errorf("dls: task %d: %w", bestT, err)
		}

		// Update the ready set.
		for i, t := range ready {
			if t == bestT {
				ready = append(ready[:i], ready[i+1:]...)
				break
			}
		}
		for _, e := range g.Out(bestT) {
			v := g.Edge(e).To
			unplacedPreds[v]--
			if unplacedPreds[v] == 0 {
				ready = append(ready, v)
			}
		}
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	}
	return res, nil
}

// dataArrival computes the earliest time all of t's incoming messages can
// arrive at p, tentatively routing each along the shortest path from its
// sender's processor with link-contention-aware earliest-fit, serializing
// this task's own messages on shared links via an overlay.
func dataArrival(s *schedule.Schedule, rt *system.RoutingTable, t graph.TaskID, p system.ProcID, routeBuf *[]system.LinkID, insertion bool) float64 {
	g := s.G
	in := g.In(t)
	if len(in) == 0 {
		return 0
	}
	var ov map[system.LinkID][]schedule.Slot
	var da float64
	for _, e := range in {
		from := s.Tasks[g.Edge(e).From]
		ready := from.End
		if from.Proc != p {
			*routeBuf = rt.Route(from.Proc, p, (*routeBuf)[:0])
			for _, l := range *routeBuf {
				dur := s.HopDuration(e, l)
				var start float64
				if insertion {
					start = s.LinkTimeline(l).EarliestFitWithExtra(ready, dur, ov[l])
				} else {
					start = ready
					if end := s.LinkTimeline(l).End(); end > start {
						start = end
					}
					if ovl := ov[l]; len(ovl) > 0 {
						if end := ovl[len(ovl)-1].End; end > start {
							start = end
						}
					}
				}
				if ov == nil {
					ov = make(map[system.LinkID][]schedule.Slot, 4)
				}
				ov[l] = insertSlot(ov[l], schedule.Slot{Start: start, End: start + dur})
				ready = start + dur
			}
		}
		if ready > da {
			da = ready
		}
	}
	return da
}

func insertSlot(slots []schedule.Slot, s schedule.Slot) []schedule.Slot {
	idx := sort.Search(len(slots), func(i int) bool { return slots[i].Start >= s.Start })
	slots = append(slots, schedule.Slot{})
	copy(slots[idx+1:], slots[idx:])
	slots[idx] = s
	return slots
}
