package cpop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/sched/gen"
	"repro/sched/graph"
	"repro/sched/system"
)

func TestCPOPPaperExample(t *testing.T) {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	res, err := Schedule(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Complete() {
		t.Fatal("incomplete")
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every CP task must sit on the pinned processor.
	for i, on := range res.OnCP {
		if on && res.Schedule.ProcOf(graph.TaskID(i)) != res.CPProc {
			t.Errorf("CP task %d not on CP processor", i)
		}
	}
	// At least source and sink are critical.
	if !res.OnCP[0] || !res.OnCP[8] {
		t.Errorf("T1/T9 should be critical: %v", res.OnCP)
	}
	t.Logf("CPOP on paper example: SL=%.0f, CP proc=P%d", res.Schedule.Length(), res.CPProc+1)
}

func TestCPOPEmpty(t *testing.T) {
	g, _ := graph.NewBuilder().Build()
	nw, _ := system.Ring(2)
	res, err := Schedule(g, system.NewUniform(nw, 0, 0))
	if err != nil || res.Schedule.Length() != 0 {
		t.Fatalf("empty: %v", err)
	}
}

func TestCPOPInvalidSystem(t *testing.T) {
	g := gen.PaperExampleGraph()
	nw, _ := system.Ring(2)
	if _, err := Schedule(g, system.NewUniform(nw, 1, 0)); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestCPOPPinsChainToFastProcessor(t *testing.T) {
	// A pure chain is entirely critical; CPOP must pin it to the processor
	// with the smallest total cost.
	b := graph.NewBuilder()
	prev := b.AddTask("a", 10)
	for _, name := range []string{"b", "c"} {
		cur := b.AddTask(name, 10)
		b.AddEdge(prev, cur, 5)
		prev = cur
	}
	g, _ := b.Build()
	nw, _ := system.Ring(4)
	sys := system.NewUniform(nw, g.NumTasks(), g.NumEdges())
	for i := 0; i < 3; i++ {
		sys.Exec[i] = []float64{2, 2, 0.5, 2}
	}
	res, err := Schedule(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPProc != 2 {
		t.Errorf("CP pinned to P%d, want P3", res.CPProc+1)
	}
	if got := res.Schedule.Length(); got != 15 {
		t.Errorf("SL=%v, want 15 (chain at half cost, no comm)", got)
	}
}

func randomConnectedDAG(rng *rand.Rand, n int, extraProb float64) *graph.Graph {
	b := graph.NewBuilder()
	ids := make([]graph.TaskID, n)
	seen := make(map[[2]graph.TaskID]bool)
	for i := 0; i < n; i++ {
		name := []byte{'T', byte('0' + i/100%10), byte('0' + i/10%10), byte('0' + i%10)}
		ids[i] = b.AddTask(string(name), 1+rng.Float64()*199)
	}
	add := func(u, v graph.TaskID) {
		k := [2]graph.TaskID{u, v}
		if !seen[k] {
			seen[k] = true
			b.AddEdge(u, v, rng.Float64()*100)
		}
	}
	for i := 1; i < n; i++ {
		add(ids[rng.Intn(i)], ids[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < extraProb {
				add(ids[i], ids[j])
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestCPOPRandomInstancesValid(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%25
		m := 2 + int(mRaw)%8
		g := randomConnectedDAG(rng, n, 0.15)
		nw, err := system.RandomConnected(m, 1, m, rng)
		if err != nil {
			return true
		}
		sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 25, rng)
		if err != nil {
			return false
		}
		res, err := Schedule(g, sys)
		if err != nil {
			return false
		}
		if !res.Schedule.Complete() || res.Schedule.Validate() != nil {
			return false
		}
		for i, on := range res.OnCP {
			if on && res.Schedule.ProcOf(graph.TaskID(i)) != res.CPProc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
