// Package cpop implements a link contention-aware variant of the CPOP
// (Critical Path On a Processor) scheduler of Topcuoglu, Hariri & Wu as a
// second extension baseline. Critical-path tasks are pinned to the single
// processor minimizing the total critical-path execution cost (echoing
// BSA's "critical tasks to the fastest processors" idea); all other tasks
// are placed greedily by earliest finish time with shortest-path routed,
// contention-aware messages.
package cpop

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"repro/internal/heft"
	"repro/internal/schedule"
	"repro/sched/graph"
	"repro/sched/system"
)

// Result is the outcome of a CPOP run.
type Result struct {
	Schedule *schedule.Schedule
	// CPProc is the processor the critical path was pinned to.
	CPProc system.ProcID
	// OnCP flags the tasks treated as critical-path tasks.
	OnCP []bool
}

// Schedule runs contention-aware CPOP on g over sys.
func Schedule(g *graph.Graph, sys *system.System) (*Result, error) {
	return ScheduleContext(context.Background(), g, sys)
}

// ScheduleContext is Schedule with cancellation: ctx is polled once per
// task placement, so a canceled or expired context aborts the run with
// ctx.Err() (wrapped; test with errors.Is).
func ScheduleContext(ctx context.Context, g *graph.Graph, sys *system.System) (*Result, error) {
	if err := sys.Validate(g.NumTasks(), g.NumEdges()); err != nil {
		return nil, fmt.Errorf("cpop: %w", err)
	}
	n := g.NumTasks()
	res := &Result{Schedule: schedule.New(g, sys)}
	if n == 0 {
		return res, nil
	}
	s := res.Schedule
	rt := system.NewRoutingTable(sys.Net)

	up := heft.UpwardRanks(g, sys)
	down := downwardRanks(g, sys)
	prio := make([]float64, n)
	var cpLen float64
	for i := 0; i < n; i++ {
		prio[i] = up[i] + down[i]
		if prio[i] > cpLen {
			cpLen = prio[i]
		}
	}
	res.OnCP = make([]bool, n)
	const eps = 1e-9
	for i := 0; i < n; i++ {
		res.OnCP[i] = prio[i] >= cpLen-eps*(1+cpLen)
	}

	// Pin the CP to the processor minimizing its total execution cost.
	m := sys.Net.NumProcs()
	best := math.Inf(1)
	for p := 0; p < m; p++ {
		var sum float64
		for i := 0; i < n; i++ {
			if res.OnCP[i] {
				sum += sys.ExecCost(i, system.ProcID(p), g.Task(graph.TaskID(i)).Cost)
			}
		}
		if sum < best {
			best, res.CPProc = sum, system.ProcID(p)
		}
	}

	// Priority-queue list scheduling over ready tasks.
	pq := &taskHeap{prio: prio}
	unplaced := make([]int, n)
	for i := 0; i < n; i++ {
		unplaced[i] = g.InDegree(graph.TaskID(i))
		if unplaced[i] == 0 {
			heap.Push(pq, graph.TaskID(i))
		}
	}
	var routeBuf []system.LinkID
	placed := 0
	for pq.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cpop: after %d of %d placements: %w", placed, n, err)
		}
		placed++
		t := heap.Pop(pq).(graph.TaskID)
		var target system.ProcID
		if res.OnCP[t] {
			target = res.CPProc
		} else {
			bestEFT := math.Inf(1)
			for p := 0; p < m; p++ {
				eft := heft.EvalEFT(s, rt, t, system.ProcID(p), &routeBuf)
				if eft < bestEFT {
					bestEFT, target = eft, system.ProcID(p)
				}
			}
		}
		var drt float64
		for _, e := range g.In(t) {
			from := s.ProcOf(g.Edge(e).From)
			routeBuf = rt.Route(from, target, routeBuf[:0])
			arr, err := s.PlaceMessage(e, routeBuf)
			if err != nil {
				return nil, fmt.Errorf("cpop: %w", err)
			}
			if arr > drt {
				drt = arr
			}
		}
		if _, err := s.PlaceTaskEarliest(t, target, drt); err != nil {
			return nil, fmt.Errorf("cpop: %w", err)
		}
		for _, e := range g.Out(t) {
			v := g.Edge(e).To
			unplaced[v]--
			if unplaced[v] == 0 {
				heap.Push(pq, v)
			}
		}
	}
	return res, nil
}

// downwardRanks computes CPOP's downward rank: the longest mean-cost path
// from any source to the task, excluding the task's own cost.
func downwardRanks(g *graph.Graph, sys *system.System) []float64 {
	n := g.NumTasks()
	m := sys.Net.NumProcs()
	meanExec := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for p := 0; p < m; p++ {
			sum += sys.ExecCost(i, system.ProcID(p), g.Task(graph.TaskID(i)).Cost)
		}
		meanExec[i] = sum / float64(m)
	}
	meanComm := func(e graph.EdgeID) float64 {
		nl := sys.Net.NumLinks()
		if nl == 0 {
			return 0
		}
		var sum float64
		for l := 0; l < nl; l++ {
			sum += sys.CommCost(int(e), system.LinkID(l), g.Edge(e).Cost)
		}
		return sum / float64(nl)
	}
	order, err := graph.TopologicalOrder(g)
	if err != nil {
		panic(err)
	}
	down := make([]float64, n)
	for _, u := range order {
		for _, e := range g.Out(u) {
			v := g.Edge(e).To
			if cand := down[u] + meanExec[u] + meanComm(e); cand > down[v] {
				down[v] = cand
			}
		}
	}
	return down
}

// taskHeap is a max-heap of tasks by priority (ties by smaller ID).
type taskHeap struct {
	items []graph.TaskID
	prio  []float64
}

func (h *taskHeap) Len() int { return len(h.items) }
func (h *taskHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.prio[a] != h.prio[b] {
		return h.prio[a] > h.prio[b]
	}
	return a < b
}
func (h *taskHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *taskHeap) Push(x interface{}) { h.items = append(h.items, x.(graph.TaskID)) }
func (h *taskHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
