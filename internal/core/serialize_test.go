package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/sched/gen"
	"repro/sched/graph"
)

func TestSerializePaperNominalOrder(t *testing.T) {
	// With nominal execution costs, the paper's serial order is
	// T1,T2,T7,T4,T3,T8,T6,T9,T5.
	g := gen.PaperExampleGraph()
	exec := g.NominalExecCosts()
	order := Serialize(g, exec, nil, nil)
	want := []string{"T1", "T2", "T7", "T4", "T3", "T8", "T6", "T9", "T5"}
	if len(order) != len(want) {
		t.Fatalf("order=%v", order)
	}
	for i, id := range order {
		if g.Task(id).Name != want[i] {
			got := make([]string, len(order))
			for j, x := range order {
				got[j] = g.Task(x).Name
			}
			t.Fatalf("serial order = %v, want %v", got, want)
		}
	}
	if !graph.IsLinearExtension(g, order) {
		t.Fatal("serial order is not a linear extension")
	}
}

func TestSerializePaperNominalCP(t *testing.T) {
	g := gen.PaperExampleGraph()
	exec := g.NominalExecCosts()
	cp := graph.CriticalPath(g, exec, nil, nil)
	want := []string{"T1", "T7", "T9"}
	if len(cp) != 3 {
		t.Fatalf("cp=%v", cp)
	}
	for i, id := range cp {
		if g.Task(id).Name != want[i] {
			t.Fatalf("cp[%d]=%s, want %s", i, g.Task(id).Name, want[i])
		}
	}
	if got := graph.CPLength(g, exec, nil); got != 250 {
		t.Fatalf("nominal CP length=%v, want 250", got)
	}
}

func TestSelectPivotPaper(t *testing.T) {
	// The paper: CP lengths w.r.t. P1..P4 make P2 the first pivot; our
	// reconstruction reproduces P1's length (240) exactly and P2 as pivot.
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	pivot, cpLen := SelectPivot(g, sys)
	if pivot != 1 {
		t.Fatalf("pivot=P%d, want P2", pivot+1)
	}
	if cpLen != 226 {
		t.Fatalf("pivot CP length=%v, want 226", cpLen)
	}
	// Cross-check P1's CP length against the paper's 240.
	exec := sys.ExecCostsOn(0, g.NominalExecCosts())
	if got := graph.CPLength(g, exec, nil); got != 240 {
		t.Fatalf("CP length w.r.t. P1=%v, want 240", got)
	}
}

func TestSerializeOnPivotIsLinearExtension(t *testing.T) {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	exec := sys.ExecCostsOn(1, g.NominalExecCosts())
	order := Serialize(g, exec, nil, rand.New(rand.NewSource(1)))
	if !graph.IsLinearExtension(g, order) {
		t.Fatal("pivot serial order is not a linear extension")
	}
	// First task must be the entry CP task T1; last OB task T5 at the end.
	if g.Task(order[0]).Name != "T1" {
		t.Errorf("first=%s, want T1", g.Task(order[0]).Name)
	}
	if g.Task(order[len(order)-1]).Name != "T5" {
		t.Errorf("last=%s, want T5 (only OB task)", g.Task(order[len(order)-1]).Name)
	}
}

func TestPartitionTasksPaper(t *testing.T) {
	g := gen.PaperExampleGraph()
	exec := g.NominalExecCosts()
	p := PartitionTasks(g, exec, nil, nil)
	name := func(ids []graph.TaskID) map[string]bool {
		m := map[string]bool{}
		for _, id := range ids {
			m[g.Task(id).Name] = true
		}
		return m
	}
	cp := name(p.CP)
	if !cp["T1"] || !cp["T7"] || !cp["T9"] || len(p.CP) != 3 {
		t.Errorf("CP=%v", p.CP)
	}
	ib := name(p.IB)
	// Ancestors of CP tasks not on the CP: T2 (pred of T7), and T3,T4,T6,T8
	// (ancestors of T9).
	for _, w := range []string{"T2", "T3", "T4", "T6", "T8"} {
		if !ib[w] {
			t.Errorf("IB missing %s: %v", w, p.IB)
		}
	}
	ob := name(p.OB)
	if !ob["T5"] || len(p.OB) != 1 {
		t.Errorf("OB=%v, want {T5}", p.OB)
	}
}

// randomConnectedDAG builds a random DAG guaranteed weakly connected by
// first chaining every task to a random earlier task.
func randomConnectedDAG(rng *rand.Rand, n int, extraProb float64) *graph.Graph {
	b := graph.NewBuilder()
	ids := make([]graph.TaskID, n)
	seen := make(map[[2]graph.TaskID]bool)
	for i := 0; i < n; i++ {
		ids[i] = b.AddTask(tName(i), 1+rng.Float64()*199)
	}
	addEdge := func(u, v graph.TaskID) {
		k := [2]graph.TaskID{u, v}
		if !seen[k] {
			seen[k] = true
			b.AddEdge(u, v, rng.Float64()*100)
		}
	}
	for i := 1; i < n; i++ {
		addEdge(ids[rng.Intn(i)], ids[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < extraProb {
				addEdge(ids[i], ids[j])
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func tName(i int) string {
	return "T" + string(rune('0'+i/100%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

func TestSerializePropertyLinearExtension(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%50
		g := randomConnectedDAG(rng, n, 0.1)
		exec := g.NominalExecCosts()
		order := Serialize(g, exec, nil, rng)
		return graph.IsLinearExtension(g, order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeCPTasksEarly(t *testing.T) {
	// Property: in the serial order, every task before a CP task is an
	// ancestor-or-CP task (i.e. no OB task precedes the last CP task).
	rng := rand.New(rand.NewSource(5))
	g := randomConnectedDAG(rng, 40, 0.12)
	exec := g.NominalExecCosts()
	p := PartitionTasks(g, exec, nil, nil)
	isOB := map[graph.TaskID]bool{}
	for _, x := range p.OB {
		isOB[x] = true
	}
	order := Serialize(g, exec, nil, nil)
	lastCP := -1
	for i, x := range order {
		for _, c := range p.CP {
			if x == c {
				lastCP = i
			}
		}
	}
	for i := 0; i < lastCP; i++ {
		if isOB[order[i]] {
			t.Fatalf("OB task %d appears at position %d before last CP task at %d", order[i], i, lastCP)
		}
	}
}

func TestSerializeEmpty(t *testing.T) {
	g, _ := graph.NewBuilder().Build()
	if got := Serialize(g, nil, nil, nil); got != nil {
		t.Fatalf("Serialize(empty)=%v", got)
	}
}
