// The structure-of-arrays schedule-state backend.
//
// The reference backend re-derives a migration's dependency cone by
// lazily stripping Timelines (removing every not-yet-reprocessed slot and
// queueing its owner) and then re-inserting placements, most of which come
// back unchanged: profiles on full=16/n=500 show >50% of re-placed items
// land on byte-identical slots, and the strip/restore churn — about 1.8M
// slot removals and 400k verbatim re-reservations per run — dominates
// updateFrom, which is itself 82-90% of BSA runtime.
//
// This backend never strips. Each resource keeps its slots in parallel
// arrays (start/end/owner + a processing-order key), and visibility does
// the work stripping did: while the cone update processes the item with
// key K, a slot is visible to its fit queries iff its key is < K. The
// serial order is fixed for the whole run, so keys are static:
//
//	message hop of edge e: rank(dest)<<20 | In-index
//	task at rank r:        r<<20 | taskKeyTag
//
// exactly the order placeFrom places items in. A full rebuild paused at
// item I's turn holds precisely the slots of items with key < K(I) — the
// cone invariant ("every item whose placement would change is queued;
// unqueued items' slots already equal their rebuild placement") then makes
// the visible subsequence bit-identical to the rebuild-time timeline, so
// fits over it return bit-identical values.
//
// Consequences that kill the reference backend's overheads:
//
//   - No restore path: a queued item is recomputed read-only against the
//     visible slots and compared with its old placement. Unchanged (the
//     majority) means zero mutation — the old slots were never removed.
//   - Early exit: an unchanged item marks nothing dirty and queues no
//     successors, so propagation stops exactly where placements are
//     provably unchanged.
//   - Instead of strip-queueing whole timeline suffixes, a timeline whose
//     content first diverges is scanned once per update and only the
//     owners with key > K are queued (cheap integer compares).
//   - No requeue/restart: every queue source yields keys strictly above
//     the current item's, so within a rank the In()-order pass never runs
//     twice.
//
// Mutations (the minority) remove the item's old slots by owner and
// insert the new ones, evicting any *invisible* physical slot they
// overlap (its owner is queued, like strip-queueing, but per-slot). A
// visible slot can never be evicted: the fit that produced the position
// avoided all visible slots, so an overlap would contradict the fit —
// insertEvict panics if that invariant breaks.

package core

import (
	"fmt"
	"math"

	"repro/internal/schedule"
	"repro/sched/graph"
	"repro/sched/system"
)

func init() {
	registerBackend(BackendSoA, func(en *engine) backend {
		return newSoaBackend(en)
	})
}

// allVisible is the visibility bound for fit queries between updates
// (candidate evaluation): every physical slot is current, so all keys
// pass.
const allVisible = int64(math.MaxInt64)

// soaTL is one resource's slot state in structure-of-arrays layout,
// sorted by start (ends monotone up to timeEps, like Timeline).
//
// sufMin[i] is the minimum key over slots[i:]. Keys track processing
// order, which tracks time order closely, so for any visibility bound the
// invisible slots form (approximately) a physical suffix — sufMin lets
// the fit scans stop at its edge in O(1) instead of stepping over every
// invisible slot. Without it a fit whose answer is "after the last
// visible slot" (the common case: items place near the frontier) would
// scan the whole remaining array, which is exactly the linear churn this
// backend exists to avoid.
// soaSlot is one reserved span: [start, end) occupied by owner, placed at
// processing-order key.
type soaSlot struct {
	start, end float64
	owner, key int64
}

type soaTL struct {
	slots  []soaSlot
	sufMin []int64
}

func (tl *soaTL) len() int { return len(tl.slots) }

func (tl *soaTL) reset() {
	tl.slots = tl.slots[:0]
	tl.sufMin = tl.sufMin[:0]
}

func (tl *soaTL) append(start, end float64, owner, key int64) {
	tl.slots = append(tl.slots, soaSlot{start, end, owner, key})
	tl.sufMin = append(tl.sufMin, key)
}

// recomputeSufMin rebuilds the suffix-min array from scratch; rebuild's
// bulk import appends placeholders and fixes them up here in one pass.
func (tl *soaTL) recomputeSufMin() {
	for i := len(tl.sufMin) - 2; i >= 0; i-- {
		if tl.sufMin[i+1] < tl.sufMin[i] {
			tl.sufMin[i] = tl.sufMin[i+1]
		}
	}
}

// fixSufMin re-establishes the suffix-min invariant for positions <= i
// after a mutation at i (fixSufMinRange with a single-index range). Position i itself is recomputed unconditionally
// — its stored value is a placeholder (insert) or a trivially shifted
// value (remove), so matching the recomputation proves nothing about the
// prefix. From i-1 leftward every stored value is the exact pre-mutation
// suffix-min, so the walk can stop at the first position whose value is
// unchanged: earlier entries depend only on unchanged inputs past that
// point. The walk is near-O(1) amortized.
func (tl *soaTL) fixSufMin(i int) { tl.fixSufMinRange(i, i) }

// fixSufMinRange re-establishes the suffix-min invariant after mutations
// anywhere in [lo, hi]. Entries in the range are recomputed
// unconditionally (their stored values may be stale shifted copies);
// below lo every stored value is the exact pre-mutation suffix-min, so
// the walk stops at the first unchanged position.
func (tl *soaTL) fixSufMinRange(lo, hi int) {
	n := len(tl.slots)
	if hi > n-1 {
		hi = n - 1
	}
	for i := hi; i >= 0; i-- {
		m := tl.slots[i].key
		if i+1 < n && tl.sufMin[i+1] < m {
			m = tl.sufMin[i+1]
		}
		if i < lo && tl.sufMin[i] == m {
			return
		}
		tl.sufMin[i] = m
	}
}

// searchEndAbove mirrors Timeline.searchEndAbove over the physical
// slots: the first index whose End exceeds t. Invisible slots do not
// perturb it — ends are monotone over the whole physical array, so every
// visible slot ending after t sits at or after the returned index.
func (tl *soaTL) searchEndAbove(t float64) int {
	s := tl.slots
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].end > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// searchStartAtLeast mirrors Timeline.searchStartAtLeast.
func (tl *soaTL) searchStartAtLeast(t float64) int {
	s := tl.slots
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].start >= t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// earliestFit is Timeline.earliestFit restricted to slots with key < vis;
// bit-identical arithmetic (same epsilon guards, same scan order over the
// visible subsequence).
func (tl *soaTL) earliestFit(ready, dur float64, vis int64) float64 {
	if ready < 0 {
		ready = 0
	}
	s := tl.slots
	// Frontier fast path: nothing ends after ready, so the item fits there.
	if len(s) == 0 || s[len(s)-1].end <= ready {
		return ready
	}
	start := ready
	for i := tl.searchEndAbove(ready); i < len(s); i++ {
		if tl.sufMin[i] >= vis {
			// Every remaining slot is invisible: the item fits at start.
			return start
		}
		sl := &s[i]
		if sl.key >= vis {
			continue
		}
		if sl.end <= start+schedule.TimeEps {
			continue
		}
		if start+dur <= sl.start+schedule.TimeEps {
			return start
		}
		start = sl.end
		if start < ready {
			start = ready
		}
	}
	return start
}

// earliestFitExtra is Timeline.EarliestFitWithExtra restricted to slots
// with key < vis: a merge scan of the visible subsequence with the
// tentative extra slots (sorted by start), timeline first on start ties,
// exactly as the reference merges.
func (tl *soaTL) earliestFitExtra(ready, dur float64, extra []schedule.Slot, vis int64) float64 {
	if ready < 0 {
		ready = 0
	}
	start := ready
	s := tl.slots
	i := len(s)
	if i > 0 && s[i-1].end > ready {
		i = tl.searchEndAbove(ready)
	}
	j := 0
	for i < len(s) || j < len(extra) {
		var sStart, sEnd float64
		if j >= len(extra) || (i < len(s) && s[i].start <= extra[j].Start) {
			if tl.sufMin[i] >= vis {
				// Rest of the timeline is invisible; drain the extras.
				i = len(s)
				continue
			}
			if s[i].key >= vis {
				i++
				continue
			}
			sStart, sEnd = s[i].start, s[i].end
			i++
		} else {
			sStart, sEnd = extra[j].Start, extra[j].End
			j++
		}
		if sEnd <= start+schedule.TimeEps {
			continue
		}
		if start+dur <= sStart+schedule.TimeEps {
			return start
		}
		start = sEnd
		if start < ready {
			start = ready
		}
	}
	return start
}

// removeAt removes the slot at index i.
func (tl *soaTL) removeAt(i int) {
	tl.slots = append(tl.slots[:i], tl.slots[i+1:]...)
	tl.sufMin = append(tl.sufMin[:i], tl.sufMin[i+1:]...)
	tl.fixSufMin(i)
}

// insertAt inserts a slot at index i, shifting later slots right.
func (tl *soaTL) insertAt(i int, start, end float64, owner, key int64) {
	tl.slots = append(tl.slots, soaSlot{})
	copy(tl.slots[i+1:], tl.slots[i:])
	tl.slots[i] = soaSlot{start, end, owner, key}
	tl.sufMin = append(tl.sufMin, 0)
	copy(tl.sufMin[i+1:], tl.sufMin[i:])
	tl.sufMin[i] = key
	tl.fixSufMin(i)
}

// findOwner locates the slot starting at exactly start with the given
// owner, or -1 if absent (an insertion may have evicted it already).
// Starts are stored verbatim, so exact comparison finds it; equal starts
// (zero-duration slots) are scanned through.
func (tl *soaTL) findOwner(start float64, owner int64) int {
	s := tl.slots
	for i := tl.searchStartAtLeast(start); i < len(s) && s[i].start <= start; i++ {
		if s[i].owner == owner {
			return i
		}
	}
	return -1
}

// removeOwner removes the slot found by findOwner, reporting presence.
func (tl *soaTL) removeOwner(start float64, owner int64) bool {
	if i := tl.findOwner(start, owner); i >= 0 {
		tl.removeAt(i)
		return true
	}
	return false
}

// tryMoveSlot re-places the slot at index i to [start, end) with a single
// range shift — the common mutation is a small move, so this does a
// fraction of the remove+insert memmove work and one binary search. It
// reports false without mutating when another slot overlaps the target
// (same epsilon tolerance as the eviction loops; ends are monotone, so
// one probe on each side of the insertion point decides): the caller then
// takes the general remove+insertEvict path. On success the array is
// exactly removeAt(i) followed by insertAt at the fit position.
func (tl *soaTL) tryMoveSlot(i int, start, end float64, owner, key int64) bool {
	s := tl.slots
	// The new position is usually within a few slots of the old one: find
	// the insertion point by walking from i rather than a fresh search
	// (the walk distance is paid again in the shift below, so this never
	// changes the complexity).
	var j int
	if i+1 < len(s) && s[i+1].start < start {
		k := i + 2
		for k < len(s) && s[k].start < start {
			k++
		}
		j = k
	} else {
		k := i + 1
		if k > len(s) {
			k = len(s)
		}
		for k > 0 && s[k-1].start >= start {
			k--
		}
		j = k
	}
	for k := j - 1; k >= 0; k-- {
		if k == i {
			continue
		}
		if s[k].end > start+schedule.TimeEps {
			return false
		}
		break
	}
	for k := j; k < len(s); k++ {
		if k == i {
			continue
		}
		if s[k].start < end-schedule.TimeEps {
			return false
		}
		break
	}
	if j > i {
		j--
		copy(s[i:j], s[i+1:j+1])
	} else if j < i {
		copy(s[j+1:i+1], s[j:i])
	}
	s[j] = soaSlot{start, end, owner, key}
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	tl.fixSufMinRange(lo, hi)
	return true
}

// soaBackend binds the SoA slot state to an engine.
type soaBackend struct {
	en    *engine
	procs []soaTL
	links []soaTL

	// Static processing-order keys (the serial order never changes within
	// a run).
	taskKey []int64
	msgKey  []int64

	// The dirty-frontier refinement of the per-timeline divergence flags:
	// the time span [mutLo, mutHi) covering every slot REMOVED (explicitly
	// or by eviction) from the resource this epoch. The per-timeline flag
	// alone forces every later item on a diverged timeline through a fit
	// recompute, and profiles show most of those come back unchanged.
	//
	// Removals are the only mutations that can move an unchanged-input
	// item's fit. An insertion by an earlier-keyed item can never perturb
	// it: inserting into the item's own gap evicts it instead (a removal,
	// and one that intersects the window below), and inserting into free
	// space only shrinks gaps the item's old fit already rejected as too
	// small. A removal matters only if it intersects [ready, oldEnd) —
	// the fit inspects nothing behind its ready time or beyond the gap it
	// accepts, and mutations by later-keyed items are invisible to it
	// anyway. Outside that window the item is provably unchanged and
	// completes in O(1) without touching the timeline.
	// Each resource keeps a short list of disjoint-ish removal intervals
	// (collapsed to one aggregate when it would overflow); a single wide
	// span turns one distant eviction into a blanket recompute for the
	// whole timeline, and profiles show the precision matters.
	// Each interval also carries the removed slot's processing-order key:
	// a checker ignores removals keyed at or above its own visibility —
	// those slots were never part of its view.
	procIvLo, procIvHi         [][]float64
	linkIvLo, linkIvHi         [][]float64
	procIvKey, linkIvKey       [][]int64
	procDivStamp, linkDivStamp []uint32

	// Owner-queueing watermark: the lowest freed point each resource has
	// been suffix-scanned from this epoch. Items are processed in strictly
	// increasing key order and every scan filters on "key above the item
	// scanning", so an earlier scan's filter is a superset of any later
	// removal's needs: re-scanning [watermark, inf) can only re-queue done
	// items. A later removal therefore scans just the extension
	// [freedLo, watermark).
	procScanLo, linkScanLo       []float64
	procScanStamp, linkScanStamp []uint32

	// msgReady is each message's sender-end time as of its last
	// (re)placement or skip-validation. A sender that moved *later* but
	// not past hop 0's start leaves the hops provably unchanged: the new
	// fit window nests inside the old one, the old gap is still the
	// earliest feasible, and later hops chain off hop 0's unchanged end.
	msgReady []float64

	// taskEvict / msgEvict stamp an item whose slot (any hop, for a
	// message) was evicted this epoch. Eviction is the one mutation that
	// invalidates an item's placement without changing its inputs, and
	// the clean checks above cannot see it: the eviction interval carries
	// the evicted item's own key (which its later skip check rightly
	// ignores for gap analysis) and may be fully re-covered by the
	// evictor's insertion. A stamped item must re-place unconditionally.
	taskEvict []uint32
	msgEvict  []uint32

	// taskDrt is each task's data-ready time as of its last (re)placement.
	// drtTouched fires when any in-edge arrival moves, but the placement
	// depends only on the max; recomputing the max (a cheap scan the
	// recompute path needs anyway) and comparing against this lets arrival
	// shuffles below the frontier finish without a fit.
	taskDrt []float64

	// sc accumulates a message's tentative earlier hops during the
	// read-only recomputation, so routes revisiting a link (the
	// no-route-pruning ablation) serialize exactly as sequential physical
	// reservation would.
	sc *evalScratch
	// newHops holds the recomputed hop sequence for comparison with the
	// old placement.
	newHops []schedule.Hop
	// slotBuf is finalize's per-timeline materialization scratch.
	slotBuf []schedule.Slot
}

func newSoaBackend(en *engine) *soaBackend {
	if en.inIndex == nil {
		panic("core: soa backend requires the incremental engine")
	}
	nT, nE := en.g.NumTasks(), en.g.NumEdges()
	nP, nL := en.sys.Net.NumProcs(), en.sys.Net.NumLinks()
	b := &soaBackend{
		en:            en,
		procs:         make([]soaTL, nP),
		links:         make([]soaTL, nL),
		taskKey:       make([]int64, nT),
		msgKey:        make([]int64, nE),
		procIvLo:      make([][]float64, nP),
		procIvHi:      make([][]float64, nP),
		linkIvLo:      make([][]float64, nL),
		linkIvHi:      make([][]float64, nL),
		procIvKey:     make([][]int64, nP),
		linkIvKey:     make([][]int64, nL),
		procDivStamp:  make([]uint32, nP),
		linkDivStamp:  make([]uint32, nL),
		procScanLo:    make([]float64, nP),
		linkScanLo:    make([]float64, nL),
		procScanStamp: make([]uint32, nP),
		linkScanStamp: make([]uint32, nL),
		taskEvict:     make([]uint32, nT),
		msgEvict:      make([]uint32, nE),
		taskDrt:       make([]float64, nT),
		msgReady:      make([]float64, nE),
		sc:            newEvalScratch(nL),
	}
	for p := 0; p < nP; p++ {
		b.procIvLo[p] = make([]float64, 0, mutIvCap)
		b.procIvHi[p] = make([]float64, 0, mutIvCap)
		b.procIvKey[p] = make([]int64, 0, mutIvCap)
	}
	for l := 0; l < nL; l++ {
		b.linkIvLo[l] = make([]float64, 0, mutIvCap)
		b.linkIvHi[l] = make([]float64, 0, mutIvCap)
		b.linkIvKey[l] = make([]int64, 0, mutIvCap)
	}
	for t := 0; t < nT; t++ {
		b.taskKey[t] = taskItemKey(en.pos[t])
	}
	for e := 0; e < nE; e++ {
		b.msgKey[e] = msgItemKey(en.msgPos[e], en.inIndex[e])
	}
	return b
}

// rebuild derives the slot state from scratch: the shared placeFrom
// replay fills the Schedule's Timelines (so rebuild stays bit-identical
// to the reference by construction), and the result is imported into the
// parallel arrays. Rebuilds are rare — engine construction and the final
// elitism restore — so the import cost is irrelevant.
func (b *soaBackend) rebuild() {
	en := b.en
	en.s.Reset()
	en.placeFrom(0)
	for t := range b.taskDrt {
		var drt float64
		for _, e := range en.g.In(graph.TaskID(t)) {
			if a := en.s.Msgs[e].Arrival; a > drt {
				drt = a
			}
		}
		b.taskDrt[t] = drt
	}
	for e := range b.msgReady {
		b.msgReady[e] = en.s.Tasks[en.g.Edge(graph.EdgeID(e)).From].End
	}
	for p := range b.procs {
		tl := &b.procs[p]
		tl.reset()
		for _, s := range en.s.ProcTimeline(system.ProcID(p)).Slots() {
			tl.append(s.Start, s.End, s.Owner, b.taskKey[s.Owner])
		}
	}
	for l := range b.links {
		tl := &b.links[l]
		tl.reset()
		for _, s := range en.s.LinkTimeline(system.LinkID(l)).Slots() {
			tl.append(s.Start, s.End, s.Owner, b.msgKey[schedule.MsgOwnerEdge(s.Owner)])
		}
	}
	for p := range b.procs {
		b.procs[p].recomputeSufMin()
	}
	for l := range b.links {
		b.links[l].recomputeSufMin()
	}
}

// finalize materializes the parallel arrays back into the Schedule's
// Timelines. Idempotent; the slot state is authoritative between updates.
func (b *soaBackend) finalize() {
	en := b.en
	for p := range b.procs {
		b.adopt(en.s.ProcTimeline(system.ProcID(p)), &b.procs[p])
	}
	for l := range b.links {
		b.adopt(en.s.LinkTimeline(system.LinkID(l)), &b.links[l])
	}
}

func (b *soaBackend) adopt(dst *schedule.Timeline, tl *soaTL) {
	buf := b.slotBuf[:0]
	for i := range tl.slots {
		sl := &tl.slots[i]
		buf = append(buf, schedule.Slot{Start: sl.start, End: sl.end, Owner: sl.owner})
	}
	b.slotBuf = buf
	dst.AdoptSlots(buf)
}

func (b *soaBackend) procEarliestFit(p system.ProcID, ready, dur float64) float64 {
	return b.procs[p].earliestFit(ready, dur, allVisible)
}

func (b *soaBackend) linkEarliestFitWithExtra(l system.LinkID, ready, dur float64, extra []schedule.Slot) float64 {
	return b.links[l].earliestFitExtra(ready, dur, extra, allVisible)
}

// updateFrom consumes the queued cone in serial-rank order, In() order
// within a rank, like the reference — but with no restart: every queue
// source (divergence scans, evictions, arrival/changed propagation)
// yields keys strictly above the item being processed, so a surfaced
// same-rank sibling always has a larger In-index and is reached by the
// same In() pass.
func (b *soaBackend) updateFrom(mig graph.TaskID) {
	en := b.en
	n := len(en.serial)
	for rank := en.pos[mig]; rank < n && en.pending > 0; rank++ {
		if en.rankPending[rank] != en.epoch {
			continue
		}
		u := en.serial[rank]
		for _, e := range en.g.In(u) {
			if en.msgQueued[e] != en.epoch || en.msgDone[e] == en.epoch {
				continue
			}
			b.processMsg(e)
			en.pending--
			if en.pollCancel() {
				return
			}
		}
		if en.taskQueued[u] == en.epoch && en.taskDone[u] != en.epoch {
			b.processTask(u)
			en.pending--
			if en.pollCancel() {
				return
			}
		}
	}
}

// processMsg handles one queued message. The same cheap dirty test the
// reference uses proves most queued items unchanged — and here that proof
// finishes the item outright: the old slots were never removed, so there
// is no restore to run. A dirty item is recomputed read-only against the
// visible slots and mutates only on actual divergence: recomputation is
// always sound (the visible subsequence equals the rebuild-time timeline
// at this item's turn), and an unchanged result means the old slots
// already ARE the placement. The dirty flags cover every mutation source —
// removals, insertions and evictions all pass through divergeProc or
// divergeLink — so an unflagged item's slots are guaranteed intact.
func (b *soaBackend) processMsg(e graph.EdgeID) {
	en := b.en
	vis := b.msgKey[e]
	edge := en.g.Edge(e)
	sm := &en.s.Msgs[e]
	dirty := edge.From == en.migTask || edge.To == en.migTask ||
		b.msgEvict[e] == en.epoch
	if !dirty {
		// Each hop re-derives identically unless its link's content
		// changed inside the window the hop's fit inspects; a
		// non-migrating message's hops sit exactly on its route links,
		// one hop per link, so checking the placed hops covers the
		// route. Induction along the route: hop j's ready time is hop
		// j-1's unchanged end. For hop 0 the ready time is the sender's
		// end — which may itself have moved. A move to *later* that
		// stays at or below hop 0's start is still provably unchanged:
		// the new fit window nests inside the one validated at
		// msgReady, so no earlier gap can appear, and the old gap's
		// continued availability is exactly what linkClean certifies.
		// A move earlier (or past hop 0's start, or with no hops to pin
		// the arrival) must recompute.
		ready := en.s.Tasks[edge.From].End
		if en.taskChanged[edge.From] == en.epoch &&
			(len(sm.Hops) == 0 || ready < b.msgReady[e] || ready > sm.Hops[0].Start) {
			dirty = true
		}
		if !dirty {
			for h := range sm.Hops {
				hop := &sm.Hops[h]
				// The window ends at the hop's old start, not its end:
				// slots are disjoint, so no visible slot was ever removed
				// from inside the hop's own occupied span — only a removal
				// opening a gap strictly before it can move the fit.
				if !b.linkClean(hop.Link, ready, hop.Start, vis) {
					dirty = true
					break
				}
				ready = hop.End
			}
		}
		if !dirty {
			b.msgReady[e] = en.s.Tasks[edge.From].End
			en.msgDone[e] = en.epoch
			return
		}
	}
	from := &en.s.Tasks[edge.From]
	ready := from.End
	b.msgReady[e] = ready
	hops := b.newHops[:0]
	if en.cfg.pruneRoutes && edge.From != en.migTask && edge.To != en.migTask {
		// Routes are rewritten only for the migrating task's edges, so this
		// message's route — and with it every hop's link, endpoints and
		// duration inputs — is unchanged: copy the static parts from the
		// placed hops and recompute only the fits. Pruned routes are simple
		// paths, so the per-hop tentative overlay can never be consulted.
		var commRow []float64
		if en.sys.Comm != nil {
			commRow = en.sys.Comm[e]
		}
		for h := range sm.Hops {
			oh := &sm.Hops[h]
			dur := edge.Cost
			if commRow != nil {
				dur = commRow[oh.Link] * edge.Cost
			}
			start := b.links[oh.Link].earliestFit(ready, dur, vis)
			hops = append(hops, schedule.Hop{Link: oh.Link, From: oh.From, To: oh.To, Start: start, End: start + dur})
			ready = start + dur
		}
	} else {
		p := from.Proc
		// Pruned routes are simple paths — no link repeats — so the
		// tentative overlay of the message's own earlier hops can never be
		// consulted and the scratch bookkeeping is skipped entirely; the
		// merge scan only runs for the no-pruning ablation's
		// link-revisiting routes.
		sc := b.sc
		if !en.cfg.pruneRoutes {
			sc.reset()
		}
		for _, l := range en.routes.route(e) {
			lk := en.sys.Net.Link(l)
			if !lk.Has(p) {
				panic(fmt.Sprintf("core: update message %d: route link %d does not touch P%d", e, l, p+1))
			}
			dur := en.s.HopDuration(e, l)
			var start float64
			if en.cfg.pruneRoutes || len(sc.extra[l]) == 0 {
				start = b.links[l].earliestFit(ready, dur, vis)
			} else {
				start = b.links[l].earliestFitExtra(ready, dur, sc.extra[l], vis)
			}
			if !en.cfg.pruneRoutes {
				sc.add(l, start, start+dur)
			}
			next := lk.Other(p)
			hops = append(hops, schedule.Hop{Link: l, From: p, To: next, Start: start, End: start + dur})
			ready = start + dur
			p = next
		}
	}
	b.newHops = hops
	arr := ready
	oldArr := sm.Arrival
	hopsChanged := !hopsEqual(hops, sm.Hops)
	if hopsChanged {
		en.msgPlaces++
		sameRoute := len(hops) == len(sm.Hops)
		if sameRoute {
			for h := range hops {
				if hops[h].Link != sm.Hops[h].Link {
					sameRoute = false
					break
				}
			}
		}
		if sameRoute {
			// Fixed route (every non-migrating message): re-place each
			// changed hop with a single range shift on its own link;
			// physically identical hops are left untouched.
			for h := range hops {
				old, nh := &sm.Hops[h], &hops[h]
				if *nh == *old {
					b.divergeLink(nh.Link)
					continue
				}
				tl := &b.links[nh.Link]
				if i := tl.findOwner(old.Start, schedule.MsgOwner(e, h)); i >= 0 &&
					tl.tryMoveSlot(i, nh.Start, nh.End, schedule.MsgOwner(e, h), vis) {
					b.noteLinkMut(nh.Link, old.Start, old.End, nh.Start, nh.End, vis, vis)
				} else {
					if tl.removeOwner(old.Start, schedule.MsgOwner(e, h)) {
						b.noteLinkMut(nh.Link, old.Start, old.End, nh.Start, nh.End, vis, vis)
					}
					b.insertEvictLink(nh.Link, nh.Start, nh.End, schedule.MsgOwner(e, h), vis)
				}
				b.divergeLink(nh.Link)
			}
		} else {
			for h := range sm.Hops {
				hop := &sm.Hops[h]
				if b.links[hop.Link].removeOwner(hop.Start, schedule.MsgOwner(e, h)) {
					// The replacement hop on the same link (same index for a
					// non-migrating message's fixed route) re-covers its
					// span; only the uncovered remainder is genuinely freed.
					covS, covE := hop.End, hop.End
					if h < len(hops) && hops[h].Link == hop.Link {
						covS, covE = hops[h].Start, hops[h].End
					}
					b.noteLinkMut(hop.Link, hop.Start, hop.End, covS, covE, vis, vis)
				}
				b.divergeLink(hop.Link)
			}
			for h := range hops {
				hop := &hops[h]
				b.insertEvictLink(hop.Link, hop.Start, hop.End, schedule.MsgOwner(e, h), vis)
				b.divergeLink(hop.Link)
			}
		}
		sm.Hops = append(sm.Hops[:0], hops...)
		if en.cache != nil {
			en.cache.updMsgs = append(en.cache.updMsgs, e)
		}
	} else if arr != oldArr && en.cache != nil {
		// Arrival moved with identical hops: an intra-processor message
		// tracking its sender's slot.
		en.cache.updMsgs = append(en.cache.updMsgs, e)
	}
	sm.Arrival = arr
	sm.Placed = true
	if arr != oldArr {
		en.drtTouched[edge.To] = en.epoch
		en.queueTask(edge.To)
	}
	en.msgDone[e] = en.epoch
}

// processTask handles one queued task: the cheap dirty test finishes
// provably unchanged items outright (their slot is intact), dirty ones are
// recomputed and mutate only on actual divergence.
func (b *soaBackend) processTask(u graph.TaskID) {
	en := b.en
	vis := b.taskKey[u]
	st := &en.s.Tasks[u]
	// taskDrt is revalidated (skip) or rewritten (recompute) by every
	// update that moves an in-arrival — arrivals settle before their
	// target's turn, and any change queues the target with drtTouched set.
	// An un-touched task's memo therefore still equals the max, and the
	// in-edge scan is skipped.
	drt := b.taskDrt[u]
	if en.drtTouched[u] == en.epoch {
		drt = 0
		for _, e := range en.g.In(u) {
			if a := en.s.Msgs[e].Arrival; a > drt {
				drt = a
			}
		}
	}
	// drtTouched fires on any arrival move, but only the max matters: a
	// task whose data-ready time is unchanged re-derives identically
	// unless its processor's content changed inside the fit's window.
	if u != en.migTask && b.taskEvict[u] != en.epoch &&
		drt == b.taskDrt[u] && b.procClean(en.assign[u], drt, st.Start, vis) {
		en.taskDone[u] = en.epoch
		return
	}
	b.taskDrt[u] = drt
	p := en.assign[u]
	dur := en.s.ExecDuration(u, p)
	start := b.procs[p].earliestFit(drt, dur, vis)
	nw := schedule.TaskSlot{Proc: p, Start: start, End: start + dur, Placed: true}
	if nw != *st {
		en.placements++
		moved := false
		if nw.Proc == st.Proc {
			// Same processor (every non-migrating task): re-place with a
			// single range shift instead of remove+insert when nothing
			// needs evicting.
			tl := &b.procs[st.Proc]
			if i := tl.findOwner(st.Start, schedule.TaskOwner(u)); i >= 0 &&
				tl.tryMoveSlot(i, nw.Start, nw.End, schedule.TaskOwner(u), vis) {
				b.noteProcMut(st.Proc, st.Start, st.End, nw.Start, nw.End, vis, vis)
				b.divergeProc(st.Proc)
				moved = true
			}
		}
		if !moved {
			if b.procs[st.Proc].removeOwner(st.Start, schedule.TaskOwner(u)) {
				covS, covE := st.End, st.End
				if nw.Proc == st.Proc {
					covS, covE = nw.Start, nw.End
				}
				b.noteProcMut(st.Proc, st.Start, st.End, covS, covE, vis, vis)
			}
			b.divergeProc(st.Proc)
			b.insertEvictProc(p, nw.Start, nw.End, schedule.TaskOwner(u), vis)
			b.divergeProc(p)
		}
		*st = nw
		en.taskChanged[u] = en.epoch
		if nw.End > en.updEndMax {
			en.updEndMax, en.updEndArg = nw.End, u
		}
		if en.cache != nil {
			en.cache.updTasks = append(en.cache.updTasks, u)
		}
		for _, e := range en.g.Out(u) {
			// An intra-processor out-message has no hops to fit and no
			// slots to evict — its full processing reduces to copying the
			// new end time into its arrival. Settling it here skips the
			// queue round-trip and the per-rank machinery entirely. Only
			// valid away from the migrating task, whose edges can change
			// route shape (old hops may need physical removal).
			if u != en.migTask && len(en.routes.route(e)) == 0 &&
				en.g.Edge(e).To != en.migTask {
				b.settleEmptyMsg(e, nw.End)
				continue
			}
			en.queueMsg(e)
		}
	}
	en.taskDone[u] = en.epoch
}

// settleEmptyMsg completes an empty-route (intra-processor) message's
// turn in place: arrival tracks the sender's end, nothing else exists.
func (b *soaBackend) settleEmptyMsg(e graph.EdgeID, arr float64) {
	en := b.en
	if en.msgQueued[e] == en.epoch && en.msgDone[e] != en.epoch {
		en.pending--
	}
	en.msgDone[e] = en.epoch
	b.msgReady[e] = arr
	sm := &en.s.Msgs[e]
	if sm.Arrival != arr {
		sm.Arrival = arr
		to := en.g.Edge(e).To
		en.drtTouched[to] = en.epoch
		en.queueTask(to)
		if en.cache != nil {
			en.cache.updMsgs = append(en.cache.updMsgs, e)
		}
	}
}

// mutIvCap bounds each resource's removal-interval list; on overflow the
// list collapses to its aggregate hull, which is always sound (wider
// intervals and smaller keys only force more recomputes, never fewer).
const mutIvCap = 16

// addIv records the removal [start, end) of a slot keyed k in the
// interval list, merging with any entry it overlaps or nearly touches.
// Merging takes the min key (relevant to a checker when either part
// was); merging distant entries and the overflow collapse only widen
// coverage, which is safe.
func addIv(lo, hi []float64, key []int64, start, end float64, k int64) ([]float64, []float64, []int64) {
	for i := range lo {
		if end >= lo[i]-schedule.TimeEps && start <= hi[i]+schedule.TimeEps {
			if start < lo[i] {
				lo[i] = start
			}
			if end > hi[i] {
				hi[i] = end
			}
			if k < key[i] {
				key[i] = k
			}
			return lo, hi, key
		}
	}
	if len(lo) == cap(lo) {
		for i := 1; i < len(lo); i++ {
			if lo[i] < lo[0] {
				lo[0] = lo[i]
			}
			if hi[i] > hi[0] {
				hi[0] = hi[i]
			}
			if key[i] < key[0] {
				key[0] = key[i]
			}
		}
		lo, hi, key = lo[:1], hi[:1], key[:1]
		if start < lo[0] {
			lo[0] = start
		}
		if end > hi[0] {
			hi[0] = end
		}
		if k < key[0] {
			key[0] = k
		}
		return lo, hi, key
	}
	return append(lo, start), append(hi, end), append(key, k)
}

// noteProcMut records the removal of the slot [start, end) keyed k from
// p this epoch, minus the sub-span [covS, covE) that the removing item
// immediately re-covers with its replacement slot (pass covS >= covE
// for none). The covered part stays occupied at every point a checker
// can observe, so only the genuinely freed remainder can open a gap.
// vis is the key of the item performing the removal (vis <= k always);
// owners above it whose slots start after the freed space are queued
// via the per-epoch watermark scan.
func (b *soaBackend) noteProcMut(p system.ProcID, start, end, covS, covE float64, k, vis int64) {
	if covE <= covS {
		covS, covE = end, end
	}
	if b.procDivStamp[p] != b.en.epoch {
		b.procDivStamp[p] = b.en.epoch
		b.procIvLo[p] = b.procIvLo[p][:0]
		b.procIvHi[p] = b.procIvHi[p][:0]
		b.procIvKey[p] = b.procIvKey[p][:0]
	}
	freedLo := math.Inf(1)
	if e1 := math.Min(end, covS); e1 > start {
		b.procIvLo[p], b.procIvHi[p], b.procIvKey[p] =
			addIv(b.procIvLo[p], b.procIvHi[p], b.procIvKey[p], start, e1, k)
		freedLo = start
	}
	if s2 := math.Max(start, covE); end > s2 && covE > covS {
		b.procIvLo[p], b.procIvHi[p], b.procIvKey[p] =
			addIv(b.procIvLo[p], b.procIvHi[p], b.procIvKey[p], s2, end, k)
		if s2 < freedLo {
			freedLo = s2
		}
	}
	// A removal can only move the fit of an item whose window reaches the
	// freed space: its slot starts after the freed region, and its key is
	// above the remover's (it could see the slot). A fully re-covered
	// removal frees nothing and affects nobody.
	if !math.IsInf(freedLo, 1) {
		hi := math.Inf(1)
		if b.procScanStamp[p] == b.en.epoch {
			if freedLo >= b.procScanLo[p] {
				return
			}
			hi = b.procScanLo[p]
		}
		b.procScanStamp[p] = b.en.epoch
		b.procScanLo[p] = freedLo
		tl := &b.procs[p]
		for i := tl.searchStartAtLeast(freedLo - schedule.TimeEps); i < len(tl.slots); i++ {
			if tl.slots[i].start >= hi-schedule.TimeEps {
				break
			}
			if tl.slots[i].key > vis {
				b.en.queueTask(graph.TaskID(tl.slots[i].owner))
			}
		}
	}
}

// noteLinkMut is noteProcMut for a link timeline.
func (b *soaBackend) noteLinkMut(l system.LinkID, start, end, covS, covE float64, k, vis int64) {
	if covE <= covS {
		covS, covE = end, end
	}
	if b.linkDivStamp[l] != b.en.epoch {
		b.linkDivStamp[l] = b.en.epoch
		b.linkIvLo[l] = b.linkIvLo[l][:0]
		b.linkIvHi[l] = b.linkIvHi[l][:0]
		b.linkIvKey[l] = b.linkIvKey[l][:0]
	}
	freedLo := math.Inf(1)
	if e1 := math.Min(end, covS); e1 > start {
		b.linkIvLo[l], b.linkIvHi[l], b.linkIvKey[l] =
			addIv(b.linkIvLo[l], b.linkIvHi[l], b.linkIvKey[l], start, e1, k)
		freedLo = start
	}
	if s2 := math.Max(start, covE); end > s2 && covE > covS {
		b.linkIvLo[l], b.linkIvHi[l], b.linkIvKey[l] =
			addIv(b.linkIvLo[l], b.linkIvHi[l], b.linkIvKey[l], s2, end, k)
		if s2 < freedLo {
			freedLo = s2
		}
	}
	if !math.IsInf(freedLo, 1) {
		hi := math.Inf(1)
		if b.linkScanStamp[l] == b.en.epoch {
			if freedLo >= b.linkScanLo[l] {
				return
			}
			hi = b.linkScanLo[l]
		}
		b.linkScanStamp[l] = b.en.epoch
		b.linkScanLo[l] = freedLo
		tl := &b.links[l]
		for i := tl.searchStartAtLeast(freedLo - schedule.TimeEps); i < len(tl.slots); i++ {
			if tl.slots[i].start >= hi-schedule.TimeEps {
				break
			}
			if tl.slots[i].key > vis {
				b.en.queueMsg(schedule.MsgOwnerEdge(tl.slots[i].owner))
			}
		}
	}
}

// procClean reports whether p's content changes this epoch provably
// cannot move a fit with visibility vis over the window [ready, oldEnd):
// no slot the checker could see was removed there (the epsilon slack
// mirrors the fit's own overlap tolerance). Removals of slots keyed at
// or above vis never change the checker's view — those slots were
// invisible to it to begin with — and the per-timeline divergence flag
// is deliberately not consulted: an epoch of pure insertions leaves
// every unchanged-input fit intact.
func (b *soaBackend) procClean(p system.ProcID, ready, oldEnd float64, vis int64) bool {
	if b.procDivStamp[p] != b.en.epoch {
		return true
	}
	lo, hi, key := b.procIvLo[p], b.procIvHi[p], b.procIvKey[p]
	for i := range lo {
		if key[i] < vis && hi[i] > ready+schedule.TimeEps && lo[i] < oldEnd-schedule.TimeEps {
			return false
		}
	}
	return true
}

// linkClean is procClean for a link timeline.
func (b *soaBackend) linkClean(l system.LinkID, ready, oldEnd float64, vis int64) bool {
	if b.linkDivStamp[l] != b.en.epoch {
		return true
	}
	lo, hi, key := b.linkIvLo[l], b.linkIvHi[l], b.linkIvKey[l]
	for i := range lo {
		if key[i] < vis && hi[i] > ready+schedule.TimeEps && lo[i] < oldEnd-schedule.TimeEps {
			return false
		}
	}
	return true
}

// divergeProc marks p's slot content as diverged this update (flag +
// cache change list, like the reference's markProcDirty). Unlike the
// reference's strip-queueing it queues nobody: removals queue affected
// later items precisely at their noteProcMut site, insertions cannot
// perturb an unchanged-input item's fit (they evict on overlap, which
// is a removal, and only shrink gaps the old fit already rejected), and
// evictions queue their victim directly.
func (b *soaBackend) divergeProc(p system.ProcID) {
	if b.en.procDirtied[p] != b.en.epoch {
		b.en.markProcDirty(p)
	}
}

// divergeLink is divergeProc for a link timeline.
func (b *soaBackend) divergeLink(l system.LinkID) {
	if b.en.linkDirtied[l] != b.en.epoch {
		b.en.markLinkDirty(l)
	}
}

// insertEvictProc inserts a task slot, evicting (and queueing) any
// invisible slot it overlaps. Visible slots cannot overlap — the fit that
// produced the position avoided them — so eviction of one is a bug.
func (b *soaBackend) insertEvictProc(p system.ProcID, start, end float64, owner, vis int64) {
	tl := &b.procs[p]
	idx := tl.searchStartAtLeast(start)
	for idx > 0 && tl.slots[idx-1].end > start+schedule.TimeEps {
		idx--
		sl := tl.slots[idx]
		b.checkEvict(&sl, vis)
		b.taskEvict[sl.owner] = b.en.epoch
		b.en.queueTask(graph.TaskID(sl.owner))
		b.noteProcMut(p, sl.start, sl.end, start, end, sl.key, vis)
		tl.removeAt(idx)
	}
	for idx < tl.len() && tl.slots[idx].start < end-schedule.TimeEps {
		sl := tl.slots[idx]
		b.checkEvict(&sl, vis)
		b.taskEvict[sl.owner] = b.en.epoch
		b.en.queueTask(graph.TaskID(sl.owner))
		b.noteProcMut(p, sl.start, sl.end, start, end, sl.key, vis)
		tl.removeAt(idx)
	}
	tl.insertAt(idx, start, end, owner, b.taskKey[owner])
}

// insertEvictLink is insertEvictProc for a message hop.
func (b *soaBackend) insertEvictLink(l system.LinkID, start, end float64, owner, vis int64) {
	tl := &b.links[l]
	idx := tl.searchStartAtLeast(start)
	for idx > 0 && tl.slots[idx-1].end > start+schedule.TimeEps {
		idx--
		sl := tl.slots[idx]
		b.checkEvict(&sl, vis)
		b.msgEvict[schedule.MsgOwnerEdge(sl.owner)] = b.en.epoch
		b.en.queueMsg(schedule.MsgOwnerEdge(sl.owner))
		b.noteLinkMut(l, sl.start, sl.end, start, end, sl.key, vis)
		tl.removeAt(idx)
	}
	for idx < tl.len() && tl.slots[idx].start < end-schedule.TimeEps {
		sl := tl.slots[idx]
		b.checkEvict(&sl, vis)
		b.msgEvict[schedule.MsgOwnerEdge(sl.owner)] = b.en.epoch
		b.en.queueMsg(schedule.MsgOwnerEdge(sl.owner))
		b.noteLinkMut(l, sl.start, sl.end, start, end, sl.key, vis)
		tl.removeAt(idx)
	}
	tl.insertAt(idx, start, end, owner, b.msgKey[schedule.MsgOwnerEdge(owner)])
}

func (b *soaBackend) checkEvict(sl *soaSlot, vis int64) {
	if sl.key <= vis {
		panic(fmt.Sprintf("core: soa backend evicting visible slot (owner %d, key %d, visibility %d)",
			sl.owner, sl.key, vis))
	}
}
