package core

import (
	"fmt"
	"sort"

	"repro/internal/hetero"
	"repro/internal/network"
	"repro/internal/schedule"
	"repro/internal/taskgraph"
)

// engine holds BSA's mutable state. The ground truth is (serial, assign,
// routes); the schedule is deterministically rebuilt from them after every
// committed migration, which keeps timelines globally consistent while
// migration *decisions* are evaluated locally against the current
// timelines, as in the paper.
type engine struct {
	g      *taskgraph.Graph
	sys    *hetero.System
	serial []taskgraph.TaskID
	assign []network.ProcID
	routes [][]network.LinkID
	s      *schedule.Schedule

	pruneRoutes bool
	guardSlack  float64

	// Elitism: the best (assign, routes) state seen so far, restored at the
	// end of the run. Migrations may regress the schedule length within the
	// guard slack (chain heads move before their successors follow), so the
	// final state is not necessarily the best one visited.
	bestLen    float64
	bestAssign []network.ProcID
	bestRoutes [][]network.LinkID

	// Counters for Result.
	rebuilds    int
	evaluations int
}

func newEngine(g *taskgraph.Graph, sys *hetero.System, serial []taskgraph.TaskID, pivot network.ProcID, pruneRoutes bool, guardSlack float64) *engine {
	en := &engine{
		g:           g,
		sys:         sys,
		serial:      serial,
		assign:      make([]network.ProcID, g.NumTasks()),
		routes:      make([][]network.LinkID, g.NumEdges()),
		s:           schedule.New(g, sys),
		pruneRoutes: pruneRoutes,
		guardSlack:  guardSlack,
	}
	for i := range en.assign {
		en.assign[i] = pivot
	}
	en.rebuild()
	en.bestLen = en.s.Length()
	en.bestAssign = append([]network.ProcID(nil), en.assign...)
	en.bestRoutes = make([][]network.LinkID, len(en.routes))
	return en
}

// noteState records the current state if it is the best seen so far.
func (en *engine) noteState() {
	l := en.s.Length()
	if l >= en.bestLen-cmpEps {
		return
	}
	en.bestLen = l
	copy(en.bestAssign, en.assign)
	for i := range en.routes {
		en.bestRoutes[i] = append(en.bestRoutes[i][:0], en.routes[i]...)
	}
}

// restoreBest reverts to the best recorded state if the current one is
// worse, and reports whether a restore happened.
func (en *engine) restoreBest() bool {
	if en.s.Length() <= en.bestLen+cmpEps {
		return false
	}
	copy(en.assign, en.bestAssign)
	for i := range en.routes {
		en.routes[i] = append(en.routes[i][:0], en.bestRoutes[i]...)
	}
	en.rebuild()
	return true
}

// rebuild recomputes the full timeline from (serial, assign, routes):
// tasks in serial order, each task's incoming messages placed hop-by-hop
// (insertion-based) before the task itself is placed at the earliest
// insertion slot at or after its DRT. serial is a linear extension, so
// senders are always placed before their messages.
func (en *engine) rebuild() {
	en.rebuilds++
	en.s.Reset()
	for _, t := range en.serial {
		var drt float64
		for _, e := range en.g.In(t) {
			arr, err := en.s.PlaceMessage(e, en.routes[e])
			if err != nil {
				// Routes are maintained to always connect the assigned
				// endpoints; failure here is a bug, not an input condition.
				panic(fmt.Sprintf("core: rebuild message %d: %v", e, err))
			}
			if arr > drt {
				drt = arr
			}
		}
		if _, err := en.s.PlaceTaskEarliest(t, en.assign[t], drt); err != nil {
			panic(fmt.Sprintf("core: rebuild task %d: %v", t, err))
		}
	}
}

// tasksOn returns the tasks currently assigned to p, ordered by their
// current start time (ties by ID).
func (en *engine) tasksOn(p network.ProcID) []taskgraph.TaskID {
	var ts []taskgraph.TaskID
	for i := range en.assign {
		if en.assign[i] == p {
			ts = append(ts, taskgraph.TaskID(i))
		}
	}
	sort.Slice(ts, func(i, j int) bool {
		si, sj := en.s.Tasks[ts[i]].Start, en.s.Tasks[ts[j]].Start
		if si != sj {
			return si < sj
		}
		return ts[i] < ts[j]
	})
	return ts
}

// overlay accumulates tentative link reservations during one migration
// evaluation so that the candidate task's own messages serialize on shared
// links without mutating real timelines.
type overlay map[network.LinkID][]schedule.Slot

func (o overlay) add(l network.LinkID, start, end float64) {
	slots := o[l]
	idx := sort.Search(len(slots), func(i int) bool { return slots[i].Start >= start })
	slots = append(slots, schedule.Slot{})
	copy(slots[idx+1:], slots[idx:])
	slots[idx] = schedule.Slot{Start: start, End: end}
	o[l] = slots
}

// evalMigration computes the finish time task t would obtain on neighbour y
// of its current processor, using the paper's local evaluation: each
// incoming message keeps its current hop schedule up to the point where it
// must be extended (or truncated) to reach y, and the new hop takes the
// earliest insertion slot on the connecting link. Returns the tentative
// finish time and data-ready time on y.
func (en *engine) evalMigration(t taskgraph.TaskID, y network.ProcID) (ft, drt float64) {
	en.evaluations++
	pivot := en.assign[t]
	ov := make(overlay, 2)
	for _, e := range en.g.In(t) {
		edge := en.g.Edge(e)
		u := edge.From
		var arr float64
		switch {
		case en.assign[u] == y:
			// Message becomes intra-processor.
			arr = en.s.Tasks[u].End
		default:
			// Does the current route already pass through y? If so the
			// message would be truncated there.
			arr = -1
			for _, h := range en.s.Msgs[e].Hops {
				if h.To == y {
					arr = h.End
					break
				}
			}
			if arr < 0 {
				// Extend with the hop pivot->y.
				ready := en.s.Arrival(e) // end of current route at pivot
				l, ok := en.sys.Net.LinkBetween(pivot, y)
				if !ok {
					panic(fmt.Sprintf("core: no link between P%d and neighbour P%d", pivot+1, y+1))
				}
				dur := en.s.HopDuration(e, l)
				start := en.s.LinkTimeline(l).EarliestFitWithExtra(ready, dur, ov[l])
				ov.add(l, start, start+dur)
				arr = start + dur
			}
		}
		if arr > drt {
			drt = arr
		}
	}
	dur := en.s.ExecDuration(t, y)
	start := en.s.ProcTimeline(y).EarliestFit(drt, dur)
	return start + dur, drt
}

// commitMigration moves t from its current processor to neighbour y,
// updating every incident message route (extend incoming, prepend outgoing,
// splice out loops, localize messages whose endpoints now coincide) and
// rebuilding the schedule. When guard is true the migration is reverted if
// the rebuilt schedule is strictly longer than before (the local
// finish-time evaluation cannot see downstream effects; the paper's
// "bubble up" premise is that migrations improve finish times, so a
// regression of the global objective is rolled back). It reports whether
// the migration was kept.
func (en *engine) commitMigration(t taskgraph.TaskID, y network.ProcID, guard bool) bool {
	var (
		prevLen    float64
		prevAssign network.ProcID
		prevRoutes map[taskgraph.EdgeID][]network.LinkID
	)
	if guard {
		prevLen = en.s.Length()
		prevAssign = en.assign[t]
		prevRoutes = make(map[taskgraph.EdgeID][]network.LinkID, en.g.InDegree(t)+en.g.OutDegree(t))
		for _, e := range en.g.In(t) {
			prevRoutes[e] = append([]network.LinkID(nil), en.routes[e]...)
		}
		for _, e := range en.g.Out(t) {
			prevRoutes[e] = append([]network.LinkID(nil), en.routes[e]...)
		}
	}
	en.applyMigration(t, y)
	if guard && en.s.Length() > prevLen*(1+en.guardSlack)+cmpEps {
		en.assign[t] = prevAssign
		for e, r := range prevRoutes {
			en.routes[e] = r
		}
		en.rebuild()
		return false
	}
	en.noteState()
	return true
}

// applyMigration performs the route surgery and rebuild of a migration.
func (en *engine) applyMigration(t taskgraph.TaskID, y network.ProcID) {
	pivot := en.assign[t]
	for _, e := range en.g.In(t) {
		u := en.g.Edge(e).From
		if en.assign[u] == y {
			en.routes[e] = en.routes[e][:0]
			continue
		}
		l, _ := en.sys.Net.LinkBetween(pivot, y)
		r := append(en.routes[e], l)
		if en.pruneRoutes {
			r = network.NormalizeRoute(en.sys.Net, en.assign[u], r)
		}
		en.routes[e] = r
	}
	for _, e := range en.g.Out(t) {
		w := en.g.Edge(e).To
		if en.assign[w] == y {
			en.routes[e] = en.routes[e][:0]
			continue
		}
		l, _ := en.sys.Net.LinkBetween(pivot, y)
		r := append([]network.LinkID{l}, en.routes[e]...)
		if en.pruneRoutes {
			r = network.NormalizeRoute(en.sys.Net, y, r)
		}
		en.routes[e] = r
	}
	en.assign[t] = y
	en.rebuild()
}
