package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/schedule"
	"repro/sched/graph"
	"repro/sched/system"
)

// engineConfig selects the engine variant and its tuning knobs.
type engineConfig struct {
	pruneRoutes bool
	guardSlack  float64
	// backend names the schedule-state backend (see backend.go). Empty
	// resolves to the default: the reference backend for the full-rebuild
	// oracle, the SoA backend for the incremental engine.
	backend string
	// fullRebuild selects the original oracle engine: every committed
	// migration reconstructs the whole timeline from (serial, assign,
	// routes) and guard rollbacks rebuild once more. The default
	// incremental engine re-derives only the migration's dependency cone
	// (see updateFrom) and rolls back by restoring arena-saved ground
	// truth; both produce byte-identical schedules.
	fullRebuild bool
	// workers bounds the goroutines used for candidate-processor
	// evaluation (<=1 means sequential).
	workers int
	// candidateCache enables the sweep-level candidate cache (see
	// candCache); it only applies to the incremental engine.
	candidateCache bool
}

// engine holds BSA's mutable state. The ground truth is (serial, assign,
// routes); the schedule is deterministically derived from them after every
// committed migration — by a full rebuild in the oracle engine, or by an
// event-driven cone update in the incremental engine — which keeps
// timelines globally consistent while migration *decisions* are evaluated
// locally against the current timelines, as in the paper.
type engine struct {
	g      *graph.Graph
	sys    *system.System
	serial []graph.TaskID
	pos    []int // serial index of each task (inverse of serial)
	msgPos []int // serial index a message is placed at (its destination's)
	assign []system.ProcID
	routes *routeArena
	s      *schedule.Schedule

	// be owns the slot state (who occupies each processor/link when) and
	// the operations on it; see backend.go. en.s.Tasks/Msgs stay the
	// engine-maintained per-item ground truth either way.
	be backend

	cfg engineConfig

	// ctx is polled at bounded intervals inside cone updates (see
	// pollCancel); cancelErr latches the first observed ctx error so a
	// canceled run aborts between, not inside, timeline mutations.
	ctx       context.Context
	cancelErr error
	pollCount int

	// norm prunes loops out of migrated routes in place (no per-commit
	// allocations).
	norm *system.RouteNormalizer

	// cache is the sweep-level candidate cache; nil when disabled or when
	// the full-rebuild oracle engine is selected.
	cache *candCache

	// curLen caches s.Length() after every (re)build so the guard and
	// elitism checks do not rescan all tasks. lenArg is the task realizing
	// it; updEndMax/updEndArg track the largest end among tasks re-placed
	// by the current update. Together they keep curLen incremental: a full
	// rescan is only needed when the argmax task itself was re-placed.
	curLen    float64
	lenArg    graph.TaskID
	updEndMax float64
	updEndArg graph.TaskID

	// version counts kept migrations; batch-evaluated candidate finish
	// times are valid only while the version is unchanged.
	version uint64

	// Snapshot buffers for guarded commits: the mutable ground truth a
	// migration of t can touch (t's assignment and its incident-edge
	// routes) is saved into arena-reused buffers, and a rollback restores
	// it and re-derives the timeline — a second cone update in the
	// incremental engine, a full rebuild in the oracle. Reverts are rare
	// (a few percent of commits), so snapshotting whole timelines eagerly
	// would cost more than it saves.
	savedAssign system.ProcID
	savedTask   graph.TaskID
	savedRoutes []routeSave
	savedBuf    []system.LinkID
	savedLen    float64

	// touchedEdges accumulates the edges whose routes may have diverged
	// from bestRoutes since the last elitism copy, so noteState copies a
	// handful of routes per improvement instead of all of them.
	touchedEdges []graph.EdgeID

	// Per-worker scratch for migration evaluation (index 0 serves the
	// sequential path), the flat arena behind per-pivot batch results, and
	// the sweep's reusable task/row buffers.
	scratch    []*evalScratch
	ftFlat     []float64
	ftRows     [][]float64
	inEvals    []inEdgeEval
	staleRows  []graph.TaskID
	dirtyTasks []graph.TaskID
	taskBuf    []graph.TaskID
	rowBuf     []float64

	// Event-driven update state (see updateFrom). All per-update flags are
	// epoch-stamped so an update starts with a single counter increment
	// instead of clearing arrays.
	epoch        uint32
	pending      int      // queued-but-unprocessed items this update
	rankPending  []uint32 // serial ranks holding queued work
	inIndex      []int32  // index of each edge within In(destination)
	migTask      graph.TaskID
	taskQueued   []uint32
	msgQueued    []uint32
	taskDone     []uint32
	msgDone      []uint32
	taskChanged  []uint32 // placement changed this update (slot differs)
	drtTouched   []uint32 // an incoming arrival changed this update
	procStripped []uint32
	procStripAt  []int64 // rank the processor timeline was stripped at
	procDirtied  []uint32
	linkStripped []uint32
	linkStripAt  []int64
	linkDirtied  []uint32
	oldHops      []schedule.Hop // scratch copy for placement comparison

	// Elitism: the best (assign, routes) state seen so far, restored at the
	// end of the run. Migrations may regress the schedule length within the
	// guard slack (chain heads move before their successors follow), so the
	// final state is not necessarily the best one visited.
	bestLen    float64
	bestAssign []system.ProcID
	bestRoutes *routeArena

	// Counters for Result.
	rebuilds    int
	placements  int // task placements performed across all (re)builds
	msgPlaces   int // message placements performed across all (re)builds
	evaluations int
}

// routeSave is one saved incident-edge route: an (offset, length) view
// into the engine's savedBuf arena, reused across commits.
type routeSave struct {
	e      graph.EdgeID
	off, n int32
}

// newEngine builds the cold-start engine: every task is assigned to the
// pivot and all routes are empty, the serial-injection state of the
// paper's stage 2.
func newEngine(g *graph.Graph, sys *system.System, serial []graph.TaskID, pivot system.ProcID, cfg engineConfig) *engine {
	en := newEngineCore(g, sys, serial, cfg)
	for i := range en.assign {
		en.assign[i] = pivot
	}
	en.finishInit()
	return en
}

// newWarmEngine builds an engine whose ground truth (assign, routes) is
// adopted from a previous schedule instead of the all-on-pivot injection
// state. One rebuild derives the timelines from the adopted state, so the
// engine starts at the warm schedule with every invariant (including the
// elitism baseline) established exactly as if BSA had migrated its way
// here.
func newWarmEngine(g *graph.Graph, sys *system.System, serial []graph.TaskID, assign []system.ProcID, routes [][]system.LinkID, cfg engineConfig) *engine {
	en := newEngineCore(g, sys, serial, cfg)
	copy(en.assign, assign)
	for e, r := range routes {
		en.routes.set(graph.EdgeID(e), r)
	}
	en.finishInit()
	return en
}

// newEngineCore allocates everything both engine constructors share; the
// caller seeds assign/routes and then calls finishInit.
func newEngineCore(g *graph.Graph, sys *system.System, serial []graph.TaskID, cfg engineConfig) *engine {
	en := &engine{
		g:      g,
		sys:    sys,
		serial: serial,
		pos:    SerialPositions(g, serial),
		assign: make([]system.ProcID, g.NumTasks()),
		routes: newRouteArena(g.NumEdges()),
		s:      schedule.New(g, sys),
		cfg:    cfg,
		norm:   system.NewRouteNormalizer(sys.Net.NumProcs()),
	}
	en.msgPos = make([]int, g.NumEdges())
	for e := range en.msgPos {
		en.msgPos[e] = en.pos[g.Edge(graph.EdgeID(e)).To]
	}
	if !cfg.fullRebuild {
		en.inIndex = make([]int32, g.NumEdges())
		for t := 0; t < g.NumTasks(); t++ {
			for i, e := range g.In(graph.TaskID(t)) {
				en.inIndex[e] = int32(i)
			}
		}
		en.rankPending = make([]uint32, g.NumTasks())
		en.taskQueued = make([]uint32, g.NumTasks())
		en.taskDone = make([]uint32, g.NumTasks())
		en.taskChanged = make([]uint32, g.NumTasks())
		en.drtTouched = make([]uint32, g.NumTasks())
		en.msgQueued = make([]uint32, g.NumEdges())
		en.msgDone = make([]uint32, g.NumEdges())
		en.procStripped = make([]uint32, sys.Net.NumProcs())
		en.procStripAt = make([]int64, sys.Net.NumProcs())
		en.procDirtied = make([]uint32, sys.Net.NumProcs())
		en.linkStripped = make([]uint32, sys.Net.NumLinks())
		en.linkStripAt = make([]int64, sys.Net.NumLinks())
		en.linkDirtied = make([]uint32, sys.Net.NumLinks())
		if cfg.candidateCache {
			en.cache = newCandCache(g.NumTasks(), g.NumEdges(), sys.Net.NumProcs(), sys.Net.NumLinks())
		}
	}
	// The worker pool serves both the cache-off batch evaluation and the
	// cache-on frontier prefetch, so every worker gets a scratch.
	nscratch := cfg.workers
	if nscratch < 1 {
		nscratch = 1
	}
	en.scratch = make([]*evalScratch, nscratch)
	for i := range en.scratch {
		en.scratch[i] = newEvalScratch(sys.Net.NumLinks())
	}
	name, err := resolveBackend(cfg.backend, cfg.fullRebuild, sys.Net)
	if err != nil {
		// The public contexts validate Options.Backend before building an
		// engine, so an unknown name here is an internal caller's bug.
		panic(fmt.Sprintf("core: %v", err))
	}
	en.be = backendRegistry[name](en)
	return en
}

// setContext arms bounded-interval cancellation polling inside cone
// updates. Both scheduling contexts call it right after construction;
// the zero ctx (nil) disables interior polling.
func (en *engine) setContext(ctx context.Context) { en.ctx = ctx }

// cancelPollEvery is how many processed cone-update items go by between
// two ctx.Err() polls. One item costs on the order of a microsecond, so
// this bounds cancellation latency to well under a millisecond while
// keeping the poll overhead unmeasurable.
const cancelPollEvery = 256

// pollCancel counts processed items and, every cancelPollEvery of them,
// polls the run's context. It reports whether the run is canceled; once
// true the current update must unwind without further timeline mutations
// (the slot state is torn — commitMigration skips the guard and the sweep
// loop surfaces en.cancelErr).
func (en *engine) pollCancel() bool {
	if en.cancelErr != nil {
		return true
	}
	if en.ctx == nil {
		return false
	}
	if en.pollCount++; en.pollCount < cancelPollEvery {
		return false
	}
	en.pollCount = 0
	if err := en.ctx.Err(); err != nil {
		en.cancelErr = err
		return true
	}
	return false
}

// finalSchedule materializes the backend's slot state into the Schedule's
// timelines and returns the schedule; the contexts call it before handing
// the schedule out, and tests call it before Validate.
func (en *engine) finalSchedule() *schedule.Schedule {
	en.be.finalize()
	return en.s
}

// finishInit derives the initial timelines from the seeded ground truth
// and establishes the elitism baseline. bestRoutes must mirror the
// current routes exactly: noteState only refreshes touched edges, so any
// route it never touches is assumed equal to the baseline copy.
func (en *engine) finishInit() {
	en.rebuild()
	en.bestLen = en.s.Length()
	en.bestAssign = append([]system.ProcID(nil), en.assign...)
	en.bestRoutes = newRouteArena(en.g.NumEdges())
	for e := 0; e < en.g.NumEdges(); e++ {
		en.bestRoutes.set(graph.EdgeID(e), en.routes.route(graph.EdgeID(e)))
	}
}

// noteState records the current state if it is the best seen so far. Only
// routes of edges touched by migrations since the previous copy can differ
// from bestRoutes, so only those are refreshed.
func (en *engine) noteState() {
	l := en.curLen
	if l >= en.bestLen-cmpEps {
		return
	}
	en.bestLen = l
	copy(en.bestAssign, en.assign)
	en.bestRoutes.maybeCompact()
	for _, e := range en.touchedEdges {
		en.bestRoutes.set(e, en.routes.route(e))
	}
	en.touchedEdges = en.touchedEdges[:0]
}

// restoreBest reverts to the best recorded state if the current one is
// worse, and reports whether a restore happened. It runs once per BSA run,
// so both engines share the rebuild-based implementation.
func (en *engine) restoreBest() bool {
	if en.curLen <= en.bestLen+cmpEps {
		return false
	}
	copy(en.assign, en.bestAssign)
	en.routes.maybeCompact()
	for e := 0; e < en.g.NumEdges(); e++ {
		en.routes.set(graph.EdgeID(e), en.bestRoutes.route(graph.EdgeID(e)))
	}
	en.rebuild()
	return true
}

// rebuild recomputes the full slot state from (serial, assign, routes).
func (en *engine) rebuild() {
	en.rebuilds++
	en.be.rebuild()
	en.rescanLen()
}

// rescanLen re-derives curLen and its argmax task from scratch.
func (en *engine) rescanLen() {
	var sl float64
	arg := graph.TaskID(0)
	for i := range en.s.Tasks {
		if en.s.Tasks[i].Placed && en.s.Tasks[i].End > sl {
			sl = en.s.Tasks[i].End
			arg = graph.TaskID(i)
		}
	}
	en.curLen, en.lenArg = sl, arg
}

// Event-driven incremental update scaffolding shared by the backends: the
// epoch-stamped worklist. Queued items are consumed in serial-rank order
// by the backend's updateFrom (see backend_ref.go for the semantics every
// backend reproduces).

func (en *engine) queueTask(t graph.TaskID) {
	if en.taskQueued[t] == en.epoch || en.taskDone[t] == en.epoch {
		return
	}
	en.taskQueued[t] = en.epoch
	en.rankPending[en.pos[t]] = en.epoch
	en.pending++
}

func (en *engine) queueMsg(e graph.EdgeID) {
	if en.msgQueued[e] == en.epoch || en.msgDone[e] == en.epoch {
		return
	}
	en.msgQueued[e] = en.epoch
	en.rankPending[en.msgPos[e]] = en.epoch
	en.pending++
}

// updateFrom incrementally re-derives the schedule after a migration of
// mig, processing only the migration's dependency cone. The worklist
// seeding and bookkeeping are shared; the per-item processing is the
// backend's.
func (en *engine) updateFrom(mig graph.TaskID) {
	en.rebuilds++
	en.epoch++
	en.migTask = mig
	en.pending = 0
	if en.cache != nil {
		en.cache.beginUpdate()
	}
	for _, e := range en.g.In(mig) {
		en.queueMsg(e)
	}
	for _, e := range en.g.Out(mig) {
		en.queueMsg(e)
	}
	en.queueTask(mig)
	en.updEndMax = -1
	en.be.updateFrom(mig)
	if en.taskChanged[en.lenArg] == en.epoch {
		en.rescanLen()
	} else if en.updEndMax > en.curLen {
		en.curLen, en.lenArg = en.updEndMax, en.updEndArg
	}
}

// markLinkDirty flags l's timeline as diverged this update and, when the
// candidate cache is on, records it in the commit's change list.
func (en *engine) markLinkDirty(l system.LinkID) {
	if en.linkDirtied[l] == en.epoch {
		return
	}
	en.linkDirtied[l] = en.epoch
	if en.cache != nil {
		en.cache.updLinks = append(en.cache.updLinks, l)
	}
}

// markProcDirty is markLinkDirty for processor timelines.
func (en *engine) markProcDirty(p system.ProcID) {
	if en.procDirtied[p] == en.epoch {
		return
	}
	en.procDirtied[p] = en.epoch
	if en.cache != nil {
		en.cache.updProcs = append(en.cache.updProcs, p)
	}
}

func hopsEqual(a, b []schedule.Hop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// placeFrom places serial[k:] in order: each task's incoming messages are
// placed hop-by-hop (insertion-based) before the task itself is placed at
// the earliest insertion slot at or after its DRT. serial is a linear
// extension, so senders are always placed before their messages.
func (en *engine) placeFrom(k int) {
	en.placements += len(en.serial) - k
	for _, t := range en.serial[k:] {
		en.msgPlaces += len(en.g.In(t))
		var drt float64
		for _, e := range en.g.In(t) {
			arr, err := en.s.PlaceMessage(e, en.routes.route(e))
			if err != nil {
				// Routes are maintained to always connect the assigned
				// endpoints; failure here is a bug, not an input condition.
				panic(fmt.Sprintf("core: rebuild message %d: %v", e, err))
			}
			if arr > drt {
				drt = arr
			}
		}
		if _, err := en.s.PlaceTaskEarliest(t, en.assign[t], drt); err != nil {
			panic(fmt.Sprintf("core: rebuild task %d: %v", t, err))
		}
	}
}

// tasksOn returns the tasks currently assigned to p, ordered by their
// current start time (ties by ID). The returned slice is valid until the
// next call. The order is sorted with an insertion sort: the list is
// short, nearly sorted between sweeps, and — unlike sort.Slice — this
// keeps the fixpoint sweep allocation-free.
func (en *engine) tasksOn(p system.ProcID) []graph.TaskID {
	ts := en.taskBuf[:0]
	for i := range en.assign {
		if en.assign[i] == p {
			ts = append(ts, graph.TaskID(i))
		}
	}
	en.taskBuf = ts
	for i := 1; i < len(ts); i++ {
		t := ts[i]
		st := en.s.Tasks[t].Start
		j := i - 1
		for j >= 0 {
			o := ts[j]
			if so := en.s.Tasks[o].Start; so < st || (so == st && o < t) {
				break
			}
			ts[j+1] = ts[j]
			j--
		}
		ts[j+1] = t
	}
	return ts
}

// evalScratch holds one worker's reusable buffers for migration
// evaluation: tentative link reservations accumulated during one
// evaluation so that the candidate task's own messages serialize on shared
// links without mutating real timelines. Reservations are indexed by link
// and reset via the touched list, so steady-state evaluation allocates
// nothing.
type evalScratch struct {
	extra   [][]schedule.Slot // tentative slots per link, kept sorted by start
	touched []system.LinkID
}

func newEvalScratch(numLinks int) *evalScratch {
	return &evalScratch{extra: make([][]schedule.Slot, numLinks)}
}

func (sc *evalScratch) reset() {
	for _, l := range sc.touched {
		sc.extra[l] = sc.extra[l][:0]
	}
	sc.touched = sc.touched[:0]
}

func (sc *evalScratch) add(l system.LinkID, start, end float64) {
	slots := sc.extra[l]
	if len(slots) == 0 {
		sc.touched = append(sc.touched, l)
	}
	idx := sort.Search(len(slots), func(i int) bool { return slots[i].Start >= start })
	slots = append(slots, schedule.Slot{})
	copy(slots[idx+1:], slots[idx:])
	slots[idx] = schedule.Slot{Start: start, End: end}
	sc.extra[l] = slots
}

// evalMigration computes the finish time task t would obtain on neighbour y
// of its current processor, using the paper's local evaluation: each
// incoming message keeps its current hop schedule up to the point where it
// must be extended (or truncated) to reach y, and the new hop takes the
// earliest insertion slot on the connecting link. Returns the tentative
// finish time and data-ready time on y. It only reads engine state, so
// concurrent calls with distinct scratches are safe.
func (en *engine) evalMigration(t graph.TaskID, y system.ProcID, sc *evalScratch) (ft, drt float64) {
	sc.reset()
	pivot := en.assign[t]
	link := system.LinkID(-1) // pivot->y link, resolved at most once
	for _, e := range en.g.In(t) {
		edge := en.g.Edge(e)
		u := edge.From
		var arr float64
		switch {
		case en.assign[u] == y:
			// Message becomes intra-processor.
			arr = en.s.Tasks[u].End
		default:
			// Does the current route already pass through y? If so the
			// message would be truncated there.
			arr = -1
			for _, h := range en.s.Msgs[e].Hops {
				if h.To == y {
					arr = h.End
					break
				}
			}
			if arr < 0 {
				// Extend with the hop pivot->y.
				ready := en.s.Arrival(e) // end of current route at pivot
				if link < 0 {
					l, ok := en.sys.Net.LinkBetween(pivot, y)
					if !ok {
						panic(fmt.Sprintf("core: no link between P%d and neighbour P%d", pivot+1, y+1))
					}
					link = l
				}
				dur := en.s.HopDuration(e, link)
				start := en.be.linkEarliestFitWithExtra(link, ready, dur, sc.extra[link])
				sc.add(link, start, start+dur)
				arr = start + dur
			}
		}
		if arr > drt {
			drt = arr
		}
	}
	dur := en.s.ExecDuration(t, y)
	start := en.be.procEarliestFit(y, drt, dur)
	return start + dur, drt
}

// minParallelEvals is the batch size below which fanning candidate
// evaluation out to the worker pool costs more than it saves.
const minParallelEvals = 16

// batchEval tentatively evaluates every (task, neighbour) candidate pair
// against the current timelines on the worker pool and returns one row of
// finish times per task (backed by a reused arena). Rows are only valid
// while en.version is unchanged: evaluations are pure functions of the
// current engine state, so the merge is deterministic regardless of worker
// count or completion order. It returns nil when the batch is too small
// for the pool to pay off; callers then fall back to evalRow.
func (en *engine) batchEval(tasks []graph.TaskID, neighbors []system.Adj) [][]float64 {
	nn := len(neighbors)
	jobs := len(tasks) * nn
	if en.cfg.fullRebuild || en.cfg.workers <= 1 || jobs < minParallelEvals {
		return nil
	}
	if cap(en.ftFlat) < jobs {
		en.ftFlat = make([]float64, jobs)
	}
	flat := en.ftFlat[:jobs]
	rows := en.ftRows[:0]
	for i := range tasks {
		rows = append(rows, flat[i*nn:(i+1)*nn])
	}
	en.ftRows = rows

	workers := en.cfg.workers
	if workers > jobs {
		workers = jobs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sc *evalScratch) {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= jobs {
					return
				}
				ft, _ := en.evalMigration(tasks[j/nn], neighbors[j%nn].Proc, sc)
				flat[j] = ft
			}
		}(en.scratch[w])
	}
	wg.Wait()
	en.evaluations += jobs
	return rows
}

// inEdgeEval is one prefetched in-edge of the pivot: everything
// evalMigration reads per incoming message, gathered once per row instead
// of once per (row, neighbour) pair. hops aliases the live schedule, which
// is fine because evaluation never mutates it.
type inEdgeEval struct {
	fromProc system.ProcID
	fromEnd  float64
	ready    float64
	cost     float64
	commRow  []float64 // sys.Comm[e]; nil for homogeneous links
	hops     []schedule.Hop
}

// evalRow fills row with the tentative finish time of t on each neighbour,
// evaluated sequentially against the current timelines. Both engines share
// the pooled-scratch evaluation: the oracle's legacy per-call overlay map
// had identical decision arithmetic and only differed in allocating. The
// per-edge inputs are prefetched once for the whole row; the arithmetic is
// exactly evalMigration's, so the two paths stay bit-identical.
func (en *engine) evalRow(t graph.TaskID, neighbors []system.Adj, row []float64) {
	ins := en.inEvals[:0]
	for _, e := range en.g.In(t) {
		edge := en.g.Edge(e)
		sm := &en.s.Msgs[e]
		var commRow []float64
		if en.sys.Comm != nil {
			commRow = en.sys.Comm[e]
		}
		ins = append(ins, inEdgeEval{
			fromProc: en.assign[edge.From],
			fromEnd:  en.s.Tasks[edge.From].End,
			ready:    sm.Arrival,
			cost:     edge.Cost,
			commRow:  commRow,
			hops:     sm.Hops,
		})
	}
	en.inEvals = ins
	sc := en.scratch[0]
	pivot := en.assign[t]
	taskCost := en.g.Task(t).Cost
	execRow := en.sys.Exec[t]
	for ni, a := range neighbors {
		y := a.Proc
		sc.reset()
		link := system.LinkID(-1) // pivot->y link, resolved at most once
		var drt float64
		for i := range ins {
			in := &ins[i]
			var arr float64
			if in.fromProc == y {
				arr = in.fromEnd
			} else {
				arr = -1
				for h := range in.hops {
					if in.hops[h].To == y {
						arr = in.hops[h].End
						break
					}
				}
				if arr < 0 {
					if link < 0 {
						l, ok := en.sys.Net.LinkBetween(pivot, y)
						if !ok {
							panic(fmt.Sprintf("core: no link between P%d and neighbour P%d", pivot+1, y+1))
						}
						link = l
					}
					dur := in.cost
					if in.commRow != nil {
						dur = in.commRow[link] * in.cost
					}
					start := en.be.linkEarliestFitWithExtra(link, in.ready, dur, sc.extra[link])
					sc.add(link, start, start+dur)
					arr = start + dur
				}
			}
			if arr > drt {
				drt = arr
			}
		}
		dur := execRow[y] * taskCost
		start := en.be.procEarliestFit(y, drt, dur)
		row[ni] = start + dur
	}
	en.evaluations += len(neighbors)
}

// commitMigration moves t from its current processor to neighbour y,
// updating every incident message route and re-deriving the schedule. When
// guard is true the migration is reverted if the resulting schedule is more
// than guardSlack longer than before (the local finish-time evaluation
// cannot see downstream effects; the paper's "bubble up" premise is that
// migrations improve finish times, so a regression of the global objective
// is rolled back). Both engines roll back by restoring the arena-saved
// ground truth (t's assignment and incident routes); the incremental
// engine then runs a second cone update while the oracle rebuilds the
// whole timeline. It reports whether the migration was kept.
func (en *engine) commitMigration(t graph.TaskID, y system.ProcID, guard bool) bool {
	en.touchedEdges = append(en.touchedEdges, en.g.In(t)...)
	en.touchedEdges = append(en.touchedEdges, en.g.Out(t)...)
	kept := true
	if guard {
		en.save(t)
	}
	en.applyMigration(t, y)
	if en.cancelErr != nil {
		// Canceled mid-update: the slot state is torn and the caller is
		// about to abort the run, so neither the guard (whose rollback
		// would run another cone update on torn state) nor the elitism
		// bookkeeping may run.
		return kept
	}
	if guard && en.curLen > en.savedLen*(1+en.cfg.guardSlack)+cmpEps {
		en.restore()
		if en.cfg.fullRebuild {
			en.rebuild()
		} else {
			en.updateFrom(t)
		}
		kept = false
	}
	if kept {
		en.version++
		if en.cache != nil {
			en.cache.stampCommit()
		}
		en.noteState()
	}
	return kept
}

// save snapshots the ground truth a migration of t can touch — t's
// assignment and its incident-edge routes — into the engine's reused
// snapshot arena, together with the current schedule length for the guard
// comparison.
func (en *engine) save(t graph.TaskID) {
	en.savedTask = t
	en.savedAssign = en.assign[t]
	en.savedLen = en.curLen
	en.savedRoutes = en.savedRoutes[:0]
	en.savedBuf = en.savedBuf[:0]
	for _, e := range en.g.In(t) {
		en.appendRouteSave(e)
	}
	for _, e := range en.g.Out(t) {
		en.appendRouteSave(e)
	}
}

func (en *engine) appendRouteSave(e graph.EdgeID) {
	r := en.routes.route(e)
	off := len(en.savedBuf)
	en.savedBuf = append(en.savedBuf, r...)
	en.savedRoutes = append(en.savedRoutes, routeSave{e: e, off: int32(off), n: int32(len(r))})
}

// restore reverts the saved ground truth; the caller re-derives the
// affected timelines afterwards.
func (en *engine) restore() {
	en.assign[en.savedTask] = en.savedAssign
	for _, rs := range en.savedRoutes {
		en.routes.set(rs.e, en.savedBuf[rs.off:rs.off+rs.n])
	}
}

// applyMigration performs the route surgery of a migration (extend
// incoming, prepend outgoing, splice out loops, localize messages whose
// endpoints now coincide) and re-derives the schedule from the migrating
// task's serial position onward.
func (en *engine) applyMigration(t graph.TaskID, y system.ProcID) {
	// Safe compaction point: no route views are held here, and every
	// mutation below writes through the arena.
	en.routes.maybeCompact()
	pivot := en.assign[t]
	link := system.LinkID(-1) // pivot->y link, resolved at most once
	for _, e := range en.g.In(t) {
		u := en.g.Edge(e).From
		if en.assign[u] == y {
			en.routes.clear(e)
			continue
		}
		if link < 0 {
			link, _ = en.sys.Net.LinkBetween(pivot, y)
		}
		r := en.routes.extend(e, link)
		if en.cfg.pruneRoutes {
			r = en.norm.Normalize(en.sys.Net, en.assign[u], r)
			en.routes.truncateTail(e, len(r))
		}
	}
	for _, e := range en.g.Out(t) {
		w := en.g.Edge(e).To
		if en.assign[w] == y {
			en.routes.clear(e)
			continue
		}
		if link < 0 {
			link, _ = en.sys.Net.LinkBetween(pivot, y)
		}
		r := en.routes.prepend(e, link)
		if en.cfg.pruneRoutes {
			r = en.norm.Normalize(en.sys.Net, y, r)
			en.routes.truncateTail(e, len(r))
		}
	}
	en.assign[t] = y
	if en.cfg.fullRebuild {
		en.rebuild()
	} else {
		en.updateFrom(t)
	}
}
