package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/sched/gen"
	"repro/sched/graph"
	"repro/sched/system"
)

// paperInstance builds the deterministic paper-size workload the
// allocation assertions run against (same family as BenchmarkBSA).
func paperInstance(t testing.TB, n int) (*graph.Graph, *system.System) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g, err := gen.RandomLayered(n, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := system.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g, sys
}

// TestEvalMigrationAllocFree pins the migration-evaluation hot path at
// zero allocations per call: the pooled evaluation scratch and the
// timeline fit search must not touch the heap at paper sizes.
func TestEvalMigrationAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	g, sys := paperInstance(t, 500)
	en, bfs, _ := fixpointEngine(t, g, sys)
	sc := en.scratch[0]
	// Evaluate every task on every neighbour of its processor once to warm
	// the scratch, then assert steady state.
	eval := func() {
		for _, p := range bfs {
			for _, tk := range en.tasksOn(p) {
				for _, a := range sys.Net.Neighbors(p) {
					en.evalMigration(tk, a.Proc, sc)
				}
			}
		}
	}
	eval()
	if allocs := testing.AllocsPerRun(10, eval); allocs != 0 {
		t.Fatalf("evalMigration allocates: %v allocs per full candidate pass", allocs)
	}
}

// TestCachedSweepAllocFree pins the cached sweep step at zero allocations:
// at a migration fixpoint a full pivot sweep is served entirely from the
// candidate cache — validity stamps, cached aggregates, the insertion-sort
// task ordering — without heap traffic.
func TestCachedSweepAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	g, sys := paperInstance(t, 500)
	en, bfs, opt := fixpointEngine(t, g, sys)
	ctx := context.Background()
	res := &Result{}
	sweep := func() {
		if err := sweepOnce(ctx, en, sys, bfs, opt, res); err != nil {
			t.Fatal(err)
		}
	}
	sweep()
	if res.Migrations != 0 {
		t.Fatalf("instance did not reach a fixpoint: %d migrations", res.Migrations)
	}
	if allocs := testing.AllocsPerRun(5, sweep); allocs != 0 {
		t.Fatalf("cached fixpoint sweep allocates: %v allocs per sweep", allocs)
	}
}

// TestCommitMigrationSteadyStateAllocFree asserts the commit path — save,
// route surgery through the arena and in-place normalizer, cone update,
// cache stamping — reaches an allocation-free steady state: ping-ponging
// one task between two processors reuses every buffer.
func TestCommitMigrationSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	g, sys := paperInstance(t, 200)
	en, _, _ := fixpointEngine(t, g, sys)
	// Pick any task and a neighbour of its processor, and ping-pong it.
	tk := graph.TaskID(0)
	home := en.assign[tk]
	away := sys.Net.Neighbors(home)[0].Proc
	pingPong := func() {
		en.commitMigration(tk, away, false)
		en.commitMigration(tk, home, false)
	}
	for i := 0; i < 8; i++ {
		pingPong() // warm arenas, strip buffers and cache change lists
	}
	if allocs := testing.AllocsPerRun(10, pingPong); allocs > 0.5 {
		// The arena compacts and timelines grow on amortized schedules, so
		// tolerate stray fractional counts but fail on per-commit churn.
		t.Fatalf("steady-state commit allocates: %v allocs per ping-pong", allocs)
	}
}
