package core

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/sched/graph"
	"repro/sched/system"
)

// candCache is the sweep-level candidate cache: it memoizes, per task, the
// row of finish times obtained by evaluating that task against every
// neighbour of its current processor, together with the row's reduction to
// the migration decision's aggregates (the argmin neighbour and the VIP
// neighbour's finish time), and tracks exactly which state each memo
// depends on so that a committed migration re-evaluates only what its
// dependency cone touched.
//
// Dependencies are tracked with monotonic commit stamps instead of reverse
// maps: every kept commit increments commitC and stamps the tasks whose
// slots changed, the messages whose hop schedules or arrivals changed, and
// the processor/link timelines whose contents diverged — the same change
// sets the incremental engine's updateFrom already derives (its epoch
// flags), accumulated into lists as they are discovered. A row evaluated
// at stamp s then splits its dependencies by granularity:
//
//   - task-level: the task's own slot, its predecessors' slots and its
//     incoming messages. Evaluating ANY neighbour reads these, so a stamp
//     > s invalidates the whole row.
//   - entry-level: candidate processor y's timeline and the pivot->y
//     link's timeline. Only the (task, y) entry reads them, so a stamp
//     > s forces re-evaluation of just that entry; the rest of the row is
//     reused and only the O(degree) reduction reruns.
//
// Entry granularity is what makes the cache effective mid-sweep: a commit
// dirties its target processor, which is a neighbour of every pivot on
// dense topologies — with whole-row invalidation every commit would wipe
// the cache, while per-entry invalidation re-evaluates one column.
//
// Reverted commits stamp nothing: a rollback restores byte-identical
// state (the invariant the engine's versioned batch evaluation already
// relies on), so rows cached before the attempt stay valid. The validity
// check is a handful of integer compares per row, so a sweep over an
// equilibrated region costs O(tasks) compares instead of
// O(tasks x neighbors) timeline walks — migration sweeps become O(dirty).
type candCache struct {
	commitC uint64 // kept-commit counter; starts at 1 so stamp 0 = "never"

	// Last kept commit that changed each resource.
	taskStamp []uint64 // the task's slot (start/end/processor)
	msgStamp  []uint64 // the message's hop schedule or arrival
	procStamp []uint64 // the processor timeline's contents
	linkStamp []uint64 // the link timeline's contents

	// Change lists accumulated by the current updateFrom pass; stamped on a
	// kept commit, discarded on a revert.
	updTasks []graph.TaskID
	updMsgs  []graph.EdgeID
	updProcs []system.ProcID
	updLinks []system.LinkID

	// Cached per-task rows and their reductions. rowStamp is the commitC
	// the row was last brought current at (0 = never evaluated); rowProc
	// the pivot it was evaluated on.
	rowStamp []uint64
	rowProc  []system.ProcID
	rowFT    [][]float64
	bestFT   []float64
	bestY    []system.ProcID
	vipFT    []float64
	vipY     []system.ProcID

	// preVer[t] != 0 marks rowFT[t] as filled by prefetchRows at engine
	// version preVer[t]-1: the contents are exactly what a serial full
	// evaluation would produce as long as no migration has been kept
	// since. A stale mark is simply ignored.
	preVer []uint64

	hits    int // rows served with zero evaluations
	partial int // rows served after re-evaluating only stale entries
	misses  int // rows evaluated in full
}

func newCandCache(numTasks, numEdges, numProcs, numLinks int) *candCache {
	return &candCache{
		commitC:   1,
		taskStamp: make([]uint64, numTasks),
		msgStamp:  make([]uint64, numEdges),
		procStamp: make([]uint64, numProcs),
		linkStamp: make([]uint64, numLinks),
		rowStamp:  make([]uint64, numTasks),
		rowProc:   make([]system.ProcID, numTasks),
		rowFT:     make([][]float64, numTasks),
		bestFT:    make([]float64, numTasks),
		bestY:     make([]system.ProcID, numTasks),
		vipFT:     make([]float64, numTasks),
		vipY:      make([]system.ProcID, numTasks),
		preVer:    make([]uint64, numTasks),
	}
}

// beginUpdate discards the previous change lists; updateFrom calls it
// before accumulating a new pass.
func (c *candCache) beginUpdate() {
	c.updTasks = c.updTasks[:0]
	c.updMsgs = c.updMsgs[:0]
	c.updProcs = c.updProcs[:0]
	c.updLinks = c.updLinks[:0]
}

// stampCommit seals a kept commit: the accumulated change lists receive a
// fresh stamp, invalidating exactly the rows and entries that read them.
func (c *candCache) stampCommit() {
	c.commitC++
	v := c.commitC
	for _, u := range c.updTasks {
		c.taskStamp[u] = v
	}
	for _, e := range c.updMsgs {
		c.msgStamp[e] = v
	}
	for _, p := range c.updProcs {
		c.procStamp[p] = v
	}
	for _, l := range c.updLinks {
		c.linkStamp[l] = v
	}
}

// rowLevelStale reports whether t's cached row cannot be reused at row
// level for pivot: never evaluated, evaluated on another pivot, or a
// task-level dependency (its own slot, a predecessor's slot, an incoming
// message) was stamped since.
func (en *engine) rowLevelStale(t graph.TaskID, pivot system.ProcID) bool {
	c := en.cache
	rs := c.rowStamp[t]
	if rs == 0 || c.rowProc[t] != pivot || c.taskStamp[t] > rs {
		return true
	}
	for _, e := range en.g.In(t) {
		if c.msgStamp[e] > rs || c.taskStamp[en.g.Edge(e).From] > rs {
			return true
		}
	}
	return false
}

// prefetchRows speculatively evaluates, on the worker pool, the full rows
// of every task on the pivot whose cached row is row-level stale. Row
// values are pure functions of the current engine state, so the parallel
// fill is byte-identical to the serial evaluation ensureRow would run;
// each filled row is marked with the current engine version and ensureRow
// consumes it in decision order (the deterministic merge). A migration
// kept mid-loop bumps the version, orphaning the remaining speculative
// rows — those fall back to serial evaluation, exactly like the cache-off
// batch path.
func (en *engine) prefetchRows(tasks []graph.TaskID, pivot system.ProcID, neighbors []system.Adj) {
	c := en.cache
	if c == nil || en.cfg.workers <= 1 {
		return
	}
	nn := len(neighbors)
	stale := en.staleRows[:0]
	for _, t := range tasks {
		if !en.rowLevelStale(t, pivot) {
			continue
		}
		row := c.rowFT[t]
		if cap(row) < nn {
			row = make([]float64, nn)
		}
		c.rowFT[t] = row[:nn]
		stale = append(stale, t)
	}
	en.staleRows = stale
	jobs := len(stale) * nn
	if jobs < minParallelEvals {
		return
	}
	workers := en.cfg.workers
	if workers > jobs {
		workers = jobs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sc *evalScratch) {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= jobs {
					return
				}
				t := stale[j/nn]
				ft, _ := en.evalMigration(t, neighbors[j%nn].Proc, sc)
				c.rowFT[t][j%nn] = ft
			}
		}(en.scratch[w])
	}
	wg.Wait()
	en.evaluations += jobs
	for _, t := range stale {
		c.preVer[t] = en.version + 1
	}
}

// ensureRow brings t's cached row current for the given pivot — reusing
// it outright when nothing it reads was stamped, re-evaluating only the
// entries whose candidate processor or connecting link was stamped, or
// evaluating the full row when a task-level dependency changed — and
// leaves the decision aggregates in bestFT/bestY/vipFT/vipY.
func (en *engine) ensureRow(t graph.TaskID, pivot system.ProcID, neighbors []system.Adj) {
	c := en.cache
	if en.rowLevelStale(t, pivot) {
		row := c.rowFT[t]
		if c.preVer[t] == en.version+1 {
			// prefetchRows sized and filled the row at this exact state;
			// the evaluations were counted at the fill.
			row = row[:len(neighbors)]
			c.preVer[t] = 0
		} else {
			if cap(row) < len(neighbors) {
				row = make([]float64, len(neighbors))
			}
			row = row[:len(neighbors)]
			c.rowFT[t] = row
			en.evalRow(t, neighbors, row)
		}
		c.misses++
		en.reduceInto(t, pivot, neighbors, row)
		return
	}
	rs := c.rowStamp[t]
	row := c.rowFT[t]
	sc := en.scratch[0]
	stale := 0
	for ni, a := range neighbors {
		if c.procStamp[a.Proc] > rs || c.linkStamp[a.Link] > rs {
			row[ni], _ = en.evalMigration(t, a.Proc, sc)
			stale++
		}
	}
	if stale == 0 {
		c.hits++
		return
	}
	en.evaluations += stale
	c.partial++
	en.reduceInto(t, pivot, neighbors, row)
}

// reduceInto reduces a current row into the cached decision aggregates
// and restamps the row.
func (en *engine) reduceInto(t graph.TaskID, pivot system.ProcID, neighbors []system.Adj, row []float64) {
	c := en.cache
	c.bestFT[t], c.bestY[t], c.vipFT[t], c.vipY[t] = en.reduceRow(t, neighbors, row)
	c.rowStamp[t] = c.commitC
	c.rowProc[t] = pivot
}

// reduceRow folds one row of candidate finish times into the migration
// decision's aggregates: the strictly-best neighbour (first wins ties, as
// in BFS adjacency order) and the neighbour hosting t's VIP, if any.
func (en *engine) reduceRow(t graph.TaskID, neighbors []system.Adj, row []float64) (bestFT float64, bestY system.ProcID, vipFT float64, vipY system.ProcID) {
	_, vip := en.s.DRT(t)
	bestFT = math.Inf(1)
	bestY, vipY = -1, -1
	for ni, a := range neighbors {
		ft := row[ni]
		if ft < bestFT-cmpEps {
			bestFT, bestY = ft, a.Proc
		}
		if vip >= 0 && en.assign[vip] == a.Proc {
			vipFT, vipY = ft, a.Proc
		}
	}
	return bestFT, bestY, vipFT, vipY
}
