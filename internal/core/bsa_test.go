package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/sched/gen"
	"repro/sched/graph"
	"repro/sched/system"
)

func TestBSAPaperExample(t *testing.T) {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	res, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schedule
	if !s.Complete() {
		t.Fatal("incomplete schedule")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if res.InitialPivot != 1 {
		t.Errorf("pivot=P%d, want P2", res.InitialPivot+1)
	}
	// The serialized-on-pivot baseline is the sum of exec costs on P2
	// (=248); migrations must improve on that. The paper reports 138 for
	// its (not fully recoverable) edge costs; our reconstruction should
	// land in the same region and certainly well below serial.
	sl := s.Length()
	var serialLen float64
	for i := 0; i < 9; i++ {
		serialLen += gen.PaperExecTable[i][1]
	}
	if sl >= serialLen {
		t.Errorf("SL=%v not better than serialized %v", sl, serialLen)
	}
	if res.Migrations == 0 {
		t.Error("expected at least one migration")
	}
	t.Logf("paper example: SL=%.0f (paper: 138), migrations=%d, comm=%.0f", sl, res.Migrations, s.TotalComm())
}

func TestBSASingleProcessor(t *testing.T) {
	g := gen.PaperExampleGraph()
	nw, _ := system.Ring(1)
	sys := system.NewUniform(nw, g.NumTasks(), g.NumEdges())
	res, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	// One processor: schedule length is the serial sum of nominal costs.
	if got, want := res.Schedule.Length(), g.TotalExecCost(); got != want {
		t.Errorf("SL=%v, want serial %v", got, want)
	}
	if res.Migrations != 0 {
		t.Errorf("migrations=%d on a single processor", res.Migrations)
	}
}

func TestBSAEmptyGraph(t *testing.T) {
	g, _ := graph.NewBuilder().Build()
	nw, _ := system.Ring(4)
	sys := system.NewUniform(nw, 0, 0)
	res, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Length() != 0 {
		t.Error("empty graph should give empty schedule")
	}
}

func TestBSASingleTask(t *testing.T) {
	b := graph.NewBuilder()
	b.AddTask("only", 50)
	g, _ := b.Build()
	nw, _ := system.Ring(4)
	sys := system.NewUniform(nw, 1, 0)
	sys.Exec[0] = []float64{1, 0.5, 2, 3} // P2 is fastest
	res, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pivot selection picks the fastest processor; the task never migrates
	// (it starts at its DRT), so SL = 25.
	if got := res.Schedule.Length(); got != 25 {
		t.Errorf("SL=%v, want 25", got)
	}
	if res.InitialPivot != 1 {
		t.Errorf("pivot=P%d, want P2", res.InitialPivot+1)
	}
}

func TestBSAInvalidSystem(t *testing.T) {
	g := gen.PaperExampleGraph()
	nw, _ := system.Ring(4)
	sys := system.NewUniform(nw, 3, 0) // wrong dimensions
	if _, err := Schedule(g, sys, Options{}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestBSADeterminism(t *testing.T) {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	a, err := Schedule(g, sys, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(g, sys, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule.Length() != b.Schedule.Length() || a.Migrations != b.Migrations {
		t.Fatal("BSA not deterministic for a fixed seed")
	}
	for i := range a.Schedule.Tasks {
		if a.Schedule.Tasks[i] != b.Schedule.Tasks[i] {
			t.Fatalf("task %d placement differs", i)
		}
	}
}

// randomSystem builds a random heterogeneous system over a random
// connected topology.
func randomSystem(t *testing.T, rng *rand.Rand, g *graph.Graph, m int) *system.System {
	t.Helper()
	nw, err := system.RandomConnected(m, 1, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := system.NewRandom(nw, g.NumTasks(), g.NumEdges(), 1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBSARandomInstancesAreValid(t *testing.T) {
	// The central safety property: on arbitrary inputs BSA produces a
	// complete schedule satisfying every feasibility constraint the
	// validator checks (precedence, contention, store-and-forward routing,
	// heterogeneous durations).
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%30
		m := 2 + int(mRaw)%8
		g := randomConnectedDAG(rng, n, 0.15)
		nw, err := system.RandomConnected(m, 1, m, rng)
		if err != nil {
			return true
		}
		sys, err := system.NewRandom(nw, g.NumTasks(), g.NumEdges(), 1, 25, rng)
		if err != nil {
			return false
		}
		res, err := Schedule(g, sys, Options{Seed: seed})
		if err != nil {
			return false
		}
		return res.Schedule.Complete() && res.Schedule.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBSATopologyVariety(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomConnectedDAG(rng, 40, 0.1)
	build := func(nw *system.Network, err error) *system.System {
		if err != nil {
			t.Fatal(err)
		}
		sys, err := system.NewRandom(nw, g.NumTasks(), g.NumEdges(), 1, 50, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	topos := map[string]*system.System{
		"ring": build(system.Ring(8)),
		"cube": build(system.Hypercube(3)),
		"mesh": build(system.Mesh2D(2, 4)),
		"star": build(system.Star(8)),
		"line": build(system.Line(8)),
		"full": build(system.FullyConnected(8)),
	}
	for name, sys := range topos {
		res, err := Schedule(g, sys, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestBSAUsesFasterProcessors(t *testing.T) {
	// Chain of 4 tasks with tiny comm costs; P2 is 10x faster for all
	// tasks. BSA should migrate the chain off the pivot... or rather,
	// pivot selection should pick P2 and keep everything there: SL must be
	// close to the fast serial time.
	b := graph.NewBuilder()
	prev := b.AddTask("c0", 100)
	for i := 1; i < 4; i++ {
		cur := b.AddTask(tName(i), 100)
		b.AddEdge(prev, cur, 1)
		prev = cur
	}
	g, _ := b.Build()
	nw, _ := system.Ring(4)
	sys := system.NewUniform(nw, g.NumTasks(), g.NumEdges())
	for i := 0; i < g.NumTasks(); i++ {
		sys.Exec[i] = []float64{1, 0.1, 1, 1}
	}
	res, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialPivot != 1 {
		t.Errorf("pivot=P%d, want fast P2", res.InitialPivot+1)
	}
	if got := res.Schedule.Length(); got != 40 {
		t.Errorf("SL=%v, want 40 (chain stays on fast processor)", got)
	}
}

func TestBSAParallelismExploited(t *testing.T) {
	// A fork of independent heavy tasks: BSA must spread them across
	// processors, beating the serialized length.
	b := graph.NewBuilder()
	root := b.AddTask("root", 10)
	sink := b.AddTask("sink", 10)
	for i := 0; i < 6; i++ {
		x := b.AddTask(tName(i+2), 100)
		b.AddEdge(root, x, 1)
		b.AddEdge(x, sink, 1)
	}
	g, _ := b.Build()
	nw, _ := system.FullyConnected(4)
	sys := system.NewUniform(nw, g.NumTasks(), g.NumEdges())
	res, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	serial := g.TotalExecCost()
	if got := res.Schedule.Length(); got >= serial {
		t.Errorf("SL=%v did not beat serial %v", got, serial)
	}
	if res.Migrations < 2 {
		t.Errorf("migrations=%d, expected the fork to spread", res.Migrations)
	}
}

func TestBSAOptionsAblation(t *testing.T) {
	// The ablation knobs must still yield valid schedules.
	rng := rand.New(rand.NewSource(31))
	g := randomConnectedDAG(rng, 35, 0.12)
	sys := randomSystem(t, rng, g, 6)
	for _, opt := range []Options{
		{},
		{DisableVIPFollow: true},
		{DisableRoutePruning: true},
		{DisableVIPFollow: true, DisableRoutePruning: true},
	} {
		res, err := Schedule(g, sys, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
	}
}

func TestBSAScheduleLengthLowerBound(t *testing.T) {
	// SL can never beat the bottom level computed with each task's fastest
	// processor and zero communication.
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%25
		g := randomConnectedDAG(rng, n, 0.2)
		nw, err := system.Ring(4)
		if err != nil {
			return false
		}
		sys, err := system.NewRandom(nw, g.NumTasks(), g.NumEdges(), 1, 8, rng)
		if err != nil {
			return false
		}
		res, err := Schedule(g, sys, Options{Seed: seed})
		if err != nil {
			return false
		}
		minExec := make([]float64, n)
		for i := 0; i < n; i++ {
			best := sys.ExecCost(i, 0, g.Task(graph.TaskID(i)).Cost)
			for p := 1; p < 4; p++ {
				if c := sys.ExecCost(i, system.ProcID(p), g.Task(graph.TaskID(i)).Cost); c < best {
					best = c
				}
			}
			minExec[i] = best
		}
		zeroComm := make([]float64, g.NumEdges())
		lb := graph.CPLength(g, minExec, zeroComm)
		return res.Schedule.Length() >= lb-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
