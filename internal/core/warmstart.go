// Quasi-dynamic warm start: reconverging BSA from an adopted schedule.
//
// The cold entry point injects the whole serialization onto one pivot and
// bubbles tasks outward. The warm entry point instead adopts a previous
// schedule as the engine's ground truth — the serial order is the
// previous schedule's start-time order, assignments and routes carry over
// — and runs the same breadth-first migration sweeps restricted to a
// dirty frontier: the tasks a problem delta actually touched. After every
// kept migration the frontier grows by exactly the commit's dependency
// cone, read off the candidate cache's commit-stamped change lists, so
// reconvergence evaluates candidates only where the delta propagates
// instead of re-deciding the whole system.

package core

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/schedule"
	"repro/sched/graph"
	"repro/sched/system"
)

// WarmStart seeds RescheduleContext with ground truth adopted from a
// previous schedule, already translated into the (post-delta) problem's
// ID space by the caller.
type WarmStart struct {
	// Serial is the serialization order the engine replays placements in.
	// It must be a linear extension of the graph; the natural choice is
	// the previous schedule's start-time order with appended tasks in
	// topological order at the end.
	Serial []graph.TaskID
	// Assign maps every task to its adopted processor.
	Assign []system.ProcID
	// Routes holds, for every edge, a route connecting the assigned
	// endpoint processors (empty means both endpoints share a processor).
	Routes [][]system.LinkID
	// Dirty seeds the reconvergence frontier: tasks displaced, re-routed,
	// re-costed or appended by the delta. Tasks outside the frontier are
	// not considered for migration until a kept migration's dependency
	// cone reaches them.
	Dirty []graph.TaskID
	// PrevTasks and PrevMsgs optionally carry the previous schedule's
	// slots (remapped; a zero/unplaced entry means "no prior placement").
	// Adopting the ground truth replays it under the new system, so slots
	// can shift even for untouched tasks; any task or message whose
	// adopted placement diverges from its previous one joins the dirty
	// frontier.
	PrevTasks []schedule.TaskSlot
	PrevMsgs  []schedule.MsgSlot
}

// Reschedule runs the warm-started migration reconvergence. See
// RescheduleContext.
func Reschedule(g *graph.Graph, sys *system.System, warm WarmStart, opt Options) (*Result, error) {
	return RescheduleContext(context.Background(), g, sys, warm, opt)
}

// RescheduleContext adopts warm's (serial, assign, routes) ground truth
// into engine timelines, marks the dirty frontier, and reconverges with
// breadth-first migration sweeps restricted to that frontier. The warm
// path always uses the incremental engine with the candidate cache on —
// the commit-stamped change lists are what make frontier expansion sound
// — so Options.UseFullRebuild and DisableCandidateCache are ignored;
// Options.Workers and Options.Backend are honored like the cold path.
// Result.Serial reports the adopted serial order; Result.DirtyTasks the
// frontier size after adoption diffing.
func RescheduleContext(ctx context.Context, g *graph.Graph, sys *system.System, warm WarmStart, opt Options) (*Result, error) {
	if err := sys.Validate(g.NumTasks(), g.NumEdges()); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if _, err := resolveBackend(opt.Backend, false, sys.Net); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	n, m := g.NumTasks(), sys.Net.NumProcs()

	res := &Result{}
	if n == 0 {
		res.Schedule = schedule.New(g, sys)
		return res, nil
	}

	if err := validateWarm(g, sys, warm); err != nil {
		return nil, fmt.Errorf("core: warm start: %w", err)
	}
	res.Serial = warm.Serial

	slack := opt.GuardSlack
	switch {
	case slack == 0:
		slack = DefaultGuardSlack
	case slack < 0:
		slack = 0
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	en := newWarmEngine(g, sys, warm.Serial, warm.Assign, warm.Routes, engineConfig{
		pruneRoutes:    !opt.DisableRoutePruning,
		guardSlack:     slack,
		backend:        opt.Backend,
		fullRebuild:    false,
		workers:        workers,
		candidateCache: true,
	})
	en.setContext(ctx)

	ds := newDirtySet(n)
	for _, t := range warm.Dirty {
		ds.mark(t)
	}
	// Adoption diff: replaying the adopted ground truth under the new
	// system can land tasks elsewhere than the previous schedule did
	// (durations and routes changed, and the serial order is a
	// reconstruction). Whatever moved is part of the delta's footprint.
	if warm.PrevTasks != nil {
		for t := range en.s.Tasks {
			if prev := warm.PrevTasks[t]; !prev.Placed || en.s.Tasks[t] != prev {
				ds.mark(graph.TaskID(t))
			}
		}
	}
	if warm.PrevMsgs != nil {
		for e := range en.s.Msgs {
			prev := &warm.PrevMsgs[e]
			cur := &en.s.Msgs[e]
			if !prev.Placed || cur.Arrival != prev.Arrival || !hopsEqual(cur.Hops, prev.Hops) {
				ds.mark(g.Edge(graph.EdgeID(e)).To)
			}
		}
	}
	res.DirtyTasks = ds.n

	// Sweep breadth-first from the processor carrying the most dirty
	// tasks — the warm analogue of starting at the injection pivot.
	root := system.ProcID(0)
	if ds.n > 0 {
		counts := make([]int, m)
		for t, dirty := range ds.flag {
			if dirty {
				counts[en.assign[t]]++
			}
		}
		for p := 1; p < m; p++ {
			if counts[p] > counts[root] {
				root = system.ProcID(p)
			}
		}
	}
	res.InitialPivot = root

	maxSweeps := opt.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 4 * m
	}
	bfs := sys.Net.BFSOrder(root)
	stale := 0
	for sweep := 0; sweep < maxSweeps && ds.n > 0; sweep++ {
		migrationsBefore := res.Migrations
		bestBefore := en.bestLen
		res.Sweeps++
		if err := warmSweepOnce(ctx, en, sys, bfs, ds, opt, res); err != nil {
			return nil, fmt.Errorf("core: after %d sweeps, %d migrations: %w",
				res.Sweeps, res.Migrations, err)
		}
		if res.Migrations == migrationsBefore {
			break // fixpoint: the frontier had nothing left to move
		}
		// Same stagnation cutoff as the cold path: VIP-following can
		// shuffle tasks without improving the best schedule seen.
		if en.bestLen >= bestBefore-cmpEps {
			stale++
			if stale >= 2 {
				break
			}
		} else {
			stale = 0
		}
	}

	if en.restoreBest() {
		res.RestoredBest = true
	}

	res.Evaluations = en.evaluations
	res.Rebuilds = en.rebuilds
	res.Placements = en.placements
	res.MsgPlacements = en.msgPlaces
	res.CacheHits = en.cache.hits
	res.CachePartials = en.cache.partial
	res.CacheMisses = en.cache.misses
	res.Schedule = en.finalSchedule()
	return res, nil
}

// validateWarm checks the adopted ground truth well enough that the
// engine cannot panic on it: the serial order must be a linear-extension
// permutation, assignments in range, and every route must connect its
// edge's assigned endpoints.
func validateWarm(g *graph.Graph, sys *system.System, warm WarmStart) error {
	n := g.NumTasks()
	if len(warm.Serial) != n {
		return fmt.Errorf("serial has %d tasks, graph has %d", len(warm.Serial), n)
	}
	if len(warm.Assign) != n {
		return fmt.Errorf("assign has %d tasks, graph has %d", len(warm.Assign), n)
	}
	if len(warm.Routes) != g.NumEdges() {
		return fmt.Errorf("routes has %d edges, graph has %d", len(warm.Routes), g.NumEdges())
	}
	if warm.PrevTasks != nil && len(warm.PrevTasks) != n {
		return fmt.Errorf("prev tasks has %d entries, graph has %d tasks", len(warm.PrevTasks), n)
	}
	if warm.PrevMsgs != nil && len(warm.PrevMsgs) != g.NumEdges() {
		return fmt.Errorf("prev msgs has %d entries, graph has %d edges", len(warm.PrevMsgs), g.NumEdges())
	}
	seen := make([]bool, n)
	for _, t := range warm.Serial {
		if t < 0 || int(t) >= n || seen[t] {
			return fmt.Errorf("serial is not a permutation (task %d)", t)
		}
		seen[t] = true
	}
	pos := SerialPositions(g, warm.Serial)
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			return fmt.Errorf("serial is not a linear extension (edge %d->%d)", e.From, e.To)
		}
	}
	mprocs := system.ProcID(sys.Net.NumProcs())
	for t, p := range warm.Assign {
		if p < 0 || p >= mprocs {
			return fmt.Errorf("task %d assigned to processor %d (m=%d)", t, p, mprocs)
		}
	}
	for e, r := range warm.Routes {
		edge := g.Edge(graph.EdgeID(e))
		src, dst := warm.Assign[edge.From], warm.Assign[edge.To]
		if !system.ValidRoute(sys.Net, src, dst, r) {
			return fmt.Errorf("edge %d route does not connect P%d to P%d", e, src+1, dst+1)
		}
	}
	return nil
}

// dirtySet tracks the reconvergence frontier.
type dirtySet struct {
	flag []bool
	n    int
}

func newDirtySet(numTasks int) *dirtySet {
	return &dirtySet{flag: make([]bool, numTasks)}
}

func (ds *dirtySet) mark(t graph.TaskID) {
	if !ds.flag[t] {
		ds.flag[t] = true
		ds.n++
	}
}

func (ds *dirtySet) clear(t graph.TaskID) {
	if ds.flag[t] {
		ds.flag[t] = false
		ds.n--
	}
}

// expand grows the frontier by a kept commit's dependency cone, read off
// the candidate cache's change lists (valid until the next update): tasks
// whose slot moved (including the migrated task itself, which may keep
// bubbling over multiple hops) and receivers of messages that moved.
// Tasks whose timeline was merely dirtied without their slot moving are
// deliberately left out: re-deciding them buys little quality but, on
// dense topologies, would re-examine whole processors after every commit
// and erase the warm start's evaluation savings.
func (ds *dirtySet) expand(en *engine) {
	c := en.cache
	for _, t := range c.updTasks {
		ds.mark(t)
	}
	for _, e := range c.updMsgs {
		ds.mark(en.g.Edge(e).To)
	}
}

// warmSweepOnce is sweepOnce restricted to the dirty frontier: only dirty
// tasks are brought current and considered for migration, each is removed
// from the frontier once examined, and every kept commit re-adds its
// dependency cone. The decision arithmetic is identical to the cold
// sweep, so a frontier covering all tasks degenerates to exactly
// sweepOnce.
func warmSweepOnce(ctx context.Context, en *engine, sys *system.System, bfs []system.ProcID, ds *dirtySet, opt Options, res *Result) error {
	for _, pivot := range bfs {
		if err := ctx.Err(); err != nil {
			return err
		}
		neighbors := sys.Net.Neighbors(pivot)
		if len(neighbors) == 0 {
			continue
		}
		tasks := en.tasksOn(pivot)
		if len(tasks) == 0 {
			continue
		}
		// Prefetch the rows of the tasks dirty at pass start; tasks a
		// mid-pass commit marks are still picked up by the live flag check
		// below and evaluated serially, exactly as before.
		dirty := en.dirtyTasks[:0]
		for _, t := range tasks {
			if ds.flag[t] {
				dirty = append(dirty, t)
			}
		}
		en.dirtyTasks = dirty
		if len(dirty) > 0 {
			en.prefetchRows(dirty, pivot, neighbors)
		}
		for _, t := range tasks {
			if !ds.flag[t] {
				continue
			}
			ds.clear(t)
			en.ensureRow(t, pivot, neighbors)
			bestFT, bestY := en.cache.bestFT[t], en.cache.bestY[t]
			vipFT, vipY := en.cache.vipFT[t], en.cache.vipY[t]
			curFT := en.s.Tasks[t].End
			guard := !opt.DisableMigrationGuard
			switch {
			case bestY >= 0 && bestFT < curFT-cmpEps:
				kept := en.commitMigration(t, bestY, guard)
				recordStep(opt, res, t, pivot, bestY, kept)
				if kept {
					res.Migrations++
					ds.expand(en)
				} else {
					res.Reverted++
				}
				if en.cancelErr != nil {
					// Canceled mid-cone-update; the slot state is torn, so
					// abort without another decision.
					return en.cancelErr
				}
			case !opt.DisableVIPFollow && vipY >= 0 && vipFT <= curFT*(1+vipSlack)+cmpEps:
				kept := en.commitMigration(t, vipY, guard)
				recordStep(opt, res, t, pivot, vipY, kept)
				if kept {
					res.Migrations++
					ds.expand(en)
				} else {
					res.Reverted++
				}
				if en.cancelErr != nil {
					return en.cancelErr
				}
			}
		}
	}
	return nil
}
