package core

import (
	"math/rand"
	"testing"

	"repro/sched/gen"
	"repro/sched/graph"
	"repro/sched/system"
)

func exampleEngine(t *testing.T) *engine {
	t.Helper()
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	exec := sys.ExecCostsOn(1, g.NominalExecCosts())
	serial := Serialize(g, exec, nil, rand.New(rand.NewSource(1)))
	return newEngine(g, sys, serial, 1, engineConfig{pruneRoutes: true, guardSlack: 0.05})
}

func TestEngineInitialSerialization(t *testing.T) {
	en := exampleEngine(t)
	// All tasks on the pivot, packed back to back: SL = sum of exec on P2.
	var want float64
	for i := 0; i < 9; i++ {
		want += gen.PaperExecTable[i][1]
	}
	if got := en.s.Length(); got != want {
		t.Fatalf("initial SL=%v, want %v", got, want)
	}
	if err := en.finalSchedule().Validate(); err != nil {
		t.Fatal(err)
	}
	if en.s.TotalComm() != 0 {
		t.Error("serialized schedule should use no links")
	}
}

func TestEngineMigrationKeepsValidity(t *testing.T) {
	en := exampleEngine(t)
	// Migrate a few tasks by hand across the ring and validate after each
	// rebuild. P2's neighbours on Ring(4) are P1 and P3.
	for _, mv := range []struct {
		task graph.TaskID
		to   system.ProcID
	}{
		{2, 0}, // T3 -> P1
		{3, 2}, // T4 -> P3
		{7, 2}, // T8 -> P3 (follows its pred T4)
		{2, 3}, // T3 again: P1 -> P4 (multi-hop route for T1->T3)
	} {
		en.applyMigration(mv.task, mv.to)
		if err := en.finalSchedule().Validate(); err != nil {
			t.Fatalf("after moving task %d to P%d: %v", mv.task, mv.to+1, err)
		}
	}
	// T3 sits two migrations from the pivot; its incoming message must be
	// either local or a contiguous multi-hop route; with pruning it must be
	// a simple path.
	for _, e := range en.g.In(2) {
		hops := en.s.Msgs[e].Hops
		seen := map[system.ProcID]bool{}
		for _, h := range hops {
			if seen[h.From] {
				t.Fatalf("route for message %d revisits P%d", e, h.From+1)
			}
			seen[h.From] = true
		}
	}
}

func TestEngineGuardRollsBack(t *testing.T) {
	en := exampleEngine(t)
	before := en.s.Length()
	// T9 (the sink) to a neighbour: moving only the sink forces every
	// incoming message across one link, which lengthens the schedule, so a
	// zero-slack guard must roll it back.
	en.cfg.guardSlack = 0
	kept := en.commitMigration(8, 0, true)
	if kept {
		// If it was kept the schedule must not be longer.
		if en.s.Length() > before+1e-9 {
			t.Fatalf("guard kept a regressing migration: %v -> %v", before, en.s.Length())
		}
	} else {
		if got := en.s.Length(); got != before {
			t.Fatalf("rollback did not restore SL: %v != %v", got, before)
		}
		if en.assign[8] != 1 {
			t.Fatal("rollback did not restore assignment")
		}
		if err := en.finalSchedule().Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEngineUnguardedCommitKeeps(t *testing.T) {
	en := exampleEngine(t)
	if !en.commitMigration(8, 0, false) {
		t.Fatal("unguarded commit must always keep")
	}
	if en.assign[8] != 0 {
		t.Fatal("assignment not updated")
	}
	if err := en.finalSchedule().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineElitismRestore(t *testing.T) {
	en := exampleEngine(t)
	initial := en.s.Length()
	// Force a regressing unguarded move, then restore the best state.
	en.applyMigration(8, 0)
	if en.s.Length() <= initial {
		t.Skip("migration happened to improve; nothing to restore")
	}
	if !en.restoreBest() {
		t.Fatal("restoreBest should have rewound")
	}
	if got := en.s.Length(); got != initial {
		t.Fatalf("restored SL=%v, want %v", got, initial)
	}
	if en.restoreBest() {
		t.Fatal("second restore should be a no-op")
	}
}

func TestEngineTasksOnOrder(t *testing.T) {
	en := exampleEngine(t)
	ts := en.tasksOn(1)
	if len(ts) != 9 {
		t.Fatalf("tasksOn(pivot)=%d tasks", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if en.s.Tasks[ts[i-1]].Start > en.s.Tasks[ts[i]].Start {
			t.Fatal("tasksOn not sorted by start time")
		}
	}
	if got := en.tasksOn(0); len(got) != 0 {
		t.Fatalf("tasksOn(P1)=%v, want empty", got)
	}
}

func TestEvalScratchAddSorted(t *testing.T) {
	sc := newEvalScratch(10)
	sc.add(3, 10, 20)
	sc.add(3, 0, 5)
	sc.add(3, 25, 30)
	slots := sc.extra[3]
	if len(slots) != 3 || slots[0].Start != 0 || slots[1].Start != 10 || slots[2].Start != 25 {
		t.Fatalf("overlay slots unsorted: %+v", slots)
	}
	if len(sc.extra[9]) != 0 {
		t.Fatal("untouched link should be empty")
	}
	if len(sc.touched) != 1 || sc.touched[0] != 3 {
		t.Fatalf("touched=%v, want [3]", sc.touched)
	}
	sc.reset()
	if len(sc.extra[3]) != 0 || len(sc.touched) != 0 {
		t.Fatal("reset did not clear tentative reservations")
	}
}

func TestEvalMigrationMatchesCommit(t *testing.T) {
	// The locally evaluated finish time must match the actual finish time
	// after an (unguarded) commit when the task has no placed successors'
	// interference — true for the sink early on.
	en := exampleEngine(t)
	// Pick T5 (the OB task, a sink with a single pred on the pivot).
	ft, drt := en.evalMigration(4, 0, en.scratch[0])
	if drt <= 0 || ft <= drt {
		t.Fatalf("eval: ft=%v drt=%v", ft, drt)
	}
	en.applyMigration(4, 0)
	if got := en.s.Tasks[4].End; got != ft {
		t.Fatalf("committed FT=%v, eval predicted %v", got, ft)
	}
}

func TestBSAOnUniformSystemMatchesHomogeneous(t *testing.T) {
	// With all factors 1, pivot selection reduces to processor 0 and the
	// algorithm is the homogeneous BSA; sanity-check a small instance
	// against exhaustive reasoning: two independent tasks on two procs run
	// in parallel when comm is free.
	b := graph.NewBuilder()
	r := b.AddTask("r", 1)
	x := b.AddTask("x", 100)
	y := b.AddTask("y", 100)
	b.AddEdge(r, x, 0)
	b.AddEdge(r, y, 0)
	g, _ := b.Build()
	nw, _ := system.Line(2)
	sys := system.NewUniform(nw, 3, 2)
	res, err := Schedule(g, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Schedule.Length(); got != 101 {
		t.Errorf("SL=%v, want 101 (perfect split with free comm)", got)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}
