package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/schedule"
	"repro/sched/graph"
	"repro/sched/system"
)

// Options control BSA. The zero value is the paper's algorithm with seed 0.
type Options struct {
	// Seed drives the tie-breaking RNG used during critical-path selection
	// (the paper breaks CP ties randomly).
	Seed int64

	// DisableVIPFollow turns off the heuristic of migrating a task to the
	// neighbour hosting its VIP (the predecessor sending the latest
	// message) when no neighbour strictly improves its finish time.
	// Ablation knob.
	DisableVIPFollow bool

	// DisableRoutePruning keeps raw incremental routes instead of splicing
	// out loops. Ablation knob; the paper's routes are the pruned ones.
	DisableRoutePruning bool

	// DisableMigrationGuard turns off the global bubble-up check: by
	// default a committed migration whose rebuilt schedule is more than
	// GuardSlack longer than before is rolled back, since the paper's
	// local finish-time evaluation cannot see downstream effects on
	// successors (see DESIGN.md §3). Ablation knob.
	DisableMigrationGuard bool

	// GuardSlack is the relative schedule-length regression tolerated by
	// the migration guard. A small positive slack lets chain heads migrate
	// first (briefly lengthening the schedule until their successors
	// follow via the VIP rule) while still rejecting catastrophic moves;
	// the elitism pass restores the best state seen at the end, so slack
	// never worsens the final result. Zero means DefaultGuardSlack; use a
	// negative value for a strict no-regression guard.
	GuardSlack float64

	// MaxSweeps bounds how many breadth-first pivot sweeps run. The
	// paper's pseudocode describes a single sweep, but one sweep drains the
	// first pivot only once — it equilibrates with its direct neighbours
	// and stays overloaded, which contradicts the paper's measured results
	// (see DESIGN.md §3). We therefore iterate the sweep until no task
	// migrates, bounded by MaxSweeps. Zero means "until fixpoint"
	// (bounded by 4m as a safety net); 1 reproduces the literal
	// single-sweep pseudocode (ablation knob).
	MaxSweeps int

	// UseFullRebuild selects the original full-rebuild engine as a
	// correctness oracle: every committed migration reconstructs the whole
	// timeline, a guard rollback rebuilds once more, and every sweep
	// re-evaluates every (task, neighbour) candidate. The default
	// incremental engine re-derives only the dependency cone a migration
	// can affect, rolls back by restoring arena-saved ground truth, and
	// re-evaluates only the candidate rows a commit dirtied (see
	// DisableCandidateCache). Both engines produce byte-identical
	// schedules for identical seeds; the oracle exists for equivalence
	// tests and benchmarks.
	UseFullRebuild bool

	// DisableCandidateCache turns off the sweep-level candidate cache. By
	// default the incremental engine memoizes each task's candidate
	// evaluation (the finish times on its pivot's neighbours, reduced to
	// the migration decision's aggregates) and, after each kept commit,
	// invalidates only the rows whose task, predecessors, incoming
	// messages, candidate processors or connecting links the commit's
	// dependency cone touched — sweeps over equilibrated regions then cost
	// integer stamp compares instead of timeline walks. The cached and
	// uncached engines produce byte-identical schedules and identical
	// migration traces; only Result.Evaluations differs. Ablation knob;
	// ignored by the full-rebuild oracle, which never caches.
	DisableCandidateCache bool

	// RecordTrace makes Result.MigrationTrace record every commit attempt
	// in decision order (test and debugging aid; off by default because
	// the trace grows with the migration count).
	RecordTrace bool

	// Workers bounds the goroutines used to evaluate candidate processors
	// during a sweep. 0 means GOMAXPROCS; 1 forces fully sequential
	// evaluation. Candidate evaluations are pure functions of the current
	// engine state and are merged deterministically (lowest finish time,
	// ties to the earliest neighbour in BFS adjacency order), so the
	// resulting schedule is identical for every Workers value; only
	// Result.Evaluations varies, because the parallel path speculatively
	// batch-evaluates every candidate of a pivot and re-evaluates the rows
	// invalidated by a committed migration. With the candidate cache on
	// (the default) the pool instead prefetches the pivot's stale cached
	// rows in parallel before the decision loop (see prefetchRows); rows
	// a commit dirties mid-loop are still brought current one decision at
	// a time.
	Workers int

	// Backend selects the engine's schedule-state backend by name (see
	// backend.go): "soa" keeps slot state in structure-of-arrays form
	// with rank-keyed visibility so cone updates mutate only genuinely
	// changed placements; "reference" is the original lazily-stripped
	// Timeline implementation. Empty picks per topology (SoA on dense
	// networks where its no-strip sweeps win, reference elsewhere — see
	// defaultBackend). Every registered backend produces byte-identical
	// schedules (enforced by the backend conformance suite); the
	// full-rebuild oracle always runs on the reference backend regardless
	// of this setting.
	Backend string
}

// Result is the outcome of a BSA run.
type Result struct {
	Schedule *schedule.Schedule

	// InitialPivot is the processor that gave the shortest CP length.
	InitialPivot system.ProcID
	// PivotCPLength is that shortest CP length.
	PivotCPLength float64
	// Serial is the serialization order injected into the pivot, and
	// Partition the CP/IB/OB split of the critical path it was built on
	// (the seeded RNG breaks CP ties, so this is the run's own partition,
	// not a recomputation).
	Serial    []graph.TaskID
	Partition Partition

	// Migrations counts committed task migrations; Evaluations counts
	// tentative finish-time computations on neighbour processors; Sweeps
	// counts breadth-first pivot passes (the last one is always
	// migration-free).
	Migrations  int
	Evaluations int
	Sweeps      int
	// Rebuilds counts timeline (re)derivations and Placements the task
	// placements they performed; the incremental engine's cone updates
	// make Placements grow far slower than Rebuilds × tasks.
	Rebuilds   int
	Placements int
	// MsgPlacements counts message placements analogously.
	MsgPlacements int
	// Reverted counts migrations rolled back by the bubble-up guard.
	Reverted int
	// RestoredBest reports whether the final elitism pass had to rewind to
	// an earlier, shorter state.
	RestoredBest bool
	// CacheHits counts candidate rows served from the sweep-level cache
	// with zero re-evaluation, CachePartials rows refreshed by
	// re-evaluating only the entries a commit stamped, and CacheMisses
	// rows evaluated in full; all stay zero when the cache is off.
	CacheHits     int
	CachePartials int
	CacheMisses   int
	// MigrationTrace is the commit-attempt sequence, recorded only when
	// Options.RecordTrace is set.
	MigrationTrace []MigrationStep
	// DirtyTasks is the size of the warm start's reconvergence frontier
	// after adoption diffing; zero for cold runs (see RescheduleContext).
	DirtyTasks int
}

// MigrationStep is one commit attempt of the migration sweep: task moved
// (or tentatively moved) From -> To, and whether the guard kept it.
type MigrationStep struct {
	Task graph.TaskID
	From system.ProcID
	To   system.ProcID
	Kept bool
}

// Schedule runs the BSA algorithm on g over sys and returns a complete,
// validated-by-construction schedule. It errors on malformed inputs; with
// valid inputs it always produces a feasible schedule (there is no failure
// mode — in the worst case no task migrates off the initial pivot).
func Schedule(g *graph.Graph, sys *system.System, opt Options) (*Result, error) {
	return ScheduleContext(context.Background(), g, sys, opt)
}

// ScheduleContext is Schedule with cancellation: ctx is polled before
// every pivot of every migration sweep, so a canceled or expired context
// aborts a long run between two migration decisions and returns ctx.Err()
// (wrapped; test with errors.Is).
func ScheduleContext(ctx context.Context, g *graph.Graph, sys *system.System, opt Options) (*Result, error) {
	if err := sys.Validate(g.NumTasks(), g.NumEdges()); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if _, err := resolveBackend(opt.Backend, opt.UseFullRebuild, sys.Net); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	res := &Result{}
	if g.NumTasks() == 0 {
		res.Schedule = schedule.New(g, sys)
		return res, nil
	}

	// Stage 1: pivot selection.
	pivot0, cpLen := SelectPivot(g, sys)
	res.InitialPivot, res.PivotCPLength = pivot0, cpLen

	// Stage 2: serialization onto the pivot, using actual execution costs
	// there and nominal communication costs.
	exec := sys.ExecCostsOn(pivot0, g.NominalExecCosts())
	serial, part := SerializePartitioned(g, exec, nil, rng)
	res.Serial = serial
	res.Partition = part

	slack := opt.GuardSlack
	switch {
	case slack == 0:
		slack = DefaultGuardSlack
	case slack < 0:
		slack = 0
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	en := newEngine(g, sys, serial, pivot0, engineConfig{
		pruneRoutes:    !opt.DisableRoutePruning,
		guardSlack:     slack,
		backend:        opt.Backend,
		fullRebuild:    opt.UseFullRebuild,
		workers:        workers,
		candidateCache: !opt.DisableCandidateCache,
	})
	en.setContext(ctx)

	// Stage 3: breadth-first bubble migration, iterated to a fixpoint.
	maxSweeps := opt.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 4 * sys.Net.NumProcs()
	}
	bfs := sys.Net.BFSOrder(pivot0)
	stale := 0
	for sweep := 0; sweep < maxSweeps; sweep++ {
		migrationsBefore := res.Migrations
		bestBefore := en.bestLen
		res.Sweeps++
		if err := sweepOnce(ctx, en, sys, bfs, opt, res); err != nil {
			return nil, fmt.Errorf("core: after %d sweeps, %d migrations: %w",
				res.Sweeps, res.Migrations, err)
		}
		if res.Migrations == migrationsBefore {
			break // fixpoint: nothing moved
		}
		// VIP-following can shuffle tasks indefinitely; stop once two
		// consecutive sweeps fail to improve the best schedule seen.
		if en.bestLen >= bestBefore-cmpEps {
			stale++
			if stale >= 2 {
				break
			}
		} else {
			stale = 0
		}
	}

	// Elitism: migrations may have regressed within the guard slack; end on
	// the best state visited.
	if en.restoreBest() {
		res.RestoredBest = true
	}

	res.Evaluations = en.evaluations
	res.Rebuilds = en.rebuilds
	res.Placements = en.placements
	res.MsgPlacements = en.msgPlaces
	if en.cache != nil {
		res.CacheHits = en.cache.hits
		res.CachePartials = en.cache.partial
		res.CacheMisses = en.cache.misses
	}
	res.Schedule = en.finalSchedule()
	return res, nil
}

// DefaultGuardSlack is the default relative regression tolerance of the
// migration guard (see Options.GuardSlack).
const DefaultGuardSlack = 0.05

// vipSlack is the relative finish-time regression a task accepts when
// following its VIP to a neighbour. The paper's prose describes following
// the VIP even when the finish time "does not improve"; a bounded tolerance
// keeps that behaviour from chasing VIPs onto heavily congested processors
// (the migration guard and the final elitism pass bound the global damage
// either way).
const vipSlack = 0.0

// sweepOnce performs one breadth-first pivot pass: every processor in bfs
// order becomes the pivot, and each task residing on it is considered for
// migration to a neighbour.
//
// With the candidate cache on (the default), each task's cached candidate
// row is brought current before the decision: reused outright when no
// stamped dependency intersects it, patched entry-by-entry when only
// candidate timelines changed, and fully re-evaluated when the task's own
// inputs changed — a commit therefore re-evaluates only its dependency
// cone's rows and entries. With the cache off, candidate finish times for
// the whole pivot are speculatively batch-evaluated on the worker pool and
// a committed migration invalidates the remaining rows wholesale (the
// engine version check). Either way every decision sees exactly the values
// a fresh sequential evaluation would produce, so the schedule is
// identical for any worker count and cache setting. ctx is polled once per
// pivot; on cancellation the sweep stops and ctx.Err() is returned.
func sweepOnce(ctx context.Context, en *engine, sys *system.System, bfs []system.ProcID, opt Options, res *Result) error {
	for _, pivot := range bfs {
		if err := ctx.Err(); err != nil {
			return err
		}
		neighbors := sys.Net.Neighbors(pivot)
		if len(neighbors) == 0 {
			continue
		}
		tasks := en.tasksOn(pivot)
		if len(tasks) == 0 {
			continue
		}
		var batch [][]float64
		var batchVersion uint64
		if en.cache == nil {
			if cap(en.rowBuf) < len(neighbors) {
				en.rowBuf = make([]float64, len(neighbors))
			}
			batch = en.batchEval(tasks, neighbors)
			batchVersion = en.version
		} else {
			en.prefetchRows(tasks, pivot, neighbors)
		}
		for ti, t := range tasks {
			var bestFT, vipFT float64
			var bestY, vipY system.ProcID
			if en.cache != nil {
				en.ensureRow(t, pivot, neighbors)
				bestFT, bestY = en.cache.bestFT[t], en.cache.bestY[t]
				vipFT, vipY = en.cache.vipFT[t], en.cache.vipY[t]
			} else {
				row := en.rowBuf[:len(neighbors)]
				if batch != nil {
					row = batch[ti]
				}
				if batch == nil || en.version != batchVersion {
					en.evalRow(t, neighbors, row)
				}
				bestFT, bestY, vipFT, vipY = en.reduceRow(t, neighbors, row)
			}
			curFT := en.s.Tasks[t].End
			guard := !opt.DisableMigrationGuard
			switch {
			case bestY >= 0 && bestFT < curFT-cmpEps:
				// Strict improvement: bubble up.
				kept := en.commitMigration(t, bestY, guard)
				recordStep(opt, res, t, pivot, bestY, kept)
				if kept {
					res.Migrations++
				} else {
					res.Reverted++
				}
				if en.cancelErr != nil {
					// The bounded-interval poll inside the cone update saw
					// a canceled context; the slot state is torn, so abort
					// without another decision.
					return en.cancelErr
				}
			case !opt.DisableVIPFollow && vipY >= 0 && vipFT <= curFT*(1+vipSlack)+cmpEps:
				// No neighbour strictly improves the finish time, but the
				// VIP lives on one: follow it ("if the finish time does
				// not improve, a task will also migrate if its VIP is
				// scheduled to that neighbor"). Colocating with the VIP
				// removes the message's link crossing, relieving the
				// saturated links around the pivot and letting this task's
				// successors improve later; the migration guard still
				// reverts moves that regress the overall schedule.
				kept := en.commitMigration(t, vipY, guard)
				recordStep(opt, res, t, pivot, vipY, kept)
				if kept {
					res.Migrations++
				} else {
					res.Reverted++
				}
				if en.cancelErr != nil {
					return en.cancelErr
				}
			}
		}
	}
	return nil
}

// recordStep appends one commit attempt to the migration trace when
// Options.RecordTrace asks for it.
func recordStep(opt Options, res *Result, t graph.TaskID, from, to system.ProcID, kept bool) {
	if opt.RecordTrace {
		res.MigrationTrace = append(res.MigrationTrace, MigrationStep{Task: t, From: from, To: to, Kept: kept})
	}
}
