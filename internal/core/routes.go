package core

import (
	"repro/sched/graph"
	"repro/sched/system"
)

// routeArena stores every edge's link route as an (offset, length) view
// into one shared backing array instead of one heap slice per edge.
// Routes are immutable in place: every mutation writes a fresh copy at the
// arena tail and repoints the edge, so outstanding views of *other* edges
// stay valid across a mutation. Stale tail copies are reclaimed by
// maybeCompact once garbage outgrows the live routes, which keeps the
// steady-state migration path free of per-edge allocations.
type routeArena struct {
	buf  []system.LinkID
	off  []int32
	n    []int32
	live int // total links across live routes; len(buf)-live is garbage
}

func newRouteArena(numEdges int) *routeArena {
	return &routeArena{off: make([]int32, numEdges), n: make([]int32, numEdges)}
}

// route returns e's route as a view into the arena. The view is valid
// until the next mutation of e or call to maybeCompact.
func (ra *routeArena) route(e graph.EdgeID) []system.LinkID {
	if ra.n[e] == 0 {
		return nil
	}
	off, end := ra.off[e], ra.off[e]+ra.n[e]
	return ra.buf[off:end:end]
}

// clear empties e's route.
func (ra *routeArena) clear(e graph.EdgeID) {
	ra.live -= int(ra.n[e])
	ra.n[e] = 0
}

// set replaces e's route with a copy of r. r may alias this or another
// arena: append reads its source before growing the destination.
func (ra *routeArena) set(e graph.EdgeID, r []system.LinkID) {
	ra.live += len(r) - int(ra.n[e])
	if len(r) == 0 {
		ra.n[e] = 0
		return
	}
	off := len(ra.buf)
	ra.buf = append(ra.buf, r...)
	ra.off[e] = int32(off)
	ra.n[e] = int32(len(r))
}

// extend rewrites e's route as route(e)+[l] at the arena tail and returns
// the new view.
func (ra *routeArena) extend(e graph.EdgeID, l system.LinkID) []system.LinkID {
	old := ra.route(e)
	off := len(ra.buf)
	ra.buf = append(ra.buf, old...)
	ra.buf = append(ra.buf, l)
	ra.off[e] = int32(off)
	ra.n[e]++
	ra.live++
	return ra.buf[off:]
}

// prepend rewrites e's route as [l]+route(e) at the arena tail and returns
// the new view.
func (ra *routeArena) prepend(e graph.EdgeID, l system.LinkID) []system.LinkID {
	old := ra.route(e)
	off := len(ra.buf)
	ra.buf = append(ra.buf, l)
	ra.buf = append(ra.buf, old...)
	ra.off[e] = int32(off)
	ra.n[e]++
	ra.live++
	return ra.buf[off:]
}

// truncateTail shrinks e's route — which must be the most recent tail
// write — to its first k links, returning the trimmed space to the arena.
// Route normalization shortens in place, so the shrunken prefix is already
// e's content.
func (ra *routeArena) truncateTail(e graph.EdgeID, k int) {
	ra.live -= int(ra.n[e]) - k
	ra.n[e] = int32(k)
	ra.buf = ra.buf[:int(ra.off[e])+k]
}

// maybeCompact rewrites the live routes into a fresh dense buffer when
// garbage dominates. Callers must not hold route views across the call.
func (ra *routeArena) maybeCompact() {
	if len(ra.buf) <= 1024 || len(ra.buf) <= 4*ra.live {
		return
	}
	nb := make([]system.LinkID, 0, 2*ra.live)
	for e := range ra.off {
		if ra.n[e] == 0 {
			continue
		}
		off := len(nb)
		nb = append(nb, ra.route(graph.EdgeID(e))...)
		ra.off[e] = int32(off)
	}
	ra.buf = nb
}
