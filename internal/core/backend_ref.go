package core

import (
	"fmt"

	"repro/internal/schedule"
	"repro/sched/graph"
	"repro/sched/system"
)

func init() {
	registerBackend(BackendReference, func(en *engine) backend {
		return &refBackend{en: en}
	})
}

// refBackend is the reference schedule-state backend: slot state lives
// directly in the Schedule's insertion-sorted Timelines, placements mutate
// them through PlaceMessage/PlaceTaskEarliest, and the cone update strips
// timelines lazily and re-reserves undirtied placements verbatim. It is
// the original engine implementation and the semantics every other backend
// must reproduce byte-identically.
type refBackend struct {
	en *engine
}

// rebuild recomputes the full timeline state from (serial, assign, routes).
func (b *refBackend) rebuild() {
	b.en.s.Reset()
	b.en.placeFrom(0)
}

// finalize is a no-op: the Schedule's Timelines are the live state.
func (b *refBackend) finalize() {}

func (b *refBackend) procEarliestFit(p system.ProcID, ready, dur float64) float64 {
	return b.en.s.ProcTimeline(p).EarliestFit(ready, dur)
}

func (b *refBackend) linkEarliestFitWithExtra(l system.LinkID, ready, dur float64, extra []schedule.Slot) float64 {
	return b.en.s.LinkTimeline(l).EarliestFitWithExtra(ready, dur, extra)
}

// The event-driven incremental update.
//
// A full rebuild replays (serial, assign, routes) from scratch; its result
// for any item is a deterministic function of the placements of strictly
// earlier serial turns on the timelines the item touches. updateFrom
// exploits that: after a migration only the dependency cone of the moved
// task can change, so it processes a worklist of potentially affected
// items in serial-rank order and leaves everything else exactly where it
// is — no snapshot is needed, the schedule itself holds the placements.
//
// Timelines are stripped lazily: the first time a changed item needs to
// re-place onto a timeline at rank r, every not-yet-reprocessed slot of
// rank >= r is removed (and its owner queued), so earliest-fit sees
// precisely the state a full rebuild would see at that turn. Items whose
// inputs are unchanged and whose timelines were never dirtied keep (or,
// if stripped, re-reserve verbatim) their old placement. Dirtiness is
// tracked per timeline: content diverged from the old schedule, which
// forces later items on that timeline through real placement.
//
// The result is byte-identical to a full rebuild — asserted against the
// UseFullRebuild oracle by the equivalence property tests.

// stripProc drops every not-yet-reprocessed slot of rank >= rank from p's
// timeline and queues the owners (except self, the item being processed).
func (b *refBackend) stripProc(p system.ProcID, rank int, self graph.TaskID) {
	en := b.en
	if en.procStripped[p] == en.epoch {
		return
	}
	en.procStripped[p] = en.epoch
	en.procStripAt[p] = int64(rank)
	en.s.ProcTimeline(p).FilterOwners(func(owner int64) bool {
		t := graph.TaskID(owner)
		return en.pos[t] < rank || en.taskDone[t] == en.epoch
	}, func(owner int64) {
		if t := graph.TaskID(owner); t != self {
			en.queueTask(t)
		}
	})
}

// stripLink is stripProc for a link timeline (owners are message hops).
func (b *refBackend) stripLink(l system.LinkID, rank int, self graph.EdgeID) {
	en := b.en
	if en.linkStripped[l] == en.epoch {
		return
	}
	en.linkStripped[l] = en.epoch
	en.linkStripAt[l] = int64(rank)
	en.s.LinkTimeline(l).FilterOwners(func(owner int64) bool {
		e := schedule.MsgOwnerEdge(owner)
		return en.msgPos[e] < rank || en.msgDone[e] == en.epoch
	}, func(owner int64) {
		if e := schedule.MsgOwnerEdge(owner); e != self {
			en.queueMsg(e)
		}
	})
}

// updateFrom consumes the queued cone in serial-rank order: queued items
// only ever sit at the current rank or later, so a single pass over the
// pending-rank flags replaces a priority queue. Within one rank, messages
// go in In() order before the task, as in placeFrom.
func (b *refBackend) updateFrom(mig graph.TaskID) {
	en := b.en
	n := len(en.serial)
	for rank := en.pos[mig]; rank < n && en.pending > 0; rank++ {
		if en.rankPending[rank] != en.epoch {
			continue
		}
		u := en.serial[rank]
		in := en.g.In(u)
	restart:
		for i := 0; i < len(in); i++ {
			e := in[i]
			if en.msgQueued[e] != en.epoch || en.msgDone[e] == en.epoch {
				continue
			}
			if b.processMsg(e, rank) {
				// Stripping surfaced an equal-rank sibling with an
				// earlier In() position; replay the rank in order.
				goto restart
			}
			en.pending--
			if en.pollCancel() {
				return
			}
		}
		if en.taskQueued[u] == en.epoch && en.taskDone[u] != en.epoch {
			b.processTask(u, rank)
			en.pending--
			if en.pollCancel() {
				return
			}
		}
	}
}

// processMsg handles one message turn of the update; it reports whether
// the message must be requeued because stripping surfaced an equal-rank
// sibling with an earlier In() position.
func (b *refBackend) processMsg(e graph.EdgeID, rank int) (requeue bool) {
	en := b.en
	edge := en.g.Edge(e)
	dirty := edge.From == en.migTask || edge.To == en.migTask ||
		en.taskChanged[edge.From] == en.epoch
	if !dirty {
		for _, l := range en.routes.route(e) {
			if en.linkDirtied[l] == en.epoch {
				dirty = true
				break
			}
		}
	}
	sm := &en.s.Msgs[e]
	if !dirty {
		// Placement unchanged; re-reserve any hop a strip dropped.
		for h := range sm.Hops {
			hop := &sm.Hops[h]
			l := hop.Link
			if en.linkStripped[l] == en.epoch && int64(rank) >= en.linkStripAt[l] {
				if err := en.s.LinkTimeline(l).ReserveExact(hop.Start, hop.End, schedule.MsgOwner(e, h)); err != nil {
					panic(fmt.Sprintf("core: update restore message %d: %v", e, err))
				}
			}
		}
		en.msgDone[e] = en.epoch
		return false
	}
	for _, hop := range sm.Hops {
		b.stripLink(hop.Link, rank, e)
	}
	for _, l := range en.routes.route(e) {
		b.stripLink(l, rank, e)
	}
	for _, e2 := range en.g.In(edge.To)[:en.inIndex[e]] {
		if en.msgQueued[e2] == en.epoch && en.msgDone[e2] != en.epoch {
			return true
		}
	}
	en.msgPlaces++
	oldArr := sm.Arrival
	en.oldHops = append(en.oldHops[:0], sm.Hops...)
	sm.Hops = sm.Hops[:0]
	sm.Arrival = 0
	sm.Placed = false
	arr, err := en.s.PlaceMessage(e, en.routes.route(e))
	if err != nil {
		panic(fmt.Sprintf("core: update message %d: %v", e, err))
	}
	hopsChanged := !hopsEqual(en.s.Msgs[e].Hops, en.oldHops)
	if hopsChanged {
		for i := range en.oldHops {
			en.markLinkDirty(en.oldHops[i].Link)
		}
		for _, hop := range en.s.Msgs[e].Hops {
			en.markLinkDirty(hop.Link)
		}
	}
	if arr != oldArr {
		en.drtTouched[edge.To] = en.epoch
		en.queueTask(edge.To)
	}
	if en.cache != nil && (hopsChanged || arr != oldArr) {
		// Each message is re-placed at most once per update (msgDone), so
		// the change list needs no dedup.
		en.cache.updMsgs = append(en.cache.updMsgs, e)
	}
	en.msgDone[e] = en.epoch
	return false
}

// processTask handles one task turn of the update.
func (b *refBackend) processTask(u graph.TaskID, rank int) {
	en := b.en
	st := &en.s.Tasks[u]
	dirty := u == en.migTask || en.drtTouched[u] == en.epoch ||
		en.procDirtied[en.assign[u]] == en.epoch
	if !dirty {
		p := st.Proc
		if en.procStripped[p] == en.epoch && int64(rank) >= en.procStripAt[p] {
			if err := en.s.ProcTimeline(p).ReserveExact(st.Start, st.End, schedule.TaskOwner(u)); err != nil {
				panic(fmt.Sprintf("core: update restore task %d: %v", u, err))
			}
		}
		en.taskDone[u] = en.epoch
		return
	}
	old := *st
	b.stripProc(old.Proc, rank, u)
	b.stripProc(en.assign[u], rank, u)
	var drt float64
	for _, e := range en.g.In(u) {
		if a := en.s.Msgs[e].Arrival; a > drt {
			drt = a
		}
	}
	*st = schedule.TaskSlot{}
	en.placements++
	if _, err := en.s.PlaceTaskEarliest(u, en.assign[u], drt); err != nil {
		panic(fmt.Sprintf("core: update task %d: %v", u, err))
	}
	if *st != old {
		en.markProcDirty(old.Proc)
		en.markProcDirty(st.Proc)
		en.taskChanged[u] = en.epoch
		if st.End > en.updEndMax {
			en.updEndMax, en.updEndArg = st.End, u
		}
		if en.cache != nil {
			// taskChanged is set in exactly this one place, at most once
			// per task per update, so the list needs no dedup.
			en.cache.updTasks = append(en.cache.updTasks, u)
		}
		for _, e := range en.g.Out(u) {
			en.queueMsg(e)
		}
	}
	en.taskDone[u] = en.epoch
}
