package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/sched/gen"
	"repro/sched/graph"
	"repro/sched/system"
)

// cacheTopologies are the four topology families of the paper's
// evaluation, at a size suitable for property testing.
func cacheTopologies(rng *rand.Rand) map[string]*system.Network {
	build := func(nw *system.Network, err error) *system.Network {
		if err != nil {
			panic(err)
		}
		return nw
	}
	return map[string]*system.Network{
		"ring": build(system.Ring(8)),
		"cube": build(system.Hypercube(3)),
		"full": build(system.FullyConnected(8)),
		"rand": build(system.RandomConnected(8, 1, 8, rng)),
	}
}

// TestCandidateCacheEquivalence is the cache's invalidation property test:
// across regular and random graph families, all four topology families and
// heterogeneity on/off, the cached engine must produce a byte-identical
// serialized schedule AND an identical step-by-step migration trace to the
// uncached engine. A single wrongly-kept cache row would divert the trace
// at the first affected decision, so trace equality localizes invalidation
// bugs far better than end-state checks.
func TestCandidateCacheEquivalence(t *testing.T) {
	for _, kind := range []gen.Kind{gen.GaussElim, gen.Random} {
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(seed*31 + int64(kind)))
			g, err := gen.Generate(gen.Spec{Kind: kind, Size: 45, Granularity: 1.0}, rng)
			if err != nil {
				t.Fatal(err)
			}
			for name, nw := range cacheTopologies(rng) {
				for _, heterogeneous := range []bool{false, true} {
					label := fmt.Sprintf("kind=%v seed=%d topo=%s hetero=%v", kind, seed, name, heterogeneous)
					var sys *system.System
					if heterogeneous {
						sys, err = system.NewRandom(nw, g.NumTasks(), g.NumEdges(), 1, 25, rand.New(rand.NewSource(seed)))
						if err != nil {
							t.Fatal(err)
						}
					} else {
						sys = system.NewUniform(nw, g.NumTasks(), g.NumEdges())
					}
					on, err := Schedule(g, sys, Options{Seed: seed, RecordTrace: true})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					off, err := Schedule(g, sys, Options{Seed: seed, RecordTrace: true, DisableCandidateCache: true})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					assertTracesIdentical(t, label, on, off)
					assertSerializedIdentical(t, label, on, off)
				}
			}
		}
	}
}

// assertTracesIdentical fails unless both runs attempted exactly the same
// migrations in the same order with the same guard outcomes.
func assertTracesIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.MigrationTrace) != len(b.MigrationTrace) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(a.MigrationTrace), len(b.MigrationTrace))
	}
	for i := range a.MigrationTrace {
		if a.MigrationTrace[i] != b.MigrationTrace[i] {
			t.Fatalf("%s: trace diverges at step %d: %+v vs %+v", label, i, a.MigrationTrace[i], b.MigrationTrace[i])
		}
	}
}

// assertSerializedIdentical fails unless both schedules serialize to the
// same bytes — placement-for-placement, hop-for-hop equality.
func assertSerializedIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	aj, err := a.Schedule.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.Schedule.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("%s: serialized schedules differ (%d vs %d bytes)", label, len(aj), len(bj))
	}
}

// TestCandidateCacheCountsConsistent checks the cache's bookkeeping: every
// pivot-visit decision is classified exactly once, and a cache-on run
// reports the evaluations its misses and partial refreshes performed.
func TestCandidateCacheCountsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnectedDAG(rng, 60, 0.12)
	sys := randomSystem(t, rng, g, 6)
	// Workers pinned to 1: the parallel paths (batchEval, prefetchRows)
	// evaluate speculatively, so Result.Evaluations is only comparable
	// between runs when both are fully sequential.
	on, err := Schedule(g, sys, Options{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if on.CacheMisses == 0 {
		t.Fatal("a fresh run must miss at least once per task visited")
	}
	off, err := Schedule(g, sys, Options{Seed: 7, Workers: 1, DisableCandidateCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.CacheHits != 0 || off.CachePartials != 0 || off.CacheMisses != 0 {
		t.Fatalf("cache-off run reported cache traffic: %+v", off)
	}
	if on.Evaluations > off.Evaluations {
		t.Fatalf("cache increased evaluations: %d > %d", on.Evaluations, off.Evaluations)
	}
}

// TestCachedFixpointSweepServesAllRows drives a run to its fixpoint and
// then replays one more sweep by hand: with no commits in between, every
// row the sweep consults must be served from the cache (all hits, zero
// evaluations) — the O(dirty) property with an empty dirty set.
func TestCachedFixpointSweepServesAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnectedDAG(rng, 50, 0.15)
	sys := randomSystem(t, rng, g, 5)
	en, bfs, opt := fixpointEngine(t, g, sys)
	res := &Result{}
	hits, evals := en.cache.hits, en.evaluations
	if err := sweepOnce(context.Background(), en, sys, bfs, opt, res); err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Fatalf("fixpoint sweep migrated %d tasks", res.Migrations)
	}
	if en.evaluations != evals {
		t.Fatalf("fixpoint sweep evaluated %d candidates, want 0", en.evaluations-evals)
	}
	if en.cache.hits == hits {
		t.Fatal("fixpoint sweep served no cached rows")
	}
}

// TestRouteArena exercises the offset/length arena directly: set, clear,
// extend, prepend, tail truncation and compaction.
func TestRouteArena(t *testing.T) {
	ra := newRouteArena(3)
	if got := ra.route(0); got != nil {
		t.Fatalf("fresh arena route = %v", got)
	}
	ra.set(0, []system.LinkID{1, 2, 3})
	ra.set(1, []system.LinkID{4})
	if got := ra.route(0); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("route(0) = %v", got)
	}
	r := ra.extend(1, 5)
	if len(r) != 2 || r[0] != 4 || r[1] != 5 {
		t.Fatalf("extend = %v", r)
	}
	r = ra.prepend(1, 6)
	if len(r) != 3 || r[0] != 6 || r[1] != 4 || r[2] != 5 {
		t.Fatalf("prepend = %v", r)
	}
	ra.truncateTail(1, 1)
	if got := ra.route(1); len(got) != 1 || got[0] != 6 {
		t.Fatalf("after truncateTail: %v", got)
	}
	if got := ra.route(0); len(got) != 3 || got[0] != 1 {
		t.Fatalf("route(0) disturbed: %v", got)
	}
	ra.clear(0)
	if got := ra.route(0); got != nil {
		t.Fatalf("cleared route = %v", got)
	}
	if ra.live != 1 {
		t.Fatalf("live = %d, want 1", ra.live)
	}
	// Self-aliasing set must be safe.
	ra.set(1, ra.route(1))
	if got := ra.route(1); len(got) != 1 || got[0] != 6 {
		t.Fatalf("self-set route = %v", got)
	}
	// Force garbage past the compaction threshold and verify contents
	// survive.
	big := make([]system.LinkID, 200)
	for i := range big {
		big[i] = system.LinkID(i)
	}
	for i := 0; i < 50; i++ {
		ra.set(2, big)
	}
	ra.maybeCompact()
	if len(ra.buf) >= 50*len(big) {
		t.Fatalf("compaction did not shrink the arena: len=%d live=%d", len(ra.buf), ra.live)
	}
	if got := ra.route(2); len(got) != 200 || got[199] != 199 {
		t.Fatalf("route(2) corrupted by compaction")
	}
	if got := ra.route(1); len(got) != 1 || got[0] != 6 {
		t.Fatalf("route(1) corrupted by compaction: %v", got)
	}
}

// TestRouteNormalizerMatchesNormalizeRoute checks the in-place normalizer
// against the allocating reference on random walks.
func TestRouteNormalizerMatchesNormalizeRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nw, err := system.RandomConnected(9, 2, 14, rng)
	if err != nil {
		t.Fatal(err)
	}
	rn := system.NewRouteNormalizer(nw.NumProcs())
	for trial := 0; trial < 500; trial++ {
		src := system.ProcID(rng.Intn(nw.NumProcs()))
		p := src
		walk := make([]system.LinkID, rng.Intn(12))
		for i := range walk {
			adj := nw.Neighbors(p)
			a := adj[rng.Intn(len(adj))]
			walk[i] = a.Link
			p = a.Proc
		}
		want := system.NormalizeRoute(nw, src, append([]system.LinkID(nil), walk...))
		got := rn.Normalize(nw, src, append([]system.LinkID(nil), walk...))
		if len(want) != len(got) {
			t.Fatalf("trial %d: len %d vs %d (walk %v)", trial, len(got), len(want), walk)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: %v vs %v (walk %v)", trial, got, want, walk)
			}
		}
	}
}

// fixpointEngine runs BSA to its migration fixpoint and returns the live
// engine plus everything needed to replay sweeps by hand.
func fixpointEngine(t testing.TB, g *graph.Graph, sys *system.System) (*engine, []system.ProcID, Options) {
	t.Helper()
	opt := Options{Workers: 1}
	rng := rand.New(rand.NewSource(opt.Seed))
	pivot0, _ := SelectPivot(g, sys)
	exec := sys.ExecCostsOn(pivot0, g.NominalExecCosts())
	serial, _ := SerializePartitioned(g, exec, nil, rng)
	en := newEngine(g, sys, serial, pivot0, engineConfig{
		pruneRoutes:    true,
		guardSlack:     DefaultGuardSlack,
		workers:        1,
		candidateCache: true,
	})
	bfs := sys.Net.BFSOrder(pivot0)
	for sweep := 0; sweep < 4*sys.Net.NumProcs(); sweep++ {
		res := &Result{}
		if err := sweepOnce(context.Background(), en, sys, bfs, opt, res); err != nil {
			t.Fatal(err)
		}
		if res.Migrations == 0 {
			return en, bfs, opt
		}
	}
	t.Fatal("no fixpoint reached")
	return nil, nil, opt
}
