// Schedule-state backends: the engine's mutable timeline state sits behind
// a narrow internal interface so alternative layouts can compete without
// another oracle-equivalence odyssey. The ground truth (serial, assign,
// routes) and the derived per-item placements (s.Tasks, s.Msgs) stay on
// the engine/Schedule; a backend owns only the *slot* state — who occupies
// each processor and link when — and the operations the engine needs from
// it:
//
//   - rebuild: derive all slot state from scratch (cold start, elitism
//     restore, oracle commits).
//   - updateFrom: the event-driven cone update after one migration.
//   - procEarliestFit / linkEarliestFitWithExtra: the read-only fit
//     queries candidate evaluation issues between updates.
//   - finalize: materialize the slot state into the Schedule's Timelines
//     (validation, rendering and the Gantt renderer read those).
//
// Every backend must produce byte-identical schedules to the full-rebuild
// oracle; the conformance suite (backend_conformance_test.go) asserts this
// for every registered backend, cold and warm-started.

package core

import (
	"fmt"
	"sort"

	"repro/internal/schedule"
	"repro/sched/graph"
	"repro/sched/system"
)

// backend is the engine's schedule-state interface.
type backend interface {
	// rebuild derives the complete slot state from the engine's current
	// (serial, assign, routes), replacing whatever was there.
	rebuild()
	// updateFrom re-derives the slot state after a migration of mig,
	// processing only the migration's dependency cone. It must update
	// en.s.Tasks/en.s.Msgs, the epoch-stamped dirty flags and the
	// candidate cache change lists exactly as a full rebuild diff would.
	updateFrom(mig graph.TaskID)
	// procEarliestFit returns the earliest start >= ready at which dur
	// units fit on processor p, identical to Timeline.EarliestFit on the
	// current slot state.
	procEarliestFit(p system.ProcID, ready, dur float64) float64
	// linkEarliestFitWithExtra is procEarliestFit for link l, additionally
	// avoiding the tentative slots in extra (sorted by start).
	linkEarliestFitWithExtra(l system.LinkID, ready, dur float64, extra []schedule.Slot) float64
	// finalize materializes the slot state into en.s's Timelines. It must
	// be idempotent and callable at any point between updates.
	finalize()
}

// backendFactory builds a backend bound to an engine whose shared arrays
// (pos, msgPos, inIndex, queue flags) are already allocated.
type backendFactory func(en *engine) backend

var backendRegistry = map[string]backendFactory{}

// registerBackend registers a backend under name; the conformance suite
// runs every registered backend against the oracle.
func registerBackend(name string, f backendFactory) {
	if _, dup := backendRegistry[name]; dup {
		panic(fmt.Sprintf("core: duplicate backend %q", name))
	}
	backendRegistry[name] = f
}

// backendNames returns the registered backend names, sorted for
// deterministic test iteration.
func backendNames() []string {
	names := make([]string, 0, len(backendRegistry))
	for n := range backendRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Backend names. The reference backend operates directly on the
// Schedule's insertion-sorted Timelines; the SoA backend keeps slot state
// in structure-of-arrays form with rank-keyed visibility (see
// backend_soa.go). The full-rebuild oracle always uses the reference
// backend; defaultBackend picks per topology when Options.Backend is
// empty.
const (
	BackendReference = "reference"
	BackendSoA       = "soa"
)

// soaDensityThreshold is the link-density cutoff above which the SoA
// backend is the default. The two backends trade exactly on slots per
// link timeline: SoA never strips, so its visibility-filtered fit scans
// walk over invisible slots, which is cheap when each link carries a
// handful of hops (dense networks route in one hop across many links —
// measured ~25% faster than reference on full=16/full=32 at n=500) and
// dominates runtime when few links carry every multi-hop route (measured
// ~30% slower on ring=16, where 16 links hold ~5k hops). Density — links
// as a fraction of the complete graph's — is a static, cost-free proxy
// for that ratio: 1.0 for fully connected, 0.27 for hypercube-16, 0.13
// for ring-16.
const soaDensityThreshold = 0.75

// defaultBackend picks the backend for a network when the caller did not
// force one: SoA on dense (short-route, many-link) networks, reference
// elsewhere. Options.Backend overrides; conformance keeps both
// byte-identical, so the choice is purely a speed trade.
func defaultBackend(net *system.Network) string {
	p := net.NumProcs()
	if p < 2 {
		return BackendReference
	}
	density := 2 * float64(net.NumLinks()) / (float64(p) * float64(p-1))
	if density >= soaDensityThreshold {
		return BackendSoA
	}
	return BackendReference
}

// resolveBackend maps an Options.Backend value to a registered factory.
func resolveBackend(name string, fullRebuild bool, net *system.Network) (string, error) {
	if fullRebuild {
		// The oracle rebuilds whole timelines each commit; it exists to be
		// the trivially-correct comparison point, so it stays on the
		// reference layout regardless of the requested backend.
		return BackendReference, nil
	}
	if name == "" {
		return defaultBackend(net), nil
	}
	if _, ok := backendRegistry[name]; !ok {
		return "", fmt.Errorf("unknown backend %q (have %v)", name, backendNames())
	}
	return name, nil
}

// Processing-order keys. The cone update consumes work in serial-rank
// order; within a rank, a task's incoming messages go in In() order before
// the task itself. A single int64 key encodes that order so the SoA
// backend can compare "does this slot belong to an item processed before
// the one being placed" with one integer compare:
//
//	message hop of edge e: rank(dest)<<20 | In-index of e
//	task:                  rank<<20       | taskKeyTag
//
// In-index fits 20 bits for the same reason hop indices do in
// schedule.MsgOwner (a task with 2^20 predecessors is far beyond any
// supported graph).
const taskKeyTag = 0xFFFFF

func msgItemKey(rank int, inIdx int32) int64 { return int64(rank)<<20 | int64(inIdx) }
func taskItemKey(rank int) int64             { return int64(rank)<<20 | taskKeyTag }
