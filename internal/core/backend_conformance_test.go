package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/sched/graph"
	"repro/sched/system"
)

// The backend conformance suite: every registered schedule-state backend
// must produce byte-identical schedules AND byte-identical migration
// traces to the full-rebuild oracle, from both entry points (cold
// Schedule and warm Reschedule), under every worker count and cache
// setting, and must unwind cleanly when canceled mid-cone-update.

// TestBackendConformanceMatrix runs the oracle-equivalence matrix against
// every registered backend: same schedule, same trajectory, same
// commit-attempt trace, for sequential and parallel evaluation with the
// candidate cache on and off.
func TestBackendConformanceMatrix(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedDAG(rng, 20+int(seed)*8, 0.12)
		sys := randomSystem(t, rng, g, 3+int(seed))
		oracle, err := Schedule(g, sys, Options{Seed: seed, UseFullRebuild: true, Workers: 1, RecordTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, be := range backendNames() {
			for _, opt := range []Options{
				{Seed: seed, Backend: be, Workers: 1, RecordTrace: true},
				{Seed: seed, Backend: be, Workers: 4, RecordTrace: true},
				{Seed: seed, Backend: be, Workers: 1, DisableCandidateCache: true, RecordTrace: true},
				{Seed: seed, Backend: be, Workers: 4, DisableCandidateCache: true, RecordTrace: true},
			} {
				label := fmt.Sprintf("seed=%d backend=%s workers=%d cache=%v",
					seed, be, opt.Workers, !opt.DisableCandidateCache)
				r, err := Schedule(g, sys, opt)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				assertSchedulesIdentical(t, label, oracle, r)
				assertTracesIdentical(t, label, oracle, r)
			}
		}
	}
}

// warmFromCold adopts a cold run's result as a warm-start ground truth.
func warmFromCold(cold *Result, dirty []graph.TaskID) WarmStart {
	warm := WarmStart{
		Serial: cold.Serial,
		Assign: make([]system.ProcID, len(cold.Schedule.Tasks)),
		Routes: make([][]system.LinkID, len(cold.Schedule.Msgs)),
		Dirty:  dirty,
	}
	for i := range cold.Schedule.Tasks {
		warm.Assign[i] = cold.Schedule.Tasks[i].Proc
	}
	for e := range cold.Schedule.Msgs {
		for _, h := range cold.Schedule.Msgs[e].Hops {
			warm.Routes[e] = append(warm.Routes[e], h.Link)
		}
	}
	return warm
}

// TestBackendConformanceWarmStart checks the warm-start entry point: every
// backend reconverging from the same adopted ground truth and dirty
// frontier must produce byte-identical schedules and traces, sequentially
// and in parallel.
func TestBackendConformanceWarmStart(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		g := randomConnectedDAG(rng, 40, 0.12)
		sys := randomSystem(t, rng, g, 5)
		cold, err := Schedule(g, sys, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// Dirty a deterministic spread of tasks so reconvergence has real
		// work at several ranks.
		var dirty []graph.TaskID
		for i := 0; i < g.NumTasks(); i += 3 {
			dirty = append(dirty, graph.TaskID(i))
		}
		warm := warmFromCold(cold, dirty)
		var base *Result
		for _, be := range backendNames() {
			for _, workers := range []int{1, 4} {
				label := fmt.Sprintf("seed=%d backend=%s workers=%d", seed, be, workers)
				r, err := Reschedule(g, sys, warm, Options{Backend: be, Workers: workers, RecordTrace: true})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if base == nil {
					base = r
					continue
				}
				assertSchedulesIdentical(t, label, base, r)
				assertTracesIdentical(t, label, base, r)
			}
		}
	}
}

// countdownCtx is a context whose Err() flips to Canceled after a fixed
// number of polls, so cancellation lands at a deterministic point inside
// the run — including between items of a single cone update, which is
// exactly the window the bounded-interval polling exists for.
type countdownCtx struct {
	context.Context
	mu    sync.Mutex
	calls int
	limit int
	err   error
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.calls++
	if c.calls >= c.limit {
		c.err = context.Canceled
	}
	return c.err
}

// TestBackendCancelMidUpdate sweeps the cancellation point across the run
// for every backend: each countdown either cancels the run — which must
// surface context.Canceled without panicking, even when the cut lands
// between two timeline mutations of one cone update — or never fires, in
// which case the result must be byte-identical to the uncanceled run.
func TestBackendCancelMidUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomConnectedDAG(rng, 120, 0.1)
	sys := randomSystem(t, rng, g, 6)
	for _, be := range backendNames() {
		opt := Options{Seed: 9, Backend: be, Workers: 1}
		baseline, err := Schedule(g, sys, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, limit := range []int{1, 2, 3, 5, 10, 50, 1 << 30} {
			ctx := &countdownCtx{Context: context.Background(), limit: limit}
			r, err := ScheduleContext(ctx, g, sys, opt)
			label := fmt.Sprintf("backend=%s limit=%d", be, limit)
			switch {
			case err != nil:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s: got error %v, want context.Canceled", label, err)
				}
				if r != nil {
					t.Fatalf("%s: canceled run returned a result", label)
				}
			default:
				assertSchedulesIdentical(t, label, baseline, r)
			}
		}
	}
}

// TestBackendCancelMidUpdateWarm is the warm-start variant: the
// reconvergence loop and its cone updates must also unwind cleanly.
func TestBackendCancelMidUpdateWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randomConnectedDAG(rng, 100, 0.1)
	sys := randomSystem(t, rng, g, 5)
	cold, err := Schedule(g, sys, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var dirty []graph.TaskID
	for i := 0; i < g.NumTasks(); i += 2 {
		dirty = append(dirty, graph.TaskID(i))
	}
	warm := warmFromCold(cold, dirty)
	for _, be := range backendNames() {
		opt := Options{Backend: be, Workers: 1}
		baseline, err := Reschedule(g, sys, warm, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, limit := range []int{1, 2, 3, 5, 10, 50, 1 << 30} {
			ctx := &countdownCtx{Context: context.Background(), limit: limit}
			r, err := RescheduleContext(ctx, g, sys, warm, opt)
			label := fmt.Sprintf("backend=%s limit=%d", be, limit)
			switch {
			case err != nil:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s: got error %v, want context.Canceled", label, err)
				}
				if r != nil {
					t.Fatalf("%s: canceled run returned a result", label)
				}
			default:
				assertSchedulesIdentical(t, label, baseline, r)
			}
		}
	}
}

// TestWarmFrontierArrivalShiftPropagates pins the dirty-frontier expansion
// against a specific hazard: a commit that shifts a message's *arrival*
// without moving the receiving task's slot. The receiver re-derives
// identically this update (another in-edge dominates its data-ready time),
// so it never enters updTasks — but its migration decision inputs changed,
// so the frontier expansion must still mark it via the message change
// list. A frontier that only follows moved tasks would silently leave the
// receiver stale.
func TestWarmFrontierArrivalShiftPropagates(t *testing.T) {
	// D feeds R over a long cross-link message that dominates R's
	// data-ready time; A feeds B feeds R on a side chain. Migrating A to a
	// processor where it runs slower pushes B later, shifting the
	// intra-processor B->R arrival — while R's slot, pinned by D->R, does
	// not move.
	b := graph.NewBuilder()
	tD := b.AddTask("D", 10)
	tA := b.AddTask("A", 2)
	tB := b.AddTask("B", 1)
	tR := b.AddTask("R", 1)
	eAB := b.AddEdge(tA, tB, 1)
	eBR := b.AddEdge(tB, tR, 1)
	eDR := b.AddEdge(tD, tR, 50)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nw, err := system.FullyConnected(4)
	if err != nil {
		t.Fatal(err)
	}
	const p0, p1, p2, p3 = system.ProcID(0), system.ProcID(1), system.ProcID(2), system.ProcID(3)
	sys := system.NewUniform(nw, g.NumTasks(), g.NumEdges())
	sys.Exec[tA][p2] = 2 // A runs 2x slower on P2: migrating it there moves B's start

	l01, ok := nw.LinkBetween(p0, p1)
	if !ok {
		t.Fatal("no link P0-P1")
	}
	l31, ok := nw.LinkBetween(p3, p1)
	if !ok {
		t.Fatal("no link P3-P1")
	}
	serial := []graph.TaskID{tD, tA, tB, tR}
	assign := []system.ProcID{p3, p0, p1, p1}
	routes := make([][]system.LinkID, g.NumEdges())
	routes[eAB] = []system.LinkID{l01}
	routes[eBR] = nil // intra-processor
	routes[eDR] = []system.LinkID{l31}

	for _, be := range backendNames() {
		en := newWarmEngine(g, sys, serial, assign, routes, engineConfig{
			pruneRoutes:    true,
			guardSlack:     DefaultGuardSlack,
			backend:        be,
			workers:        1,
			candidateCache: true,
		})
		oldR := en.s.Tasks[tR]
		oldArr := en.s.Msgs[eBR].Arrival
		if !en.commitMigration(tA, p2, false) {
			t.Fatalf("backend=%s: unguarded migration not kept", be)
		}
		if en.s.Msgs[eBR].Arrival == oldArr {
			t.Fatalf("backend=%s: test shape broken: B->R arrival did not shift", be)
		}
		if len(en.s.Msgs[eBR].Hops) != 0 {
			t.Fatalf("backend=%s: test shape broken: B->R grew hops", be)
		}
		if en.s.Tasks[tR] != oldR {
			t.Fatalf("backend=%s: test shape broken: R's slot moved: %+v -> %+v", be, oldR, en.s.Tasks[tR])
		}
		for _, u := range en.cache.updTasks {
			if u == tR {
				t.Fatalf("backend=%s: test shape broken: R entered updTasks", be)
			}
		}
		ds := newDirtySet(g.NumTasks())
		ds.expand(en)
		if !ds.flag[tR] {
			t.Fatalf("backend=%s: arrival-shifted receiver R not marked dirty by frontier expansion", be)
		}
	}
}
