// Package core implements the paper's contribution: the BSA (Bubble
// Scheduling and Allocation) algorithm for link contention-constrained
// scheduling and mapping of tasks and messages onto a network of
// heterogeneous processors.
//
// BSA proceeds in three stages:
//
//  1. Pivot selection — the processor giving the shortest critical-path
//     length under its actual execution costs becomes the first pivot.
//  2. Serialization — all tasks are injected into the pivot in a serial
//     order centred on the critical path (CP tasks as early as possible,
//     in-branch tasks inserted before the CP task needing them, out-branch
//     tasks appended by descending b-level).
//  3. Bubble migration — processors are visited in breadth-first order from
//     the first pivot; each task on the pivot migrates to a neighbour if
//     that improves (or, when its VIP sits there, preserves) its finish
//     time. Messages are incrementally scheduled onto the links crossed by
//     migrations, so routes emerge without a routing table.
package core

import (
	"math/rand"
	"sort"

	"repro/sched/graph"
	"repro/sched/system"
)

// SelectPivot returns the processor on which the graph's critical-path
// length — actual execution costs on that processor plus nominal
// communication costs — is shortest, together with that length. Ties go to
// the smaller processor ID.
func SelectPivot(g *graph.Graph, sys *system.System) (system.ProcID, float64) {
	nominal := g.NominalExecCosts()
	best := system.ProcID(0)
	bestLen := 0.0
	for p := 0; p < sys.Net.NumProcs(); p++ {
		exec := sys.ExecCostsOn(system.ProcID(p), nominal)
		l := graph.CPLength(g, exec, nil)
		if p == 0 || l < bestLen-cmpEps {
			best, bestLen = system.ProcID(p), l
		}
	}
	return best, bestLen
}

// cmpEps absorbs floating-point noise in time and length comparisons.
const cmpEps = 1e-9

// Serialize returns the BSA serial order of the tasks under the given
// execution costs (normally the actual costs on the first pivot) and
// per-edge communication costs (nil means nominal).
//
// The order is a linear extension of the precedence relation: critical-path
// tasks occupy the earliest possible positions, each preceded by its still
// missing ancestors (in-branch tasks, larger b-level first, ties by smaller
// t-level then smaller ID), and the remaining out-branch tasks follow in
// descending b-level order.
func Serialize(g *graph.Graph, exec, comm []float64, rng *rand.Rand) []graph.TaskID {
	order, _ := SerializePartitioned(g, exec, comm, rng)
	return order
}

// SerializePartitioned is Serialize returning also the CP/IB/OB partition
// of the critical path actually selected (rng breaks CP ties, so a
// separately recomputed partition could describe a different path than
// the serial order; this one is the serialization's own).
func SerializePartitioned(g *graph.Graph, exec, comm []float64, rng *rand.Rand) ([]graph.TaskID, Partition) {
	n := g.NumTasks()
	if n == 0 {
		return nil, Partition{}
	}
	tl := graph.TLevels(g, exec, comm)
	bl := graph.BLevels(g, exec, comm)
	cp := graph.CriticalPath(g, exec, comm, rng)
	part := partitionFromCP(g, cp)

	inOrder := make([]bool, n)
	order := make([]graph.TaskID, 0, n)

	// prefer sorts candidate predecessors: larger b-level first, then
	// smaller t-level, then smaller ID.
	prefer := func(a, b graph.TaskID) bool {
		if bl[a] != bl[b] {
			return bl[a] > bl[b]
		}
		if tl[a] != tl[b] {
			return tl[a] < tl[b]
		}
		return a < b
	}

	var include func(x graph.TaskID)
	include = func(x graph.TaskID) {
		if inOrder[x] {
			return
		}
		// Gather not-yet-included predecessors, best first, and include
		// them (recursively with their own ancestors) before x.
		var preds []graph.TaskID
		for _, e := range g.In(x) {
			if u := g.Edge(e).From; !inOrder[u] {
				preds = append(preds, u)
			}
		}
		sort.Slice(preds, func(i, j int) bool { return prefer(preds[i], preds[j]) })
		for _, u := range preds {
			include(u)
		}
		inOrder[x] = true
		order = append(order, x)
	}

	for _, c := range cp {
		include(c)
	}

	// Out-branch tasks: everything not yet included, by descending b-level.
	var ob []graph.TaskID
	for i := 0; i < n; i++ {
		if !inOrder[i] {
			ob = append(ob, graph.TaskID(i))
		}
	}
	sort.Slice(ob, func(i, j int) bool { return prefer(ob[i], ob[j]) })
	for _, x := range ob {
		include(x) // include() guards precedence among OB tasks too
	}
	return order, part
}

// SerialPositions returns the inverse of a serial order: the serial index
// of every task. The incremental engine uses it to re-derive only the
// timeline suffix a migration can affect.
func SerialPositions(g *graph.Graph, serial []graph.TaskID) []int {
	pos := make([]int, g.NumTasks())
	for i, t := range serial {
		pos[t] = i
	}
	return pos
}

// Partition classifies every task as CP (on the selected critical path), IB
// (an ancestor of a CP task that is not itself CP) or OB (neither), the
// paper's three-way split. It is exposed for tests, examples and
// diagnostics.
type Partition struct {
	CP []graph.TaskID
	IB []graph.TaskID
	OB []graph.TaskID
}

// PartitionTasks computes the CP/IB/OB partition under the given costs.
func PartitionTasks(g *graph.Graph, exec, comm []float64, rng *rand.Rand) Partition {
	return partitionFromCP(g, graph.CriticalPath(g, exec, comm, rng))
}

// partitionFromCP classifies every task against an already-selected
// critical path.
func partitionFromCP(g *graph.Graph, cp []graph.TaskID) Partition {
	n := g.NumTasks()
	isCP := make([]bool, n)
	for _, t := range cp {
		isCP[t] = true
	}
	// IB: ancestors of CP tasks that are not CP tasks.
	isIB := make([]bool, n)
	seen := make([]bool, n)
	var markAnc func(t graph.TaskID)
	markAnc = func(t graph.TaskID) {
		if seen[t] {
			return
		}
		seen[t] = true
		for _, e := range g.In(t) {
			u := g.Edge(e).From
			if !isCP[u] {
				isIB[u] = true
			}
			markAnc(u)
		}
	}
	for _, t := range cp {
		markAnc(t)
	}
	p := Partition{CP: cp}
	for i := 0; i < n; i++ {
		t := graph.TaskID(i)
		switch {
		case isCP[i]:
		case isIB[i]:
			p.IB = append(p.IB, t)
		default:
			p.OB = append(p.OB, t)
		}
	}
	return p
}
