package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/sched/gen"
	"repro/sched/system"
)

// assertSchedulesIdentical fails unless the two results carry byte-identical
// schedules: every task placement and every message hop sequence equal.
func assertSchedulesIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Schedule.Length() != b.Schedule.Length() {
		t.Fatalf("%s: SL %v != %v", label, a.Schedule.Length(), b.Schedule.Length())
	}
	if a.Migrations != b.Migrations || a.Sweeps != b.Sweeps || a.Reverted != b.Reverted {
		t.Fatalf("%s: trajectory differs: migrations %d/%d, sweeps %d/%d, reverted %d/%d",
			label, a.Migrations, b.Migrations, a.Sweeps, b.Sweeps, a.Reverted, b.Reverted)
	}
	for i := range a.Schedule.Tasks {
		if a.Schedule.Tasks[i] != b.Schedule.Tasks[i] {
			t.Fatalf("%s: task %d placement differs: %+v vs %+v", label, i, a.Schedule.Tasks[i], b.Schedule.Tasks[i])
		}
	}
	for i := range a.Schedule.Msgs {
		am, bm := a.Schedule.Msgs[i], b.Schedule.Msgs[i]
		if am.Arrival != bm.Arrival || am.Placed != bm.Placed || !reflect.DeepEqual(am.Hops, bm.Hops) {
			t.Fatalf("%s: message %d differs: %+v vs %+v", label, i, am, bm)
		}
	}
}

// TestIncrementalMatchesOracle is the central equivalence property: across
// random graphs, random connected topologies and seeds, the incremental
// engine (suffix rebuilds + snapshot rollback, with and without parallel
// candidate evaluation, with and without the sweep-level candidate cache)
// must produce byte-identical schedules to the full-rebuild oracle.
func TestIncrementalMatchesOracle(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%40
		m := 2 + int(mRaw)%10
		g := randomConnectedDAG(rng, n, 0.15)
		nw, err := system.RandomConnected(m, 1, m, rng)
		if err != nil {
			return true
		}
		sys, err := system.NewRandom(nw, g.NumTasks(), g.NumEdges(), 1, 25, rng)
		if err != nil {
			return false
		}
		oracle, err := Schedule(g, sys, Options{Seed: seed, UseFullRebuild: true, Workers: 1})
		if err != nil {
			return false
		}
		for _, opt := range []Options{
			{Seed: seed, Workers: 1},
			{Seed: seed, Workers: 4},
			{Seed: seed, Workers: 1, DisableCandidateCache: true},
			{Seed: seed, Workers: 4, DisableCandidateCache: true},
		} {
			inc, err := Schedule(g, sys, opt)
			if err != nil {
				return false
			}
			assertSchedulesIdentical(t, fmt.Sprintf("seed=%d n=%d m=%d opt=%+v", seed, n, m, opt), oracle, inc)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalMatchesOracleAblations checks equivalence under every
// ablation knob, which exercises the unguarded commit and raw-route paths.
func TestIncrementalMatchesOracleAblations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomConnectedDAG(rng, 35, 0.12)
	sys := randomSystem(t, rng, g, 6)
	for _, opt := range []Options{
		{},
		{DisableVIPFollow: true},
		{DisableRoutePruning: true},
		{DisableMigrationGuard: true},
		{MaxSweeps: 1},
		{GuardSlack: -1},
		{DisableCandidateCache: true},
		{DisableVIPFollow: true, DisableCandidateCache: true},
		{DisableMigrationGuard: true, DisableCandidateCache: true},
	} {
		oracleOpt := opt
		oracleOpt.UseFullRebuild = true
		oracleOpt.Workers = 1
		oracle, err := Schedule(g, sys, oracleOpt)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := Schedule(g, sys, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertSchedulesIdentical(t, fmt.Sprintf("%+v", opt), oracle, inc)
	}
}

// TestIncrementalMatchesOraclePaperExample pins the worked example.
func TestIncrementalMatchesOraclePaperExample(t *testing.T) {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	oracle, err := Schedule(g, sys, Options{UseFullRebuild: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Schedule(g, sys, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertSchedulesIdentical(t, "paper example", oracle, inc)
}

// TestParallelSweepRace drives the parallel candidate evaluation hard
// enough for the race detector to observe the worker pool: large fan-out
// graphs on a clique give every pivot a big batch. Run with -race in CI.
func TestParallelSweepRace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnectedDAG(rng, 80, 0.08)
	nw, err := system.FullyConnected(8)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := system.NewRandom(nw, g.NumTasks(), g.NumEdges(), 1, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Schedule(g, sys, Options{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		// The batch pool only serves the cache-off engine, so the race
		// coverage must disable the candidate cache explicitly.
		got, err := Schedule(g, sys, Options{Seed: 3, Workers: workers, DisableCandidateCache: true})
		if err != nil {
			t.Fatal(err)
		}
		assertSchedulesIdentical(t, fmt.Sprintf("workers=%d", workers), want, got)
	}
}
