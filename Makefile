# Development entry points. CI runs the same targets.

# bash + pipefail so a benchmark failure is not masked by the benchjson
# pipe in the bench target.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go

.PHONY: build test race vet fmt-check bench bench-smoke examples

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench runs the core scheduler benchmarks (incremental vs full-rebuild
# oracle, plus the DLS comparison) and writes a machine-readable
# BENCH_core.json via cmd/benchjson to seed the performance trajectory.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkBSA$$|BenchmarkDLS$$' -benchtime 3x -count 1 . | $(GO) run ./cmd/benchjson -out BENCH_core.json

# bench-smoke executes every benchmark once so they cannot bit-rot.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# examples builds every example against the public sched API and runs the
# quickstart end to end, so the documented library surface cannot rot.
examples:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart
