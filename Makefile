# Development entry points. CI runs the same targets.

# bash + pipefail so a benchmark failure is not masked by the benchjson
# pipe in the bench target.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go

.PHONY: build test race vet fmt-check bench bench-smoke bench-gate bench-verify benchcmp examples apiseal fuzz service-test cluster-test chaos-test schedload-smoke bench-schedd profile atlas

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench runs the core scheduler benchmarks (incremental engine variants vs
# the full-rebuild oracle on the size sweep and the topology sweep, the
# DLS comparison and the warm-vs-cold reschedule pair) and writes the
# machine-readable BENCH_core.json at the repo root via cmd/benchjson —
# the committed file is the performance trajectory's previous point,
# which bench-gate compares against.
# -count 3 + benchjson's best-of-N dedup damps runner noise enough for the
# 15% regression gate to hold on shared CI machines.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkBSA$$|BenchmarkBSATopologies$$|BenchmarkDLS$$|BenchmarkReschedule$$' -benchtime 3x -count 3 . | $(GO) run ./cmd/benchjson -out BENCH_core.json

# bench-smoke executes every benchmark once so they cannot bit-rot.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-gate re-runs bench against the committed BENCH_core.json and fails
# on a >15% regression of the oracle-relative speedups (the ratio form
# survives host changes; see cmd/benchcmp). The filter gates the FULL
# matrix — every BenchmarkBSA size row and every BenchmarkBSATopologies
# topology row — so a regression on the documented hot spots (full=16,
# the n=1000/2000 production sizes, full=32/ring=64) cannot pass CI
# silently; best-of-9 (3 iterations x -count 3) damps the small sizes'
# noise enough for the shared 15% threshold. Entries present in only one
# report are listed by benchcmp but do not gate.
bench-gate:
	@cp BENCH_core.json /tmp/bench-baseline.json
	@rm -f BENCH_core.json  # a failed bench must not leave the stale committed report behind
	$(MAKE) bench
	$(GO) run ./cmd/benchcmp -speedups -filter '^BenchmarkBSA' -max-regress 0.15 /tmp/bench-baseline.json BENCH_core.json

# bench-verify fails loudly when BENCH_core.json is missing, unparseable
# or empty — CI runs it before publishing the bench artifact so the bench
# trajectory can never silently come back blank.
bench-verify:
	$(GO) run ./cmd/benchjson -verify BENCH_core.json

# apiseal runs the API-leak regression gate (no internal types in the
# public packages' exported signatures) and the standalone external
# consumer module build.
apiseal:
	$(GO) test ./sched -run TestAPISeal -count 1
	$(GO) test ./tests -run TestExternalConsumerBuilds -count 1

# fuzz runs each loader fuzz target for FUZZTIME (the CI smoke uses 20s;
# raise it locally for a real hunt). Go runs one -fuzz target per
# invocation, hence the seven lines. Seed corpora are committed under
# sched/testdata/fuzz, sched/{graph,system,workload}/testdata/fuzz and
# the golden interchange files; the workload corpora are seeded from the
# testdata/workloads scenario pack.
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./sched/graph -run '^$$' -fuzz '^FuzzGraphFromDOT$$' -fuzztime $(FUZZTIME)
	$(GO) test ./sched/graph -run '^$$' -fuzz '^FuzzGraphFromJSON$$' -fuzztime $(FUZZTIME)
	$(GO) test ./sched/system -run '^$$' -fuzz '^FuzzSystemFromDOT$$' -fuzztime $(FUZZTIME)
	$(GO) test ./sched/system -run '^$$' -fuzz '^FuzzSystemFromJSON$$' -fuzztime $(FUZZTIME)
	$(GO) test ./sched -run '^$$' -fuzz '^FuzzDeltaFromJSON$$' -fuzztime $(FUZZTIME)
	$(GO) test ./sched/workload -run '^$$' -fuzz '^FuzzWorkloadSTG$$' -fuzztime $(FUZZTIME)
	$(GO) test ./sched/workload -run '^$$' -fuzz '^FuzzWorkloadJSON$$' -fuzztime $(FUZZTIME)

# atlas regenerates the README results atlas in one command: every
# topology family x algorithm x heterogeneity on one seeded instance,
# every schedule validated + replay-checked, spliced between the README's
# atlas markers. Deterministic: a second run leaves README.md untouched
# (CI asserts byte identity).
atlas:
	$(GO) run ./cmd/experiments -atlas -algos BSA,DLS,HEFT,CPOP -readme README.md

# service-test runs the scheduling service's handler + drain suite under
# the race detector, plus the end-to-end test that builds and SIGTERMs a
# real schedd.
service-test:
	$(GO) test -race -count 1 ./sched/service
	$(GO) test -race -count 1 ./tests -run 'TestSchedd'

# cluster-test runs the distributed-schedd net: the store conformance
# suite (memory + WAL), WAL crash/recovery, the in-process replica-tier
# tests, and the two process-level proofs — SIGKILL + reboot on the same
# WAL directory, and kill-one-of-three with a backlog outstanding. The
# test harness runs under the race detector; the schedd child binaries
# are plain builds (the in-process cluster tests cover the server code
# under -race).
cluster-test:
	$(GO) test -race -count 1 ./sched/service -run 'TestStore|TestWAL|TestCluster|TestBatch|TestIdempotent|TestJobEvents'
	$(GO) test -race -count 1 ./tests -run 'TestScheddWALRestart|TestScheddClusterKillOneOfThree'

# chaos-test runs the fault-injection suite under the race detector: the
# resilience tests (store-failure surfacing, client retry, SSE
# reconnect, in-process failover) and the seeded chaos harness (3-node
# tier under dropped/reset/5xx'd wire traffic, breaker load-shedding,
# random store write failures). The seeds are fixed in the tests, so a
# red run reproduces locally with this exact command. The JSON verbose
# log is written for CI to upload on failure.
chaos-test:
	$(GO) test -race -count 1 -v ./sched/service -run 'TestSubmitStore|TestWaitRetries|TestRetryHonors|TestWatchReconnect|TestClusterFailover' 2>&1 | tee chaos-service.log
	$(GO) test -race -count 1 -v ./tests -run 'TestChaos' 2>&1 | tee chaos-e2e.log

# schedload-smoke drives an in-process schedd open-loop for 30 seconds
# with the default sync/async/batch mix and fails on any 5xx; the report
# is written to BENCH_schedd.json (CI uploads it as the service perf
# artifact). The committed BENCH_schedd.json is instead produced by
# bench-schedd below.
schedload-smoke:
	$(GO) run ./cmd/schedload -rps 100 -duration 30s -fail-on-5xx -out BENCH_schedd.json

# bench-schedd regenerates the committed BENCH_schedd.json: the
# closed-loop single-vs-batch comparison whose batch_speedup field is the
# batch endpoint's acceptance floor (>= 2x jobs/sec over one-at-a-time
# submission of the same jobs). The point is deliberately wire-bound —
# small 10-task jobs in batches of 64 over one connection — because
# batching amortizes wire + admission overhead, not scheduling compute:
# on compute-bound jobs (the default 40-task heft ~0.5ms each) the ratio
# is physically capped near 1.5x no matter how good the batch path is.
bench-schedd:
	$(GO) run ./cmd/schedload -compare -duration 5s -conns 1 -n 10 -batch 64 -fail-on-5xx -out BENCH_schedd.json

# profile captures CPU and allocation profiles of the BSA engine on its
# evaluation-heaviest benchmark point (fully connected 16-processor
# network, n=500). Open interactively with
#     go tool pprof -http=: cpu.pprof
# README's "Profiling the engine" section explains what the flame graph
# normally looks like and which shapes indicate a regression.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkBSATopologies/incremental$$/full=16$$' -benchtime 10x \
		-cpuprofile cpu.pprof -memprofile mem.pprof -o bsa.test .
	@echo "wrote cpu.pprof, mem.pprof (binary: bsa.test)"
	@echo "view: go tool pprof -http=: bsa.test cpu.pprof"

# benchcmp diffs two bench JSONs locally: make benchcmp OLD=a.json NEW=b.json
benchcmp:
	$(GO) run ./cmd/benchcmp $(BENCHCMP_FLAGS) $(OLD) $(NEW)

# examples builds every example against the public sched API and runs the
# quickstart end to end, so the documented library surface cannot rot.
examples:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart
