package sched_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/sched"
	"repro/sched/graph"
	"repro/sched/system"
)

// deltaProblem builds a small named problem: a fork-join graph on a
// 4-processor ring.
func deltaProblem(t *testing.T) sched.Problem {
	t.Helper()
	gb := graph.NewBuilder()
	a := gb.AddTask("a", 10)
	b := gb.AddTask("b", 20)
	c := gb.AddTask("c", 20)
	d := gb.AddTask("d", 10)
	gb.AddEdge(a, b, 5)
	gb.AddEdge(a, c, 5)
	gb.AddEdge(b, d, 5)
	gb.AddEdge(c, d, 5)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	nw, err := system.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sched.NewProblem(g, system.NewUniform(nw, g.NumTasks(), g.NumEdges()))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDeltaBuilderValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *sched.DeltaBuilder)
		want  any // pointer to the expected typed error, or sentinel
	}{
		{"empty proc name", func(b *sched.DeltaBuilder) { b.RemoveProc("") }, sched.ErrEmptyDeltaName},
		{"dup proc removal", func(b *sched.DeltaBuilder) { b.RemoveProc("P1").RemoveProc("P1") }, &sched.DeltaDuplicateError{}},
		{"dup link removal reversed", func(b *sched.DeltaBuilder) { b.RemoveLink("P1", "P2").RemoveLink("P2", "P1") }, &sched.DeltaDuplicateError{}},
		{"zero exec factor", func(b *sched.DeltaBuilder) { b.SetExecFactor("a", "P1", 0) }, &sched.DeltaValueError{}},
		{"nan comm factor", func(b *sched.DeltaBuilder) { b.SetCommFactor("a", "b", "P1", "P2", math.NaN()) }, &sched.DeltaValueError{}},
		{"inf task cost", func(b *sched.DeltaBuilder) { b.AddTask("x", math.Inf(1)) }, &sched.DeltaValueError{}},
		{"negative edge cost", func(b *sched.DeltaBuilder) { b.AddEdge("a", "x", -1) }, &sched.DeltaValueError{}},
		{"dup task append", func(b *sched.DeltaBuilder) { b.AddTask("x", 1).AddTask("x", 2) }, &sched.DeltaDuplicateError{}},
		{"dup factor target", func(b *sched.DeltaBuilder) { b.SetExecFactor("a", "P1", 2).SetExecFactor("a", "P1", 3) }, &sched.DeltaDuplicateError{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := sched.NewDeltaBuilder()
			tc.build(b)
			_, err := b.Build()
			if err == nil {
				t.Fatal("Build succeeded, want error")
			}
			switch want := tc.want.(type) {
			case *sched.DeltaDuplicateError:
				var e *sched.DeltaDuplicateError
				if !errors.As(err, &e) {
					t.Fatalf("got %v, want *DeltaDuplicateError", err)
				}
			case *sched.DeltaValueError:
				var e *sched.DeltaValueError
				if !errors.As(err, &e) {
					t.Fatalf("got %v, want *DeltaValueError", err)
				}
			case error:
				if !errors.Is(err, want) {
					t.Fatalf("got %v, want %v", err, want)
				}
			}
		})
	}
}

func TestDeltaApply(t *testing.T) {
	p := deltaProblem(t)
	d, err := sched.NewDeltaBuilder().
		RemoveProc("P4").
		SetExecFactor("b", "P2", 2.5).
		AddTask("e", 15).
		AddEdge("d", "e", 5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.System.Net.NumProcs(); got != 3 {
		t.Errorf("post-delta procs = %d, want 3", got)
	}
	if got := p2.Graph.NumTasks(); got != 5 {
		t.Errorf("post-delta tasks = %d, want 5", got)
	}
	if got := p2.Graph.NumEdges(); got != 5 {
		t.Errorf("post-delta edges = %d, want 5", got)
	}
	// Old task and processor identities survive compaction in order.
	if name := p2.Graph.Task(1).Name; name != "b" {
		t.Errorf("task 1 = %q, want b", name)
	}
	if f := p2.System.ExecFactor(1, 1); f != 2.5 {
		t.Errorf("exec factor of b on P2 = %v, want 2.5", f)
	}
	if err := p2.Validate(); err != nil {
		t.Fatalf("post-delta problem invalid: %v", err)
	}
}

func TestDeltaApplyTypedErrors(t *testing.T) {
	p := deltaProblem(t)
	mk := func(f func(b *sched.DeltaBuilder)) sched.Delta {
		b := sched.NewDeltaBuilder()
		f(b)
		d, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	if _, err := mk(func(b *sched.DeltaBuilder) { b.RemoveProc("P9") }).Apply(p); err == nil {
		t.Error("unknown proc: want error")
	} else {
		var e *sched.UnknownProcError
		if !errors.As(err, &e) || e.Name != "P9" {
			t.Errorf("unknown proc: got %v", err)
		}
	}
	if _, err := mk(func(b *sched.DeltaBuilder) { b.RemoveLink("P1", "P3") }).Apply(p); err == nil {
		t.Error("unknown link: want error")
	} else {
		var e *sched.UnknownLinkError
		if !errors.As(err, &e) {
			t.Errorf("unknown link: got %v", err)
		}
	}
	if _, err := mk(func(b *sched.DeltaBuilder) { b.SetExecFactor("zz", "P1", 2) }).Apply(p); err == nil {
		t.Error("unknown task: want error")
	} else {
		var e *sched.UnknownTaskError
		if !errors.As(err, &e) {
			t.Errorf("unknown task: got %v", err)
		}
	}
	if _, err := mk(func(b *sched.DeltaBuilder) { b.SetCommFactor("a", "d", "P1", "P2", 2) }).Apply(p); err == nil {
		t.Error("unknown edge: want error")
	} else {
		var e *sched.UnknownEdgeError
		if !errors.As(err, &e) {
			t.Errorf("unknown edge: got %v", err)
		}
	}
	if _, err := mk(func(b *sched.DeltaBuilder) { b.AddTask("x", 1).AddEdge("x", "a", 1) }).Apply(p); err == nil {
		t.Error("edge into old task: want error")
	} else {
		var e *sched.DeltaEdgeTargetError
		if !errors.As(err, &e) {
			t.Errorf("edge target: got %v", err)
		}
	}
	// Removing two ring links splits the network in two.
	if _, err := mk(func(b *sched.DeltaBuilder) { b.RemoveLink("P1", "P2").RemoveLink("P3", "P4") }).Apply(p); err == nil {
		t.Error("disconnect: want error")
	} else {
		var e *sched.DisconnectedError
		if !errors.As(err, &e) {
			t.Errorf("disconnect: got %v", err)
		}
	}
	del := mk(func(b *sched.DeltaBuilder) {
		b.RemoveProc("P1").RemoveProc("P2").RemoveProc("P3").RemoveProc("P4")
	})
	if _, err := del.Apply(p); !errors.Is(err, sched.ErrNoProcessors) {
		t.Errorf("remove all: got %v, want ErrNoProcessors", err)
	}
	// A proc removal referencing a task factor on the removed proc fails.
	if _, err := mk(func(b *sched.DeltaBuilder) { b.RemoveProc("P2").SetExecFactor("a", "P2", 2) }).Apply(p); err == nil {
		t.Error("factor on removed proc: want error")
	} else {
		var e *sched.UnknownProcError
		if !errors.As(err, &e) {
			t.Errorf("factor on removed proc: got %v", err)
		}
	}
}

func TestDeltaJSONRoundTrip(t *testing.T) {
	d, err := sched.NewDeltaBuilder().
		RemoveProc("P4").
		RemoveLink("P1", "P2").
		SetExecFactor("b", "P2", 2.5).
		SetCommFactor("a", "b", "P2", "P3", 0.5).
		AddTask("e", 15).
		AddEdge("d", "e", 5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := sched.ReadDeltaJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reload: %v\n%s", err, buf.String())
	}
	var buf2 bytes.Buffer
	if err := d2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("save/load/save not a fixpoint:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
	}
	if d2.NumOps() != d.NumOps() || d2.Empty() {
		t.Errorf("reloaded delta has %d ops, want %d", d2.NumOps(), d.NumOps())
	}
	// Accessor copies carry the ops through in order.
	if rp := d2.RemoveProcs(); len(rp) != 1 || rp[0].Proc != "P4" {
		t.Errorf("RemoveProcs = %+v", rp)
	}
	if ae := d2.AddEdges(); len(ae) != 1 || ae[0] != (sched.EdgeAppend{From: "d", To: "e", Cost: 5}) {
		t.Errorf("AddEdges = %+v", ae)
	}
}

func TestDeltaFromJSONRejectsBadDocs(t *testing.T) {
	for name, doc := range map[string]string{
		"garbage":    "{",
		"bad factor": `{"exec_factors":[{"task":"a","proc":"P1","factor":0}]}`,
		"dup proc":   `{"remove_procs":["P1","P1"]}`,
		"empty name": `{"add_tasks":[{"name":"","cost":1}]}`,
	} {
		if _, err := sched.DeltaFromJSON([]byte(doc)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	if d, err := sched.DeltaFromJSON([]byte("{}")); err != nil || !d.Empty() {
		t.Errorf("empty doc: got %v, %v", d, err)
	}
}
