package sched_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"repro/sched"
	"repro/sched/gen"
	_ "repro/sched/register"
)

// TestAssembleScheduleRoundTrip: decomposing a BSA schedule into its
// public slots and reassembling through AssembleSchedule — the path a
// third-party Scheduler uses to populate Result.Schedule — reproduces a
// byte-identical, verifiable schedule.
func TestAssembleScheduleRoundTrip(t *testing.T) {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	p, err := sched.NewProblem(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		t.Fatal(err)
	}
	res, err := bsa.Schedule(context.Background(), p, sched.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}

	assembled, err := sched.AssembleSchedule(p, res.Schedule.Tasks(), res.Schedule.Messages())
	if err != nil {
		t.Fatalf("AssembleSchedule: %v", err)
	}
	if err := assembled.Verify(); err != nil {
		t.Fatalf("assembled schedule fails verification: %v", err)
	}
	want, err := res.Schedule.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := assembled.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("assembled schedule serializes differently from the original")
	}
}

// TestAssembleScheduleRejectsInfeasible: corrupted slots (overlap on a
// processor) must be rejected, not silently adopted.
func TestAssembleScheduleRejectsInfeasible(t *testing.T) {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	p, err := sched.NewProblem(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		t.Fatal(err)
	}
	res, err := bsa.Schedule(context.Background(), p, sched.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	tasks := res.Schedule.Tasks()
	msgs := res.Schedule.Messages()

	// Pile every task onto processor 0 at time 0: guaranteed overlap.
	for i := range tasks {
		tasks[i].Proc = 0
		tasks[i].Start = 0
		tasks[i].End = 1
	}
	if _, err := sched.AssembleSchedule(p, tasks, msgs); err == nil {
		t.Fatal("AssembleSchedule accepted overlapping slots")
	}
}

// TestAssembleScheduleRejectsNonFinite: NaN/Inf slot times must fail
// with *sched.SlotValueError before any timeline reservation happens —
// NaN in particular defeats every overlap comparison, so letting it
// through would assemble "feasible" garbage.
func TestAssembleScheduleRejectsNonFinite(t *testing.T) {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	p, err := sched.NewProblem(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		t.Fatal(err)
	}
	res, err := bsa.Schedule(context.Background(), p, sched.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}

	corrupt := []struct {
		name  string
		apply func(tasks []sched.TaskSlot, msgs []sched.MessageSlot)
	}{
		{"nan task start", func(ts []sched.TaskSlot, _ []sched.MessageSlot) { ts[0].Start = math.NaN() }},
		{"inf task end", func(ts []sched.TaskSlot, _ []sched.MessageSlot) { ts[2].End = math.Inf(1) }},
		{"nan message arrival", func(_ []sched.TaskSlot, ms []sched.MessageSlot) { ms[0].Arrival = math.NaN() }},
		{"neg-inf hop start", func(_ []sched.TaskSlot, ms []sched.MessageSlot) {
			for i := range ms {
				if len(ms[i].Hops) > 0 {
					ms[i].Hops[0].Start = math.Inf(-1)
					return
				}
			}
		}},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			tasks := res.Schedule.Tasks()
			msgs := res.Schedule.Messages()
			tc.apply(tasks, msgs)
			_, err := sched.AssembleSchedule(p, tasks, msgs)
			if err == nil {
				t.Fatal("AssembleSchedule accepted a non-finite slot time")
			}
			var sv *sched.SlotValueError
			if !errors.As(err, &sv) {
				t.Fatalf("want *sched.SlotValueError, got %T: %v", err, err)
			}
		})
	}
}
