package sched_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/sched"
	"repro/sched/gen"
	_ "repro/sched/register"
	"repro/sched/system"
)

// coldResult schedules a random layered workload with BSA on a clique.
func coldResult(t *testing.T, nTasks, nProcs int, seed int64) (sched.Problem, *sched.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := gen.RandomLayered(nTasks, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := system.FullyConnected(nProcs)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sched.NewProblem(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Lookup("bsa")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Schedule(context.Background(), p, sched.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

// checkWarm validates a reschedule result end to end: feasible, complete,
// replayable under the event-driven simulator.
func checkWarm(t *testing.T, warm *sched.Result) {
	t.Helper()
	if err := warm.Schedule.Validate(); err != nil {
		t.Fatalf("warm schedule invalid: %v", err)
	}
	if !warm.Schedule.Complete() {
		t.Fatal("warm schedule incomplete")
	}
	replay, err := warm.Schedule.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replay.Length > warm.Makespan {
		t.Errorf("simulated length %v exceeds makespan %v", replay.Length, warm.Makespan)
	}
}

func TestRescheduleRemoveProc(t *testing.T) {
	_, prev := coldResult(t, 80, 8, 42)
	d, err := sched.NewDeltaBuilder().RemoveProc("P8").Build()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sched.Reschedule(context.Background(), *prev, d, sched.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	checkWarm(t, warm)
	if got := warm.Schedule.System().Net.NumProcs(); got != 7 {
		t.Errorf("post-delta procs = %d, want 7", got)
	}
	if warm.Algorithm != "bsa" {
		t.Errorf("algorithm = %q", warm.Algorithm)
	}
	tr, ok := warm.Reschedule()
	if !ok {
		t.Fatal("no RescheduleTrace attached")
	}
	if tr.DirtyTasks <= 0 {
		t.Error("trace reports an empty dirty frontier after a proc removal")
	}
	cold := prev.Stats.Get("evaluations")
	if ev := warm.Stats.Get("evaluations"); ev >= cold {
		t.Errorf("warm evaluations %v not below cold %v", ev, cold)
	}
}

func TestRescheduleAppendTasks(t *testing.T) {
	p, prev := coldResult(t, 60, 8, 11)
	// Append a two-task chain hanging off two existing tasks.
	tasks := p.Graph.Tasks()
	src1 := tasks[len(tasks)-1].Name
	src2 := tasks[len(tasks)/2].Name
	d, err := sched.NewDeltaBuilder().
		AddTask("x1", 20).
		AddTask("x2", 10).
		AddEdge(src1, "x1", 5).
		AddEdge(src2, "x1", 5).
		AddEdge("x1", "x2", 5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sched.Reschedule(context.Background(), *prev, d)
	if err != nil {
		t.Fatal(err)
	}
	checkWarm(t, warm)
	if got := warm.Schedule.Graph().NumTasks(); got != 62 {
		t.Errorf("post-delta tasks = %d, want 62", got)
	}
	if warm.Makespan < prev.Makespan {
		t.Errorf("appending work shortened the makespan: %v < %v", warm.Makespan, prev.Makespan)
	}
}

func TestRescheduleFactorChangeAndLinkRemoval(t *testing.T) {
	p, prev := coldResult(t, 60, 8, 3)
	name := p.Graph.Tasks()[10].Name
	d, err := sched.NewDeltaBuilder().
		RemoveLink("P1", "P2").
		SetExecFactor(name, "P3", 10).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sched.Reschedule(context.Background(), *prev, d)
	if err != nil {
		t.Fatal(err)
	}
	checkWarm(t, warm)
}

func TestRescheduleEmptyDelta(t *testing.T) {
	_, prev := coldResult(t, 60, 8, 5)
	warm, err := sched.Reschedule(context.Background(), *prev, sched.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	checkWarm(t, warm)
	// Reconverging an already-converged schedule must not regress it
	// beyond the guard+elitism envelope; in practice it stays equal or
	// improves slightly. Allow equality with a small safety margin.
	if warm.Makespan > prev.Makespan*1.05 {
		t.Errorf("empty-delta reschedule regressed makespan: %v vs %v", warm.Makespan, prev.Makespan)
	}
}

func TestRescheduleDeterministic(t *testing.T) {
	_, prev := coldResult(t, 60, 8, 9)
	d, err := sched.NewDeltaBuilder().RemoveProc("P5").Build()
	if err != nil {
		t.Fatal(err)
	}
	var docs [][]byte
	for i := 0; i < 2; i++ {
		warm, err := sched.Reschedule(context.Background(), *prev, d, sched.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		doc, err := warm.Schedule.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, doc)
	}
	if !bytes.Equal(docs[0], docs[1]) {
		t.Error("two identical reschedule calls produced different schedules")
	}
}

func TestRescheduleRequiresCompleteResult(t *testing.T) {
	if _, err := sched.Reschedule(context.Background(), sched.Result{}, sched.Delta{}); !errors.Is(err, sched.ErrIncompleteResult) {
		t.Errorf("got %v, want ErrIncompleteResult", err)
	}
}

func TestRescheduleContextCancel(t *testing.T) {
	_, prev := coldResult(t, 60, 8, 13)
	d, err := sched.NewDeltaBuilder().RemoveProc("P2").Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sched.Reschedule(ctx, *prev, d); !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}
