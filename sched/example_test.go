package sched_test

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/sched"
	"repro/sched/gen"
	"repro/sched/graph"
	_ "repro/sched/register"
	"repro/sched/system"
)

// Example builds a problem from scratch with the public model — a
// fork-join task graph on a homogeneous 4-processor ring — schedules it
// with BSA and inspects the read-only schedule view.
func Example() {
	b := graph.NewBuilder()
	split := b.AddTask("split", 10)
	join := b.AddTask("join", 10)
	for i := 1; i <= 3; i++ {
		w := b.AddTask(fmt.Sprintf("work%d", i), 40)
		b.AddEdge(split, w, 5)
		b.AddEdge(w, join, 5)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	nw, err := system.Ring(4)
	if err != nil {
		log.Fatal(err)
	}
	problem, err := sched.NewProblem(g, system.NewUniform(nw, g.NumTasks(), g.NumEdges()))
	if err != nil {
		log.Fatal(err)
	}

	bsa, err := sched.Lookup("bsa")
	if err != nil {
		log.Fatal(err)
	}
	res, err := bsa.Schedule(context.Background(), problem, sched.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	if err := res.Schedule.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan %.0f, complete %v\n", res.Makespan, res.Schedule.Complete())
	// Output:
	// makespan 70, complete true
}

// ExampleResult_BSA reads the algorithm-specific trace through the typed
// accessor instead of type-asserting an any-typed field.
func ExampleResult_BSA() {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	problem, err := sched.NewProblem(g, sys)
	if err != nil {
		log.Fatal(err)
	}
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		log.Fatal(err)
	}
	res, err := bsa.Schedule(context.Background(), problem, sched.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	trace, ok := res.BSA()
	if !ok {
		log.Fatal("no BSA trace")
	}
	fmt.Printf("first pivot %s, CP length %.0f\n", trace.PivotName, trace.PivotCPLength)
	if _, ok := res.DLS(); !ok {
		fmt.Println("no DLS trace on a BSA result")
	}
	// Output:
	// first pivot P2, CP length 226
	// no DLS trace on a BSA result
}

// ExampleReschedule reacts to a processor loss without starting over: it
// schedules the paper's worked example, kills P4 with a typed Delta and
// warm-starts BSA from the live schedule. The reconverged result passes
// the same feasibility checks as a cold run.
func ExampleReschedule() {
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	problem, err := sched.NewProblem(g, sys)
	if err != nil {
		log.Fatal(err)
	}
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		log.Fatal(err)
	}
	prev, err := bsa.Schedule(context.Background(), problem, sched.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	// P4 drops out of the ring. The delta document also travels as JSON
	// (DeltaFromJSON / WriteJSON), so the same operation works over the
	// wire against a schedd job.
	delta, err := sched.NewDeltaBuilder().RemoveProc("P4").Build()
	if err != nil {
		log.Fatal(err)
	}
	warm, err := sched.Reschedule(context.Background(), *prev, delta, sched.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := warm.Schedule.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("procs %d -> %d, makespan %.0f -> %.0f\n",
		prev.Schedule.System().Net.NumProcs(), warm.Schedule.System().Net.NumProcs(),
		prev.Makespan, warm.Makespan)
	fmt.Printf("dirty tasks %g of %d\n", warm.Stats["dirty_tasks"], g.NumTasks())
	// Output:
	// procs 4 -> 3, makespan 135 -> 174
	// dirty tasks 3 of 9
}

// Example_interchange generates a workload and a topology, writes both
// through the public encoders and loads them back — the JSON and DOT
// formats round-trip byte-identically.
func Example_interchange() {
	g, err := gen.Generate(gen.Spec{Kind: gen.GaussElim, Size: 14, Granularity: 1}, nil)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := gen.Topology(gen.TopoSpec{Kind: gen.Hypercube, Procs: 4}, nil)
	if err != nil {
		log.Fatal(err)
	}

	var gj, nj bytes.Buffer
	if err := g.WriteJSON(&gj); err != nil {
		log.Fatal(err)
	}
	if err := nw.WriteJSON(&nj); err != nil {
		log.Fatal(err)
	}
	g2, err := graph.FromJSON(gj.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	nw2, err := system.FromJSON(nj.Bytes())
	if err != nil {
		log.Fatal(err)
	}

	var dot bytes.Buffer
	if err := g2.WriteDOT(&dot, "gauss"); err != nil {
		log.Fatal(err)
	}
	g3, title, err := graph.FromDOT(dot.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph %q: %d tasks, %d edges (loaded twice: %v)\n",
		title, g3.NumTasks(), g3.NumEdges(), g3.NumTasks() == g.NumTasks())
	fmt.Printf("network: %d processors, %d links (loaded: %v)\n",
		nw2.NumProcs(), nw2.NumLinks(), nw2.NumProcs() == nw.NumProcs())
	// Output:
	// graph "gauss": 14 tasks, 19 edges (loaded twice: true)
	// network: 4 processors, 4 links (loaded: true)
}
