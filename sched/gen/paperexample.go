// This file reconstructs the worked example of the BSA paper:
// the 9-task parallel program graph of Figure 1, the 4-processor
// heterogeneous system of Table 1 and the ring topology of Figure 2.
//
// The source text of the paper does not preserve Figure 1's layout, so the
// twelve edge costs are a reconstruction calibrated against every anchor
// the prose states explicitly:
//
//   - the nominal critical path is {T1, T7, T9};
//   - the nominal serial order is T1,T2,T7,T4,T3,T8,T6,T9,T5;
//   - T2 is a predecessor of T7, and T8's predecessors are T3 and T4;
//   - w.r.t. P1's actual execution costs the CP length is 240 (so
//     c(T1,T7)+c(T7,T9) = 160);
//   - the first pivot is P2.
//
// Remaining cost choices are best effort; EXPERIMENTS.md reports the
// schedule our implementation produces next to the paper's (SL = 138).

package gen

import (
	"repro/sched/graph"
	"repro/sched/system"
)

// PaperExecTable is Table 1: actual execution cost of each task (rows T1..T9) on
// each processor (columns P1..P4).
var PaperExecTable = [9][4]float64{
	{39, 7, 2, 6},    // T1
	{21, 50, 57, 56}, // T2
	{15, 28, 39, 6},  // T3
	{54, 14, 16, 55}, // T4
	{45, 42, 97, 12}, // T5
	{15, 20, 57, 78}, // T6
	{33, 43, 51, 60}, // T7
	{51, 18, 47, 74}, // T8
	{8, 16, 15, 20},  // T9
}

// PaperNominalExec holds the nominal execution costs of Figure 1.
var PaperNominalExec = [9]float64{40, 30, 30, 40, 50, 40, 40, 40, 10}

// Graph returns the reconstructed Figure 1 task graph.
func PaperExampleGraph() *graph.Graph {
	b := graph.NewBuilder()
	var t [9]graph.TaskID
	names := [9]string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9"}
	for i := range t {
		t[i] = b.AddTask(names[i], PaperNominalExec[i])
	}
	// Twelve edges; see the package comment for the calibration anchors.
	b.AddEdge(t[0], t[1], 20)  // T1->T2
	b.AddEdge(t[0], t[2], 10)  // T1->T3
	b.AddEdge(t[0], t[3], 10)  // T1->T4
	b.AddEdge(t[0], t[4], 10)  // T1->T5
	b.AddEdge(t[0], t[6], 100) // T1->T7
	b.AddEdge(t[1], t[5], 20)  // T2->T6
	b.AddEdge(t[1], t[6], 10)  // T2->T7
	b.AddEdge(t[2], t[7], 10)  // T3->T8
	b.AddEdge(t[3], t[7], 10)  // T4->T8
	b.AddEdge(t[5], t[8], 50)  // T6->T9
	b.AddEdge(t[6], t[8], 60)  // T7->T9
	b.AddEdge(t[7], t[8], 50)  // T8->T9
	g, err := b.Build()
	if err != nil {
		panic(err) // static construction; cannot fail
	}
	return g
}

// System returns the 4-processor heterogeneous ring of the example:
// execution factors derived from Table 1 (factor = actual/nominal) and
// homogeneous links (h' = 1), as the paper assumes for the example.
func PaperExampleSystem(g *graph.Graph) *system.System {
	nw, err := system.Ring(4)
	if err != nil {
		panic(err)
	}
	sys := system.NewUniform(nw, g.NumTasks(), g.NumEdges())
	for i := 0; i < 9; i++ {
		for p := 0; p < 4; p++ {
			sys.Exec[i][p] = PaperExecTable[i][p] / PaperNominalExec[i]
		}
	}
	return sys
}
