package gen

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/sched/graph"
	"repro/sched/system"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden interchange files")

// graphCases spans every generator family at a small, committed size.
func graphCases() []struct {
	name string
	spec Spec
} {
	return []struct {
		name string
		spec Spec
	}{
		{"gauss30", Spec{Kind: GaussElim, Size: 30, Granularity: 1}},
		{"lu30", Spec{Kind: LU, Size: 30, Granularity: 0.1}},
		{"laplace25", Spec{Kind: Laplace, Size: 25, Granularity: 10}},
		{"mva28", Spec{Kind: MVA, Size: 28, Granularity: 1}},
		{"random30", Spec{Kind: Random, Size: 30, Granularity: 1}},
	}
}

// topoCases spans the paper's four evaluation topologies.
func topoCases() []struct {
	name string
	spec TopoSpec
} {
	return []struct {
		name string
		spec TopoSpec
	}{
		{"ring16", TopoSpec{Kind: Ring, Procs: 16}},
		{"hypercube16", TopoSpec{Kind: Hypercube, Procs: 16}},
		{"clique8", TopoSpec{Kind: Clique, Procs: 8}},
		{"random16", TopoSpec{Kind: RandomTopo, Procs: 16}},
	}
}

// TestGraphInterchangeRoundTrip is the property test of the tentpole's
// interchange formats: for every graph family, load(save(g)) re-saves
// byte-identically, in both JSON and DOT.
func TestGraphInterchangeRoundTrip(t *testing.T) {
	for _, tc := range graphCases() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				g, err := Generate(tc.spec, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}

				var j1 bytes.Buffer
				if err := g.WriteJSON(&j1); err != nil {
					t.Fatal(err)
				}
				g2, err := graph.FromJSON(j1.Bytes())
				if err != nil {
					t.Fatalf("json load: %v", err)
				}
				var j2 bytes.Buffer
				if err := g2.WriteJSON(&j2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
					t.Error("JSON round-trip is not byte-identical")
				}

				var d1 bytes.Buffer
				if err := g.WriteDOT(&d1, tc.name); err != nil {
					t.Fatal(err)
				}
				g3, title, err := graph.FromDOT(d1.Bytes())
				if err != nil {
					t.Fatalf("dot load: %v", err)
				}
				if title != tc.name {
					t.Errorf("dot title = %q, want %q", title, tc.name)
				}
				var d2 bytes.Buffer
				if err := g3.WriteDOT(&d2, title); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(d1.Bytes(), d2.Bytes()) {
					t.Error("DOT round-trip is not byte-identical")
				}

				// Cross-format: JSON-loaded and DOT-loaded graphs agree.
				var j3 bytes.Buffer
				if err := g3.WriteJSON(&j3); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(j1.Bytes(), j3.Bytes()) {
					t.Error("DOT-loaded graph serializes differently from the original")
				}
			})
		}
	}
}

// TestTopologyInterchangeRoundTrip: the same property over the paper's
// four topologies, for the network JSON and DOT codecs.
func TestTopologyInterchangeRoundTrip(t *testing.T) {
	for _, tc := range topoCases() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				nw, err := Topology(tc.spec, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}

				var j1 bytes.Buffer
				if err := nw.WriteJSON(&j1); err != nil {
					t.Fatal(err)
				}
				nw2, err := system.FromJSON(j1.Bytes())
				if err != nil {
					t.Fatalf("json load: %v", err)
				}
				var j2 bytes.Buffer
				if err := nw2.WriteJSON(&j2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
					t.Error("JSON round-trip is not byte-identical")
				}

				var d1 bytes.Buffer
				if err := nw.WriteDOT(&d1, tc.name); err != nil {
					t.Fatal(err)
				}
				nw3, title, err := system.FromDOT(d1.Bytes())
				if err != nil {
					t.Fatalf("dot load: %v", err)
				}
				if title != tc.name {
					t.Errorf("dot title = %q, want %q", title, tc.name)
				}
				var d2 bytes.Buffer
				if err := nw3.WriteDOT(&d2, title); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(d1.Bytes(), d2.Bytes()) {
					t.Error("DOT round-trip is not byte-identical")
				}
			})
		}
	}
}

// TestSystemJSONRoundTrip: the full heterogeneous system (network +
// factor matrices) round-trips byte-identically, and a homogeneous
// system keeps its nil Comm.
func TestSystemJSONRoundTrip(t *testing.T) {
	g, err := Generate(Spec{Kind: Random, Size: 40, Granularity: 1}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Topology(TopoSpec{Kind: Ring, Procs: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}

	het, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for name, sys := range map[string]*system.System{
		"heterogeneous": het,
		"uniform":       system.NewUniform(nw, g.NumTasks(), g.NumEdges()),
	} {
		t.Run(name, func(t *testing.T) {
			var j1 bytes.Buffer
			if err := sys.WriteJSON(&j1); err != nil {
				t.Fatal(err)
			}
			sys2, err := system.SystemFromJSON(j1.Bytes())
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if (sys.Comm == nil) != (sys2.Comm == nil) {
				t.Errorf("Comm nil-ness not preserved: %v -> %v", sys.Comm == nil, sys2.Comm == nil)
			}
			var j2 bytes.Buffer
			if err := sys2.WriteJSON(&j2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
				t.Error("system JSON round-trip is not byte-identical")
			}
			if err := sys2.Validate(g.NumTasks(), g.NumEdges()); err != nil {
				t.Errorf("loaded system invalid: %v", err)
			}
		})
	}
}

// TestInterchangeGolden pins the on-disk formats: regenerating each
// committed workload must reproduce the golden JSON and DOT files byte
// for byte. Run with -update to rewrite them after an intentional format
// change.
func TestInterchangeGolden(t *testing.T) {
	check := func(t *testing.T, name, ext string, got []byte) {
		t.Helper()
		path := filepath.Join("testdata", "golden", name+"."+ext)
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (run go test ./sched/gen -run Golden -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs from golden file %s (re-run with -update if intentional)", name+"."+ext, path)
		}
	}

	for _, tc := range graphCases() {
		t.Run(tc.name, func(t *testing.T) {
			g, err := Generate(tc.spec, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatal(err)
			}
			var j, d bytes.Buffer
			if err := g.WriteJSON(&j); err != nil {
				t.Fatal(err)
			}
			if err := g.WriteDOT(&d, tc.name); err != nil {
				t.Fatal(err)
			}
			check(t, tc.name, "json", j.Bytes())
			check(t, tc.name, "dot", d.Bytes())
		})
	}
	for _, tc := range topoCases() {
		t.Run(tc.name, func(t *testing.T) {
			nw, err := Topology(tc.spec, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatal(err)
			}
			var j, d bytes.Buffer
			if err := nw.WriteJSON(&j); err != nil {
				t.Fatal(err)
			}
			if err := nw.WriteDOT(&d, tc.name); err != nil {
				t.Fatal(err)
			}
			check(t, tc.name, "json", j.Bytes())
			check(t, tc.name, "dot", d.Bytes())
		})
	}
}
