// Package gen produces the seeded, deterministic workloads of the
// paper's evaluation: regular application task graphs (Gaussian
// elimination, LU decomposition, Laplace equation solver, mean value
// analysis — the applications behind CASCH's benchmarks), randomly
// structured layered DAGs, both with controllable granularity, the
// paper's processor topologies (Topology over TopoSpec) and the Figure 1
// worked example (PaperExampleGraph / PaperExampleSystem). Equal specs
// and seeds always yield identical instances.
//
// Granularity is the paper's measure: mean execution cost divided by mean
// communication cost. A granularity of 0.1 makes communication ten times
// heavier than computation (fine grained); 10.0 makes it ten times lighter
// (coarse grained). Generators first assign structural relative weights
// (e.g. a Gaussian-elimination update at step k is proportional to the
// remaining column length) and then rescale so the mean execution cost is
// MeanExec and the mean communication cost is MeanExec/granularity.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/sched/graph"
)

// MeanExec is the target mean execution cost, matching the paper's "average
// execution cost of each task ... is about 150".
const MeanExec = 150.0

// Kind selects a graph family.
type Kind int

const (
	// GaussElim is the Gaussian elimination task graph (triangular, with
	// pivot broadcast and elimination chains).
	GaussElim Kind = iota
	// LU is the LU-decomposition task graph (column-oriented triangular).
	LU
	// Laplace is the Laplace equation solver task graph (N x N grid
	// wavefront).
	Laplace
	// MVA is the mean value analysis task graph (Pascal-triangle shaped).
	MVA
	// Random is the randomly structured layered DAG suite.
	Random
)

// String returns the family name.
func (k Kind) String() string {
	switch k {
	case GaussElim:
		return "gauss"
	case LU:
		return "lu"
	case Laplace:
		return "laplace"
	case MVA:
		return "mva"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindNames lists every graph family name, in enum order.
func KindNames() []string {
	names := make([]string, 0, int(Random)+1)
	for k := GaussElim; k <= Random; k++ {
		names = append(names, k.String())
	}
	return names
}

// UnknownKindError is returned by KindByName for a name that matches no
// graph family; it enumerates the valid names.
type UnknownKindError struct {
	Name string
}

func (e *UnknownKindError) Error() string {
	return fmt.Sprintf("gen: unknown graph kind %q (valid: %s)", e.Name, strings.Join(KindNames(), ", "))
}

// KindByName resolves a family name as printed by Kind.String,
// case-insensitively. Unknown names yield an *UnknownKindError.
func KindByName(name string) (Kind, error) {
	for k := GaussElim; k <= Random; k++ {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, &UnknownKindError{Name: name}
}

// RegularKinds lists the application-graph families used for the paper's
// regular suite.
var RegularKinds = []Kind{GaussElim, Laplace, LU}

// Spec describes one graph to generate.
type Spec struct {
	Kind Kind
	// Size is the approximate number of tasks. For regular families the
	// matrix dimension N is chosen so the task count is closest to Size;
	// for Random it is exact.
	Size int
	// Granularity is mean-exec / mean-comm (0.1, 1.0 and 10.0 in the
	// paper). It must be positive.
	Granularity float64
}

// Generate builds the graph described by spec, drawing randomness from rng.
func Generate(spec Spec, rng *rand.Rand) (*graph.Graph, error) {
	if spec.Size < 1 {
		return nil, fmt.Errorf("gen: size %d < 1", spec.Size)
	}
	if spec.Granularity <= 0 {
		return nil, fmt.Errorf("gen: granularity %v must be positive", spec.Granularity)
	}
	switch spec.Kind {
	case GaussElim:
		return Gaussian(MatrixDimFor(GaussElim, spec.Size), spec.Granularity, rng)
	case LU:
		return LUDecomposition(MatrixDimFor(LU, spec.Size), spec.Granularity, rng)
	case Laplace:
		return LaplaceSolver(MatrixDimFor(Laplace, spec.Size), spec.Granularity, rng)
	case MVA:
		return MeanValueAnalysis(MatrixDimFor(MVA, spec.Size), spec.Granularity, rng)
	case Random:
		return RandomLayered(spec.Size, spec.Granularity, rng)
	default:
		return nil, fmt.Errorf("gen: unknown kind %d", int(spec.Kind))
	}
}

// MatrixDimFor returns the matrix dimension N whose task count most closely
// approaches size for the given regular family (minimum dimension 2; for
// Random it returns size unchanged).
func MatrixDimFor(kind Kind, size int) int {
	if kind == Random {
		return size
	}
	bestN, bestDiff := 2, math.MaxFloat64
	for n := 2; n < 4096; n++ {
		c := taskCount(kind, n)
		diff := math.Abs(float64(c - size))
		if diff < bestDiff {
			bestN, bestDiff = n, diff
		}
		if c > 2*size+16 {
			break
		}
	}
	return bestN
}

// taskCount returns the number of tasks family kind generates for matrix
// dimension n.
func taskCount(kind Kind, n int) int {
	switch kind {
	case GaussElim:
		// Pivot + updates per step k=1..n-1: 1 + (n-k).
		return (n - 1) + n*(n-1)/2
	case LU:
		return (n - 1) + n*(n-1)/2
	case Laplace:
		return n * n
	case MVA:
		return n * (n + 1) / 2
	default:
		return n
	}
}

// scale multiplies every task cost by se and every edge cost by sc, applied
// at build time via cost transformation. It is implemented by the builders
// below collecting raw weights first.
type rawGraph struct {
	names []string
	execW []float64
	edges [][2]int
	commW []float64
}

func (r *rawGraph) addTask(name string, w float64) int {
	r.names = append(r.names, name)
	r.execW = append(r.execW, w)
	return len(r.names) - 1
}

func (r *rawGraph) addEdge(u, v int, w float64) {
	r.edges = append(r.edges, [2]int{u, v})
	r.commW = append(r.commW, w)
}

// build normalizes weights to the target means and assembles the graph.
func (r *rawGraph) build(granularity float64) (*graph.Graph, error) {
	var se, sc float64
	if n := len(r.execW); n > 0 {
		var sum float64
		for _, w := range r.execW {
			sum += w
		}
		se = MeanExec * float64(n) / sum
	}
	if e := len(r.commW); e > 0 {
		var sum float64
		for _, w := range r.commW {
			sum += w
		}
		sc = (MeanExec / granularity) * float64(e) / sum
	}
	b := graph.NewBuilder()
	ids := make([]graph.TaskID, len(r.names))
	for i, name := range r.names {
		ids[i] = b.AddTask(name, r.execW[i]*se)
	}
	for i, e := range r.edges {
		b.AddEdge(ids[e[0]], ids[e[1]], r.commW[i]*sc)
	}
	return b.Build()
}

// jitter returns a multiplicative weight perturbation in [0.75, 1.25),
// keeping the structural cost ratios dominant. A nil rng returns 1.
func jitter(rng *rand.Rand) float64 {
	if rng == nil {
		return 1
	}
	return 0.75 + rng.Float64()*0.5
}
