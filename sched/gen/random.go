package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/sched/graph"
)

// RandomLayered returns a randomly structured DAG with exactly n tasks,
// matching the paper's random suite: execution costs uniform in [100, 200]
// (mean 150) and communication costs scaled to the requested granularity.
//
// Structure: tasks are spread over roughly sqrt(n) layers of random width;
// every task in layer > 0 receives an edge from a random task in an
// earlier layer (guaranteeing weak connectivity), and additional forward
// edges are added with decaying probability, giving average in-degrees of
// about 2-3 as typical for random task-graph suites.
func RandomLayered(n int, granularity float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: random graph needs n >= 1, got %d", n)
	}
	if granularity <= 0 {
		return nil, fmt.Errorf("gen: granularity %v must be positive", granularity)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}

	// Assign tasks to layers.
	nLayers := int(math.Sqrt(float64(n)))
	if nLayers < 1 {
		nLayers = 1
	}
	// Random layer widths: draw a random split, ensuring no empty layer.
	layerOf := make([]int, n)
	for i := 0; i < n; i++ {
		if i < nLayers {
			layerOf[i] = i // one guaranteed task per layer
		} else {
			layerOf[i] = rng.Intn(nLayers)
		}
	}
	// Tasks sorted by layer; index i in creation order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Stable bucketing by layer.
	idx := 0
	byLayer := make([][]int, nLayers)
	for l := 0; l < nLayers; l++ {
		for i := 0; i < n; i++ {
			if layerOf[i] == l {
				order[idx] = i
				idx++
				byLayer[l] = append(byLayer[l], i)
			}
		}
	}

	b := graph.NewBuilder()
	ids := make([]graph.TaskID, n)
	pos := make([]int, n) // position in creation order
	for ci, i := range order {
		ids[i] = b.AddTask(fmt.Sprintf("T%d", ci+1), 100+rng.Float64()*100)
		pos[i] = ci
	}

	commMean := MeanExec / granularity
	drawComm := func() float64 { return commMean * (0.5 + rng.Float64()) } // mean commMean
	seen := make(map[[2]graph.TaskID]bool)
	dsu := newDSU(n)
	addEdge := func(u, v graph.TaskID) bool {
		k := [2]graph.TaskID{u, v}
		if u == v || seen[k] {
			return false
		}
		seen[k] = true
		b.AddEdge(u, v, drawComm())
		dsu.union(int(u), int(v))
		return true
	}

	// Structural edges: each non-first-layer task hangs off a random
	// earlier task.
	for l := 1; l < nLayers; l++ {
		for _, i := range byLayer[l] {
			j := order[rng.Intn(pos[i])] // any earlier task in creation order
			addEdge(ids[j], ids[i])
		}
	}

	// Connectivity repair: walking tasks in creation order, any task whose
	// component does not yet contain the first task gets a backward edge
	// from a random earlier task in a different component. Only extra
	// first-layer tasks (and single-layer graphs) ever need this.
	for ci := 1; ci < n; ci++ {
		i := ids[order[ci]]
		for dsu.find(int(i)) != dsu.find(int(ids[order[0]])) {
			j := ids[order[rng.Intn(ci)]]
			addEdge(j, i)
		}
	}

	// Extra forward edges: aim for ~1.5 extra edges per task, respecting
	// e < n^2.
	extra := 0
	if n > 1 {
		extra = n + n/2
	}
	for tries := 0; tries < 10*extra && extra > 0; tries++ {
		ci := rng.Intn(n - 1)
		cj := ci + 1 + rng.Intn(n-ci-1)
		if layerOf[order[ci]] == layerOf[order[cj]] {
			continue // keep edges strictly between layers
		}
		if addEdge(ids[order[ci]], ids[order[cj]]) {
			extra--
		}
	}
	return b.Build()
}

// dsu is a plain union-find used to guarantee weak connectivity.
type dsu struct{ parent []int }

func newDSU(n int) *dsu {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &dsu{parent: p}
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int) { d.parent[d.find(a)] = d.find(b) }
