package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/sched/system"
)

// TopoKind selects a network family.
type TopoKind int

const (
	// Ring is the m-processor ring, one of the paper's four evaluation
	// topologies.
	Ring TopoKind = iota
	// Hypercube is the 2^d-processor hypercube (d=4 gives the paper's
	// 16-processor cube).
	Hypercube
	// Clique is the fully connected m-processor network.
	Clique
	// RandomTopo is the paper's randomly structured topology with degrees
	// in [2, 8] by default.
	RandomTopo
	// Mesh is a 2-D mesh without wraparound.
	Mesh
	// Star is a star with P1 at the centre.
	Star
	// Tree is a complete binary tree.
	Tree
	// Line is a linear processor array.
	Line
	// Torus is a 2-D mesh with wraparound links.
	Torus
	// FatTree is a two-level leaf-spine fabric (complete bipartite
	// spines x leaves).
	FatTree
	// Hierarchical is a NUMA-like fabric of intra-group cliques joined
	// by scarce inter-group leader links.
	Hierarchical
)

// String returns the family name.
func (k TopoKind) String() string {
	switch k {
	case Ring:
		return "ring"
	case Hypercube:
		return "hypercube"
	case Clique:
		return "clique"
	case RandomTopo:
		return "random"
	case Mesh:
		return "mesh"
	case Star:
		return "star"
	case Tree:
		return "tree"
	case Line:
		return "line"
	case Torus:
		return "torus"
	case FatTree:
		return "fattree"
	case Hierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("TopoKind(%d)", int(k))
	}
}

// TopoKindNames lists every topology family name, in enum order.
func TopoKindNames() []string {
	names := make([]string, 0, int(Hierarchical)+1)
	for k := Ring; k <= Hierarchical; k++ {
		names = append(names, k.String())
	}
	return names
}

// UnknownTopoKindError is returned by TopoKindByName for a name that
// matches no topology family; it enumerates the valid names.
type UnknownTopoKindError struct {
	Name string
}

func (e *UnknownTopoKindError) Error() string {
	return fmt.Sprintf("gen: unknown topology kind %q (valid: %s)", e.Name, strings.Join(TopoKindNames(), ", "))
}

// TopoKindByName resolves a family name as printed by TopoKind.String,
// case-insensitively. Unknown names yield an *UnknownTopoKindError.
func TopoKindByName(name string) (TopoKind, error) {
	for k := Ring; k <= Hierarchical; k++ {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, &UnknownTopoKindError{Name: name}
}

// EvalTopologies lists the paper's four evaluation topologies.
var EvalTopologies = []TopoKind{Ring, Hypercube, Clique, RandomTopo}

// TopoSpec describes one network to generate.
type TopoSpec struct {
	Kind TopoKind
	// Procs is the processor count (a power of two for Hypercube;
	// divisible by Rows for Mesh).
	Procs int
	// Rows is the row count for Mesh (0 picks the most square layout).
	Rows int
	// MinDeg and MaxDeg bound processor degrees for RandomTopo; both 0
	// selects the paper's [2, 8], clamped to feasibility for tiny Procs.
	MinDeg, MaxDeg int
	// Spines is the spine count for FatTree (0 picks max(1, Procs/4)).
	Spines int
	// Groups is the group count for Hierarchical (0 picks the largest
	// divisor of Procs not exceeding its square root, so 8 processors
	// become 2 groups of 4; a prime count degenerates to one clique).
	Groups int
}

// Topology builds the network described by spec. Randomness (RandomTopo
// only) is drawn from rng, so equal specs and seeds yield identical
// networks; a nil rng defaults to seed 1.
func Topology(spec TopoSpec, rng *rand.Rand) (*system.Network, error) {
	m := spec.Procs
	if m < 1 {
		return nil, fmt.Errorf("gen: topology needs at least 1 processor, got %d", m)
	}
	switch spec.Kind {
	case Ring:
		return system.Ring(m)
	case Hypercube:
		d := 0
		for 1<<d < m {
			d++
		}
		if 1<<d != m {
			return nil, fmt.Errorf("gen: hypercube needs a power-of-two processor count, got %d", m)
		}
		return system.Hypercube(d)
	case Clique:
		return system.FullyConnected(m)
	case RandomTopo:
		if rng == nil {
			rng = rand.New(rand.NewSource(1))
		}
		minDeg, maxDeg := spec.MinDeg, spec.MaxDeg
		if minDeg == 0 && maxDeg == 0 {
			minDeg, maxDeg = 2, 8
			if m <= 2 {
				minDeg = 1
			}
			if maxDeg > m-1 {
				maxDeg = m - 1
			}
			if maxDeg < 1 {
				maxDeg = 1
			}
		}
		return system.RandomConnected(m, minDeg, maxDeg, rng)
	case Mesh:
		rows, err := meshRows(spec.Rows, m)
		if err != nil {
			return nil, err
		}
		return system.Mesh2D(rows, m/rows)
	case Torus:
		rows, err := meshRows(spec.Rows, m)
		if err != nil {
			return nil, err
		}
		return system.Torus2D(rows, m/rows)
	case FatTree:
		spines := spec.Spines
		if spines == 0 {
			spines = m / 4
			if spines < 1 {
				spines = 1
			}
		}
		if spines >= m {
			return nil, fmt.Errorf("gen: fat-tree with %d processors needs fewer than %d spines for at least one leaf", m, m)
		}
		return system.FatTree(spines, m-spines)
	case Hierarchical:
		groups := spec.Groups
		if groups == 0 {
			for groups = 1; (groups+1)*(groups+1) <= m; groups++ {
			}
			for m%groups != 0 {
				groups--
			}
		}
		if groups < 1 || m%groups != 0 {
			return nil, fmt.Errorf("gen: hierarchical with %d processors not divisible into %d groups", m, groups)
		}
		return system.Hierarchical(groups, m/groups)
	case Star:
		return system.Star(m)
	case Tree:
		return system.BinaryTree(m)
	case Line:
		return system.Line(m)
	default:
		return nil, fmt.Errorf("gen: unknown topology kind %d", int(spec.Kind))
	}
}

// meshRows resolves the row count for Mesh and Torus (0 picks the most
// square layout dividing m).
func meshRows(rows, m int) (int, error) {
	if rows == 0 {
		for rows = 1; (rows+1)*(rows+1) <= m; rows++ {
		}
		for m%rows != 0 {
			rows--
		}
	}
	if rows < 1 || m%rows != 0 {
		return 0, fmt.Errorf("gen: mesh with %d processors not divisible by %d rows", m, rows)
	}
	return rows, nil
}
