package gen

import (
	"fmt"
	"math/rand"

	"repro/sched/system"
)

// TopoKind selects a network family.
type TopoKind int

const (
	// Ring is the m-processor ring, one of the paper's four evaluation
	// topologies.
	Ring TopoKind = iota
	// Hypercube is the 2^d-processor hypercube (d=4 gives the paper's
	// 16-processor cube).
	Hypercube
	// Clique is the fully connected m-processor network.
	Clique
	// RandomTopo is the paper's randomly structured topology with degrees
	// in [2, 8] by default.
	RandomTopo
	// Mesh is a 2-D mesh without wraparound.
	Mesh
	// Star is a star with P1 at the centre.
	Star
	// Tree is a complete binary tree.
	Tree
	// Line is a linear processor array.
	Line
)

// String returns the family name.
func (k TopoKind) String() string {
	switch k {
	case Ring:
		return "ring"
	case Hypercube:
		return "hypercube"
	case Clique:
		return "clique"
	case RandomTopo:
		return "random"
	case Mesh:
		return "mesh"
	case Star:
		return "star"
	case Tree:
		return "tree"
	case Line:
		return "line"
	default:
		return fmt.Sprintf("TopoKind(%d)", int(k))
	}
}

// TopoKindByName resolves a family name as printed by TopoKind.String.
func TopoKindByName(name string) (TopoKind, bool) {
	for k := Ring; k <= Line; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// EvalTopologies lists the paper's four evaluation topologies.
var EvalTopologies = []TopoKind{Ring, Hypercube, Clique, RandomTopo}

// TopoSpec describes one network to generate.
type TopoSpec struct {
	Kind TopoKind
	// Procs is the processor count (a power of two for Hypercube;
	// divisible by Rows for Mesh).
	Procs int
	// Rows is the row count for Mesh (0 picks the most square layout).
	Rows int
	// MinDeg and MaxDeg bound processor degrees for RandomTopo; both 0
	// selects the paper's [2, 8], clamped to feasibility for tiny Procs.
	MinDeg, MaxDeg int
}

// Topology builds the network described by spec. Randomness (RandomTopo
// only) is drawn from rng, so equal specs and seeds yield identical
// networks; a nil rng defaults to seed 1.
func Topology(spec TopoSpec, rng *rand.Rand) (*system.Network, error) {
	m := spec.Procs
	if m < 1 {
		return nil, fmt.Errorf("gen: topology needs at least 1 processor, got %d", m)
	}
	switch spec.Kind {
	case Ring:
		return system.Ring(m)
	case Hypercube:
		d := 0
		for 1<<d < m {
			d++
		}
		if 1<<d != m {
			return nil, fmt.Errorf("gen: hypercube needs a power-of-two processor count, got %d", m)
		}
		return system.Hypercube(d)
	case Clique:
		return system.FullyConnected(m)
	case RandomTopo:
		if rng == nil {
			rng = rand.New(rand.NewSource(1))
		}
		minDeg, maxDeg := spec.MinDeg, spec.MaxDeg
		if minDeg == 0 && maxDeg == 0 {
			minDeg, maxDeg = 2, 8
			if m <= 2 {
				minDeg = 1
			}
			if maxDeg > m-1 {
				maxDeg = m - 1
			}
			if maxDeg < 1 {
				maxDeg = 1
			}
		}
		return system.RandomConnected(m, minDeg, maxDeg, rng)
	case Mesh:
		rows := spec.Rows
		if rows == 0 {
			for rows = 1; (rows+1)*(rows+1) <= m; rows++ {
			}
			for m%rows != 0 {
				rows--
			}
		}
		if rows < 1 || m%rows != 0 {
			return nil, fmt.Errorf("gen: mesh with %d processors not divisible by %d rows", m, rows)
		}
		return system.Mesh2D(rows, m/rows)
	case Star:
		return system.Star(m)
	case Tree:
		return system.BinaryTree(m)
	case Line:
		return system.Line(m)
	default:
		return nil, fmt.Errorf("gen: unknown topology kind %d", int(spec.Kind))
	}
}
