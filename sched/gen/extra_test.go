package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/sched/graph"
)

func TestFFTStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := FFT(3, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 4 ranks x 8 tasks; 3 x 8 x 2 edges.
	if g.NumTasks() != 32 || g.NumEdges() != 48 {
		t.Fatalf("fft(3): n=%d e=%d, want 32/48", g.NumTasks(), g.NumEdges())
	}
	if !g.IsWeaklyConnected() {
		t.Fatal("fft not connected")
	}
	if _, err := graph.TopologicalOrder(g); err != nil {
		t.Fatal(err)
	}
	// Every non-final-rank task has out-degree 2; every non-first-rank task
	// has in-degree 2.
	for i := 0; i < g.NumTasks(); i++ {
		id := graph.TaskID(i)
		if i < 24 && g.OutDegree(id) != 2 {
			t.Fatalf("task %d out-degree %d", i, g.OutDegree(id))
		}
		if i >= 8 && g.InDegree(id) != 2 {
			t.Fatalf("task %d in-degree %d", i, g.InDegree(id))
		}
	}
	if got := g.Granularity(); math.Abs(got-1) > 0.15 {
		t.Errorf("granularity %v, want ~1", got)
	}
}

func TestFFTErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := FFT(0, 1, rng); err == nil {
		t.Error("logN=0 should fail")
	}
	if _, err := FFT(13, 1, rng); err == nil {
		t.Error("logN=13 should fail")
	}
	if _, err := FFT(3, 0, rng); err == nil {
		t.Error("granularity 0 should fail")
	}
}

func TestForkJoinStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := ForkJoin(3, 5, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// start + 3*(join + 5 workers) tasks; 3*10 edges.
	if g.NumTasks() != 1+3*6 || g.NumEdges() != 30 {
		t.Fatalf("forkjoin: n=%d e=%d, want 19/30", g.NumTasks(), g.NumEdges())
	}
	if !g.IsWeaklyConnected() {
		t.Fatal("fork-join not connected")
	}
	// Single source, single sink.
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatalf("sources=%v sinks=%v", g.Sources(), g.Sinks())
	}
	if got := g.Granularity(); math.Abs(got-2)/2 > 0.15 {
		t.Errorf("granularity %v, want ~2", got)
	}
}

func TestForkJoinErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := ForkJoin(0, 3, 1, rng); err == nil {
		t.Error("stages=0 should fail")
	}
	if _, err := ForkJoin(2, 0, 1, rng); err == nil {
		t.Error("width=0 should fail")
	}
	if _, err := ForkJoin(2, 2, -1, rng); err == nil {
		t.Error("negative granularity should fail")
	}
}
