package gen

import (
	"testing"

	"repro/sched/graph"
	"repro/sched/system"
)

func TestGraphShape(t *testing.T) {
	g := PaperExampleGraph()
	if g.NumTasks() != 9 || g.NumEdges() != 12 {
		t.Fatalf("n=%d e=%d, want 9/12", g.NumTasks(), g.NumEdges())
	}
	if !g.IsWeaklyConnected() {
		t.Fatal("example graph must be connected")
	}
	for i, want := range PaperNominalExec {
		if got := g.Task(graph.TaskID(i)).Cost; got != want {
			t.Errorf("task %d cost %v, want %v", i, got, want)
		}
	}
	// Prose anchors: T1 and T2 are predecessors of T7; T3 and T4 of T8;
	// T6, T7, T8 of T9; T5 is a sink fed by T1.
	mustEdge := func(u, v int) {
		if _, ok := g.FindEdge(graph.TaskID(u), graph.TaskID(v)); !ok {
			t.Errorf("missing edge T%d->T%d", u+1, v+1)
		}
	}
	mustEdge(0, 6)
	mustEdge(1, 6)
	mustEdge(2, 7)
	mustEdge(3, 7)
	mustEdge(5, 8)
	mustEdge(6, 8)
	mustEdge(7, 8)
	mustEdge(0, 4)
	if got := g.OutDegree(4); got != 0 {
		t.Errorf("T5 must be a sink, out-degree %d", got)
	}
}

func TestSystemFactorsMatchTable(t *testing.T) {
	g := PaperExampleGraph()
	sys := PaperExampleSystem(g)
	if err := sys.Validate(g.NumTasks(), g.NumEdges()); err != nil {
		t.Fatal(err)
	}
	// Actual cost = factor * nominal must reproduce Table 1 exactly.
	for i := 0; i < 9; i++ {
		for p := 0; p < 4; p++ {
			got := sys.ExecCost(i, system.ProcID(p), PaperNominalExec[i])
			if diff := got - PaperExecTable[i][p]; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("actual cost T%d on P%d = %v, want %v", i+1, p+1, got, PaperExecTable[i][p])
			}
		}
	}
	// Links are homogeneous in the example.
	if sys.Comm != nil {
		t.Error("example links must be homogeneous (nil Comm)")
	}
	if sys.Net.NumProcs() != 4 || sys.Net.NumLinks() != 4 {
		t.Errorf("ring: m=%d links=%d", sys.Net.NumProcs(), sys.Net.NumLinks())
	}
}

func TestNominalCPLength(t *testing.T) {
	g := PaperExampleGraph()
	if got := graph.CPLength(g, g.NominalExecCosts(), nil); got != 250 {
		t.Errorf("nominal CP length %v, want 250", got)
	}
}
