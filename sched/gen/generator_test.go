package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/sched/graph"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{GaussElim: "gauss", LU: "lu", Laplace: "laplace", MVA: "mva", Random: "random", Kind(42): "Kind(42)"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String()=%q, want %q", int(k), k.String(), s)
		}
	}
}

func TestTaskCounts(t *testing.T) {
	cases := []struct {
		kind Kind
		n    int
		want int
	}{
		{GaussElim, 4, 3 + 6},
		{LU, 4, 3 + 6},
		{Laplace, 4, 16},
		{MVA, 4, 10},
	}
	for _, c := range cases {
		g, err := Generate(Spec{Kind: c.kind, Size: c.want, Granularity: 1}, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%v: %v", c.kind, err)
		}
		if g.NumTasks() != c.want {
			t.Errorf("%v(N=%d): %d tasks, want %d", c.kind, c.n, g.NumTasks(), c.want)
		}
	}
}

func TestMatrixDimFor(t *testing.T) {
	// Size 50 for Laplace: N=7 gives 49, closest.
	if got := MatrixDimFor(Laplace, 50); got != 7 {
		t.Errorf("Laplace dim for 50 = %d, want 7", got)
	}
	// Gaussian: tasks = (n-1) + n(n-1)/2. n=10 -> 9+45=54; n=9 -> 8+36=44.
	if got := MatrixDimFor(GaussElim, 50); got != 10 {
		t.Errorf("Gauss dim for 50 = %d, want 10", got)
	}
	if got := MatrixDimFor(Random, 123); got != 123 {
		t.Errorf("Random dim = %d, want identity", got)
	}
}

func TestAllFamiliesValidAndConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, kind := range []Kind{GaussElim, LU, Laplace, MVA, Random} {
		for _, size := range []int{50, 150, 500} {
			g, err := Generate(Spec{Kind: kind, Size: size, Granularity: 1}, rng)
			if err != nil {
				t.Fatalf("%v/%d: %v", kind, size, err)
			}
			if !g.IsWeaklyConnected() {
				t.Errorf("%v/%d not connected", kind, size)
			}
			if _, err := graph.TopologicalOrder(g); err != nil {
				t.Errorf("%v/%d: %v", kind, size, err)
			}
			// Task count within 40% of requested for regular families.
			ratio := float64(g.NumTasks()) / float64(size)
			if ratio < 0.6 || ratio > 1.4 {
				t.Errorf("%v/%d produced %d tasks (ratio %.2f)", kind, size, g.NumTasks(), ratio)
			}
		}
	}
}

func TestGranularityHit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, kind := range []Kind{GaussElim, LU, Laplace, MVA, Random} {
		for _, gran := range []float64{0.1, 1.0, 10.0} {
			g, err := Generate(Spec{Kind: kind, Size: 200, Granularity: gran}, rng)
			if err != nil {
				t.Fatal(err)
			}
			got := g.Granularity()
			if math.Abs(got-gran)/gran > 0.15 {
				t.Errorf("%v: granularity %.3f, want %.3f", kind, got, gran)
			}
			if me := g.MeanExecCost(); math.Abs(me-MeanExec)/MeanExec > 0.15 {
				t.Errorf("%v: mean exec %.1f, want ~%.0f", kind, me, MeanExec)
			}
		}
	}
}

func TestRandomLayeredExactSize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 10, 50, 500} {
		g, err := RandomLayered(n, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumTasks() != n {
			t.Errorf("n=%d: got %d tasks", n, g.NumTasks())
		}
		if n > 1 && !g.IsWeaklyConnected() {
			t.Errorf("n=%d: not connected", n)
		}
	}
}

func TestRandomLayeredExecCostRange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g, err := RandomLayered(300, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range g.Tasks() {
		if task.Cost < 100 || task.Cost > 200 {
			t.Fatalf("exec cost %v outside [100,200]", task.Cost)
		}
	}
	// Edge count sanity: n-1 <= e < n^2 (the paper's assumption).
	if g.NumEdges() < g.NumTasks()-1 || g.NumEdges() >= g.NumTasks()*g.NumTasks() {
		t.Errorf("edge count %d outside paper bounds for n=%d", g.NumEdges(), g.NumTasks())
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(Spec{Kind: GaussElim, Size: 0, Granularity: 1}, rng); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := Generate(Spec{Kind: GaussElim, Size: 50, Granularity: 0}, rng); err == nil {
		t.Error("granularity 0 should fail")
	}
	if _, err := Generate(Spec{Kind: Kind(99), Size: 50, Granularity: 1}, rng); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := Gaussian(1, 1, rng); err == nil {
		t.Error("gaussian N=1 should fail")
	}
	if _, err := LUDecomposition(1, 1, rng); err == nil {
		t.Error("lu N=1 should fail")
	}
	if _, err := LaplaceSolver(1, 1, rng); err == nil {
		t.Error("laplace N=1 should fail")
	}
	if _, err := MeanValueAnalysis(1, 1, rng); err == nil {
		t.Error("mva N=1 should fail")
	}
	if _, err := RandomLayered(0, 1, rng); err == nil {
		t.Error("random n=0 should fail")
	}
	if _, err := RandomLayered(5, -1, rng); err == nil {
		t.Error("random negative granularity should fail")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	for _, kind := range []Kind{GaussElim, Random} {
		a, err := Generate(Spec{Kind: kind, Size: 100, Granularity: 1}, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(Spec{Kind: kind, Size: 100, Granularity: 1}, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		if a.NumTasks() != b.NumTasks() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%v: structure differs across equal seeds", kind)
		}
		for i := range a.Tasks() {
			if a.Task(graph.TaskID(i)).Cost != b.Task(graph.TaskID(i)).Cost {
				t.Fatalf("%v: costs differ across equal seeds", kind)
			}
		}
	}
}

func TestRandomLayeredProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, granRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)
		gran := []float64{0.1, 0.5, 1, 2, 10}[int(granRaw)%5]
		g, err := RandomLayered(n, gran, rng)
		if err != nil {
			return false
		}
		if g.NumTasks() != n {
			return false
		}
		if n > 1 && !g.IsWeaklyConnected() {
			return false
		}
		_, err = graph.TopologicalOrder(g)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestNilRNGDefaults(t *testing.T) {
	if _, err := RandomLayered(20, 1, nil); err != nil {
		t.Fatalf("nil rng should default: %v", err)
	}
	if _, err := Gaussian(5, 1, nil); err != nil {
		t.Fatalf("nil rng gaussian: %v", err)
	}
}
