package gen

import (
	"errors"
	"strings"
	"testing"
)

func TestTopoKindByName(t *testing.T) {
	for k := Ring; k <= Hierarchical; k++ {
		got, err := TopoKindByName(k.String())
		if err != nil || got != k {
			t.Errorf("TopoKindByName(%q) = %v, %v", k.String(), got, err)
		}
		// Lookup is case-insensitive.
		upper, err := TopoKindByName(strings.ToUpper(k.String()))
		if err != nil || upper != k {
			t.Errorf("TopoKindByName(%q) = %v, %v", strings.ToUpper(k.String()), upper, err)
		}
	}
	_, err := TopoKindByName("banyan")
	var ue *UnknownTopoKindError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UnknownTopoKindError", err)
	}
	if ue.Name != "banyan" {
		t.Errorf("Name = %q", ue.Name)
	}
	// The error must enumerate every valid family.
	for _, name := range TopoKindNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

func TestKindByName(t *testing.T) {
	for k := GaussElim; k <= Random; k++ {
		got, err := KindByName(k.String())
		if err != nil || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, err)
		}
	}
	if got, err := KindByName("LaPlAcE"); err != nil || got != Laplace {
		t.Errorf("case-insensitive KindByName = %v, %v", got, err)
	}
	_, err := KindByName("fft2")
	var ue *UnknownKindError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UnknownKindError", err)
	}
	for _, name := range KindNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

func TestTopologyNewFamilies(t *testing.T) {
	cases := []struct {
		name  string
		spec  TopoSpec
		procs int
		links int
	}{
		// 8 processors pick the 2x4 layout; only rows wrap (cols=4>2).
		{"torus default rows", TopoSpec{Kind: Torus, Procs: 8}, 8, 10 + 2},
		{"torus explicit", TopoSpec{Kind: Torus, Procs: 12, Rows: 3}, 12, 24},
		// Default spines = procs/4.
		{"fattree default", TopoSpec{Kind: FatTree, Procs: 8}, 8, 2 * 6},
		{"fattree explicit", TopoSpec{Kind: FatTree, Procs: 6, Spines: 3}, 6, 9},
		// Default groups: largest divisor <= sqrt(8) is 2 -> 2x4.
		{"hierarchical default", TopoSpec{Kind: Hierarchical, Procs: 8}, 8, 2*6 + 1},
		{"hierarchical explicit", TopoSpec{Kind: Hierarchical, Procs: 12, Groups: 3}, 12, 3*6 + 3},
		// A prime count degenerates to one clique.
		{"hierarchical prime", TopoSpec{Kind: Hierarchical, Procs: 7}, 7, 21},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw, err := Topology(tc.spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			if nw.NumProcs() != tc.procs || nw.NumLinks() != tc.links {
				t.Fatalf("got %d procs %d links, want %d/%d",
					nw.NumProcs(), nw.NumLinks(), tc.procs, tc.links)
			}
		})
	}

	if _, err := Topology(TopoSpec{Kind: FatTree, Procs: 4, Spines: 4}, nil); err == nil {
		t.Error("fat-tree without leaves should fail")
	}
	if _, err := Topology(TopoSpec{Kind: Hierarchical, Procs: 8, Groups: 3}, nil); err == nil {
		t.Error("non-dividing group count should fail")
	}
	if _, err := Topology(TopoSpec{Kind: Torus, Procs: 8, Rows: 3}, nil); err == nil {
		t.Error("non-dividing torus rows should fail")
	}
}
