package gen

import (
	"fmt"
	"math/rand"

	"repro/sched/graph"
)

// Gaussian returns the Gaussian elimination task graph for an N x N matrix
// (Cosnard, Marrakchi, Robert & Trystram's parallel Gaussian elimination).
//
// For each elimination step k = 1..N-1 there is a pivot task P_k that
// selects/normalizes the pivot column and update tasks U_{k,j} (j = k+1..N)
// that eliminate column j. P_k broadcasts the pivot column to its updates;
// U_{k,k+1} feeds the next pivot task; U_{k,j} feeds U_{k+1,j}. Execution
// weight of step-k tasks is proportional to the remaining column length
// N-k+1; message weight likewise.
func Gaussian(n int, granularity float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: gaussian needs N >= 2, got %d", n)
	}
	var r rawGraph
	pivot := make([]int, n)    // pivot[k] for k=1..n-1 (index k)
	update := make([][]int, n) // update[k][j] for j=k+1..n
	for k := 1; k < n; k++ {
		rem := float64(n - k + 1)
		pivot[k] = r.addTask(fmt.Sprintf("P%d", k), rem*jitter(rng))
		update[k] = make([]int, n+1)
		for j := k + 1; j <= n; j++ {
			update[k][j] = r.addTask(fmt.Sprintf("U%d.%d", k, j), rem*jitter(rng))
			r.addEdge(pivot[k], update[k][j], rem*jitter(rng))
		}
	}
	for k := 1; k < n-1; k++ {
		rem := float64(n - k)
		r.addEdge(update[k][k+1], pivot[k+1], rem*jitter(rng))
		for j := k + 2; j <= n; j++ {
			r.addEdge(update[k][j], update[k+1][j], rem*jitter(rng))
		}
	}
	return r.build(granularity)
}

// LUDecomposition returns the column-oriented LU decomposition task graph:
// per step k a diagonal task D_k computing the multipliers, and column
// update tasks C_{k,j} applying them, chained column-wise. Structurally a
// cousin of the Gaussian graph but with an extra diagonal-to-diagonal
// dependency chain (D_k -> D_{k+1}), giving it a longer critical path.
func LUDecomposition(n int, granularity float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: lu needs N >= 2, got %d", n)
	}
	var r rawGraph
	diag := make([]int, n)
	col := make([][]int, n)
	for k := 1; k < n; k++ {
		rem := float64(n - k + 1)
		diag[k] = r.addTask(fmt.Sprintf("D%d", k), rem*jitter(rng))
		col[k] = make([]int, n+1)
		for j := k + 1; j <= n; j++ {
			col[k][j] = r.addTask(fmt.Sprintf("C%d.%d", k, j), rem*jitter(rng))
			r.addEdge(diag[k], col[k][j], rem*jitter(rng))
		}
	}
	for k := 1; k < n-1; k++ {
		rem := float64(n - k)
		r.addEdge(diag[k], diag[k+1], rem*jitter(rng))
		for j := k + 1; j <= n; j++ {
			if j >= k+2 {
				r.addEdge(col[k][j], col[k+1][j], rem*jitter(rng))
			}
		}
		r.addEdge(col[k][k+1], diag[k+1], rem*jitter(rng))
	}
	return r.build(granularity)
}

// LaplaceSolver returns the Laplace equation solver task graph: an N x N
// grid of point-update tasks swept as a wavefront — task (i,j) depends on
// its north neighbour (i-1,j) and west neighbour (i,j-1). All tasks carry
// (roughly) equal weight, as every grid point does the same stencil work.
func LaplaceSolver(n int, granularity float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: laplace needs N >= 2, got %d", n)
	}
	var r rawGraph
	at := make([][]int, n)
	for i := 0; i < n; i++ {
		at[i] = make([]int, n)
		for j := 0; j < n; j++ {
			at[i][j] = r.addTask(fmt.Sprintf("G%d.%d", i, j), jitter(rng))
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n {
				r.addEdge(at[i][j], at[i+1][j], jitter(rng))
			}
			if j+1 < n {
				r.addEdge(at[i][j], at[i][j+1], jitter(rng))
			}
		}
	}
	return r.build(granularity)
}

// MeanValueAnalysis returns the MVA task graph: Pascal-triangle shaped —
// task (k,i) for population k and station index i depends on (k-1,i) and
// (k-1,i-1), modelling MVA's recursion over customer population. Row k has
// k tasks; weight grows mildly with the population index.
func MeanValueAnalysis(n int, granularity float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: mva needs N >= 2, got %d", n)
	}
	var r rawGraph
	rows := make([][]int, n+1)
	for k := 1; k <= n; k++ {
		rows[k] = make([]int, k+1)
		w := 1 + float64(k)/float64(n)
		for i := 1; i <= k; i++ {
			rows[k][i] = r.addTask(fmt.Sprintf("M%d.%d", k, i), w*jitter(rng))
		}
	}
	for k := 1; k < n; k++ {
		for i := 1; i <= k; i++ {
			r.addEdge(rows[k][i], rows[k+1][i], jitter(rng))
			r.addEdge(rows[k][i], rows[k+1][i+1], jitter(rng))
		}
	}
	return r.build(granularity)
}
