package gen

import (
	"fmt"
	"math/rand"

	"repro/sched/graph"
)

// This file adds two graph families common in the scheduling literature
// beyond the paper's four applications: the FFT butterfly and parametric
// fork-join graphs. They are not part of the paper's suites but are useful
// for wider benchmarking (and are exercised by tests and examples).

// FFT returns the task graph of a 2^logN-point fast Fourier transform:
// logN+1 ranks of 2^logN butterfly tasks, task (r, i) feeding (r+1, i) and
// (r+1, i XOR 2^r). All tasks carry equal weight.
func FFT(logN int, granularity float64, rng *rand.Rand) (*graph.Graph, error) {
	if logN < 1 || logN > 12 {
		return nil, fmt.Errorf("gen: fft needs 1 <= logN <= 12, got %d", logN)
	}
	if granularity <= 0 {
		return nil, fmt.Errorf("gen: granularity %v must be positive", granularity)
	}
	width := 1 << logN
	var r rawGraph
	ranks := make([][]int, logN+1)
	for rk := 0; rk <= logN; rk++ {
		ranks[rk] = make([]int, width)
		for i := 0; i < width; i++ {
			ranks[rk][i] = r.addTask(fmt.Sprintf("F%d.%d", rk, i), jitter(rng))
		}
	}
	for rk := 0; rk < logN; rk++ {
		bit := 1 << rk
		for i := 0; i < width; i++ {
			r.addEdge(ranks[rk][i], ranks[rk+1][i], jitter(rng))
			r.addEdge(ranks[rk][i], ranks[rk+1][i^bit], jitter(rng))
		}
	}
	return r.build(granularity)
}

// ForkJoin returns stages sequential fork-join phases, each forking into
// width parallel tasks. Stage barriers model iterative data-parallel
// programs; the fork/join tasks are light, the workers heavy.
func ForkJoin(stages, width int, granularity float64, rng *rand.Rand) (*graph.Graph, error) {
	if stages < 1 || width < 1 {
		return nil, fmt.Errorf("gen: fork-join needs stages >= 1 and width >= 1, got %d/%d", stages, width)
	}
	if granularity <= 0 {
		return nil, fmt.Errorf("gen: granularity %v must be positive", granularity)
	}
	var r rawGraph
	prev := r.addTask("start", 0.2)
	for s := 0; s < stages; s++ {
		join := r.addTask(fmt.Sprintf("join%d", s), 0.2)
		for w := 0; w < width; w++ {
			work := r.addTask(fmt.Sprintf("w%d.%d", s, w), 1+jitter(rng))
			r.addEdge(prev, work, jitter(rng))
			r.addEdge(work, join, jitter(rng))
		}
		prev = join
	}
	return r.build(granularity)
}
