package sched

import (
	"repro/sched/graph"
	"repro/sched/system"
)

// BSATrace is Result.Trace for the "bsa" and "bsa-full" algorithms.
type BSATrace struct {
	// InitialPivot is the processor with the shortest critical-path
	// length, where the serialization was injected.
	InitialPivot system.ProcID
	// PivotName is that processor's display name.
	PivotName string
	// PivotCPLength is the critical-path length on the initial pivot.
	PivotCPLength float64
	// Serial is the serialization order injected into the pivot.
	Serial []graph.TaskID
	// CP, IB and OB are the serialization's three-way task partition —
	// critical path, in-branch and out-branch — with respect to the
	// initial pivot's actual execution costs.
	CP, IB, OB []graph.TaskID

	// Migrations counts committed task migrations, Reverted the ones
	// rolled back by the bubble-up guard, Sweeps the breadth-first pivot
	// passes and Evaluations the tentative neighbour finish-time
	// computations.
	Migrations  int
	Reverted    int
	Sweeps      int
	Evaluations int
	// Rebuilds, Placements and MsgPlacements count timeline derivations
	// and the task/message placements they performed.
	Rebuilds      int
	Placements    int
	MsgPlacements int
	// CacheHits, CachePartials and CacheMisses describe the sweep-level
	// candidate cache: rows served without re-evaluation, rows refreshed
	// by re-evaluating only commit-stamped entries, and rows evaluated in
	// full. All zero when the cache is disabled (WithCandidateCache(false)
	// or the full-rebuild engine).
	CacheHits     int
	CachePartials int
	CacheMisses   int
	// RestoredBest reports whether the final elitism pass rewound to an
	// earlier, shorter state.
	RestoredBest bool
}

// RescheduleTrace is Result.Trace for results produced by Reschedule:
// the warm-started BSA reconvergence.
type RescheduleTrace struct {
	// DeltaOps is the number of operations in the applied delta and
	// DirtyTasks the size of the reconvergence frontier after the adopted
	// schedule was diffed against the previous one.
	DeltaOps   int
	DirtyTasks int
	// Serial is the adopted serialization: the previous schedule's
	// start-time order with appended tasks at the end.
	Serial []graph.TaskID

	// The remaining counters mirror BSATrace, restricted to the warm
	// sweeps actually run.
	Migrations    int
	Reverted      int
	Sweeps        int
	Evaluations   int
	Rebuilds      int
	Placements    int
	MsgPlacements int
	CacheHits     int
	CachePartials int
	CacheMisses   int
	RestoredBest  bool
}

// DLSTrace is Result.Trace for the "dls" algorithm.
type DLSTrace struct {
	// Steps is the number of scheduling steps (== tasks); Evaluations
	// the (task, processor) pairs evaluated.
	Steps       int
	Evaluations int
}

// HEFTTrace is Result.Trace for the "heft" algorithm.
type HEFTTrace struct {
	// Ranks holds the upward rank of every task.
	Ranks []float64
}

// CPOPTrace is Result.Trace for the "cpop" algorithm.
type CPOPTrace struct {
	// CPProc is the processor the critical path was pinned to, CPProcName
	// its display name.
	CPProc     system.ProcID
	CPProcName string
	// OnCP flags the tasks treated as critical-path tasks.
	OnCP []bool
}
