package sched_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestAPISealNoInternalTypesInExportedSignatures is the API-leak
// regression gate: no exported declaration of the public packages may
// mention a repro/internal/... type. The engines' representations stay
// swappable only as long as they never escape; this test fails the build
// the moment one does.
//
// The check is syntactic: it parses every non-test file of the public
// packages, records which file-local names are imports of
// repro/internal/..., and walks the exported surface (function
// signatures, exported type definitions minus unexported fields and
// methods, exported vars/consts) looking for selector expressions rooted
// at one of those names. Function bodies are invisible — internal
// packages remain free to power the implementation.
func TestAPISealNoInternalTypesInExportedSignatures(t *testing.T) {
	// Directories relative to this package, with their import paths for
	// error messages.
	publicPkgs := map[string]string{
		"repro/sched":          ".",
		"repro/sched/graph":    "graph",
		"repro/sched/system":   "system",
		"repro/sched/gen":      "gen",
		"repro/sched/register": "register",
	}
	for path, dir := range publicPkgs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			checkFile(t, path, filepath.Join(dir, name))
		}
	}
}

func checkFile(t *testing.T, pkgPath, file string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, 0)
	if err != nil {
		t.Fatalf("%s: %v", file, err)
	}

	// Local names bound to repro/internal/... imports.
	internalName := map[string]string{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !strings.Contains(path, "/internal/") {
			continue
		}
		local := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			local = imp.Name.Name
		}
		internalName[local] = path
	}
	if len(internalName) == 0 {
		return
	}

	leak := func(where string, expr ast.Node) {
		ast.Inspect(expr, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if path, hit := internalName[id.Name]; hit {
					pos := fset.Position(sel.Pos())
					t.Errorf("%s: %s leaks internal type %s.%s (%s) at %s",
						pkgPath, where, id.Name, sel.Sel.Name, path, pos)
				}
			}
			return true
		})
	}

	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Recv != nil {
				leak("method "+d.Name.Name+" receiver", d.Recv)
			}
			leak("func "+d.Name.Name, d.Type)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					checkTypeExpr(t, leak, "type "+s.Name.Name, s.Type)
				case *ast.ValueSpec:
					exported := false
					for _, n := range s.Names {
						if n.IsExported() {
							exported = true
						}
					}
					if !exported {
						continue
					}
					where := "var/const " + s.Names[0].Name
					if s.Type != nil {
						leak(where, s.Type)
					}
					for _, v := range s.Values {
						leak(where, v)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether d is a plain function or a method on
// an exported type (methods on unexported types are not API).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	expr := d.Recv.List[0].Type
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr: // generic receiver
			expr = e.X
		case *ast.Ident:
			return e.IsExported()
		default:
			return true // be conservative: check it
		}
	}
}

// checkTypeExpr walks an exported type definition, skipping unexported
// struct fields and unexported interface methods (they are not API).
func checkTypeExpr(t *testing.T, leak func(string, ast.Node), where string, expr ast.Expr) {
	switch e := expr.(type) {
	case *ast.StructType:
		for _, f := range e.Fields.List {
			if len(f.Names) == 0 { // embedded
				leak(where+" embedded field", f.Type)
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					leak(where+" field "+n.Name, f.Type)
					break
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range e.Methods.List {
			if len(m.Names) == 0 { // embedded interface
				leak(where+" embedded interface", m.Type)
				continue
			}
			for _, n := range m.Names {
				if n.IsExported() {
					leak(where+" method "+n.Name, m.Type)
					break
				}
			}
		}
	default:
		leak(where, expr)
	}
}
