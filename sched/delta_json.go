package sched

import (
	"encoding/json"
	"fmt"
	"io"
)

// deltaJSON is the on-disk representation used by MarshalJSON and
// DeltaFromJSON. Everything is referenced by name, so a delta document is
// stable under ID renumbering, exactly like the graph interchange format.
type deltaJSON struct {
	RemoveProcs []string        `json:"remove_procs,omitempty"`
	RemoveLinks []deltaLinkJSON `json:"remove_links,omitempty"`
	ExecFactors []deltaExecJSON `json:"exec_factors,omitempty"`
	CommFactors []deltaCommJSON `json:"comm_factors,omitempty"`
	AddTasks    []deltaTaskJSON `json:"add_tasks,omitempty"`
	AddEdges    []deltaEdgeJSON `json:"add_edges,omitempty"`
}

type deltaLinkJSON struct {
	A string `json:"a"`
	B string `json:"b"`
}

type deltaExecJSON struct {
	Task   string  `json:"task"`
	Proc   string  `json:"proc"`
	Factor float64 `json:"factor"`
}

type deltaCommJSON struct {
	From   string  `json:"from"`
	To     string  `json:"to"`
	LinkA  string  `json:"link_a"`
	LinkB  string  `json:"link_b"`
	Factor float64 `json:"factor"`
}

type deltaTaskJSON struct {
	Name string  `json:"name"`
	Cost float64 `json:"cost"`
}

type deltaEdgeJSON struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Cost float64 `json:"cost"`
}

// MarshalJSON encodes the delta in the documented wire schema. Operation
// order within each kind is preserved, so save/load round-trips are
// byte-stable.
func (d Delta) MarshalJSON() ([]byte, error) {
	j := deltaJSON{}
	for _, op := range d.removeProcs {
		j.RemoveProcs = append(j.RemoveProcs, op.Proc)
	}
	for _, op := range d.removeLinks {
		j.RemoveLinks = append(j.RemoveLinks, deltaLinkJSON{A: op.A, B: op.B})
	}
	for _, op := range d.execFactors {
		j.ExecFactors = append(j.ExecFactors, deltaExecJSON{Task: op.Task, Proc: op.Proc, Factor: op.Factor})
	}
	for _, op := range d.commFactors {
		j.CommFactors = append(j.CommFactors, deltaCommJSON{
			From: op.From, To: op.To, LinkA: op.LinkA, LinkB: op.LinkB, Factor: op.Factor,
		})
	}
	for _, op := range d.addTasks {
		j.AddTasks = append(j.AddTasks, deltaTaskJSON{Name: op.Name, Cost: op.Cost})
	}
	for _, op := range d.addEdges {
		j.AddEdges = append(j.AddEdges, deltaEdgeJSON{From: op.From, To: op.To, Cost: op.Cost})
	}
	return json.Marshal(j)
}

// DeltaFromJSON decodes a delta previously written by MarshalJSON (or
// hand written in the same schema) and runs the DeltaBuilder's
// value-level validation. Name resolution against a concrete problem
// happens later, in Apply or Reschedule.
func DeltaFromJSON(data []byte) (Delta, error) {
	var j deltaJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return Delta{}, fmt.Errorf("sched: decode delta: %w", err)
	}
	b := NewDeltaBuilder()
	for _, name := range j.RemoveProcs {
		b.RemoveProc(name)
	}
	for _, l := range j.RemoveLinks {
		b.RemoveLink(l.A, l.B)
	}
	for _, f := range j.ExecFactors {
		b.SetExecFactor(f.Task, f.Proc, f.Factor)
	}
	for _, f := range j.CommFactors {
		b.SetCommFactor(f.From, f.To, f.LinkA, f.LinkB, f.Factor)
	}
	for _, t := range j.AddTasks {
		b.AddTask(t.Name, t.Cost)
	}
	for _, e := range j.AddEdges {
		b.AddEdge(e.From, e.To, e.Cost)
	}
	return b.Build()
}

// ReadDeltaJSON decodes a delta from r.
func ReadDeltaJSON(r io.Reader) (Delta, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Delta{}, err
	}
	return DeltaFromJSON(data)
}

// WriteJSON writes the delta to w as indented JSON.
func (d Delta) WriteJSON(w io.Writer) error {
	data, err := d.MarshalJSON()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(json.RawMessage(data), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}
