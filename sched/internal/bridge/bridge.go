// Package bridge is the seam between the public sched API and the
// engines' mutable schedule representation. Algorithm adapters under
// sched/ hand an engine *schedule.Schedule to package sched through
// NewView without schedule types ever appearing in sched's exported
// signatures; being under sched/internal/, the seam itself is invisible
// outside the sched tree.
package bridge

import "repro/internal/schedule"

// NewView is installed by package sched at init time. It wraps an engine
// schedule into sched's read-only *sched.Schedule view (returned as any to
// avoid an import cycle; callers type-assert).
var NewView func(s *schedule.Schedule) any
