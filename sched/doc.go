// Package sched is the public front door of this repository: one
// Scheduler interface, one Result shape and one algorithm registry for
// every implemented scheduling algorithm (BSA, DLS, HEFT, CPOP and the
// BSA full-rebuild oracle).
//
// The whole problem model is public and lives in the sched subpackages:
//
//   - repro/sched/graph — immutable task graphs: fluent Builder, typed
//     validation errors, JSON + DOT load/save, levels and critical path.
//   - repro/sched/system — target systems: processor Network with
//     topology constructors (ring, hypercube, fully connected, random,
//     ...), heterogeneity factor matrices, JSON + DOT load/save.
//   - repro/sched/gen — seeded, deterministic generators for the paper's
//     workload suites, its topologies and its Figure 1 worked example.
//
// Packages under internal/ are implementation detail and not a supported
// surface; nothing in the exported API of sched or its subpackages
// references an internal type (enforced by an API-seal test), and the
// standalone consumer module under tests/extmodule proves the public
// surface is sufficient to build problems and read schedules.
//
// # Usage
//
// Importing repro/sched/register (blank import) registers every built-in
// algorithm; each algorithm self-registers from its own adapter file, so
// there are no import cycles and no side effects unless asked for:
//
//	import (
//		"repro/sched"
//		"repro/sched/graph"
//		"repro/sched/system"
//		_ "repro/sched/register"
//	)
//
//	s, err := sched.Lookup("bsa")
//	if err != nil { ... }
//	res, err := s.Schedule(ctx, sched.Problem{Graph: g, System: sys},
//		sched.WithSeed(42), sched.WithWorkers(4))
//	if err != nil { ... }
//	fmt.Println(res.Makespan, res.Summary)
//
// A Problem bundles the task graph with the heterogeneous target system
// (which carries the network topology, and with it message routing).
// Every run returns a *Result holding a read-only Schedule view — task
// slots, per-hop message reservations, Gantt renderings, JSON export and
// feasibility checks (Validate, Replay, Verify) — plus the makespan,
// wall-clock timing, uniform per-algorithm counters (Stats) and a typed
// algorithm-specific trace reached through Result.BSA, Result.DLS,
// Result.HEFT or Result.CPOP.
//
// Runs are context-aware: cancellation and deadlines are observed inside
// the algorithms' migration/placement loops, so long sweeps abort cleanly
// with ctx.Err().
//
// # Quasi-dynamic rescheduling
//
// A Delta is a typed, validated edit script against a Problem: remove
// processors or links, scale execution/communication factors, append
// tasks and edges. Deltas are built with DeltaBuilder (or loaded from
// the JSON interchange form via DeltaFromJSON) and applied with
// Delta.Apply, which rejects edits that name unknown entities,
// disconnect the network or produce invalid costs — each failure is a
// typed error (UnknownProcError, DisconnectedError, DeltaValueError,
// ...). Reschedule(ctx, prev, delta, opts...) then warm-starts BSA from
// the previous Result instead of scheduling the changed problem from
// scratch: surviving placements and routes are adopted, only the tasks
// disturbed by the delta (and whatever their migration ripples touch)
// are revisited, and the reconverged Result carries a RescheduleTrace
// plus Stats counters (dirty_tasks, evaluations, delta_ops) that
// quantify how much work the warm start saved over a cold run.
//
// Functional options (WithSeed, WithWorkers, WithFullRebuild,
// WithInsertion, ...) replace the per-package option structs of earlier
// revisions; options an algorithm does not understand are ignored, which
// lets one option list drive heterogeneous algorithm sets in sweeps.
//
// The runnable Example functions in example_test.go are compiled and
// executed by go test, so the documented surface cannot rot.
package sched
