// Package sched is the public front door of this repository: one
// Scheduler interface, one Result shape and one algorithm registry for
// every implemented scheduling algorithm (BSA, DLS, HEFT, CPOP and the
// BSA full-rebuild oracle).
//
// The packages under internal/ are implementation detail and not a
// supported surface; consumers — including this repository's own cmd/
// binaries, examples/ and experiment harness — go through sched.
//
// # Usage
//
// Importing repro/sched/register (blank import) registers every built-in
// algorithm; each algorithm self-registers from its own adapter file, so
// there are no import cycles and no side effects unless asked for:
//
//	import (
//		"repro/sched"
//		_ "repro/sched/register"
//	)
//
//	s, err := sched.Lookup("bsa")
//	if err != nil { ... }
//	res, err := s.Schedule(ctx, sched.Problem{Graph: g, System: sys},
//		sched.WithSeed(42), sched.WithWorkers(4))
//	if err != nil { ... }
//	fmt.Println(res.Makespan, res.Summary)
//
// A Problem bundles the task graph with the heterogeneous target system
// (which carries the network topology, and with it message routing).
// Every run returns a *Result holding the full feasible schedule, its
// makespan, wall-clock timing, uniform per-algorithm counters (Stats) and
// a typed algorithm-specific trace.
//
// Runs are context-aware: cancellation and deadlines are observed inside
// the algorithms' migration/placement loops, so long sweeps abort cleanly
// with ctx.Err().
//
// Functional options (WithSeed, WithWorkers, WithFullRebuild,
// WithInsertion, ...) replace the per-package option structs of earlier
// revisions; options an algorithm does not understand are ignored, which
// lets one option list drive heterogeneous algorithm sets in sweeps.
package sched
