package sched

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Descriptor declares one registrable algorithm.
type Descriptor struct {
	// Name is the canonical, case-insensitive registry name ("bsa").
	Name string
	// Aliases are additional lookup names ("bsa-oracle" for "bsa-full").
	Aliases []string
	// Description is a one-line account for listings and CLI help.
	Description string
	// New constructs a Scheduler. Implementations must be stateless (or
	// internally synchronized): Lookup calls New per lookup and the same
	// value may serve concurrent Schedule calls.
	New func() Scheduler
}

// registry is the single, locked algorithm table. Every earlier
// per-package registry (notably internal/experiment's, whose map literal
// was also read unlocked at init time) is folded into this one.
var (
	registryMu  sync.RWMutex
	descriptors = map[string]Descriptor{} // canonical name -> descriptor
	aliasToName = map[string]string{}     // any lookup name -> canonical
)

func canonicalize(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// Register adds an algorithm to the global registry. Names and aliases
// are case-insensitive. It panics on an empty name, a nil constructor or
// a name/alias collision — registration happens in init functions, where
// a panic is an immediate, attributable build-time failure rather than a
// latent lookup miss.
func Register(d Descriptor) {
	name := canonicalize(d.Name)
	if name == "" {
		panic("sched: Register with empty name")
	}
	if d.New == nil {
		panic(fmt.Sprintf("sched: Register(%q) with nil constructor", d.Name))
	}
	d.Name = name
	registryMu.Lock()
	defer registryMu.Unlock()
	if prev, ok := aliasToName[name]; ok {
		panic(fmt.Sprintf("sched: algorithm %q already registered (by %q)", name, prev))
	}
	names := []string{name}
	for _, a := range d.Aliases {
		alias := canonicalize(a)
		if alias == "" || alias == name {
			continue
		}
		if prev, ok := aliasToName[alias]; ok {
			panic(fmt.Sprintf("sched: alias %q of %q already registered (by %q)", alias, name, prev))
		}
		names = append(names, alias)
	}
	for _, n := range names {
		aliasToName[n] = name
	}
	descriptors[name] = d
}

// Unregister removes an algorithm and its aliases. It exists for tests;
// production registries are append-only.
func Unregister(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	canonical := canonicalize(name)
	if _, ok := descriptors[canonical]; !ok {
		return
	}
	delete(descriptors, canonical)
	for alias, target := range aliasToName {
		if target == canonical {
			delete(aliasToName, alias)
		}
	}
}

// UnknownAlgorithmError is returned by Lookup for names with no
// registration. Known lists the canonical registered names.
type UnknownAlgorithmError struct {
	Name  string
	Known []string
}

func (e *UnknownAlgorithmError) Error() string {
	if len(e.Known) == 0 {
		return fmt.Sprintf("sched: unknown algorithm %q (no algorithms registered — blank-import repro/sched/register)", e.Name)
	}
	return fmt.Sprintf("sched: unknown algorithm %q (known: %s)", e.Name, strings.Join(e.Known, ", "))
}

// Lookup resolves a name or alias (case-insensitive) to a ready-to-use
// Scheduler. On failure the error is an *UnknownAlgorithmError naming the
// registered algorithms.
func Lookup(name string) (Scheduler, error) {
	registryMu.RLock()
	canonical, ok := aliasToName[canonicalize(name)]
	var d Descriptor
	if ok {
		d = descriptors[canonical]
	}
	registryMu.RUnlock()
	if !ok {
		return nil, &UnknownAlgorithmError{Name: name, Known: Names()}
	}
	return d.New(), nil
}

// List returns the registered descriptors sorted by canonical name.
func List() []Descriptor {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Descriptor, 0, len(descriptors))
	for _, d := range descriptors {
		d.Aliases = append([]string(nil), d.Aliases...)
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted canonical algorithm names.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(descriptors))
	for name := range descriptors {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
