package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// fakeScheduler is a registry stub; it never schedules anything.
type fakeScheduler struct{ name string }

func (f fakeScheduler) Name() string { return f.name }
func (f fakeScheduler) Schedule(ctx context.Context, p Problem, opts ...Option) (*Result, error) {
	return &Result{Algorithm: f.name}, nil
}

func fakeDescriptor(name string, aliases ...string) Descriptor {
	canonical := strings.ToLower(name)
	return Descriptor{
		Name:    name,
		Aliases: aliases,
		New:     func() Scheduler { return fakeScheduler{name: canonical} },
	}
}

func TestRegisterLookupAliasesCaseInsensitive(t *testing.T) {
	Register(fakeDescriptor("Test-Algo", "TA", "test-alias"))
	defer Unregister("test-algo")

	for _, name := range []string{"test-algo", "TEST-ALGO", " Test-Algo ", "ta", "TA", "test-alias"} {
		s, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if s.Name() != "test-algo" {
			t.Fatalf("Lookup(%q).Name()=%q", name, s.Name())
		}
	}

	found := false
	for _, d := range List() {
		if d.Name == "test-algo" {
			found = true
			if len(d.Aliases) != 2 {
				t.Fatalf("aliases=%v", d.Aliases)
			}
		}
	}
	if !found {
		t.Fatal("test-algo not in List()")
	}

	Unregister("TEST-ALGO")
	if _, err := Lookup("ta"); err == nil {
		t.Fatal("alias should be gone after Unregister")
	}
}

func TestLookupUnknownAlgorithm(t *testing.T) {
	Register(fakeDescriptor("known-algo"))
	defer Unregister("known-algo")

	_, err := Lookup("definitely-not-registered")
	if err == nil {
		t.Fatal("expected error")
	}
	var unknown *UnknownAlgorithmError
	if !errors.As(err, &unknown) {
		t.Fatalf("err=%T, want *UnknownAlgorithmError", err)
	}
	if unknown.Name != "definitely-not-registered" {
		t.Fatalf("Name=%q", unknown.Name)
	}
	if !strings.Contains(err.Error(), "known-algo") {
		t.Fatalf("error should list known algorithms: %v", err)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { Register(fakeDescriptor("")) })
	mustPanic("nil constructor", func() { Register(Descriptor{Name: "nil-new"}) })

	Register(fakeDescriptor("dup-algo", "dup-alias"))
	defer Unregister("dup-algo")
	mustPanic("duplicate name", func() { Register(fakeDescriptor("DUP-ALGO")) })
	mustPanic("duplicate alias", func() { Register(fakeDescriptor("other-algo", "dup-alias")) })
	// The failed registrations must not leave partial state behind.
	if _, err := Lookup("other-algo"); err == nil {
		t.Fatal("failed Register must not partially register")
	}
}

// TestRegistryConcurrency hammers Register/Lookup/List/Names/Unregister
// from many goroutines; run with -race (CI does) to verify the single
// locked implementation.
func TestRegistryConcurrency(t *testing.T) {
	const goroutines = 16
	const iters = 50
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("conc-algo-%d", i)
			for j := 0; j < iters; j++ {
				Register(fakeDescriptor(name))
				if s, err := Lookup(name); err != nil || s.Name() != name {
					t.Errorf("Lookup(%q)=%v,%v", name, s, err)
					return
				}
				List()
				Names()
				Lookup("conc-algo-0") // may or may not exist; must not race
				Unregister(name)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		Unregister(fmt.Sprintf("conc-algo-%d", i))
	}
}

func TestProblemValidate(t *testing.T) {
	if err := (Problem{}).Validate(); err == nil {
		t.Fatal("empty problem must not validate")
	}
	if _, err := NewProblem(nil, nil); err == nil {
		t.Fatal("NewProblem(nil, nil) must fail")
	}
}

func TestNewConfigDefaultsAndOptions(t *testing.T) {
	cfg := NewConfig()
	if !cfg.VIPFollow || !cfg.RoutePruning || !cfg.MigrationGuard || !cfg.HeterogeneityAdjust || !cfg.CandidateCache {
		t.Fatalf("defaults must be the published algorithms: %+v", cfg)
	}
	if cfg.Seed != 0 || cfg.Workers != 0 || cfg.FullRebuild || cfg.Insertion || cfg.MaxSweeps != 0 || cfg.GuardSlack != 0 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}

	cfg = NewConfig(
		WithSeed(7), WithWorkers(3), WithFullRebuild(true), WithInsertion(true),
		WithMaxSweeps(2), WithGuardSlack(-1), WithVIPFollow(false),
		WithRoutePruning(false), WithMigrationGuard(false), WithHeterogeneityAdjust(false),
		WithCandidateCache(false),
		nil,
	)
	want := Config{Seed: 7, Workers: 3, FullRebuild: true, Insertion: true, MaxSweeps: 2, GuardSlack: -1}
	if cfg != want {
		t.Fatalf("cfg=%+v want %+v", cfg, want)
	}
}

func TestStats(t *testing.T) {
	s := Stats{"b": 2, "a": 1}
	if s.Get("a") != 1 || s.Get("missing") != 0 {
		t.Fatalf("Get: %+v", s)
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys()=%v", keys)
	}
}
