package register

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cpop"
	"repro/sched"
)

func init() {
	sched.Register(sched.Descriptor{
		Name:        "cpop",
		Description: "Contention-aware CPOP (Topcuoglu, Hariri & Wu): critical path pinned to its cheapest processor, remaining tasks by earliest finish time",
		New:         func() sched.Scheduler { return cpopScheduler{} },
	})
}

// cpopScheduler adapts internal/cpop to the sched API.
type cpopScheduler struct{}

func (cpopScheduler) Name() string { return "cpop" }

func (c cpopScheduler) Schedule(ctx context.Context, p sched.Problem, opts ...sched.Option) (*sched.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := cpop.ScheduleContext(ctx, p.Graph, p.System)
	if err != nil {
		return nil, err
	}
	onCP := 0
	for _, b := range res.OnCP {
		if b {
			onCP++
		}
	}
	cpName := p.System.Net.Proc(res.CPProc).Name
	out := &sched.Result{
		Algorithm: "cpop",
		Schedule:  view(res.Schedule),
		Makespan:  res.Schedule.Length(),
		Elapsed:   time.Since(start),
		Summary:   fmt.Sprintf("cpop: %d critical-path tasks pinned to %s", onCP, cpName),
		Stats: sched.Stats{
			"cp_tasks": float64(onCP),
		},
	}
	out.SetTrace(&sched.CPOPTrace{CPProc: res.CPProc, CPProcName: cpName, OnCP: res.OnCP})
	return out, nil
}
