package register

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/cpop"
	"repro/internal/dls"
	"repro/internal/heft"
	"repro/internal/schedule"
	"repro/sched"
	"repro/sched/gen"
	"repro/sched/graph"
	"repro/sched/system"
)

// instance builds the shared random problem every cross-algorithm test
// runs on.
func instance(t *testing.T) (*graph.Graph, *system.System) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	g, err := gen.RandomLayered(80, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := system.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), 1, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g, sys
}

func marshal(t *testing.T, s json.Marshaler) []byte {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestLegacyEquivalence asserts the acceptance criterion of the sched
// API: every algorithm run through sched.Lookup(name).Schedule produces a
// byte-identical serialized schedule to its legacy internal entry point.
func TestLegacyEquivalence(t *testing.T) {
	g, sys := instance(t)
	const seed = 5
	legacy := map[string]func() (*schedule.Schedule, error){
		"bsa": func() (*schedule.Schedule, error) {
			r, err := core.Schedule(g, sys, core.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		},
		"bsa-full": func() (*schedule.Schedule, error) {
			r, err := core.Schedule(g, sys, core.Options{Seed: seed, UseFullRebuild: true})
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		},
		"dls": func() (*schedule.Schedule, error) {
			r, err := dls.Schedule(g, sys, dls.Options{})
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		},
		"heft": func() (*schedule.Schedule, error) {
			r, err := heft.Schedule(g, sys)
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		},
		"cpop": func() (*schedule.Schedule, error) {
			r, err := cpop.Schedule(g, sys)
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		},
	}
	for name, legacyRun := range legacy {
		t.Run(name, func(t *testing.T) {
			s, err := sched.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Schedule(context.Background(),
				sched.Problem{Graph: g, System: sys}, sched.WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			ls, err := legacyRun()
			if err != nil {
				t.Fatal(err)
			}
			got, want := marshal(t, res.Schedule), marshal(t, ls)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: sched and legacy schedules differ\nsched:  %.200s\nlegacy: %.200s", name, got, want)
			}
			if res.Makespan != ls.Length() {
				t.Fatalf("%s: Makespan=%v legacy=%v", name, res.Makespan, ls.Length())
			}
		})
	}
}

// TestEveryRegisteredSchedulerProducesValidSchedules is the
// cross-algorithm invariant: whatever is in the registry must produce a
// complete schedule passing the feasibility validator on a shared random
// instance, with a coherent uniform Result.
func TestEveryRegisteredSchedulerProducesValidSchedules(t *testing.T) {
	g, sys := instance(t)
	problem := sched.Problem{Graph: g, System: sys}
	descriptors := sched.List()
	if len(descriptors) < 5 {
		t.Fatalf("want >=5 registered algorithms, got %v", sched.Names())
	}
	for _, d := range descriptors {
		t.Run(d.Name, func(t *testing.T) {
			s, err := sched.Lookup(d.Name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Schedule(context.Background(), problem, sched.WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			if res.Algorithm != d.Name {
				t.Errorf("Algorithm=%q, want %q", res.Algorithm, d.Name)
			}
			if res.Schedule == nil || !res.Schedule.Complete() {
				t.Fatal("incomplete schedule")
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Fatalf("infeasible schedule: %v", err)
			}
			if res.Makespan != res.Schedule.Length() {
				t.Errorf("Makespan=%v, Length=%v", res.Makespan, res.Schedule.Length())
			}
			if res.Summary == "" {
				t.Error("empty Summary")
			}
			if res.Elapsed < 0 {
				t.Errorf("Elapsed=%v", res.Elapsed)
			}
		})
	}
}

// TestInvalidProblemRejected: adapters must reject mismatched problems
// before running.
func TestInvalidProblemRejected(t *testing.T) {
	g, sys := instance(t)
	small, err := gen.RandomLayered(10, 1.0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	for _, name := range sched.Names() {
		s, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		// sys is dimensioned for g, not for small.
		if _, err := s.Schedule(context.Background(), sched.Problem{Graph: small, System: sys}); err == nil {
			t.Errorf("%s: mismatched problem must fail", name)
		}
		if _, err := s.Schedule(context.Background(), sched.Problem{}); err == nil {
			t.Errorf("%s: empty problem must fail", name)
		}
	}
}

// countdownCtx reports cancellation after its Err budget is exhausted —
// a deterministic way to cancel mid-run, between two scheduling
// decisions, without racing a timer against the scheduler.
type countdownCtx struct {
	context.Context
	budget int32
}

func (c *countdownCtx) Err() error {
	if atomic.AddInt32(&c.budget, -1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestContextCancellationMidRun cancels each algorithm after a handful
// of loop iterations and expects ctx.Err() back (wrapped).
func TestContextCancellationMidRun(t *testing.T) {
	g, sys := instance(t)
	problem := sched.Problem{Graph: g, System: sys}
	for _, name := range []string{"bsa", "bsa-full", "dls", "heft", "cpop"} {
		t.Run(name, func(t *testing.T) {
			s, err := sched.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			// Budget 5: the run survives validation and the first loop
			// iterations, then aborts mid-migration/placement loop.
			ctx := &countdownCtx{Context: context.Background(), budget: 5}
			res, err := s.Schedule(ctx, problem, sched.WithSeed(1))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err=%v, want context.Canceled", err)
			}
			if res != nil {
				t.Fatalf("res=%v, want nil on cancellation", res)
			}
		})
	}
}

// TestContextCancelledBeforeRun: an already-canceled real context aborts
// immediately for every registered algorithm.
func TestContextCancelledBeforeRun(t *testing.T) {
	g, sys := instance(t)
	problem := sched.Problem{Graph: g, System: sys}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range sched.Names() {
		s, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Schedule(ctx, problem); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err=%v, want context.Canceled", name, err)
		}
	}
}

// TestDLSInsertionOptionChangesLinkModel: WithInsertion is consumed by
// the DLS adapter and produces the (different, typically shorter)
// insertion-based schedule of dls.Options.InsertionLinks.
func TestDLSInsertionOptionChangesLinkModel(t *testing.T) {
	g, sys := instance(t)
	s, err := sched.Lookup("dls")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Schedule(context.Background(), sched.Problem{Graph: g, System: sys}, sched.WithInsertion(true))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := dls.Schedule(g, sys, dls.Options{InsertionLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, res.Schedule), marshal(t, legacy.Schedule)) {
		t.Fatal("WithInsertion(true) does not match dls.Options{InsertionLinks: true}")
	}
}

// TestBSATraceCarriesSerializationDetail: the BSA trace exposes pivot,
// serial order and the CP/IB/OB partition, covering all tasks exactly
// once.
func TestBSATraceCarriesSerializationDetail(t *testing.T) {
	g, sys := instance(t)
	s, err := sched.Lookup("bsa")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Schedule(context.Background(), sched.Problem{Graph: g, System: sys}, sched.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	trace, ok := res.BSA()
	if !ok {
		t.Fatalf("Trace=%T, want *sched.BSATrace", res.TraceAny())
	}
	if trace.PivotName == "" {
		t.Error("empty PivotName")
	}
	if len(trace.Serial) != g.NumTasks() {
		t.Errorf("Serial has %d tasks, want %d", len(trace.Serial), g.NumTasks())
	}
	if n := len(trace.CP) + len(trace.IB) + len(trace.OB); n != g.NumTasks() {
		t.Errorf("partition covers %d tasks, want %d", n, g.NumTasks())
	}
	if res.Stats.Get("sweeps") < 1 {
		t.Errorf("sweeps=%v", res.Stats.Get("sweeps"))
	}
}
