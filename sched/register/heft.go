package register

import (
	"context"
	"fmt"
	"time"

	"repro/internal/heft"
	"repro/sched"
)

func init() {
	sched.Register(sched.Descriptor{
		Name:        "heft",
		Description: "Contention-aware HEFT (Topcuoglu, Hariri & Wu): upward-rank list scheduling with shortest-path routed, insertion-based messages",
		New:         func() sched.Scheduler { return heftScheduler{} },
	})
}

// heftScheduler adapts internal/heft to the sched API.
type heftScheduler struct{}

func (heftScheduler) Name() string { return "heft" }

func (h heftScheduler) Schedule(ctx context.Context, p sched.Problem, opts ...sched.Option) (*sched.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := heft.ScheduleContext(ctx, p.Graph, p.System)
	if err != nil {
		return nil, err
	}
	out := &sched.Result{
		Algorithm: "heft",
		Schedule:  view(res.Schedule),
		Makespan:  res.Schedule.Length(),
		Elapsed:   time.Since(start),
		Summary:   fmt.Sprintf("heft: %d tasks by non-increasing upward rank", p.Graph.NumTasks()),
		Stats: sched.Stats{
			"tasks": float64(p.Graph.NumTasks()),
		},
	}
	out.SetTrace(&sched.HEFTTrace{Ranks: res.Ranks})
	return out, nil
}
