// Package register wires every built-in algorithm into the sched
// registry. Each algorithm self-registers from its own adapter file
// (bsa.go, dls.go, heft.go, cpop.go), so blank-importing this package is
// all a consumer needs:
//
//	import _ "repro/sched/register"
//
// The adapters here — plus sched's own warm-start entry point
// (sched.Reschedule, which drives internal/core's reschedule context
// directly) — are the only non-test code allowed to import the
// internal/core, internal/dls, internal/heft and internal/cpop algorithm
// packages; everything else goes through repro/sched.
package register

import (
	"repro/internal/schedule"
	"repro/sched"
	"repro/sched/internal/bridge"
)

// view wraps an engine schedule into the public read-only sched.Schedule.
// bridge.NewView is installed by package sched at init; sched is imported
// here, so the hook is always set before any adapter runs.
func view(s *schedule.Schedule) *sched.Schedule { return bridge.NewView(s).(*sched.Schedule) }
