// Package register wires every built-in algorithm into the sched
// registry. Each algorithm self-registers from its own adapter file
// (bsa.go, dls.go, heft.go, cpop.go), so blank-importing this package is
// all a consumer needs:
//
//	import _ "repro/sched/register"
//
// The adapters are the only non-test code allowed to import the
// internal/core, internal/dls, internal/heft and internal/cpop algorithm
// packages; everything else goes through repro/sched.
package register
