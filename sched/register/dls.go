package register

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dls"
	"repro/sched"
)

func init() {
	sched.Register(sched.Descriptor{
		Name:        "dls",
		Description: "Dynamic Level Scheduling (Sih & Lee), the paper's baseline: greedy list scheduling over a static shortest-path routing table with link contention",
		New:         func() sched.Scheduler { return dlsScheduler{} },
	})
}

// dlsScheduler adapts internal/dls to the sched API.
type dlsScheduler struct{}

func (dlsScheduler) Name() string { return "dls" }

func (d dlsScheduler) Schedule(ctx context.Context, p sched.Problem, opts ...sched.Option) (*sched.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg := sched.NewConfig(opts...)
	start := time.Now()
	res, err := dls.ScheduleContext(ctx, p.Graph, p.System, dls.Options{
		InsertionLinks:        cfg.Insertion,
		NoHeterogeneityAdjust: !cfg.HeterogeneityAdjust,
	})
	if err != nil {
		return nil, err
	}
	out := &sched.Result{
		Algorithm: "dls",
		Schedule:  view(res.Schedule),
		Makespan:  res.Schedule.Length(),
		Elapsed:   time.Since(start),
		Summary:   fmt.Sprintf("dls: %d steps, %d (task,processor) evaluations", res.Steps, res.Evaluations),
		Stats: sched.Stats{
			"steps":       float64(res.Steps),
			"evaluations": float64(res.Evaluations),
		},
	}
	out.SetTrace(&sched.DLSTrace{Steps: res.Steps, Evaluations: res.Evaluations})
	return out, nil
}
