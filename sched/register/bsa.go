package register

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/sched"
)

func init() {
	sched.Register(sched.Descriptor{
		Name:        "bsa",
		Description: "Bubble Scheduling and Allocation (Kwok & Ahmad): pivot selection, CP-centric serialization, breadth-first bubble migration on the incremental engine",
		New:         func() sched.Scheduler { return bsaScheduler{name: "bsa"} },
	})
	sched.Register(sched.Descriptor{
		Name:        "bsa-full",
		Aliases:     []string{"bsa-oracle"},
		Description: "BSA on the legacy full-rebuild engine — the incremental engine's correctness oracle (byte-identical schedules)",
		New:         func() sched.Scheduler { return bsaScheduler{name: "bsa-full", fullRebuild: true} },
	})
}

// bsaScheduler adapts internal/core to the sched API. The zero value is
// the paper's BSA; fullRebuild selects the oracle engine.
type bsaScheduler struct {
	name        string
	fullRebuild bool
}

func (b bsaScheduler) Name() string { return b.name }

func (b bsaScheduler) Schedule(ctx context.Context, p sched.Problem, opts ...sched.Option) (*sched.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg := sched.NewConfig(opts...)
	start := time.Now()
	res, err := core.ScheduleContext(ctx, p.Graph, p.System, core.Options{
		Seed:                  cfg.Seed,
		Workers:               cfg.Workers,
		Backend:               cfg.Backend,
		UseFullRebuild:        b.fullRebuild || cfg.FullRebuild,
		MaxSweeps:             cfg.MaxSweeps,
		GuardSlack:            cfg.GuardSlack,
		DisableVIPFollow:      !cfg.VIPFollow,
		DisableRoutePruning:   !cfg.RoutePruning,
		DisableMigrationGuard: !cfg.MigrationGuard,
		DisableCandidateCache: !cfg.CandidateCache,
	})
	if err != nil {
		return nil, err
	}
	pivotName := p.System.Net.Proc(res.InitialPivot).Name
	out := &sched.Result{
		Algorithm: b.name,
		Schedule:  view(res.Schedule),
		Makespan:  res.Schedule.Length(),
		Elapsed:   time.Since(start),
		Summary: fmt.Sprintf("%s: pivot=%s (CP length %.2f), %d migrations in %d sweeps (%d reverted)",
			b.name, pivotName, res.PivotCPLength, res.Migrations, res.Sweeps, res.Reverted),
		Stats: sched.Stats{
			"migrations":     float64(res.Migrations),
			"reverted":       float64(res.Reverted),
			"sweeps":         float64(res.Sweeps),
			"evaluations":    float64(res.Evaluations),
			"rebuilds":       float64(res.Rebuilds),
			"placements":     float64(res.Placements),
			"msg_placements": float64(res.MsgPlacements),
			"cache_hits":     float64(res.CacheHits),
			"cache_partials": float64(res.CachePartials),
			"cache_misses":   float64(res.CacheMisses),
		},
	}
	out.SetTrace(&sched.BSATrace{
		InitialPivot:  res.InitialPivot,
		PivotName:     pivotName,
		PivotCPLength: res.PivotCPLength,
		Serial:        res.Serial,
		CP:            res.Partition.CP,
		IB:            res.Partition.IB,
		OB:            res.Partition.OB,
		Migrations:    res.Migrations,
		Reverted:      res.Reverted,
		Sweeps:        res.Sweeps,
		Evaluations:   res.Evaluations,
		Rebuilds:      res.Rebuilds,
		Placements:    res.Placements,
		MsgPlacements: res.MsgPlacements,
		CacheHits:     res.CacheHits,
		CachePartials: res.CachePartials,
		CacheMisses:   res.CacheMisses,
		RestoredBest:  res.RestoredBest,
	})
	return out, nil
}
