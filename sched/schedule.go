package sched

import (
	"fmt"
	"io"
	"math"

	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/sched/graph"
	"repro/sched/internal/bridge"
	"repro/sched/system"
)

// Schedule is the read-only view of a complete feasible schedule: where
// and when every task executes and how every message crosses the network,
// hop by hop. Results hand it out; the view offers no mutators, so a
// Result can be shared freely across goroutines.
//
// Graph and System return the problem inputs the schedule was computed
// against — the same objects the caller passed in, not copies. The view
// stays consistent only as long as those inputs are left unmodified
// (graphs are immutable by construction; a System's exported factor
// matrices are not, so don't write to them after scheduling).
//
// The underlying representation is the engines' mutable schedule, which
// stays internal: this view is the only schedule shape the public API
// exposes.
type Schedule struct {
	s *schedule.Schedule
}

func init() {
	bridge.NewView = func(s *schedule.Schedule) any { return &Schedule{s: s} }
}

// TaskSlot records where and when one task executes.
type TaskSlot struct {
	Proc   system.ProcID
	Start  float64
	End    float64
	Placed bool
}

// Hop is one link traversal of a message: the message occupies Link for
// [Start, End) while moving From -> To.
type Hop struct {
	Link  system.LinkID
	From  system.ProcID
	To    system.ProcID
	Start float64
	End   float64
}

// MessageSlot records the placement of one message: its hop sequence
// (empty for an intra-processor message) and arrival time at the
// destination processor.
type MessageSlot struct {
	Hops    []Hop
	Arrival float64
	Placed  bool
}

// ScheduleStats summarises a complete schedule (see Schedule.Stats).
type ScheduleStats struct {
	Length        float64 // makespan (the paper's schedule length, SL)
	TotalComm     float64 // total link occupancy time
	ProcBusy      float64 // summed task execution time
	AvgProcUtil   float64 // ProcBusy / (m * Length)
	AvgLinkUtil   float64 // TotalComm / (links * Length)
	UsedProcs     int     // processors executing at least one task
	UsedLinks     int     // links carrying at least one hop
	LocalMsgs     int     // messages with zero hops
	RemoteMsgs    int     // messages crossing at least one link
	MaxRouteHops  int     // longest message route
	MeanRouteHops float64 // mean hops over remote messages
}

// String renders the stats on one line.
func (st ScheduleStats) String() string { return schedule.Stats(st).String() }

// ReplayResult reports the outcome of an event-driven replay (see
// Schedule.Replay).
type ReplayResult struct {
	// Events is the number of simulation events processed.
	Events int
	// Length is the simulated makespan. It can close reserved idle gaps
	// but never exceeds the static schedule length.
	Length float64
}

// SlotValueError is reported by AssembleSchedule for a slot time that is
// NaN or ±Inf. Non-finite times would propagate through every timeline
// comparison (NaN makes them all false), so they are rejected before any
// reservation is attempted.
type SlotValueError struct {
	Kind  string // "task" or "message"
	Index int    // TaskID or EdgeID
	Field string // "start", "end", "arrival", "hop N start", ...
	Value float64
}

func (e *SlotValueError) Error() string {
	return fmt.Sprintf("sched: %s %d has non-finite %s %v", e.Kind, e.Index, e.Field, e.Value)
}

func finiteSlot(kind string, index int, field string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return &SlotValueError{Kind: kind, Index: index, Field: field, Value: v}
	}
	return nil
}

// AssembleSchedule builds a Schedule view from explicit slot data: one
// placed TaskSlot per task and one placed MessageSlot per message of
// p.Graph. Every slot is re-reserved on its processor or link timeline
// and the assembled schedule must pass Validate, so an infeasible
// assembly (overlaps, broken routes, precedence violations, wrong
// durations, NaN/Inf times — *SlotValueError) is rejected with a
// descriptive error.
//
// This is the constructor for third-party Scheduler implementations:
// an external algorithm places tasks and messages however it likes,
// then hands the slots to AssembleSchedule to populate Result.Schedule
// with a first-class, verified view — the same shape the built-in
// algorithms return.
func AssembleSchedule(p Problem, tasks []TaskSlot, msgs []MessageSlot) (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	its := make([]schedule.TaskSlot, len(tasks))
	for i := range tasks {
		if err := finiteSlot("task", i, "start", tasks[i].Start); err != nil {
			return nil, err
		}
		if err := finiteSlot("task", i, "end", tasks[i].End); err != nil {
			return nil, err
		}
		its[i] = schedule.TaskSlot(tasks[i])
	}
	ims := make([]schedule.MsgSlot, len(msgs))
	for i := range msgs {
		hops := make([]schedule.Hop, len(msgs[i].Hops))
		for h, hop := range msgs[i].Hops {
			if err := finiteSlot("message", i, fmt.Sprintf("hop %d start", h), hop.Start); err != nil {
				return nil, err
			}
			if err := finiteSlot("message", i, fmt.Sprintf("hop %d end", h), hop.End); err != nil {
				return nil, err
			}
			hops[h] = schedule.Hop(hop)
		}
		if err := finiteSlot("message", i, "arrival", msgs[i].Arrival); err != nil {
			return nil, err
		}
		ims[i] = schedule.MsgSlot{Hops: hops, Arrival: msgs[i].Arrival, Placed: msgs[i].Placed}
	}
	s, err := schedule.FromSlots(p.Graph, p.System, its, ims)
	if err != nil {
		return nil, err
	}
	return &Schedule{s: s}, nil
}

// Graph returns the task graph this schedule maps.
func (s *Schedule) Graph() *graph.Graph { return s.s.G }

// System returns the target system this schedule maps onto.
func (s *Schedule) System() *system.System { return s.s.Sys }

// Length returns the schedule length (makespan): the maximum task finish
// time.
func (s *Schedule) Length() float64 { return s.s.Length() }

// TotalComm returns the total time messages occupy links (the paper's
// "total communication costs").
func (s *Schedule) TotalComm() float64 { return s.s.TotalComm() }

// MaxFinish returns the latest time anything (task or message hop)
// happens.
func (s *Schedule) MaxFinish() float64 { return s.s.MaxFinish() }

// Complete reports whether every task (and hence every message) is
// placed.
func (s *Schedule) Complete() bool { return s.s.Complete() }

// Task returns the slot of task t.
func (s *Schedule) Task(t graph.TaskID) TaskSlot { return TaskSlot(s.s.Tasks[t]) }

// Tasks returns a copy of every task slot, indexed by TaskID.
func (s *Schedule) Tasks() []TaskSlot {
	out := make([]TaskSlot, len(s.s.Tasks))
	for i := range s.s.Tasks {
		out[i] = TaskSlot(s.s.Tasks[i])
	}
	return out
}

// ProcOf returns the processor of a placed task.
func (s *Schedule) ProcOf(t graph.TaskID) system.ProcID { return s.s.ProcOf(t) }

// Message returns the slot of message e, with a copy of its hop sequence.
func (s *Schedule) Message(e graph.EdgeID) MessageSlot { return messageSlot(&s.s.Msgs[e]) }

// Messages returns a copy of every message slot, indexed by EdgeID.
func (s *Schedule) Messages() []MessageSlot {
	out := make([]MessageSlot, len(s.s.Msgs))
	for i := range s.s.Msgs {
		out[i] = messageSlot(&s.s.Msgs[i])
	}
	return out
}

func messageSlot(ms *schedule.MsgSlot) MessageSlot {
	out := MessageSlot{Arrival: ms.Arrival, Placed: ms.Placed}
	if len(ms.Hops) > 0 {
		out.Hops = make([]Hop, len(ms.Hops))
		for i, h := range ms.Hops {
			out.Hops[i] = Hop(h)
		}
	}
	return out
}

// Arrival returns the data arrival time of message e at its destination's
// processor. For an intra-processor message this is the sender's finish
// time.
func (s *Schedule) Arrival(e graph.EdgeID) float64 { return s.s.Arrival(e) }

// Stats derives summary statistics from the schedule.
func (s *Schedule) Stats() ScheduleStats { return ScheduleStats(s.s.ComputeStats()) }

// Validate checks feasibility: every task placed with its actual
// execution cost, no processor or link overlap, contiguous
// store-and-forward routes with actual communication costs, and no task
// starting before its data is ready. It returns the first violation, or
// nil.
func (s *Schedule) Validate() error { return s.s.Validate() }

// Replay cross-checks the schedule with an independent event-driven
// execution simulator: it keeps only the schedule's decisions (task
// placement, routes, per-resource service orders) and recomputes all
// times from the event dynamics, failing if anything the static schedule
// promised cannot be reproduced.
func (s *Schedule) Replay() (ReplayResult, error) {
	r, err := sim.Replay(s.s)
	if err != nil {
		return ReplayResult{}, err
	}
	if err := r.CheckAgainst(s.s); err != nil {
		return ReplayResult{}, err
	}
	return ReplayResult{Events: r.Events, Length: r.Length}, nil
}

// Verify runs Validate and Replay, returning the first error.
func (s *Schedule) Verify() error {
	if err := s.Validate(); err != nil {
		return err
	}
	_, err := s.Replay()
	return err
}

// Assignment returns task names grouped by processor name, in start-time
// order — convenient for compact logging.
func (s *Schedule) Assignment() map[string][]string { return s.s.Assignment() }

// WriteGantt renders the schedule as text in the style of the paper's
// Figure 2: one section per processor listing task slots in time order,
// and one per link listing message hops.
func (s *Schedule) WriteGantt(w io.Writer) error { return s.s.WriteGantt(w) }

// WriteGanttChart renders a proportional ASCII Gantt chart, width columns
// wide.
func (s *Schedule) WriteGanttChart(w io.Writer, width int) error {
	return s.s.WriteGanttChart(w, width)
}

// MarshalJSON exports the schedule in a stable, name-keyed format: task
// slots, message hop reservations and the derived length — enough to
// render a Gantt chart or feed an external visualizer.
func (s *Schedule) MarshalJSON() ([]byte, error) { return s.s.MarshalJSON() }

// WriteJSON writes the schedule to w as indented JSON.
func (s *Schedule) WriteJSON(w io.Writer) error { return s.s.WriteJSON(w) }
