package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// seedGolden adds every committed golden interchange file with the given
// extension as a fuzz seed, so the fuzzers start from real accepted
// inputs (the five workload families and four topologies of
// sched/gen/testdata/golden) rather than from noise.
func seedGolden(f *testing.F, ext string) {
	paths, err := filepath.Glob(filepath.Join("..", "gen", "testdata", "golden", "*."+ext))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
}

// FuzzGraphFromDOT: FromDOT must never panic, and any input it accepts
// must round-trip through WriteDOT byte-identically — save(load(x))
// reloads cleanly and re-saves to the same bytes, so the canonical form
// is a fixpoint.
func FuzzGraphFromDOT(f *testing.F) {
	seedGolden(f, "dot")
	f.Add([]byte("digraph \"t\" {\n  t0 [label=\"a\\n1\"];\n  t1 [label=\"b\\n2\"];\n  t0 -> t1 [label=\"3\"];\n}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, title, err := FromDOT(data)
		if err != nil {
			return
		}
		var s1 bytes.Buffer
		if err := g.WriteDOT(&s1, title); err != nil {
			t.Fatalf("save(load(x)): %v", err)
		}
		g2, title2, err := FromDOT(s1.Bytes())
		if err != nil {
			t.Fatalf("load(save(load(x))) rejected canonical output: %v\ninput: %q\ncanonical: %q", err, data, s1.Bytes())
		}
		if title2 != title {
			t.Fatalf("title changed across round-trip: %q -> %q", title, title2)
		}
		var s2 bytes.Buffer
		if err := g2.WriteDOT(&s2, title2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
			t.Fatalf("canonical DOT is not a fixpoint:\nfirst:  %q\nsecond: %q", s1.Bytes(), s2.Bytes())
		}
	})
}

// FuzzGraphFromJSON: the same contract for the JSON codec.
func FuzzGraphFromJSON(f *testing.F) {
	seedGolden(f, "json")
	f.Add([]byte(`{"tasks":[{"name":"a","cost":1},{"name":"b","cost":2}],"edges":[{"from":"a","to":"b","cost":3}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := FromJSON(data)
		if err != nil {
			return
		}
		var s1 bytes.Buffer
		if err := g.WriteJSON(&s1); err != nil {
			t.Fatalf("save(load(x)): %v", err)
		}
		g2, err := FromJSON(s1.Bytes())
		if err != nil {
			t.Fatalf("load(save(load(x))) rejected canonical output: %v\ninput: %q\ncanonical: %q", err, data, s1.Bytes())
		}
		var s2 bytes.Buffer
		if err := g2.WriteJSON(&s2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
			t.Fatalf("canonical JSON is not a fixpoint:\nfirst:  %q\nsecond: %q", s1.Bytes(), s2.Bytes())
		}
	})
}
