package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the on-disk representation used by MarshalJSON/UnmarshalJSON
// and the cmd tools.
type graphJSON struct {
	Tasks []taskJSON `json:"tasks"`
	Edges []edgeJSON `json:"edges"`
}

type taskJSON struct {
	Name string  `json:"name"`
	Cost float64 `json:"cost"`
}

type edgeJSON struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Cost float64 `json:"cost"`
}

// MarshalJSON encodes the graph with task names as edge endpoints so the
// format is stable under ID renumbering.
func (g *Graph) MarshalJSON() ([]byte, error) {
	j := graphJSON{
		Tasks: make([]taskJSON, 0, g.NumTasks()),
		Edges: make([]edgeJSON, 0, g.NumEdges()),
	}
	for _, t := range g.Tasks() {
		j.Tasks = append(j.Tasks, taskJSON{Name: t.Name, Cost: t.Cost})
	}
	for _, e := range g.Edges() {
		j.Edges = append(j.Edges, edgeJSON{
			From: g.Task(e.From).Name,
			To:   g.Task(e.To).Name,
			Cost: e.Cost,
		})
	}
	return json.Marshal(j)
}

// FromJSON decodes a graph previously written by MarshalJSON (or hand
// written in the same schema) and validates it.
func FromJSON(data []byte) (*Graph, error) {
	var j graphJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	b := NewBuilder()
	ids := make(map[string]TaskID, len(j.Tasks))
	for _, t := range j.Tasks {
		ids[t.Name] = b.AddTask(t.Name, t.Cost)
	}
	for _, e := range j.Edges {
		from, ok := ids[e.From]
		if !ok {
			return nil, fmt.Errorf("graph: edge references unknown task %q", e.From)
		}
		to, ok := ids[e.To]
		if !ok {
			return nil, fmt.Errorf("graph: edge references unknown task %q", e.To)
		}
		b.AddEdge(from, to, e.Cost)
	}
	return b.Build()
}

// ReadJSON decodes a graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return FromJSON(data)
}

// WriteJSON writes the graph to w as indented JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	data, err := g.MarshalJSON()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(json.RawMessage(data), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}
