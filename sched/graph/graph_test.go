package graph

import (
	"strings"
	"testing"
)

// diamond builds the 4-task diamond a->b, a->c, b->d, c->d used by several
// tests.
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	a := b.AddTask("a", 10)
	x := b.AddTask("b", 20)
	y := b.AddTask("c", 30)
	d := b.AddTask("d", 40)
	b.AddEdge(a, x, 1)
	b.AddEdge(a, y, 2)
	b.AddEdge(x, d, 3)
	b.AddEdge(y, d, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	g := diamond(t)
	if g.NumTasks() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got n=%d e=%d, want 4/4", g.NumTasks(), g.NumEdges())
	}
	if g.Task(0).Name != "a" || g.Task(3).Cost != 40 {
		t.Errorf("task accessors wrong: %+v %+v", g.Task(0), g.Task(3))
	}
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(a)=%d, want 2", got)
	}
	if got := g.InDegree(3); got != 2 {
		t.Errorf("InDegree(d)=%d, want 2", got)
	}
	if e, ok := g.FindEdge(0, 2); !ok || e.Cost != 2 {
		t.Errorf("FindEdge(a,c)=%v,%v", e, ok)
	}
	if _, ok := g.FindEdge(1, 2); ok {
		t.Error("FindEdge(b,c) should not exist")
	}
	src := g.Sources()
	if len(src) != 1 || src[0] != 0 {
		t.Errorf("Sources=%v, want [0]", src)
	}
	snk := g.Sinks()
	if len(snk) != 1 || snk[0] != 3 {
		t.Errorf("Sinks=%v, want [3]", snk)
	}
	if !g.IsWeaklyConnected() {
		t.Error("diamond should be weakly connected")
	}
}

func TestBuilderPredsSuccs(t *testing.T) {
	g := diamond(t)
	succs := g.Succs(0, nil)
	if len(succs) != 2 || succs[0] != 1 || succs[1] != 2 {
		t.Errorf("Succs(a)=%v", succs)
	}
	preds := g.Preds(3, nil)
	if len(preds) != 2 || preds[0] != 1 || preds[1] != 2 {
		t.Errorf("Preds(d)=%v", preds)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		want  string
	}{
		{"empty name", func(b *Builder) { b.AddTask("", 1) }, "empty task name"},
		{"dup name", func(b *Builder) { b.AddTask("x", 1); b.AddTask("x", 1) }, "duplicate task name"},
		{"bad cost", func(b *Builder) { b.AddTask("x", 0) }, "non-positive cost"},
		{"neg cost", func(b *Builder) { b.AddTask("x", -3) }, "non-positive cost"},
		{"self loop", func(b *Builder) {
			x := b.AddTask("x", 1)
			b.AddEdge(x, x, 1)
		}, "self-loop"},
		{"bad source", func(b *Builder) {
			b.AddTask("x", 1)
			b.AddEdge(5, 0, 1)
		}, "out of range"},
		{"bad target", func(b *Builder) {
			b.AddTask("x", 1)
			b.AddEdge(0, 5, 1)
		}, "out of range"},
		{"neg edge cost", func(b *Builder) {
			x := b.AddTask("x", 1)
			y := b.AddTask("y", 1)
			b.AddEdge(x, y, -1)
		}, "negative cost"},
		{"dup edge", func(b *Builder) {
			x := b.AddTask("x", 1)
			y := b.AddTask("y", 1)
			b.AddEdge(x, y, 1)
			b.AddEdge(x, y, 2)
		}, "duplicate edge"},
		{"cycle", func(b *Builder) {
			x := b.AddTask("x", 1)
			y := b.AddTask("y", 1)
			z := b.AddTask("z", 1)
			b.AddEdge(x, y, 1)
			b.AddEdge(y, z, 1)
			b.AddEdge(z, x, 1)
		}, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.build(b)
			if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Build err=%v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestZeroEdgeCostAllowed(t *testing.T) {
	b := NewBuilder()
	x := b.AddTask("x", 1)
	y := b.AddTask("y", 1)
	b.AddEdge(x, y, 0)
	if _, err := b.Build(); err != nil {
		t.Fatalf("zero-cost edge should be allowed: %v", err)
	}
}

func TestCostAggregates(t *testing.T) {
	g := diamond(t)
	if got := g.TotalExecCost(); got != 100 {
		t.Errorf("TotalExecCost=%v, want 100", got)
	}
	if got := g.TotalCommCost(); got != 10 {
		t.Errorf("TotalCommCost=%v, want 10", got)
	}
	if got := g.MeanExecCost(); got != 25 {
		t.Errorf("MeanExecCost=%v, want 25", got)
	}
	if got := g.MeanCommCost(); got != 2.5 {
		t.Errorf("MeanCommCost=%v, want 2.5", got)
	}
	if got := g.Granularity(); got != 10 {
		t.Errorf("Granularity=%v, want 10", got)
	}
}

func TestEmptyGraphAggregates(t *testing.T) {
	g, err := NewBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.MeanExecCost() != 0 || g.MeanCommCost() != 0 || g.Granularity() != 0 {
		t.Error("empty graph aggregates should be zero")
	}
	if !g.IsWeaklyConnected() {
		t.Error("empty graph is trivially connected")
	}
}

func TestDisconnectedGraph(t *testing.T) {
	b := NewBuilder()
	b.AddTask("x", 1)
	b.AddTask("y", 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.IsWeaklyConnected() {
		t.Error("two isolated tasks are not connected")
	}
}

func TestClone(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	if c.NumTasks() != g.NumTasks() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone size mismatch")
	}
	// Mutating the clone's slices must not affect the original.
	c.tasks[0].Cost = 999
	if g.Task(0).Cost == 999 {
		t.Error("clone shares task storage with original")
	}
	c.out[0][0] = 3
	if g.out[0][0] == 3 {
		t.Error("clone shares adjacency storage with original")
	}
}

func TestGraphString(t *testing.T) {
	g := diamond(t)
	if got := g.String(); got != "graph{n=4 e=4}" {
		t.Errorf("String=%q", got)
	}
}
