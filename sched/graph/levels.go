package graph

// This file computes the t-level (top level) and b-level (bottom level)
// attributes the BSA paper uses for serialization and critical-path
// identification.
//
// The t-level of a task is the length of the longest path reaching the task
// (excluding the task's own execution cost); the b-level is the length of
// the longest path beginning with the task (including its execution cost).
// All tasks on a critical path satisfy t-level + b-level == CP length.

// TLevels returns the t-level of every task under the given per-task
// execution costs and per-edge communication costs. exec must have length
// NumTasks; comm must have length NumEdges (nil means nominal edge costs).
func TLevels(g *Graph, exec, comm []float64) []float64 {
	order := mustTopo(g)
	comm = commOrNominal(g, comm)
	t := make([]float64, g.NumTasks())
	for _, u := range order {
		tu := t[u] + exec[u]
		for _, e := range g.Out(u) {
			v := g.Edge(e).To
			if cand := tu + comm[e]; cand > t[v] {
				t[v] = cand
			}
		}
	}
	return t
}

// BLevels returns the b-level of every task under the given execution and
// communication costs (comm nil means nominal edge costs).
func BLevels(g *Graph, exec, comm []float64) []float64 {
	order := mustTopo(g)
	comm = commOrNominal(g, comm)
	b := make([]float64, g.NumTasks())
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		var best float64
		for _, e := range g.Out(u) {
			v := g.Edge(e).To
			if cand := comm[e] + b[v]; cand > best {
				best = cand
			}
		}
		b[u] = exec[u] + best
	}
	return b
}

// StaticLevels returns the b-level of every task computed with the given
// execution costs and zero communication costs. This is the "static level"
// used by the DLS baseline of Sih & Lee.
func StaticLevels(g *Graph, exec []float64) []float64 {
	order := mustTopo(g)
	b := make([]float64, g.NumTasks())
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		var best float64
		for _, e := range g.Out(u) {
			v := g.Edge(e).To
			if b[v] > best {
				best = b[v]
			}
		}
		b[u] = exec[u] + best
	}
	return b
}

// CPLengthOf returns the critical-path length implied by matching t-level
// and b-level slices: max over tasks of t[i]+b[i].
func CPLengthOf(t, b []float64) float64 {
	var best float64
	for i := range t {
		if v := t[i] + b[i]; v > best {
			best = v
		}
	}
	return best
}

// CPLength computes the critical-path length of the graph under the given
// costs (comm nil means nominal edge costs).
func CPLength(g *Graph, exec, comm []float64) float64 {
	b := BLevels(g, exec, comm)
	var best float64
	for _, s := range g.Sources() {
		if b[s] > best {
			best = b[s]
		}
	}
	if len(g.Sources()) == 0 && g.NumTasks() > 0 {
		// Unreachable for a valid DAG, but keep the function total.
		for _, v := range b {
			if v > best {
				best = v
			}
		}
	}
	return best
}

func mustTopo(g *Graph) []TaskID {
	order, err := TopologicalOrder(g)
	if err != nil {
		// Graphs are validated at Build time; a cycle here is a programming
		// error, not a runtime condition.
		panic(err)
	}
	return order
}

func commOrNominal(g *Graph, comm []float64) []float64 {
	if comm != nil {
		return comm
	}
	return g.NominalCommCosts()
}
