package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumTasks() != g.NumTasks() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %v vs %v", g2, g)
	}
	for i := range g.Tasks() {
		if g.Task(TaskID(i)) != g2.Task(TaskID(i)) {
			t.Errorf("task %d mismatch: %+v vs %+v", i, g.Task(TaskID(i)), g2.Task(TaskID(i)))
		}
	}
	for i := range g.Edges() {
		if g.Edge(EdgeID(i)) != g2.Edge(EdgeID(i)) {
			t.Errorf("edge %d mismatch", i)
		}
	}
}

func TestReadWriteJSON(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumTasks() != 4 {
		t.Fatalf("got %d tasks", g2.NumTasks())
	}
}

func TestFromJSONErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"bad json", "{", "decode"},
		{"unknown from", `{"tasks":[{"name":"a","cost":1}],"edges":[{"from":"zz","to":"a","cost":1}]}`, "unknown task"},
		{"unknown to", `{"tasks":[{"name":"a","cost":1}],"edges":[{"from":"a","to":"zz","cost":1}]}`, "unknown task"},
		{"cycle", `{"tasks":[{"name":"a","cost":1},{"name":"b","cost":1}],"edges":[{"from":"a","to":"b","cost":1},{"from":"b","to":"a","cost":1}]}`, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromJSON([]byte(tc.in)); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err=%v, want %q", err, tc.want)
			}
		})
	}
}

func TestWriteDOT(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "diamond"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "t0 -> t1", "t2 -> t3", `label="a\n10"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
