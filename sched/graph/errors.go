package graph

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmptyTaskName is reported by Builder.AddTask for an empty name.
var ErrEmptyTaskName = errors.New("graph: empty task name")

// DuplicateTaskError is reported by Builder.AddTask when a task name is
// reused.
type DuplicateTaskError struct {
	Name string
}

func (e *DuplicateTaskError) Error() string {
	return fmt.Sprintf("graph: duplicate task name %q", e.Name)
}

// TaskCostError is reported by Builder.AddTask for an execution cost
// that is not a positive, finite number. NaN and ±Inf are rejected at
// construction: they would otherwise flow silently into every derived
// timeline.
type TaskCostError struct {
	Name string
	Cost float64
}

func (e *TaskCostError) Error() string {
	if math.IsNaN(e.Cost) || math.IsInf(e.Cost, 0) {
		return fmt.Sprintf("graph: task %q has non-finite cost %v", e.Name, e.Cost)
	}
	return fmt.Sprintf("graph: task %q has non-positive cost %v", e.Name, e.Cost)
}

// EdgeRangeError is reported by Builder.AddEdge when an endpoint does not
// name an added task.
type EdgeRangeError struct {
	Endpoint TaskID
	Source   bool // true when the offending endpoint is the edge source
	NumTasks int
}

func (e *EdgeRangeError) Error() string {
	role := "target"
	if e.Source {
		role = "source"
	}
	return fmt.Sprintf("graph: edge %s %d out of range [0,%d)", role, e.Endpoint, e.NumTasks)
}

// SelfLoopError is reported by Builder.AddEdge for an edge from a task to
// itself.
type SelfLoopError struct {
	Task TaskID
}

func (e *SelfLoopError) Error() string {
	return fmt.Sprintf("graph: self-loop on task %d", e.Task)
}

// EdgeCostError is reported by Builder.AddEdge for a communication cost
// that is negative or non-finite (zero-cost messages are allowed; NaN
// and ±Inf are rejected like task costs).
type EdgeCostError struct {
	From, To TaskID
	Cost     float64
}

func (e *EdgeCostError) Error() string {
	if math.IsNaN(e.Cost) || math.IsInf(e.Cost, 0) {
		return fmt.Sprintf("graph: edge %d->%d has non-finite cost %v", e.From, e.To, e.Cost)
	}
	return fmt.Sprintf("graph: edge %d->%d has negative cost %v", e.From, e.To, e.Cost)
}

// DuplicateEdgeError is reported by Builder.Build when two edges join the
// same ordered task pair.
type DuplicateEdgeError struct {
	From, To TaskID
}

func (e *DuplicateEdgeError) Error() string {
	return fmt.Sprintf("graph: duplicate edge %d->%d", e.From, e.To)
}

// CycleError is reported by Builder.Build (and TopologicalOrder) when the
// graph is not acyclic. Task names one task on a cycle.
type CycleError struct {
	Task TaskID
	Name string
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("graph: cycle involving task %d (%s)", e.Task, e.Name)
}
