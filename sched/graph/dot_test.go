package graph

import (
	"bytes"
	"testing"
)

// TestDOTRoundTripSpecialNames: task names containing DOT-hostile
// characters (newlines, quotes, backslashes, the literal two-character
// sequence \n) must survive a WriteDOT/FromDOT round trip — the builder
// accepts any non-empty unique name, so the encoder has to escape.
func TestDOTRoundTripSpecialNames(t *testing.T) {
	names := []string{
		"plain",
		"new\nline",
		`back\slash`,
		`quo"te`,
		`literal\nseq`,
		`trailing\`,
		"\"\\\n",
	}
	b := NewBuilder()
	ids := make([]TaskID, len(names))
	for i, n := range names {
		ids[i] = b.AddTask(n, float64(i+1))
	}
	for i := 1; i < len(ids); i++ {
		b.AddEdge(ids[i-1], ids[i], float64(i))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var d1 bytes.Buffer
	if err := g.WriteDOT(&d1, "weird \"title\"\n"); err != nil {
		t.Fatal(err)
	}
	g2, title, err := FromDOT(d1.Bytes())
	if err != nil {
		t.Fatalf("FromDOT: %v\ninput:\n%s", err, d1.Bytes())
	}
	if title != "weird \"title\"\n" {
		t.Errorf("title = %q", title)
	}
	for i, n := range names {
		if got := g2.Task(TaskID(i)).Name; got != n {
			t.Errorf("task %d name = %q, want %q", i, got, n)
		}
	}
	var d2 bytes.Buffer
	if err := g2.WriteDOT(&d2, title); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1.Bytes(), d2.Bytes()) {
		t.Error("DOT round-trip with special names is not byte-identical")
	}
}
