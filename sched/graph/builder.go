package graph

import (
	"math"
	"sort"
)

// Builder assembles a Graph incrementally. Methods record the first error
// encountered; Build returns it. A Builder must not be reused after Build.
type Builder struct {
	g     Graph
	names map[string]TaskID
	err   error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{names: make(map[string]TaskID)}
}

// AddTask adds a task with the given name and nominal execution cost and
// returns its ID. Names must be unique and non-empty; costs must be
// positive and finite.
func (b *Builder) AddTask(name string, cost float64) TaskID {
	id := TaskID(len(b.g.tasks))
	if b.err != nil {
		return id
	}
	if name == "" {
		b.fail(ErrEmptyTaskName)
		return id
	}
	if _, dup := b.names[name]; dup {
		b.fail(&DuplicateTaskError{Name: name})
		return id
	}
	// !(cost > 0) also catches NaN, which every <=/< comparison misses.
	if !(cost > 0) || math.IsInf(cost, 0) {
		b.fail(&TaskCostError{Name: name, Cost: cost})
		return id
	}
	b.names[name] = id
	b.g.tasks = append(b.g.tasks, Task{ID: id, Name: name, Cost: cost})
	return id
}

// AddEdge adds a message from u to v with the given nominal communication
// cost and returns its ID. Self-loops, duplicate edges, unknown endpoints
// and negative or non-finite costs are errors (zero-cost messages are
// allowed).
func (b *Builder) AddEdge(from, to TaskID, cost float64) EdgeID {
	id := EdgeID(len(b.g.edges))
	if b.err != nil {
		return id
	}
	n := TaskID(len(b.g.tasks))
	switch {
	case from < 0 || from >= n:
		b.fail(&EdgeRangeError{Endpoint: from, Source: true, NumTasks: int(n)})
	case to < 0 || to >= n:
		b.fail(&EdgeRangeError{Endpoint: to, NumTasks: int(n)})
	case from == to:
		b.fail(&SelfLoopError{Task: from})
	case !(cost >= 0) || math.IsInf(cost, 0):
		b.fail(&EdgeCostError{From: from, To: to, Cost: cost})
	}
	if b.err != nil {
		return id
	}
	b.g.edges = append(b.g.edges, Edge{ID: id, From: from, To: to, Cost: cost})
	return id
}

// TaskByName returns the ID of a previously added task.
func (b *Builder) TaskByName(name string) (TaskID, bool) {
	id, ok := b.names[name]
	return id, ok
}

// Build validates the accumulated graph (no duplicate edges, acyclic) and
// returns it. The Builder must not be used afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &b.g
	n := len(g.tasks)
	g.out = make([][]EdgeID, n)
	g.in = make([][]EdgeID, n)
	seen := make(map[[2]TaskID]bool, len(g.edges))
	for _, e := range g.edges {
		key := [2]TaskID{e.From, e.To}
		if seen[key] {
			return nil, &DuplicateEdgeError{From: e.From, To: e.To}
		}
		seen[key] = true
		g.out[e.From] = append(g.out[e.From], e.ID)
		g.in[e.To] = append(g.in[e.To], e.ID)
	}
	for i := range g.out {
		es := g.edges
		sort.Slice(g.out[i], func(a, b int) bool {
			ea, eb := es[g.out[i][a]], es[g.out[i][b]]
			if ea.To != eb.To {
				return ea.To < eb.To
			}
			return ea.ID < eb.ID
		})
		sort.Slice(g.in[i], func(a, b int) bool {
			ea, eb := es[g.in[i][a]], es[g.in[i][b]]
			if ea.From != eb.From {
				return ea.From < eb.From
			}
			return ea.ID < eb.ID
		})
	}
	if _, err := TopologicalOrder(g); err != nil {
		return nil, err
	}
	return g, nil
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}
