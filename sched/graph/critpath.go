package graph

import "math/rand"

// levelEps is the relative tolerance used when comparing path lengths built
// from floating-point cost sums. Costs in this repository are small integers
// or modest reals, so an absolute epsilon scaled by the CP length is ample.
const levelEps = 1e-9

func approxEq(a, b, scale float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	tol := levelEps * (1 + scale)
	return d <= tol
}

// CriticalPath returns the tasks of a critical path in path order under the
// given execution and communication costs (comm nil means nominal edge
// costs).
//
// Per the paper, when several paths attain the CP length the one with the
// largest sum of execution costs is selected, remaining ties broken with
// rng (deterministically by smallest task ID when rng is nil).
func CriticalPath(g *Graph, exec, comm []float64, rng *rand.Rand) []TaskID {
	n := g.NumTasks()
	if n == 0 {
		return nil
	}
	comm = commOrNominal(g, comm)
	t := TLevels(g, exec, comm)
	b := BLevels(g, exec, comm)
	cp := CPLengthOf(t, b)

	// onCP marks tasks that lie on at least one critical path.
	onCP := make([]bool, n)
	for i := 0; i < n; i++ {
		onCP[i] = approxEq(t[i]+b[i], cp, cp)
	}

	// Among critical paths, maximise the execution-cost sum from each task
	// to a sink, following only CP edges. Processing in reverse topological
	// order gives a simple DP.
	order := mustTopo(g)
	execSum := make([]float64, n) // best exec sum from task to sink along CP edges
	nextEdge := make([]EdgeID, n) // chosen outgoing CP edge (-1 at path end)
	for i := range nextEdge {
		nextEdge[i] = -1
	}
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		if !onCP[u] {
			continue
		}
		execSum[u] = exec[u]
		bestSum := -1.0
		var choices []EdgeID
		for _, e := range g.Out(u) {
			v := g.Edge(e).To
			if !onCP[v] {
				continue
			}
			// Edge u->v continues a critical path iff it is tight for both
			// levels.
			if !approxEq(b[u], exec[u]+comm[e]+b[v], cp) {
				continue
			}
			if !approxEq(t[v], t[u]+exec[u]+comm[e], cp) {
				continue
			}
			switch {
			case execSum[v] > bestSum+levelEps*(1+cp):
				bestSum = execSum[v]
				choices = choices[:0]
				choices = append(choices, e)
			case approxEq(execSum[v], bestSum, cp):
				choices = append(choices, e)
			}
		}
		if len(choices) > 0 {
			pick := choices[0]
			if rng != nil && len(choices) > 1 {
				pick = choices[rng.Intn(len(choices))]
			}
			nextEdge[u] = pick
			execSum[u] += execSum[g.Edge(pick).To]
		}
	}

	// Choose the starting source the same way.
	bestSum := -1.0
	var starts []TaskID
	for _, s := range g.Sources() {
		if !onCP[s] {
			continue
		}
		switch {
		case execSum[s] > bestSum+levelEps*(1+cp):
			bestSum = execSum[s]
			starts = starts[:0]
			starts = append(starts, s)
		case approxEq(execSum[s], bestSum, cp):
			starts = append(starts, s)
		}
	}
	if len(starts) == 0 {
		return nil
	}
	start := starts[0]
	if rng != nil && len(starts) > 1 {
		start = starts[rng.Intn(len(starts))]
	}

	var path []TaskID
	for u := start; ; {
		path = append(path, u)
		e := nextEdge[u]
		if e < 0 {
			break
		}
		u = g.Edge(e).To
	}
	return path
}
