package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCriticalPathChain(t *testing.T) {
	g := chain(t)
	cp := CriticalPath(g, g.NominalExecCosts(), nil, nil)
	want := []TaskID{0, 1, 2}
	if len(cp) != len(want) {
		t.Fatalf("cp=%v, want %v", cp, want)
	}
	for i := range want {
		if cp[i] != want[i] {
			t.Fatalf("cp=%v, want %v", cp, want)
		}
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g := diamond(t)
	cp := CriticalPath(g, g.NominalExecCosts(), nil, nil)
	// Longest path goes through c (a,c,d).
	want := []TaskID{0, 2, 3}
	if len(cp) != 3 || cp[0] != want[0] || cp[1] != want[1] || cp[2] != want[2] {
		t.Fatalf("cp=%v, want %v", cp, want)
	}
}

func TestCriticalPathTieFavorsLargerExecSum(t *testing.T) {
	// Two equal-length paths: a->b->d and a->c->d; b has larger exec cost
	// but path lengths equalized via comm costs. Path via c: exec 30 vs 20.
	b := NewBuilder()
	a := b.AddTask("a", 10)
	x := b.AddTask("b", 20)
	y := b.AddTask("c", 30)
	d := b.AddTask("d", 40)
	b.AddEdge(a, x, 15) // 10+15+20 = 45 to reach d-edge
	b.AddEdge(a, y, 5)  // 10+5+30 = 45
	b.AddEdge(x, d, 10) // total 45+10+40 = 95
	b.AddEdge(y, d, 10) // total 95 too
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cp := CriticalPath(g, g.NominalExecCosts(), nil, nil)
	if len(cp) != 3 || cp[1] != y {
		t.Fatalf("cp=%v, want path through c (exec sum 80 beats 70)", cp)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	g, _ := NewBuilder().Build()
	if cp := CriticalPath(g, nil, nil, nil); cp != nil {
		t.Fatalf("cp of empty graph = %v, want nil", cp)
	}
}

func TestCriticalPathSingleTask(t *testing.T) {
	b := NewBuilder()
	b.AddTask("only", 5)
	g, _ := b.Build()
	cp := CriticalPath(g, g.NominalExecCosts(), nil, nil)
	if len(cp) != 1 || cp[0] != 0 {
		t.Fatalf("cp=%v, want [0]", cp)
	}
}

func TestCriticalPathProperty(t *testing.T) {
	// Properties: the returned path is a real path, its length equals the
	// CP length, and every task on it satisfies t+b == CP length.
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%30
		g := randomDAG(rng, n, 0.25)
		exec := g.NominalExecCosts()
		comm := g.NominalCommCosts()
		cp := CriticalPath(g, exec, comm, rng)
		if len(cp) == 0 {
			return g.NumTasks() == 0
		}
		want := CPLength(g, exec, comm)
		var length float64
		for i, u := range cp {
			length += exec[u]
			if i+1 < len(cp) {
				e, ok := g.FindEdge(u, cp[i+1])
				if !ok {
					return false // not a path
				}
				length += comm[e.ID]
			}
		}
		if diff := length - want; diff > 1e-6 || diff < -1e-6 {
			return false
		}
		tl := TLevels(g, exec, comm)
		bl := BLevels(g, exec, comm)
		for _, u := range cp {
			if d := tl[u] + bl[u] - want; d > 1e-6 || d < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPathDeterministicWithNilRNG(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomDAG(rng, 25, 0.3)
	exec := g.NominalExecCosts()
	a := CriticalPath(g, exec, nil, nil)
	b := CriticalPath(g, exec, nil, nil)
	if len(a) != len(b) {
		t.Fatal("non-deterministic CP")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic CP")
		}
	}
}
