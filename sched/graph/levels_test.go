package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// chain builds a->b->c with exec costs 10,20,30 and comm costs 5,7.
func chain(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	a := b.AddTask("a", 10)
	x := b.AddTask("b", 20)
	y := b.AddTask("c", 30)
	b.AddEdge(a, x, 5)
	b.AddEdge(x, y, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLevelsChain(t *testing.T) {
	g := chain(t)
	exec := g.NominalExecCosts()
	tl := TLevels(g, exec, nil)
	bl := BLevels(g, exec, nil)
	wantT := []float64{0, 15, 42}
	wantB := []float64{72, 57, 30}
	for i := range wantT {
		if tl[i] != wantT[i] {
			t.Errorf("t-level[%d]=%v, want %v", i, tl[i], wantT[i])
		}
		if bl[i] != wantB[i] {
			t.Errorf("b-level[%d]=%v, want %v", i, bl[i], wantB[i])
		}
	}
	if got := CPLengthOf(tl, bl); got != 72 {
		t.Errorf("CPLengthOf=%v, want 72", got)
	}
	if got := CPLength(g, exec, nil); got != 72 {
		t.Errorf("CPLength=%v, want 72", got)
	}
}

func TestLevelsDiamond(t *testing.T) {
	g := diamond(t)
	exec := g.NominalExecCosts()
	tl := TLevels(g, exec, nil)
	bl := BLevels(g, exec, nil)
	// Longest path: a(10) -c2-> c(30) -c4-> d(40) = 86.
	if got := CPLengthOf(tl, bl); got != 86 {
		t.Errorf("CP length=%v, want 86", got)
	}
	if tl[3] != 46 { // max(10+1+20+3, 10+2+30+4)=46
		t.Errorf("t-level(d)=%v, want 46", tl[3])
	}
	if bl[0] != 86 {
		t.Errorf("b-level(a)=%v, want 86", bl[0])
	}
}

func TestStaticLevels(t *testing.T) {
	g := diamond(t)
	exec := g.NominalExecCosts()
	sl := StaticLevels(g, exec)
	// No comm: a: 10+max(20,30)+40 = 80; b: 60; c: 70; d: 40.
	want := []float64{80, 60, 70, 40}
	for i := range want {
		if sl[i] != want[i] {
			t.Errorf("static level[%d]=%v, want %v", i, sl[i], want[i])
		}
	}
}

func TestLevelsCustomComm(t *testing.T) {
	g := chain(t)
	exec := g.NominalExecCosts()
	comm := []float64{100, 100}
	if got := CPLength(g, exec, comm); got != 260 {
		t.Errorf("CPLength with custom comm=%v, want 260", got)
	}
}

func TestLevelsPropertyEdgeInequalities(t *testing.T) {
	// Properties on random DAGs:
	//   t(v) >= t(u) + exec(u) + c(uv) for every edge u->v
	//   b(u) >= exec(u) + c(uv) + b(v)
	//   max(t+b) == max over sources of b  (CP length consistency)
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%30
		g := randomDAG(rng, n, 0.3)
		exec := g.NominalExecCosts()
		comm := g.NominalCommCosts()
		tl := TLevels(g, exec, comm)
		bl := BLevels(g, exec, comm)
		for _, e := range g.Edges() {
			if tl[e.To]+1e-9 < tl[e.From]+exec[e.From]+comm[e.ID] {
				return false
			}
			if bl[e.From]+1e-9 < exec[e.From]+comm[e.ID]+bl[e.To] {
				return false
			}
		}
		cp := CPLengthOf(tl, bl)
		var viaSources float64
		for _, s := range g.Sources() {
			viaSources = math.Max(viaSources, bl[s])
		}
		return math.Abs(cp-viaSources) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
