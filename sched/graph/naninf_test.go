package graph

import (
	"errors"
	"math"
	"testing"
)

// TestBuilderRejectsNonFiniteCosts: NaN and ±Inf costs must fail with
// the same typed errors as out-of-range costs. NaN is the dangerous
// case — it slips through every <=/< comparison — and was found by
// construction while writing the loader fuzz targets: strconv.ParseFloat
// happily parses "NaN" from a DOT label.
func TestBuilderRejectsNonFiniteCosts(t *testing.T) {
	for _, cost := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b := NewBuilder()
		b.AddTask("x", cost)
		_, err := b.Build()
		var tc *TaskCostError
		if !errors.As(err, &tc) {
			t.Errorf("task cost %v: want *TaskCostError, got %v", cost, err)
		}

		b = NewBuilder()
		u := b.AddTask("u", 1)
		v := b.AddTask("v", 1)
		b.AddEdge(u, v, cost)
		_, err = b.Build()
		var ec *EdgeCostError
		if !errors.As(err, &ec) {
			t.Errorf("edge cost %v: want *EdgeCostError, got %v", cost, err)
		}
	}
}

// TestFromDOTRejectsNonFiniteCosts: the DOT loader goes through the
// Builder, so textual "NaN"/"Inf" costs — which ParseFloat accepts —
// must be rejected rather than propagated into timelines.
func TestFromDOTRejectsNonFiniteCosts(t *testing.T) {
	nanTask := "digraph \"t\" {\n  t0 [label=\"a\\nNaN\"];\n}\n"
	if _, _, err := FromDOT([]byte(nanTask)); err == nil {
		t.Error("FromDOT accepted a NaN task cost")
	}
	infEdge := "digraph \"t\" {\n  t0 [label=\"a\\n1\"];\n  t1 [label=\"b\\n1\"];\n  t0 -> t1 [label=\"+Inf\"];\n}\n"
	if _, _, err := FromDOT([]byte(infEdge)); err == nil {
		t.Error("FromDOT accepted an Inf edge cost")
	}
}
