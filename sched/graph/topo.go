package graph

// TopologicalOrder returns a deterministic topological order of the tasks
// (Kahn's algorithm; among ready tasks the smallest ID goes first) or an
// error naming a task on a cycle if the graph is not acyclic.
func TopologicalOrder(g *Graph) ([]TaskID, error) {
	n := g.NumTasks()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = g.InDegree(TaskID(i))
	}
	// Min-heap behaviour via an ordered ready set kept as a sorted stack is
	// overkill at these sizes; a simple linear scan bucket works, but we use
	// an index-ordered ready list maintained with binary insertion to keep
	// determinism with O(n log n + e) cost.
	ready := make([]TaskID, 0, n)
	push := func(t TaskID) {
		lo, hi := 0, len(ready)
		for lo < hi {
			mid := (lo + hi) / 2
			if ready[mid] < t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		ready = append(ready, 0)
		copy(ready[lo+1:], ready[lo:])
		ready[lo] = t
	}
	for i := n - 1; i >= 0; i-- {
		if indeg[i] == 0 {
			push(TaskID(i))
		}
	}
	order := make([]TaskID, 0, n)
	for len(ready) > 0 {
		t := ready[0]
		ready = ready[1:]
		order = append(order, t)
		for _, e := range g.Out(t) {
			v := g.Edge(e).To
			indeg[v]--
			if indeg[v] == 0 {
				push(v)
			}
		}
	}
	if len(order) != n {
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				return nil, &CycleError{Task: TaskID(i), Name: g.Task(TaskID(i)).Name}
			}
		}
	}
	return order, nil
}

// IsLinearExtension reports whether order is a permutation of all tasks in
// which every task appears after all of its predecessors.
func IsLinearExtension(g *Graph, order []TaskID) bool {
	n := g.NumTasks()
	if len(order) != n {
		return false
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, t := range order {
		if t < 0 || int(t) >= n || pos[t] >= 0 {
			return false
		}
		pos[t] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			return false
		}
	}
	return true
}
