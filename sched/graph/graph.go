// Package graph implements the public directed-acyclic task-graph model:
// tasks with nominal execution costs, messages (edges) with nominal
// communication costs, a fluent Builder with typed validation errors,
// JSON and DOT load/save, topological ordering, t-level / b-level
// computation and critical-path extraction.
//
// Nominal costs are the costs on the reference (fastest) machine of the
// heterogeneous system; actual costs are obtained by multiplying nominal
// costs with heterogeneity factors (see repro/sched/system).
package graph

import "fmt"

// TaskID identifies a task; IDs are dense indices 0..NumTasks-1.
type TaskID int32

// EdgeID identifies a message (edge); IDs are dense indices 0..NumEdges-1.
type EdgeID int32

// Task is a node of the task graph.
type Task struct {
	ID   TaskID
	Name string
	// Cost is the nominal execution cost tau_i on the reference machine.
	Cost float64
}

// Edge is a message Mij from task From to task To with nominal
// communication cost c_ij.
type Edge struct {
	ID   EdgeID
	From TaskID
	To   TaskID
	Cost float64
}

// Graph is an immutable directed acyclic task graph. Construct one with a
// Builder; a zero Graph is empty and valid.
type Graph struct {
	tasks []Task
	edges []Edge
	out   [][]EdgeID // outgoing edge IDs per task, sorted by target then ID
	in    [][]EdgeID // incoming edge IDs per task, sorted by source then ID
}

// NumTasks returns the number of tasks n.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns the number of messages e.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Task returns the task with the given ID.
func (g *Graph) Task(id TaskID) Task { return g.tasks[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Tasks returns all tasks in ID order. The slice must not be modified.
func (g *Graph) Tasks() []Task { return g.tasks }

// Edges returns all edges in ID order. The slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the outgoing edge IDs of t. The slice must not be modified.
func (g *Graph) Out(t TaskID) []EdgeID { return g.out[t] }

// In returns the incoming edge IDs of t. The slice must not be modified.
func (g *Graph) In(t TaskID) []EdgeID { return g.in[t] }

// OutDegree returns the number of successors of t.
func (g *Graph) OutDegree(t TaskID) int { return len(g.out[t]) }

// InDegree returns the number of predecessors of t.
func (g *Graph) InDegree(t TaskID) int { return len(g.in[t]) }

// Succs appends the successor task IDs of t to dst and returns it.
func (g *Graph) Succs(t TaskID, dst []TaskID) []TaskID {
	for _, e := range g.out[t] {
		dst = append(dst, g.edges[e].To)
	}
	return dst
}

// Preds appends the predecessor task IDs of t to dst and returns it.
func (g *Graph) Preds(t TaskID, dst []TaskID) []TaskID {
	for _, e := range g.in[t] {
		dst = append(dst, g.edges[e].From)
	}
	return dst
}

// Sources returns the tasks with no predecessors (entry tasks).
func (g *Graph) Sources() []TaskID {
	var s []TaskID
	for i := range g.tasks {
		if len(g.in[i]) == 0 {
			s = append(s, TaskID(i))
		}
	}
	return s
}

// Sinks returns the tasks with no successors (exit tasks).
func (g *Graph) Sinks() []TaskID {
	var s []TaskID
	for i := range g.tasks {
		if len(g.out[i]) == 0 {
			s = append(s, TaskID(i))
		}
	}
	return s
}

// FindEdge returns the edge from u to v, if any.
func (g *Graph) FindEdge(u, v TaskID) (Edge, bool) {
	for _, e := range g.out[u] {
		if g.edges[e].To == v {
			return g.edges[e], true
		}
	}
	return Edge{}, false
}

// NominalExecCosts returns a freshly allocated slice of the nominal
// execution cost of every task, indexed by TaskID.
func (g *Graph) NominalExecCosts() []float64 {
	c := make([]float64, len(g.tasks))
	for i, t := range g.tasks {
		c[i] = t.Cost
	}
	return c
}

// NominalCommCosts returns a freshly allocated slice of the nominal
// communication cost of every edge, indexed by EdgeID.
func (g *Graph) NominalCommCosts() []float64 {
	c := make([]float64, len(g.edges))
	for i, e := range g.edges {
		c[i] = e.Cost
	}
	return c
}

// TotalExecCost returns the sum of nominal execution costs.
func (g *Graph) TotalExecCost() float64 {
	var s float64
	for _, t := range g.tasks {
		s += t.Cost
	}
	return s
}

// TotalCommCost returns the sum of nominal communication costs.
func (g *Graph) TotalCommCost() float64 {
	var s float64
	for _, e := range g.edges {
		s += e.Cost
	}
	return s
}

// MeanExecCost returns the average nominal execution cost, or 0 for an
// empty graph.
func (g *Graph) MeanExecCost() float64 {
	if len(g.tasks) == 0 {
		return 0
	}
	return g.TotalExecCost() / float64(len(g.tasks))
}

// MeanCommCost returns the average nominal communication cost, or 0 when
// the graph has no edges.
func (g *Graph) MeanCommCost() float64 {
	if len(g.edges) == 0 {
		return 0
	}
	return g.TotalCommCost() / float64(len(g.edges))
}

// Granularity returns mean execution cost divided by mean communication
// cost, the paper's granularity measure. It returns +Inf-free 0 when the
// graph has no edges or zero mean communication cost.
func (g *Graph) Granularity() float64 {
	mc := g.MeanCommCost()
	if mc == 0 {
		return 0
	}
	return g.MeanExecCost() / mc
}

// IsWeaklyConnected reports whether the underlying undirected graph is
// connected. The paper assumes connected task graphs (e >= n-1).
func (g *Graph) IsWeaklyConnected() bool {
	n := len(g.tasks)
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []TaskID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit := func(u TaskID) {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
		for _, e := range g.out[t] {
			visit(g.edges[e].To)
		}
		for _, e := range g.in[t] {
			visit(g.edges[e].From)
		}
	}
	return count == n
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		tasks: append([]Task(nil), g.tasks...),
		edges: append([]Edge(nil), g.edges...),
		out:   make([][]EdgeID, len(g.out)),
		in:    make([][]EdgeID, len(g.in)),
	}
	for i := range g.out {
		c.out[i] = append([]EdgeID(nil), g.out[i]...)
	}
	for i := range g.in {
		c.in[i] = append([]EdgeID(nil), g.in[i]...)
	}
	return c
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d e=%d}", len(g.tasks), len(g.edges))
}
