package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopologicalOrderDiamond(t *testing.T) {
	g := diamond(t)
	order, err := TopologicalOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []TaskID{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v, want %v", order, want)
		}
	}
	if !IsLinearExtension(g, order) {
		t.Error("topological order must be a linear extension")
	}
}

func TestIsLinearExtensionRejects(t *testing.T) {
	g := diamond(t)
	cases := [][]TaskID{
		{0, 1, 2},    // too short
		{0, 1, 2, 2}, // duplicate
		{0, 1, 2, 9}, // out of range
		{3, 1, 2, 0}, // violates precedence
		{1, 0, 2, 3}, // violates a->b
	}
	for i, c := range cases {
		if IsLinearExtension(g, c) {
			t.Errorf("case %d: %v accepted as linear extension", i, c)
		}
	}
}

// randomDAG builds a random DAG by sampling edges only from lower to higher
// task IDs, so acyclicity holds by construction.
func randomDAG(rng *rand.Rand, n int, edgeProb float64) *Graph {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddTask(taskName(i), 1+rng.Float64()*99)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < edgeProb {
				b.AddEdge(TaskID(i), TaskID(j), rng.Float64()*50)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func taskName(i int) string {
	const digits = "0123456789"
	if i == 0 {
		return "T0"
	}
	var buf [12]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = digits[i%10]
		i /= 10
	}
	return "T" + string(buf[p:])
}

func TestTopologicalOrderPropertyRandomDAGs(t *testing.T) {
	// Property: for any random DAG, TopologicalOrder succeeds and yields a
	// linear extension.
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		p := float64(pRaw%100) / 100
		g := randomDAG(rng, n, p)
		order, err := TopologicalOrder(g)
		if err != nil {
			return false
		}
		return IsLinearExtension(g, order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologicalOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomDAG(rng, 30, 0.2)
	a, _ := TopologicalOrder(g)
	b, _ := TopologicalOrder(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("topological order not deterministic")
		}
	}
}
