package graph

import (
	"bytes"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// WriteDOT writes the graph in Graphviz DOT format. Node labels show the
// task name and nominal execution cost; edge labels show the nominal
// communication cost. The output is parseable by FromDOT and round-trips
// byte-identically (costs are printed with %g, the shortest exact
// representation).
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [shape=circle];\n")
	for _, t := range g.Tasks() {
		fmt.Fprintf(&b, "  t%d [label=\"%s\\n%g\"];\n", t.ID, escapeLabel(t.Name), t.Cost)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  t%d -> t%d [label=\"%g\"];\n", e.From, e.To, e.Cost)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

var (
	dotHeaderRe = regexp.MustCompile(`^digraph (".*") \{$`)
	dotNodeRe   = regexp.MustCompile(`^\s*t(\d+) \[label="(.*)"\];$`)
	dotEdgeRe   = regexp.MustCompile(`^\s*t(\d+) -> t(\d+) \[label="([^"]+)"\];$`)

	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

// escapeLabel makes an arbitrary task name safe inside a DOT label:
// backslashes, quotes and newlines are escaped (names without them pass
// through unchanged, keeping the format stable). unescapeLabel inverts
// it.
func escapeLabel(name string) string { return labelEscaper.Replace(name) }

func unescapeLabel(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i == len(s) {
			return "", fmt.Errorf("trailing backslash in label %q", s)
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("unknown escape \\%c in label %q", s[i], s)
		}
	}
	return b.String(), nil
}

// splitLabel splits a node label into its escaped name part and cost
// part at the last unescaped `\n` separator.
func splitLabel(label string) (name, cost string, ok bool) {
	sep := -1
	for i := 0; i < len(label)-1; i++ {
		if label[i] != '\\' {
			continue
		}
		if label[i+1] == 'n' {
			sep = i
		}
		i++ // skip the escaped character either way
	}
	if sep < 0 {
		return "", "", false
	}
	return label[:sep], label[sep+2:], true
}

// FromDOT decodes a graph previously written by WriteDOT, returning the
// graph and the digraph title. It parses the restricted DOT subset
// WriteDOT emits (one statement per line), not arbitrary Graphviz input,
// and validates the result like Builder.Build.
func FromDOT(data []byte) (*Graph, string, error) {
	b := NewBuilder()
	title := ""
	sawHeader := false
	line := 0
	for len(data) > 0 {
		raw := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			raw, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		line++
		text := strings.TrimRight(string(raw), " \t\r")
		switch {
		case text == "" || text == "}":
			continue
		case strings.HasPrefix(text, "digraph "):
			m := dotHeaderRe.FindStringSubmatch(text)
			if m == nil {
				return nil, "", fmt.Errorf("graph: dot line %d: malformed digraph header", line)
			}
			t, err := strconv.Unquote(m[1])
			if err != nil {
				return nil, "", fmt.Errorf("graph: dot line %d: bad title: %v", line, err)
			}
			title = t
			sawHeader = true
		case !sawHeader:
			return nil, "", fmt.Errorf("graph: dot line %d: statement before digraph header", line)
		default:
			if m := dotEdgeRe.FindStringSubmatch(text); m != nil {
				from, _ := strconv.Atoi(m[1])
				to, _ := strconv.Atoi(m[2])
				cost, err := strconv.ParseFloat(m[3], 64)
				if err != nil {
					return nil, "", fmt.Errorf("graph: dot line %d: bad edge cost %q", line, m[3])
				}
				b.AddEdge(TaskID(from), TaskID(to), cost)
				continue
			}
			if m := dotNodeRe.FindStringSubmatch(text); m != nil {
				id, _ := strconv.Atoi(m[1])
				rawName, rawCost, ok := splitLabel(m[2])
				if !ok {
					return nil, "", fmt.Errorf("graph: dot line %d: node label %q has no cost part", line, m[2])
				}
				name, err := unescapeLabel(rawName)
				if err != nil {
					return nil, "", fmt.Errorf("graph: dot line %d: %v", line, err)
				}
				cost, err := strconv.ParseFloat(rawCost, 64)
				if err != nil {
					return nil, "", fmt.Errorf("graph: dot line %d: bad task cost %q", line, rawCost)
				}
				if got := b.AddTask(name, cost); int(got) != id {
					return nil, "", fmt.Errorf("graph: dot line %d: task id t%d out of order (want t%d)", line, id, got)
				}
				continue
			}
			if strings.HasPrefix(strings.TrimSpace(text), "t") {
				return nil, "", fmt.Errorf("graph: dot line %d: malformed statement %q", line, text)
			}
			// Attribute lines (rankdir, node defaults, ...) are ignored.
		}
	}
	if !sawHeader {
		return nil, "", fmt.Errorf("graph: dot input has no digraph header")
	}
	g, err := b.Build()
	if err != nil {
		return nil, "", err
	}
	return g, title, nil
}

// ReadDOT decodes a graph written by WriteDOT from r.
func ReadDOT(r io.Reader) (*Graph, string, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, "", err
	}
	return FromDOT(data)
}
