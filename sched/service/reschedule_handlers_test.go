package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/sched"
	"repro/sched/gen"
	"repro/sched/service"
)

// Fixture schedulers for the worker-failure regression tests: one that
// returns an error, one that panics mid-run, and one that returns
// (nil, nil) — all three must surface as the job's typed terminal error,
// never as a dead worker or a crashed process.
type failScheduler struct{ mode string }

func (s failScheduler) Name() string { return "test" + s.mode }
func (s failScheduler) Schedule(ctx context.Context, p sched.Problem, opts ...sched.Option) (*sched.Result, error) {
	switch s.mode {
	case "panic":
		panic("fixture scheduler exploded")
	case "nilresult":
		return nil, nil
	default:
		return nil, &failError{}
	}
}

type failError struct{}

func (*failError) Error() string { return "fixture scheduler failed" }

var failFixturesOnce sync.Once

func registerFailFixtures() {
	failFixturesOnce.Do(func() {
		for _, mode := range []string{"err", "panic", "nilresult"} {
			m := mode
			sched.Register(sched.Descriptor{
				Name:        "test" + m,
				Description: "test fixture: fails mid-run (" + m + ")",
				New:         func() sched.Scheduler { return failScheduler{mode: m} },
			})
		}
	})
}

// submitDone submits the paper example asynchronously and waits for it.
func submitDone(t *testing.T, client *service.Client, seed int64) *service.JobView {
	t.Helper()
	req := paperRequest(t)
	req.Seed = seed
	v, err := client.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	done, err := client.Wait(context.Background(), v.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != service.JobDone {
		t.Fatalf("source job status %q (error: %v)", done.Status, done.Error)
	}
	return done
}

func TestRescheduleEndpointByteIdentical(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{Workers: 2})
	ctx := context.Background()
	src := submitDone(t, client, 1)

	v, err := client.Reschedule(ctx, src.ID, service.RescheduleRequest{
		Delta: json.RawMessage(`{"remove_procs":["P4"]}`),
		Seed:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Algo != "bsa" {
		t.Errorf("reschedule job algo = %q, want bsa", v.Algo)
	}
	done, err := client.Wait(ctx, v.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != service.JobDone {
		t.Fatalf("reschedule status %q (error: %v)", done.Status, done.Error)
	}
	if done.Result == nil || done.Result.Makespan <= 0 {
		t.Fatalf("missing reschedule result: %+v", done.Result)
	}

	// The endpoint must return byte-for-byte what the library produces
	// for the same previous schedule, delta and seed.
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	p, err := sched.NewProblem(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		t.Fatal(err)
	}
	prev, err := bsa.Schedule(ctx, p, sched.WithSeed(1), sched.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	delta, err := sched.NewDeltaBuilder().RemoveProc("P4").Build()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sched.Reschedule(ctx, *prev, delta, sched.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := warm.Schedule.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compact(t, done.Result.Schedule), compact(t, want)) {
		t.Error("HTTP reschedule schedule differs from the library's for the same inputs")
	}
	if done.Result.Makespan != warm.Makespan {
		t.Errorf("HTTP makespan %v != library makespan %v", done.Result.Makespan, warm.Makespan)
	}

	// The intake counters saw the delta.
	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["reschedules_total"] != 1 || m["delta_remove_procs_total"] != 1 {
		t.Errorf("delta counters not collected: %v", m)
	}
}

func TestRescheduleValidation(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{Workers: 2})
	ctx := context.Background()
	src := submitDone(t, client, 1)

	// Unknown source job.
	_, err := client.Reschedule(ctx, "j999999", service.RescheduleRequest{Delta: json.RawMessage(`{}`)})
	wantAPIError(t, err, http.StatusNotFound, service.CodeNotFound)

	// Missing delta document.
	_, err = client.Reschedule(ctx, src.ID, service.RescheduleRequest{})
	wantAPIError(t, err, http.StatusBadRequest, service.CodeBadRequest)

	// A delta that does not resolve against the source problem carries
	// the typed detail slug.
	_, err = client.Reschedule(ctx, src.ID, service.RescheduleRequest{Delta: json.RawMessage(`{"remove_procs":["P99"]}`)})
	wantAPIError(t, err, http.StatusBadRequest, service.CodeBadRequest)
	var apiErr *service.APIError
	if !asAPIError(err, &apiErr) || apiErr.Body.Detail != "delta_unknown_proc" {
		t.Errorf("unknown proc detail = %v", err)
	}

	// A structurally invalid delta document.
	_, err = client.Reschedule(ctx, src.ID, service.RescheduleRequest{Delta: json.RawMessage(`{"remove_procs":["P1","P1"]}`)})
	wantAPIError(t, err, http.StatusBadRequest, service.CodeBadRequest)
	if !asAPIError(err, &apiErr) || apiErr.Body.Detail != "delta_duplicate" {
		t.Errorf("duplicate removal detail = %v", err)
	}
}

func asAPIError(err error, out **service.APIError) bool {
	e, ok := err.(*service.APIError)
	if ok {
		*out = e
	}
	return ok
}

func TestRescheduleRequiresDoneJob(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{Workers: 1})
	ctx := context.Background()

	// A job that fails (deadline) is terminal but has no schedule.
	req := paperRequest(t)
	req.Algo = "testsleep"
	req.TimeoutMS = 20
	v, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	failed, err := client.Wait(ctx, v.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if failed.Status != service.JobFailed {
		t.Fatalf("status %q, want failed", failed.Status)
	}
	_, err = client.Reschedule(ctx, v.ID, service.RescheduleRequest{Delta: json.RawMessage(`{}`)})
	wantAPIError(t, err, http.StatusConflict, service.CodeJobNotDone)
}

// TestJobFailureSurfacesTypedError is the worker-failure regression: a
// scheduler that errors, panics, or returns no result mid-pool must
// leave the job retrievable with a typed terminal error body — and the
// server must stay alive and able to run subsequent jobs.
func TestJobFailureSurfacesTypedError(t *testing.T) {
	registerFailFixtures()
	_, client, _ := newTestService(t, service.Config{Workers: 1})
	ctx := context.Background()

	for _, algo := range []string{"testerr", "testpanic", "testnilresult"} {
		req := paperRequest(t)
		req.Algo = algo
		v, err := client.Submit(ctx, req)
		if err != nil {
			t.Fatalf("%s: submit: %v", algo, err)
		}
		done, err := client.Wait(ctx, v.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("%s: wait: %v", algo, err)
		}
		if done.Status != service.JobFailed {
			t.Fatalf("%s: status %q, want failed", algo, done.Status)
		}
		if done.Error == nil || done.Error.Code != service.CodeScheduleFailed {
			t.Fatalf("%s: terminal error = %+v, want code %q", algo, done.Error, service.CodeScheduleFailed)
		}
	}

	// The pool survived all three failures: health is green and a real
	// run still completes on the same (single) worker.
	if err := client.Health(ctx); err != nil {
		t.Fatalf("server unhealthy after failing jobs: %v", err)
	}
	if _, err := client.Schedule(ctx, paperRequest(t)); err != nil {
		t.Fatalf("server cannot schedule after failing jobs: %v", err)
	}
}
