package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"

	"repro/sched"
	"repro/sched/gen"
	"repro/sched/graph"
	"repro/sched/system"
)

// hasDoc reports whether a raw interchange document is actually present.
// An omitted field and an explicit JSON null both count as missing —
// encoders that lack omitempty on a document field (including this
// package's own ScheduleRequest.Graph) serialize absence as "null".
func hasDoc(doc json.RawMessage) bool {
	trimmed := bytes.TrimSpace(doc)
	return len(trimmed) > 0 && !bytes.Equal(trimmed, []byte("null"))
}

// ScheduleRequest is the wire form of one scheduling problem, built
// entirely from the PR-4 public interchange formats: the graph document
// is graph.FromJSON's schema, the system document system.SystemFromJSON's
// and the topology document system.FromJSON's (a bare network).
//
// Exactly one of System, Topology and Topo must be present. A bare
// Topology (or a generated Topo) yields a homogeneous system unless Het
// asks for random min-normalized factors (the paper's heterogeneity
// model, seeded for reproducibility).
type ScheduleRequest struct {
	// Algo selects the algorithm by registry name or alias,
	// case-insensitively. Empty means the server's default ("bsa").
	Algo string `json:"algo,omitempty"`
	// Graph is the task graph interchange document (required).
	Graph json.RawMessage `json:"graph"`
	// System is a full heterogeneous system document: network plus
	// execution/communication factor matrices.
	System json.RawMessage `json:"system,omitempty"`
	// Topology is a bare network document; factors default to 1.
	Topology json.RawMessage `json:"topology,omitempty"`
	// Topo asks the server to generate a named topology family instead
	// of shipping a network document.
	Topo *TopoSpecWire `json:"topo,omitempty"`
	// Het draws random min-normalized factors over Topology or Topo.
	Het *HetSpec `json:"het,omitempty"`
	// Seed drives the algorithm's tie-breaking RNG.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS bounds the run: the server maps it to a context deadline
	// covering queue wait plus scheduling. 0 means no per-request bound.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IdempotencyKey deduplicates asynchronous submissions: resubmitting
	// any request under a key the server already accepted returns the
	// original job (HTTP 200 instead of 202) rather than scheduling again.
	// Keys live exactly as long as their job — once it TTL-expires, the
	// key is free again. Ignored on synchronous /v1/schedule calls.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// wireDoc renders the request as its persistence document — equivalent
// to json.Marshal's output — without reflection. The graph and system
// documents are appended verbatim: their syntax was already validated by
// the strict wire decode, and encoding/json would otherwise recompact
// every byte of them per job, which dominates batch admission (a 64-job
// batch recompacts the shared graph document 64 times over). The result
// only ever feeds json.Unmarshal back into a ScheduleRequest on replay.
func (req *ScheduleRequest) wireDoc() json.RawMessage {
	buf := make([]byte, 0, 96+len(req.Graph)+len(req.System)+len(req.Topology))
	buf = append(buf, '{')
	key := func(name string) {
		if buf[len(buf)-1] != '{' {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = append(buf, name...)
		buf = append(buf, '"', ':')
	}
	str := func(s string) {
		q, _ := json.Marshal(s) // escaping only; marshaling a string cannot fail
		buf = append(buf, q...)
	}
	if req.Algo != "" {
		key("algo")
		str(req.Algo)
	}
	key("graph") // no omitempty: absence round-trips as null
	if len(req.Graph) == 0 {
		buf = append(buf, "null"...)
	} else {
		buf = append(buf, req.Graph...)
	}
	if len(req.System) > 0 {
		key("system")
		buf = append(buf, req.System...)
	}
	if len(req.Topology) > 0 {
		key("topology")
		buf = append(buf, req.Topology...)
	}
	if req.Topo != nil {
		key("topo")
		t, _ := json.Marshal(req.Topo) // plain int/string struct cannot fail
		buf = append(buf, t...)
	}
	if req.Het != nil {
		key("het")
		h, _ := json.Marshal(req.Het) // plain float/int struct cannot fail
		buf = append(buf, h...)
	}
	if req.Seed != 0 {
		key("seed")
		buf = strconv.AppendInt(buf, req.Seed, 10)
	}
	if req.TimeoutMS != 0 {
		key("timeout_ms")
		buf = strconv.AppendInt(buf, req.TimeoutMS, 10)
	}
	if req.IdempotencyKey != "" {
		key("idempotency_key")
		str(req.IdempotencyKey)
	}
	return append(buf, '}')
}

// TopoSpecWire is the wire form of a generated topology: the server
// builds the named sched/gen family instead of parsing a shipped
// network document. Equal specs always materialize identical networks,
// so replicas and WAL replay reconstruct the same system.
type TopoSpecWire struct {
	// Kind is the family name (gen.TopoKindByName, case-insensitive):
	// ring, hypercube, clique, random, mesh, star, tree, line, torus,
	// fattree, hierarchical.
	Kind string `json:"kind"`
	// Procs is the processor count (required).
	Procs int `json:"procs"`
	// Rows is the row count for mesh/torus (0 picks the most square).
	Rows int `json:"rows,omitempty"`
	// MinDeg/MaxDeg bound degrees for the random family.
	MinDeg int `json:"min_deg,omitempty"`
	MaxDeg int `json:"max_deg,omitempty"`
	// Spines is the spine count for fattree (0 picks procs/4).
	Spines int `json:"spines,omitempty"`
	// Groups is the group count for hierarchical (0 picks the most
	// square divisor).
	Groups int `json:"groups,omitempty"`
	// Seed drives the random family's generator; 0 means 1.
	Seed int64 `json:"seed,omitempty"`
}

// HetSpec mirrors bsasched's -het flag: factors drawn uniformly from
// [Lo, Hi] and min-normalized per row, from the given seed.
type HetSpec struct {
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
	Seed int64   `json:"seed,omitempty"`
}

// RescheduleRequest is the wire form of POST /v1/jobs/{id}/reschedule:
// a quasi-dynamic delta applied to a finished job's schedule. The delta
// document is sched.DeltaFromJSON's schema (the Delta interchange
// format).
type RescheduleRequest struct {
	// Delta is the problem delta document (required; "{}" is the empty
	// delta, which just reconverges the schedule).
	Delta json.RawMessage `json:"delta"`
	// Seed drives the reconvergence tie-breaking RNG.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS bounds the run, queue wait included. 0 means no bound.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ScheduleResponse is the wire form of a sched.Result: the schedule
// document is sched.Schedule's MarshalJSON output, byte-identical to what
// the library (and cmd/bsasched -json) produces for the same problem.
type ScheduleResponse struct {
	Algorithm string             `json:"algorithm"`
	Makespan  float64            `json:"makespan"`
	ElapsedNS int64              `json:"elapsed_ns"`
	Summary   string             `json:"summary"`
	Stats     map[string]float64 `json:"stats,omitempty"`
	Schedule  json.RawMessage    `json:"schedule"`
}

// JobStatus is the lifecycle state of an asynchronous job.
type JobStatus string

const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool { return s == JobDone || s == JobFailed }

// JobView is the wire form of one asynchronous job.
type JobView struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	Algo   string    `json:"algo"`
	// Source is the job this one was rescheduled from, when any.
	Source string `json:"source,omitempty"`
	// Result is set once Status is "done".
	Result *ScheduleResponse `json:"result,omitempty"`
	// Error is set once Status is "failed".
	Error *ErrorBody `json:"error,omitempty"`
}

// viewOfRecord renders a record's wire form. Records are snapshots, so
// the Result/Error pointers can be shared directly.
func viewOfRecord(rec *Record) *JobView {
	return &JobView{
		ID:     rec.ID,
		Status: rec.Status,
		Algo:   rec.Algo,
		Source: rec.SourceID,
		Result: rec.Result,
		Error:  rec.Error,
	}
}

// BatchRequest is the wire form of POST /v1/batch: many scheduling
// problems in one round trip. The top-level Graph / System / Topology /
// Topo / Het act as defaults — a job with no graph inherits Graph, and
// a job with no system, topology or topo inherits the
// System/Topology/Topo/Het group — so a parameter sweep over one
// problem ships the documents once. Byte-identical documents within a
// batch are also compiled once, amortizing parse + validation cost
// across the jobs that share them.
type BatchRequest struct {
	Graph    json.RawMessage `json:"graph,omitempty"`
	System   json.RawMessage `json:"system,omitempty"`
	Topology json.RawMessage `json:"topology,omitempty"`
	Topo     *TopoSpecWire   `json:"topo,omitempty"`
	Het      *HetSpec        `json:"het,omitempty"`
	// Jobs are the individual submissions; each is accepted (or rejected)
	// independently.
	Jobs []ScheduleRequest `json:"jobs"`
}

// BatchItem is the per-job outcome inside a BatchResponse: exactly one
// of Job (accepted, same view as POST /v1/jobs) and Error (rejected —
// one bad job does not fail its batch) is set.
type BatchItem struct {
	Job   *JobView   `json:"job,omitempty"`
	Error *ErrorBody `json:"error,omitempty"`
}

// BatchResponse is the wire form of a batch submission: one item per
// requested job, in request order.
type BatchResponse struct {
	Jobs []BatchItem `json:"jobs"`
}

// NodeView describes one replica in GET /v1/cluster.
type NodeView struct {
	Token string `json:"token"`
	Addr  string `json:"addr"`
	Self  bool   `json:"self,omitempty"`
	// Healthy is the result of probing the node's /healthz (always true
	// for the answering node itself).
	Healthy bool `json:"healthy"`
	// State is the answering node's failure-detector verdict on this
	// member: "alive", "suspect" or "dead". Empty when the answering
	// node runs no detector (single-node, or replication disabled).
	State string `json:"state,omitempty"`
	// Jobs is the answering node's live job count; peers report their own
	// through their own /v1/cluster.
	Jobs int `json:"jobs,omitempty"`
}

// ClusterView is the membership/health document of GET /v1/cluster.
type ClusterView struct {
	// Self is the answering replica's token.
	Self string `json:"self"`
	// Nodes lists every configured member, sorted by token.
	Nodes []NodeView `json:"nodes"`
}

// AlgoInfo describes one registered algorithm (GET /v1/algos).
type AlgoInfo struct {
	Name        string   `json:"name"`
	Aliases     []string `json:"aliases,omitempty"`
	Description string   `json:"description"`
}

// Error codes carried by ErrorBody. They are coarser than messages and
// stable across releases, so clients can switch on them.
const (
	CodeBadRequest       = "bad_request"
	CodeUnknownAlgorithm = "unknown_algorithm"
	CodeNotFound         = "not_found"
	CodeBodyTooLarge     = "body_too_large"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeQueueFull        = "queue_full"
	CodeShuttingDown     = "shutting_down"
	CodeScheduleFailed   = "schedule_failed"
	CodeJobNotDone       = "job_not_done"
	// CodeUpstreamUnavailable marks a request this replica forwarded to
	// the job's owner but could not deliver (owner down or unreachable).
	CodeUpstreamUnavailable = "upstream_unavailable"
	// CodeStoreUnavailable marks a persistence failure: the job was not
	// accepted because the store rejected the write. It maps to 503 —
	// the condition is transient (disk pressure, store mid-failover), so
	// clients retry exactly like queue_full.
	CodeStoreUnavailable = "store_unavailable"
	// CodeStoreError is the pre-rename alias of CodeStoreUnavailable,
	// kept so embedders switching on the old constant keep compiling.
	CodeStoreError = CodeStoreUnavailable
)

// ErrorBody is the typed error payload every non-2xx response carries,
// wrapped as {"error": {...}}.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Detail refines Code for validation failures with the library's
	// typed error taxonomy ("graph_cycle", "delta_unknown_proc", ...),
	// so clients can react to the exact defect without parsing Message.
	Detail string `json:"detail,omitempty"`
}

func (e *ErrorBody) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// errorEnvelope is the on-wire shape of an error response.
type errorEnvelope struct {
	Error *ErrorBody `json:"error"`
}

// httpStatus maps an error code to its HTTP status.
func httpStatus(code string) int {
	switch code {
	case CodeBadRequest, CodeScheduleFailed:
		return http.StatusBadRequest
	case CodeUnknownAlgorithm, CodeNotFound:
		return http.StatusNotFound
	case CodeBodyTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case CodeQueueFull, CodeShuttingDown, CodeStoreUnavailable:
		return http.StatusServiceUnavailable
	case CodeJobNotDone:
		return http.StatusConflict
	case CodeUpstreamUnavailable:
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

// validationDetail maps the library's typed validation errors to stable
// wire detail slugs. Unrecognized errors yield "" (no detail).
func validationDetail(err error) string {
	var (
		dupTask    *graph.DuplicateTaskError
		taskCost   *graph.TaskCostError
		edgeRange  *graph.EdgeRangeError
		selfLoop   *graph.SelfLoopError
		edgeCost   *graph.EdgeCostError
		dupEdge    *graph.DuplicateEdgeError
		cycle      *graph.CycleError
		factor     *system.FactorError
		unkTopo    *gen.UnknownTopoKindError
		dUnkProc   *sched.UnknownProcError
		dUnkTask   *sched.UnknownTaskError
		dUnkLink   *sched.UnknownLinkError
		dUnkEdge   *sched.UnknownEdgeError
		dEdgeTgt   *sched.DeltaEdgeTargetError
		dDisc      *sched.DisconnectedError
		dValue     *sched.DeltaValueError
		dDuplicate *sched.DeltaDuplicateError
	)
	switch {
	case errors.Is(err, graph.ErrEmptyTaskName):
		return "graph_empty_task_name"
	case errors.As(err, &dupTask):
		return "graph_duplicate_task"
	case errors.As(err, &taskCost):
		return "graph_task_cost"
	case errors.As(err, &edgeRange):
		return "graph_edge_range"
	case errors.As(err, &selfLoop):
		return "graph_self_loop"
	case errors.As(err, &edgeCost):
		return "graph_edge_cost"
	case errors.As(err, &dupEdge):
		return "graph_duplicate_edge"
	case errors.As(err, &cycle):
		return "graph_cycle"
	case errors.As(err, &factor):
		return "system_factor"
	case errors.As(err, &unkTopo):
		return "unknown_topo_kind"
	case errors.Is(err, sched.ErrEmptyDeltaName):
		return "delta_empty_name"
	case errors.Is(err, sched.ErrNoProcessors):
		return "delta_no_processors"
	case errors.As(err, &dUnkProc):
		return "delta_unknown_proc"
	case errors.As(err, &dUnkTask):
		return "delta_unknown_task"
	case errors.As(err, &dUnkLink):
		return "delta_unknown_link"
	case errors.As(err, &dUnkEdge):
		return "delta_unknown_edge"
	case errors.As(err, &dEdgeTgt):
		return "delta_edge_target"
	case errors.As(err, &dDisc):
		return "delta_disconnects"
	case errors.As(err, &dValue):
		return "delta_value"
	case errors.As(err, &dDuplicate):
		return "delta_duplicate"
	}
	return ""
}

// compileCache memoizes compiled interchange documents within one batch
// request, so N jobs sharing one graph/system document parse and
// validate it once. Keys are the raw document bytes (plus, for
// topology-derived systems, the graph dimensions and heterogeneity spec
// the materialization depends on). Safe to share across the batch's jobs
// because compiled graphs and systems are read-only to every scheduler.
// Not safe for concurrent use — it memoizes a single handler's loop.
type compileCache struct {
	graphs  map[string]*graph.Graph
	systems map[string]*system.System
}

func newCompileCache() *compileCache {
	return &compileCache{graphs: make(map[string]*graph.Graph), systems: make(map[string]*system.System)}
}

func (cc *compileCache) graph(doc json.RawMessage) (*graph.Graph, bool) {
	if cc == nil {
		return nil, false
	}
	g, ok := cc.graphs[string(doc)]
	return g, ok
}

func (cc *compileCache) putGraph(doc json.RawMessage, g *graph.Graph) {
	if cc != nil {
		cc.graphs[string(doc)] = g
	}
}

// systemKey folds in everything the materialized system depends on
// besides the document itself.
func systemKey(doc json.RawMessage, g *graph.Graph, het *HetSpec) string {
	key := fmt.Sprintf("%d/%d|", g.NumTasks(), g.NumEdges())
	if het != nil {
		key += fmt.Sprintf("het %g,%g,%d|", het.Lo, het.Hi, het.Seed)
	}
	return key + string(doc)
}

func (cc *compileCache) system(key string) (*system.System, bool) {
	if cc == nil {
		return nil, false
	}
	sys, ok := cc.systems[key]
	return sys, ok
}

func (cc *compileCache) putSystem(key string, sys *system.System) {
	if cc != nil {
		cc.systems[key] = sys
	}
}

// compile resolves a wire request into a ready-to-run problem: parsed
// graph, materialized system and a constructed scheduler. All validation
// errors surface here, before the job enters the queue, so asynchronous
// submissions still fail fast with a typed 4xx. cc (nil outside batch
// handling) short-circuits recompilation of repeated documents.
func (req *ScheduleRequest) compile(defaultAlgo string, cc *compileCache) (sched.Problem, sched.Scheduler, *ErrorBody) {
	if !hasDoc(req.Graph) {
		return sched.Problem{}, nil, &ErrorBody{Code: CodeBadRequest, Message: "missing graph document"}
	}
	g, ok := cc.graph(req.Graph)
	if !ok {
		var err error
		g, err = graph.FromJSON(req.Graph)
		if err != nil {
			return sched.Problem{}, nil, &ErrorBody{Code: CodeBadRequest, Message: fmt.Sprintf("graph: %v", err), Detail: validationDetail(err)}
		}
		cc.putGraph(req.Graph, g)
	}

	sources := 0
	for _, present := range []bool{hasDoc(req.System), hasDoc(req.Topology), req.Topo != nil} {
		if present {
			sources++
		}
	}
	if sources > 1 {
		return sched.Problem{}, nil, &ErrorBody{Code: CodeBadRequest, Message: "system, topology and topo are mutually exclusive"}
	}

	var sys *system.System
	switch {
	case hasDoc(req.System):
		if req.Het != nil {
			return sched.Problem{}, nil, &ErrorBody{Code: CodeBadRequest, Message: "het applies to topology, not to a full system document"}
		}
		key := systemKey(req.System, g, nil)
		if sys, ok = cc.system(key); !ok {
			var err error
			sys, err = system.SystemFromJSON(req.System)
			if err != nil {
				return sched.Problem{}, nil, &ErrorBody{Code: CodeBadRequest, Message: fmt.Sprintf("system: %v", err), Detail: validationDetail(err)}
			}
			cc.putSystem(key, sys)
		}
	case hasDoc(req.Topology):
		key := systemKey(req.Topology, g, req.Het)
		if sys, ok = cc.system(key); !ok {
			nw, err := system.FromJSON(req.Topology)
			if err != nil {
				return sched.Problem{}, nil, &ErrorBody{Code: CodeBadRequest, Message: fmt.Sprintf("topology: %v", err)}
			}
			var body *ErrorBody
			if sys, body = materializeSystem(nw, g, req.Het); body != nil {
				return sched.Problem{}, nil, body
			}
			cc.putSystem(key, sys)
		}
	case req.Topo != nil:
		spec, _ := json.Marshal(req.Topo) // plain int/string struct cannot fail
		key := systemKey(append([]byte("topo|"), spec...), g, req.Het)
		if sys, ok = cc.system(key); !ok {
			nw, body := req.Topo.build()
			if body != nil {
				return sched.Problem{}, nil, body
			}
			if sys, body = materializeSystem(nw, g, req.Het); body != nil {
				return sched.Problem{}, nil, body
			}
			cc.putSystem(key, sys)
		}
	default:
		return sched.Problem{}, nil, &ErrorBody{Code: CodeBadRequest, Message: "missing system, topology or topo"}
	}

	// Problem.Validate is the library's public well-formedness gate; going
	// through it (rather than a private re-check) keeps the HTTP 400 body
	// aligned with what embedding code would see.
	p := sched.Problem{Graph: g, System: sys}
	if err := p.Validate(); err != nil {
		return sched.Problem{}, nil, &ErrorBody{Code: CodeBadRequest, Message: err.Error(), Detail: validationDetail(err)}
	}

	name := req.Algo
	if name == "" {
		name = defaultAlgo
	}
	scheduler, err := sched.Lookup(name)
	if err != nil {
		return sched.Problem{}, nil, &ErrorBody{Code: CodeUnknownAlgorithm, Message: err.Error()}
	}
	return p, scheduler, nil
}

// build materializes the named topology family. Equal specs yield
// identical networks: the only randomness (the random family) is drawn
// from the spec's own seed.
func (t *TopoSpecWire) build() (*system.Network, *ErrorBody) {
	kind, err := gen.TopoKindByName(t.Kind)
	if err != nil {
		return nil, &ErrorBody{Code: CodeBadRequest, Message: fmt.Sprintf("topo: %v", err), Detail: validationDetail(err)}
	}
	seed := t.Seed
	if seed == 0 {
		seed = 1
	}
	nw, err := gen.Topology(gen.TopoSpec{
		Kind:   kind,
		Procs:  t.Procs,
		Rows:   t.Rows,
		MinDeg: t.MinDeg,
		MaxDeg: t.MaxDeg,
		Spines: t.Spines,
		Groups: t.Groups,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, &ErrorBody{Code: CodeBadRequest, Message: fmt.Sprintf("topo: %v", err)}
	}
	return nw, nil
}

// materializeSystem turns a bare network into a System: uniform factors,
// or the paper's seeded random min-normalized heterogeneity when het is
// present.
func materializeSystem(nw *system.Network, g *graph.Graph, h *HetSpec) (*system.System, *ErrorBody) {
	if h == nil {
		return system.NewUniform(nw, g.NumTasks(), g.NumEdges()), nil
	}
	seed := h.Seed
	if seed == 0 {
		seed = 1
	}
	sys, err := system.NewRandomMinNormalized(nw, g.NumTasks(), g.NumEdges(), h.Lo, h.Hi, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, &ErrorBody{Code: CodeBadRequest, Message: fmt.Sprintf("het: %v", err), Detail: validationDetail(err)}
	}
	return sys, nil
}

// response converts a finished sched.Result to its wire form.
func response(res *sched.Result) (*ScheduleResponse, error) {
	doc, err := res.Schedule.MarshalJSON()
	if err != nil {
		return nil, err
	}
	return &ScheduleResponse{
		Algorithm: res.Algorithm,
		Makespan:  res.Makespan,
		ElapsedNS: res.Elapsed.Nanoseconds(),
		Summary:   res.Summary,
		Stats:     res.Stats,
		Schedule:  doc,
	}, nil
}
