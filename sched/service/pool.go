package service

import (
	"errors"
	"hash/fnv"
	"sync"
)

// errQueueFull is returned by submit when every shard and the shared
// overflow are at capacity — the service's backpressure signal (HTTP 503
// with code "queue_full").
var errQueueFull = errors.New("service: job queue full")

// errDraining is returned by submit after beginDrain: the intake is
// closed but queued jobs are still being finished.
var errDraining = errors.New("service: server draining")

// pool is the service's bounded worker pool, built on the sharded-queue
// discipline of the experiment harness: each worker owns a small shard
// and all workers share one buffered channel, and submit never blocks.
// The preference order is inverted, though. Harness cells share graphs,
// so home-shard affinity buys cache reuse; service jobs are one-shot
// problems with nothing to reuse, and pinning them to a shard would let
// a quick job starve behind one worker's long run while others idle.
// submit therefore fills the shared queue first — any free worker picks
// the next job — and spills to the job's home shard only when the shared
// queue is full (at which point queue wait dominates latency anyway).
// Unlike the harness's batch queue, the intake stays open until
// beginDrain — the service schedules an open-ended stream.
type pool struct {
	shards   []chan *job
	overflow chan *job

	mu       sync.Mutex
	draining bool

	wg sync.WaitGroup
}

// shardBuf is the per-worker shard capacity. Small on purpose: the shard
// only exists to keep a worker busy without contending on the shared
// overflow; global queueing capacity lives in the overflow buffer.
const shardBuf = 16

// newPool starts workers goroutines draining their shard plus the shared
// overflow of capacity depth. run is called once per job.
func newPool(workers, depth int, run func(*job)) *pool {
	p := &pool{
		shards:   make([]chan *job, workers),
		overflow: make(chan *job, depth),
	}
	for i := range p.shards {
		p.shards[i] = make(chan *job, shardBuf)
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer p.wg.Done()
			own, overflow := p.shards[w], p.overflow
			for own != nil || overflow != nil {
				select {
				case j, ok := <-own:
					if !ok {
						own = nil
						continue
					}
					run(j)
				case j, ok := <-overflow:
					if !ok {
						overflow = nil
						continue
					}
					run(j)
				}
			}
		}(w)
	}
	return p
}

// submit enqueues a job on the shared queue, spilling to its home shard
// when the queue is full. It never blocks: a fully loaded pool reports
// errQueueFull and a draining pool errDraining.
//
// The mutex is held across the channel sends so submit can never race
// beginDrain's close of the same channels (send-on-closed panics); the
// sends are non-blocking, so the critical section cannot stall.
func (p *pool) submit(j *job) error {
	h := fnv.New32a()
	h.Write([]byte(j.rec.ID))
	home := p.shards[h.Sum32()%uint32(len(p.shards))]

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return errDraining
	}
	select {
	case p.overflow <- j:
		return nil
	default:
	}
	select {
	case home <- j:
		return nil
	default:
		return errQueueFull
	}
}

// beginDrain closes the intake: subsequent submits fail with errDraining
// and the workers exit once the queued backlog is empty. Idempotent.
func (p *pool) beginDrain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return
	}
	p.draining = true
	for _, ch := range p.shards {
		close(ch)
	}
	close(p.overflow)
}

// wait blocks until every worker has exited (all queued jobs ran).
func (p *pool) wait() { p.wg.Wait() }
