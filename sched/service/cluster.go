package service

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// ringPoints is how many virtual points each replica contributes to the
// hash ring. 64 keeps the ownership split within a few percent of even
// for small clusters without making ring construction noticeable.
const ringPoints = 64

// forwardedHeader marks a request that already crossed one replica hop.
// A forwarded request is always served locally — if the ring says it
// belongs elsewhere the two replicas disagree about membership, and
// bouncing it again would loop forever.
const forwardedHeader = "X-Schedd-Forwarded"

// nodeToken derives a replica's stable 8-hex identity from its
// advertised address. Job IDs embed it ("3aa01f2c.j17"), so any replica
// can route a job reference back to its owner without shared state.
func nodeToken(addr string) string {
	h := fnv.New32a()
	h.Write([]byte(addr))
	return fmt.Sprintf("%08x", h.Sum32())
}

type ringSlot struct {
	hash  uint64
	token string
}

// fmix64 is MurmurHash3's 64-bit finalizer. FNV-64a alone has weak
// avalanche for short inputs that differ only in trailing bytes — which
// is exactly what ring vpoint labels ("addr#0".."addr#63") and
// real-world sequential idempotency keys ("sweep-0", "sweep-1", ...)
// look like. Without the finalizer the vpoints of one node clump into a
// narrow band and whole key families collapse onto a single owner.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// cluster is one replica's static view of the replica tier: the full
// member list (self included) arranged on a consistent-hash ring.
// Membership is configuration, not gossip — every replica is started
// with the same peer list, so all replicas compute identical rings and
// route without coordination.
type cluster struct {
	self      string // advertised address of this replica
	selfToken string
	addrs     map[string]string // token -> advertised address
	ring      []ringSlot        // sorted by hash
	client    *http.Client

	// Per-peer circuit breakers guarding forwarded traffic, created
	// lazily per address. Threshold and cooldown come from the server's
	// Config (defaults here cover clusters built directly in tests).
	breakerThreshold int
	breakerCooldown  time.Duration
	bmu              sync.Mutex
	breakers         map[string]*breaker // addr -> breaker
}

// newCluster builds the ring over self plus peers. client nil means
// http.DefaultClient.
func newCluster(self string, peers []string, client *http.Client) (*cluster, error) {
	if client == nil {
		client = http.DefaultClient
	}
	c := &cluster{
		self:             self,
		selfToken:        nodeToken(self),
		addrs:            make(map[string]string),
		client:           client,
		breakerThreshold: 5,
		breakerCooldown:  2 * time.Second,
		breakers:         make(map[string]*breaker),
	}
	for _, addr := range append([]string{self}, peers...) {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		token := nodeToken(addr)
		if prev, ok := c.addrs[token]; ok {
			if prev == addr {
				continue // duplicate listing of the same member
			}
			return nil, fmt.Errorf("service: node token collision: %q and %q both hash to %s", prev, addr, token)
		}
		c.addrs[token] = addr
		for i := 0; i < ringPoints; i++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", addr, i)
			c.ring = append(c.ring, ringSlot{hash: fmix64(h.Sum64()), token: token})
		}
	}
	sort.Slice(c.ring, func(i, j int) bool { return c.ring[i].hash < c.ring[j].hash })
	return c, nil
}

// size returns the number of members, self included.
func (c *cluster) size() int { return len(c.addrs) }

// ownerToken returns the token of the replica owning key: the first ring
// point at or after the key's hash, wrapping around.
func (c *cluster) ownerToken(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	target := fmix64(h.Sum64())
	i := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= target })
	if i == len(c.ring) {
		i = 0
	}
	return c.ring[i].token
}

// addrOf resolves a member token to its advertised address.
func (c *cluster) addrOf(token string) (string, bool) {
	addr, ok := c.addrs[token]
	return addr, ok
}

// jobToken extracts the owner token a job ID carries ("token.j17" →
// "token"). IDs without one ("j17", single-node) are always local.
func jobToken(id string) string {
	if i := strings.IndexByte(id, '.'); i > 0 {
		return id[:i]
	}
	return ""
}

// breakerFor returns addr's circuit breaker, creating it on first use.
func (c *cluster) breakerFor(addr string) *breaker {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	b, ok := c.breakers[addr]
	if !ok {
		b = newBreaker(c.breakerThreshold, c.breakerCooldown)
		c.breakers[addr] = b
	}
	return b
}

// successorsOf returns up to n distinct member tokens after token in
// sorted-token order, wrapping around — the replication targets of the
// member owning token, and (filtered by liveness) the failover order
// when it dies.
func (c *cluster) successorsOf(token string, n int) []string {
	tokens := c.tokens()
	i := sort.SearchStrings(tokens, token)
	if i == len(tokens) {
		i = 0
	}
	var out []string
	for k := 1; k < len(tokens) && len(out) < n; k++ {
		out = append(out, tokens[(i+k)%len(tokens)])
	}
	return out
}

// tokens returns every member token, sorted.
func (c *cluster) tokens() []string {
	out := make([]string, 0, len(c.addrs))
	for t := range c.addrs {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
