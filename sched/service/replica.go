package service

import (
	"sort"
	"sync"
	"time"
)

// replicaSet is the side-store of records replicated from other owners:
// each owner streams its accepted jobs' persistence records to its ring
// successors, and the successors hold them here — segregated from the
// node's own Store so a replica never confuses foreign jobs with the
// ones it owns. When the failure detector declares an owner dead, the
// first live successor adopts the owner's pending records (re-running
// them byte-identically from the recipe) and serves reads for the
// terminal ones; when the owner returns, the records flow back through
// reconciliation.
type replicaSet struct {
	mu      sync.Mutex
	byOwner map[string]map[string]*Record // owner token -> job ID -> record
	keys    map[string]string             // idempotency key -> job ID
}

func newReplicaSet() *replicaSet {
	return &replicaSet{byOwner: make(map[string]map[string]*Record), keys: make(map[string]string)}
}

// store installs record snapshots replicated by owner, under terminal-
// state precedence: a record that already reached a terminal state here
// is never downgraded by a stale pending copy.
func (r *replicaSet) store(owner string, recs []*Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.byOwner[owner]
	if m == nil {
		m = make(map[string]*Record)
		r.byOwner[owner] = m
	}
	for _, rec := range recs {
		if cur, ok := m[rec.ID]; ok && cur.Status.Terminal() {
			continue
		}
		c := rec.clone()
		m[c.ID] = c
		if c.Key != "" {
			r.keys[c.Key] = c.ID
		}
	}
}

// get returns a snapshot of a replicated record, deriving the owner
// from the ID's token prefix.
func (r *replicaSet) get(id string) (*Record, bool) {
	owner := jobToken(id)
	if owner == "" {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.byOwner[owner][id]
	if !ok {
		return nil, false
	}
	return rec.clone(), true
}

// byKey resolves an idempotency key to its replicated record.
func (r *replicaSet) byKey(key string) (*Record, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.keys[key]
	if !ok {
		return nil, false
	}
	rec, ok := r.byOwner[jobToken(id)][id]
	if !ok {
		return nil, false
	}
	return rec.clone(), true
}

// pending snapshots owner's non-terminal records in ID-sequence order —
// the adoption work list after the owner dies.
func (r *replicaSet) pending(owner string) []*Record {
	r.mu.Lock()
	out := make([]*Record, 0, len(r.byOwner[owner]))
	for _, rec := range r.byOwner[owner] {
		if !rec.Status.Terminal() {
			out = append(out, rec.clone())
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return idSeq(out[i].ID) < idSeq(out[j].ID) })
	return out
}

// terminalRecords snapshots owner's terminal records — the
// reconciliation payload when the owner returns.
func (r *replicaSet) terminalRecords(owner string) []*Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Record, 0, len(r.byOwner[owner]))
	for _, rec := range r.byOwner[owner] {
		if rec.Status.Terminal() {
			out = append(out, rec.clone())
		}
	}
	return out
}

// finish applies a terminal outcome to a replicated record, under the
// same first-terminal-wins rule as the Store.
func (r *replicaSet) finish(rec *Record) {
	owner := jobToken(rec.ID)
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.byOwner[owner][rec.ID]; ok && cur.Status.Terminal() {
		return
	}
	if r.byOwner[owner] == nil {
		r.byOwner[owner] = make(map[string]*Record)
	}
	r.byOwner[owner][rec.ID] = rec.clone()
}

// sweep evicts terminal replicated records older than ttl, mirroring
// the Store's TTL policy so the side-store cannot grow without bound.
func (r *replicaSet) sweep(now time.Time, ttl time.Duration) int {
	if ttl <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for owner, m := range r.byOwner {
		for id, rec := range m {
			if rec.Status.Terminal() && now.Sub(rec.DoneAt) >= ttl {
				delete(m, id)
				if rec.Key != "" && r.keys[rec.Key] == id {
					delete(r.keys, rec.Key)
				}
				n++
			}
		}
		if len(m) == 0 {
			delete(r.byOwner, owner)
		}
	}
	return n
}
