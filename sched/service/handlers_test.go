package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/sched"
	"repro/sched/gen"
	_ "repro/sched/register"
	"repro/sched/service"
)

// sleepScheduler blocks until its context is done — the deterministic
// fixture behind the deadline (504) tests. gate, when non-nil, lets the
// drain test hold hundreds of jobs in flight and release them at once:
// after the gate opens the scheduler delegates to real BSA, so drained
// jobs still produce verified schedules.
type sleepScheduler struct {
	gate <-chan struct{}
}

func (s sleepScheduler) Name() string { return "testsleep" }

func (s sleepScheduler) Schedule(ctx context.Context, p sched.Problem, opts ...sched.Option) (*sched.Result, error) {
	if s.gate != nil {
		select {
		case <-s.gate:
			bsa, err := sched.Lookup("bsa")
			if err != nil {
				return nil, err
			}
			return bsa.Schedule(ctx, p, opts...)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

var (
	registerOnce sync.Once

	gateMu sync.Mutex
	gateCh chan struct{}
)

// armGate installs a fresh drain gate and returns it; the test closes it
// to release every job blocked in a "testgate" run.
func armGate() chan struct{} {
	gateMu.Lock()
	defer gateMu.Unlock()
	gateCh = make(chan struct{})
	return gateCh
}

func currentGate() <-chan struct{} {
	gateMu.Lock()
	defer gateMu.Unlock()
	return gateCh
}

func registerFixtures() {
	registerOnce.Do(func() {
		sched.Register(sched.Descriptor{
			Name:        "testsleep",
			Description: "test fixture: blocks until the context is done",
			New:         func() sched.Scheduler { return sleepScheduler{} },
		})
		sched.Register(sched.Descriptor{
			Name:        "testgate",
			Description: "test fixture: waits for the drain gate, then runs bsa",
			New:         func() sched.Scheduler { return sleepScheduler{gate: currentGate()} },
		})
	})
}

// newTestService starts a Server over httptest and returns it with a
// Client pointed at it and its base URL. The server is drained at test
// end.
func newTestService(t *testing.T, cfg service.Config) (*service.Server, *service.Client, string) {
	t.Helper()
	registerFixtures()
	srv := service.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	})
	return srv, service.NewClient(ts.URL, ts.Client()), ts.URL
}

// paperRequest builds a wire request for the paper's worked example.
func paperRequest(t *testing.T) service.ScheduleRequest {
	t.Helper()
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	gdoc, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	sdoc, err := sys.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return service.ScheduleRequest{Graph: gdoc, System: sdoc, Seed: 1}
}

// post sends raw bytes at a path and returns the response with its body.
func post(t *testing.T, baseURL, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(baseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// compact strips insignificant whitespace from a JSON document.
func compact(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		t.Fatalf("compact %q: %v", data, err)
	}
	return buf.Bytes()
}

// wantAPIError asserts err is an *service.APIError with the given HTTP
// status and wire code.
func wantAPIError(t *testing.T, err error, status int, code string) {
	t.Helper()
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *service.APIError, got %T: %v", err, err)
	}
	if apiErr.StatusCode != status || apiErr.Body.Code != code {
		t.Fatalf("got http %d code %q, want http %d code %q (%s)",
			apiErr.StatusCode, apiErr.Body.Code, status, code, apiErr.Body.Message)
	}
}

func TestScheduleSyncPaperExample(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{Workers: 2})
	ctx := context.Background()

	res, err := client.Schedule(ctx, paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "bsa" {
		t.Errorf("algorithm = %q, want bsa (server default)", res.Algorithm)
	}
	if res.Makespan <= 0 {
		t.Errorf("makespan = %v, want > 0", res.Makespan)
	}
	if len(res.Schedule) == 0 {
		t.Fatal("empty schedule document")
	}

	// The service must return byte-for-byte what the library produces.
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	p, err := sched.NewProblem(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := bsa.Schedule(ctx, p, sched.WithSeed(1), sched.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Schedule.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// The response body is indented as a whole, so compare the schedule
	// documents in compact form: byte-identical content.
	if !bytes.Equal(compact(t, res.Schedule), compact(t, want)) {
		t.Error("HTTP schedule differs from the library's schedule for the same problem")
	}
	if res.Makespan != direct.Makespan {
		t.Errorf("HTTP makespan %v != library makespan %v", res.Makespan, direct.Makespan)
	}
}

func TestSchedulePerAlgorithmSelection(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{Workers: 2})
	for _, algo := range []string{"bsa", "bsa-full", "dls", "heft", "cpop"} {
		req := paperRequest(t)
		req.Algo = algo
		res, err := client.Schedule(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Algorithm != algo {
			t.Errorf("algorithm = %q, want %q", res.Algorithm, algo)
		}
		if res.Makespan <= 0 {
			t.Errorf("%s: makespan %v", algo, res.Makespan)
		}
	}
}

func TestScheduleBadJSON(t *testing.T) {
	_, client, baseURL := newTestService(t, service.Config{})
	// A graph document that is valid JSON but not a valid graph.
	_, err := client.Schedule(context.Background(), service.ScheduleRequest{Graph: json.RawMessage(`{"tasks":42}`)})
	wantAPIError(t, err, http.StatusBadRequest, service.CodeBadRequest)

	// A syntactically broken envelope (not just a broken graph document).
	resp, body := post(t, baseURL, "/v1/schedule", []byte(`{`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), service.CodeBadRequest) {
		t.Errorf("error body %s lacks code %q", body, service.CodeBadRequest)
	}
}

func TestScheduleMissingSystem(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{})
	req := paperRequest(t)
	req.System = nil
	_, err := client.Schedule(context.Background(), req)
	wantAPIError(t, err, http.StatusBadRequest, service.CodeBadRequest)
}

func TestScheduleUnknownAlgo(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{})
	req := paperRequest(t)
	req.Algo = "no-such-algorithm"
	_, err := client.Schedule(context.Background(), req)
	wantAPIError(t, err, http.StatusNotFound, service.CodeUnknownAlgorithm)
}

func TestScheduleDeadline(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{Workers: 2})
	req := paperRequest(t)
	req.Algo = "testsleep"
	req.TimeoutMS = 30
	_, err := client.Schedule(context.Background(), req)
	wantAPIError(t, err, http.StatusGatewayTimeout, service.CodeDeadlineExceeded)
}

func TestScheduleBodyTooLarge(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{MaxBodyBytes: 1024})
	req := paperRequest(t)
	req.Topology = nil
	// Inflate the request past the cap with a huge valid graph document.
	var pad bytes.Buffer
	pad.WriteString(`{"tasks":[`)
	for i := 0; i < 200; i++ {
		if i > 0 {
			pad.WriteByte(',')
		}
		pad.WriteString(`{"name":"taskname-padding-padding-`)
		pad.WriteString(strings.Repeat("x", 20))
		pad.WriteString(strconv.Itoa(i))
		pad.WriteString(`","cost":1}`)
	}
	pad.WriteString(`],"edges":[]}`)
	req.Graph = pad.Bytes()
	_, err := client.Schedule(context.Background(), req)
	wantAPIError(t, err, http.StatusRequestEntityTooLarge, service.CodeBodyTooLarge)
}

func TestJobsAsyncLifecycle(t *testing.T) {
	srv, client, _ := newTestService(t, service.Config{Workers: 2})
	ctx := context.Background()

	v, err := client.Submit(ctx, paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == "" {
		t.Fatal("submit returned an empty job ID")
	}
	done, err := client.Wait(ctx, v.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != service.JobDone {
		t.Fatalf("status = %q, want done (error: %v)", done.Status, done.Error)
	}
	if done.Result == nil || done.Result.Makespan <= 0 {
		t.Fatalf("missing result: %+v", done.Result)
	}
	if srv.Jobs() == 0 {
		t.Error("job store lost the finished job before its TTL")
	}
}

func TestJobNotFound(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{})
	_, err := client.Job(context.Background(), "j999999")
	wantAPIError(t, err, http.StatusNotFound, service.CodeNotFound)
}

func TestJobTTLEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	_, client, _ := newTestService(t, service.Config{Workers: 1, JobTTL: time.Minute, Now: clock})
	ctx := context.Background()

	v, err := client.Submit(ctx, paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, v.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Still visible before the TTL...
	if _, err := client.Job(ctx, v.ID); err != nil {
		t.Fatalf("job gone before TTL: %v", err)
	}
	// ...lazily evicted after it.
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	_, err = client.Job(ctx, v.ID)
	wantAPIError(t, err, http.StatusNotFound, service.CodeNotFound)
}

func TestAlgosEndpoint(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{})
	algos, err := client.Algos(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, a := range algos {
		found[a.Name] = true
	}
	for _, want := range []string{"bsa", "bsa-full", "dls", "heft", "cpop"} {
		if !found[want] {
			t.Errorf("algos listing lacks %q (got %v)", want, algos)
		}
	}
}

func TestHealthAndMetrics(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{Workers: 1})
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	if _, err := client.Schedule(ctx, paperRequest(t)); err != nil {
		t.Fatal(err)
	}
	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["jobs_completed"] < 1 {
		t.Errorf("jobs_completed = %d, want >= 1 (metrics: %v)", m["jobs_completed"], m)
	}
	if m["jobs_in_flight"] != 0 {
		t.Errorf("jobs_in_flight = %d, want 0 after completion", m["jobs_in_flight"])
	}
	// BSA ran, so the aggregated trace counters must have moved: the
	// incremental engine always evaluates candidates, and with the cache
	// on every fresh row is at least a miss.
	if m["evaluations_total"] < 1 || m["cache_misses_total"] < 1 {
		t.Errorf("BSA trace aggregates not collected: %v", m)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	srv, client, _ := newTestService(t, service.Config{Workers: 1})
	ctx := context.Background()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := client.Health(ctx); err == nil {
		t.Error("healthz still ok during drain")
	} else {
		var apiErr *service.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz error = %v, want 503", err)
		}
	}
	_, err := client.Schedule(ctx, paperRequest(t))
	wantAPIError(t, err, http.StatusServiceUnavailable, service.CodeShuttingDown)
}
