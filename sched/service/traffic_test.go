package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/sched"
	"repro/sched/gen"
	"repro/sched/service"
)

// Tests for the traffic-shape surface: idempotency keys, batch
// submission, the SSE event stream, and store replay on boot.

// paperReference runs the library directly for the paper example and
// returns the schedule bytes the service must reproduce verbatim.
func paperReference(t *testing.T, algo string, seed int64) ([]byte, float64) {
	t.Helper()
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	p, err := sched.NewProblem(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Lookup(algo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Schedule(context.Background(), p, sched.WithSeed(seed), sched.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := res.Schedule.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return doc, res.Makespan
}

// TestIdempotentSubmitReturnsOriginalJob pins the duplicate-POST
// contract on the wire: the first keyed submission is accepted with 202,
// the duplicate answers 200 with the original job — same ID, nothing
// scheduled twice.
func TestIdempotentSubmitReturnsOriginalJob(t *testing.T) {
	_, client, baseURL := newTestService(t, service.Config{Workers: 2})
	ctx := context.Background()

	req := paperRequest(t)
	req.IdempotencyKey = "sweep-42"
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	resp, data := post(t, baseURL, "/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first keyed submit: http %d, want 202\n%s", resp.StatusCode, data)
	}
	var first service.JobView
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}

	resp, data = post(t, baseURL, "/v1/jobs", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate keyed submit: http %d, want 200\n%s", resp.StatusCode, data)
	}
	var dup service.JobView
	if err := json.Unmarshal(data, &dup); err != nil {
		t.Fatal(err)
	}
	if dup.ID != first.ID {
		t.Errorf("duplicate returned job %q, want original %q", dup.ID, first.ID)
	}

	// The duplicate still answers with the job's terminal view once it
	// finished — idempotency is not just an accept-time dedup.
	done, err := client.Wait(ctx, first.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != service.JobDone {
		t.Fatalf("job status %q (%v)", done.Status, done.Error)
	}
	resp, data = post(t, baseURL, "/v1/jobs", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("late duplicate: http %d, want 200", resp.StatusCode)
	}
	if err := json.Unmarshal(data, &dup); err != nil {
		t.Fatal(err)
	}
	if dup.Status != service.JobDone || dup.Result == nil {
		t.Errorf("late duplicate view = %+v, want the terminal result", dup)
	}

	// A different key is a different job.
	req.IdempotencyKey = "sweep-43"
	other, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if other.ID == first.ID {
		t.Error("distinct keys shared a job")
	}

	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["idempotent_hits_total"] != 2 {
		t.Errorf("idempotent_hits_total = %d, want 2", m["idempotent_hits_total"])
	}
	if m["jobs_accepted"] != 2 {
		t.Errorf("jobs_accepted = %d, want 2 (duplicates must not be accepted)", m["jobs_accepted"])
	}
}

// TestSyncJobsNeverPersisted: POST /v1/schedule must leave no trace in
// the store — its job IDs are never disclosed, so a persisted record
// would be unreachable garbage (and a WAL write on the sync hot path).
func TestSyncJobsNeverPersisted(t *testing.T) {
	ms := service.NewMemStore()
	_, client, _ := newTestService(t, service.Config{Workers: 2, Store: ms})
	ctx := context.Background()

	if _, err := client.Schedule(ctx, paperRequest(t)); err != nil {
		t.Fatal(err)
	}
	if ms.Len() != 0 {
		t.Errorf("store holds %d records after a sync schedule, want 0", ms.Len())
	}
	if _, err := client.Submit(ctx, paperRequest(t)); err != nil {
		t.Fatal(err)
	}
	if ms.Len() != 1 {
		t.Errorf("store holds %d records after an async submit, want 1", ms.Len())
	}
}

// TestBatchEndpoint: top-level documents fan out as per-job defaults,
// jobs are accepted or rejected independently, and every accepted job's
// schedule is byte-identical to the library's for the same inputs.
func TestBatchEndpoint(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{Workers: 2})
	ctx := context.Background()

	base := paperRequest(t)
	batch := service.BatchRequest{
		Graph:  base.Graph,
		System: base.System,
		Jobs: []service.ScheduleRequest{
			{Seed: 1},                  // inherits graph+system, default algo
			{Seed: 2, Algo: "heft"},    // same documents, different algorithm
			{Seed: 3, Algo: "no-such"}, // rejected without failing the batch
		},
	}
	resp, err := client.SubmitBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) != 3 {
		t.Fatalf("batch response carries %d items, want 3", len(resp.Jobs))
	}
	if item := resp.Jobs[2]; item.Job != nil || item.Error == nil || item.Error.Code != service.CodeUnknownAlgorithm {
		t.Errorf("bad job's item = %+v, want an unknown_algorithm error", item)
	}
	for i, algo := range map[int]string{0: "bsa", 1: "heft"} {
		item := resp.Jobs[i]
		if item.Error != nil || item.Job == nil {
			t.Fatalf("item %d rejected: %+v", i, item.Error)
		}
		done, err := client.Wait(ctx, item.Job.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if done.Status != service.JobDone {
			t.Fatalf("batch job %d status %q (%v)", i, done.Status, done.Error)
		}
		want, wantMakespan := paperReference(t, algo, int64(i+1))
		if !bytes.Equal(compact(t, done.Result.Schedule), compact(t, want)) {
			t.Errorf("batch job %d schedule differs from the library's (%s seed %d)", i, algo, i+1)
		}
		if done.Result.Makespan != wantMakespan {
			t.Errorf("batch job %d makespan %v, want %v", i, done.Result.Makespan, wantMakespan)
		}
	}

	// An empty batch is a request error, not an empty success.
	_, err = client.SubmitBatch(ctx, service.BatchRequest{})
	wantAPIError(t, err, http.StatusBadRequest, service.CodeBadRequest)

	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["batches_total"] != 1 || m["batch_jobs_total"] != 3 {
		t.Errorf("batch counters = %d batches / %d jobs, want 1/3", m["batches_total"], m["batch_jobs_total"])
	}
	// Size 3 lands in every bucket from le_4 up.
	if m["batch_size_le_1"] != 0 || m["batch_size_le_4"] != 1 || m["batch_size_le_inf"] != 1 {
		t.Errorf("batch histogram = le_1:%d le_4:%d le_inf:%d, want 0/1/1",
			m["batch_size_le_1"], m["batch_size_le_4"], m["batch_size_le_inf"])
	}
}

// TestBatchIdempotencyKeys: keys dedupe inside and across batches just
// like single submissions.
func TestBatchIdempotencyKeys(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{Workers: 2})
	ctx := context.Background()

	base := paperRequest(t)
	batch := service.BatchRequest{
		Graph:  base.Graph,
		System: base.System,
		Jobs: []service.ScheduleRequest{
			{Seed: 1, IdempotencyKey: "bk-1"},
			{Seed: 2, IdempotencyKey: "bk-2"},
		},
	}
	first, err := client.SubmitBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	again, err := client.SubmitBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Jobs {
		if first.Jobs[i].Job == nil || again.Jobs[i].Job == nil {
			t.Fatalf("item %d rejected: %+v / %+v", i, first.Jobs[i].Error, again.Jobs[i].Error)
		}
		if first.Jobs[i].Job.ID != again.Jobs[i].Job.ID {
			t.Errorf("item %d resubmission made a new job: %q vs %q",
				i, first.Jobs[i].Job.ID, again.Jobs[i].Job.ID)
		}
	}
	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["jobs_accepted"] != 2 {
		t.Errorf("jobs_accepted = %d, want 2", m["jobs_accepted"])
	}
}

// TestJobEventsStream follows a gated job over SSE: the stream must
// deliver a non-terminal view while the job is held, then the terminal
// view — with the full result — once the gate opens, and then end.
func TestJobEventsStream(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	gate := armGate()
	req := paperRequest(t)
	req.Algo = "testgate"
	v, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		final *service.JobView
		seen  []service.JobStatus
		err   error
	}
	res := make(chan outcome, 1)
	attached := make(chan struct{})
	go func() {
		var o outcome
		o.final, o.err = client.Watch(ctx, v.ID, func(view *service.JobView) {
			if len(o.seen) == 0 {
				close(attached)
			}
			o.seen = append(o.seen, view.Status)
		})
		res <- o
	}()

	// Open the gate only after the stream delivered its first (gated,
	// hence non-terminal) view, so the ordering assertion is
	// deterministic.
	select {
	case <-attached:
	case <-ctx.Done():
		t.Fatal("watcher never received a view")
	}
	close(gate)

	o := <-res
	if o.err != nil {
		t.Fatalf("watch: %v", o.err)
	}
	if o.final.Status != service.JobDone || o.final.Result == nil {
		t.Fatalf("final view = %+v, want done with a result", o.final)
	}
	if len(o.seen) < 2 || o.seen[0].Terminal() {
		t.Errorf("statuses %v: want a non-terminal view before the terminal one", o.seen)
	}
	if last := o.seen[len(o.seen)-1]; last != service.JobDone {
		t.Errorf("last streamed status = %q, want done", last)
	}

	// Byte-identity holds over the stream too.
	want, _ := paperReference(t, "bsa", 1)
	if !bytes.Equal(compact(t, o.final.Result.Schedule), compact(t, want)) {
		t.Error("streamed schedule differs from the library's")
	}

	// Watching an already-finished job yields its terminal view
	// immediately; watching an unknown job is a 404.
	final, err := client.Watch(ctx, v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != service.JobDone {
		t.Errorf("re-watch status %q, want done", final.Status)
	}
	_, err = client.Watch(ctx, "j999999", nil)
	wantAPIError(t, err, http.StatusNotFound, service.CodeNotFound)
}

// TestStoreReplayOnBoot boots a server on a store holding a finished
// job, a pending schedule job, and a pending reschedule job — the state
// a crashed process leaves behind. The pending jobs must re-run under
// their original IDs and produce byte-identical schedules to the
// library; the finished job must stay servable.
func TestStoreReplayOnBoot(t *testing.T) {
	registerFixtures()
	ms := service.NewMemStore()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// First life: accept and finish one job, then shut down.
	srv1 := service.New(service.Config{Workers: 1, Store: ms})
	ts1 := httptest.NewServer(srv1)
	client1 := service.NewClient(ts1.URL, nil)
	src, err := client1.Submit(ctx, paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	done, err := client1.Wait(ctx, src.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != service.JobDone {
		t.Fatalf("source job: %q (%v)", done.Status, done.Error)
	}
	if err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Seed the store with the crash shapes by hand: a pending schedule
	// job and a pending reschedule hanging off the finished one.
	reqDoc, err := json.Marshal(paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	pending := &service.Record{
		ID: "j50", Kind: service.KindSchedule, Algo: "bsa",
		Status: service.JobQueued, Request: reqDoc, CreatedAt: time.Now(),
	}
	if err := ms.Put(pending); err != nil {
		t.Fatal(err)
	}
	resched := &service.Record{
		ID: "j51", Kind: service.KindReschedule, Algo: "bsa",
		Status: service.JobQueued, Delta: json.RawMessage(`{"remove_procs":["P4"]}`),
		Seed: 7, SourceID: src.ID, CreatedAt: time.Now(),
	}
	if err := ms.Put(resched); err != nil {
		t.Fatal(err)
	}

	// Second life: New replays the store.
	srv2 := service.New(service.Config{Workers: 1, Store: ms})
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv2.Drain(drainCtx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts2.Close()
	})
	client2 := service.NewClient(ts2.URL, nil)

	// The finished job is still there, result intact.
	old, err := client2.Job(ctx, src.ID)
	if err != nil {
		t.Fatal(err)
	}
	if old.Status != service.JobDone || old.Result == nil {
		t.Fatalf("finished job after reboot = %+v", old)
	}

	// The pending schedule job re-ran to the library's exact bytes.
	replayed, err := client2.Wait(ctx, "j50", 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Status != service.JobDone {
		t.Fatalf("replayed job: %q (%v)", replayed.Status, replayed.Error)
	}
	want, _ := paperReference(t, "bsa", 1)
	if !bytes.Equal(compact(t, replayed.Result.Schedule), compact(t, want)) {
		t.Error("replayed schedule differs from the library's")
	}

	// The pending reschedule recomputed its lineage: source result from
	// the stored recipe, then the warm-started delta — byte-identical to
	// driving the library by hand.
	relife, err := client2.Wait(ctx, "j51", 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if relife.Status != service.JobDone {
		t.Fatalf("replayed reschedule: %q (%v)", relife.Status, relife.Error)
	}
	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	p, err := sched.NewProblem(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	bsa, err := sched.Lookup("bsa")
	if err != nil {
		t.Fatal(err)
	}
	prev, err := bsa.Schedule(ctx, p, sched.WithSeed(1), sched.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	delta, err := sched.DeltaFromJSON([]byte(`{"remove_procs":["P4"]}`))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sched.Reschedule(ctx, *prev, delta, sched.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	wantWarm, err := warm.Schedule.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compact(t, relife.Result.Schedule), compact(t, wantWarm)) {
		t.Error("replayed reschedule schedule differs from the library's")
	}

	m, err := client2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["store_replays_total"] != 2 {
		t.Errorf("store_replays_total = %d, want 2", m["store_replays_total"])
	}

	// The replayed runs must write their terminal transitions back to the
	// store. The client-visible "done" races the store write by a hair
	// (the runtime job turns terminal first), so poll briefly.
	for _, id := range []string{"j50", "j51"} {
		deadline := time.Now().Add(5 * time.Second)
		for {
			rec, ok := ms.Get(id)
			if ok && rec.Status.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("store record %s never turned terminal after its replayed run (got %+v, %v)", id, rec, ok)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Third life: with every record terminal, boot replays nothing — the
	// jobs must not run a second time.
	srv3 := service.New(service.Config{Workers: 1, Store: ms})
	ts3 := httptest.NewServer(srv3)
	defer ts3.Close()
	client3 := service.NewClient(ts3.URL, nil)
	m3, err := client3.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m3["store_replays_total"] != 0 {
		t.Errorf("store_replays_total on third boot = %d, want 0 (terminal transition not persisted?)", m3["store_replays_total"])
	}
	if err := srv3.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWALRestartLineage is the in-process half of the restart story the
// e2e test proves across real processes: schedule, reschedule, drain,
// reboot on the same directory — both results must still be served, and
// the lineage must survive another reschedule hop.
func TestWALRestartLineage(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	w1 := openWAL(t, dir)
	srv1 := service.New(service.Config{Workers: 1, Store: w1})
	ts1 := httptest.NewServer(srv1)
	client1 := service.NewClient(ts1.URL, nil)

	src, err := client1.Submit(ctx, paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client1.Wait(ctx, src.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	re, err := client1.Reschedule(ctx, src.ID, service.RescheduleRequest{
		Delta: json.RawMessage(`{"remove_procs":["P4"]}`), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := client1.Wait(ctx, re.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != service.JobDone {
		t.Fatalf("reschedule: %q (%v)", first.Status, first.Error)
	}
	// Drain closes the WAL — the clean-shutdown path.
	if err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	w2 := openWAL(t, dir)
	srv2 := service.New(service.Config{Workers: 1, Store: w2})
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv2.Drain(drainCtx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts2.Close()
	})
	client2 := service.NewClient(ts2.URL, nil)

	reborn, err := client2.Job(ctx, re.ID)
	if err != nil {
		t.Fatal(err)
	}
	if reborn.Status != service.JobDone || reborn.Result == nil {
		t.Fatalf("reschedule after reboot = %+v", reborn)
	}
	if !bytes.Equal(compact(t, reborn.Result.Schedule), compact(t, first.Result.Schedule)) {
		t.Error("reschedule result changed across the restart")
	}

	// The lineage is still live: rescheduling off the restored job works,
	// recomputing the chain from stored recipes.
	re2, err := client2.Reschedule(ctx, re.ID, service.RescheduleRequest{
		Delta: json.RawMessage(`{"exec_factors":[{"task":"T1","proc":"P1","factor":2}]}`), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	hop, err := client2.Wait(ctx, re2.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if hop.Status != service.JobDone || hop.Result == nil || hop.Result.Makespan <= 0 {
		t.Fatalf("second-hop reschedule after reboot = %+v (%v)", hop, hop.Error)
	}
}
