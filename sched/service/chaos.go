package service

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosTransport is a seeded, deterministic fault-injecting
// http.RoundTripper: each request draws from a private PRNG (in a
// fixed order, so a given seed and request sequence always injects the
// same faults) and may be delayed, dropped before reaching the
// network, reset mid-flight, or answered with a synthesized 503. It
// wraps the transport clients and replicas forward through, turning
// the chaos suite's "3-node cluster under faults" into a reproducible
// test instead of a flake generator.
//
// Rates are probabilities in [0, 1]; the zero value injects nothing.
type ChaosTransport struct {
	// DropRate fails the request before it is sent (a connect error).
	DropRate float64
	// ResetRate sends the request but fails while reading the response
	// (a connection reset).
	ResetRate float64
	// FiveXXRate answers with a synthesized 503 carrying a typed
	// "chaos_injected" error envelope, without touching the network.
	FiveXXRate float64
	// LatencyRate delays the request by Latency before sending it.
	LatencyRate float64
	// Latency is the injected delay (default 5ms when a latency fault
	// fires with Latency unset).
	Latency time.Duration

	base     http.RoundTripper
	mu       sync.Mutex
	rng      *rand.Rand
	injected atomic.Int64
}

// NewChaosTransport wraps base (nil means http.DefaultTransport) with
// fault injection seeded by seed. Configure the rates on the returned
// value before issuing requests.
func NewChaosTransport(base http.RoundTripper, seed int64) *ChaosTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &ChaosTransport{base: base, rng: rand.New(rand.NewSource(seed))}
}

// Injected returns how many faults have fired so far.
func (t *ChaosTransport) Injected() int64 { return t.injected.Load() }

// draw samples the fault plan for one request. All four draws happen
// on every request, in a fixed order, so the fault sequence depends
// only on the seed and the request count — never on timing.
func (t *ChaosTransport) draw() (drop, reset, fiveXX, delay bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	drop = t.rng.Float64() < t.DropRate
	reset = t.rng.Float64() < t.ResetRate
	fiveXX = t.rng.Float64() < t.FiveXXRate
	delay = t.rng.Float64() < t.LatencyRate
	return
}

func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	drop, reset, fiveXX, delay := t.draw()
	if delay {
		t.injected.Add(1)
		d := t.Latency
		if d <= 0 {
			d = 5 * time.Millisecond
		}
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if drop {
		t.injected.Add(1)
		return nil, fmt.Errorf("chaos: connection dropped (%s %s)", req.Method, req.URL.Path)
	}
	if fiveXX {
		t.injected.Add(1)
		body := []byte(`{"error":{"code":"chaos_injected","message":"chaos: synthesized 503"}}`)
		return &http.Response{
			StatusCode:    http.StatusServiceUnavailable,
			Status:        "503 Service Unavailable",
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if reset {
		t.injected.Add(1)
		resp.Body.Close()
		resp.Body = io.NopCloser(&resetReader{})
	}
	return resp, nil
}

// resetReader fails every read, simulating a connection reset after
// the response headers arrived.
type resetReader struct{}

func (*resetReader) Read([]byte) (int, error) {
	return 0, errors.New("chaos: connection reset mid-body")
}

// ErrInjectedFault is the error FaultyStore's gated writes return.
var ErrInjectedFault = errors.New("chaos: injected store fault")

// FaultyStore wraps a Store with deterministic write-failure
// injection: Put, Finish and Adopt — the paths whose failures a
// correct server must turn into typed 503s rather than ack-then-lose —
// can be made to fail on demand (FailNext) or by seeded rate
// (FailRate). Reads and evictions pass through untouched.
type FaultyStore struct {
	inner Store

	mu       sync.Mutex
	rng      *rand.Rand
	rate     float64
	failNext int
	injected int64
}

// NewFaultyStore wraps inner with fault injection seeded by seed.
func NewFaultyStore(inner Store, seed int64) *FaultyStore {
	return &FaultyStore{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// FailNext makes the next n gated writes fail with ErrInjectedFault.
func (f *FaultyStore) FailNext(n int) {
	f.mu.Lock()
	f.failNext = n
	f.mu.Unlock()
}

// FailRate makes each gated write fail with probability r, drawn from
// the seeded PRNG.
func (f *FaultyStore) FailRate(r float64) {
	f.mu.Lock()
	f.rate = r
	f.mu.Unlock()
}

// Injected returns how many writes have been failed so far.
func (f *FaultyStore) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// gate decides whether this write fails.
func (f *FaultyStore) gate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext > 0 {
		f.failNext--
		f.injected++
		return ErrInjectedFault
	}
	if f.rate > 0 && f.rng.Float64() < f.rate {
		f.injected++
		return ErrInjectedFault
	}
	return nil
}

func (f *FaultyStore) Put(rec *Record) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Put(rec)
}

func (f *FaultyStore) Finish(rec *Record) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Finish(rec)
}

func (f *FaultyStore) Adopt(rec *Record) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Adopt(rec)
}

func (f *FaultyStore) Get(id string) (*Record, bool)              { return f.inner.Get(id) }
func (f *FaultyStore) ByKey(key string) (*Record, bool)           { return f.inner.ByKey(key) }
func (f *FaultyStore) List() []*Record                            { return f.inner.List() }
func (f *FaultyStore) Evict(id string) bool                       { return f.inner.Evict(id) }
func (f *FaultyStore) Sweep(now time.Time, ttl time.Duration) int { return f.inner.Sweep(now, ttl) }
func (f *FaultyStore) Len() int                                   { return f.inner.Len() }
func (f *FaultyStore) Close() error                               { return f.inner.Close() }
