package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client drives a running scheduling service over HTTP. The zero value
// is not usable: construct with NewClient. cmd/schedctl and the
// end-to-end tests are its reference consumers.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient nil means http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// APIError is a non-2xx response decoded into its typed body. The
// service's error codes (CodeBadRequest, ...) are in Body.Code.
type APIError struct {
	StatusCode int
	Body       ErrorBody
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: http %d: %s: %s", e.StatusCode, e.Body.Code, e.Body.Message)
}

// do issues one request and decodes the response into out (ignored when
// nil). Non-2xx responses come back as *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		var env errorEnvelope
		if err := json.Unmarshal(data, &env); err == nil && env.Error != nil {
			apiErr.Body = *env.Error
		} else {
			apiErr.Body = ErrorBody{Code: "http_error", Message: strings.TrimSpace(string(data))}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Schedule runs one problem synchronously (POST /v1/schedule).
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	var out ScheduleResponse
	if err := c.do(ctx, http.MethodPost, "/v1/schedule", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Submit enqueues an asynchronous job (POST /v1/jobs) and returns its
// initial view.
func (c *Client) Submit(ctx context.Context, req ScheduleRequest) (*JobView, error) {
	var out JobView
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitBatch enqueues many jobs in one round trip (POST /v1/batch).
// Each job is accepted or rejected independently: inspect every
// BatchItem's Error.
func (c *Client) SubmitBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reschedule queues a quasi-dynamic delta against a finished job
// (POST /v1/jobs/{id}/reschedule) and returns the new job's initial
// view.
func (c *Client) Reschedule(ctx context.Context, id string, req RescheduleRequest) (*JobView, error) {
	var out JobView
	if err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/reschedule", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches the current view of a job (GET /v1/jobs/{id}).
func (c *Client) Job(ctx context.Context, id string) (*JobView, error) {
	var out JobView
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait polls a job every poll interval until it reaches a terminal state
// or ctx expires. poll <= 0 means 50ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobView, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if v.Status.Terminal() {
			return v, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Watch follows a job's SSE status stream (GET /v1/jobs/{id}/events)
// until the job reaches a terminal state, returning its final view. fn
// (optional) observes every received view, the terminal one included.
// Unlike Wait it never polls: the server pushes each transition.
func (c *Client) Watch(ctx context.Context, id string, fn func(*JobView)) (*JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(resp.Body)
		apiErr := &APIError{StatusCode: resp.StatusCode}
		var env errorEnvelope
		if err := json.Unmarshal(data, &env); err == nil && env.Error != nil {
			apiErr.Body = *env.Error
		} else {
			apiErr.Body = ErrorBody{Code: "http_error", Message: strings.TrimSpace(string(data))}
		}
		return nil, apiErr
	}
	// bufio.Scanner would cap data lines at 64 KiB — a schedule document
	// inside a terminal view can be far larger — so read whole lines.
	r := bufio.NewReader(resp.Body)
	var data []byte
	for {
		line, err := r.ReadString('\n')
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "data:"):
			// Per the SSE spec, consecutive data lines of one event join
			// with a newline. The server emits compact single-line JSON
			// today (see writeSSE), but the client must not depend on it.
			if len(data) > 0 {
				data = append(data, '\n')
			}
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		case line == "" && len(data) > 0:
			var v JobView
			if jerr := json.Unmarshal(data, &v); jerr != nil {
				return nil, fmt.Errorf("service: bad event payload: %w", jerr)
			}
			data = data[:0]
			if fn != nil {
				fn(&v)
			}
			if v.Status.Terminal() {
				return &v, nil
			}
		}
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, fmt.Errorf("service: event stream ended before the job finished: %w", err)
		}
	}
}

// Cluster fetches replica membership and health (GET /v1/cluster).
func (c *Client) Cluster(ctx context.Context) (*ClusterView, error) {
	var out ClusterView
	if err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Algos lists the algorithms registered in the serving binary
// (GET /v1/algos).
func (c *Client) Algos(ctx context.Context) ([]AlgoInfo, error) {
	var out []AlgoInfo
	if err := c.do(ctx, http.MethodGet, "/v1/algos", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Health probes /healthz, returning nil while the service accepts work.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the /metrics counter document.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
