package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client drives a running scheduling service over HTTP. The zero value
// is not usable: construct with NewClient. cmd/schedctl and the
// end-to-end tests are its reference consumers.
type Client struct {
	base  string
	http  *http.Client
	retry *retrier // nil: single attempt per request (the default)
}

// NewClient returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient nil means http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// RetryPolicy configures the client's retry loop: exponential backoff
// with full jitter — each delay is drawn uniformly from [0, min(MaxDelay,
// BaseDelay<<attempt)] — floored at whatever Retry-After the server
// sent. Only idempotent requests retry (GETs and idempotency-keyed
// submissions), and only on transport errors and 502/503 responses:
// anything else either carries state the caller must see, or might
// repeat a non-idempotent side effect.
type RetryPolicy struct {
	// MaxAttempts caps total tries (first attempt included). Default 4.
	MaxAttempts int
	// BaseDelay is the backoff base. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps one backoff step. Default 2s.
	MaxDelay time.Duration
	// Seed drives the jitter PRNG, so tests are reproducible. 0 means 1.
	Seed int64
}

func (p *RetryPolicy) fill() {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// WithRetry returns a copy of the client that retries idempotent
// requests under the given policy. The original client is unchanged.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	p.fill()
	cc := *c
	cc.retry = &retrier{policy: p, rng: rand.New(rand.NewSource(p.Seed))}
	return &cc
}

// retrier holds the retry policy plus its (mutex-guarded) jitter PRNG.
type retrier struct {
	policy RetryPolicy
	mu     sync.Mutex
	rng    *rand.Rand
}

// delay computes the backoff before retry number attempt (1-based),
// floored at the server's Retry-After hint when one arrived.
func (r *retrier) delay(attempt int, retryAfter time.Duration) time.Duration {
	max := r.policy.BaseDelay << uint(attempt-1)
	if max > r.policy.MaxDelay {
		max = r.policy.MaxDelay
	}
	r.mu.Lock()
	d := time.Duration(r.rng.Int63n(int64(max) + 1))
	r.mu.Unlock()
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// errBadEvent marks an SSE payload the client could not decode —
// reconnecting would just replay the same bytes, so never retried.
var errBadEvent = errors.New("service: bad event payload")

// retryable reports whether err is worth another attempt, and any
// Retry-After floor the server attached. Retryable: transport-level
// failures (connect errors, resets, mid-body cuts — the request may
// never have reached the server, or the response never fully left it)
// and 502/503 (the server explicitly said "not now"). Not retryable:
// every other API error (it carries state the caller must see),
// context errors (the caller's deadline is spent), and decode errors
// (the bytes arrived; asking again yields the same bytes).
func retryable(err error) (time.Duration, bool) {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		if apiErr.StatusCode == http.StatusBadGateway || apiErr.StatusCode == http.StatusServiceUnavailable {
			return apiErr.RetryAfter, true
		}
		return 0, false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 0, false
	}
	var syntaxErr *json.SyntaxError
	var typeErr *json.UnmarshalTypeError
	if errors.As(err, &syntaxErr) || errors.As(err, &typeErr) || errors.Is(err, errBadEvent) {
		return 0, false
	}
	return 0, true
}

// sleepCtx pauses for d, honoring ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// APIError is a non-2xx response decoded into its typed body. The
// service's error codes (CodeBadRequest, ...) are in Body.Code.
type APIError struct {
	StatusCode int
	Body       ErrorBody
	// RetryAfter is the response's Retry-After hint (integer-seconds
	// form), zero when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: http %d: %s: %s", e.StatusCode, e.Body.Code, e.Body.Message)
}

// apiError decodes a non-2xx response body into its typed form.
func apiError(resp *http.Response, data []byte) *APIError {
	apiErr := &APIError{StatusCode: resp.StatusCode}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		apiErr.RetryAfter = time.Duration(secs) * time.Second
	}
	var env errorEnvelope
	if err := json.Unmarshal(data, &env); err == nil && env.Error != nil {
		apiErr.Body = *env.Error
	} else {
		apiErr.Body = ErrorBody{Code: "http_error", Message: strings.TrimSpace(string(data))}
	}
	return apiErr
}

// do issues a request and decodes the response into out (ignored when
// nil). Non-2xx responses come back as *APIError. idempotent marks the
// request safe to retry under the client's retry policy.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	attempts := 1
	if c.retry != nil && idempotent {
		attempts = c.retry.policy.MaxAttempts
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		lastErr = c.doOnce(ctx, method, path, body, in != nil, out)
		if lastErr == nil || attempt >= attempts {
			return lastErr
		}
		retryAfter, ok := retryable(lastErr)
		if !ok {
			return lastErr
		}
		if err := sleepCtx(ctx, c.retry.delay(attempt, retryAfter)); err != nil {
			return err
		}
	}
}

// doOnce issues exactly one attempt.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, hasBody bool, out any) error {
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Schedule runs one problem synchronously (POST /v1/schedule). Never
// retried: the job is anonymous, so a retry could run it twice.
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	var out ScheduleResponse
	if err := c.do(ctx, http.MethodPost, "/v1/schedule", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Submit enqueues an asynchronous job (POST /v1/jobs) and returns its
// initial view. Retried under the retry policy only when the request
// carries an idempotency key — the key makes the resubmission safe.
func (c *Client) Submit(ctx context.Context, req ScheduleRequest) (*JobView, error) {
	var out JobView
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out, req.IdempotencyKey != ""); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitBatch enqueues many jobs in one round trip (POST /v1/batch).
// Each job is accepted or rejected independently: inspect every
// BatchItem's Error. Retried only when every job in the batch carries
// an idempotency key.
func (c *Client) SubmitBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	keyed := len(req.Jobs) > 0
	for i := range req.Jobs {
		if req.Jobs[i].IdempotencyKey == "" {
			keyed = false
			break
		}
	}
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", req, &out, keyed); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reschedule queues a quasi-dynamic delta against a finished job
// (POST /v1/jobs/{id}/reschedule) and returns the new job's initial
// view. Never retried: reschedules carry no idempotency key.
func (c *Client) Reschedule(ctx context.Context, id string, req RescheduleRequest) (*JobView, error) {
	var out JobView
	if err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/reschedule", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches the current view of a job (GET /v1/jobs/{id}).
func (c *Client) Job(ctx context.Context, id string) (*JobView, error) {
	var out JobView
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait polls a job every poll interval until it reaches a terminal state
// or ctx expires. poll <= 0 means 50ms. Under a retry policy, transient
// transport errors and 502/503s mid-poll are absorbed by each Job call;
// ctx remains the hard bound.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobView, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if v.Status.Terminal() {
			return v, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Watch follows a job's SSE status stream (GET /v1/jobs/{id}/events)
// until the job reaches a terminal state, returning its final view. fn
// (optional) observes every received view, the terminal one included.
// Unlike Wait it never polls: the server pushes each transition. Under
// a retry policy the stream reconnects after transport failures and
// 502/503s, resuming from the last event's ID via Last-Event-ID so no
// view is delivered twice.
func (c *Client) Watch(ctx context.Context, id string, fn func(*JobView)) (*JobView, error) {
	attempts := 1
	if c.retry != nil {
		attempts = c.retry.policy.MaxAttempts
	}
	lastID := 0
	failures := 0
	for {
		v, progressed, err := c.watchOnce(ctx, id, &lastID, fn)
		if err == nil {
			return v, nil
		}
		if progressed {
			failures = 0 // the connection worked; only count consecutive dead ones
		}
		failures++
		if failures >= attempts {
			return nil, err
		}
		retryAfter, ok := retryable(err)
		if !ok {
			return nil, err
		}
		if serr := sleepCtx(ctx, c.retry.delay(failures, retryAfter)); serr != nil {
			return nil, serr
		}
	}
}

// watchOnce runs one SSE connection, tracking event IDs into *lastID
// and dropping events a previous connection already delivered.
// progressed reports whether any new event arrived before the failure.
func (c *Client) watchOnce(ctx context.Context, id string, lastID *int, fn func(*JobView)) (final *JobView, progressed bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(*lastID))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(resp.Body)
		return nil, false, apiError(resp, data)
	}
	// bufio.Scanner would cap data lines at 64 KiB — a schedule document
	// inside a terminal view can be far larger — so read whole lines.
	br := bufio.NewReader(resp.Body)
	var data []byte
	eventID := 0
	for {
		line, rerr := br.ReadString('\n')
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "id:"):
			if n, aerr := strconv.Atoi(strings.TrimSpace(line[len("id:"):])); aerr == nil {
				eventID = n
			}
		case strings.HasPrefix(line, "data:"):
			// Per the SSE spec, consecutive data lines of one event join
			// with a newline. The server emits compact single-line JSON
			// today (see writeSSE), but the client must not depend on it.
			if len(data) > 0 {
				data = append(data, '\n')
			}
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		case line == "" && len(data) > 0:
			payload := data
			data = nil
			eid := eventID
			eventID = 0
			if eid != 0 && eid <= *lastID {
				continue // replayed on reconnect; already delivered
			}
			var v JobView
			if jerr := json.Unmarshal(payload, &v); jerr != nil {
				return nil, progressed, fmt.Errorf("%w: %v", errBadEvent, jerr)
			}
			if eid != 0 {
				*lastID = eid
			}
			progressed = true
			if fn != nil {
				fn(&v)
			}
			if v.Status.Terminal() {
				return &v, progressed, nil
			}
		}
		if rerr != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, progressed, ctxErr
			}
			return nil, progressed, rerr
		}
	}
}

// Cluster fetches replica membership and health (GET /v1/cluster).
func (c *Client) Cluster(ctx context.Context) (*ClusterView, error) {
	var out ClusterView
	if err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Algos lists the algorithms registered in the serving binary
// (GET /v1/algos).
func (c *Client) Algos(ctx context.Context) ([]AlgoInfo, error) {
	var out []AlgoInfo
	if err := c.do(ctx, http.MethodGet, "/v1/algos", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// Health probes /healthz, returning nil while the service accepts work.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, true)
}

// Metrics fetches the /metrics counter document.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}
