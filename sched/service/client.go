package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client drives a running scheduling service over HTTP. The zero value
// is not usable: construct with NewClient. cmd/schedctl and the
// end-to-end tests are its reference consumers.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient nil means http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// APIError is a non-2xx response decoded into its typed body. The
// service's error codes (CodeBadRequest, ...) are in Body.Code.
type APIError struct {
	StatusCode int
	Body       ErrorBody
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: http %d: %s: %s", e.StatusCode, e.Body.Code, e.Body.Message)
}

// do issues one request and decodes the response into out (ignored when
// nil). Non-2xx responses come back as *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		var env errorEnvelope
		if err := json.Unmarshal(data, &env); err == nil && env.Error != nil {
			apiErr.Body = *env.Error
		} else {
			apiErr.Body = ErrorBody{Code: "http_error", Message: strings.TrimSpace(string(data))}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Schedule runs one problem synchronously (POST /v1/schedule).
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	var out ScheduleResponse
	if err := c.do(ctx, http.MethodPost, "/v1/schedule", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Submit enqueues an asynchronous job (POST /v1/jobs) and returns its
// initial view.
func (c *Client) Submit(ctx context.Context, req ScheduleRequest) (*JobView, error) {
	var out JobView
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reschedule queues a quasi-dynamic delta against a finished job
// (POST /v1/jobs/{id}/reschedule) and returns the new job's initial
// view.
func (c *Client) Reschedule(ctx context.Context, id string, req RescheduleRequest) (*JobView, error) {
	var out JobView
	if err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/reschedule", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches the current view of a job (GET /v1/jobs/{id}).
func (c *Client) Job(ctx context.Context, id string) (*JobView, error) {
	var out JobView
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait polls a job every poll interval until it reaches a terminal state
// or ctx expires. poll <= 0 means 50ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobView, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if v.Status.Terminal() {
			return v, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Algos lists the algorithms registered in the serving binary
// (GET /v1/algos).
func (c *Client) Algos(ctx context.Context) ([]AlgoInfo, error) {
	var out []AlgoInfo
	if err := c.do(ctx, http.MethodGet, "/v1/algos", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Health probes /healthz, returning nil while the service accepts work.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the /metrics counter document.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
