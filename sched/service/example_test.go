package service_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"repro/sched/gen"
	_ "repro/sched/register"
	"repro/sched/service"
)

// Example runs the whole service loop in-process: start a Server, point
// a Client at it, schedule the paper's worked example synchronously and
// drain. This is exactly what cmd/schedd + cmd/schedctl do across a real
// network boundary.
func Example() {
	srv := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	gdoc, err := g.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	sdoc, err := sys.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	client := service.NewClient(ts.URL, nil)
	res, err := client.Schedule(ctx, service.ScheduleRequest{
		Algo:   "bsa",
		Graph:  gdoc,
		System: sdoc,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s scheduled the paper example: makespan %.0f\n", res.Algorithm, res.Makespan)

	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	// Output:
	// bsa scheduled the paper example: makespan 135
}

// ExampleClient_SubmitBatch amortizes a parameter sweep into one round
// trip: the graph and system documents ride at the batch's top level as
// per-job defaults (parsed and compiled once server-side), and each job
// varies only its algorithm or seed. Idempotency keys make the whole
// batch safe to retry — resubmitting returns the same jobs instead of
// scheduling them again.
func ExampleClient_SubmitBatch() {
	srv := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	gdoc, err := g.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	sdoc, err := sys.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	client := service.NewClient(ts.URL, nil)
	resp, err := client.SubmitBatch(ctx, service.BatchRequest{
		Graph:  gdoc,
		System: sdoc,
		Jobs: []service.ScheduleRequest{
			{Algo: "bsa", Seed: 1, IdempotencyKey: "sweep-bsa"},
			{Algo: "heft", Seed: 1, IdempotencyKey: "sweep-heft"},
			{Algo: "cpop", Seed: 1, IdempotencyKey: "sweep-cpop"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, item := range resp.Jobs {
		if item.Error != nil {
			log.Fatal(item.Error)
		}
		done, err := client.Wait(ctx, item.Job.ID, 5*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: makespan %.0f\n", done.Algo, done.Result.Makespan)
	}

	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	// Output:
	// bsa: makespan 135
	// heft: makespan 186
	// cpop: makespan 172
}
