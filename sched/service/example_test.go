package service_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"repro/sched/gen"
	_ "repro/sched/register"
	"repro/sched/service"
)

// Example runs the whole service loop in-process: start a Server, point
// a Client at it, schedule the paper's worked example synchronously and
// drain. This is exactly what cmd/schedd + cmd/schedctl do across a real
// network boundary.
func Example() {
	srv := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	g := gen.PaperExampleGraph()
	sys := gen.PaperExampleSystem(g)
	gdoc, err := g.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	sdoc, err := sys.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	client := service.NewClient(ts.URL, nil)
	res, err := client.Schedule(ctx, service.ScheduleRequest{
		Algo:   "bsa",
		Graph:  gdoc,
		System: sdoc,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s scheduled the paper example: makespan %.0f\n", res.Algorithm, res.Makespan)

	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	// Output:
	// bsa scheduled the paper example: makespan 135
}
