package service_test

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/sched/service"
)

// The store conformance suite: one shared test table run against every
// Store implementation. A new store lands as one file plus a factory
// registration here; the suite pins the exact contract server.go relies
// on — snapshot isolation, first-terminal-wins, clockless TTL sweeping,
// and snapshots that stay readable after eviction.

// storeFactories enumerates every Store implementation under test.
func storeFactories() map[string]func(t *testing.T) service.Store {
	return map[string]func(t *testing.T) service.Store{
		"mem": func(t *testing.T) service.Store { return service.NewMemStore() },
		"wal": func(t *testing.T) service.Store {
			w, err := service.OpenWAL(t.TempDir())
			if err != nil {
				t.Fatalf("open wal: %v", err)
			}
			return w
		},
	}
}

// forEachStore runs test once per registered implementation.
func forEachStore(t *testing.T, test func(t *testing.T, s service.Store)) {
	for name, mk := range storeFactories() {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			t.Cleanup(func() {
				if err := s.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			})
			test(t, s)
		})
	}
}

// storeEpoch is the fixed base instant of the suite's injected clock —
// stores are clockless, so tests pass absolute times in.
var storeEpoch = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// queuedRec builds a fresh non-terminal record. key may be empty.
func queuedRec(id, key string) *service.Record {
	return &service.Record{
		ID:        id,
		Kind:      service.KindSchedule,
		Algo:      "bsa",
		Status:    service.JobQueued,
		Key:       key,
		Request:   json.RawMessage(`{"seed":1}`),
		CreatedAt: storeEpoch,
	}
}

// doneRec builds the terminal form of a record for Finish.
func doneRec(id, key string, at time.Time) *service.Record {
	rec := queuedRec(id, key)
	rec.Status = service.JobDone
	rec.Result = &service.ScheduleResponse{Algorithm: "bsa", Makespan: 42, Schedule: json.RawMessage(`{}`)}
	rec.DoneAt = at
	return rec
}

func TestStorePutGetSnapshot(t *testing.T) {
	forEachStore(t, func(t *testing.T, s service.Store) {
		if err := s.Put(queuedRec("j1", "")); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Get("j1")
		if !ok || got.Status != service.JobQueued || got.Kind != service.KindSchedule {
			t.Fatalf("get = %+v, %v", got, ok)
		}
		// The returned record is a snapshot: mutating it must not leak
		// into the store.
		got.Status = service.JobFailed
		again, _ := s.Get("j1")
		if again.Status != service.JobQueued {
			t.Errorf("snapshot mutation leaked into the store: %q", again.Status)
		}
		if s.Len() != 1 {
			t.Errorf("len = %d, want 1", s.Len())
		}
		if _, ok := s.Get("j2"); ok {
			t.Error("get of an absent ID reported ok")
		}
	})
}

func TestStoreDuplicatePutRejected(t *testing.T) {
	forEachStore(t, func(t *testing.T, s service.Store) {
		if err := s.Put(queuedRec("j1", "")); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(queuedRec("j1", "")); err == nil {
			t.Error("second Put of the same ID succeeded")
		}
		if s.Len() != 1 {
			t.Errorf("len = %d after duplicate put, want 1", s.Len())
		}
	})
}

// TestStoreTerminalIdempotence pins first-terminal-wins: once a record
// is terminal, a second Finish — even with a different outcome — is a
// silent no-op.
func TestStoreTerminalIdempotence(t *testing.T) {
	forEachStore(t, func(t *testing.T, s service.Store) {
		if err := s.Finish(doneRec("ghost", "", storeEpoch)); err == nil {
			t.Error("Finish of an unknown ID succeeded")
		}
		if err := s.Put(queuedRec("j1", "")); err != nil {
			t.Fatal(err)
		}
		if err := s.Finish(queuedRec("j1", "")); err == nil {
			t.Error("Finish with a non-terminal status succeeded")
		}
		if err := s.Finish(doneRec("j1", "", storeEpoch)); err != nil {
			t.Fatal(err)
		}
		// The conflicting second terminal state must not displace the first.
		late := queuedRec("j1", "")
		late.Status = service.JobFailed
		late.Error = &service.ErrorBody{Code: service.CodeScheduleFailed, Message: "too late"}
		late.DoneAt = storeEpoch.Add(time.Hour)
		if err := s.Finish(late); err != nil {
			t.Fatalf("idempotent second finish errored: %v", err)
		}
		got, _ := s.Get("j1")
		if got.Status != service.JobDone || got.Result == nil || got.Result.Makespan != 42 {
			t.Errorf("first terminal state lost: %+v", got)
		}
	})
}

func TestStoreKeyIndex(t *testing.T) {
	forEachStore(t, func(t *testing.T, s service.Store) {
		if err := s.Put(queuedRec("j1", "alpha")); err != nil {
			t.Fatal(err)
		}
		rec, ok := s.ByKey("alpha")
		if !ok || rec.ID != "j1" {
			t.Fatalf("bykey = %+v, %v", rec, ok)
		}
		if _, ok := s.ByKey("beta"); ok {
			t.Error("unknown key resolved")
		}
		// Eviction frees the key for reuse by a different job.
		if !s.Evict("j1") {
			t.Fatal("evict reported the record absent")
		}
		if _, ok := s.ByKey("alpha"); ok {
			t.Error("key survived its record's eviction")
		}
		if err := s.Put(queuedRec("j2", "alpha")); err != nil {
			t.Fatal(err)
		}
		if rec, ok := s.ByKey("alpha"); !ok || rec.ID != "j2" {
			t.Errorf("reused key resolves to %+v, %v", rec, ok)
		}
	})
}

// TestStoreTTLSweep drives eviction with an injected clock: Sweep takes
// the time as an argument, so the test owns every instant.
func TestStoreTTLSweep(t *testing.T) {
	forEachStore(t, func(t *testing.T, s service.Store) {
		const ttl = time.Minute
		if err := s.Put(queuedRec("pending", "")); err != nil {
			t.Fatal(err)
		}
		for _, id := range []string{"old", "new"} {
			if err := s.Put(queuedRec(id, "")); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Finish(doneRec("old", "", storeEpoch)); err != nil {
			t.Fatal(err)
		}
		if err := s.Finish(doneRec("new", "", storeEpoch.Add(30*time.Second))); err != nil {
			t.Fatal(err)
		}

		if n := s.Sweep(storeEpoch.Add(ttl-time.Second), ttl); n != 0 {
			t.Errorf("sweep before expiry evicted %d", n)
		}
		// At epoch+ttl only "old" has aged out; "pending" never expires —
		// it is not terminal.
		if n := s.Sweep(storeEpoch.Add(ttl), ttl); n != 1 {
			t.Errorf("sweep at expiry evicted %d, want 1", n)
		}
		if _, ok := s.Get("old"); ok {
			t.Error("expired record still present")
		}
		if _, ok := s.Get("new"); !ok {
			t.Error("unexpired record swept")
		}
		if _, ok := s.Get("pending"); !ok {
			t.Error("pending record swept")
		}
		// ttl <= 0 disables sweeping entirely.
		if n := s.Sweep(storeEpoch.Add(time.Hour), 0); n != 0 {
			t.Errorf("zero ttl swept %d", n)
		}
	})
}

func TestStoreListSnapshot(t *testing.T) {
	forEachStore(t, func(t *testing.T, s service.Store) {
		for i := range 3 {
			if err := s.Put(queuedRec(fmt.Sprintf("j%d", i), "")); err != nil {
				t.Fatal(err)
			}
		}
		recs := s.List()
		if len(recs) != 3 {
			t.Fatalf("list = %d records, want 3", len(recs))
		}
		for _, rec := range recs {
			rec.Status = service.JobFailed
		}
		for i := range 3 {
			if got, _ := s.Get(fmt.Sprintf("j%d", i)); got.Status != service.JobQueued {
				t.Fatalf("list snapshot mutation leaked into %s", got.ID)
			}
		}
	})
}

// TestStoreEvictionWhileStreaming pins the property the SSE handler
// leans on: a snapshot handed out by Get/List stays fully readable while
// — and after — the janitor evicts the record underneath it. Run under
// -race this also hammers the implementations' locking.
func TestStoreEvictionWhileStreaming(t *testing.T) {
	forEachStore(t, func(t *testing.T, s service.Store) {
		const n = 64
		for i := range n {
			id := fmt.Sprintf("j%d", i)
			if err := s.Put(queuedRec(id, "")); err != nil {
				t.Fatal(err)
			}
			if err := s.Finish(doneRec(id, "", storeEpoch)); err != nil {
				t.Fatal(err)
			}
		}

		// The deterministic half: take a snapshot, evict its record, keep
		// reading the snapshot.
		held, ok := s.Get("j0")
		if !ok {
			t.Fatal("j0 missing")
		}
		if !s.Evict("j0") {
			t.Fatal("evict j0")
		}
		if held.Result == nil || held.Result.Makespan != 42 || held.Status != service.JobDone {
			t.Fatalf("snapshot degraded after eviction: %+v", held)
		}

		// The concurrent half: readers stream snapshots while sweeps and
		// evictions remove everything underneath them.
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for range 4 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, rec := range s.List() {
						if rec.Result != nil && rec.Result.Makespan != 42 {
							t.Errorf("torn snapshot: %+v", rec)
							return
						}
					}
					if rec, ok := s.Get("j17"); ok && rec.Status != service.JobDone {
						t.Errorf("torn get: %+v", rec)
						return
					}
				}
			}()
		}
		for i := 1; i < n; i += 2 {
			s.Evict(fmt.Sprintf("j%d", i))
		}
		s.Sweep(storeEpoch.Add(time.Hour), time.Minute)
		close(stop)
		wg.Wait()
		if s.Len() != 0 {
			t.Errorf("len = %d after full sweep, want 0", s.Len())
		}
	})
}

// TestStoreAdopt pins the reconciliation contract: Adopt force-installs
// a replicated record — unknown IDs insert, pending entries are
// replaced in place, but a record that already reached a terminal state
// locally is never displaced (first-terminal-wins, same as Finish).
func TestStoreAdopt(t *testing.T) {
	forEachStore(t, func(t *testing.T, s service.Store) {
		// Unknown ID: Adopt inserts where Finish would error.
		if err := s.Adopt(doneRec("foreign", "fkey", storeEpoch)); err != nil {
			t.Fatalf("adopt of an unknown ID: %v", err)
		}
		got, ok := s.Get("foreign")
		if !ok || got.Status != service.JobDone || got.Result == nil {
			t.Fatalf("adopted record = %+v, %v", got, ok)
		}
		if rec, ok := s.ByKey("fkey"); !ok || rec.ID != "foreign" {
			t.Errorf("adopted key not indexed: %+v, %v", rec, ok)
		}

		// Pending entry: the adopted terminal state replaces it.
		if err := s.Put(queuedRec("j1", "k1")); err != nil {
			t.Fatal(err)
		}
		if err := s.Adopt(doneRec("j1", "k1", storeEpoch)); err != nil {
			t.Fatalf("adopt over pending: %v", err)
		}
		if got, _ := s.Get("j1"); got.Status != service.JobDone || got.Result.Makespan != 42 {
			t.Errorf("adopt did not replace the pending entry: %+v", got)
		}

		// Terminal entry: a conflicting adopted outcome is a silent no-op.
		late := queuedRec("j1", "k1")
		late.Status = service.JobFailed
		late.Error = &service.ErrorBody{Code: service.CodeScheduleFailed, Message: "divergent"}
		late.DoneAt = storeEpoch.Add(time.Hour)
		if err := s.Adopt(late); err != nil {
			t.Fatalf("adopt over terminal errored: %v", err)
		}
		if got, _ := s.Get("j1"); got.Status != service.JobDone || got.Result == nil {
			t.Errorf("adopt displaced an existing terminal state: %+v", got)
		}

		// A pending adopted record is legal too (owner replicating its
		// backlog): it lands and stays readable.
		if err := s.Adopt(queuedRec("j2", "")); err != nil {
			t.Fatalf("adopt of a pending record: %v", err)
		}
		if got, ok := s.Get("j2"); !ok || got.Status != service.JobQueued {
			t.Errorf("pending adopt = %+v, %v", got, ok)
		}
	})
}

// TestStoreAdoptSurvivesRestart pins that WAL-backed adoption is
// durable: an adopted record must replay after reopen exactly like a
// Put/Finish pair would.
func TestStoreAdoptSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	w, err := service.OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Adopt(doneRec("foreign", "fkey", storeEpoch)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := service.OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, ok := w2.Get("foreign")
	if !ok || got.Status != service.JobDone || got.Result == nil || got.Result.Makespan != 42 {
		t.Fatalf("adopted record lost across restart: %+v, %v", got, ok)
	}
	if rec, ok := w2.ByKey("fkey"); !ok || rec.ID != "foreign" {
		t.Errorf("adopted key lost across restart: %+v, %v", rec, ok)
	}
}
