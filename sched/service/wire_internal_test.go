package service

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestWireDocMatchesMarshal pins the hand-rolled persistence renderer to
// encoding/json: for already-compact documents the output is
// byte-identical to json.Marshal, and for any input the round trip
// through json.Unmarshal reproduces the request exactly — which is the
// property boot replay actually depends on.
func TestWireDocMatchesMarshal(t *testing.T) {
	compactGraph := json.RawMessage(`{"tasks":[{"id":"T1","exec":40}]}`)
	cases := map[string]ScheduleRequest{
		"minimal": {Graph: compactGraph},
		"full": {
			Algo:           "bsa",
			Graph:          compactGraph,
			System:         json.RawMessage(`{"procs":4}`),
			Het:            &HetSpec{Lo: 1, Hi: 50, Seed: 7},
			Seed:           -3,
			TimeoutMS:      1500,
			IdempotencyKey: "sweep \"quoted\" / unicode ü\n",
		},
		"topology": {Topology: json.RawMessage(`{"links":[]}`), Graph: compactGraph},
		"topo": {
			Graph: compactGraph,
			Topo:  &TopoSpecWire{Kind: "hierarchical", Procs: 8, Groups: 2, Seed: 5},
			Het:   &HetSpec{Lo: 1, Hi: 10, Seed: 3},
		},
		"absent-graph": {Algo: "heft"},
		"null-graph":   {Graph: json.RawMessage(`null`), Seed: 9},
	}
	for name, req := range cases {
		t.Run(name, func(t *testing.T) {
			want, err := json.Marshal(&req)
			if err != nil {
				t.Fatal(err)
			}
			got := req.wireDoc()
			if !bytes.Equal(got, want) {
				t.Errorf("wireDoc = %s\njson.Marshal = %s", got, want)
			}
			var back ScheduleRequest
			if err := json.Unmarshal(got, &back); err != nil {
				t.Fatalf("round trip: %v", err)
			}
		})
	}

	// Non-compact documents are appended verbatim (that is the point), so
	// only the round trip is pinned, not byte identity.
	spaced := ScheduleRequest{Graph: json.RawMessage("{ \"tasks\" : [] }\n"), Seed: 2}
	var back ScheduleRequest
	if err := json.Unmarshal(spaced.wireDoc(), &back); err != nil {
		t.Fatalf("round trip of non-compact doc: %v", err)
	}
	var wantG, gotG any
	if err := json.Unmarshal(spaced.Graph, &wantG); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(back.Graph, &gotG); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotG, wantG) || back.Seed != 2 {
		t.Errorf("round trip changed the request: %+v", back)
	}
}
