package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/sched"
	"repro/sched/gen"
	"repro/sched/service"
	"repro/sched/system"
)

// topoRequest builds a wire request whose system is generated
// server-side from a named topology family.
func topoRequest(t *testing.T, spec *service.TopoSpecWire) service.ScheduleRequest {
	t.Helper()
	g, err := gen.Generate(gen.Spec{Kind: gen.Random, Size: 24, Granularity: 1}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	gdoc, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return service.ScheduleRequest{Graph: gdoc, Topo: spec, Seed: 1}
}

// TestScheduleByNamedTopology proves schedule-by-name reaches every
// registered family and returns byte-for-byte what the library produces
// when the client builds the same topology itself.
func TestScheduleByNamedTopology(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{Workers: 2})
	ctx := context.Background()
	for _, kind := range []string{"mesh", "torus", "fattree", "hierarchical", "random"} {
		req := topoRequest(t, &service.TopoSpecWire{Kind: kind, Procs: 8, Seed: 2})
		res, err := client.Schedule(ctx, req)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}

		tk, err := gen.TopoKindByName(kind)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := gen.Topology(gen.TopoSpec{Kind: tk, Procs: 8}, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		g, err := gen.Generate(gen.Spec{Kind: gen.Random, Size: 24, Granularity: 1}, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		p, err := sched.NewProblem(g, system.NewUniform(nw, g.NumTasks(), g.NumEdges()))
		if err != nil {
			t.Fatal(err)
		}
		bsa, err := sched.Lookup("bsa")
		if err != nil {
			t.Fatal(err)
		}
		direct, err := bsa.Schedule(ctx, p, sched.WithSeed(1), sched.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.Schedule.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(compact(t, res.Schedule), compact(t, want)) {
			t.Errorf("%s: HTTP schedule differs from the library's for the same named topology", kind)
		}
		if res.Makespan != direct.Makespan {
			t.Errorf("%s: HTTP makespan %v != library %v", kind, res.Makespan, direct.Makespan)
		}
	}
}

func TestScheduleTopoWithHet(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{Workers: 2})
	req := topoRequest(t, &service.TopoSpecWire{Kind: "torus", Procs: 9})
	req.Het = &service.HetSpec{Lo: 1, Hi: 50, Seed: 7}
	res, err := client.Schedule(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Determinism: the same spec + het seed must reproduce the makespan.
	res2, err := client.Schedule(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != res2.Makespan {
		t.Errorf("heterogeneous named topology not deterministic: %v vs %v", res.Makespan, res2.Makespan)
	}
}

func TestScheduleTopoErrors(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{})
	ctx := context.Background()

	// Unknown family: 400 with the typed detail slug, and the message
	// must enumerate the valid kinds.
	_, err := client.Schedule(ctx, topoRequest(t, &service.TopoSpecWire{Kind: "banyan", Procs: 8}))
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *service.APIError, got %v", err)
	}
	if apiErr.StatusCode != http.StatusBadRequest || apiErr.Body.Detail != "unknown_topo_kind" {
		t.Fatalf("got http %d detail %q, want 400 unknown_topo_kind", apiErr.StatusCode, apiErr.Body.Detail)
	}

	// Topo and Topology together are ambiguous.
	req := topoRequest(t, &service.TopoSpecWire{Kind: "ring", Procs: 4})
	req.Topology = json.RawMessage(`{"procs":["P1"],"links":[]}`)
	_, err = client.Schedule(ctx, req)
	wantAPIError(t, err, http.StatusBadRequest, service.CodeBadRequest)

	// Infeasible spec (fat-tree with no leaves) fails fast.
	_, err = client.Schedule(ctx, topoRequest(t, &service.TopoSpecWire{Kind: "fattree", Procs: 4, Spines: 4}))
	wantAPIError(t, err, http.StatusBadRequest, service.CodeBadRequest)
}

// TestBatchTopoDefault proves the batch-level Topo default is inherited
// by jobs that carry no system source of their own.
func TestBatchTopoDefault(t *testing.T) {
	_, client, _ := newTestService(t, service.Config{Workers: 2})
	ctx := context.Background()
	req := topoRequest(t, nil)
	batch := service.BatchRequest{
		Graph: req.Graph,
		Topo:  &service.TopoSpecWire{Kind: "hierarchical", Procs: 8, Groups: 2},
		Jobs:  []service.ScheduleRequest{{Seed: 1}, {Algo: "heft", Seed: 2}},
	}
	resp, err := client.SubmitBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) != 2 {
		t.Fatalf("got %d items, want 2", len(resp.Jobs))
	}
	for i, item := range resp.Jobs {
		if item.Error != nil {
			t.Fatalf("job %d rejected: %v", i, item.Error)
		}
		final, err := client.Wait(ctx, item.Job.ID, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if final.Status != service.JobDone {
			t.Fatalf("job %d status %s: %+v", i, final.Status, final.Error)
		}
		if final.Result.Makespan <= 0 {
			t.Errorf("job %d makespan %v", i, final.Result.Makespan)
		}
	}
}
