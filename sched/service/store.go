package service

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/sched"
)

// job is one unit of scheduling work: a compiled run closure plus its
// lifecycle state. Handlers compile requests into jobs (so every
// validation error surfaces before queueing), the pool runs them, and
// the store keeps finished jobs around until their TTL expires.
type job struct {
	id   string
	algo string

	// run executes the work — a cold scheduler call or a warm-started
	// reschedule — under the job's context.
	run func(context.Context) (*sched.Result, error)

	// ctx bounds the run (queue wait included); cancel releases its
	// timer once the job reaches a terminal state.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	status JobStatus
	result *ScheduleResponse
	errors *ErrorBody
	// res retains the library result of a done job so a follow-up
	// POST /v1/jobs/{id}/reschedule can warm-start from its schedule
	// without reparsing the wire document. Evicted with the job.
	res *sched.Result

	// done closes when the job reaches a terminal state; the sync
	// handler and Client.Wait-backed tests select on it.
	done chan struct{}
	// doneAt is the terminal-transition time, the TTL eviction anchor.
	doneAt time.Time
}

// view snapshots the job's wire form.
func (j *job) view() *JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &JobView{ID: j.id, Status: j.status, Algo: j.algo, Result: j.result, Error: j.errors}
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.status = JobRunning
	j.mu.Unlock()
}

func (j *job) finish(now time.Time, res *sched.Result, resp *ScheduleResponse, errBody *ErrorBody) {
	j.mu.Lock()
	if errBody != nil {
		j.status = JobFailed
		j.errors = errBody
	} else {
		j.status = JobDone
		j.result = resp
		j.res = res
	}
	j.doneAt = now
	j.mu.Unlock()
	j.cancel()
	close(j.done)
}

// doneResult returns the retained library result once the job is done.
func (j *job) doneResult() (*sched.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != JobDone || j.res == nil {
		return nil, false
	}
	return j.res, true
}

// terminalSince returns the terminal-transition time, or false while the
// job is still queued or running.
func (j *job) terminalSince() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doneAt, j.status.Terminal()
}

// store is the in-memory job table with TTL eviction: terminal jobs are
// dropped ttl after they finish, both lazily on lookup and by the
// server's janitor sweep. Live jobs are never evicted.
type store struct {
	mu   sync.Mutex
	jobs map[string]*job
	seq  atomic.Uint64
}

func newStore() *store {
	return &store{jobs: make(map[string]*job)}
}

// nextID returns a process-unique job ID.
func (s *store) nextID() string {
	return "j" + strconv.FormatUint(s.seq.Add(1), 10)
}

func (s *store) put(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
}

func (s *store) delete(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
}

// get returns the job, lazily evicting it when its TTL has passed.
func (s *store) get(id string, now time.Time, ttl time.Duration) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	if doneAt, terminal := j.terminalSince(); terminal && ttl > 0 && now.Sub(doneAt) >= ttl {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		return nil, false
	}
	return j, true
}

// sweep evicts every terminal job older than ttl and returns how many it
// removed.
func (s *store) sweep(now time.Time, ttl time.Duration) int {
	if ttl <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, j := range s.jobs {
		if doneAt, terminal := j.terminalSince(); terminal && now.Sub(doneAt) >= ttl {
			delete(s.jobs, id)
			n++
		}
	}
	return n
}

// size returns the number of stored jobs (any state).
func (s *store) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}
