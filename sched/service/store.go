package service

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// RecordKind distinguishes how a stored job is recomputed after a
// restart: a plain scheduling job re-runs its request document, a
// reschedule job re-derives its source result through its lineage and
// re-applies its delta.
type RecordKind string

const (
	KindSchedule   RecordKind = "schedule"
	KindReschedule RecordKind = "reschedule"
)

// Record is the persistent form of one asynchronous job — everything a
// restarted server needs to serve its result again or, for a job that
// never finished, to re-run it: the original request document
// (KindSchedule) or the source-job ID plus delta document
// (KindReschedule). Every registered scheduler is deterministic, so a
// record doubles as a recipe: replaying it reproduces the exact schedule
// bytes the interrupted run would have produced.
type Record struct {
	ID     string     `json:"id"`
	Kind   RecordKind `json:"kind"`
	Algo   string     `json:"algo"`
	Status JobStatus  `json:"status"`
	// Key is the idempotency key the job was accepted under, if any.
	Key string `json:"idempotency_key,omitempty"`
	// Request is the original ScheduleRequest document (KindSchedule).
	Request json.RawMessage `json:"request,omitempty"`
	// Delta, Seed and SourceID are the reschedule lineage
	// (KindReschedule): the delta document applied to SourceID's result
	// under the given tie-break seed.
	Delta    json.RawMessage `json:"delta,omitempty"`
	Seed     int64           `json:"seed,omitempty"`
	SourceID string          `json:"source_id,omitempty"`
	// Result and Error carry the terminal outcome, set by Finish.
	Result *ScheduleResponse `json:"result,omitempty"`
	Error  *ErrorBody        `json:"error,omitempty"`

	CreatedAt time.Time `json:"created_at"`
	DoneAt    time.Time `json:"done_at,omitzero"`
}

// clone returns a shallow copy. Result, Error and the raw documents are
// treated as immutable once set, so sharing them across copies is safe.
func (r *Record) clone() *Record {
	c := *r
	return &c
}

// Store persists accepted asynchronous jobs. The server writes every
// async job through it — Put on accept, Finish on the terminal
// transition, Evict/Sweep on TTL expiry — and replays it on boot:
// terminal records stay retrievable through GET /v1/jobs/{id} and usable
// as reschedule sources, pending ones are recompiled and re-enqueued.
// MemStore keeps records for the process lifetime; WALStore survives
// restarts.
//
// Implementations must be safe for concurrent use, must return snapshot
// records that stay valid after eviction, and must keep the FIRST
// terminal state a record reaches — a second Finish of the same ID is a
// no-op. The conformance suite in store_conformance_test.go pins the
// exact contract; a new Store lands as one file plus a suite
// registration.
type Store interface {
	// Put inserts a newly accepted, non-terminal record and indexes its
	// idempotency key. Inserting an ID that already exists is an error.
	Put(rec *Record) error
	// Finish records rec's terminal transition. Finishing an unknown ID
	// or passing a non-terminal status is an error; finishing an
	// already-terminal record is a no-op (first terminal state wins).
	Finish(rec *Record) error
	// Adopt force-installs a record snapshot in any state — the
	// replication/reconciliation primitive. Unlike Put it tolerates an
	// existing entry, and unlike Finish it can insert unknown IDs; the
	// one invariant it keeps is terminal-state precedence: a record that
	// already reached a terminal state is never replaced (the first
	// terminal outcome wins, exactly as with Finish).
	Adopt(rec *Record) error
	// Get returns a snapshot of the record, false when absent.
	Get(id string) (*Record, bool)
	// ByKey resolves an idempotency key to its record's snapshot.
	ByKey(key string) (*Record, bool)
	// List snapshots every record, in no particular order.
	List() []*Record
	// Evict removes one record (any state), reporting whether it existed.
	Evict(id string) bool
	// Sweep evicts every terminal record whose DoneAt is at least ttl
	// before now and returns how many it removed. The clock arrives as an
	// argument so stores stay clockless (and tests can inject time).
	Sweep(now time.Time, ttl time.Duration) int
	// Len is the number of stored records (any state).
	Len() int
	// Close releases the store's resources. The store is unusable after.
	Close() error
}

// MemStore is the in-memory Store: records live exactly as long as the
// process. It is the default when Config.Store is nil, and the reference
// implementation whose index the WAL store reuses.
type MemStore struct {
	mu   sync.Mutex
	recs map[string]*Record
	keys map[string]string // idempotency key -> job ID
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{recs: make(map[string]*Record), keys: make(map[string]string)}
}

func (m *MemStore) Put(rec *Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.put(rec)
}

// put inserts without locking; WAL replay reuses it under its own lock.
func (m *MemStore) put(rec *Record) error {
	if _, ok := m.recs[rec.ID]; ok {
		return fmt.Errorf("service: store already has job %q", rec.ID)
	}
	m.load(rec)
	return nil
}

// load force-inserts a record snapshot, replacing any existing entry —
// the snapshot-restore primitive.
func (m *MemStore) load(rec *Record) {
	c := rec.clone()
	m.recs[c.ID] = c
	if c.Key != "" {
		m.keys[c.Key] = c.ID
	}
}

func (m *MemStore) Finish(rec *Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := m.finish(rec)
	return err
}

// finish applies a terminal transition, reporting whether it changed
// anything (false for the idempotent second finish).
func (m *MemStore) finish(rec *Record) (bool, error) {
	if !rec.Status.Terminal() {
		return false, fmt.Errorf("service: finish with non-terminal status %q for job %q", rec.Status, rec.ID)
	}
	cur, ok := m.recs[rec.ID]
	if !ok {
		return false, fmt.Errorf("service: finish of unknown job %q", rec.ID)
	}
	if cur.Status.Terminal() {
		return false, nil // first terminal state wins
	}
	m.recs[rec.ID] = rec.clone()
	return true, nil
}

func (m *MemStore) Adopt(rec *Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.adopt(rec)
	return nil
}

// adopt force-installs a snapshot under terminal-state precedence,
// reporting whether it changed anything (false when the stored record
// is already terminal).
func (m *MemStore) adopt(rec *Record) bool {
	if cur, ok := m.recs[rec.ID]; ok && cur.Status.Terminal() {
		return false
	}
	m.load(rec)
	return true
}

func (m *MemStore) Get(id string) (*Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[id]
	if !ok {
		return nil, false
	}
	return rec.clone(), true
}

func (m *MemStore) ByKey(key string) (*Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.keys[key]
	if !ok {
		return nil, false
	}
	rec, ok := m.recs[id]
	if !ok {
		return nil, false
	}
	return rec.clone(), true
}

func (m *MemStore) List() []*Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Record, 0, len(m.recs))
	for _, rec := range m.recs {
		out = append(out, rec.clone())
	}
	return out
}

func (m *MemStore) Evict(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evict(id)
}

func (m *MemStore) evict(id string) bool {
	rec, ok := m.recs[id]
	if !ok {
		return false
	}
	delete(m.recs, id)
	if rec.Key != "" {
		delete(m.keys, rec.Key)
	}
	return true
}

func (m *MemStore) Sweep(now time.Time, ttl time.Duration) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepLocked(now, ttl)
}

func (m *MemStore) sweepLocked(now time.Time, ttl time.Duration) int {
	if ttl <= 0 {
		return 0
	}
	n := 0
	for id, rec := range m.recs {
		if rec.Status.Terminal() && now.Sub(rec.DoneAt) >= ttl {
			m.evict(id)
			n++
		}
	}
	return n
}

func (m *MemStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

func (m *MemStore) Close() error { return nil }
