package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// walCompactEvery is the default number of appended operations after
// which the log is folded into a fresh snapshot.
const walCompactEvery = 4096

const (
	walFileName      = "wal.log"
	walOldFileName   = "wal.old.log"
	snapshotFileName = "snapshot.json"
)

// walEntry is one logged operation. Sweeps log their clock arguments
// instead of each eviction, so a 10k-record sweep costs one line and
// replays deterministically.
type walEntry struct {
	Op  string        `json:"op"` // "put" | "finish" | "adopt" | "evict" | "sweep"
	Rec *Record       `json:"rec,omitempty"`
	ID  string        `json:"id,omitempty"`
	Now time.Time     `json:"now,omitzero"`
	TTL time.Duration `json:"ttl_ns,omitempty"`
}

// WALStore is the disk-backed Store: an append-only record log plus a
// periodic snapshot, so accepted jobs — including reschedule lineage —
// survive a restart. Layout inside the data directory:
//
//	snapshot.json   full record array as of the last compaction
//	wal.old.log     rotated-out log of a compaction in progress (or one
//	                a crash interrupted); absent in steady state
//	wal.log         JSON lines of operations since that snapshot
//
// OpenWAL loads the snapshot, replays wal.old.log then wal.log
// (tolerating a torn final line from a crash mid-append), and compacts
// the logs back into a fresh snapshot once they accumulate CompactEvery
// operations — and again on Close, so a cleanly shut down store reboots
// from the snapshot alone.
//
// Durability is process-crash grade: every append reaches the kernel
// before the operation returns (so records survive a SIGKILL), but
// writes are not fsynced individually — only snapshots are — so a
// whole-machine power loss can drop the ops since the last compaction.
type WALStore struct {
	mem *MemStore // doubles as the lock: every WAL op holds mem.mu
	dir string
	f   *os.File
	ops int
	// compactEvery is the compaction threshold; see CompactEvery.
	compactEvery int
	// compactMu serializes compactions so the expensive snapshot
	// encode + fsync can run without mem.mu held.
	compactMu sync.Mutex
}

// OpenWAL opens (creating if needed) the WAL store in dir and replays
// its contents. A leftover wal.old.log (a crash mid-compaction) is
// replayed before wal.log and folded away by an immediate compaction,
// so the interrupted compaction completes on boot.
func OpenWAL(dir string) (*WALStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: wal dir: %w", err)
	}
	w := &WALStore{mem: NewMemStore(), dir: dir, compactEvery: walCompactEvery}
	if err := w.loadSnapshot(); err != nil {
		return nil, err
	}
	hadOld, err := w.replayLogFile(filepath.Join(dir, walOldFileName))
	if err != nil {
		return nil, err
	}
	if _, err := w.replayLogFile(filepath.Join(dir, walFileName)); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open wal: %w", err)
	}
	w.f = f
	if hadOld {
		if err := w.compactLocked(); err != nil {
			f.Close() //nolint:errcheck // already failing; report the compaction error
			return nil, err
		}
	}
	return w, nil
}

// CompactEvery overrides the compaction threshold (default 4096 ops).
// Useful for tests and for tuning write amplification against reboot
// time.
func (w *WALStore) CompactEvery(n int) {
	w.mem.mu.Lock()
	defer w.mem.mu.Unlock()
	if n > 0 {
		w.compactEvery = n
	}
}

// Dir returns the store's data directory.
func (w *WALStore) Dir() string { return w.dir }

func (w *WALStore) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(w.dir, snapshotFileName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: read snapshot: %w", err)
	}
	var recs []*Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return fmt.Errorf("service: parse snapshot: %w", err)
	}
	for _, rec := range recs {
		w.mem.load(rec)
	}
	return nil
}

// replayLogFile applies one log file on top of the current state,
// reporting whether the file existed. A line that does not parse — a
// torn append from a crash — truncates the file there: the torn
// operation never happened.
func (w *WALStore) replayLogFile(path string) (bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("service: open wal for replay: %w", err)
	}
	defer f.Close()
	var (
		good int64 // byte offset of the end of the last good line
		r    = bufio.NewReader(f)
	)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 && err == nil {
			var e walEntry
			if jsonErr := json.Unmarshal(line, &e); jsonErr != nil {
				break // corrupt line: drop it and everything after
			}
			w.apply(&e)
			good += int64(len(line))
			w.ops++
			continue
		}
		// err != nil: EOF (possibly with a final unterminated line — a
		// torn append, dropped) or a read error; stop either way.
		if err != nil && err != io.EOF {
			return true, fmt.Errorf("service: replay wal: %w", err)
		}
		break
	}
	if fi, err := os.Stat(path); err == nil && fi.Size() > good {
		if err := os.Truncate(path, good); err != nil {
			return true, fmt.Errorf("service: truncate torn wal tail: %w", err)
		}
	}
	return true, nil
}

// apply replays one logged operation into the index. Replay is lenient
// where the live API is strict: a finish without a matching put (only
// possible in a hand-edited log) is loaded as-is rather than failing the
// whole boot.
func (w *WALStore) apply(e *walEntry) {
	switch e.Op {
	case "put":
		if e.Rec != nil {
			w.mem.load(e.Rec)
		}
	case "finish":
		if e.Rec != nil {
			if _, err := w.mem.finish(e.Rec); err != nil {
				w.mem.load(e.Rec)
			}
		}
	case "adopt":
		if e.Rec != nil {
			w.mem.adopt(e.Rec)
		}
	case "evict":
		w.mem.evict(e.ID)
	case "sweep":
		w.mem.sweepLocked(e.Now, e.TTL)
	}
}

// append logs one operation. Callers hold mem.mu; compaction is NOT
// triggered here — the public operations call maybeCompact after
// releasing the lock, so the snapshot write never stalls readers.
func (w *WALStore) append(e *walEntry) error {
	if w.f == nil {
		return fmt.Errorf("service: wal store is closed")
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("service: encode wal entry: %w", err)
	}
	if _, err := w.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("service: append wal: %w", err)
	}
	w.ops++
	return nil
}

// maybeCompact folds the log into a fresh snapshot once it holds
// compactEvery operations. The expensive part — encoding and fsyncing
// the full record set — runs WITHOUT mem.mu held, so Get/ByKey/appends
// proceed during compaction: under the lock the live log is only
// rotated aside (wal.log → wal.old.log) and the record pointers copied
// (records are immutable once stored, so sharing them is race-free). A
// crash anywhere in between leaves the previous snapshot plus both
// logs, which OpenWAL replays in order and re-compacts.
//
// Compaction failure never fails the operation that tripped it — the
// logs stay intact and replayable, the next threshold crossing retries,
// and Close's final compaction reports any lasting trouble.
func (w *WALStore) maybeCompact() {
	w.compactMu.Lock()
	defer w.compactMu.Unlock()
	w.mem.mu.Lock()
	if w.f == nil || w.ops < w.compactEvery {
		w.mem.mu.Unlock()
		return
	}
	recs, err := w.rotateLocked()
	w.mem.mu.Unlock()
	if err == nil {
		err = w.installSnapshot(recs)
	}
	_ = err // best-effort: state stays replayable, retried at the next threshold
}

// rotateLocked moves the live log aside as wal.old.log, starts a fresh
// wal.log, and returns the record set the next snapshot must contain.
// Callers hold mem.mu.
func (w *WALStore) rotateLocked() ([]*Record, error) {
	walPath := filepath.Join(w.dir, walFileName)
	oldPath := filepath.Join(w.dir, walOldFileName)
	if err := os.Rename(walPath, oldPath); err != nil {
		return nil, fmt.Errorf("service: rotate wal: %w", err)
	}
	nf, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		os.Rename(oldPath, walPath) //nolint:errcheck // best-effort rollback; both names replay on boot
		return nil, fmt.Errorf("service: reopen wal after rotate: %w", err)
	}
	w.f.Close() //nolint:errcheck // append-only fd, everything already reached the kernel
	w.f = nf
	w.ops = 0
	recs := make([]*Record, 0, len(w.mem.recs))
	for _, rec := range w.mem.recs {
		recs = append(recs, rec)
	}
	return recs, nil
}

// installSnapshot writes recs to snapshot.json (temp file, fsync,
// rename — a crash mid-write leaves the previous snapshot intact) and
// retires the rotated-out log the snapshot subsumes.
func (w *WALStore) installSnapshot(recs []*Record) error {
	data, err := json.MarshalIndent(recs, "", " ")
	if err != nil {
		return fmt.Errorf("service: encode snapshot: %w", err)
	}
	tmp := filepath.Join(w.dir, snapshotFileName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("service: snapshot tmp: %w", err)
	}
	if _, err := tf.Write(data); err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("service: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapshotFileName)); err != nil {
		return fmt.Errorf("service: install snapshot: %w", err)
	}
	if err := os.Remove(filepath.Join(w.dir, walOldFileName)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("service: retire old wal: %w", err)
	}
	return nil
}

// compactLocked is the synchronous full compaction — snapshot the
// current state, retire wal.old.log, truncate the live log — used where
// stalling is fine and rotation is not wanted: boot recovery and Close.
// Callers hold mem.mu or have exclusive access (OpenWAL).
func (w *WALStore) compactLocked() error {
	recs := make([]*Record, 0, len(w.mem.recs))
	for _, rec := range w.mem.recs {
		recs = append(recs, rec)
	}
	if err := w.installSnapshot(recs); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("service: truncate wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("service: rewind wal: %w", err)
	}
	w.ops = 0
	return nil
}

func (w *WALStore) Put(rec *Record) error {
	w.mem.mu.Lock()
	err := w.mem.put(rec)
	if err == nil {
		if err = w.append(&walEntry{Op: "put", Rec: rec.clone()}); err != nil {
			w.mem.evict(rec.ID)
		}
	}
	w.mem.mu.Unlock()
	if err != nil {
		return err
	}
	w.maybeCompact()
	return nil
}

func (w *WALStore) Finish(rec *Record) error {
	w.mem.mu.Lock()
	changed, err := w.mem.finish(rec)
	if err == nil && changed {
		err = w.append(&walEntry{Op: "finish", Rec: rec.clone()})
	}
	w.mem.mu.Unlock()
	if err != nil {
		return err
	}
	w.maybeCompact()
	return nil
}

func (w *WALStore) Adopt(rec *Record) error {
	w.mem.mu.Lock()
	var err error
	if w.mem.adopt(rec) {
		err = w.append(&walEntry{Op: "adopt", Rec: rec.clone()})
	}
	w.mem.mu.Unlock()
	if err != nil {
		return err
	}
	w.maybeCompact()
	return nil
}

func (w *WALStore) Get(id string) (*Record, bool)    { return w.mem.Get(id) }
func (w *WALStore) ByKey(key string) (*Record, bool) { return w.mem.ByKey(key) }
func (w *WALStore) List() []*Record                  { return w.mem.List() }
func (w *WALStore) Len() int                         { return w.mem.Len() }

func (w *WALStore) Evict(id string) bool {
	w.mem.mu.Lock()
	ok := w.mem.evict(id)
	if ok {
		w.append(&walEntry{Op: "evict", ID: id}) //nolint:errcheck // eviction is best-effort cleanup
	}
	w.mem.mu.Unlock()
	if ok {
		w.maybeCompact()
	}
	return ok
}

func (w *WALStore) Sweep(now time.Time, ttl time.Duration) int {
	w.mem.mu.Lock()
	n := w.mem.sweepLocked(now, ttl)
	if n > 0 {
		w.append(&walEntry{Op: "sweep", Now: now, TTL: ttl}) //nolint:errcheck // eviction is best-effort cleanup
	}
	w.mem.mu.Unlock()
	if n > 0 {
		w.maybeCompact()
	}
	return n
}

// Close compacts one final time (so the next boot reads the snapshot
// alone) and releases the log file. Idempotent. A successful final
// compaction supersedes any earlier background-compaction failure; if
// the final one fails too, that error is reported.
func (w *WALStore) Close() error {
	w.compactMu.Lock()
	defer w.compactMu.Unlock()
	w.mem.mu.Lock()
	defer w.mem.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.compactLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
