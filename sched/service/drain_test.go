package service_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/sched/service"
)

// TestDrainUnderConcurrentLoad is the service's headline concurrency
// test (run with -race): it parks well over 200 jobs in flight behind
// the gate scheduler, asserts the intake held them all without deadlock,
// then drains the server while the backlog is still queued. Drain must
// run every accepted job to completion — none lost, none stuck — and
// leave the in-flight gauge at zero.
func TestDrainUnderConcurrentLoad(t *testing.T) {
	gate := armGate()
	srv, client, _ := newTestService(t, service.Config{Workers: 4, QueueDepth: 512})
	ctx := context.Background()

	const n = 250
	req := paperRequest(t)
	req.Algo = "testgate"

	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := client.Submit(ctx, req)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		close(gate)
		t.FailNow()
	}

	m, err := client.Metrics(ctx)
	if err != nil {
		close(gate)
		t.Fatal(err)
	}
	if m["jobs_in_flight"] != n {
		t.Errorf("jobs_in_flight = %d, want %d (all accepted jobs parked behind the gate)", m["jobs_in_flight"], n)
	}

	// Drain with the backlog still blocked: the intake must close first,
	// then the released backlog must run to completion.
	drainErr := make(chan error, 1)
	go func() {
		drainCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
		defer cancel()
		drainErr <- srv.Drain(drainCtx)
	}()

	// New work is refused while the backlog drains.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := client.Submit(ctx, req); err != nil {
			wantAPIError(t, err, 503, service.CodeShuttingDown)
			break
		}
		// Submit raced ahead of beginDrain; the extra job is accepted and
		// will drain with the rest.
		if time.Now().After(deadline) {
			t.Fatal("submissions kept being accepted after Drain started")
		}
		time.Sleep(time.Millisecond)
	}

	close(gate)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}

	for _, id := range ids {
		v, err := client.Job(ctx, id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if v.Status != service.JobDone {
			t.Errorf("job %s: status %q after drain (error: %v)", id, v.Status, v.Error)
		}
		if v.Result == nil || v.Result.Makespan <= 0 {
			t.Errorf("job %s: missing result after drain", id)
		}
	}
	m, err = client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["jobs_in_flight"] != 0 {
		t.Errorf("jobs_in_flight = %d after drain, want 0", m["jobs_in_flight"])
	}
	if m["jobs_completed"] < n {
		t.Errorf("jobs_completed = %d, want >= %d", m["jobs_completed"], n)
	}
}

// TestQueueFullBackpressure: a pool with a tiny queue and a blocked
// worker must refuse the overflow with 503 "queue_full" instead of
// blocking the intake or dropping jobs silently.
func TestQueueFullBackpressure(t *testing.T) {
	gate := armGate()
	defer close(gate)
	_, client, _ := newTestService(t, service.Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()

	req := paperRequest(t)
	req.Algo = "testgate"

	// Fill the pool: 1 running + 1 queued in the overflow + up to
	// shardBuf in the worker's shard. Submit until the service pushes
	// back, with a hard cap so a regression fails instead of hanging.
	sawFull := false
	for i := 0; i < 64; i++ {
		if _, err := client.Submit(ctx, req); err != nil {
			wantAPIError(t, err, 503, service.CodeQueueFull)
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("queue never reported queue_full")
	}
}
