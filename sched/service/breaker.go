package service

import (
	"sync"
	"time"
)

// breakerState is a circuit breaker's position.
type breakerState int

const (
	breakerClosed   breakerState = iota // normal operation
	breakerOpen                         // tripping: traffic refused until cooldown
	breakerHalfOpen                     // cooldown elapsed: one probe in flight
)

// breaker is a per-peer circuit breaker guarding forwarded traffic.
// Closed it counts consecutive failures; at threshold it opens and
// refuses attempts outright, so a dead peer costs one bounded error
// per cooldown instead of a connect timeout per request. After the
// cooldown one probe request is let through (half-open): success
// closes the breaker, failure re-opens it for another cooldown.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether an attempt may proceed now. In the half-open
// state only a single probe is admitted at a time; everything else is
// refused until the probe reports back.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a completed attempt, closing the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records a failed attempt, reporting whether this one tripped
// the breaker open (for the breaker_open_total counter): a closed
// breaker reaching its threshold, or a half-open probe failing.
func (b *breaker) failure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures < b.threshold {
			return false
		}
		b.state = breakerOpen
		b.openedAt = now
		return true
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		return true
	default: // already open (a late failure from before the trip)
		return false
	}
}
