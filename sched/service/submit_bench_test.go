package service_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/sched/gen"
	_ "repro/sched/register"
	"repro/sched/service"
	"repro/sched/system"
)

// benchServer starts an in-process service with one worker and returns a
// client plus the wire documents for a small generated problem — the
// wire-bound regime where admission overhead, not scheduling compute,
// decides throughput.
func benchServer(b *testing.B) (*service.Client, []byte, []byte) {
	b.Helper()
	srv := service.New(service.Config{Workers: 1, QueueDepth: 1 << 16})
	ts := httptest.NewServer(srv)
	b.Cleanup(func() {
		ts.Close()
		srv.Drain(context.Background()) //nolint:errcheck
	})
	rng := rand.New(rand.NewSource(1))
	kind, _ := gen.KindByName("random")
	g, err := gen.Generate(gen.Spec{Kind: kind, Size: 10, Granularity: 1}, rng)
	if err != nil {
		b.Fatal(err)
	}
	tk, _ := gen.TopoKindByName("ring")
	nw, err := gen.Topology(gen.TopoSpec{Kind: tk, Procs: 8}, rng)
	if err != nil {
		b.Fatal(err)
	}
	sys := system.NewUniform(nw, g.NumTasks(), g.NumEdges())
	gdoc, err := g.MarshalJSON()
	if err != nil {
		b.Fatal(err)
	}
	sdoc, err := sys.MarshalJSON()
	if err != nil {
		b.Fatal(err)
	}
	return service.NewClient(ts.URL, nil), gdoc, sdoc
}

// BenchmarkSubmitSingle measures the full per-job cost of one-at-a-time
// asynchronous submission: HTTP round trip, parse, compile, persist,
// enqueue, run. The single/batch pair is the wire-amortization story
// BENCH_schedd.json tracks (cmd/schedload -compare).
func BenchmarkSubmitSingle(b *testing.B) {
	client, gdoc, sdoc := benchServer(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Submit(ctx, service.ScheduleRequest{
			Graph: gdoc, System: sdoc, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmitBatch measures the same jobs admitted in batches of 64;
// ns/op stays per job for direct comparison with BenchmarkSubmitSingle.
func BenchmarkSubmitBatch(b *testing.B) {
	const size = 64
	client, gdoc, sdoc := benchServer(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for submitted := 0; submitted < b.N; submitted += size {
		req := service.BatchRequest{Graph: gdoc, System: sdoc}
		n := min(size, b.N-submitted)
		for k := 0; k < n; k++ {
			req.Jobs = append(req.Jobs, service.ScheduleRequest{Seed: int64(submitted + k)})
		}
		resp, err := client.SubmitBatch(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		for _, item := range resp.Jobs {
			if item.Error != nil {
				b.Fatalf("batch item: %v", item.Error)
			}
		}
	}
}
