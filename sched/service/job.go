package service

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/sched"
)

// job is one unit of scheduling work: a compiled run closure plus its
// lifecycle state. Handlers compile requests into jobs (so every
// validation error surfaces before queueing), the pool runs them, the
// jobTable keeps them addressable until their TTL expires, and the
// server's Store mirrors the persistent Record of every asynchronous
// job.
type job struct {
	// rec carries the job's persistent fields — ID, status, outcome, the
	// original request document and reschedule lineage. Guarded by mu.
	rec *Record

	// run executes the work — a cold scheduler call or a warm-started
	// reschedule — under the job's context.
	run func(context.Context) (*sched.Result, error)

	// ctx bounds the run (queue wait included); cancel releases its
	// timer once the job reaches a terminal state.
	ctx    context.Context
	cancel context.CancelFunc

	// persist marks the job as store-backed: accepted asynchronously and
	// mirrored into the server's Store. Synchronous jobs never are —
	// their IDs are not disclosed, so nothing can look them up later.
	persist bool

	// sink, when set on a non-persisted job, receives the terminal
	// Record instead of the server's Store — adopted foreign jobs route
	// their outcome into the replica side-store this way.
	sink func(*Record)

	mu sync.Mutex
	// version counts status transitions, starting at 1 for the queued
	// view. SSE events carry it as their event ID, so a reconnecting
	// client resumes with Last-Event-ID and skips views it already saw.
	version int
	// res retains the library result of a done job so a follow-up
	// reschedule can warm-start from its schedule without recomputing
	// the lineage. Evicted with the job.
	res *sched.Result
	// changed closes on every status transition and is immediately
	// replaced — SSE streams select on it to wake exactly when the view
	// they last rendered went stale.
	changed chan struct{}

	// done closes when the job reaches a terminal state; the sync
	// handler and Client.Wait-backed tests select on it.
	done chan struct{}
}

// view snapshots the job's wire form.
func (j *job) view() *JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return viewOfRecord(j.rec)
}

// snapshot returns the wire view, its version and a channel that
// signals the first status transition after it — the SSE streaming
// primitive.
func (j *job) snapshot() (*JobView, int, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return viewOfRecord(j.rec), j.version, j.changed
}

// record snapshots the persistent form. The Result, Error and raw
// document fields are immutable once set, so the shallow copy is safe
// to hand to a Store.
func (j *job) record() *Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.clone()
}

// signal wakes every snapshot waiter. Callers hold mu.
func (j *job) signal() {
	j.version++
	close(j.changed)
	j.changed = make(chan struct{})
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.rec.Status = JobRunning
	j.signal()
	j.mu.Unlock()
}

// finish moves the job to its terminal state and returns the Record
// snapshot the caller persists.
func (j *job) finish(now time.Time, res *sched.Result, resp *ScheduleResponse, errBody *ErrorBody) *Record {
	j.mu.Lock()
	if errBody != nil {
		j.rec.Status = JobFailed
		j.rec.Error = errBody
	} else {
		j.rec.Status = JobDone
		j.rec.Result = resp
		j.res = res
	}
	j.rec.DoneAt = now
	rc := j.rec.clone()
	j.signal()
	j.mu.Unlock()
	j.cancel()
	close(j.done)
	return rc
}

// doneResult returns the retained library result once the job is done.
func (j *job) doneResult() (*sched.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rec.Status != JobDone || j.res == nil {
		return nil, false
	}
	return j.res, true
}

// terminalSince returns the terminal-transition time, or false while the
// job is still queued or running.
func (j *job) terminalSince() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.DoneAt, j.rec.Status.Terminal()
}

// jobTable is the in-memory runtime table: every job submitted (or
// replayed) in this process, TTL-evicted once terminal. It is the live
// complement of the Store — jobs here carry contexts, run closures and
// watcher channels that no persistent record can.
type jobTable struct {
	mu     sync.Mutex
	jobs   map[string]*job
	seq    atomic.Uint64
	prefix string
}

func newJobTable(prefix string) *jobTable {
	return &jobTable{jobs: make(map[string]*job), prefix: prefix}
}

// nextID returns a process-unique job ID, prefixed with the replica's
// node token when clustered ("3a5f9c21.j17") so any replica can route a
// job reference back to its owner.
func (t *jobTable) nextID() string {
	return t.prefix + "j" + strconv.FormatUint(t.seq.Add(1), 10)
}

// bump raises the ID sequence to at least n — store replay calls it so
// re-admitted jobs keep their original IDs without colliding with the
// ones this boot will assign.
func (t *jobTable) bump(n uint64) {
	for {
		cur := t.seq.Load()
		if cur >= n || t.seq.CompareAndSwap(cur, n) {
			return
		}
	}
}

// idSeq extracts the numeric sequence from a job ID ("j17" or
// "token.j17" → 17), 0 when the ID has another shape.
func idSeq(id string) uint64 {
	if i := strings.LastIndexByte(id, '.'); i >= 0 {
		id = id[i+1:]
	}
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func (t *jobTable) put(j *job) {
	t.mu.Lock()
	t.jobs[j.rec.ID] = j
	t.mu.Unlock()
}

func (t *jobTable) delete(id string) {
	t.mu.Lock()
	delete(t.jobs, id)
	t.mu.Unlock()
}

// get returns the job, lazily evicting it when its TTL has passed.
func (t *jobTable) get(id string, now time.Time, ttl time.Duration) (*job, bool) {
	t.mu.Lock()
	j, ok := t.jobs[id]
	t.mu.Unlock()
	if !ok {
		return nil, false
	}
	if doneAt, terminal := j.terminalSince(); terminal && ttl > 0 && now.Sub(doneAt) >= ttl {
		t.mu.Lock()
		delete(t.jobs, id)
		t.mu.Unlock()
		return nil, false
	}
	return j, true
}

// sweep evicts every terminal job older than ttl and returns how many it
// removed.
func (t *jobTable) sweep(now time.Time, ttl time.Duration) int {
	if ttl <= 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, j := range t.jobs {
		if doneAt, terminal := j.terminalSince(); terminal && now.Sub(doneAt) >= ttl {
			delete(t.jobs, id)
			n++
		}
	}
	return n
}

// size returns the number of live runtime jobs (any state).
func (t *jobTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}
