// Package service turns the repro/sched library into a long-running
// scheduling service: an HTTP API that accepts problems in the public
// JSON interchange formats, schedules them on a bounded worker pool with
// any registered algorithm, persists accepted jobs through a pluggable
// Store, and scales past one process as a consistent-hash replica tier.
//
// The package consumes only the public repro/sched surface (sched,
// sched/graph, sched/system) — it is written as the external consumer it
// serves. Algorithms arrive through the sched registry: blank-import
// repro/sched/register for the built-ins, or sched.Register your own;
// every registered name is schedulable per request.
//
// # Wire API
//
//	POST /v1/schedule                schedule synchronously; body is a
//	                                 ScheduleRequest, response a ScheduleResponse
//	POST /v1/jobs                    submit asynchronously; 202 + JobView.
//	                                 An IdempotencyKey deduplicates: resubmitting
//	                                 an accepted key returns the original job
//	                                 with 200 instead of scheduling again
//	POST /v1/batch                   many submissions in one request; top-level
//	                                 graph/system/topology/het act as per-job
//	                                 defaults and identical documents compile
//	                                 once; 202 + BatchResponse with independent
//	                                 per-job outcomes
//	GET  /v1/jobs/{id}               poll a job until its Status is terminal
//	GET  /v1/jobs/{id}/events        SSE stream ("event: status", data: JobView
//	                                 JSON) of status transitions until terminal —
//	                                 the push alternative to polling
//	POST /v1/jobs/{id}/reschedule    quasi-dynamic delta on a done job
//	GET  /v1/algos                   the registry's algorithms
//	GET  /v1/cluster                 replica membership with live health probes
//	GET  /healthz                    liveness (503 "draining" during shutdown)
//	GET  /metrics                    expvar counters (below)
//
// Errors are typed: every non-2xx body is {"error":{"code","message"}}
// with a stable code (CodeBadRequest, CodeUnknownAlgorithm,
// CodeDeadlineExceeded, CodeBodyTooLarge, CodeUpstreamUnavailable, ...).
// Per-request deadlines (TimeoutMS) map to context cancellation inside
// the algorithms' own loops, so a timed-out run stops computing instead
// of merely not being reported.
//
// # Persistence
//
// Every asynchronous job is written through the configured Store: Put on
// accept, Finish on the terminal transition, Evict/Sweep on TTL expiry.
// The default MemStore keeps records for the process lifetime; OpenWAL
// returns a disk-backed store (append-only JSON-lines log plus snapshot
// compaction) that survives restarts. On construction the server replays
// the store: terminal records become servable again and usable as
// reschedule sources, pending records — jobs a previous process accepted
// but never finished — are recompiled from their stored recipe and
// re-enqueued under their original IDs. Because every registered
// scheduler is deterministic, the replayed run produces byte-identical
// schedule documents to what the interrupted run would have; reschedule
// lineage is recomputed recursively the same way. Synchronous jobs are
// never persisted (their IDs are not disclosed).
//
// # Clustering
//
// Config.Self plus Config.Peers put the server in cluster mode: all
// members (every replica is configured with the same total set) are
// arranged on a consistent-hash ring with 64 virtual points each. Keyed
// submissions hash by idempotency key to an owner; job IDs embed their
// owner's node token ("3aa01f2c.j17"), so status, events, and reschedule
// requests that land on the wrong replica are forwarded transparently.
// Clients can talk to any member. A forwarded request is served where it
// lands (one hop, loop-proof); an unreachable owner yields 502
// "upstream_unavailable".
//
// # Fault tolerance
//
// With Config.Replicas > 1 the tier survives losing a member outright.
// On accept, the owner synchronously streams the job's persistence
// record — wire documents, idempotency key, reschedule lineage — to its
// Replicas-1 ring successors before the 202 goes out, so every accepted
// job exists on more than one node. A background failure detector
// probes every peer each ProbeInterval; ProbeMisses consecutive misses
// walk the peer alive → suspect → dead (GET /v1/cluster reports the
// state per node). Once an owner is dead, routing sends its references
// to the first live successor, which adopts the replicated pending
// jobs — re-running them from the recipe, byte-identical because every
// scheduler is deterministic — and serves reads for the replicated
// terminal ones. When the owner returns, probes mark it alive again and
// the successors push the terminal records back; idempotency keys and
// first-terminal-wins precedence make reconciliation convergent, never
// a duplicate execution.
//
// Forwarded traffic is guarded by per-peer circuit breakers
// (BreakerThreshold consecutive failures open the circuit; after
// BreakerCooldown a single half-open probe may close it) and bounded by
// ForwardTimeout, so a dead peer sheds load instead of absorbing it.
// Every 503 carries a Retry-After header. Client.WithRetry returns a
// client that retries idempotent requests — GETs and idempotency-keyed
// submissions — on transport errors and 502/503 with exponential
// backoff, full jitter, and the server's Retry-After as the floor;
// Client.Watch reconnects cut SSE streams through the Last-Event-ID
// header without re-delivering views.
//
// The failure modes, what a client observes, and the counter that
// proves each one:
//
//	fault                    client sees                       metric
//	owner dead, replicated   job completes via successor       failovers_total, adopted_jobs_total
//	owner dead, Replicas=1   502 upstream_unavailable          forward_errors_total
//	peer unreachable         502 after breaker opens, instant  breaker_open_total, breaker_short_circuits_total
//	store write fails        503 store_unavailable, no ack     store_errors_total
//	queue full / draining    503 + Retry-After                 jobs_rejected
//	probe misses             /v1/cluster state suspect/dead    probe_failures_total
//	owner returns            keys answer original IDs          reconciles_total
//
// ChaosTransport (an http.RoundTripper) and FaultyStore (a Store
// wrapper) inject seeded, deterministic faults — latency, drops,
// resets, synthesized 503s, write failures — and power the chaos suite
// in tests/ (make chaos-test).
//
// # Metrics
//
// GET /metrics renders the per-server expvar counters:
//
//	jobs_accepted            requests admitted to the queue (sync + async)
//	jobs_in_flight           accepted, not yet terminal
//	jobs_completed           terminal: done
//	jobs_failed              terminal: failed (incl. deadline)
//	jobs_rejected            refused before queueing (4xx/503)
//	cache_hits_total         BSA sweep-cache full hits, summed over runs
//	cache_partials_total     BSA sweep-cache partial hits
//	cache_misses_total       BSA sweep-cache misses
//	evaluations_total        candidate evaluations, all algorithms
//	reschedules_total        accepted reschedule jobs
//	delta_remove_procs_total delta operations by kind, summed over
//	delta_remove_links_total accepted deltas
//	delta_exec_factors_total
//	delta_comm_factors_total
//	delta_add_tasks_total
//	delta_add_edges_total
//	store_replays_total      pending jobs re-enqueued from the store on boot
//	store_errors_total       store writes that failed
//	forwards_total           requests relayed to their owning replica
//	idempotent_hits_total    keyed submissions answered with an existing job
//	batches_total            batch requests accepted for processing
//	batch_jobs_total         jobs carried inside those batches
//	batch_size_le_1          cumulative batch-size histogram: batches with
//	batch_size_le_4          size <= the bucket bound (le_inf counts all,
//	batch_size_le_16         so bucket differences give the distribution)
//	batch_size_le_64
//	batch_size_le_inf
//	probe_failures_total     failed health probes (detector + /v1/cluster)
//	failovers_total          dead-owner adoptions triggered on this node
//	adopted_jobs_total       replicated pending jobs re-run here
//	replicated_jobs_total    records successfully streamed to successors
//	replication_errors_total replication sends that failed
//	reconciles_total         records reconciled back into this owner
//	breaker_open_total       circuit breakers tripped open
//	breaker_short_circuits_total forwards refused by an open breaker
//	forward_errors_total     forward attempts that reached the wire and failed
//
// Server is the embeddable core; cmd/schedd wraps it with flags, WAL and
// cluster wiring, SIGTERM draining and a listener; cmd/schedctl drives
// it from the command line through Client; cmd/schedload load-tests it.
package service
