// Package service turns the repro/sched library into a long-running
// scheduling service: an HTTP API that accepts problems in the public
// JSON interchange formats, schedules them on a bounded worker pool with
// any registered algorithm, and returns complete verified schedules.
//
// The package consumes only the public repro/sched surface (sched,
// sched/graph, sched/system) — it is written as the external consumer it
// serves. Algorithms arrive through the sched registry: blank-import
// repro/sched/register for the built-ins, or sched.Register your own;
// every registered name is schedulable per request.
//
// # Wire API
//
//	POST /v1/schedule     schedule synchronously; body is a ScheduleRequest,
//	                      response a ScheduleResponse
//	POST /v1/jobs         submit asynchronously; 202 + JobView
//	GET  /v1/jobs/{id}    poll a job until its Status is terminal
//	GET  /v1/algos        the registry's algorithms
//	GET  /healthz         liveness (503 "draining" during shutdown)
//	GET  /metrics         expvar counters: jobs in flight / completed /
//	                      failed, BSA candidate-cache totals
//
// Errors are typed: every non-2xx body is {"error":{"code","message"}}
// with a stable code (CodeBadRequest, CodeUnknownAlgorithm,
// CodeDeadlineExceeded, CodeBodyTooLarge, ...). Per-request deadlines
// (TimeoutMS) map to context cancellation inside the algorithms' own
// loops, so a timed-out run stops computing instead of merely not being
// reported.
//
// Server is the embeddable core; cmd/schedd wraps it with flags, SIGTERM
// draining and a listener, and cmd/schedctl drives it from the command
// line through Client.
package service
