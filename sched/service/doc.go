// Package service turns the repro/sched library into a long-running
// scheduling service: an HTTP API that accepts problems in the public
// JSON interchange formats, schedules them on a bounded worker pool with
// any registered algorithm, persists accepted jobs through a pluggable
// Store, and scales past one process as a consistent-hash replica tier.
//
// The package consumes only the public repro/sched surface (sched,
// sched/graph, sched/system) — it is written as the external consumer it
// serves. Algorithms arrive through the sched registry: blank-import
// repro/sched/register for the built-ins, or sched.Register your own;
// every registered name is schedulable per request.
//
// # Wire API
//
//	POST /v1/schedule                schedule synchronously; body is a
//	                                 ScheduleRequest, response a ScheduleResponse
//	POST /v1/jobs                    submit asynchronously; 202 + JobView.
//	                                 An IdempotencyKey deduplicates: resubmitting
//	                                 an accepted key returns the original job
//	                                 with 200 instead of scheduling again
//	POST /v1/batch                   many submissions in one request; top-level
//	                                 graph/system/topology/het act as per-job
//	                                 defaults and identical documents compile
//	                                 once; 202 + BatchResponse with independent
//	                                 per-job outcomes
//	GET  /v1/jobs/{id}               poll a job until its Status is terminal
//	GET  /v1/jobs/{id}/events        SSE stream ("event: status", data: JobView
//	                                 JSON) of status transitions until terminal —
//	                                 the push alternative to polling
//	POST /v1/jobs/{id}/reschedule    quasi-dynamic delta on a done job
//	GET  /v1/algos                   the registry's algorithms
//	GET  /v1/cluster                 replica membership with live health probes
//	GET  /healthz                    liveness (503 "draining" during shutdown)
//	GET  /metrics                    expvar counters (below)
//
// Errors are typed: every non-2xx body is {"error":{"code","message"}}
// with a stable code (CodeBadRequest, CodeUnknownAlgorithm,
// CodeDeadlineExceeded, CodeBodyTooLarge, CodeUpstreamUnavailable, ...).
// Per-request deadlines (TimeoutMS) map to context cancellation inside
// the algorithms' own loops, so a timed-out run stops computing instead
// of merely not being reported.
//
// # Persistence
//
// Every asynchronous job is written through the configured Store: Put on
// accept, Finish on the terminal transition, Evict/Sweep on TTL expiry.
// The default MemStore keeps records for the process lifetime; OpenWAL
// returns a disk-backed store (append-only JSON-lines log plus snapshot
// compaction) that survives restarts. On construction the server replays
// the store: terminal records become servable again and usable as
// reschedule sources, pending records — jobs a previous process accepted
// but never finished — are recompiled from their stored recipe and
// re-enqueued under their original IDs. Because every registered
// scheduler is deterministic, the replayed run produces byte-identical
// schedule documents to what the interrupted run would have; reschedule
// lineage is recomputed recursively the same way. Synchronous jobs are
// never persisted (their IDs are not disclosed).
//
// # Clustering
//
// Config.Self plus Config.Peers put the server in cluster mode: all
// members (every replica is configured with the same total set) are
// arranged on a consistent-hash ring with 64 virtual points each. Keyed
// submissions hash by idempotency key to an owner; job IDs embed their
// owner's node token ("3aa01f2c.j17"), so status, events, and reschedule
// requests that land on the wrong replica are forwarded transparently.
// Clients can talk to any member. A forwarded request is served where it
// lands (one hop, loop-proof); an unreachable owner yields 502
// "upstream_unavailable". Replicas share nothing — losing one loses only
// the jobs it owned (none, once it restarts on the same WAL directory).
//
// # Metrics
//
// GET /metrics renders the per-server expvar counters:
//
//	jobs_accepted            requests admitted to the queue (sync + async)
//	jobs_in_flight           accepted, not yet terminal
//	jobs_completed           terminal: done
//	jobs_failed              terminal: failed (incl. deadline)
//	jobs_rejected            refused before queueing (4xx/503)
//	cache_hits_total         BSA sweep-cache full hits, summed over runs
//	cache_partials_total     BSA sweep-cache partial hits
//	cache_misses_total       BSA sweep-cache misses
//	evaluations_total        candidate evaluations, all algorithms
//	reschedules_total        accepted reschedule jobs
//	delta_remove_procs_total delta operations by kind, summed over
//	delta_remove_links_total accepted deltas
//	delta_exec_factors_total
//	delta_comm_factors_total
//	delta_add_tasks_total
//	delta_add_edges_total
//	store_replays_total      pending jobs re-enqueued from the store on boot
//	store_errors_total       store writes that failed
//	forwards_total           requests relayed to their owning replica
//	idempotent_hits_total    keyed submissions answered with an existing job
//	batches_total            batch requests accepted for processing
//	batch_jobs_total         jobs carried inside those batches
//	batch_size_le_1          cumulative batch-size histogram: batches with
//	batch_size_le_4          size <= the bucket bound (le_inf counts all,
//	batch_size_le_16         so bucket differences give the distribution)
//	batch_size_le_64
//	batch_size_le_inf
//
// Server is the embeddable core; cmd/schedd wraps it with flags, WAL and
// cluster wiring, SIGTERM draining and a listener; cmd/schedctl drives
// it from the command line through Client; cmd/schedload load-tests it.
package service
