package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/sched"
)

// Config parameterizes a Server. The zero value is production-usable:
// every field falls back to the documented default.
type Config struct {
	// DefaultAlgo is the algorithm used when a request names none.
	// Default "bsa".
	DefaultAlgo string
	// Workers bounds concurrent scheduling runs. Default GOMAXPROCS.
	Workers int
	// QueueDepth is the shared overflow capacity — together with the
	// per-worker shards it bounds accepted-but-unfinished jobs. Requests
	// beyond it are rejected with 503 "queue_full". Default 512.
	QueueDepth int
	// MaxBodyBytes caps request bodies; larger ones get 413
	// "body_too_large". Default 8 MiB.
	MaxBodyBytes int64
	// JobTTL is how long a finished job stays retrievable through
	// GET /v1/jobs/{id}. Default 15 minutes.
	JobTTL time.Duration
	// Now overrides the clock (TTL tests). Default time.Now.
	Now func() time.Time
}

func (c *Config) fill() {
	if c.DefaultAlgo == "" {
		c.DefaultAlgo = "bsa"
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 512
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Server is the scheduling service: an http.Handler exposing the wire
// API plus the worker pool and job store behind it. It consumes only the
// public repro/sched surface — algorithms arrive through the registry, so
// a binary embedding Server schedules with whatever it blank-imports or
// registers itself.
//
//	POST /v1/schedule                synchronous scheduling (body: ScheduleRequest)
//	POST /v1/jobs                    asynchronous submit, 202 + JobView
//	GET  /v1/jobs/{id}               job status / result
//	POST /v1/jobs/{id}/reschedule    quasi-dynamic delta on a done job, 202 + JobView
//	GET  /v1/algos                   registered algorithms
//	GET  /healthz                    liveness ("ok", or "draining" + 503)
//	GET  /metrics                    expvar counter document
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	pool     *pool
	store    *store
	metrics  *metrics
	draining atomic.Bool

	janitorStop chan struct{}
	janitorOnce sync.Once
}

// New builds a Server and starts its worker pool and TTL janitor. Call
// Drain to shut it down.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		store:       newStore(),
		metrics:     newMetrics(),
		janitorStop: make(chan struct{}),
	}
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.runJob)
	s.mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /v1/jobs/{id}/reschedule", s.handleReschedule)
	s.mux.HandleFunc("GET /v1/algos", s.handleAlgos)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	go s.janitor()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes Server itself an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Vars exposes the counter map so an embedding binary can publish it in
// the process-global expvar namespace (cmd/schedd does, as "schedd").
func (s *Server) Vars() *expvar.Map { return s.metrics.vars }

// Jobs returns the number of jobs currently in the store (any state).
func (s *Server) Jobs() int { return s.store.size() }

// Drain gracefully shuts the service down: the intake closes (new
// submissions get 503 "shutting_down", /healthz turns "draining") and
// Drain blocks until every accepted job has reached a terminal state or
// ctx expires. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	// Stop the janitor on every exit path — an interrupted drain must not
	// leak its goroutine and ticker for the rest of the process.
	defer s.janitorOnce.Do(func() { close(s.janitorStop) })
	s.pool.beginDrain()
	done := make(chan struct{})
	go func() {
		s.pool.wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted with jobs still running: %w", ctx.Err())
	}
}

// janitor periodically evicts expired terminal jobs.
func (s *Server) janitor() {
	period := s.cfg.JobTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.store.sweep(s.cfg.Now(), s.cfg.JobTTL)
		case <-s.janitorStop:
			return
		}
	}
}

// newJob compiles a request into a stored, queueable job. base is the
// context the run hangs off: the request context for synchronous calls,
// the background context for asynchronous jobs (they outlive the submit
// request). A TimeoutMS deadline starts here — it covers queue wait.
func (s *Server) newJob(base context.Context, req *ScheduleRequest) (*job, *ErrorBody) {
	p, scheduler, errBody := req.compile(s.cfg.DefaultAlgo)
	if errBody != nil {
		return nil, errBody
	}
	opts := []sched.Option{sched.WithSeed(req.Seed), sched.WithWorkers(1)}
	return s.buildJob(base, scheduler.Name(), req.TimeoutMS, func(ctx context.Context) (*sched.Result, error) {
		return scheduler.Schedule(ctx, p, opts...)
	}), nil
}

// newRescheduleJob compiles a reschedule request against a finished
// source job into a queueable warm-start job. The delta is parsed and
// resolved against the source schedule's problem up front, so every
// validation error still surfaces as a typed 4xx before queueing.
func (s *Server) newRescheduleJob(base context.Context, prev *sched.Result, req *RescheduleRequest) (*job, *ErrorBody) {
	if len(req.Delta) == 0 || string(req.Delta) == "null" {
		return nil, &ErrorBody{Code: CodeBadRequest, Message: "missing delta document"}
	}
	delta, err := sched.DeltaFromJSON(req.Delta)
	if err != nil {
		return nil, &ErrorBody{Code: CodeBadRequest, Message: err.Error(), Detail: validationDetail(err)}
	}
	p := sched.Problem{Graph: prev.Schedule.Graph(), System: prev.Schedule.System()}
	if _, err := delta.Apply(p); err != nil {
		return nil, &ErrorBody{Code: CodeBadRequest, Message: err.Error(), Detail: validationDetail(err)}
	}
	s.metrics.observeDelta(delta)
	seed := req.Seed
	return s.buildJob(base, "bsa", req.TimeoutMS, func(ctx context.Context) (*sched.Result, error) {
		return sched.Reschedule(ctx, *prev, delta, sched.WithSeed(seed))
	}), nil
}

// buildJob wraps a run closure in job lifecycle state.
func (s *Server) buildJob(base context.Context, algo string, timeoutMS int64, run func(context.Context) (*sched.Result, error)) *job {
	ctx, cancel := base, context.CancelFunc(func() {})
	if timeoutMS > 0 {
		ctx, cancel = context.WithTimeout(base, time.Duration(timeoutMS)*time.Millisecond)
	}
	return &job{
		id:     s.store.nextID(),
		algo:   algo,
		run:    run,
		ctx:    ctx,
		cancel: cancel,
		status: JobQueued,
		done:   make(chan struct{}),
	}
}

// enqueue stores and submits a compiled job, updating the counters. The
// accepted/in-flight counters move BEFORE the job becomes runnable: a
// worker can finish it (decrementing in-flight) the instant submit
// succeeds, and counting afterwards would let a /metrics scrape observe
// jobs_in_flight at -1 or jobs_completed ahead of jobs_accepted.
func (s *Server) enqueue(j *job) *ErrorBody {
	s.store.put(j)
	s.metrics.JobsAccepted.Add(1)
	s.metrics.JobsInFlight.Add(1)
	if err := s.pool.submit(j); err != nil {
		// Remove the stillborn job so it cannot be polled forever.
		s.metrics.JobsAccepted.Add(-1)
		s.metrics.JobsInFlight.Add(-1)
		s.store.delete(j.id)
		j.cancel()
		s.metrics.JobsRejected.Add(1)
		if errors.Is(err, errDraining) {
			return &ErrorBody{Code: CodeShuttingDown, Message: "server is draining"}
		}
		return &ErrorBody{Code: CodeQueueFull, Message: "job queue is full, retry later"}
	}
	return nil
}

// runJob executes one job on a pool worker and records its outcome. The
// worker must survive anything the run does: a panicking or nil-result
// scheduler becomes the job's typed terminal error, never a dead worker
// goroutine (which would take the whole process down) or a nil
// dereference while rendering the response.
func (s *Server) runJob(j *job) {
	var (
		res     *sched.Result
		resp    *ScheduleResponse
		errBody *ErrorBody
	)
	if err := j.ctx.Err(); err != nil {
		// Deadline spent entirely in the queue.
		errBody = ctxErrorBody(err)
	} else {
		j.setRunning()
		var err error
		res, err = runGuarded(j)
		switch {
		case err == nil && (res == nil || res.Schedule == nil):
			errBody = &ErrorBody{Code: CodeScheduleFailed, Message: "scheduler returned no schedule"}
		case err == nil:
			s.metrics.observe(res)
			if resp, err = response(res); err != nil {
				errBody = &ErrorBody{Code: CodeScheduleFailed, Message: err.Error()}
			}
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			errBody = ctxErrorBody(err)
		default:
			errBody = &ErrorBody{Code: CodeScheduleFailed, Message: err.Error(), Detail: validationDetail(err)}
		}
	}
	if errBody != nil {
		res = nil
		s.metrics.JobsFailed.Add(1)
	} else {
		s.metrics.JobsCompleted.Add(1)
	}
	s.metrics.JobsInFlight.Add(-1)
	j.finish(s.cfg.Now(), res, resp, errBody)
}

// runGuarded invokes the job's run closure, converting a panic into an
// ordinary error.
func runGuarded(j *job) (res *sched.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("scheduler panicked: %v", r)
		}
	}()
	return j.run(j.ctx)
}

// ctxErrorBody maps a context error to the wire error body. Cancellation
// (a synchronous caller that went away) reports the same code as an
// expired deadline: from the job's perspective both are "the time the
// caller allotted ran out".
func ctxErrorBody(err error) *ErrorBody {
	return &ErrorBody{Code: CodeDeadlineExceeded, Message: err.Error()}
}

// ---- handlers ----

// decode parses the JSON body under the body-size cap.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, req any) *ErrorBody {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &ErrorBody{Code: CodeBodyTooLarge, Message: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)}
		}
		return &ErrorBody{Code: CodeBadRequest, Message: fmt.Sprintf("decode request: %v", err)}
	}
	return nil
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if errBody := s.decode(w, r, &req); errBody != nil {
		s.metrics.JobsRejected.Add(1)
		writeError(w, errBody)
		return
	}
	j, errBody := s.newJob(r.Context(), &req)
	if errBody != nil {
		s.metrics.JobsRejected.Add(1)
		writeError(w, errBody)
		return
	}
	if errBody := s.enqueue(j); errBody != nil {
		writeError(w, errBody)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The worker observes the same context and finishes the job as
		// failed; wait for it so the handler never abandons a live run.
		<-j.done
	}
	// A synchronous job's ID is never disclosed, so nobody can poll it:
	// drop it now instead of letting every sync response's schedule
	// document sit in the store for a full JobTTL.
	s.store.delete(j.id)
	v := j.view()
	if v.Error != nil {
		writeError(w, v.Error)
		return
	}
	writeJSON(w, http.StatusOK, v.Result)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if errBody := s.decode(w, r, &req); errBody != nil {
		s.metrics.JobsRejected.Add(1)
		writeError(w, errBody)
		return
	}
	j, errBody := s.newJob(context.Background(), &req)
	if errBody != nil {
		s.metrics.JobsRejected.Add(1)
		writeError(w, errBody)
		return
	}
	if errBody := s.enqueue(j); errBody != nil {
		writeError(w, errBody)
		return
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

// handleReschedule accepts a quasi-dynamic delta against a finished
// job's schedule and queues the warm-started reconvergence as a fresh
// asynchronous job. The response is the same 202 + JobView shape as
// POST /v1/jobs; the resulting schedule document is byte-identical to
// what sched.Reschedule produces for the same inputs.
func (s *Server) handleReschedule(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	src, ok := s.store.get(id, s.cfg.Now(), s.cfg.JobTTL)
	if !ok {
		s.metrics.JobsRejected.Add(1)
		writeError(w, &ErrorBody{Code: CodeNotFound, Message: fmt.Sprintf("no job %q (unknown, or expired after %v)", id, s.cfg.JobTTL)})
		return
	}
	var req RescheduleRequest
	if errBody := s.decode(w, r, &req); errBody != nil {
		s.metrics.JobsRejected.Add(1)
		writeError(w, errBody)
		return
	}
	prev, done := src.doneResult()
	if !done {
		s.metrics.JobsRejected.Add(1)
		writeError(w, &ErrorBody{Code: CodeJobNotDone, Message: fmt.Sprintf("job %q has no completed schedule to reschedule from", id)})
		return
	}
	j, errBody := s.newRescheduleJob(context.Background(), prev, &req)
	if errBody != nil {
		s.metrics.JobsRejected.Add(1)
		writeError(w, errBody)
		return
	}
	if errBody := s.enqueue(j); errBody != nil {
		writeError(w, errBody)
		return
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.store.get(id, s.cfg.Now(), s.cfg.JobTTL)
	if !ok {
		writeError(w, &ErrorBody{Code: CodeNotFound, Message: fmt.Sprintf("no job %q (unknown, or expired after %v)", id, s.cfg.JobTTL)})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleAlgos(w http.ResponseWriter, r *http.Request) {
	ds := sched.List()
	out := make([]AlgoInfo, 0, len(ds))
	for _, d := range ds {
		out = append(out, AlgoInfo{Name: d.Name, Aliases: d.Aliases, Description: d.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.metrics.vars.String())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

func writeError(w http.ResponseWriter, e *ErrorBody) {
	writeJSON(w, httpStatus(e.Code), errorEnvelope{Error: e})
}
