package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/sched"
)

// Config parameterizes a Server. The zero value is production-usable:
// every field falls back to the documented default.
type Config struct {
	// DefaultAlgo is the algorithm used when a request names none.
	// Default "bsa".
	DefaultAlgo string
	// Workers bounds concurrent scheduling runs. Default GOMAXPROCS.
	Workers int
	// QueueDepth is the shared overflow capacity — together with the
	// per-worker shards it bounds accepted-but-unfinished jobs. Requests
	// beyond it are rejected with 503 "queue_full". Default 512.
	QueueDepth int
	// MaxBodyBytes caps request bodies; larger ones get 413
	// "body_too_large". Default 8 MiB.
	MaxBodyBytes int64
	// JobTTL is how long a finished job stays retrievable through
	// GET /v1/jobs/{id}. Default 15 minutes.
	JobTTL time.Duration
	// Now overrides the clock (TTL tests). Default time.Now.
	Now func() time.Time

	// Store persists accepted asynchronous jobs. Nil means a fresh
	// in-memory store (records live as long as the process); OpenWAL
	// gives restart durability. New replays the store's contents on
	// construction: terminal records stay servable, pending ones are
	// recompiled and re-enqueued.
	Store Store
	// Self is this replica's advertised host:port — the address peers
	// reach it at. Setting it puts the server in cluster mode: job IDs
	// carry its node token ("3aa01f2c.j17") so any replica can route
	// them home. Empty means single-node.
	Self string
	// Peers are the other replicas' advertised host:port addresses.
	// Every replica must be configured with the same total member set
	// (its Self plus its Peers) — membership is configuration, not
	// gossip, so all replicas compute identical hash rings.
	Peers []string
	// HTTPClient issues forwarded requests and peer health probes in
	// cluster mode. Default http.DefaultClient.
	HTTPClient *http.Client

	// Replicas is how many copies of each accepted job's persistence
	// record the tier holds: the owner plus Replicas-1 ring successors.
	// 1 (the default) disables replication and failover entirely —
	// losing a replica loses access to its jobs, exactly the PR-7
	// behavior. Values above the member count are clamped to it.
	Replicas int
	// ProbeInterval is the failure detector's probe period (only
	// running when Replicas > 1). Default 1s.
	ProbeInterval time.Duration
	// ProbeTimeout caps one health probe — the detector's and the ones
	// GET /v1/cluster fans out. Default 1s.
	ProbeTimeout time.Duration
	// ProbeMisses is how many consecutive failed probes declare a peer
	// dead (alive → suspect → dead). Default 3.
	ProbeMisses int
	// BreakerThreshold is how many consecutive forward failures trip a
	// peer's circuit breaker open. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses traffic
	// before letting one probe request through. Default 2s.
	BreakerCooldown time.Duration
	// ForwardTimeout bounds one forwarded attempt (job lookups,
	// sub-batches, replication pushes). SSE relays are exempt — they
	// stream for as long as the client watches. Default 10s.
	ForwardTimeout time.Duration
}

func (c *Config) fill() {
	if c.DefaultAlgo == "" {
		c.DefaultAlgo = "bsa"
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 512
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Store == nil {
		c.Store = NewMemStore()
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.ProbeMisses < 1 {
		c.ProbeMisses = 3
	}
	if c.BreakerThreshold < 1 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 10 * time.Second
	}
}

// Validate reports configuration errors New would panic on: peers
// without an advertised self address, or node-token collisions in the
// member set.
func (c *Config) Validate() error {
	if len(c.Peers) > 0 && c.Self == "" {
		return fmt.Errorf("service: peers configured without a self address")
	}
	if c.Self != "" {
		if _, err := newCluster(c.Self, c.Peers, c.HTTPClient); err != nil {
			return err
		}
	}
	return nil
}

// Server is the scheduling service: an http.Handler exposing the wire
// API plus the worker pool, job store and (optionally) replica tier
// behind it. It consumes only the public repro/sched surface —
// algorithms arrive through the registry, so a binary embedding Server
// schedules with whatever it blank-imports or registers itself.
//
//	POST /v1/schedule                synchronous scheduling (body: ScheduleRequest)
//	POST /v1/jobs                    asynchronous submit, 202 + JobView (idempotency keys dedupe)
//	POST /v1/batch                   many submissions in one request, 202 + BatchResponse
//	GET  /v1/jobs/{id}               job status / result
//	GET  /v1/jobs/{id}/events        SSE status stream until terminal
//	POST /v1/jobs/{id}/reschedule    quasi-dynamic delta on a done job, 202 + JobView
//	GET  /v1/algos                   registered algorithms
//	GET  /v1/cluster                 replica membership and health
//	GET  /healthz                    liveness ("ok", or "draining" + 503)
//	GET  /metrics                    expvar counter document
//
// In cluster mode (Config.Self + Config.Peers) job ownership is
// consistent-hashed across replicas: keyed submissions and job lookups
// that land on the wrong replica are forwarded transparently to the
// owner, so clients can talk to any member.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	pool     *pool
	jobs     *jobTable
	rec      Store
	cluster  *cluster // nil when single-node
	metrics  *metrics
	draining atomic.Bool

	// detector and replicas implement the fault-tolerant tier; both are
	// nil unless clustered with Replicas > 1. replicas holds record
	// copies streamed by other owners, detector drives failover.
	detector *detector
	replicas *replicaSet

	// keyMu serializes keyed submissions so two concurrent submits under
	// one new idempotency key cannot both miss ByKey and double-accept.
	keyMu sync.Mutex

	janitorStop chan struct{}
	janitorOnce sync.Once
}

// New builds a Server, starts its worker pool and TTL janitor, and
// replays the configured store: terminal records become servable again,
// pending ones are recompiled and re-enqueued (counted in
// store_replays_total). It panics on an invalid Config — call
// Config.Validate first to get the error. Call Drain to shut down.
func New(cfg Config) *Server {
	cfg.fill()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	prefix := ""
	var cl *cluster
	if cfg.Self != "" {
		cl, _ = newCluster(cfg.Self, cfg.Peers, cfg.HTTPClient) // Validate already vetted it
		cl.breakerThreshold = cfg.BreakerThreshold
		cl.breakerCooldown = cfg.BreakerCooldown
		prefix = cl.selfToken + "."
		if cfg.Replicas > cl.size() {
			cfg.Replicas = cl.size()
		}
	}
	s := &Server{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		jobs:        newJobTable(prefix),
		rec:         cfg.Store,
		cluster:     cl,
		metrics:     newMetrics(),
		janitorStop: make(chan struct{}),
	}
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.runJob)
	s.mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/jobs/{id}/reschedule", s.handleReschedule)
	s.mux.HandleFunc("GET /v1/algos", s.handleAlgos)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/internal/replicate", s.handleReplicate)
	if cl != nil && cfg.Replicas > 1 {
		s.replicas = newReplicaSet()
		s.detector = newDetector(s)
		go s.detector.run()
	}
	s.replay()
	go s.janitor()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes Server itself an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Vars exposes the counter map so an embedding binary can publish it in
// the process-global expvar namespace (cmd/schedd does, as "schedd").
func (s *Server) Vars() *expvar.Map { return s.metrics.vars }

// Jobs returns the number of live runtime jobs (any state).
func (s *Server) Jobs() int { return s.jobs.size() }

// Drain gracefully shuts the service down: the intake closes (new
// submissions get 503 "shutting_down", /healthz turns "draining") and
// Drain blocks until every accepted job has reached a terminal state or
// ctx expires. A completed drain also closes the store — for a WAL
// store that folds the log into its final snapshot. Safe to call more
// than once.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if s.detector != nil {
		s.detector.close()
	}
	// Stop the janitor on every exit path — an interrupted drain must not
	// leak its goroutine and ticker for the rest of the process.
	defer s.janitorOnce.Do(func() { close(s.janitorStop) })
	s.pool.beginDrain()
	done := make(chan struct{})
	go func() {
		s.pool.wait()
		close(done)
	}()
	select {
	case <-done:
		return s.rec.Close()
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted with jobs still running: %w", ctx.Err())
	}
}

// janitor periodically evicts expired terminal jobs from the runtime
// table and the store.
func (s *Server) janitor() {
	period := s.cfg.JobTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			now := s.cfg.Now()
			s.jobs.sweep(now, s.cfg.JobTTL)
			s.rec.Sweep(now, s.cfg.JobTTL)
			if s.replicas != nil {
				s.replicas.sweep(now, s.cfg.JobTTL)
			}
		case <-s.janitorStop:
			return
		}
	}
}

// ---- store replay ----

// replay re-admits the store's contents on boot. Terminal records need
// no runtime state — GET /v1/jobs/{id} and reschedule lineage serve them
// straight from the store. Pending records are jobs a previous process
// accepted but never finished: each is recompiled from its stored recipe
// and re-enqueued under its original ID. Every registered scheduler is
// deterministic, so the replayed run produces byte-identical schedule
// bytes to what the interrupted one would have.
//
// Replayed jobs run without their original TimeoutMS bound — the
// deadline was relative to the original accept time, which no longer
// means anything.
func (s *Server) replay() {
	recs := s.rec.List()
	sort.Slice(recs, func(i, j int) bool { return idSeq(recs[i].ID) < idSeq(recs[j].ID) })
	for _, rec := range recs {
		s.jobs.bump(idSeq(rec.ID))
		if rec.Status.Terminal() {
			continue
		}
		s.metrics.StoreReplays.Add(1)
		j, errBody := s.rebuildJob(rec)
		if errBody == nil {
			// The store already holds this record (that is how we got here),
			// so the rebuilt job must write its terminal transition back —
			// otherwise the record stays "queued" forever: never TTL-swept,
			// re-run on every boot, and served stale once the runtime job
			// expires.
			j.persist = true
			errBody = s.enqueue(j, true)
		}
		if errBody != nil {
			// The recipe no longer compiles (algorithm unregistered in this
			// binary, hand-edited log) or the pool is already full: fail the
			// record so clients see a terminal answer instead of a forever-
			// queued ghost.
			rec := rec.clone()
			rec.Status = JobFailed
			rec.Error = errBody
			rec.DoneAt = s.cfg.Now()
			if err := s.rec.Finish(rec); err != nil {
				s.metrics.StoreErrors.Add(1)
			}
		}
	}
}

// rebuildJob reconstructs a runnable job from a pending record's recipe.
func (s *Server) rebuildJob(rec *Record) (*job, *ErrorBody) {
	switch rec.Kind {
	case KindReschedule:
		delta, err := sched.DeltaFromJSON(rec.Delta)
		if err != nil {
			return nil, &ErrorBody{Code: CodeBadRequest, Message: err.Error(), Detail: validationDetail(err)}
		}
		return s.buildJob(context.Background(), rec.clone(), 0, s.rescheduleRun(rec.SourceID, delta, rec.Seed)), nil
	default:
		var req ScheduleRequest
		if err := json.Unmarshal(rec.Request, &req); err != nil {
			return nil, &ErrorBody{Code: CodeBadRequest, Message: fmt.Sprintf("stored request: %v", err)}
		}
		p, scheduler, errBody := req.compile(s.cfg.DefaultAlgo, nil)
		if errBody != nil {
			return nil, errBody
		}
		seed := req.Seed
		return s.buildJob(context.Background(), rec.clone(), 0, func(ctx context.Context) (*sched.Result, error) {
			return scheduler.Schedule(ctx, p, sched.WithSeed(seed), sched.WithWorkers(1))
		}), nil
	}
}

// resultOf re-derives a finished library result for id: the retained
// in-memory result when the job is live and done, otherwise a
// deterministic recomputation from the stored recipe — recursing through
// reschedule lineage. It never blocks on another queued job (that could
// deadlock a single-worker pool); recomputing an ancestor that happens
// to still be queued yields the same bytes its own run will.
func (s *Server) resultOf(ctx context.Context, id string) (*sched.Result, error) {
	if j, ok := s.jobs.get(id, s.cfg.Now(), s.cfg.JobTTL); ok {
		if res, ok := j.doneResult(); ok {
			return res, nil
		}
	}
	rec, ok := s.rec.Get(id)
	if !ok && s.replicas != nil {
		// A replicated copy of a dead owner's record serves as the recipe
		// just as well — it is byte-identical to what the owner stored.
		rec, ok = s.replicas.get(id)
	}
	if !ok {
		return nil, fmt.Errorf("reschedule source %q is gone (expired or never persisted)", id)
	}
	if rec.Status == JobFailed {
		return nil, fmt.Errorf("reschedule source %q failed", id)
	}
	switch rec.Kind {
	case KindReschedule:
		prev, err := s.resultOf(ctx, rec.SourceID)
		if err != nil {
			return nil, err
		}
		delta, err := sched.DeltaFromJSON(rec.Delta)
		if err != nil {
			return nil, err
		}
		return sched.Reschedule(ctx, *prev, delta, sched.WithSeed(rec.Seed))
	default:
		var req ScheduleRequest
		if err := json.Unmarshal(rec.Request, &req); err != nil {
			return nil, fmt.Errorf("stored request for %q: %w", id, err)
		}
		p, scheduler, errBody := req.compile(s.cfg.DefaultAlgo, nil)
		if errBody != nil {
			return nil, errBody
		}
		return scheduler.Schedule(ctx, p, sched.WithSeed(req.Seed), sched.WithWorkers(1))
	}
}

// rescheduleRun returns the run closure of a reschedule job: resolve the
// source result (live fast path or stored-recipe recomputation), then
// warm-start reconvergence from it.
func (s *Server) rescheduleRun(sourceID string, delta sched.Delta, seed int64) func(context.Context) (*sched.Result, error) {
	return func(ctx context.Context) (*sched.Result, error) {
		prev, err := s.resultOf(ctx, sourceID)
		if err != nil {
			return nil, err
		}
		return sched.Reschedule(ctx, *prev, delta, sched.WithSeed(seed))
	}
}

// ---- job construction ----

// newJob compiles a request into a queueable job. base is the request
// context for synchronous calls and the background context for
// asynchronous jobs. persist marks the job store-backed (asynchronous
// submissions); synchronous jobs never are — their IDs are not
// disclosed, so nothing can look them up later. cc (nil outside
// batches) shares compiled documents across a batch.
func (s *Server) newJob(base context.Context, req *ScheduleRequest, persist bool, cc *compileCache) (*job, *ErrorBody) {
	p, scheduler, errBody := req.compile(s.cfg.DefaultAlgo, cc)
	if errBody != nil {
		return nil, errBody
	}
	rec := &Record{
		ID:        s.jobs.nextID(),
		Kind:      KindSchedule,
		Algo:      scheduler.Name(),
		Status:    JobQueued,
		Key:       req.IdempotencyKey,
		CreatedAt: s.cfg.Now(),
	}
	if persist {
		rec.Request = req.wireDoc()
	}
	seed := req.Seed
	j := s.buildJob(base, rec, req.TimeoutMS, func(ctx context.Context) (*sched.Result, error) {
		return scheduler.Schedule(ctx, p, sched.WithSeed(seed), sched.WithWorkers(1))
	})
	j.persist = persist
	return j, nil
}

// newRescheduleJob compiles a reschedule request against a source job
// into a queueable warm-start job. prev is the source's retained result
// when it is live and done — the delta is then parsed and resolved
// against its problem up front, so every validation error still surfaces
// as a typed 4xx before queueing. prev nil means the source exists only
// as a stored record: the preflight Apply is skipped (the recomputation
// happens at run time) and a bad delta becomes the job's terminal error.
func (s *Server) newRescheduleJob(sourceID string, prev *sched.Result, req *RescheduleRequest) (*job, *ErrorBody) {
	if len(req.Delta) == 0 || string(req.Delta) == "null" {
		return nil, &ErrorBody{Code: CodeBadRequest, Message: "missing delta document"}
	}
	delta, err := sched.DeltaFromJSON(req.Delta)
	if err != nil {
		return nil, &ErrorBody{Code: CodeBadRequest, Message: err.Error(), Detail: validationDetail(err)}
	}
	if prev != nil {
		p := sched.Problem{Graph: prev.Schedule.Graph(), System: prev.Schedule.System()}
		if _, err := delta.Apply(p); err != nil {
			return nil, &ErrorBody{Code: CodeBadRequest, Message: err.Error(), Detail: validationDetail(err)}
		}
	}
	s.metrics.observeDelta(delta)
	rec := &Record{
		ID:        s.jobs.nextID(),
		Kind:      KindReschedule,
		Algo:      "bsa",
		Status:    JobQueued,
		Delta:     req.Delta,
		Seed:      req.Seed,
		SourceID:  sourceID,
		CreatedAt: s.cfg.Now(),
	}
	var run func(context.Context) (*sched.Result, error)
	if prev != nil {
		seed := req.Seed
		run = func(ctx context.Context) (*sched.Result, error) {
			return sched.Reschedule(ctx, *prev, delta, sched.WithSeed(seed))
		}
	} else {
		run = s.rescheduleRun(sourceID, delta, req.Seed)
	}
	j := s.buildJob(context.Background(), rec, req.TimeoutMS, run)
	j.persist = true
	return j, nil
}

// buildJob wraps a record and run closure in job lifecycle state. base
// is the context the run hangs off: the request context for synchronous
// calls, the background context for asynchronous jobs (they outlive the
// submit request). A TimeoutMS deadline starts here — it covers queue
// wait.
func (s *Server) buildJob(base context.Context, rec *Record, timeoutMS int64, run func(context.Context) (*sched.Result, error)) *job {
	ctx, cancel := base, context.CancelFunc(func() {})
	if timeoutMS > 0 {
		ctx, cancel = context.WithTimeout(base, time.Duration(timeoutMS)*time.Millisecond)
	}
	return &job{
		rec:     rec,
		run:     run,
		ctx:     ctx,
		cancel:  cancel,
		version: 1,
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// enqueue registers and submits a compiled job, updating the counters.
// replayed marks a job the store already holds (boot replay), skipping
// the duplicate Put. The accepted/in-flight counters move BEFORE the job
// becomes runnable: a worker can finish it (decrementing in-flight) the
// instant submit succeeds, and counting afterwards would let a /metrics
// scrape observe jobs_in_flight at -1 or jobs_completed ahead of
// jobs_accepted.
func (s *Server) enqueue(j *job, replayed bool) *ErrorBody {
	id := j.rec.ID
	if j.persist && !replayed {
		if err := s.rec.Put(j.record()); err != nil {
			s.metrics.StoreErrors.Add(1)
			s.metrics.JobsRejected.Add(1)
			j.cancel()
			return &ErrorBody{Code: CodeStoreUnavailable, Message: fmt.Sprintf("persist job: %v", err)}
		}
	}
	s.jobs.put(j)
	s.metrics.JobsAccepted.Add(1)
	s.metrics.JobsInFlight.Add(1)
	if err := s.pool.submit(j); err != nil {
		// Remove the stillborn job so it cannot be polled forever.
		s.metrics.JobsAccepted.Add(-1)
		s.metrics.JobsInFlight.Add(-1)
		s.jobs.delete(id)
		if j.persist && !replayed {
			s.rec.Evict(id)
		}
		j.cancel()
		s.metrics.JobsRejected.Add(1)
		if errors.Is(err, errDraining) {
			return &ErrorBody{Code: CodeShuttingDown, Message: "server is draining"}
		}
		return &ErrorBody{Code: CodeQueueFull, Message: "job queue is full, retry later"}
	}
	return nil
}

// runJob executes one job on a pool worker and records its outcome. The
// worker must survive anything the run does: a panicking or nil-result
// scheduler becomes the job's typed terminal error, never a dead worker
// goroutine (which would take the whole process down) or a nil
// dereference while rendering the response.
func (s *Server) runJob(j *job) {
	var (
		res     *sched.Result
		resp    *ScheduleResponse
		errBody *ErrorBody
	)
	if err := j.ctx.Err(); err != nil {
		// Deadline spent entirely in the queue.
		errBody = ctxErrorBody(err)
	} else {
		j.setRunning()
		var err error
		res, err = runGuarded(j)
		switch {
		case err == nil && (res == nil || res.Schedule == nil):
			errBody = &ErrorBody{Code: CodeScheduleFailed, Message: "scheduler returned no schedule"}
		case err == nil:
			s.metrics.observe(res)
			if resp, err = response(res); err != nil {
				errBody = &ErrorBody{Code: CodeScheduleFailed, Message: err.Error()}
			}
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			errBody = ctxErrorBody(err)
		default:
			errBody = &ErrorBody{Code: CodeScheduleFailed, Message: err.Error(), Detail: validationDetail(err)}
		}
	}
	if errBody != nil {
		res = nil
		s.metrics.JobsFailed.Add(1)
	} else {
		s.metrics.JobsCompleted.Add(1)
	}
	s.metrics.JobsInFlight.Add(-1)
	rc := j.finish(s.cfg.Now(), res, resp, errBody)
	if j.persist {
		if err := s.rec.Finish(rc); err != nil {
			s.metrics.StoreErrors.Add(1)
		}
		// The terminal outcome replicates too, so successors can serve
		// (not recompute) finished jobs after this node dies — and a job
		// accepted here under a dead owner's key flows back to that owner
		// once it returns.
		s.replicateRecords([]*Record{rc})
		s.reconcileForeignKey(rc)
	} else if j.sink != nil {
		j.sink(rc)
	}
}

// runGuarded invokes the job's run closure, converting a panic into an
// ordinary error.
func runGuarded(j *job) (res *sched.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("scheduler panicked: %v", r)
		}
	}()
	return j.run(j.ctx)
}

// ctxErrorBody maps a context error to the wire error body. Cancellation
// (a synchronous caller that went away) reports the same code as an
// expired deadline: from the job's perspective both are "the time the
// caller allotted ran out".
func ctxErrorBody(err error) *ErrorBody {
	return &ErrorBody{Code: CodeDeadlineExceeded, Message: err.Error()}
}

// ---- request plumbing ----

// readBody slurps the JSON body under the body-size cap. Forwarding
// needs the raw bytes, so decoding is split from reading.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, *ErrorBody) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &ErrorBody{Code: CodeBodyTooLarge, Message: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)}
		}
		return nil, &ErrorBody{Code: CodeBadRequest, Message: fmt.Sprintf("read request: %v", err)}
	}
	return data, nil
}

// unmarshalStrict decodes a request body, rejecting unknown fields.
func unmarshalStrict(data []byte, v any) *ErrorBody {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &ErrorBody{Code: CodeBadRequest, Message: fmt.Sprintf("decode request: %v", err)}
	}
	return nil
}

// decode parses the JSON body under the body-size cap.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, req any) *ErrorBody {
	data, errBody := s.readBody(w, r)
	if errBody != nil {
		return errBody
	}
	return unmarshalStrict(data, req)
}

// ---- cluster routing ----

// routeToken resolves the address to forward a request to: the owner
// token must name another replica and the request must not already have
// crossed a hop (a forwarded request is served where it lands — two
// replicas disagreeing about membership must not bounce it forever).
// When the owner is dead and failover is on, the request reroutes to
// the owner's first live ring successor — the replica that adopted its
// jobs — or stays local when that successor is this node.
func (s *Server) routeToken(r *http.Request, token string) (string, bool) {
	if s.cluster == nil || token == "" || token == s.cluster.selfToken || r.Header.Get(forwardedHeader) != "" {
		return "", false
	}
	if s.replicas != nil && s.detector.dead(token) {
		if _, member := s.cluster.addrOf(token); member {
			succ := s.firstLiveSuccessor(token)
			if succ == "" || succ == s.cluster.selfToken {
				return "", false
			}
			return s.cluster.addrOf(succ)
		}
	}
	return s.cluster.addrOf(token)
}

// firstLiveSuccessor returns the member that takes over for a dead
// owner: the first of its ring successors the detector does not
// consider dead (this node is always live from its own perspective).
// Empty when every other member is dead too.
func (s *Server) firstLiveSuccessor(token string) string {
	for _, succ := range s.cluster.successorsOf(token, s.cluster.size()-1) {
		if succ == s.cluster.selfToken || !s.detector.dead(succ) {
			return succ
		}
	}
	return ""
}

// errBreakerOpen is what forward returns when the peer's circuit
// breaker refuses the attempt outright.
var errBreakerOpen = errors.New("circuit breaker open")

// forward issues one inter-replica request through addr's circuit
// breaker: an open breaker refuses the attempt without touching the
// network (a dead peer costs one bounded probe per cooldown instead of
// a connect timeout per request), failures count toward tripping it,
// and any success closes it.
func (s *Server) forward(req *http.Request, addr string) (*http.Response, error) {
	br := s.cluster.breakerFor(addr)
	if !br.allow(time.Now()) {
		s.metrics.BreakerShortCircuits.Add(1)
		return nil, errBreakerOpen
	}
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		s.metrics.ForwardErrors.Add(1)
		if br.failure(time.Now()) {
			s.metrics.BreakerOpens.Add(1)
		}
		return nil, err
	}
	br.success()
	return resp, nil
}

// relay forwards the request to addr and streams the response back,
// flushing per chunk so SSE survives the hop. body nil means a bodyless
// method. Every attempt is bounded by ForwardTimeout except SSE
// streams, which legitimately outlive any fixed bound.
func (s *Server) relay(w http.ResponseWriter, r *http.Request, addr string, body []byte) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	ctx := r.Context()
	if !strings.HasSuffix(r.URL.Path, "/events") {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ForwardTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, "http://"+addr+r.URL.RequestURI(), rd)
	if err != nil {
		writeError(w, &ErrorBody{Code: CodeUpstreamUnavailable, Message: fmt.Sprintf("forward to %s: %v", addr, err)})
		return
	}
	req.Header.Set(forwardedHeader, s.cluster.self)
	if lastID := r.Header.Get("Last-Event-ID"); lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := s.forward(req, addr)
	if err != nil {
		writeError(w, &ErrorBody{Code: CodeUpstreamUnavailable, Message: fmt.Sprintf("job owner %s unreachable: %v", addr, err)})
		return
	}
	defer resp.Body.Close()
	s.metrics.Forwards.Add(1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
}

// flushCopy copies src to w, flushing after every chunk so streamed
// responses (SSE) propagate immediately instead of sitting in a buffer.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// storeGet fetches a record, lazily evicting it when its TTL passed —
// the store mirror of jobTable.get.
func (s *Server) storeGet(id string) (*Record, bool) {
	rec, ok := s.rec.Get(id)
	if !ok {
		return nil, false
	}
	if ttl := s.cfg.JobTTL; rec.Status.Terminal() && ttl > 0 && s.cfg.Now().Sub(rec.DoneAt) >= ttl {
		s.rec.Evict(id)
		return nil, false
	}
	return rec, true
}

// currentView renders the freshest view of a job: the live runtime job
// when present (its status moves before the store's), else the stored
// record.
func (s *Server) currentView(rec *Record) *JobView {
	if j, ok := s.jobs.get(rec.ID, s.cfg.Now(), s.cfg.JobTTL); ok {
		return j.view()
	}
	return viewOfRecord(rec)
}

// ---- replication and failover ----

// replicateRequest is the body of POST /v1/internal/replicate: an owner
// streaming record snapshots to its ring successors, or (Reconcile) a
// successor pushing outcomes back to a returned owner.
type replicateRequest struct {
	Origin    string    `json:"origin"` // sender's node token
	Reconcile bool      `json:"reconcile,omitempty"`
	Records   []*Record `json:"records"`
}

// handleReplicate receives replication and reconciliation pushes from
// peers. Replication lands in the replica side-store; reconciliation
// folds into this node's own store under first-terminal-wins.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, &ErrorBody{Code: CodeBadRequest, Message: "replication requires cluster mode"})
		return
	}
	var req replicateRequest
	if errBody := s.decode(w, r, &req); errBody != nil {
		writeError(w, errBody)
		return
	}
	if req.Reconcile {
		s.reconcile(req.Records)
	} else {
		if s.replicas == nil {
			writeError(w, &ErrorBody{Code: CodeBadRequest, Message: "replication disabled on this replica (-replicas 1)"})
			return
		}
		s.replicas.store(req.Origin, req.Records)
	}
	writeJSON(w, http.StatusOK, map[string]int{"records": len(req.Records)})
}

// reconcile folds records pushed by a peer into this node's own store:
// terminal outcomes a successor computed while this node was dead, and
// keyed jobs a successor accepted on its behalf. Adopt keeps the first
// terminal state, so anything this node already finished — including a
// WAL-replayed run that raced the push — is untouched, and the replayed
// run's bytes are identical to the adopted ones anyway.
func (s *Server) reconcile(recs []*Record) {
	for _, rec := range recs {
		if jobToken(rec.ID) == s.cluster.selfToken {
			s.jobs.bump(idSeq(rec.ID))
		}
		if err := s.rec.Adopt(rec); err != nil {
			s.metrics.StoreErrors.Add(1)
			continue
		}
		s.metrics.Reconciles.Add(1)
	}
}

// replicateJob streams one accepted job's persistence record to this
// node's ring successors — called after enqueue and BEFORE the 202 is
// written, so a SIGKILL right after the ack can never leave the record
// without a surviving copy. Not under keyMu: replication is network
// I/O, and serializing all keyed intake behind a slow successor would
// be worse than the benign double-send a racing duplicate could cause.
func (s *Server) replicateJob(j *job) {
	if s.replicas == nil || !j.persist {
		return
	}
	s.replicateRecords([]*Record{j.record()})
}

// replicateRecords pushes record snapshots to every ring successor.
// Best-effort per target: a successor that cannot be reached costs a
// counter (replication_errors_total), not the acceptance — the local
// store already holds the record.
func (s *Server) replicateRecords(recs []*Record) {
	if s.replicas == nil || len(recs) == 0 {
		return
	}
	data, err := json.Marshal(&replicateRequest{Origin: s.cluster.selfToken, Records: recs})
	if err != nil {
		s.metrics.ReplicationErrors.Add(1)
		return
	}
	for _, token := range s.cluster.successorsOf(s.cluster.selfToken, s.cfg.Replicas-1) {
		addr, ok := s.cluster.addrOf(token)
		if !ok {
			continue
		}
		if s.sendReplicate(addr, data) {
			s.metrics.ReplicatedJobs.Add(int64(len(recs)))
		} else {
			s.metrics.ReplicationErrors.Add(1)
		}
	}
}

// sendReplicate posts one replication payload to addr through its
// circuit breaker, bounded by ForwardTimeout.
func (s *Server) sendReplicate(addr string, data []byte) bool {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/v1/internal/replicate", bytes.NewReader(data))
	if err != nil {
		return false
	}
	req.Header.Set(forwardedHeader, s.cluster.self)
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.forward(req, addr)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for connection reuse
	return resp.StatusCode/100 == 2
}

// onPeerDead is the detector's death hook: when this node is the dead
// owner's first live successor it fails over, re-enqueueing every
// replicated pending job under its original ID. Adopted jobs run with
// persist off and their outcome routed into the replica side-store —
// the records belong to the dead owner's store, not this node's — so a
// replayed run on the recovered owner and the adopted run here converge
// on byte-identical results via reconciliation.
func (s *Server) onPeerDead(token string) {
	if s.replicas == nil || s.firstLiveSuccessor(token) != s.cluster.selfToken {
		return
	}
	s.metrics.Failovers.Add(1)
	for _, rec := range s.replicas.pending(token) {
		if _, live := s.jobs.get(rec.ID, s.cfg.Now(), s.cfg.JobTTL); live {
			continue // already adopted by an earlier death of the same owner
		}
		j, errBody := s.rebuildJob(rec)
		if errBody == nil {
			j.persist = false
			j.sink = s.replicas.finish
			errBody = s.enqueue(j, true)
		}
		if errBody != nil {
			failed := rec.clone()
			failed.Status = JobFailed
			failed.Error = errBody
			failed.DoneAt = s.cfg.Now()
			s.replicas.finish(failed)
			continue
		}
		s.metrics.AdoptedJobs.Add(1)
	}
}

// onPeerRecovered is the detector's recovery hook: push everything this
// node holds on the returned owner's behalf — terminal outcomes of its
// adopted jobs, plus terminal jobs accepted here under keys the owner's
// ring range covers — so its store converges with what happened while
// it was gone. The push runs in a goroutine (reconciliation must not
// block probing) and is idempotent end to end.
func (s *Server) onPeerRecovered(token string) {
	if s.replicas == nil {
		return
	}
	recs := s.replicas.terminalRecords(token)
	for _, rec := range s.rec.List() {
		if rec.Status.Terminal() && rec.Key != "" && s.cluster.ownerToken(rec.Key) == token {
			recs = append(recs, rec)
		}
	}
	if len(recs) == 0 {
		return
	}
	addr, ok := s.cluster.addrOf(token)
	if !ok {
		return
	}
	go s.sendReconcile(addr, recs)
}

// reconcileForeignKey pushes a finished keyed record to the key's hash
// owner when that owner is another live member — the job was accepted
// here on a dead owner's behalf during failover, and without the push
// the returned owner would re-accept the key as brand new.
func (s *Server) reconcileForeignKey(rc *Record) {
	if s.replicas == nil || rc.Key == "" {
		return
	}
	owner := s.cluster.ownerToken(rc.Key)
	if owner == s.cluster.selfToken || s.detector.dead(owner) {
		return // dead owners get the push from onPeerRecovered instead
	}
	addr, ok := s.cluster.addrOf(owner)
	if !ok {
		return
	}
	go s.sendReconcile(addr, []*Record{rc})
}

func (s *Server) sendReconcile(addr string, recs []*Record) {
	data, err := json.Marshal(&replicateRequest{Origin: s.cluster.selfToken, Reconcile: true, Records: recs})
	if err != nil {
		return
	}
	s.sendReplicate(addr, data)
}

// unknownJobError distinguishes "never heard of this job" from "its
// owner is a dead member and no replica holds a copy": the former is a
// 404, the latter a 502 the client may retry once the owner returns.
func (s *Server) unknownJobError(id string) *ErrorBody {
	if token := jobToken(id); token != "" && s.cluster != nil && token != s.cluster.selfToken {
		if _, member := s.cluster.addrOf(token); member {
			return &ErrorBody{Code: CodeUpstreamUnavailable, Message: fmt.Sprintf("job %q's owner %s is unreachable and no replica holds it", id, token)}
		}
	}
	return &ErrorBody{Code: CodeNotFound, Message: fmt.Sprintf("no job %q (unknown, or expired after %v)", id, s.cfg.JobTTL)}
}

// ---- handlers ----

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if errBody := s.decode(w, r, &req); errBody != nil {
		s.metrics.JobsRejected.Add(1)
		writeError(w, errBody)
		return
	}
	// Synchronous calls are served wherever they land: the job is private
	// to this request, so ownership routing (and the idempotency key) do
	// not apply.
	j, errBody := s.newJob(r.Context(), &req, false, nil)
	if errBody != nil {
		s.metrics.JobsRejected.Add(1)
		writeError(w, errBody)
		return
	}
	if errBody := s.enqueue(j, false); errBody != nil {
		writeError(w, errBody)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The worker observes the same context and finishes the job as
		// failed; wait for it so the handler never abandons a live run.
		<-j.done
	}
	// A synchronous job's ID is never disclosed, so nobody can poll it:
	// drop it now instead of letting every sync response's schedule
	// document sit in the table for a full JobTTL.
	s.jobs.delete(j.rec.ID)
	v := j.view()
	if v.Error != nil {
		writeError(w, v.Error)
		return
	}
	writeJSON(w, http.StatusOK, v.Result)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, errBody := s.readBody(w, r)
	if errBody == nil {
		var req ScheduleRequest
		if errBody = unmarshalStrict(body, &req); errBody == nil {
			// Keyed submissions are owned by the key's hash owner so
			// duplicates land on one replica no matter who received them;
			// keyless ones stay local (their ID carries this node's token,
			// which routes every later lookup here).
			if req.IdempotencyKey != "" {
				if addr, ok := s.routeToken(r, s.cluster.ownerTokenIfClustered(req.IdempotencyKey)); ok {
					s.relay(w, r, addr, body)
					return
				}
			}
			s.submitLocal(w, &req, nil)
			return
		}
	}
	s.metrics.JobsRejected.Add(1)
	writeError(w, errBody)
}

// ownerTokenIfClustered is ownerToken tolerating a nil receiver, so the
// single-node path needs no branch.
func (c *cluster) ownerTokenIfClustered(key string) string {
	if c == nil {
		return ""
	}
	return c.ownerToken(key)
}

// submitLocal accepts one asynchronous submission on this replica,
// deduplicating by idempotency key. A duplicate returns the original
// job's current view with HTTP 200 (not 202 — nothing was accepted).
func (s *Server) submitLocal(w http.ResponseWriter, req *ScheduleRequest, cc *compileCache) {
	dup, j, errBody := s.accept(req, cc)
	switch {
	case errBody != nil:
		writeError(w, errBody)
	case dup != nil:
		writeJSON(w, http.StatusOK, dup)
	default:
		s.replicateJob(j)
		writeJSON(w, http.StatusAccepted, j.view())
	}
}

// accept admits one asynchronous submission: dedup by idempotency key
// (this node's store first, then the replica side-store — a key whose
// dead owner's copy landed here must not double-accept), compile,
// enqueue. Exactly one of the three returns is set. keyMu is held only
// through the dedup-check-and-enqueue window, NOT through replication —
// the caller replicates after, so keyed intake never serializes behind
// a slow successor's network round trip.
func (s *Server) accept(req *ScheduleRequest, cc *compileCache) (*JobView, *job, *ErrorBody) {
	if req.IdempotencyKey != "" {
		s.keyMu.Lock()
		defer s.keyMu.Unlock()
		if rec, ok := s.rec.ByKey(req.IdempotencyKey); ok {
			if _, live := s.storeGet(rec.ID); live {
				s.metrics.IdempotentHits.Add(1)
				return s.currentView(rec), nil, nil
			}
			// The key's job TTL-expired: the key is free again.
		}
		if s.replicas != nil {
			if rec, ok := s.replicas.byKey(req.IdempotencyKey); ok {
				s.metrics.IdempotentHits.Add(1)
				return s.currentView(rec), nil, nil
			}
		}
	}
	j, errBody := s.newJob(context.Background(), req, true, cc)
	if errBody != nil {
		s.metrics.JobsRejected.Add(1)
		return nil, nil, errBody
	}
	if errBody := s.enqueue(j, false); errBody != nil {
		return nil, nil, errBody
	}
	return nil, j, nil
}

// handleBatch accepts many submissions in one request. Top-level
// documents act as per-job defaults and byte-identical documents compile
// once, so a parameter sweep pays wire and compile cost once instead of
// per job. Jobs are accepted or rejected independently — the response
// carries one BatchItem per job, in order — and in cluster mode each job
// is routed to its key's owner in per-owner sub-batches.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, errBody := s.readBody(w, r)
	if errBody != nil {
		s.metrics.JobsRejected.Add(1)
		writeError(w, errBody)
		return
	}
	var batch BatchRequest
	if errBody := unmarshalStrict(body, &batch); errBody != nil {
		s.metrics.JobsRejected.Add(1)
		writeError(w, errBody)
		return
	}
	if len(batch.Jobs) == 0 {
		s.metrics.JobsRejected.Add(1)
		writeError(w, &ErrorBody{Code: CodeBadRequest, Message: "empty batch"})
		return
	}
	// Resolve the defaults into each job so downstream handling (local or
	// forwarded) sees self-contained requests.
	for i := range batch.Jobs {
		job := &batch.Jobs[i]
		if !hasDoc(job.Graph) {
			job.Graph = batch.Graph
		}
		if !hasDoc(job.System) && !hasDoc(job.Topology) && job.Topo == nil {
			job.System = batch.System
			job.Topology = batch.Topology
			job.Topo = batch.Topo
			if job.Het == nil {
				job.Het = batch.Het
			}
		}
	}
	s.metrics.observeBatch(len(batch.Jobs))

	resp := BatchResponse{Jobs: make([]BatchItem, len(batch.Jobs))}
	local := make([]int, 0, len(batch.Jobs))
	remote := make(map[string][]int) // forward address -> job indices
	for i := range batch.Jobs {
		token := ""
		if key := batch.Jobs[i].IdempotencyKey; key != "" {
			token = s.cluster.ownerTokenIfClustered(key)
		}
		// Keyed by resolved address, not owner token: failover can route
		// two different dead owners' keys to one adopter, and those still
		// belong in a single sub-batch.
		if addr, ok := s.routeToken(r, token); ok {
			remote[addr] = append(remote[addr], i)
		} else {
			local = append(local, i)
		}
	}
	cc := newCompileCache()
	for _, i := range local {
		resp.Jobs[i] = s.batchItemLocal(&batch.Jobs[i], cc)
	}
	for addr, idxs := range remote {
		items := s.batchForward(r, addr, batch.Jobs, idxs)
		for k, i := range idxs {
			resp.Jobs[i] = items[k]
		}
	}
	writeJSON(w, http.StatusAccepted, &resp)
}

// batchItemLocal accepts one batch job on this replica. It mirrors
// submitLocal without writing to the response directly.
func (s *Server) batchItemLocal(req *ScheduleRequest, cc *compileCache) BatchItem {
	dup, j, errBody := s.accept(req, cc)
	switch {
	case errBody != nil:
		return BatchItem{Error: errBody}
	case dup != nil:
		return BatchItem{Job: dup}
	default:
		s.replicateJob(j)
		return BatchItem{Job: j.view()}
	}
}

// batchForward ships the indexed jobs to their owner as a sub-batch and
// returns its items. An owner that answers with a top-level error
// (draining, body too large, ...) has that error propagated to each
// item; only an owner we could not get an answer from fails them with
// 502 upstream_unavailable.
func (s *Server) batchForward(r *http.Request, addr string, jobs []ScheduleRequest, idxs []int) []BatchItem {
	sub := BatchRequest{Jobs: make([]ScheduleRequest, len(idxs))}
	for k, i := range idxs {
		sub.Jobs[k] = jobs[i]
	}
	fail := func(err error) []BatchItem {
		e := &ErrorBody{Code: CodeUpstreamUnavailable, Message: fmt.Sprintf("job owner %s unreachable: %v", addr, err)}
		items := make([]BatchItem, len(idxs))
		for k := range items {
			items[k] = BatchItem{Error: e}
		}
		return items
	}
	data, err := json.Marshal(&sub)
	if err != nil {
		return fail(err)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/v1/batch", bytes.NewReader(data))
	if err != nil {
		return fail(err)
	}
	req.Header.Set(forwardedHeader, s.cluster.self)
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.forward(req, addr)
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	s.metrics.Forwards.Add(1)
	respData, err := io.ReadAll(resp.Body)
	if err != nil {
		return fail(err)
	}
	if resp.StatusCode/100 != 2 {
		// The owner was reachable and answered with a typed error (draining,
		// body too large, ...): pass its real code through to every item
		// instead of mislabeling it "unreachable".
		var env errorEnvelope
		if err := json.Unmarshal(respData, &env); err == nil && env.Error != nil {
			items := make([]BatchItem, len(idxs))
			for k := range items {
				items[k] = BatchItem{Error: env.Error}
			}
			return items
		}
		return fail(fmt.Errorf("owner answered http %d with no error envelope", resp.StatusCode))
	}
	var out BatchResponse
	if err := json.Unmarshal(respData, &out); err != nil || len(out.Jobs) != len(idxs) {
		return fail(fmt.Errorf("malformed sub-batch response (http %d)", resp.StatusCode))
	}
	return out.Jobs
}

// handleReschedule accepts a quasi-dynamic delta against a finished
// job's schedule and queues the warm-started reconvergence as a fresh
// asynchronous job. The response is the same 202 + JobView shape as
// POST /v1/jobs; the resulting schedule document is byte-identical to
// what sched.Reschedule produces for the same inputs. The source may be
// live (retained result, delta preflighted against its problem) or a
// stored record from before a restart (recomputed at run time).
func (s *Server) handleReschedule(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, errBody := s.readBody(w, r)
	if errBody != nil {
		s.metrics.JobsRejected.Add(1)
		writeError(w, errBody)
		return
	}
	if addr, ok := s.routeToken(r, jobToken(id)); ok {
		s.relay(w, r, addr, body)
		return
	}
	var req RescheduleRequest
	if errBody := unmarshalStrict(body, &req); errBody != nil {
		s.metrics.JobsRejected.Add(1)
		writeError(w, errBody)
		return
	}
	var prev *sched.Result
	if src, ok := s.jobs.get(id, s.cfg.Now(), s.cfg.JobTTL); ok {
		done := false
		if prev, done = src.doneResult(); !done {
			s.metrics.JobsRejected.Add(1)
			writeError(w, &ErrorBody{Code: CodeJobNotDone, Message: fmt.Sprintf("job %q has no completed schedule to reschedule from", id)})
			return
		}
	} else if rec, ok := s.sourceRecord(id); ok {
		if rec.Status != JobDone {
			s.metrics.JobsRejected.Add(1)
			writeError(w, &ErrorBody{Code: CodeJobNotDone, Message: fmt.Sprintf("job %q has no completed schedule to reschedule from", id)})
			return
		}
		// prev stays nil: the run recomputes the source result from its
		// stored recipe.
	} else {
		s.metrics.JobsRejected.Add(1)
		writeError(w, s.unknownJobError(id))
		return
	}
	j, errBody := s.newRescheduleJob(id, prev, &req)
	if errBody != nil {
		s.metrics.JobsRejected.Add(1)
		writeError(w, errBody)
		return
	}
	if errBody := s.enqueue(j, false); errBody != nil {
		writeError(w, errBody)
		return
	}
	s.replicateJob(j)
	writeJSON(w, http.StatusAccepted, j.view())
}

// sourceRecord resolves a record usable as a reschedule source: this
// node's own store, then the replica side-store (a dead owner's job
// this node holds a copy of).
func (s *Server) sourceRecord(id string) (*Record, bool) {
	if rec, ok := s.storeGet(id); ok {
		return rec, true
	}
	if s.replicas != nil {
		if rec, ok := s.replicas.get(id); ok {
			return rec, true
		}
	}
	return nil, false
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if addr, ok := s.routeToken(r, jobToken(id)); ok {
		s.relay(w, r, addr, nil)
		return
	}
	if j, ok := s.jobs.get(id, s.cfg.Now(), s.cfg.JobTTL); ok {
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	if rec, ok := s.storeGet(id); ok {
		writeJSON(w, http.StatusOK, viewOfRecord(rec))
		return
	}
	if s.replicas != nil {
		if rec, ok := s.replicas.get(id); ok {
			writeJSON(w, http.StatusOK, viewOfRecord(rec))
			return
		}
	}
	writeError(w, s.unknownJobError(id))
}

// handleEvents streams a job's status transitions as server-sent events
// ("event: status", data: the JobView JSON) until the job is terminal or
// the client goes away. The stream coalesces: a client always sees the
// current view and the terminal view, but may skip intermediate states
// it was too slow for. Events carry monotonically increasing ids (the
// job's transition version), so a client reconnecting with Last-Event-ID
// resumes without re-receiving views it already processed.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if addr, ok := s.routeToken(r, jobToken(id)); ok {
		s.relay(w, r, addr, nil)
		return
	}
	lastID := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			lastID = n
		}
	}
	j, live := s.jobs.get(id, s.cfg.Now(), s.cfg.JobTTL)
	var rec *Record
	if !live {
		var ok bool
		if rec, ok = s.sourceRecord(id); !ok {
			writeError(w, s.unknownJobError(id))
			return
		}
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &ErrorBody{Code: CodeBadRequest, Message: "streaming unsupported by this connection"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if !live {
		// Record-only jobs have no transition stream (own-store records
		// here are terminal; a replicated pending record gains a live job
		// only once its owner is declared dead): one event tells the whole
		// story as of now.
		writeSSE(w, lastID+1, viewOfRecord(rec)) //nolint:errcheck // single shot; nothing to do on a gone client
		flusher.Flush()
		return
	}
	for {
		v, version, changed := j.snapshot()
		if version > lastID {
			if err := writeSSE(w, version, v); err != nil {
				return
			}
			flusher.Flush()
			lastID = version
		}
		if v.Status.Terminal() {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one SSE status event with its id. The data line is
// compact JSON — newlines would break the line-oriented framing.
func writeSSE(w io.Writer, id int, v *JobView) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: status\ndata: %s\n\n", id, data)
	return err
}

func (s *Server) handleAlgos(w http.ResponseWriter, r *http.Request) {
	ds := sched.List()
	out := make([]AlgoInfo, 0, len(ds))
	for _, d := range ds {
		out = append(out, AlgoInfo{Name: d.Name, Aliases: d.Aliases, Description: d.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCluster reports the configured member set with a live health
// probe of every peer. A single-node server answers with a synthetic
// one-row view, so clients need not special-case topology.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusOK, &ClusterView{
			Self:  "local",
			Nodes: []NodeView{{Token: "local", Self: true, Healthy: true, Jobs: s.jobs.size()}},
		})
		return
	}
	tokens := s.cluster.tokens()
	view := &ClusterView{Self: s.cluster.selfToken, Nodes: make([]NodeView, len(tokens))}
	var wg sync.WaitGroup
	for i, token := range tokens {
		addr, _ := s.cluster.addrOf(token)
		node := NodeView{Token: token, Addr: addr}
		if s.detector != nil {
			node.State = s.detector.stateOf(token)
		}
		if token == s.cluster.selfToken {
			node.Self = true
			node.Healthy = !s.draining.Load()
			node.Jobs = s.jobs.size()
			if s.detector != nil {
				node.State = peerAlive
			}
			view.Nodes[i] = node
			continue
		}
		// Probes fan out concurrently, each capped at ProbeTimeout, so one
		// slow or dead peer delays the view by at most one timeout instead
		// of stalling the whole walk.
		wg.Add(1)
		go func(i int, node NodeView) {
			defer wg.Done()
			node.Healthy = s.probe(r.Context(), node.Addr)
			view.Nodes[i] = node
		}(i, node)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, view)
}

// probe checks a peer's /healthz within the configured ProbeTimeout.
func (s *Server) probe(ctx context.Context, addr string) bool {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.metrics.vars.String())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// retryAfterSeconds is the Retry-After hint attached to every 503: the
// conditions behind them (full queue, drain, store hiccup) clear on the
// order of a second, so clients should pause rather than hammer.
const retryAfterSeconds = 1

func writeError(w http.ResponseWriter, e *ErrorBody) {
	status := httpStatus(e.Code)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	writeJSON(w, status, errorEnvelope{Error: e})
}
