package service

import (
	"expvar"

	"repro/sched"
)

// metrics is the server's counter set. The fields are expvar vars but
// deliberately not registered in the process-global expvar namespace —
// each Server owns its own set, so tests (and embeddings) can run many
// servers in one process without Publish collisions. GET /metrics renders
// them with expvar's own encoding; cmd/schedd additionally publishes the
// map globally so /debug/vars integrations keep working.
type metrics struct {
	vars *expvar.Map

	JobsAccepted  *expvar.Int // requests admitted to the queue (sync + async)
	JobsInFlight  *expvar.Int // accepted, not yet terminal
	JobsCompleted *expvar.Int // terminal: done
	JobsFailed    *expvar.Int // terminal: failed (incl. deadline)
	JobsRejected  *expvar.Int // refused before queueing (4xx/503)

	// BSATrace aggregates, summed over every completed BSA run: the
	// service-wide view of the sweep-level candidate cache.
	CacheHits     *expvar.Int
	CachePartials *expvar.Int
	CacheMisses   *expvar.Int
	Evaluations   *expvar.Int

	// Reschedule intake: accepted reschedule jobs, plus per-kind delta
	// operation counts summed over every accepted delta.
	Reschedules      *expvar.Int
	DeltaRemoveProcs *expvar.Int
	DeltaRemoveLinks *expvar.Int
	DeltaExecFactors *expvar.Int
	DeltaCommFactors *expvar.Int
	DeltaAddTasks    *expvar.Int
	DeltaAddEdges    *expvar.Int
}

func newMetrics() *metrics {
	m := &metrics{vars: new(expvar.Map).Init()}
	for _, v := range []struct {
		name string
		dst  **expvar.Int
	}{
		{"jobs_accepted", &m.JobsAccepted},
		{"jobs_in_flight", &m.JobsInFlight},
		{"jobs_completed", &m.JobsCompleted},
		{"jobs_failed", &m.JobsFailed},
		{"jobs_rejected", &m.JobsRejected},
		{"cache_hits_total", &m.CacheHits},
		{"cache_partials_total", &m.CachePartials},
		{"cache_misses_total", &m.CacheMisses},
		{"evaluations_total", &m.Evaluations},
		{"reschedules_total", &m.Reschedules},
		{"delta_remove_procs_total", &m.DeltaRemoveProcs},
		{"delta_remove_links_total", &m.DeltaRemoveLinks},
		{"delta_exec_factors_total", &m.DeltaExecFactors},
		{"delta_comm_factors_total", &m.DeltaCommFactors},
		{"delta_add_tasks_total", &m.DeltaAddTasks},
		{"delta_add_edges_total", &m.DeltaAddEdges},
	} {
		i := new(expvar.Int)
		*v.dst = i
		m.vars.Set(v.name, i)
	}
	return m
}

// observeDelta counts one accepted reschedule and its delta's operations
// by kind.
func (m *metrics) observeDelta(d sched.Delta) {
	m.Reschedules.Add(1)
	m.DeltaRemoveProcs.Add(int64(len(d.RemoveProcs())))
	m.DeltaRemoveLinks.Add(int64(len(d.RemoveLinks())))
	m.DeltaExecFactors.Add(int64(len(d.ExecFactors())))
	m.DeltaCommFactors.Add(int64(len(d.CommFactors())))
	m.DeltaAddTasks.Add(int64(len(d.AddTasks())))
	m.DeltaAddEdges.Add(int64(len(d.AddEdges())))
}

// observe folds one finished result into the aggregate counters.
func (m *metrics) observe(res *sched.Result) {
	if res == nil {
		return
	}
	m.Evaluations.Add(int64(res.Stats.Get("evaluations")))
	if tr, ok := res.BSA(); ok {
		m.CacheHits.Add(int64(tr.CacheHits))
		m.CachePartials.Add(int64(tr.CachePartials))
		m.CacheMisses.Add(int64(tr.CacheMisses))
	}
}
