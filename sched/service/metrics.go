package service

import (
	"expvar"

	"repro/sched"
)

// metrics is the server's counter set. The fields are expvar vars but
// deliberately not registered in the process-global expvar namespace —
// each Server owns its own set, so tests (and embeddings) can run many
// servers in one process without Publish collisions. GET /metrics renders
// them with expvar's own encoding; cmd/schedd additionally publishes the
// map globally so /debug/vars integrations keep working.
type metrics struct {
	vars *expvar.Map

	JobsAccepted  *expvar.Int // requests admitted to the queue (sync + async)
	JobsInFlight  *expvar.Int // accepted, not yet terminal
	JobsCompleted *expvar.Int // terminal: done
	JobsFailed    *expvar.Int // terminal: failed (incl. deadline)
	JobsRejected  *expvar.Int // refused before queueing (4xx/503)

	// BSATrace aggregates, summed over every completed BSA run: the
	// service-wide view of the sweep-level candidate cache.
	CacheHits     *expvar.Int
	CachePartials *expvar.Int
	CacheMisses   *expvar.Int
	Evaluations   *expvar.Int

	// Reschedule intake: accepted reschedule jobs, plus per-kind delta
	// operation counts summed over every accepted delta.
	Reschedules      *expvar.Int
	DeltaRemoveProcs *expvar.Int
	DeltaRemoveLinks *expvar.Int
	DeltaExecFactors *expvar.Int
	DeltaCommFactors *expvar.Int
	DeltaAddTasks    *expvar.Int
	DeltaAddEdges    *expvar.Int

	// Persistence and cluster traffic.
	StoreReplays   *expvar.Int // pending jobs re-enqueued from the store on boot
	StoreErrors    *expvar.Int // store writes that failed
	Forwards       *expvar.Int // requests relayed to their owning replica
	IdempotentHits *expvar.Int // keyed submissions answered with an existing job

	// Fault tolerance: replication, failure detection, failover and the
	// circuit breakers guarding inter-replica traffic.
	ProbeFailures        *expvar.Int // failure-detector probes that missed
	Failovers            *expvar.Int // peer deaths this node took over for
	AdoptedJobs          *expvar.Int // replicated pending jobs re-run after an owner death
	ReplicatedJobs       *expvar.Int // job records successfully streamed to a successor
	ReplicationErrors    *expvar.Int // replication sends that failed (best-effort)
	Reconciles           *expvar.Int // records reconciled with a returned owner
	BreakerOpens         *expvar.Int // circuit breakers tripped open
	BreakerShortCircuits *expvar.Int // forwards refused by an open breaker
	ForwardErrors        *expvar.Int // forwards that reached the wire and failed

	// Batch intake: batch requests, jobs they carried, and a cumulative
	// batch-size histogram (le buckets, Prometheus-style: each counts
	// batches of size <= its bound).
	Batches    *expvar.Int
	BatchJobs  *expvar.Int
	BatchLe1   *expvar.Int
	BatchLe4   *expvar.Int
	BatchLe16  *expvar.Int
	BatchLe64  *expvar.Int
	BatchLeInf *expvar.Int
}

func newMetrics() *metrics {
	m := &metrics{vars: new(expvar.Map).Init()}
	for _, v := range []struct {
		name string
		dst  **expvar.Int
	}{
		{"jobs_accepted", &m.JobsAccepted},
		{"jobs_in_flight", &m.JobsInFlight},
		{"jobs_completed", &m.JobsCompleted},
		{"jobs_failed", &m.JobsFailed},
		{"jobs_rejected", &m.JobsRejected},
		{"cache_hits_total", &m.CacheHits},
		{"cache_partials_total", &m.CachePartials},
		{"cache_misses_total", &m.CacheMisses},
		{"evaluations_total", &m.Evaluations},
		{"reschedules_total", &m.Reschedules},
		{"delta_remove_procs_total", &m.DeltaRemoveProcs},
		{"delta_remove_links_total", &m.DeltaRemoveLinks},
		{"delta_exec_factors_total", &m.DeltaExecFactors},
		{"delta_comm_factors_total", &m.DeltaCommFactors},
		{"delta_add_tasks_total", &m.DeltaAddTasks},
		{"delta_add_edges_total", &m.DeltaAddEdges},
		{"store_replays_total", &m.StoreReplays},
		{"store_errors_total", &m.StoreErrors},
		{"forwards_total", &m.Forwards},
		{"idempotent_hits_total", &m.IdempotentHits},
		{"probe_failures_total", &m.ProbeFailures},
		{"failovers_total", &m.Failovers},
		{"adopted_jobs_total", &m.AdoptedJobs},
		{"replicated_jobs_total", &m.ReplicatedJobs},
		{"replication_errors_total", &m.ReplicationErrors},
		{"reconciles_total", &m.Reconciles},
		{"breaker_open_total", &m.BreakerOpens},
		{"breaker_short_circuits_total", &m.BreakerShortCircuits},
		{"forward_errors_total", &m.ForwardErrors},
		{"batches_total", &m.Batches},
		{"batch_jobs_total", &m.BatchJobs},
		{"batch_size_le_1", &m.BatchLe1},
		{"batch_size_le_4", &m.BatchLe4},
		{"batch_size_le_16", &m.BatchLe16},
		{"batch_size_le_64", &m.BatchLe64},
		{"batch_size_le_inf", &m.BatchLeInf},
	} {
		i := new(expvar.Int)
		*v.dst = i
		m.vars.Set(v.name, i)
	}
	return m
}

// observeBatch counts one batch request of n jobs into the totals and
// the cumulative size histogram.
func (m *metrics) observeBatch(n int) {
	m.Batches.Add(1)
	m.BatchJobs.Add(int64(n))
	if n <= 1 {
		m.BatchLe1.Add(1)
	}
	if n <= 4 {
		m.BatchLe4.Add(1)
	}
	if n <= 16 {
		m.BatchLe16.Add(1)
	}
	if n <= 64 {
		m.BatchLe64.Add(1)
	}
	m.BatchLeInf.Add(1)
}

// observeDelta counts one accepted reschedule and its delta's operations
// by kind.
func (m *metrics) observeDelta(d sched.Delta) {
	m.Reschedules.Add(1)
	m.DeltaRemoveProcs.Add(int64(len(d.RemoveProcs())))
	m.DeltaRemoveLinks.Add(int64(len(d.RemoveLinks())))
	m.DeltaExecFactors.Add(int64(len(d.ExecFactors())))
	m.DeltaCommFactors.Add(int64(len(d.CommFactors())))
	m.DeltaAddTasks.Add(int64(len(d.AddTasks())))
	m.DeltaAddEdges.Add(int64(len(d.AddEdges())))
}

// observe folds one finished result into the aggregate counters.
func (m *metrics) observe(res *sched.Result) {
	if res == nil {
		return
	}
	m.Evaluations.Add(int64(res.Stats.Get("evaluations")))
	if tr, ok := res.BSA(); ok {
		m.CacheHits.Add(int64(tr.CacheHits))
		m.CachePartials.Add(int64(tr.CachePartials))
		m.CacheMisses.Add(int64(tr.CacheMisses))
	}
}
