package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/sched/service"
)

// In-process replica-tier tests: real listeners, real forwarding, three
// Servers sharing nothing but their member configuration. The process-
// level (SIGKILL) variant lives in tests/cluster_e2e_test.go.

// testNode is one in-process replica.
type testNode struct {
	srv    *service.Server
	client *service.Client
	addr   string
	stop   func() // idempotent; kills the listener (simulated node death)
}

// newTestCluster boots n replicas on kernel-picked loopback ports, each
// configured with the full member set. Servers are drained at test end.
func newTestCluster(t *testing.T, n int, cfg service.Config) []*testNode {
	t.Helper()
	registerFixtures()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		c := cfg
		c.Self = addrs[i]
		c.Peers = nil
		for j, a := range addrs {
			if j != i {
				c.Peers = append(c.Peers, a)
			}
		}
		srv := service.New(c)
		hs := &http.Server{Handler: srv}
		go hs.Serve(lns[i]) //nolint:errcheck
		stopped := false
		node := &testNode{
			srv:    srv,
			client: service.NewClient("http://"+addrs[i], nil),
			addr:   addrs[i],
		}
		node.stop = func() {
			if !stopped {
				stopped = true
				hs.Close()
			}
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Drain(ctx); err != nil {
				t.Errorf("drain %s: %v", addrs[i], err)
			}
			node.stop()
		})
		nodes[i] = node
	}
	return nodes
}

// tokenByAddr maps advertised addresses to node tokens via /v1/cluster.
func tokenByAddr(t *testing.T, node *testNode) map[string]string {
	t.Helper()
	view, err := node.client.Cluster(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(view.Nodes))
	for _, n := range view.Nodes {
		out[n.Addr] = n.Token
	}
	return out
}

// jobOwnerToken extracts the owner token a job ID carries.
func jobOwnerToken(id string) string {
	tok, _, _ := strings.Cut(id, ".")
	return tok
}

// TestClusterKeyedSubmissionRouting: keyed jobs submitted through one
// replica land on their hash owner (the ID carries the owner's token),
// spread across the ring, and remain reachable through any replica.
func TestClusterKeyedSubmissionRouting(t *testing.T) {
	nodes := newTestCluster(t, 3, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	const jobs = 12
	owners := make(map[string]int) // owner token -> jobs routed there
	ids := make([]string, 0, jobs)
	for i := range jobs {
		req := paperRequest(t)
		req.Seed = int64(i)
		req.IdempotencyKey = fmt.Sprintf("route-%d", i)
		v, err := nodes[0].client.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		owners[jobOwnerToken(v.ID)]++
		ids = append(ids, v.ID)
	}
	if len(owners) < 2 {
		t.Errorf("12 keys all hashed to one owner: %v", owners)
	}

	// Every job is visible — and waitable — through a replica that does
	// not own it (transparent forwarding).
	for _, id := range ids {
		done, err := nodes[1].client.Wait(ctx, id, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s via node 1: %v", id, err)
		}
		if done.Status != service.JobDone {
			t.Fatalf("job %s: %q (%v)", id, done.Status, done.Error)
		}
	}

	// A keyless submission stays on the replica that received it.
	keyless, err := nodes[2].client.Submit(ctx, paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	selfToken := tokenByAddr(t, nodes[2])[nodes[2].addr]
	if got := jobOwnerToken(keyless.ID); got != selfToken {
		t.Errorf("keyless job owner token %q, want receiving node's %q", got, selfToken)
	}

	// Forwarding actually happened somewhere.
	var forwards int64
	for _, node := range nodes {
		m, err := node.client.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		forwards += m["forwards_total"]
	}
	if forwards == 0 {
		t.Error("forwards_total = 0 across the cluster; routing never forwarded")
	}
}

// TestClusterIdempotencyAcrossReplicas: resubmitting a key through ANY
// replica returns the original job — the key hashes to one owner no
// matter where the duplicate lands.
func TestClusterIdempotencyAcrossReplicas(t *testing.T) {
	nodes := newTestCluster(t, 3, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	req := paperRequest(t)
	req.IdempotencyKey = "shared-key"
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := post(t, "http://"+nodes[0].addr, "/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: http %d\n%s", resp.StatusCode, data)
	}
	var first service.JobView
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}

	for i, node := range nodes {
		resp, data := post(t, "http://"+node.addr, "/v1/jobs", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("duplicate via node %d: http %d, want 200\n%s", i, resp.StatusCode, data)
		}
		var dup service.JobView
		if err := json.Unmarshal(data, &dup); err != nil {
			t.Fatal(err)
		}
		if dup.ID != first.ID {
			t.Errorf("duplicate via node %d returned %q, want %q", i, dup.ID, first.ID)
		}
	}
	if _, err := nodes[2].client.Wait(ctx, first.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

// TestClusterView: every replica reports the full healthy member set,
// and a single-node server answers with the synthetic local row.
func TestClusterView(t *testing.T) {
	nodes := newTestCluster(t, 3, service.Config{Workers: 1})
	ctx := context.Background()

	view, err := nodes[0].client.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Nodes) != 3 {
		t.Fatalf("cluster view has %d nodes, want 3", len(view.Nodes))
	}
	selfRows := 0
	for _, n := range view.Nodes {
		if !n.Healthy {
			t.Errorf("node %s (%s) unhealthy in a fully-live cluster", n.Token, n.Addr)
		}
		if n.Self {
			selfRows++
			if n.Token != view.Self {
				t.Errorf("self row token %q != view.Self %q", n.Token, view.Self)
			}
			if n.Addr != nodes[0].addr {
				t.Errorf("self row addr %q, want %q", n.Addr, nodes[0].addr)
			}
		}
	}
	if selfRows != 1 {
		t.Errorf("%d self rows, want 1", selfRows)
	}

	// Single-node topology: the synthetic view.
	_, single, _ := newTestService(t, service.Config{Workers: 1})
	sv, err := single.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Self != "local" || len(sv.Nodes) != 1 || !sv.Nodes[0].Self || !sv.Nodes[0].Healthy {
		t.Errorf("single-node cluster view = %+v", sv)
	}
}

// TestClusterBatchSplitsByOwner: one batch through one replica fans its
// keyed jobs out to their owners as sub-batches; results are identical
// to a single-node run of the same problems.
func TestClusterBatchSplitsByOwner(t *testing.T) {
	nodes := newTestCluster(t, 3, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	base := paperRequest(t)
	batch := service.BatchRequest{Graph: base.Graph, System: base.System}
	const jobs = 9
	for i := range jobs {
		batch.Jobs = append(batch.Jobs, service.ScheduleRequest{
			Seed: int64(i), IdempotencyKey: fmt.Sprintf("batch-%d", i),
		})
	}
	resp, err := nodes[0].client.SubmitBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) != jobs {
		t.Fatalf("batch returned %d items, want %d", len(resp.Jobs), jobs)
	}
	owners := make(map[string]int)
	for i, item := range resp.Jobs {
		if item.Error != nil || item.Job == nil {
			t.Fatalf("item %d rejected: %+v", i, item.Error)
		}
		owners[jobOwnerToken(item.Job.ID)]++
	}
	if len(owners) < 2 {
		t.Errorf("batch jobs all landed on one owner: %v", owners)
	}

	// Byte-identity survives the fan-out: each job matches the library
	// run for its seed, regardless of which replica computed it.
	for i, item := range resp.Jobs {
		done, err := nodes[2].client.Wait(ctx, item.Job.ID, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", item.Job.ID, err)
		}
		if done.Status != service.JobDone {
			t.Fatalf("batch job %d: %q (%v)", i, done.Status, done.Error)
		}
		want, _ := paperReference(t, "bsa", int64(i))
		if !compactEqual(t, done.Result.Schedule, want) {
			t.Errorf("batch job %d schedule differs from the library's (seed %d)", i, i)
		}
	}
}

func compactEqual(t *testing.T, a, b []byte) bool {
	t.Helper()
	return string(compact(t, a)) == string(compact(t, b))
}

// TestClusterWatchForwarded: the SSE stream survives the forwarding hop
// — watching a job through a replica that does not own it still delivers
// the terminal view.
func TestClusterWatchForwarded(t *testing.T) {
	nodes := newTestCluster(t, 2, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	selfToken := tokenByAddr(t, nodes[0])[nodes[0].addr]
	var remote *service.JobView
	for i := range 32 {
		req := paperRequest(t)
		req.IdempotencyKey = fmt.Sprintf("watch-%d", i)
		v, err := nodes[0].client.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if jobOwnerToken(v.ID) != selfToken {
			remote = v
			break
		}
	}
	if remote == nil {
		t.Fatal("32 keys never hashed to the peer; ring looks degenerate")
	}
	final, err := nodes[0].client.Watch(ctx, remote.ID, nil)
	if err != nil {
		t.Fatalf("watch forwarded job: %v", err)
	}
	if final.Status != service.JobDone || final.Result == nil {
		t.Fatalf("forwarded watch final view = %+v", final)
	}
}

// TestClusterBatchOwnerErrorPropagated: an owner that is reachable but
// answers a forwarded sub-batch with a top-level typed error (here a
// draining replica's 503 shutting_down) has that exact code passed
// through to each of its items — not mislabeled upstream_unavailable,
// which is reserved for owners we could not get an answer from.
func TestClusterBatchOwnerErrorPropagated(t *testing.T) {
	registerFixtures()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// A stub "draining owner": answers every request with the envelope a
	// real draining replica sends.
	stubLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stub := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, `{"error":{"code":%q,"message":"server is draining"}}`, service.CodeShuttingDown)
	})}
	go stub.Serve(stubLn) //nolint:errcheck
	defer stub.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Config{Workers: 2, Self: ln.Addr().String(), Peers: []string{stubLn.Addr().String()}})
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck
	defer hs.Close()
	defer func() {
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	client := service.NewClient("http://"+ln.Addr().String(), nil)

	// Enough keyed jobs that both ring tokens own some.
	var batch service.BatchRequest
	for i := range 16 {
		req := paperRequest(t)
		req.IdempotencyKey = fmt.Sprintf("prop-%d", i)
		batch.Jobs = append(batch.Jobs, req)
	}
	resp, err := client.SubmitBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	accepted, drainingHits := 0, 0
	for i, item := range resp.Jobs {
		switch {
		case item.Job != nil:
			accepted++
		case item.Error != nil && item.Error.Code == service.CodeShuttingDown:
			drainingHits++
		default:
			t.Errorf("item %d: error %+v, want the owner's shutting_down passed through", i, item.Error)
		}
	}
	if accepted == 0 || drainingHits == 0 {
		t.Errorf("accepted=%d drainingHits=%d; 16 keys never split across both owners", accepted, drainingHits)
	}
}

// TestClusterDeadOwner: requests owned by an unreachable replica fail
// fast with 502 upstream_unavailable, and the cluster view marks the
// node unhealthy — while jobs owned by the survivors keep completing.
func TestClusterDeadOwner(t *testing.T) {
	nodes := newTestCluster(t, 3, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	deadToken := tokenByAddr(t, nodes[0])[nodes[2].addr]
	nodes[2].stop()

	sawDead := false
	for i := range 48 {
		req := paperRequest(t)
		req.IdempotencyKey = fmt.Sprintf("dead-%d", i)
		v, err := nodes[0].client.Submit(ctx, req)
		if err != nil {
			wantAPIError(t, err, http.StatusBadGateway, service.CodeUpstreamUnavailable)
			sawDead = true
			continue
		}
		// Survivor-owned: must still complete normally.
		done, werr := nodes[1].client.Wait(ctx, v.ID, 5*time.Millisecond)
		if werr != nil {
			t.Fatalf("wait %s: %v", v.ID, werr)
		}
		if done.Status != service.JobDone {
			t.Fatalf("survivor job %s: %q (%v)", v.ID, done.Status, done.Error)
		}
	}
	if !sawDead {
		t.Error("48 keys never hashed to the dead node; 502 path untested")
	}

	// Status lookups routed at the dead owner fail the same way.
	_, err := nodes[0].client.Job(ctx, deadToken+".j1")
	wantAPIError(t, err, http.StatusBadGateway, service.CodeUpstreamUnavailable)

	// The health probe notices.
	view, err := nodes[0].client.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range view.Nodes {
		if n.Token == deadToken && n.Healthy {
			t.Error("dead node still reported healthy")
		}
	}
}
