package service

import (
	"context"
	"sync"
	"time"
)

// Failure-detector verdicts for a peer, as reported in NodeView.State.
const (
	peerAlive   = "alive"
	peerSuspect = "suspect" // missed probes, not yet declared dead
	peerDead    = "dead"
)

// peerState is the detector's view of one peer.
type peerState struct {
	addr     string
	misses   int
	status   string
	inflight bool // a probe for this peer is currently running
}

// detector is the background failure detector driving failover: it
// probes every peer's /healthz on a fixed interval and escalates K
// consecutive misses alive → suspect → dead. Transitions into and out
// of dead invoke the server's failover hooks (adopt replicated jobs /
// reconcile with the returned owner). Probes bypass the circuit
// breakers on purpose — the detector is how a dead verdict gets
// revisited, so it must keep looking at peers nobody else talks to.
type detector struct {
	s     *Server
	mu    sync.Mutex
	peers map[string]*peerState // token -> state
	stop  chan struct{}
	once  sync.Once
}

func newDetector(s *Server) *detector {
	d := &detector{s: s, peers: make(map[string]*peerState), stop: make(chan struct{})}
	for _, token := range s.cluster.tokens() {
		if token == s.cluster.selfToken {
			continue
		}
		addr, _ := s.cluster.addrOf(token)
		d.peers[token] = &peerState{addr: addr, status: peerAlive}
	}
	return d
}

func (d *detector) run() {
	t := time.NewTicker(d.s.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.tick()
		case <-d.stop:
			return
		}
	}
}

// tick launches one probe per peer that has none in flight. Probes run
// concurrently and report back asynchronously, so one slow peer never
// delays the verdict on another.
func (d *detector) tick() {
	d.mu.Lock()
	for token, p := range d.peers {
		if p.inflight {
			continue
		}
		p.inflight = true
		go func(token, addr string) {
			ctx, cancel := context.WithTimeout(context.Background(), d.s.cfg.ProbeTimeout)
			ok := d.s.probe(ctx, addr)
			cancel()
			d.report(token, ok)
		}(token, p.addr)
	}
	d.mu.Unlock()
}

// report folds one probe outcome into the peer's state, firing the
// server's failover hooks on transitions into and out of dead. The
// hooks run outside the detector lock — adoption enqueues jobs and
// reconciliation sends HTTP, neither of which may block probing.
func (d *detector) report(token string, ok bool) {
	d.mu.Lock()
	p, present := d.peers[token]
	if !present {
		d.mu.Unlock()
		return
	}
	p.inflight = false
	var died, recovered bool
	if ok {
		recovered = p.status == peerDead
		p.misses = 0
		p.status = peerAlive
	} else {
		p.misses++
		d.s.metrics.ProbeFailures.Add(1)
		if p.misses >= d.s.cfg.ProbeMisses {
			died = p.status != peerDead
			p.status = peerDead
		} else if p.status != peerDead {
			p.status = peerSuspect
		}
	}
	d.mu.Unlock()
	if died {
		d.s.onPeerDead(token)
	}
	if recovered {
		d.s.onPeerRecovered(token)
	}
}

// dead reports whether the detector currently considers token dead.
func (d *detector) dead(token string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.peers[token]
	return ok && p.status == peerDead
}

// stateOf returns the detector's verdict on token ("" for unknown
// tokens, self included — the caller renders those itself).
func (d *detector) stateOf(token string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.peers[token]; ok {
		return p.status
	}
	return ""
}

func (d *detector) close() {
	d.once.Do(func() { close(d.stop) })
}
