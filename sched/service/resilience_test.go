package service_test

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/sched/service"
)

// Resilience tests: store-failure surfacing, client retry under
// transient faults, SSE reconnection, and in-process owner failover.
// The process-level (SIGKILL) and chaos-rate variants live in tests/.

// flakyTransport fails the first n round trips with a transport error,
// then delegates — the deterministic "connection refused mid-poll"
// fixture.
type flakyTransport struct {
	base      http.RoundTripper
	remaining atomic.Int32
	failures  atomic.Int32
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.remaining.Add(-1) >= 0 {
		f.failures.Add(1)
		return nil, &url.Error{Op: "Get", URL: req.URL.String(), Err: errors.New("connection refused (injected)")}
	}
	return f.base.RoundTrip(req)
}

// TestSubmitStoreUnavailable pins the WAL-error contract: when the
// store rejects the accept-path write, the client gets a typed 503
// store_unavailable with Retry-After — never a 202 for a job that was
// not durably recorded — and the very next submission succeeds.
func TestSubmitStoreUnavailable(t *testing.T) {
	fs := service.NewFaultyStore(service.NewMemStore(), 1)
	_, client, _ := newTestService(t, service.Config{Workers: 2, Store: fs})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	fs.FailNext(1)
	req := paperRequest(t)
	req.IdempotencyKey = "disk-1"
	_, err := client.Submit(ctx, req)
	wantAPIError(t, err, http.StatusServiceUnavailable, service.CodeStoreUnavailable)
	var apiErr *service.APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfter <= 0 {
		t.Errorf("503 store_unavailable carried no Retry-After (got %v)", apiErr.RetryAfter)
	}
	if n := fs.Len(); n != 0 {
		t.Fatalf("store holds %d records after a failed accept, want 0 (ack-then-lose)", n)
	}
	if got := fs.Injected(); got != 1 {
		t.Fatalf("injected = %d, want 1", got)
	}

	// The fault was one-shot: the retried submission must land.
	v, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit after transient store fault: %v", err)
	}
	if _, err := client.Wait(ctx, v.ID, 0); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

// TestSubmitStoreUnavailableWAL runs the same contract against a real
// WAL underneath the fault injector: a failed append surfaces as 503
// and the log replays cleanly afterwards.
func TestSubmitStoreUnavailableWAL(t *testing.T) {
	wal, err := service.OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := service.NewFaultyStore(wal, 1)
	_, client, _ := newTestService(t, service.Config{Workers: 2, Store: fs})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	fs.FailNext(1)
	req := paperRequest(t)
	req.IdempotencyKey = "disk-wal-1"
	_, err = client.Submit(ctx, req)
	wantAPIError(t, err, http.StatusServiceUnavailable, service.CodeStoreUnavailable)

	v, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit after transient WAL fault: %v", err)
	}
	if _, err := client.Wait(ctx, v.ID, 0); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

// TestWaitRetriesTransientTransport: a retry-policy client absorbs
// connection-level failures mid-poll; the same faults fail a plain
// client on the spot.
func TestWaitRetriesTransientTransport(t *testing.T) {
	_, client, baseURL := newTestService(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	v, err := client.Submit(ctx, paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}

	// Plain client: the injected failure surfaces immediately.
	plainFT := &flakyTransport{base: http.DefaultTransport}
	plainFT.remaining.Store(1)
	plain := service.NewClient(baseURL, &http.Client{Transport: plainFT})
	if _, err := plain.Job(ctx, v.ID); err == nil {
		t.Fatal("plain client absorbed a transport failure")
	}

	// Retry client: two consecutive refusals are within budget.
	ft := &flakyTransport{base: http.DefaultTransport}
	ft.remaining.Store(2)
	retry := service.NewClient(baseURL, &http.Client{Transport: ft}).WithRetry(service.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	})
	final, err := retry.Wait(ctx, v.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait through transient failures: %v", err)
	}
	if final.Status != service.JobDone {
		t.Fatalf("status = %q, want done", final.Status)
	}
	if got := ft.failures.Load(); got != 2 {
		t.Errorf("injected failures consumed = %d, want 2", got)
	}
}

// TestRetryHonorsContextDeadline: with the server answering nothing but
// 503 + Retry-After, the client's backoff must yield to the caller's
// deadline instead of sleeping through it.
func TestRetryHonorsContextDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":{"code":"queue_full","message":"always full"}}`)
	}))
	defer ts.Close()

	client := service.NewClient(ts.URL, nil).WithRetry(service.RetryPolicy{MaxAttempts: 10})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Job(ctx, "x")
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
	// 9 retries at the 1s Retry-After floor would take ~9s; the deadline
	// must cut the backoff short.
	if elapsed > 2*time.Second {
		t.Fatalf("deadline ignored: returned after %v", elapsed)
	}
}

// TestWatchReconnectResumesFromLastEventID: when the SSE stream is cut
// mid-job, a retry-policy client reconnects with Last-Event-ID and the
// server resumes from the next transition — no view delivered twice.
func TestWatchReconnectResumesFromLastEventID(t *testing.T) {
	_, client, baseURL := newTestService(t, service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	gate := armGate()
	req := paperRequest(t)
	req.Algo = "testgate"
	v, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// The proxy passes everything through, except that the FIRST /events
	// stream is killed right after its first complete event — the
	// injected mid-stream cut.
	target, err := url.Parse(baseURL)
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(target)
	var eventConns atomic.Int32
	var resumeID atomic.Value // Last-Event-ID of the reconnect
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/events") {
			rp.ServeHTTP(w, r)
			return
		}
		n := eventConns.Add(1)
		if n > 1 {
			resumeID.Store(r.Header.Get("Last-Event-ID"))
			rp.ServeHTTP(w, r)
			return
		}
		preq, err := http.NewRequestWithContext(r.Context(), http.MethodGet, baseURL+r.URL.Path, nil)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		resp, err := http.DefaultTransport.RoundTrip(preq)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		fl, _ := w.(http.Flusher)
		br := bufio.NewReader(resp.Body)
		for {
			line, err := br.ReadString('\n')
			if line != "" {
				io.WriteString(w, line)
				if fl != nil {
					fl.Flush()
				}
			}
			if err != nil {
				return
			}
			if line == "\n" {
				panic(http.ErrAbortHandler) // one full event out, cut the stream
			}
		}
	}))
	defer proxy.Close()

	watcher := service.NewClient(proxy.URL, nil).WithRetry(service.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
	})
	var mu sync.Mutex
	var seen []service.JobStatus
	done := make(chan error, 1)
	var final *service.JobView
	go func() {
		var werr error
		final, werr = watcher.Watch(ctx, v.ID, func(jv *service.JobView) {
			mu.Lock()
			seen = append(seen, jv.Status)
			mu.Unlock()
		})
		done <- werr
	}()

	// Hold the job open until the watcher is on its second connection,
	// so the terminal event can only arrive through the resumed stream.
	for eventConns.Load() < 2 {
		select {
		case err := <-done:
			t.Fatalf("watch returned before reconnecting: %v", err)
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("watch: %v", err)
	}
	if final == nil || final.Status != service.JobDone {
		t.Fatalf("final view = %+v, want done", final)
	}

	got, _ := resumeID.Load().(string)
	if got == "" {
		t.Error("reconnect carried no Last-Event-ID")
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(seen); i++ {
		if seen[i] == seen[i-1] {
			t.Fatalf("duplicate view delivered across reconnect: %v", seen)
		}
	}
	if len(seen) == 0 || seen[len(seen)-1] != service.JobDone {
		t.Fatalf("views = %v, want trailing done", seen)
	}
}

// TestClusterFailoverAdoptsDeadOwnersJobs is the in-process tentpole
// check: with -replicas 2 semantics, killing one replica mid-backlog
// loses nothing — the dead owner's replicated pending jobs are adopted
// by its ring successor, re-run byte-identically, and served without a
// single 502.
func TestClusterFailoverAdoptsDeadOwnersJobs(t *testing.T) {
	nodes := newTestCluster(t, 3, service.Config{
		Workers:       2,
		Replicas:      2,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		ProbeMisses:   2,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	gate := armGate()
	const jobs = 18
	type accepted struct {
		id   string
		seed int64
	}
	var all []accepted
	for i := range jobs {
		req := paperRequest(t)
		req.Algo = "testgate" // block on the gate: a real mid-backlog kill
		req.Seed = int64(i%5 + 1)
		req.IdempotencyKey = fmt.Sprintf("fo-%d", i)
		v, err := nodes[0].client.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		all = append(all, accepted{id: v.ID, seed: req.Seed})
	}

	// Pick a victim that is NOT the entry node and owns part of the
	// backlog. With 18 keys over 3 replicas each member owns some.
	tokens := tokenByAddr(t, nodes[0])
	victim := -1
	for i := 1; i < len(nodes); i++ {
		tok := tokens[nodes[i].addr]
		for _, a := range all {
			if jobOwnerToken(a.id) == tok {
				victim = i
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Fatal("no non-entry node owns any job; ring split degenerate")
	}
	victimAddr := nodes[victim].addr
	victimToken := tokens[victimAddr]
	var victimJobs int
	for _, a := range all {
		if jobOwnerToken(a.id) == victimToken {
			victimJobs++
		}
	}
	nodes[victim].stop()

	// Wait for the survivors' failure detectors to declare it dead.
	deadline := time.Now().Add(30 * time.Second)
	for {
		view, err := nodes[0].client.Cluster(ctx)
		if err != nil {
			t.Fatalf("cluster view: %v", err)
		}
		dead := false
		for _, n := range view.Nodes {
			if n.Addr == victimAddr && n.State == "dead" {
				dead = true
			}
		}
		if dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never declared dead")
		}
		time.Sleep(25 * time.Millisecond)
	}

	close(gate)

	// Every accepted job — the dead owner's included — must reach a
	// terminal state with the schedule bytes the single-node library
	// produces, through a client with NO retry policy: zero 502s.
	for _, a := range all {
		final, err := nodes[0].client.Wait(ctx, a.id, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s (owner %s, victim %s): %v", a.id, jobOwnerToken(a.id), victimToken, err)
		}
		if final.Status != service.JobDone || final.Result == nil {
			t.Fatalf("job %s = %+v, want done", a.id, final)
		}
		wantSched, wantMakespan := paperReference(t, "bsa", a.seed)
		if final.Result.Makespan != wantMakespan {
			t.Errorf("job %s makespan = %v, want %v", a.id, final.Result.Makespan, wantMakespan)
		}
		if !bytes.Equal(compact(t, final.Result.Schedule), compact(t, wantSched)) {
			t.Errorf("job %s schedule bytes diverged from the single-node run", a.id)
		}
	}

	// The failover left its fingerprints in the survivors' metrics.
	var failovers, adopted, replicated int64
	for i, n := range nodes {
		if i == victim {
			continue
		}
		m, err := n.client.Metrics(ctx)
		if err != nil {
			t.Fatalf("metrics %s: %v", n.addr, err)
		}
		failovers += m["failovers_total"]
		adopted += m["adopted_jobs_total"]
		replicated += m["replicated_jobs_total"]
	}
	if failovers < 1 {
		t.Errorf("failovers_total = %d, want >= 1", failovers)
	}
	if adopted < int64(victimJobs) {
		t.Errorf("adopted_jobs_total = %d, want >= %d (the victim's backlog)", adopted, victimJobs)
	}
	// Accept-time replication is synchronous, so every job the survivors
	// own was replicated before its 202. (The victim's own counter died
	// with it, and finish-time replication may still be in flight.)
	if replicated < int64(jobs-victimJobs) {
		t.Errorf("replicated_jobs_total = %d, want >= %d", replicated, jobs-victimJobs)
	}
}
