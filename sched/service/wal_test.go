package service_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/sched/service"
)

// Behavior specific to the WAL store beyond the conformance suite:
// reboot fidelity, crash tolerance (torn tail, no Close), and log
// compaction.

func openWAL(t *testing.T, dir string) *service.WALStore {
	t.Helper()
	w, err := service.OpenWAL(dir)
	if err != nil {
		t.Fatalf("open wal %s: %v", dir, err)
	}
	return w
}

func TestWALReopenAfterClose(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	if err := w.Put(queuedRec("j1", "alpha")); err != nil {
		t.Fatal(err)
	}
	if err := w.Put(queuedRec("j2", "")); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(doneRec("j1", "alpha", storeEpoch)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent, and a closed store rejects writes.
	if err := w.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if err := w.Put(queuedRec("j3", "")); err == nil {
		t.Error("put on a closed store succeeded")
	}

	// A clean shutdown compacts: the next boot reads the snapshot alone.
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Errorf("wal.log after close: size %v, err %v (want empty)", fi, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Errorf("snapshot.json missing after close: %v", err)
	}

	w2 := openWAL(t, dir)
	defer w2.Close()
	done, ok := w2.Get("j1")
	if !ok || done.Status != service.JobDone || done.Result == nil || done.Result.Makespan != 42 {
		t.Fatalf("j1 after reopen = %+v, %v", done, ok)
	}
	if rec, ok := w2.ByKey("alpha"); !ok || rec.ID != "j1" {
		t.Errorf("key index not rebuilt: %+v, %v", rec, ok)
	}
	if pending, ok := w2.Get("j2"); !ok || pending.Status != service.JobQueued {
		t.Errorf("pending j2 after reopen = %+v, %v", pending, ok)
	}
	if w2.Dir() != dir {
		t.Errorf("dir = %q, want %q", w2.Dir(), dir)
	}
}

// TestWALReopenWithoutClose is the SIGKILL shape: the first store is
// abandoned mid-life — no Close, no final compaction — and a fresh open
// of the same directory must still see every completed operation,
// because appends reach the file before the operation returns.
func TestWALReopenWithoutClose(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	if err := w.Put(queuedRec("j1", "")); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(doneRec("j1", "", storeEpoch)); err != nil {
		t.Fatal(err)
	}
	if err := w.Put(queuedRec("j2", "")); err != nil {
		t.Fatal(err)
	}
	// No Close: the dead process's state is whatever hit wal.log.

	w2 := openWAL(t, dir)
	defer w2.Close()
	if rec, ok := w2.Get("j1"); !ok || rec.Status != service.JobDone {
		t.Errorf("j1 = %+v, %v", rec, ok)
	}
	if rec, ok := w2.Get("j2"); !ok || rec.Status != service.JobQueued {
		t.Errorf("j2 = %+v, %v", rec, ok)
	}
}

// TestWALTornTailTruncated: a crash mid-append leaves a final line that
// does not parse. Opening the store must drop the torn operation (and
// anything after it), truncate the file back to the last good line, and
// serve everything before it.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	if err := w.Put(queuedRec("j1", "")); err != nil {
		t.Fatal(err)
	}
	if err := w.Put(queuedRec("j2", "")); err != nil {
		t.Fatal(err)
	}
	// Abandon w (crash) and tear the tail by hand.
	logPath := filepath.Join(dir, "wal.log")
	good, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","rec":{"id":"torn","stat`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2 := openWAL(t, dir)
	defer w2.Close()
	if w2.Len() != 2 {
		t.Errorf("len = %d after torn-tail recovery, want 2", w2.Len())
	}
	if _, ok := w2.Get("torn"); ok {
		t.Error("torn record materialized")
	}
	if fi, err := os.Stat(logPath); err != nil {
		t.Fatal(err)
	} else if fi.Size() != good.Size() {
		t.Errorf("log size %d, want truncated back to %d", fi.Size(), good.Size())
	}

	// The recovered store keeps working — the truncated tail does not
	// poison later appends.
	if err := w2.Put(queuedRec("j3", "")); err != nil {
		t.Fatal(err)
	}
	w3 := openWAL(t, dir)
	defer w3.Close()
	if w3.Len() != 3 {
		t.Errorf("len = %d after post-recovery append and reopen, want 3", w3.Len())
	}
}

// TestWALCompaction drives the ops threshold down so a handful of writes
// trigger a fold into snapshot.json, then checks both the on-disk shape
// and that a reboot from the compacted state is lossless.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	w.CompactEvery(4)
	const n = 5
	for i := range n {
		if err := w.Put(queuedRec(fmt.Sprintf("j%d", i), "")); err != nil {
			t.Fatal(err)
		}
	}
	// 5 puts with a threshold of 4: one compaction fired, one op remains
	// in the log.
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("snapshot.json missing after threshold: %v", err)
	}
	logData, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := countLines(logData); lines != 1 {
		t.Errorf("wal.log holds %d ops after compaction, want 1", lines)
	}

	// Evictions and sweeps must survive compaction too — fold state, not
	// history.
	w.Evict("j0")
	for i := 1; i < n; i++ {
		if err := w.Finish(doneRec(fmt.Sprintf("j%d", i), "", storeEpoch)); err != nil {
			t.Fatal(err)
		}
	}
	w.Sweep(storeEpoch.Add(time.Hour), time.Minute)
	if w.Len() != 0 {
		t.Fatalf("len = %d after sweep, want 0", w.Len())
	}
	// Abandon without Close: the reboot must replay to the same emptiness.
	w2 := openWAL(t, dir)
	defer w2.Close()
	if w2.Len() != 0 {
		t.Errorf("len = %d after reopen, want 0 (evictions lost in compaction?)", w2.Len())
	}
}

// TestWALInterruptedCompactionRecovered: a crash between log rotation
// and snapshot install leaves wal.old.log beside a younger wal.log.
// Boot must replay old-then-new on top of the snapshot, fold the result
// into a fresh snapshot, and retire wal.old.log.
func TestWALInterruptedCompactionRecovered(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	if err := w.Put(queuedRec("j1", "alpha")); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(doneRec("j1", "alpha", storeEpoch)); err != nil {
		t.Fatal(err)
	}
	if err := w.Put(queuedRec("j2", "")); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window by hand: the live log is rotated aside,
	// a fresh log holds the ops that landed after rotation, and no new
	// snapshot was installed.
	if err := os.Rename(filepath.Join(dir, "wal.log"), filepath.Join(dir, "wal.old.log")); err != nil {
		t.Fatal(err)
	}
	post := `{"op":"put","rec":{"id":"j3","kind":"schedule","algo":"bsa","status":"queued","request":{"seed":1},"created_at":"2026-08-08T12:00:00Z"}}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), []byte(post), 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, dir)
	defer w2.Close()
	if rec, ok := w2.Get("j1"); !ok || rec.Status != service.JobDone {
		t.Errorf("j1 from old log = %+v, %v", rec, ok)
	}
	if rec, ok := w2.Get("j2"); !ok || rec.Status != service.JobQueued {
		t.Errorf("j2 from old log = %+v, %v", rec, ok)
	}
	if rec, ok := w2.Get("j3"); !ok || rec.Status != service.JobQueued {
		t.Errorf("j3 from post-rotation log = %+v, %v", rec, ok)
	}
	if rec, ok := w2.ByKey("alpha"); !ok || rec.ID != "j1" {
		t.Errorf("key index after recovery = %+v, %v", rec, ok)
	}
	// The boot completed the interrupted compaction: the old log is
	// retired and everything lives in the snapshot.
	if _, err := os.Stat(filepath.Join(dir, "wal.old.log")); !os.IsNotExist(err) {
		t.Errorf("wal.old.log still present after recovery (err=%v)", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Errorf("wal.log after recovery compaction: %v, %v (want empty)", fi, err)
	}

	// And a third boot from the folded state sees the same records.
	w2.Close()
	w3 := openWAL(t, dir)
	defer w3.Close()
	if w3.Len() != 3 {
		t.Errorf("len = %d after recovery and reboot, want 3", w3.Len())
	}
}

func countLines(data []byte) int {
	n := 0
	for _, b := range data {
		if b == '\n' {
			n++
		}
	}
	return n
}
