package sched_test

import (
	"bytes"
	"testing"

	"repro/sched"
)

// FuzzDeltaFromJSON asserts the Delta interchange loader's contract on
// arbitrary input: it never panics, and any document it accepts
// round-trips through the canonical save with a fixpoint on the second
// pass (load(save(load(x))) succeeds and saves identically).
func FuzzDeltaFromJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"remove_procs":["P4"]}`))
	f.Add([]byte(`{"remove_links":[{"a":"P1","b":"P2"}],"exec_factors":[{"task":"a","proc":"P2","factor":2.5}]}`))
	f.Add([]byte(`{"comm_factors":[{"from":"a","to":"b","link_a":"P2","link_b":"P3","factor":0.5}]}`))
	f.Add([]byte(`{"add_tasks":[{"name":"e","cost":15}],"add_edges":[{"from":"d","to":"e","cost":5}]}`))
	f.Add([]byte(`{"remove_procs":["P1","P1"]}`))
	f.Add([]byte(`{"exec_factors":[{"task":"a","proc":"P1","factor":0}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := sched.DeltaFromJSON(data)
		if err != nil {
			return
		}
		var s1 bytes.Buffer
		if err := d.WriteJSON(&s1); err != nil {
			t.Fatalf("save(load(x)): %v", err)
		}
		d2, err := sched.DeltaFromJSON(s1.Bytes())
		if err != nil {
			t.Fatalf("load(save(load(x))) rejected canonical output: %v\ninput: %q\ncanonical: %q", err, data, s1.Bytes())
		}
		var s2 bytes.Buffer
		if err := d2.WriteJSON(&s2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
			t.Fatalf("canonical JSON is not a fixpoint:\nfirst:  %q\nsecond: %q", s1.Bytes(), s2.Bytes())
		}
		if d2.NumOps() != d.NumOps() {
			t.Fatalf("reload changed op count: %d vs %d", d2.NumOps(), d.NumOps())
		}
	})
}
