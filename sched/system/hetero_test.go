package system

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func ring4(t *testing.T) *Network {
	t.Helper()
	nw, err := Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewUniform(t *testing.T) {
	nw := ring4(t)
	s := NewUniform(nw, 5, 7)
	if err := s.Validate(5, 7); err != nil {
		t.Fatal(err)
	}
	if got := s.ExecFactor(3, 2); got != 1 {
		t.Errorf("ExecFactor=%v, want 1", got)
	}
	if got := s.CommFactor(6, 1); got != 1 {
		t.Errorf("CommFactor=%v, want 1 (nil Comm)", got)
	}
	if got := s.ExecCost(0, 0, 42); got != 42 {
		t.Errorf("ExecCost=%v, want 42", got)
	}
	if got := s.CommCost(0, 0, 13); got != 13 {
		t.Errorf("CommCost=%v, want 13", got)
	}
}

func TestNewRandomRange(t *testing.T) {
	nw := ring4(t)
	rng := rand.New(rand.NewSource(9))
	s, err := NewRandom(nw, 10, 15, 1, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(10, 15); err != nil {
		t.Fatal(err)
	}
	for i := range s.Exec {
		for _, f := range s.Exec[i] {
			if f < 1 || f > 50 {
				t.Fatalf("exec factor %v outside [1,50]", f)
			}
		}
	}
	for i := range s.Comm {
		for _, f := range s.Comm[i] {
			if f < 1 || f > 50 {
				t.Fatalf("comm factor %v outside [1,50]", f)
			}
		}
	}
}

func TestNewRandomErrors(t *testing.T) {
	nw := ring4(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := NewRandom(nw, 1, 1, 0, 50, rng); err == nil {
		t.Error("lo=0 should fail")
	}
	if _, err := NewRandom(nw, 1, 1, 5, 2, rng); err == nil {
		t.Error("hi<lo should fail")
	}
}

func TestNewRandomNormalizedMeanOne(t *testing.T) {
	nw := ring4(t)
	rng := rand.New(rand.NewSource(21))
	for _, hi := range []float64{10, 50, 200} {
		s, err := NewRandomNormalized(nw, 200, 300, 1, hi, rng)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var cnt int
		for i := range s.Exec {
			for _, f := range s.Exec[i] {
				sum += f
				cnt++
				if f <= 0 {
					t.Fatal("non-positive normalized factor")
				}
			}
		}
		mean := sum / float64(cnt)
		if mean < 0.93 || mean > 1.07 {
			t.Errorf("hi=%v: mean exec factor %v, want ~1", hi, mean)
		}
		sum, cnt = 0, 0
		for i := range s.Comm {
			for _, f := range s.Comm[i] {
				sum += f
				cnt++
			}
		}
		mean = sum / float64(cnt)
		if mean < 0.93 || mean > 1.07 {
			t.Errorf("hi=%v: mean comm factor %v, want ~1", hi, mean)
		}
	}
	if _, err := NewRandomNormalized(nw, 1, 1, 0, 50, rng); err == nil {
		t.Error("invalid range should fail")
	}
}

func TestExecCostsOn(t *testing.T) {
	nw := ring4(t)
	s := NewUniform(nw, 3, 0)
	s.Exec[0][1] = 2
	s.Exec[1][1] = 3
	s.Exec[2][1] = 4
	got := s.ExecCostsOn(1, []float64{10, 10, 10})
	want := []float64{20, 30, 40}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExecCostsOn=%v, want %v", got, want)
		}
	}
}

func TestMedianExecFactorCost(t *testing.T) {
	nw := ring4(t) // 4 processors: median = mean of middle two
	s := NewUniform(nw, 2, 0)
	s.Exec[0] = []float64{1, 2, 3, 10}
	s.Exec[1] = []float64{4, 4, 4, 4}
	got := s.MedianExecFactorCost([]float64{10, 100})
	if got[0] != 25 { // median(1,2,3,10)=2.5 * 10
		t.Errorf("median[0]=%v, want 25", got[0])
	}
	if got[1] != 400 {
		t.Errorf("median[1]=%v, want 400", got[1])
	}
}

func TestMedianOddProcessors(t *testing.T) {
	nw, err := Line(3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewUniform(nw, 1, 0)
	s.Exec[0] = []float64{9, 1, 5}
	got := s.MedianExecFactorCost([]float64{2})
	if got[0] != 10 { // median(1,5,9)=5 * 2
		t.Errorf("median=%v, want 10", got[0])
	}
}

func TestValidateErrors(t *testing.T) {
	nw := ring4(t)
	cases := []struct {
		name string
		mut  func(s *System)
		want string
	}{
		{"nil net", func(s *System) { s.Net = nil }, "nil network"},
		{"exec rows", func(s *System) { s.Exec = s.Exec[:1] }, "rows"},
		{"exec cols", func(s *System) { s.Exec[0] = s.Exec[0][:2] }, "cols"},
		{"exec nonpositive", func(s *System) { s.Exec[1][1] = 0 }, "positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewUniform(nw, 3, 2)
			tc.mut(s)
			if err := s.Validate(3, 2); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err=%v, want %q", err, tc.want)
			}
		})
	}
	// Comm matrix errors.
	rng := rand.New(rand.NewSource(2))
	s, _ := NewRandom(nw, 3, 2, 1, 2, rng)
	s.Comm = s.Comm[:1]
	if err := s.Validate(3, 2); err == nil || !strings.Contains(err.Error(), "Comm") {
		t.Errorf("short Comm: %v", err)
	}
	s, _ = NewRandom(nw, 3, 2, 1, 2, rng)
	s.Comm[0][0] = -1
	if err := s.Validate(3, 2); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Errorf("negative comm factor: %v", err)
	}
	s, _ = NewRandom(nw, 3, 2, 1, 2, rng)
	s.Comm[1] = s.Comm[1][:1]
	if err := s.Validate(3, 2); err == nil || !strings.Contains(err.Error(), "cols") {
		t.Errorf("short comm row: %v", err)
	}
}

func TestMedianPropertyBounds(t *testing.T) {
	// Median cost lies within [min, max] actual cost across processors.
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nw, err := Ring(2 + int(nRaw)%8)
		if err != nil {
			return true
		}
		n := 1 + int(nRaw)%10
		s, err := NewRandom(nw, n, 0, 1, 50, rng)
		if err != nil {
			return false
		}
		nominal := make([]float64, n)
		for i := range nominal {
			nominal[i] = 1 + rng.Float64()*100
		}
		med := s.MedianExecFactorCost(nominal)
		for i := 0; i < n; i++ {
			lo, hi := s.ExecCost(i, 0, nominal[i]), s.ExecCost(i, 0, nominal[i])
			for p := 0; p < nw.NumProcs(); p++ {
				c := s.ExecCost(i, ProcID(p), nominal[i])
				if c < lo {
					lo = c
				}
				if c > hi {
					hi = c
				}
			}
			if med[i] < lo-1e-9 || med[i] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
