package system

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

type networkJSON struct {
	Procs []string    `json:"procs"`
	Links [][2]string `json:"links"`
}

// MarshalJSON encodes the network with processor names as link endpoints.
func (nw *Network) MarshalJSON() ([]byte, error) {
	j := networkJSON{Procs: make([]string, 0, nw.NumProcs())}
	for _, p := range nw.Procs() {
		j.Procs = append(j.Procs, p.Name)
	}
	for _, l := range nw.Links() {
		j.Links = append(j.Links, [2]string{nw.Proc(l.A).Name, nw.Proc(l.B).Name})
	}
	return json.Marshal(j)
}

// FromJSON decodes a network previously written by MarshalJSON.
func FromJSON(data []byte) (*Network, error) {
	var j networkJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("system: decode: %w", err)
	}
	b := NewBuilder()
	ids := make(map[string]ProcID, len(j.Procs))
	for _, name := range j.Procs {
		ids[name] = b.AddProc(name)
	}
	for _, l := range j.Links {
		a, ok := ids[l[0]]
		if !ok {
			return nil, fmt.Errorf("system: link references unknown processor %q", l[0])
		}
		c, ok := ids[l[1]]
		if !ok {
			return nil, fmt.Errorf("system: link references unknown processor %q", l[1])
		}
		b.Connect(a, c)
	}
	return b.Build()
}

// ReadJSON decodes a network from r.
func ReadJSON(r io.Reader) (*Network, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return FromJSON(data)
}

// WriteJSON writes the network to w as indented JSON.
func (nw *Network) WriteJSON(w io.Writer) error {
	data, err := nw.MarshalJSON()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(json.RawMessage(data), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}

// WriteDOT writes the network as an undirected Graphviz graph.
func (nw *Network) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n  node [shape=box];\n", title)
	for _, p := range nw.Procs() {
		fmt.Fprintf(&b, "  p%d [label=%q];\n", p.ID, p.Name)
	}
	for _, l := range nw.Links() {
		fmt.Fprintf(&b, "  p%d -- p%d;\n", l.A, l.B)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
