package system

import (
	"fmt"
	"math/rand"
)

func procName(i int) string { return fmt.Sprintf("P%d", i+1) }

func newProcs(m int) (*Builder, error) {
	if m < 1 {
		return nil, fmt.Errorf("system: need at least 1 processor, got %d", m)
	}
	b := NewBuilder()
	for i := 0; i < m; i++ {
		b.AddProc(procName(i))
	}
	return b, nil
}

// Line returns a linear array P1-P2-...-Pm.
func Line(m int) (*Network, error) {
	b, err := newProcs(m)
	if err != nil {
		return nil, err
	}
	for i := 0; i+1 < m; i++ {
		b.Connect(ProcID(i), ProcID(i+1))
	}
	return b.Build()
}

// Ring returns an m-processor ring, one of the paper's four evaluation
// topologies. m=1 degenerates to a single processor; m=2 to a single link.
func Ring(m int) (*Network, error) {
	b, err := newProcs(m)
	if err != nil {
		return nil, err
	}
	for i := 0; i+1 < m; i++ {
		b.Connect(ProcID(i), ProcID(i+1))
	}
	if m > 2 {
		b.Connect(ProcID(m-1), 0)
	}
	return b.Build()
}

// FullyConnected returns an m-processor clique, one of the paper's four
// evaluation topologies.
func FullyConnected(m int) (*Network, error) {
	b, err := newProcs(m)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			b.Connect(ProcID(i), ProcID(j))
		}
	}
	return b.Build()
}

// Hypercube returns a 2^dim-processor hypercube (dim >= 0); dim=4 gives the
// paper's 16-processor hypercube. Processor i connects to i^(1<<k) for each
// bit k.
func Hypercube(dim int) (*Network, error) {
	if dim < 0 || dim > 20 {
		return nil, fmt.Errorf("system: hypercube dimension %d out of range [0,20]", dim)
	}
	m := 1 << dim
	b, err := newProcs(m)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		for k := 0; k < dim; k++ {
			j := i ^ (1 << k)
			if i < j {
				b.Connect(ProcID(i), ProcID(j))
			}
		}
	}
	return b.Build()
}

// Mesh2D returns a rows x cols 2-D mesh (no wraparound).
func Mesh2D(rows, cols int) (*Network, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("system: invalid mesh %dx%d", rows, cols)
	}
	b, err := newProcs(rows * cols)
	if err != nil {
		return nil, err
	}
	at := func(r, c int) ProcID { return ProcID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.Connect(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				b.Connect(at(r, c), at(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus2D returns a rows x cols 2-D torus: a mesh plus wraparound links
// closing every row and column. A dimension of length 1 or 2 gets no
// wraparound (it would self-loop or duplicate the mesh link), so small
// tori degenerate gracefully toward the mesh.
func Torus2D(rows, cols int) (*Network, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("system: invalid torus %dx%d", rows, cols)
	}
	b, err := newProcs(rows * cols)
	if err != nil {
		return nil, err
	}
	at := func(r, c int) ProcID { return ProcID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.Connect(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				b.Connect(at(r, c), at(r+1, c))
			}
		}
	}
	for r := 0; r < rows && cols > 2; r++ {
		b.Connect(at(r, cols-1), at(r, 0))
	}
	for c := 0; c < cols && rows > 2; c++ {
		b.Connect(at(rows-1, c), at(0, c))
	}
	return b.Build()
}

// FatTree returns a two-level leaf-spine fabric: every spine connects to
// every leaf (a complete bipartite graph), the folded-Clos core of a
// fat-tree. The model has no dedicated switch nodes, so spines are
// ordinary processors P1..P(spines) and leaves follow; leaf-to-leaf
// traffic crosses a spine and contends there, which is exactly the
// behaviour the scheduler should see.
func FatTree(spines, leaves int) (*Network, error) {
	if spines < 1 || leaves < 1 {
		return nil, fmt.Errorf("system: fat-tree needs at least 1 spine and 1 leaf, got %d/%d", spines, leaves)
	}
	b, err := newProcs(spines + leaves)
	if err != nil {
		return nil, err
	}
	for s := 0; s < spines; s++ {
		for l := 0; l < leaves; l++ {
			b.Connect(ProcID(s), ProcID(spines+l))
		}
	}
	return b.Build()
}

// Hierarchical returns a NUMA-like fabric of `groups` cliques of
// `perGroup` processors each: links inside a group are plentiful, while
// groups are joined only through their leaders (each group's first
// processor) arranged in a ring — one scarce, contended link per group
// boundary. Two groups share a single link; a dimension of 1 degenerates
// to a plain clique (groups=1) or a leader ring (perGroup=1).
func Hierarchical(groups, perGroup int) (*Network, error) {
	if groups < 1 || perGroup < 1 {
		return nil, fmt.Errorf("system: hierarchical needs at least 1 group of 1, got %dx%d", groups, perGroup)
	}
	b, err := newProcs(groups * perGroup)
	if err != nil {
		return nil, err
	}
	leader := func(g int) ProcID { return ProcID(g * perGroup) }
	for g := 0; g < groups; g++ {
		for i := 0; i < perGroup; i++ {
			for j := i + 1; j < perGroup; j++ {
				b.Connect(ProcID(g*perGroup+i), ProcID(g*perGroup+j))
			}
		}
	}
	for g := 0; g+1 < groups; g++ {
		b.Connect(leader(g), leader(g+1))
	}
	if groups > 2 {
		b.Connect(leader(groups-1), leader(0))
	}
	return b.Build()
}

// Star returns a star with P1 at the centre.
func Star(m int) (*Network, error) {
	b, err := newProcs(m)
	if err != nil {
		return nil, err
	}
	for i := 1; i < m; i++ {
		b.Connect(0, ProcID(i))
	}
	return b.Build()
}

// BinaryTree returns a complete binary tree over m processors (heap
// numbering: children of i are 2i+1 and 2i+2).
func BinaryTree(m int) (*Network, error) {
	b, err := newProcs(m)
	if err != nil {
		return nil, err
	}
	for i := 1; i < m; i++ {
		b.Connect(ProcID((i-1)/2), ProcID(i))
	}
	return b.Build()
}

// RandomConnected returns a random connected topology in which every
// processor's degree lies within [minDeg, maxDeg], matching the paper's
// "randomly structured topology" whose degrees range from two to eight.
//
// Construction: a random spanning tree (random attachment respecting
// maxDeg), then random extra links until every degree >= minDeg, then a few
// more random links for irregularity. The result is deterministic for a
// given rng state.
func RandomConnected(m, minDeg, maxDeg int, rng *rand.Rand) (*Network, error) {
	switch {
	case m < 1:
		return nil, fmt.Errorf("system: need at least 1 processor, got %d", m)
	case minDeg < 1 && m > 1:
		return nil, fmt.Errorf("system: minDeg must be >= 1, got %d", minDeg)
	case minDeg > maxDeg:
		return nil, fmt.Errorf("system: minDeg %d > maxDeg %d", minDeg, maxDeg)
	case m > 1 && minDeg > m-1:
		return nil, fmt.Errorf("system: minDeg %d impossible with %d processors", minDeg, m)
	case m > 1 && maxDeg < 2 && m > 2:
		return nil, fmt.Errorf("system: maxDeg %d cannot connect %d processors", maxDeg, m)
	}
	b, err := newProcs(m)
	if err != nil {
		return nil, err
	}
	if m == 1 {
		return b.Build()
	}
	deg := make([]int, m)
	have := make(map[[2]ProcID]bool)
	addLink := func(p, q ProcID) bool {
		if p == q {
			return false
		}
		a, c := p, q
		if a > c {
			a, c = c, a
		}
		if have[[2]ProcID{a, c}] || deg[p] >= maxDeg || deg[q] >= maxDeg {
			return false
		}
		have[[2]ProcID{a, c}] = true
		deg[p]++
		deg[q]++
		b.Connect(p, q)
		return true
	}

	// Random spanning tree: attach each processor (in random order) to a
	// random already-attached processor with spare degree.
	perm := rng.Perm(m)
	attached := []ProcID{ProcID(perm[0])}
	for _, pi := range perm[1:] {
		p := ProcID(pi)
		// Collect attachment candidates with spare degree.
		var cands []ProcID
		for _, q := range attached {
			if deg[q] < maxDeg {
				cands = append(cands, q)
			}
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("system: cannot build spanning tree with maxDeg %d", maxDeg)
		}
		q := cands[rng.Intn(len(cands))]
		addLink(p, q)
		attached = append(attached, p)
	}

	// Raise low-degree processors to minDeg.
	for p := 0; p < m; p++ {
		guard := 0
		for deg[p] < minDeg {
			q := ProcID(rng.Intn(m))
			if !addLink(ProcID(p), q) {
				guard++
				if guard > 50*m {
					// Degree constraints may be jointly unsatisfiable for
					// odd corner cases (e.g. everyone else saturated); scan
					// deterministically before giving up.
					ok := false
					for qi := 0; qi < m; qi++ {
						if addLink(ProcID(p), ProcID(qi)) {
							ok = true
							break
						}
					}
					if !ok {
						return nil, fmt.Errorf("system: cannot satisfy minDeg %d with maxDeg %d on %d processors", minDeg, maxDeg, m)
					}
				}
				continue
			}
		}
	}

	// A dash of extra irregular links (up to m/2 attempts).
	for i := 0; i < m/2; i++ {
		addLink(ProcID(rng.Intn(m)), ProcID(rng.Intn(m)))
	}
	return b.Build()
}
