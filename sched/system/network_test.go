package system

import (
	"strings"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder()
	p0 := b.AddProc("P1")
	p1 := b.AddProc("P2")
	p2 := b.AddProc("P3")
	l01 := b.Connect(p0, p1)
	l12 := b.Connect(p2, p1) // reversed order normalizes to (1,2)
	nw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumProcs() != 3 || nw.NumLinks() != 2 {
		t.Fatalf("got m=%d links=%d", nw.NumProcs(), nw.NumLinks())
	}
	if l := nw.Link(l12); l.A != 1 || l.B != 2 {
		t.Errorf("link endpoints not normalized: %+v", l)
	}
	if got, ok := nw.LinkBetween(p0, p1); !ok || got != l01 {
		t.Errorf("LinkBetween(0,1)=%v,%v", got, ok)
	}
	if _, ok := nw.LinkBetween(p0, p2); ok {
		t.Error("LinkBetween(0,2) should not exist")
	}
	if nw.Degree(p1) != 2 || nw.Degree(p0) != 1 {
		t.Errorf("degrees wrong: %d %d", nw.Degree(p1), nw.Degree(p0))
	}
	if !nw.IsConnected() {
		t.Error("line of 3 is connected")
	}
	l := nw.Link(l01)
	if l.Other(p0) != p1 || l.Other(p1) != p0 || !l.Has(p0) || l.Has(p2) {
		t.Error("Link.Other/Has wrong")
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		want  string
	}{
		{"empty name", func(b *Builder) { b.AddProc("") }, "empty processor name"},
		{"dup name", func(b *Builder) { b.AddProc("x"); b.AddProc("x") }, "duplicate processor name"},
		{"no procs", func(b *Builder) {}, "no processors"},
		{"self link", func(b *Builder) { p := b.AddProc("x"); b.Connect(p, p) }, "self-link"},
		{"range", func(b *Builder) { b.AddProc("x"); b.Connect(0, 9) }, "out of range"},
		{"dup link", func(b *Builder) {
			p := b.AddProc("x")
			q := b.AddProc("y")
			b.Connect(p, q)
			b.Connect(q, p)
		}, "duplicate link"},
		{"disconnected", func(b *Builder) { b.AddProc("x"); b.AddProc("y") }, "not connected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.build(b)
			if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err=%v, want %q", err, tc.want)
			}
		})
	}
}

func TestBFSOrder(t *testing.T) {
	nw, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	got := nw.BFSOrder(0)
	// Ring 0-1-2-3-4-5-0: from 0, neighbours {1,5}, then {2},{4}, then {3}.
	want := []ProcID{0, 1, 5, 2, 4, 3}
	if len(got) != len(want) {
		t.Fatalf("BFSOrder=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BFSOrder=%v, want %v", got, want)
		}
	}
}

func TestBFSOrderFromNonzero(t *testing.T) {
	nw, err := Line(4)
	if err != nil {
		t.Fatal(err)
	}
	got := nw.BFSOrder(2)
	want := []ProcID{2, 1, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BFSOrder(2)=%v, want %v", got, want)
		}
	}
}
